// h2pexplorer: looks inside the TEA thread's hardware structures. Runs a
// workload with the TEA thread attached and reports what the H2P table
// identified, what the Backward Dataflow Walks marked, and how the Block
// Cache behaved — the §III/§IV machinery made visible.
//
// This example uses the internal packages directly (it lives inside the
// module), showing how to wire a pipeline.Core and core.TEA by hand when
// the tea facade is not enough.
//
//	go run ./examples/h2pexplorer [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func main() {
	name := "mcf"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}

	prog := w.Build(1)
	pcfg := pipeline.DefaultConfig()
	pcfg.MaxInstructions = 300_000
	pcfg.MaxCycles = 200_000_000
	c := pipeline.New(pcfg, prog)
	t := core.New(core.DefaultConfig(), c)
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}

	s := &t.Stats
	fmt.Printf("== %s: TEA thread internals after %d instructions ==\n\n",
		name, c.Stats.Retired)

	fmt.Printf("H2P identification (§IV-B)\n")
	fmt.Printf("  branches currently above threshold: %d\n", t.H2P.Count())
	fmt.Printf("  periodic decays applied:            %d\n\n", s.H2PDecays)

	fmt.Printf("Backward Dataflow Walk (§III-A, §IV-C)\n")
	fmt.Printf("  walks completed:        %d\n", s.WalksDone)
	fmt.Printf("  chain uops marked:      %d (%.1f per walk)\n",
		s.WalkMarked, float64(s.WalkMarked)/float64(max(1, s.WalksDone)))
	fmt.Printf("  mask resets (500k):     %d\n\n", s.MaskResets)

	fmt.Printf("Block Cache (§III-E, §IV-C)\n")
	fmt.Printf("  updates:                %d\n", t.BC.Updates)
	fmt.Printf("  lookups:                %d (%.1f%% hit, %.1f%% empty-tag hit)\n",
		t.BC.Lookups,
		100*float64(t.BC.Hits)/float64(max(1, t.BC.Lookups)),
		100*float64(t.BC.EmptyHits)/float64(max(1, t.BC.Lookups)))
	fmt.Printf("\nThread lifecycle (§IV-D/G)\n")
	fmt.Printf("  activations:            %d\n", s.Activations)
	fmt.Printf("  terminations:           %d block-cache miss, %d poisoning, %d late, %d overtaken\n",
		s.TermBCMiss, s.TermIncorrect, s.TermLate, s.TermOvertaken)
	fmt.Printf("  chain uops fetched:     %d (renamed %d)\n", s.UopsFetched, s.UopsRenamed)
	fmt.Printf("  store-cache writes:     %d (hits %d)\n\n", t.Store.Writes, t.Store.Hits)

	fmt.Printf("Precomputation outcomes (§IV-F, Fig. 7)\n")
	fmt.Printf("  branch resolutions:     %d (%d early flushes, %d agreements, %d late)\n",
		s.Resolved, s.EarlyFlushes, s.Agreements, s.LateEvents)
	fmt.Printf("  accuracy:               %.2f%%\n", 100*s.Accuracy())
	fmt.Printf("  misprediction coverage: %.1f%% (covered %d, late %d, incorrect %d, uncovered %d)\n",
		100*s.Coverage(), s.CoveredMisp, s.LateMisp, s.IncorrectMisp, s.UncoveredMisp)
	fmt.Printf("  cycles saved / covered: %.1f\n", s.AvgCyclesSaved())
	fmt.Printf("  RAT-poisoning events:   %d violations (of %d poison sets)\n",
		s.PoisonViolations, s.PoisonSets)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
