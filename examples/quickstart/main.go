// Quickstart: run one benchmark on the baseline core and with the TEA
// thread, and print the speedup and precomputation quality — the library's
// two-line "hello world".
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"teasim/tea"
)

func main() {
	const workload = "bfs"
	const budget = 300_000 // instructions to simulate

	base, err := tea.Run(workload, tea.Config{
		Mode:            tea.ModeBaseline,
		MaxInstructions: budget,
		Scale:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	with, err := tea.Run(workload, tea.Config{
		Mode:            tea.ModeTEA,
		MaxInstructions: budget,
		Scale:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%d instructions)\n", workload, base.Instructions)
	fmt.Printf("baseline: %8d cycles  (IPC %.2f, MPKI %.1f)\n",
		base.Cycles, base.IPC, base.MPKI)
	fmt.Printf("TEA:      %8d cycles  (IPC %.2f)\n", with.Cycles, with.IPC)
	fmt.Printf("speedup:  %+.1f%%\n", 100*(float64(base.Cycles)/float64(with.Cycles)-1))
	fmt.Printf("TEA thread: %.1f%% accuracy, %.0f%% misprediction coverage, "+
		"%.1f cycles saved per covered branch\n",
		100*with.Accuracy, 100*with.Coverage, with.AvgCyclesSaved)
	fmt.Printf("            %d early flushes, +%.0f%% dynamic uop footprint\n",
		with.EarlyFlushes, with.UopOverheadPct)
}
