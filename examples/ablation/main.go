// ablation: reproduces the Fig. 10 feature study on one workload — what
// each TEA construction feature (mask combining, memory dependencies,
// cross-loop chains) contributes to accuracy, coverage, and timeliness.
//
//	go run ./examples/ablation [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"teasim/tea"
)

func main() {
	name := "mcf"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	const budget = 250_000

	base, err := tea.Run(name, tea.Config{Mode: tea.ModeBaseline, MaxInstructions: budget, Scale: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== Fig 10-style ablation on %s ==\n\n", name)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tspeedup\taccuracy\tcoverage\tsaved/branch")
	for _, fc := range tea.Fig10Configs() {
		cfg := fc.Cfg(tea.Config{Mode: fc.Mode, MaxInstructions: budget, Scale: 1})
		res, err := tea.Run(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%+.1f%%\t%.1f%%\t%.0f%%\t%.1f\n",
			fc.Name, 100*(float64(base.Cycles)/float64(res.Cycles)-1),
			100*res.Accuracy, 100*res.Coverage, res.AvgCyclesSaved)
	}
	tw.Flush()

	fmt.Println("\nconfigs: tea = all features; onlyloops = chains confined between")
	fmt.Println("consecutive branch instances; nomasks = no combining across control")
	fmt.Println("flows; nomem = no memory dependencies; runahead = Branch Runahead.")
}
