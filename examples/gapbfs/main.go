// gapbfs: a deep-dive on the paper's motivating workload class — graph
// kernels whose data-dependent branches defeat history-based prediction.
// Runs BFS under all four modes (baseline, TEA on-core, TEA with a
// dedicated engine, Branch Runahead) and prints a comparison table, then
// shows how the picture changes on a second graph kernel with heavier
// chains (tc).
//
//	go run ./examples/gapbfs
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"teasim/tea"
)

func main() {
	const budget = 300_000
	modes := []tea.Mode{
		tea.ModeBaseline, tea.ModeTEA, tea.ModeTEADedicated, tea.ModeBranchRunahead,
	}

	for _, workload := range []string{"bfs", "tc"} {
		fmt.Printf("== %s (simple control flow: %v) ==\n", workload, tea.SimpleFlow(workload))
		var baseCycles uint64
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "mode\tcycles\tspeedup\tMPKI\tcoverage\taccuracy")
		for _, m := range modes {
			res, err := tea.Run(workload, tea.Config{Mode: m, MaxInstructions: budget, Scale: 1})
			if err != nil {
				log.Fatal(err)
			}
			if m == tea.ModeBaseline {
				baseCycles = res.Cycles
			}
			speedup := float64(baseCycles)/float64(res.Cycles) - 1
			fmt.Fprintf(tw, "%s\t%d\t%+.1f%%\t%.1f\t%.0f%%\t%.1f%%\n",
				m, res.Cycles, 100*speedup, res.MPKI, 100*res.Coverage, 100*res.Accuracy)
		}
		tw.Flush()
		fmt.Println()
	}

	fmt.Println("The visited-vertex check in BFS (\"if dist[v] == INF\") is the")
	fmt.Println("canonical hard-to-predict branch: its outcome depends on graph")
	fmt.Println("data, not control history, so TAGE cannot learn it — but its")
	fmt.Println("dependence chain (load, compare) is short enough to precompute.")
}
