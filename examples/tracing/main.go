// tracing: dumps a cycle-annotated event trace of a short window of
// execution — retirements, mispredictions, and the TEA thread's early
// flushes — showing the timestamp-synchronized flush mechanism in action.
//
//	go run ./examples/tracing | head -60
package main

import (
	"log"
	"os"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func main() {
	w, _ := workloads.ByName("bfs")
	prog := w.Build(1)

	cfg := pipeline.DefaultConfig()
	cfg.MaxInstructions = 120_000
	cfg.MaxCycles = 50_000_000
	// Trace a window after warm-up: the H2P table, Block Cache, and TEA
	// thread are all live by then.
	cfg.TraceW = os.Stdout
	cfg.TraceStart, cfg.TraceEnd = 60_000, 60_400

	c := pipeline.New(cfg, prog)
	core.New(core.DefaultConfig(), c)
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
}
