// tracing: dumps a cycle-annotated event trace of a short window of
// execution — retirements, mispredictions, and the TEA thread's early
// flushes — showing the timestamp-synchronized flush mechanism in action.
//
// The trace flows through the telemetry subsystem: a Collector bounds the
// window, and the sink chooses the rendering. The default text sink prints
// the human-readable one-line-per-event form; pass -jsonl to emit the
// machine-readable JSONL schema documented in DESIGN.md instead.
//
//	go run ./examples/tracing | head -60
//	go run ./examples/tracing -jsonl | head -5
package main

import (
	"flag"
	"log"
	"os"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
	"teasim/internal/workloads"
)

func main() {
	jsonl := flag.Bool("jsonl", false, "emit JSONL events instead of text")
	flag.Parse()

	w, _ := workloads.ByName("bfs")
	prog := w.Build(1)

	var sink telemetry.Sink = telemetry.NewText(os.Stdout)
	if *jsonl {
		sink = telemetry.NewJSONL(os.Stdout)
	}

	cfg := pipeline.DefaultConfig()
	cfg.MaxInstructions = 120_000
	cfg.MaxCycles = 50_000_000
	// Trace a window after warm-up: the H2P table, Block Cache, and TEA
	// thread are all live by then.
	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{
		Sink:       sink,
		TraceStart: 60_000,
		TraceEnd:   60_400,
	})

	c := pipeline.New(cfg, prog)
	core.New(core.DefaultConfig(), c)
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	if err := cfg.Telemetry.Close(); err != nil {
		log.Fatal(err)
	}
}
