package tea

import (
	"encoding/json"
	"fmt"

	"teasim/tea/spec"
)

// Mode selects the precomputation scheme attached to the baseline core. Each
// mode is a name for a registered machine preset (see tea/spec): Preset
// returns the mode's full MachineSpec, and Config.Spec can replace the mode
// entirely with a custom machine point.
type Mode int

// Modes.
const (
	// ModeBaseline runs the Table I out-of-order core with no
	// precomputation.
	ModeBaseline Mode = iota
	// ModeTEA attaches the paper's TEA thread using on-core resources
	// (the headline configuration, Fig. 5).
	ModeTEA
	// ModeTEADedicated runs the TEA thread on a dedicated execution engine
	// with 16 execution units (§V-D, Fig. 9).
	ModeTEADedicated
	// ModeBranchRunahead attaches the prior-work Branch Runahead engine
	// (§V-C, Fig. 8).
	ModeBranchRunahead
	// ModeTEABigEngine gives the TEA thread a dedicated engine as large as
	// the main core's backend (§V-D: "a much larger execution engine...
	// provided very little additional benefit (12.8%)").
	ModeTEABigEngine
	// ModeWide16 runs a TEA-less 16-wide frontend baseline (§IV-H: a true
	// 16-wide core costs ~10% area for only 2.8% performance, because
	// predictor bandwidth, not fetch width, is the limiter).
	ModeWide16
)

// modeNames is the single registry mapping modes to their report (and
// preset) names. String, ParseMode, Modes, Preset, and the JSON codecs all
// derive from it; adding a mode means adding one entry here and one preset
// registration in tea/spec.
var modeNames = [...]string{
	ModeBaseline:       "baseline",
	ModeTEA:            "tea",
	ModeTEADedicated:   "tea-dedicated",
	ModeBranchRunahead: "runahead",
	ModeTEABigEngine:   "tea-bigengine",
	ModeWide16:         "wide16",
}

// Modes returns every mode in declaration order.
func Modes() []Mode {
	ms := make([]Mode, len(modeNames))
	for i := range ms {
		ms[i] = Mode(i)
	}
	return ms
}

// String returns the mode name used in reports (also its preset name).
func (m Mode) String() string {
	if int(m) >= 0 && int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Preset returns the mode's machine point as a spec.
func (m Mode) Preset() (spec.MachineSpec, error) {
	return spec.Preset(m.String())
}

// MarshalJSON renders the mode as its report name.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", m.String())), nil
}

// UnmarshalJSON parses a report name back into a mode.
func (m *Mode) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	mode, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = mode
	return nil
}

// ParseMode parses a mode report name (the Mode.String form).
func ParseMode(s string) (Mode, error) {
	for i, name := range modeNames {
		if name == s {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("tea: unknown mode %q", s)
}
