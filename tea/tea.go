// Package tea is the public API of the TEA branch-precomputation
// reproduction: it runs the paper's benchmark suite on the baseline
// out-of-order core with the TEA thread, the Branch Runahead comparison
// baseline, or no precomputation at all, and reports the metrics behind
// every table and figure in the paper's evaluation (§V).
//
// Quick start:
//
//	res, err := tea.Run("bfs", tea.Config{Mode: tea.ModeTEA})
//	fmt.Printf("IPC %.2f, coverage %.0f%%\n", res.IPC, 100*res.Coverage)
//
// Compare against the baseline core:
//
//	base, _ := tea.Run("bfs", tea.Config{Mode: tea.ModeBaseline})
//	fmt.Printf("speedup %.2fx\n", float64(base.Cycles)/float64(res.Cycles))
package tea

import (
	"fmt"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/runahead"
	"teasim/internal/workloads"
)

// Mode selects the precomputation scheme attached to the baseline core.
type Mode int

// Modes.
const (
	// ModeBaseline runs the Table I out-of-order core with no
	// precomputation.
	ModeBaseline Mode = iota
	// ModeTEA attaches the paper's TEA thread using on-core resources
	// (the headline configuration, Fig. 5).
	ModeTEA
	// ModeTEADedicated runs the TEA thread on a dedicated execution engine
	// with 16 execution units (§V-D, Fig. 9).
	ModeTEADedicated
	// ModeBranchRunahead attaches the prior-work Branch Runahead engine
	// (§V-C, Fig. 8).
	ModeBranchRunahead
	// ModeTEABigEngine gives the TEA thread a dedicated engine as large as
	// the main core's backend (§V-D: "a much larger execution engine...
	// provided very little additional benefit (12.8%)").
	ModeTEABigEngine
	// ModeWide16 runs a TEA-less 16-wide frontend baseline (§IV-H: a true
	// 16-wide core costs ~10% area for only 2.8% performance, because
	// predictor bandwidth, not fetch width, is the limiter).
	ModeWide16
)

// String returns the mode name used in reports.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeTEA:
		return "tea"
	case ModeTEADedicated:
		return "tea-dedicated"
	case ModeBranchRunahead:
		return "runahead"
	case ModeTEABigEngine:
		return "tea-bigengine"
	case ModeWide16:
		return "wide16"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config controls one simulation run.
type Config struct {
	Mode Mode

	// MaxInstructions bounds the simulated region (0 = run to completion).
	// The experiment harness default is 1M instructions per workload.
	MaxInstructions uint64
	// Scale selects the workload input size (0 = tiny/test, 1 = default).
	Scale int
	// CoSim verifies every retired instruction against the golden
	// functional model (slower; on by default in tests).
	CoSim bool

	// Fig. 10 ablation switches (TEA modes only).
	OnlyLoops         bool // loop-confined chains ("only loops")
	NoMasks           bool // no mask combining across control flows
	NoMem             bool // no memory dependencies in the walk
	DisableEarlyFlush bool // precompute but never flush (§V-B prefetch-only)

	// Structure-size overrides for the paper's sensitivity studies
	// (0 = paper default). See §IV-B (H2P decrement period, Block Cache
	// capacity), §IV-C (Fill Buffer size), and §III-B (fetch-queue-bounded
	// run-ahead distance).
	BlockCacheEntries int    // Block Cache data entries (default 512)
	FillBufferSize    int    // Fill Buffer uops (default 512)
	H2PDecayPeriod    uint64 // instructions between H2P decrements (default 50k)
	MaxLeadBlocks     int    // shadow fetch queue depth (default 2)
	FetchQueueSize    int    // main fetch queue entries (default 128)
}

// Result reports one run's performance and precomputation metrics.
type Result struct {
	Workload string
	Mode     Mode

	Cycles       uint64
	Instructions uint64
	IPC          float64

	// Branch behaviour (Fig. 6): mispredictions counted against the
	// original branch-predictor decision.
	MPKI            float64
	CondMispredicts uint64
	IndMispredicts  uint64

	// Precomputation quality (Figs. 7 and 10). Coverage buckets partition
	// the retired mispredictions.
	Accuracy       float64 // correct precomputations / precomputations
	Coverage       float64 // covered / all retired mispredictions
	Covered        uint64
	Late           uint64
	Incorrect      uint64
	Uncovered      uint64
	AvgCyclesSaved float64 // per covered misprediction (Fig. 10c)
	EarlyFlushes   uint64

	// Footprint (Table III): extra dynamic uops fetched for precomputation,
	// as a percentage of main-thread fetched uops.
	UopOverheadPct float64
}

// Workloads returns the names of the 16-benchmark suite in report order.
func Workloads() []string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return names
}

// SimpleFlow reports whether the workload is in the paper's "simple control
// flow" class (§V-C: the GAP kernels and xz).
func SimpleFlow(name string) bool {
	w, ok := workloads.ByName(name)
	return ok && w.Flow == workloads.Simple
}

// Run simulates one workload under the given configuration.
func Run(workload string, cfg Config) (Result, error) {
	w, ok := workloads.ByName(workload)
	if !ok {
		return Result{}, fmt.Errorf("tea: unknown workload %q (see tea.Workloads)", workload)
	}
	prog := w.Build(cfg.Scale)

	pcfg := pipeline.DefaultConfig()
	pcfg.CoSim = cfg.CoSim
	pcfg.MaxInstructions = cfg.MaxInstructions
	pcfg.MaxCycles = 400_000_000
	switch cfg.Mode {
	case ModeTEADedicated:
		pcfg.CompanionDedicated = true
		pcfg.CompanionPorts = 16
	case ModeTEABigEngine:
		pcfg.CompanionDedicated = true
		pcfg.CompanionPorts = pcfg.ALUPorts + pcfg.LDPorts + pcfg.LDSTPorts + pcfg.FPPorts
	case ModeWide16:
		// Double the frontend width only; the predictor still delivers one
		// taken branch per cycle (the paper's point).
		pcfg.FrontWidth = 16
		pcfg.FrontQCap = 192
	}
	if cfg.FetchQueueSize > 0 {
		pcfg.FetchQueueSize = cfg.FetchQueueSize
	}
	c := pipeline.New(pcfg, prog)

	var teaThread *core.TEA
	var br *runahead.BR
	switch cfg.Mode {
	case ModeTEA, ModeTEADedicated, ModeTEABigEngine:
		tcfg := core.DefaultConfig()
		tcfg.OnlyLoops = cfg.OnlyLoops
		tcfg.NoMasks = cfg.NoMasks
		tcfg.NoMem = cfg.NoMem
		tcfg.DisableEarlyFlush = cfg.DisableEarlyFlush
		if cfg.BlockCacheEntries > 0 {
			// Keep 8-way associativity; scale the set count to the next
			// power of two (the index is computed by masking).
			sets := 1
			for sets*tcfg.BlockCacheWays < cfg.BlockCacheEntries {
				sets *= 2
			}
			tcfg.BlockCacheSets = sets
		}
		if cfg.FillBufferSize > 0 {
			tcfg.FillBufSize = cfg.FillBufferSize
		}
		if cfg.H2PDecayPeriod > 0 {
			tcfg.H2PDecayPeriod = cfg.H2PDecayPeriod
		}
		if cfg.MaxLeadBlocks > 0 {
			tcfg.MaxLeadBlocks = cfg.MaxLeadBlocks
		}
		teaThread = core.New(tcfg, c)
	case ModeBranchRunahead:
		br = runahead.New(runahead.DefaultConfig(), c)
	}

	if err := c.Run(); err != nil {
		return Result{}, fmt.Errorf("tea: %s/%s: %w", workload, cfg.Mode, err)
	}

	res := Result{
		Workload:        workload,
		Mode:            cfg.Mode,
		Cycles:          c.Stats.Cycles,
		Instructions:    c.Stats.Retired,
		IPC:             c.Stats.IPC(),
		MPKI:            c.Stats.MPKI(),
		CondMispredicts: c.Stats.CondMispredicts,
		IndMispredicts:  c.Stats.IndMispredicts,
		Accuracy:        1,
	}
	if teaThread != nil {
		s := &teaThread.Stats
		res.Accuracy = s.Accuracy()
		res.Coverage = s.Coverage()
		res.Covered = s.CoveredMisp
		res.Late = s.LateMisp
		res.Incorrect = s.IncorrectMisp
		res.Uncovered = s.UncoveredMisp
		res.AvgCyclesSaved = s.AvgCyclesSaved()
		res.EarlyFlushes = s.EarlyFlushes
		if c.Stats.FetchedUops > 0 {
			res.UopOverheadPct = 100 * float64(s.UopsFetched) / float64(c.Stats.FetchedUops)
		}
	}
	if br != nil {
		s := &br.Stats
		res.Accuracy = s.Accuracy()
		res.Coverage = s.Coverage()
		res.Covered = s.CoveredMisp
		res.Incorrect = s.IncorrectMisp
		res.Uncovered = s.UncoveredMisp
		if s.CoveredMisp > 0 {
			res.AvgCyclesSaved = float64(s.CyclesSaved) / float64(s.CoveredMisp)
		}
		if c.Stats.FetchedUops > 0 {
			res.UopOverheadPct = 100 * float64(s.EngineUops) / float64(c.Stats.FetchedUops)
		}
	}
	return res, nil
}

// Speedup runs a workload under two configurations and returns cyclesA /
// cyclesB (so >1 means B is faster).
func Speedup(workload string, a, b Config) (float64, Result, Result, error) {
	ra, err := Run(workload, a)
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	rb, err := Run(workload, b)
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	return float64(ra.Cycles) / float64(rb.Cycles), ra, rb, nil
}
