// Package tea is the public API of the TEA branch-precomputation
// reproduction: it runs the paper's benchmark suite on the baseline
// out-of-order core with the TEA thread, the Branch Runahead comparison
// baseline, or no precomputation at all, and reports the metrics behind
// every table and figure in the paper's evaluation (§V).
//
// Quick start:
//
//	res, err := tea.Run("bfs", tea.Config{Mode: tea.ModeTEA})
//	fmt.Printf("IPC %.2f, coverage %.0f%%\n", res.IPC, 100*res.Coverage)
//
// Compare against the baseline core:
//
//	base, _ := tea.Run("bfs", tea.Config{Mode: tea.ModeBaseline})
//	fmt.Printf("speedup %.2fx\n", float64(base.Cycles)/float64(res.Cycles))
//
// Every run simulates one declarative machine point (tea/spec): the Mode
// names a registered preset, Config.Spec substitutes a custom spec, and
// Config.Set patches individual fields ("companion.tea.fill_buf_size=1024").
// See Config.ResolvedSpec for the resolution order.
package tea

import (
	"context"
	"fmt"
	"io"
	"math"

	"teasim/internal/companion"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
	"teasim/internal/workloads"
	"teasim/tea/spec"
)

// Config controls one simulation run.
type Config struct {
	// Mode names the machine preset to simulate (ignored when Spec is set).
	Mode Mode

	// Spec, when non-nil, replaces the Mode's preset with a custom machine
	// point (tea/spec). The spec is cloned before resolution, so callers may
	// reuse one spec across runs.
	Spec *spec.MachineSpec
	// Set holds dotted-path spec patches ("section.field=value", see
	// spec.MachineSpec.Set) applied after the ablation and structure-size
	// overrides below, in order.
	Set []string

	// MaxInstructions bounds the simulated region (0 = run to completion).
	// The experiment harness default is 1M instructions per workload.
	MaxInstructions uint64
	// Scale selects the workload input size (0 = tiny/test, 1 = default).
	Scale int
	// CoSim verifies every retired instruction against the golden
	// functional model (slower; on by default in tests).
	CoSim bool
	// DisableIdleSkip turns off the pipeline's idle-cycle fast-forward
	// (pipeline.Config.NoIdleSkip), ticking every cycle individually.
	// Results are bit-identical either way — skipping is cycle-exact — so
	// this exists for debugging and the skip equivalence test.
	DisableIdleSkip bool
	// DisableBlockCache turns off the pipeline's decoded-block uop cache
	// (pipeline.Config.NoBlockCache): the BP walks instructions one at a
	// time and fetch re-decodes every uop. Results are bit-identical either
	// way (the fast-path equivalence test pins this); for debugging and
	// that test.
	DisableBlockCache bool
	// DisableBitsetSched turns off the pipeline's bitmap scheduler
	// (pipeline.Config.NoBitsetSched), falling back to the pointer/heap
	// reference scheduler. Bit-identical either way; for debugging and the
	// fast-path equivalence test.
	DisableBitsetSched bool
	// DisableSplitReady turns off the bitset scheduler's split main/companion
	// ready lists (pipeline.Config.NoSplitReady), filtering a single shared
	// ready set at select instead. Bit-identical either way; for debugging
	// and the fast-path equivalence test. No effect when the bitset scheduler
	// is itself disabled.
	DisableSplitReady bool
	// DisableHistRewind turns off invertible folded-history recovery
	// (pipeline.Config.NoHistRewind), falling back to per-branch history
	// checkpoint copies. Bit-identical either way (pinned by
	// bpred.TestHistoryRewindEquivalence and the fast-path equivalence test);
	// for debugging and those tests.
	DisableHistRewind bool

	// Fig. 10 ablation switches — spec patches on the companion's TEA
	// section (error on a TEA-less machine).
	OnlyLoops         bool // loop-confined chains ("only loops")
	NoMasks           bool // no mask combining across control flows
	NoMem             bool // no memory dependencies in the walk
	DisableEarlyFlush bool // precompute but never flush (§V-B prefetch-only)

	// Structure-size overrides for the paper's sensitivity studies
	// (0 = keep the spec's value) — shorthand spec patches. See §IV-B (H2P
	// decrement period, Block Cache capacity), §IV-C (Fill Buffer size), and
	// §III-B (fetch-queue-bounded run-ahead distance).
	BlockCacheEntries int    // Block Cache data entries (default 512)
	FillBufferSize    int    // Fill Buffer uops (default 512)
	H2PDecayPeriod    uint64 // instructions between H2P decrements (default 50k)
	MaxLeadBlocks     int    // shadow fetch queue depth (default 2)
	FetchQueueSize    int    // main fetch queue entries (default 128)

	// Observability (see DESIGN.md "Telemetry"). These fields are purely
	// observational: a run with telemetry attached retires the same
	// instructions in the same cycles as one without. Runs with any of them
	// set are never memoized by an Engine (see Config.Observational).
	//
	// Intervals samples a per-interval time series (IPC, MPKI, flush rate,
	// TEA coverage/accuracy, Block Cache hit rate, Fill Buffer occupancy)
	// into Result.Intervals every IntervalPeriod retired instructions
	// (0 = every 10k). TraceTo, when non-nil, streams JSONL trace events —
	// retirements and flushes inside the [TraceStart, TraceEnd] cycle
	// window (TraceEnd 0 = unbounded) — plus the interval samples.
	Intervals      bool
	IntervalPeriod uint64
	TraceTo        io.Writer
	TraceStart     uint64
	TraceEnd       uint64

	// Paranoia enables per-cycle invariant checking inside the pipeline and
	// the TEA companion structures (DESIGN.md "Failure handling"): ROB age
	// ordering, physical-register conservation, scheduler/scoreboard
	// consistency, completion accounting, and Block Cache mask monotonicity.
	// A paranoid run produces bit-identical results — the checker only reads
	// — but is much slower and panics at the first violated invariant, so it
	// exists for CI and debugging. Paranoid runs are never memoized: the
	// caller wants the checking, not just the numbers.
	Paranoia bool
	// Heartbeat, when non-nil, receives a progress beat every runQuantum
	// simulated cycles (and at every telemetry interval sample), letting a
	// watchdog on another goroutine distinguish a slow run from a wedged one.
	// The engine's hang watchdog (JobPolicy.HangTimeout) installs its own;
	// set this only when driving RunContext directly.
	Heartbeat *telemetry.Heartbeat
}

// Observational reports whether the run carries observation-only
// attachments (telemetry intervals or a trace stream). Observational runs
// produce bit-identical simulation results but are never memoized, so the
// observation always happens.
func (c Config) Observational() bool {
	return c.Intervals || c.IntervalPeriod != 0 || c.TraceTo != nil ||
		c.TraceStart != 0 || c.TraceEnd != 0
}

// Memoizable reports whether an Engine may serve this run from its result
// cache: the run must not be observational (the caller wants the
// observation, not just the numbers), must not co-simulate or check
// invariants (the caller wants the checking), and must not disable a
// bit-identical fast path (the point of such a run is exercising the
// reference path). Memoizable runs are keyed by (workload, mode, spec
// fingerprint, budget, scale) — see Engine.
func (c Config) Memoizable() bool {
	return !c.Observational() && !c.CoSim && !c.DisableIdleSkip &&
		!c.DisableBlockCache && !c.DisableBitsetSched &&
		!c.DisableSplitReady && !c.DisableHistRewind && !c.Paranoia
}

// Result reports one run's performance and precomputation metrics. It
// marshals to JSON with snake_case keys (and the Mode as its report name),
// so results can be piped straight into plotting scripts.
type Result struct {
	Workload string `json:"workload"`
	Mode     Mode   `json:"mode"`
	// SpecHash is the resolved machine spec's fingerprint (hex), tying the
	// result to the exact machine point that produced it.
	SpecHash string `json:"spec_hash,omitempty"`
	// Fidelity marks rows produced outside the exact tier ("quick" for the
	// statistical memory model; empty for exact runs, so existing goldens
	// are unchanged). Quick rows must never be mixed into paper-figure
	// tables — see EXPERIMENTS.md.
	Fidelity string `json:"fidelity,omitempty"`

	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`

	// Branch behaviour (Fig. 6): mispredictions counted against the
	// original branch-predictor decision.
	MPKI            float64 `json:"mpki"`
	CondMispredicts uint64  `json:"cond_mispredicts"`
	IndMispredicts  uint64  `json:"ind_mispredicts"`

	// Precomputation quality (Figs. 7 and 10). Coverage buckets partition
	// the retired mispredictions.
	Accuracy       float64 `json:"accuracy"` // correct precomputations / precomputations
	Coverage       float64 `json:"coverage"` // covered / all retired mispredictions
	Covered        uint64  `json:"covered"`
	Late           uint64  `json:"late"`
	Incorrect      uint64  `json:"incorrect"`
	Uncovered      uint64  `json:"uncovered"`
	AvgCyclesSaved float64 `json:"avg_cycles_saved"` // per covered misprediction (Fig. 10c)
	EarlyFlushes   uint64  `json:"early_flushes"`

	// Footprint (Table III): extra dynamic uops fetched for precomputation,
	// as a percentage of main-thread fetched uops.
	UopOverheadPct float64 `json:"uop_overhead_pct"`

	// Intervals holds the per-interval time series when Config.Intervals
	// was set (nil otherwise).
	Intervals []IntervalSample `json:"intervals,omitempty"`

	// Err annotates a cell that failed under quarantine semantics
	// (Engine.MapPartial / teaexp -partial): the first line of the job's
	// error, with every metric zero. Empty for successful runs, so existing
	// goldens and JSON consumers are unaffected.
	Err string `json:"error,omitempty"`
}

// IntervalSample is one point of a run's time series, sampled every
// Config.IntervalPeriod retired instructions. Rate fields are computed over
// the interval (deltas), not cumulatively, so plotting them directly shows
// the per-phase behavior that end-of-run aggregates hide.
type IntervalSample struct {
	Index   int    `json:"index"`
	Cycle   uint64 `json:"cycle"`   // cycle count at the sample point
	Retired uint64 `json:"retired"` // cumulative retired instructions

	Cycles       uint64  `json:"cycles"`       // cycles in this interval
	Instructions uint64  `json:"instructions"` // instructions in this interval
	IPC          float64 `json:"ipc"`
	MPKI         float64 `json:"mpki"`
	Flushes      uint64  `json:"flushes"`
	EarlyFlushes uint64  `json:"early_flushes"`

	// Companion (TEA / Branch Runahead) metrics; zero without one.
	Coverage          float64 `json:"coverage"`
	Accuracy          float64 `json:"accuracy"`
	BlockCacheHitRate float64 `json:"block_cache_hit_rate"`
	FillBufOccupancy  int     `json:"fill_buf_occupancy"`

	// Metrics carries every registered internal metric at the sample point
	// (cumulative values; see DESIGN.md for the name catalogue).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Workloads returns the names of the 16-benchmark suite in report order.
func Workloads() []string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	return names
}

// SimpleFlow reports whether the workload is in the paper's "simple control
// flow" class (§V-C: the GAP kernels and xz).
func SimpleFlow(name string) bool {
	w, ok := workloads.ByName(name)
	return ok && w.Flow == workloads.Simple
}

// Run simulates one workload under the given configuration.
func Run(workload string, cfg Config) (Result, error) {
	return RunContext(context.Background(), workload, cfg)
}

// runQuantum is the cycle distance between cancellation checks in
// RunContext: small enough that cancellation lands within a few hundred
// microseconds of wall time, large enough to keep the check out of the
// per-cycle loop's profile.
const runQuantum = 50_000

// RunContext is Run with cooperative cancellation: the simulation checks
// ctx every runQuantum simulated cycles and returns ctx.Err() promptly once
// the context is done. A cancelled context returns before any simulation
// work. Results from cancelled runs are zero; cancellation is not an error
// of the simulation itself.
func RunContext(ctx context.Context, workload string, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	w, ok := workloads.ByName(workload)
	if !ok {
		return Result{}, fmt.Errorf("tea: unknown workload %q (see tea.Workloads)", workload)
	}
	machine, err := cfg.ResolvedSpec()
	if err != nil {
		return Result{}, err
	}
	mode := effectiveMode(cfg, &machine)
	prog := w.Build(cfg.Scale)

	pcfg := pipelineConfig(&machine)
	pcfg.CoSim = cfg.CoSim
	pcfg.NoIdleSkip = cfg.DisableIdleSkip
	pcfg.NoBlockCache = cfg.DisableBlockCache
	pcfg.NoBitsetSched = cfg.DisableBitsetSched
	pcfg.NoSplitReady = cfg.DisableSplitReady
	pcfg.NoHistRewind = cfg.DisableHistRewind
	pcfg.MaxInstructions = cfg.MaxInstructions
	pcfg.MaxCycles = 400_000_000
	pcfg.Paranoia = cfg.Paranoia
	pcfg.Heartbeat = cfg.Heartbeat

	// Telemetry: an interval-collecting ring and/or a JSONL event stream.
	var ring *telemetry.RingSink
	if cfg.Intervals || cfg.TraceTo != nil {
		var sinks []telemetry.Sink
		if cfg.Intervals {
			ring = telemetry.NewRing(0) // intervals only, no event retention
			sinks = append(sinks, ring)
		}
		if cfg.TraceTo != nil {
			sinks = append(sinks, telemetry.NewJSONL(cfg.TraceTo))
		}
		tcfg := telemetry.Config{
			Sink:           telemetry.Multi(sinks...),
			IntervalPeriod: cfg.IntervalPeriod,
			TraceStart:     cfg.TraceStart,
			TraceEnd:       cfg.TraceEnd,
			Heartbeat:      cfg.Heartbeat,
		}
		if cfg.TraceTo == nil {
			// Intervals without a trace stream: push the trace window past
			// any reachable cycle so no per-retire events are built.
			tcfg.TraceStart = math.MaxUint64
		}
		pcfg.Telemetry = telemetry.NewCollector(tcfg)
	}

	c := pipeline.New(pcfg, prog)

	// Build whatever companion the spec names through the factory registry
	// (tea/companions.go links every known companion package).
	inst, err := companion.New(&machine, c, companion.Options{Paranoia: cfg.Paranoia})
	if err != nil {
		return Result{}, fmt.Errorf("tea: %s/%s: %w", workload, mode, err)
	}

	var runErr error
	if ctx.Done() == nil && cfg.Heartbeat == nil {
		runErr = c.Run()
	} else {
		runErr = c.RunChecked(runQuantum, func() error { return ctx.Err() })
	}
	if pcfg.Telemetry != nil {
		if cerr := pcfg.Telemetry.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("telemetry sink: %w", cerr)
		}
	}
	if runErr != nil {
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{}, fmt.Errorf("tea: %s/%s: %w", workload, mode, runErr)
	}

	res := Result{
		Workload:        workload,
		Mode:            mode,
		SpecHash:        machine.FingerprintString(),
		Fidelity:        machine.Memory.Model,
		Cycles:          c.Stats.Cycles,
		Instructions:    c.Stats.Retired,
		IPC:             c.Stats.IPC(),
		MPKI:            c.Stats.MPKI(),
		CondMispredicts: c.Stats.CondMispredicts,
		IndMispredicts:  c.Stats.IndMispredicts,
		Accuracy:        1,
	}
	if inst != nil {
		m := inst.Metrics()
		res.Accuracy = m.Accuracy
		res.Coverage = m.Coverage
		res.Covered = m.Covered
		res.Late = m.Late
		res.Incorrect = m.Incorrect
		res.Uncovered = m.Uncovered
		res.AvgCyclesSaved = m.AvgCyclesSaved
		res.EarlyFlushes = m.EarlyFlushes
		if c.Stats.FetchedUops > 0 {
			res.UopOverheadPct = 100 * float64(m.ExtraUops) / float64(c.Stats.FetchedUops)
		}
	}
	if ring != nil {
		ivs := ring.Intervals()
		res.Intervals = make([]IntervalSample, len(ivs))
		for i, iv := range ivs {
			s := IntervalSample{
				Index:             iv.Index,
				Cycle:             iv.Cycle,
				Retired:           iv.Retired,
				Cycles:            iv.Cycles,
				Instructions:      iv.Instructions,
				IPC:               iv.IPC,
				MPKI:              iv.MPKI,
				Flushes:           iv.Flushes,
				EarlyFlushes:      iv.EarlyFlushes,
				Coverage:          iv.Coverage,
				Accuracy:          iv.Accuracy,
				BlockCacheHitRate: iv.BlockCacheHitRate,
				FillBufOccupancy:  iv.FillBufOccupancy,
			}
			if len(iv.Metrics) > 0 {
				s.Metrics = make(map[string]float64, len(iv.Metrics))
				for _, m := range iv.Metrics {
					s.Metrics[m.Name] = m.Value
				}
			}
			res.Intervals[i] = s
		}
	}
	return res, nil
}

// Speedup runs a workload under two configurations and returns cyclesA /
// cyclesB (so >1 means B is faster).
func Speedup(workload string, a, b Config) (float64, Result, Result, error) {
	return SpeedupContext(context.Background(), workload, a, b)
}

// SpeedupContext is Speedup with cooperative cancellation (see RunContext).
func SpeedupContext(ctx context.Context, workload string, a, b Config) (float64, Result, Result, error) {
	ra, err := RunContext(ctx, workload, a)
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	rb, err := RunContext(ctx, workload, b)
	if err != nil {
		return 0, Result{}, Result{}, err
	}
	return float64(ra.Cycles) / float64(rb.Cycles), ra, rb, nil
}
