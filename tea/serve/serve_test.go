package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"teasim/tea"
	"teasim/tea/store"
)

// stubRun is a deterministic fake simulation: cycles depend only on the
// workload name and mode, so reports built from it are stable bytes.
func stubRun(ctx context.Context, workload string, cfg tea.Config) (tea.Result, error) {
	cyc := uint64(1000 + 10*len(workload))
	if cfg.Mode != tea.ModeBaseline {
		cyc -= 100
	}
	return tea.Result{
		Workload:     workload,
		Mode:         cfg.Mode,
		Cycles:       cyc,
		Instructions: 5000,
		IPC:          5000 / float64(cyc),
		Coverage:     0.5,
		Accuracy:     0.9,
	}, nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, url string, req Request, hdr map[string]string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCatalogAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{RunFunc: stubRun})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if got := readBody(t, resp); resp.StatusCode != 200 || got != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, got)
	}

	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	catalog := readBody(t, resp)
	for _, want := range []string{`"fig5"`, `"fig8"`, `"table3"`, `"custom"`} {
		if !strings.Contains(catalog, want) {
			t.Errorf("catalog missing %s:\n%s", want, catalog)
		}
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{RunFunc: stubRun, DefaultInstructions: 1000, MaxInstructions: 50_000})

	cases := []struct {
		name string
		req  Request
		want string // substring of the 400 body
	}{
		{"unknown experiment", Request{Experiment: "fig99"}, "unknown experiment"},
		{"missing experiment", Request{}, "missing experiment"},
		{"unknown workload", Request{Experiment: "fig5", Workloads: []string{"doom"}}, "unknown workload"},
		{"bad format", Request{Experiment: "fig5", Format: "yaml"}, "format"},
		{"budget over cap", Request{Experiment: "fig5", MaxInstructions: 60_000}, "per-cell cap"},
		{"negative scale", Request{Experiment: "fig5", Scale: -1}, "scale"},
		{"preset on non-custom", Request{Experiment: "fig5", Preset: "tea"}, "only apply"},
		{"patches on non-custom", Request{Experiment: "fig6", Patches: []string{"tea.lead=5"}}, "only apply"},
		{"unknown preset", Request{Experiment: "custom", Preset: "nope"}, "preset"},
		{"spec and preset", Request{Experiment: "custom", Preset: "tea", Spec: json.RawMessage(`{}`)}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRun(t, ts.URL, tc.req, nil)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %q)", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.want) {
				t.Errorf("body %q does not mention %q", body, tc.want)
			}
		})
	}
}

// TestCoalescingAndStore is the dedup acceptance test: N identical
// concurrent requests cost one simulation per distinct cell — every other
// resolution is a store hit or rides an in-flight simulation — and a
// follow-up re-POST is served entirely from the store.
func TestCoalescingAndStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	srv, ts := newTestServer(t, Config{RunFunc: stubRun, Store: st, MaxConcurrent: 8})

	req := Request{
		Experiment:      "fig5",
		Workloads:       []string{"bfs", "mcf"},
		MaxInstructions: 10_000,
		Format:          "csv",
	}
	const n = 4
	const cells = 4 // 2 workloads x {baseline, tea}

	var wg sync.WaitGroup
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": fmt.Sprintf("c%d", i)})
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = readBody(t, resp)
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	stats := srv.Stats()
	if stats.Simulations != cells {
		t.Errorf("Simulations = %d, want %d (one per distinct cell)", stats.Simulations, cells)
	}
	if got := stats.StoreHits + stats.Coalesced; got != (n-1)*cells {
		t.Errorf("StoreHits+Coalesced = %d, want %d", got, (n-1)*cells)
	}

	// Re-POST: zero new simulations, everything from the store.
	resp := postRun(t, ts.URL, req, nil)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("re-POST status %d: %s", resp.StatusCode, body)
	}
	if body != bodies[0] {
		t.Errorf("re-POST body differs:\n%s\nvs\n%s", body, bodies[0])
	}
	if got := resp.Header.Get("X-Tea-Simulated"); got != "0" {
		t.Errorf("re-POST X-Tea-Simulated = %s, want 0", got)
	}
	if got := resp.Header.Get("X-Tea-Store-Hits"); got != fmt.Sprint(cells) {
		t.Errorf("re-POST X-Tea-Store-Hits = %s, want %d", got, cells)
	}
	if srv.Stats().Simulations != cells {
		t.Errorf("re-POST simulated: Simulations = %d, want still %d", srv.Stats().Simulations, cells)
	}
}

// blockingRun returns a RunFunc that signals each call on started and holds
// until gate closes, for occupying the server's run slots deterministically.
func blockingRun(started chan<- struct{}, gate <-chan struct{}) tea.RunFunc {
	return func(ctx context.Context, workload string, cfg tea.Config) (tea.Result, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return tea.Result{}, ctx.Err()
		}
		return stubRun(ctx, workload, cfg)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClientQuota429(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		RunFunc:       blockingRun(started, gate),
		MaxConcurrent: 1,
		ClientQuota:   1,
	})

	req := Request{Experiment: "fig5", Workloads: []string{"bfs"}, MaxInstructions: 1000}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": "alice"})
		if resp.StatusCode != 200 {
			t.Errorf("first request: status %d", resp.StatusCode)
		}
		readBody(t, resp)
	}()
	<-started

	resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": "alice"})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(body, "quota") {
		t.Errorf("429 body %q does not mention quota", body)
	}
	if srv.Stats().RejectedQuota != 1 {
		t.Errorf("RejectedQuota = %d, want 1", srv.Stats().RejectedQuota)
	}

	close(gate)
	<-done
}

func TestQueueFull429(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		RunFunc:       blockingRun(started, gate),
		MaxConcurrent: 1,
		QueueDepth:    1,
	})

	req := Request{Experiment: "fig5", Workloads: []string{"bfs"}, MaxInstructions: 1000}
	var wg sync.WaitGroup
	for _, client := range []string{"a", "b"} {
		wg.Add(1)
		go func(client string) {
			defer wg.Done()
			resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": client})
			if resp.StatusCode != 200 {
				t.Errorf("client %s: status %d", client, resp.StatusCode)
			}
			readBody(t, resp)
		}(client)
		if client == "a" {
			<-started // a holds the only run slot before b queues
		}
	}
	waitFor(t, "one queued request", func() bool { _, q := srv.adm.depth(); return q == 1 })

	resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": "c"})
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "queue full") {
		t.Errorf("429 body %q does not mention the queue", body)
	}
	if srv.Stats().RejectedBusy != 1 {
		t.Errorf("RejectedBusy = %d, want 1", srv.Stats().RejectedBusy)
	}

	close(gate)
	wg.Wait()
}

// TestDrainAnswersQueued503 pins the shutdown contract: Drain answers every
// request queued for a run slot with an immediate 503 (instead of leaving it
// hanging until the listener dies), rejects new arrivals the same way, and
// lets the request already running finish with 200.
func TestDrainAnswersQueued503(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{
		RunFunc:       blockingRun(started, gate),
		MaxConcurrent: 1,
		QueueDepth:    4,
	})

	req := Request{Experiment: "fig5", Workloads: []string{"bfs"}, MaxInstructions: 1000}
	runnerDone := make(chan struct{})
	go func() {
		defer close(runnerDone)
		resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": "runner"})
		if resp.StatusCode != 200 {
			t.Errorf("running request: status %d, want 200", resp.StatusCode)
		}
		readBody(t, resp)
	}()
	<-started // runner holds the only run slot

	queuedDone := make(chan *http.Response, 1)
	go func() {
		queuedDone <- postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": "queued"})
	}()
	waitFor(t, "one queued request", func() bool { _, q := srv.adm.depth(); return q == 1 })

	srv.Drain()
	select {
	case resp := <-queuedDone:
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queued request: status %d, want 503 (body %q)", resp.StatusCode, body)
		}
		if !strings.Contains(body, "draining") {
			t.Errorf("503 body %q does not mention draining", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request hung after Drain; want immediate 503")
	}

	resp := postRun(t, ts.URL, req, map[string]string{"X-Tea-Client": "late"})
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", resp.StatusCode)
	}
	if got := srv.Stats().RejectedDrain; got != 2 {
		t.Errorf("RejectedDrain = %d, want 2", got)
	}

	close(gate) // the in-flight request still completes normally
	<-runnerDone
}

// TestSSEGolden pins the stream framing: with one worker and the
// deterministic stub, the event sequence and its bytes are stable, and the
// embedded report equals a direct library render of the same experiment.
func TestSSEGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{RunFunc: stubRun, Workers: 1})

	req := Request{
		Experiment:      "fig5",
		Workloads:       []string{"bfs"},
		MaxInstructions: 10_000,
		Format:          "csv",
		Stream:          true,
	}
	resp := postRun(t, ts.URL, req, nil)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}

	// The same experiment through the library, rendered the same way.
	eng := tea.NewEngine(1, tea.WithRunFunc(stubRun))
	rep, err := tea.RunExperiment(context.Background(), "fig5", tea.ExpOptions{
		Workloads:       []string{"bfs"},
		MaxInstructions: 10_000,
		Engine:          eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := rep.Write(&direct, tea.FormatCSV); err != nil {
		t.Fatal(err)
	}
	reportJSON, err := json.Marshal(map[string]string{"format": "csv", "body": direct.String()})
	if err != nil {
		t.Fatal(err)
	}

	golden := strings.Join([]string{
		`event: job`,
		`data: {"index":0,"workload":"bfs","mode":"baseline","phase":"started"}`,
		``,
		`event: job`,
		`data: {"index":0,"workload":"bfs","mode":"baseline","phase":"done"}`,
		``,
		`event: job`,
		`data: {"index":1,"workload":"bfs","mode":"tea","phase":"started"}`,
		``,
		`event: job`,
		`data: {"index":1,"workload":"bfs","mode":"tea","phase":"done"}`,
		``,
		`event: report`,
		`data: ` + string(reportJSON),
		``,
		`event: done`,
		`data: {"simulated":2,"store_hits":0,"coalesced":0,"memo_hits":0,"error_rows":0}`,
		``,
		``,
	}, "\n")
	if body != golden {
		t.Errorf("SSE stream mismatch:\n--- got ---\n%q\n--- want ---\n%q", body, golden)
	}
}

// TestRealRunByteIdentity exercises the full stack with the real simulator
// on a tiny budget: the daemon's report must be byte-identical to the
// direct library run, and a re-POST must simulate nothing.
func TestRealRunByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := newTestServer(t, Config{Store: st})

	const budget = 10_000
	req := Request{
		Experiment:      "fig5",
		Workloads:       []string{"bfs"},
		MaxInstructions: budget,
		Format:          "csv",
	}
	resp := postRun(t, ts.URL, req, nil)
	served := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, served)
	}

	rep, err := tea.RunExperiment(context.Background(), "fig5", tea.ExpOptions{
		Workloads:       []string{"bfs"},
		MaxInstructions: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := rep.Write(&direct, tea.FormatCSV); err != nil {
		t.Fatal(err)
	}
	if served != direct.String() {
		t.Errorf("daemon report differs from direct run:\n--- daemon ---\n%s\n--- direct ---\n%s", served, direct.String())
	}

	resp = postRun(t, ts.URL, req, nil)
	if got := readBody(t, resp); got != served {
		t.Errorf("re-POST differs from first response")
	}
	if got := resp.Header.Get("X-Tea-Simulated"); got != "0" {
		t.Errorf("re-POST X-Tea-Simulated = %s, want 0", got)
	}
}
