package serve

import (
	"context"
	"fmt"
	"sync"
)

// Admission errors. Both map to 429 with a Retry-After; they are distinct so
// the response (and the metrics) can say whether the caller hit their own
// quota or the server's capacity.
type quotaError struct{ client string }

func (e quotaError) Error() string {
	return fmt.Sprintf("serve: client %q is at its in-flight request quota", e.client)
}

type busyError struct{}

func (busyError) Error() string {
	return "serve: job queue full"
}

// drainError rejects a request because the server is shutting down. It maps
// to 503: the queued caller gets a clean answer it can retry against another
// replica, instead of a connection that hangs until the listener dies.
type drainError struct{}

func (drainError) Error() string {
	return "serve: server is draining"
}

// admission is the server's admission controller: a bounded run semaphore
// with a bounded wait queue on top, plus per-client in-flight quotas.
// Requests beyond the queue bound — or beyond a client's quota — are
// rejected immediately with 429 semantics rather than piling onto the
// daemon, which is what keeps one greedy client (or a traffic spike) from
// turning into unbounded memory and latency for everyone else.
type admission struct {
	slots    chan struct{} // capacity = max concurrently running requests
	queueMax int           // max requests waiting for a slot
	quota    int           // max in-flight (running + queued) per client, 0 = unlimited
	drainC   chan struct{} // closed by drain(): queued waiters bail with drainError

	mu       sync.Mutex
	waiting  int
	draining bool
	inflight map[string]int
}

// newAdmission builds the controller (maxRunning and queueMax already
// defaulted by the server config).
func newAdmission(maxRunning, queueMax, quota int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxRunning),
		queueMax: queueMax,
		quota:    quota,
		drainC:   make(chan struct{}),
		inflight: make(map[string]int),
	}
}

// drain flips the controller into shutdown mode: every queued waiter is
// released with a drainError and new arrivals are rejected the same way.
// Requests already holding a run slot are untouched — they finish normally
// under the http.Server.Shutdown grace period. Idempotent.
func (a *admission) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.draining {
		a.draining = true
		close(a.drainC)
	}
}

// acquire admits one request for client, blocking in the bounded queue if
// all run slots are busy. It returns a release func on success, or a
// quotaError / busyError for an immediate 429, or ctx.Err() if the caller
// gave up while queued.
func (a *admission) acquire(ctx context.Context, client string) (func(), error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, drainError{}
	}
	if a.quota > 0 && a.inflight[client] >= a.quota {
		a.mu.Unlock()
		return nil, quotaError{client}
	}
	a.inflight[client]++
	a.mu.Unlock()

	releaseClient := func() {
		a.mu.Lock()
		if a.inflight[client]--; a.inflight[client] <= 0 {
			delete(a.inflight, client)
		}
		a.mu.Unlock()
	}

	select {
	case a.slots <- struct{}{}: // free slot, no queueing
	default:
		a.mu.Lock()
		if a.waiting >= a.queueMax {
			a.mu.Unlock()
			releaseClient()
			return nil, busyError{}
		}
		a.waiting++
		a.mu.Unlock()
		select {
		case a.slots <- struct{}{}:
			a.mu.Lock()
			a.waiting--
			a.mu.Unlock()
		case <-a.drainC:
			a.mu.Lock()
			a.waiting--
			a.mu.Unlock()
			releaseClient()
			return nil, drainError{}
		case <-ctx.Done():
			a.mu.Lock()
			a.waiting--
			a.mu.Unlock()
			releaseClient()
			return nil, ctx.Err()
		}
	}
	return func() {
		<-a.slots
		releaseClient()
	}, nil
}

// depth reports the current queue occupancy (for /statz).
func (a *admission) depth() (running, waiting int) {
	a.mu.Lock()
	waiting = a.waiting
	a.mu.Unlock()
	return len(a.slots), waiting
}
