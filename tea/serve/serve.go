// Package serve turns the tea experiment library into a long-running
// simulation service: clients POST an experiment request (an experiment
// name from the tea registry, a workload subset, a budget, and — for the
// custom experiment — a machine spec or preset plus patches) and get back
// the rendered report in any tea report format, or a live SSE progress
// stream.
//
// The daemon composes the pieces the library already has:
//
//   - tea.RunExperiment dispatches by name through the experiment registry,
//     so the catalog grows without the server changing.
//   - Every memoizable cell is addressed by the engine memo tuple and
//     deduplicated against a content-addressed store (tea/store): a re-POST
//     of a served request simulates nothing.
//   - Identical in-flight cells across concurrent requests coalesce onto
//     one simulation (singleflight over the memo key).
//   - Admission control layers on tea.JobPolicy: per-client in-flight
//     quotas and a bounded job queue, both answering 429 + Retry-After on
//     overflow, so overload degrades by rejection instead of collapse.
//
// See cmd/teasrvd for the daemon binary and DESIGN.md §13 for the API.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"teasim/internal/telemetry"
	"teasim/tea"
	"teasim/tea/spec"
	"teasim/tea/store"
)

// Config configures a Server. The zero value serves with no persistence, no
// quotas, a 4-deep run pool, and an 8-deep queue.
type Config struct {
	// Store is the content-addressed result store (nil = no persistence:
	// dedup is per-request memoization and in-flight coalescing only).
	Store *store.Store
	// Workers bounds each request's engine worker pool (0 =
	// tea.DefaultWorkers).
	Workers int
	// MaxConcurrent bounds simultaneously running requests (0 = 4).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a run slot (0 = 8); beyond it
	// the server answers 429.
	QueueDepth int
	// ClientQuota bounds one client's in-flight (running + queued) requests
	// (0 = unlimited). Clients identify via the X-Tea-Client header, else
	// their remote host.
	ClientQuota int
	// DefaultInstructions is the per-cell budget when a request omits one
	// (0 = 1M, the library default).
	DefaultInstructions uint64
	// MaxInstructions caps a request's per-cell budget (0 = uncapped);
	// above it the server answers 400 rather than letting one request
	// monopolize the pool.
	MaxInstructions uint64
	// Policy is the per-job failure policy handed to every request's engine
	// (timeouts, hang watchdog, retries).
	Policy tea.JobPolicy
	// RunFunc is the simulation entry point (nil = tea.RunContext). Tests
	// stub it; alternative backends (a remote worker fleet) can too.
	RunFunc tea.RunFunc
	// Log receives request-level log lines (nil = silent).
	Log *log.Logger
}

// Request is the POST /v1/run body.
type Request struct {
	// Experiment names a tea registry entry ("fig5", "fig8", "custom", ...).
	Experiment string `json:"experiment"`
	// Workloads restricts the suite (empty = all).
	Workloads []string `json:"workloads,omitempty"`
	// MaxInstructions is the per-cell budget (0 = server default).
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// Scale selects workload input sizes (0 = 1, paper-like).
	Scale int `json:"scale,omitempty"`
	// Spec is an inline machine spec for the custom experiment.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Preset names a registered machine preset for the custom experiment
	// (alternative to Spec).
	Preset string `json:"preset,omitempty"`
	// Patches are dotted-path spec patches for the custom experiment.
	Patches []string `json:"patches,omitempty"`
	// Format selects the report rendering: text | json | csv (default json).
	Format string `json:"format,omitempty"`
	// Partial quarantines failing cells as annotated ERROR rows instead of
	// failing the request (tea.ExpOptions.Partial).
	Partial bool `json:"partial,omitempty"`
	// Stream switches the response to an SSE progress stream (also selected
	// by an Accept: text/event-stream header).
	Stream bool `json:"stream,omitempty"`
}

// reqStats counts one request's cell outcomes (reported in response headers
// and the SSE done event).
type reqStats struct {
	simulated telemetry.SyncCounter // cells actually simulated for this request
	storeHits telemetry.SyncCounter // cells served from the content-addressed store
	coalesced telemetry.SyncCounter // cells ridden on another request's in-flight simulation
}

// Server is the simulation-as-a-service daemon core: an http.Handler plus
// the shared store, coalescing, and admission state behind it.
type Server struct {
	cfg    Config
	adm    *admission
	flight flightGroup
	run    tea.RunFunc
	log    *log.Logger

	// Service-lifetime metrics (see /statz).
	requests      telemetry.SyncCounter
	rejectedQuota telemetry.SyncCounter
	rejectedBusy  telemetry.SyncCounter
	rejectedDrain telemetry.SyncCounter
	failed        telemetry.SyncCounter
	simulated     telemetry.SyncCounter
	storeHits     telemetry.SyncCounter
	coalesced     telemetry.SyncCounter
	memoHits      telemetry.SyncCounter
	errorRows     telemetry.SyncCounter
}

// New builds a server from the config.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.DefaultInstructions == 0 {
		cfg.DefaultInstructions = 1_000_000
	}
	run := cfg.RunFunc
	if run == nil {
		run = tea.RunContext
	}
	lg := cfg.Log
	if lg == nil {
		lg = log.New(io.Discard, "", 0)
	}
	return &Server{
		cfg: cfg,
		adm: newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.ClientQuota),
		run: run,
		log: lg,
	}
}

// Drain flips the server into shutdown mode: requests queued for a run slot
// are answered immediately with 503 (they would otherwise hang until the
// listener died under them), new runs are rejected the same way, and requests
// already running finish normally. Call it before http.Server.Shutdown so the
// queue empties instead of riding out the grace period. Idempotent.
func (s *Server) Drain() {
	s.adm.drain()
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/v1/run", s.handleRun)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Statz is the /statz payload: service-lifetime counters plus the live
// admission and store state.
type Statz struct {
	Requests      uint64 `json:"requests"`
	RejectedQuota uint64 `json:"rejected_quota"`
	RejectedBusy  uint64 `json:"rejected_busy"`
	RejectedDrain uint64 `json:"rejected_drain"`
	Failed        uint64 `json:"failed"`
	Simulations   uint64 `json:"simulations"`
	StoreHits     uint64 `json:"store_hits"`
	Coalesced     uint64 `json:"coalesced"`
	MemoHits      uint64 `json:"memo_hits"`
	ErrorRows     uint64 `json:"error_rows"`
	Running       int    `json:"running"`
	Queued        int    `json:"queued"`

	Store *store.Stats `json:"store,omitempty"`
}

// Stats snapshots the service counters (also served as /statz).
func (s *Server) Stats() Statz {
	running, queued := s.adm.depth()
	st := Statz{
		Requests:      s.requests.Value(),
		RejectedQuota: s.rejectedQuota.Value(),
		RejectedBusy:  s.rejectedBusy.Value(),
		RejectedDrain: s.rejectedDrain.Value(),
		Failed:        s.failed.Value(),
		Simulations:   s.simulated.Value(),
		StoreHits:     s.storeHits.Value(),
		Coalesced:     s.coalesced.Value(),
		MemoHits:      s.memoHits.Value(),
		ErrorRows:     s.errorRows.Value(),
		Running:       running,
		Queued:        queued,
	}
	if s.cfg.Store != nil {
		ss := s.cfg.Store.Stats()
		st.Store = &ss
	}
	return st
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// experimentInfo is one catalog entry of the /v1/experiments listing.
type experimentInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var list []experimentInfo
	for _, e := range tea.Experiments() {
		list = append(list, experimentInfo{Name: e.Name, Title: e.Title, Description: e.Description})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"experiments": list})
}

// httpError is a client-visible request failure with its status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// clientID identifies the quota principal: the X-Tea-Client header when
// present, else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Tea-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// parseRequest decodes and validates the POST body into experiment options.
func (s *Server) parseRequest(r *http.Request) (Request, tea.ExpOptions, tea.Format, error) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, tea.ExpOptions{}, 0, badRequest("bad request body: %v", err)
	}
	if req.Experiment == "" {
		return req, tea.ExpOptions{}, 0, badRequest("missing experiment (one of %v)", tea.ExperimentNames())
	}
	if _, ok := tea.LookupExperiment(req.Experiment); !ok {
		return req, tea.ExpOptions{}, 0, badRequest("unknown experiment %q (one of %v)", req.Experiment, tea.ExperimentNames())
	}

	format := tea.FormatJSON
	if req.Format != "" {
		f, err := tea.ParseFormat(req.Format)
		if err != nil {
			return req, tea.ExpOptions{}, 0, badRequest("%v", err)
		}
		format = f
	}

	known := make(map[string]bool)
	for _, w := range tea.Workloads() {
		known[w] = true
	}
	for _, w := range req.Workloads {
		if !known[w] {
			return req, tea.ExpOptions{}, 0, badRequest("unknown workload %q (see /v1/experiments docs; suite: %v)", w, tea.Workloads())
		}
	}

	budget := req.MaxInstructions
	if budget == 0 {
		budget = s.cfg.DefaultInstructions
	}
	if s.cfg.MaxInstructions > 0 && budget > s.cfg.MaxInstructions {
		return req, tea.ExpOptions{}, 0, badRequest(
			"max_instructions %d exceeds this server's per-cell cap %d", budget, s.cfg.MaxInstructions)
	}
	if req.Scale < 0 {
		return req, tea.ExpOptions{}, 0, badRequest("scale must be >= 0")
	}

	opts := tea.ExpOptions{
		MaxInstructions: budget,
		Scale:           req.Scale,
		Workloads:       req.Workloads,
		Partial:         req.Partial,
	}

	hasMachine := len(req.Spec) > 0 || req.Preset != "" || len(req.Patches) > 0
	if req.Experiment == "custom" {
		if len(req.Spec) > 0 && req.Preset != "" {
			return req, tea.ExpOptions{}, 0, badRequest("spec and preset are mutually exclusive")
		}
		switch {
		case len(req.Spec) > 0:
			m, err := spec.Parse(req.Spec)
			if err != nil {
				return req, tea.ExpOptions{}, 0, badRequest("%v", err)
			}
			opts.Spec = &m
		case req.Preset != "":
			m, err := spec.Preset(req.Preset)
			if err != nil {
				return req, tea.ExpOptions{}, 0, badRequest("%v (presets: %v)", err, spec.Presets())
			}
			opts.Spec = &m
		}
		opts.Set = req.Patches
	} else if hasMachine {
		return req, tea.ExpOptions{}, 0, badRequest(
			"spec/preset/patches only apply to the %q experiment; %q derives its machines from its modes",
			"custom", req.Experiment)
	}
	return req, opts, format, nil
}

// runFnFor builds the per-request engine run function: content-addressed
// store lookup, then cross-request singleflight, then real simulation (with
// the fresh result persisted). Layered under the engine, the request's own
// memoization and job policy still apply on top.
func (s *Server) runFnFor(st *reqStats) tea.RunFunc {
	return func(ctx context.Context, workload string, cfg tea.Config) (tea.Result, error) {
		simulate := func() (tea.Result, error) {
			st.simulated.Inc()
			s.simulated.Inc()
			return s.run(ctx, workload, cfg)
		}
		if !cfg.Memoizable() {
			return simulate()
		}
		fp, err := cfg.SpecFingerprint()
		if err != nil {
			// Mirror Engine.runJob: let the direct run surface the
			// resolution error with full context.
			return simulate()
		}
		key := store.Key{
			Workload: workload,
			Mode:     cfg.Mode.String(),
			Spec:     fmt.Sprintf("%016x", fp),
			MaxInstr: cfg.MaxInstructions,
			Scale:    cfg.Scale,
		}
		if s.cfg.Store != nil {
			if res, ok := s.cfg.Store.Get(key); ok {
				st.storeHits.Inc()
				s.storeHits.Inc()
				return res, nil
			}
		}
		res, err, coalesced := s.flight.do(ctx, key, func() (tea.Result, error) {
			res, err := simulate()
			if err == nil && s.cfg.Store != nil {
				rec := tea.JournalRecord{
					Workload: workload,
					Mode:     cfg.Mode,
					Spec:     key.Spec,
					MaxInstr: cfg.MaxInstructions,
					Scale:    cfg.Scale,
					Result:   res,
				}
				if perr := s.cfg.Store.Put(rec); perr != nil {
					// Like the engine's journal: a service that cannot
					// persist results should fail loudly.
					return res, perr
				}
			}
			return res, err
		})
		if coalesced {
			st.coalesced.Inc()
			s.coalesced.Inc()
		}
		return res, err
	}
}

// jobEvent is the SSE "job" payload (wall time is deliberately omitted: the
// stream is for liveness, and its golden test wants stable bytes).
type jobEvent struct {
	Index    int    `json:"index"`
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Phase    string `json:"phase"`
	Error    string `json:"error,omitempty"`
}

// doneEvent is the SSE "done" payload.
type doneEvent struct {
	Simulated uint64 `json:"simulated"`
	StoreHits uint64 `json:"store_hits"`
	Coalesced uint64 `json:"coalesced"`
	MemoHits  int    `json:"memo_hits"`
	ErrorRows int    `json:"error_rows"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Inc()
	req, opts, format, err := s.parseRequest(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}

	client := clientID(r)
	release, err := s.adm.acquire(r.Context(), client)
	if err != nil {
		var qe quotaError
		var be busyError
		var de drainError
		switch {
		case errors.As(err, &qe):
			s.rejectedQuota.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.As(err, &be):
			s.rejectedBusy.Inc()
			w.Header().Set("Retry-After", "2")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.As(err, &de):
			// The server is going away: answer 503 and close the
			// connection so the client retries elsewhere.
			s.rejectedDrain.Inc()
			w.Header().Set("Connection", "close")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default: // client gave up while queued
		}
		return
	}
	defer release()

	stream := req.Stream || r.Header.Get("Accept") == "text/event-stream"
	start := time.Now()
	if stream {
		s.runStream(w, r, req, opts, format)
	} else {
		s.runSync(w, r, req, opts, format)
	}
	s.log.Printf("%s experiment=%s client=%s stream=%v in %v",
		r.URL.Path, req.Experiment, client, stream, time.Since(start).Round(time.Millisecond))
}

// runSync runs the experiment and answers with the rendered report.
func (s *Server) runSync(w http.ResponseWriter, r *http.Request, req Request, opts tea.ExpOptions, format tea.Format) {
	st := &reqStats{}
	eng := tea.NewEngine(s.cfg.Workers,
		tea.WithPolicy(s.cfg.Policy),
		tea.WithRunFunc(s.runFnFor(st)))
	opts.Engine = eng

	rep, err := tea.RunExperiment(r.Context(), req.Experiment, opts)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing to answer
		}
		s.fail(w, r, err)
		return
	}
	var body bytes.Buffer
	if err := rep.Write(&body, format); err != nil {
		s.fail(w, r, err)
		return
	}
	ms := eng.MemoStats()
	s.memoHits.Add(uint64(ms.Hits))
	s.errorRows.Add(uint64(rep.ErrorRows()))

	h := w.Header()
	switch format {
	case tea.FormatJSON:
		h.Set("Content-Type", "application/json")
	case tea.FormatCSV:
		h.Set("Content-Type", "text/csv; charset=utf-8")
	default:
		h.Set("Content-Type", "text/plain; charset=utf-8")
	}
	h.Set("X-Tea-Experiment", req.Experiment)
	h.Set("X-Tea-Simulated", fmt.Sprint(st.simulated.Value()))
	h.Set("X-Tea-Store-Hits", fmt.Sprint(st.storeHits.Value()))
	h.Set("X-Tea-Coalesced", fmt.Sprint(st.coalesced.Value()))
	h.Set("X-Tea-Memo-Hits", fmt.Sprint(ms.Hits))
	h.Set("X-Tea-Error-Rows", fmt.Sprint(rep.ErrorRows()))
	w.Write(body.Bytes())
}

// runStream runs the experiment over an SSE stream: one "job" event per
// engine progress notification, then a "report" event carrying the rendered
// body, then "done" with the request's dedup counters.
func (s *Server) runStream(w http.ResponseWriter, r *http.Request, req Request, opts tea.ExpOptions, format tea.Format) {
	sse, err := newSSE(w)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	st := &reqStats{}
	eng := tea.NewEngine(s.cfg.Workers,
		tea.WithPolicy(s.cfg.Policy),
		tea.WithRunFunc(s.runFnFor(st)),
		tea.WithProgress(func(ev tea.JobEvent) {
			je := jobEvent{
				Index:    ev.Index,
				Workload: ev.Job.Workload,
				Mode:     ev.Job.Cfg.Mode.String(),
				Phase:    ev.Phase.String(),
			}
			if ev.Err != nil {
				je.Error = firstLine(ev.Err.Error())
			}
			sse.event("job", je)
		}))
	opts.Engine = eng

	rep, err := tea.RunExperiment(r.Context(), req.Experiment, opts)
	if err != nil {
		if r.Context().Err() == nil {
			s.failed.Inc()
			sse.event("error", map[string]string{"error": err.Error()})
		}
		return
	}
	var body bytes.Buffer
	if err := rep.Write(&body, format); err != nil {
		s.failed.Inc()
		sse.event("error", map[string]string{"error": err.Error()})
		return
	}
	ms := eng.MemoStats()
	s.memoHits.Add(uint64(ms.Hits))
	s.errorRows.Add(uint64(rep.ErrorRows()))
	sse.event("report", map[string]string{"format": format.String(), "body": body.String()})
	sse.event("done", doneEvent{
		Simulated: st.simulated.Value(),
		StoreHits: st.storeHits.Value(),
		Coalesced: st.coalesced.Value(),
		MemoHits:  ms.Hits,
		ErrorRows: rep.ErrorRows(),
	})
}

// fail answers a request-level failure with its status (500 unless the
// error carries one).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	s.failed.Inc()
	var he *httpError
	if errors.As(err, &he) {
		http.Error(w, he.msg, he.status)
		return
	}
	s.log.Printf("%s failed: %v", r.URL.Path, err)
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// firstLine truncates an error message to its first line.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
