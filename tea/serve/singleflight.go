package serve

import (
	"context"
	"sync"

	"teasim/tea"
	"teasim/tea/store"
)

// flightGroup coalesces concurrent simulations of the same memo key onto one
// execution: N identical in-flight cells — across requests, not just within
// one engine's memo — cost one simulation. The stdlib has no singleflight;
// this is the minimal typed form over store.Key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[store.Key]*flightCall
}

// flightCall is one in-flight simulation and its latched outcome.
type flightCall struct {
	done chan struct{}
	res  tea.Result
	err  error
}

// do returns the result of fn for key, executing it at most once among
// concurrent callers. coalesced reports that this caller rode on another
// caller's execution. The executing caller runs under its own ctx; a waiter
// whose ctx dies first returns its ctx error without disturbing the
// execution (the leader — and the store — still finish and keep the result).
func (g *flightGroup) do(ctx context.Context, key store.Key, fn func() (tea.Result, error)) (res tea.Result, err error, coalesced bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[store.Key]*flightCall)
	}
	if c, inFlight := g.calls[key]; inFlight {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err, true
		case <-ctx.Done():
			return tea.Result{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.err, false
}
