package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// sseWriter frames Server-Sent Events over an http.ResponseWriter, flushing
// after every event so progress reaches the client while the simulation is
// still running.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

// newSSE switches the response into an event stream. It fails if the
// underlying writer cannot flush (no streaming through that stack).
func newSSE(w http.ResponseWriter) (*sseWriter, error) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("serve: response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseWriter{w: w, fl: fl}, nil
}

// event emits one named event with a JSON data payload. Write errors are
// returned but typically just mean the client went away; the request context
// cancels the work independently.
func (s *sseWriter) event(name string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, b); err != nil {
		return err
	}
	s.fl.Flush()
	return nil
}
