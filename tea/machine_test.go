package tea

// Machine-spec resolution tests: the converter contract that presets carry
// exactly the literals the mode switches used to, and the resolution-order
// rules of Config.ResolvedSpec. Real-run equivalence (preset spec vs mode,
// patch vs override) lives in spec_equivalence_test.go.

import (
	"reflect"
	"strings"
	"testing"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/runahead"
	"teasim/tea/spec"
)

// TestBaselineSpecMatchesDefaultConfigs pins the bit-identity foundation:
// converting the baseline preset must reproduce the simulator packages'
// DefaultConfig values exactly, field for field. If either side gains a
// field or changes a literal, this fails before any golden drifts.
func TestBaselineSpecMatchesDefaultConfigs(t *testing.T) {
	s := spec.Baseline()
	got := pipelineConfig(&s)
	if want := pipeline.DefaultConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("pipelineConfig(Baseline) != pipeline.DefaultConfig():\ngot:  %+v\nwant: %+v", got, want)
	}
	if got, want := core.ConfigFromSpec(spec.DefaultTEA()), core.DefaultConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("core.ConfigFromSpec(DefaultTEA) != core.DefaultConfig():\ngot:  %+v\nwant: %+v", got, want)
	}
	if got, want := runahead.ConfigFromSpec(spec.DefaultRunahead()), runahead.DefaultConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("runahead.ConfigFromSpec(DefaultRunahead) != runahead.DefaultConfig():\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestModePresetsMatchModeSwitches pins each preset's pipeline-level shape
// to what the old per-mode switch hardcoded.
func TestModePresetsMatchModeSwitches(t *testing.T) {
	base := pipeline.DefaultConfig()
	cases := []struct {
		mode Mode
		want func() pipeline.Config
	}{
		{ModeBaseline, func() pipeline.Config { return base }},
		{ModeTEA, func() pipeline.Config { return base }},
		{ModeTEADedicated, func() pipeline.Config {
			c := base
			c.CompanionDedicated = true
			c.CompanionPorts = 16
			return c
		}},
		{ModeBranchRunahead, func() pipeline.Config { return base }},
		{ModeTEABigEngine, func() pipeline.Config {
			c := base
			c.CompanionDedicated = true
			c.CompanionPorts = c.ALUPorts + c.LDPorts + c.LDSTPorts + c.FPPorts
			return c
		}},
		{ModeWide16, func() pipeline.Config {
			c := base
			c.FrontWidth = 16
			c.FrontQCap = 192
			return c
		}},
	}
	if len(cases) != len(Modes()) {
		t.Fatalf("mode switch table covers %d modes, registry has %d", len(cases), len(Modes()))
	}
	for _, tc := range cases {
		s, err := tc.mode.Preset()
		if err != nil {
			t.Errorf("%s: %v", tc.mode, err)
			continue
		}
		if got, want := pipelineConfig(&s), tc.want(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s preset pipeline config:\ngot:  %+v\nwant: %+v", tc.mode, got, want)
		}
	}
}

// TestModePresetRegistry asserts the mode enum and the spec preset registry
// stay consistent: every mode resolves a preset of the same name, and every
// registered preset is reachable either from a mode or as a companion
// kind's same-named zoo preset (the shootout's entry point).
func TestModePresetRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, m := range Modes() {
		if _, err := m.Preset(); err != nil {
			t.Errorf("mode %s has no preset: %v", m, err)
		}
		parsed, err := ParseMode(m.String())
		if err != nil || parsed != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), parsed, err, m)
		}
		names[m.String()] = true
	}
	for _, k := range spec.Kinds() {
		names[string(k)] = true
	}
	for _, p := range spec.Presets() {
		if !names[p] {
			t.Errorf("preset %q reachable from neither a Mode nor a companion kind", p)
		}
	}
}

// TestResolvedSpecOrder asserts the resolution order: explicit spec (or
// preset) → ablations → size overrides → Set patches, with patches winning.
func TestResolvedSpecOrder(t *testing.T) {
	cfg := Config{
		Mode:           ModeTEA,
		OnlyLoops:      true,
		FillBufferSize: 256,
		Set:            []string{"companion.tea.fill_buf_size=1024"},
	}
	s, err := cfg.ResolvedSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Companion.TEA.OnlyLoops {
		t.Error("ablation switch did not reach the resolved spec")
	}
	if s.Companion.TEA.FillBufSize != 1024 {
		t.Errorf("fill_buf_size = %d; the -set patch must win over the override field",
			s.Companion.TEA.FillBufSize)
	}

	// BlockCacheEntries rounds to geometry exactly as the old mode switch.
	cfg = Config{Mode: ModeTEA, BlockCacheEntries: 1000}
	if s, err = cfg.ResolvedSpec(); err != nil {
		t.Fatal(err)
	}
	if s.Companion.TEA.BlockCacheSets != 128 {
		t.Errorf("BlockCacheEntries=1000 resolved to %d sets, want 128", s.Companion.TEA.BlockCacheSets)
	}
}

// TestResolvedSpecRejectsCompanionOverridesOnBaseline asserts TEA-only
// knobs error on TEA-less machines instead of being silently dropped.
func TestResolvedSpecRejectsCompanionOverridesOnBaseline(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"ablation", Config{Mode: ModeBaseline, OnlyLoops: true}},
		{"size override", Config{Mode: ModeBaseline, FillBufferSize: 256}},
		{"wide16 ablation", Config{Mode: ModeWide16, NoMem: true}},
		{"runahead tea override", Config{Mode: ModeBranchRunahead, BlockCacheEntries: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.cfg.ResolvedSpec()
			if err == nil || !strings.Contains(err.Error(), "require a TEA companion") {
				t.Fatalf("ResolvedSpec = %v, want a TEA-companion-required error", err)
			}
			// And the run itself fails the same way.
			if _, err := Run("bfs", tc.cfg); err == nil {
				t.Fatal("Run accepted a config whose spec cannot resolve")
			}
		})
	}

	// An invalid patch is also rejected at resolution.
	_, err := Config{Mode: ModeBaseline, Set: []string{"backend.rob_size=-1"}}.ResolvedSpec()
	if err == nil || !strings.Contains(err.Error(), "rob_size") {
		t.Fatalf("negative rob_size resolved: %v", err)
	}
}

// TestSpecFingerprintEquivalences asserts the identities the memo cache
// relies on: override fields, their patch forms, and hand-edited specs all
// fingerprint identically when they describe the same machine.
func TestSpecFingerprintEquivalences(t *testing.T) {
	fp := func(c Config) uint64 {
		t.Helper()
		v, err := c.SpecFingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	plain := fp(Config{Mode: ModeTEA})
	if redundant := fp(Config{Mode: ModeTEA, FillBufferSize: 512}); redundant != plain {
		t.Error("override set to the preset value changed the fingerprint")
	}
	override := fp(Config{Mode: ModeTEA, FillBufferSize: 1024})
	patched := fp(Config{Mode: ModeTEA, Set: []string{"companion.tea.fill_buf_size=1024"}})
	if override != patched {
		t.Error("override field and its -set patch fingerprint differently")
	}
	if override == plain {
		t.Error("changing the fill buffer did not change the fingerprint")
	}

	teaSpec, err := ModeTEA.Preset()
	if err != nil {
		t.Fatal(err)
	}
	teaSpec.Companion.TEA.FillBufSize = 1024
	if explicit := fp(Config{Spec: &teaSpec}); explicit != override {
		t.Error("hand-edited spec and override field fingerprint differently")
	}

	// Behavioral knobs (CoSim, idle skip, telemetry) are not machine state.
	if cosim := fp(Config{Mode: ModeTEA, CoSim: true}); cosim != plain {
		t.Error("CoSim changed the machine fingerprint")
	}
}
