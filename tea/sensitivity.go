package tea

import "fmt"

// SensRow is one point of a structure-size sensitivity sweep.
type SensRow struct {
	Workload string
	Value    int
	Speedup  float64 // over the same workload's baseline
	Coverage float64
	Accuracy float64
	// Instructions is the sweep point's simulated instruction count (the
	// workload's shared baseline is folded into its first row) for
	// benchmark alloc accounting; not part of the rendered reports.
	Instructions uint64 `json:"-"`
}

// SensParam identifies a sweepable TEA/core structure.
type SensParam string

// Sweepable parameters (the paper's §IV-B/C sensitivity discussions).
const (
	SensBlockCache SensParam = "blockcache" // Block Cache data entries
	SensFillBuffer SensParam = "fillbuffer" // Fill Buffer size
	SensH2PDecay   SensParam = "h2pdecay"   // H2P decrement period
	SensLead       SensParam = "lead"       // shadow fetch queue depth
	SensFetchQueue SensParam = "fetchqueue" // main fetch queue entries
)

// SensDefaults returns the sweep values used by the harness for a parameter.
func SensDefaults(p SensParam) []int {
	switch p {
	case SensBlockCache:
		return []int{64, 128, 256, 512, 1024, 2048}
	case SensFillBuffer:
		return []int{128, 256, 512, 1024}
	case SensH2PDecay:
		return []int{10_000, 50_000, 250_000}
	case SensLead:
		return []int{1, 2, 4, 8, 16}
	case SensFetchQueue:
		return []int{32, 64, 128, 256}
	}
	return nil
}

// Sensitivity sweeps one parameter over the given values (nil = defaults)
// for every workload in opts, measuring TEA speedup over the baseline. The
// full workload × value matrix plus the per-workload baselines dispatch as
// one engine batch.
func Sensitivity(p SensParam, values []int, opts ExpOptions) ([]SensRow, error) {
	opts = opts.fill()
	if values == nil {
		values = SensDefaults(p)
	}
	stride := 1 + len(values) // baseline + one job per value, per workload
	jobs := make([]Job, 0, stride*len(opts.Workloads))
	for _, name := range opts.Workloads {
		jobs = append(jobs, opts.job(name, opts.cfg(ModeBaseline)))
		for _, v := range values {
			cfg := opts.cfg(ModeTEA)
			switch p {
			case SensBlockCache:
				cfg.BlockCacheEntries = v
			case SensFillBuffer:
				cfg.FillBufferSize = v
			case SensH2PDecay:
				cfg.H2PDecayPeriod = uint64(v)
			case SensLead:
				cfg.MaxLeadBlocks = v
			case SensFetchQueue:
				cfg.FetchQueueSize = v
			default:
				return nil, fmt.Errorf("tea: unknown sensitivity parameter %q", p)
			}
			jobs = append(jobs, opts.job(name, cfg))
		}
	}
	res, err := opts.Engine.Map(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]SensRow, 0, len(values)*len(opts.Workloads))
	for i, name := range opts.Workloads {
		base := res[i*stride]
		for j, v := range values {
			r := res[i*stride+1+j]
			instrs := r.Instructions
			if j == 0 {
				instrs += base.Instructions
			}
			rows = append(rows, SensRow{
				Workload:     name,
				Value:        v,
				Speedup:      float64(base.Cycles) / float64(r.Cycles),
				Coverage:     r.Coverage,
				Accuracy:     r.Accuracy,
				Instructions: instrs,
			})
		}
	}
	return rows, nil
}
