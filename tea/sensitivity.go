package tea

import (
	"fmt"

	"teasim/tea/spec"
)

// SensRow is one point of a structure-size sensitivity sweep.
type SensRow struct {
	Workload string
	Value    int
	Speedup  float64 // over the same workload's baseline
	Coverage float64
	Accuracy float64
	// Instructions is the sweep point's simulated instruction count (the
	// workload's shared baseline is folded into its first row) for
	// benchmark alloc accounting; not part of the rendered reports.
	Instructions uint64 `json:"-"`
	// Err annotates a quarantined sweep point (ExpOptions.Partial).
	Err string `json:"Err,omitempty"`
}

// SensParam identifies a sweepable TEA/core structure.
type SensParam string

// Sweepable parameters (the paper's §IV-B/C sensitivity discussions).
const (
	SensBlockCache SensParam = "blockcache" // Block Cache data entries
	SensFillBuffer SensParam = "fillbuffer" // Fill Buffer size
	SensH2PDecay   SensParam = "h2pdecay"   // H2P decrement period
	SensLead       SensParam = "lead"       // shadow fetch queue depth
	SensFetchQueue SensParam = "fetchqueue" // main fetch queue entries
)

// SensDefaults returns the sweep values used by the harness for a parameter.
func SensDefaults(p SensParam) []int {
	switch p {
	case SensBlockCache:
		return []int{64, 128, 256, 512, 1024, 2048}
	case SensFillBuffer:
		return []int{128, 256, 512, 1024}
	case SensH2PDecay:
		return []int{10_000, 50_000, 250_000}
	case SensLead:
		return []int{1, 2, 4, 8, 16}
	case SensFetchQueue:
		return []int{32, 64, 128, 256}
	}
	return nil
}

// Patch renders one sweep point as a dotted-path spec patch (the
// spec.MachineSpec.Set form), making every sweep a pure data edit of the TEA
// preset. Capacity-valued parameters are converted to the spec's geometry:
// SensBlockCache entries become a set count at the preset's 8-way
// associativity, rounded up to the next power of two exactly as
// spec.TEA.SetBlockCacheEntries does.
func (p SensParam) Patch(value int) (string, error) {
	switch p {
	case SensBlockCache:
		sets := 1
		for sets*spec.DefaultTEA().BlockCacheWays < value {
			sets *= 2
		}
		return fmt.Sprintf("companion.tea.block_cache_sets=%d", sets), nil
	case SensFillBuffer:
		return fmt.Sprintf("companion.tea.fill_buf_size=%d", value), nil
	case SensH2PDecay:
		return fmt.Sprintf("companion.tea.h2p_decay_period=%d", value), nil
	case SensLead:
		return fmt.Sprintf("companion.tea.max_lead_blocks=%d", value), nil
	case SensFetchQueue:
		return fmt.Sprintf("frontend.fetch_queue_size=%d", value), nil
	}
	return "", fmt.Errorf("tea: unknown sensitivity parameter %q", p)
}

// Sensitivity sweeps one parameter over the given values (nil = defaults)
// for every workload in opts, measuring TEA speedup over the baseline. Every
// sweep point is the ModeTEA preset plus one spec patch (SensParam.Patch);
// the full workload × value matrix plus the per-workload baselines dispatch
// as one engine batch. Points that patch a field back to its preset value
// fingerprint identically to the plain preset, so the engine simulates them
// once across sweeps.
func Sensitivity(p SensParam, values []int, opts ExpOptions) ([]SensRow, error) {
	opts = opts.fill()
	if values == nil {
		values = SensDefaults(p)
	}
	stride := 1 + len(values) // baseline + one job per value, per workload
	jobs := make([]Job, 0, stride*len(opts.Workloads))
	for _, name := range opts.Workloads {
		jobs = append(jobs, opts.job(name, opts.cfg(ModeBaseline)))
		for _, v := range values {
			patch, err := p.Patch(v)
			if err != nil {
				return nil, err
			}
			cfg := opts.cfg(ModeTEA)
			cfg.Set = []string{patch}
			jobs = append(jobs, opts.job(name, cfg))
		}
	}
	res, err := opts.mapJobs(opts.ctx(), jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]SensRow, 0, len(values)*len(opts.Workloads))
	for i, name := range opts.Workloads {
		base := res[i*stride]
		for j, v := range values {
			r := res[i*stride+1+j]
			instrs := r.Instructions
			if j == 0 {
				instrs += base.Instructions
			}
			row := SensRow{
				Workload:     name,
				Value:        v,
				Coverage:     r.Coverage,
				Accuracy:     r.Accuracy,
				Instructions: instrs,
			}
			switch {
			case base.Err != "":
				row.Err = base.Err
			case r.Err != "":
				row.Err = r.Err
			case r.Cycles > 0:
				row.Speedup = float64(base.Cycles) / float64(r.Cycles)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
