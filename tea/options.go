package tea

import "io"

// ExpOptions scopes an experiment reproduction run. The zero value selects
// every default, so experiments accept a struct literal setting only what
// matters; DefaultExpOptions with functional options is the equivalent
// constructor form.
type ExpOptions struct {
	// MaxInstructions per workload per configuration (default 1M).
	MaxInstructions uint64
	// Scale selects workload input sizes (default 1 = paper-like).
	Scale int
	// Workloads restricts the suite (default: all).
	Workloads []string
	// Workers bounds the experiment engine's worker pool (0 = DefaultWorkers;
	// ignored when Engine is set).
	Workers int
	// Engine, when non-nil, dispatches this experiment's cells. Sharing one
	// engine across experiments shares its baseline memoization, so repeated
	// (workload, budget, scale) baselines simulate once.
	Engine *Engine

	// Intervals samples a per-interval time series into every cell's
	// Result.Intervals (see Config.Intervals). Cells carrying telemetry are
	// never memoized, so interval-bearing experiments re-simulate their
	// baselines.
	Intervals bool
	// IntervalPeriod is the sample period in retired instructions
	// (0 = every 10k).
	IntervalPeriod uint64
	// TraceOut, when non-nil, supplies a JSONL trace destination for each
	// cell (nil return = no trace for that cell). Cells run concurrently, so
	// the factory must hand every cell its own writer.
	TraceOut func(workload string, mode Mode) io.Writer
}

// ExpOption mutates ExpOptions in DefaultExpOptions.
type ExpOption func(*ExpOptions)

// DefaultExpOptions returns the experiment defaults — 1M instructions per
// cell, paper-like input scale, the full suite — with opts applied on top:
//
//	rows, err := tea.Fig5(tea.DefaultExpOptions(tea.WithWorkloads("bfs", "xz")))
func DefaultExpOptions(opts ...ExpOption) ExpOptions {
	o := ExpOptions{
		MaxInstructions: 1_000_000,
		Scale:           1,
		Workloads:       Workloads(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithInstructions sets the per-cell instruction budget.
func WithInstructions(n uint64) ExpOption {
	return func(o *ExpOptions) { o.MaxInstructions = n }
}

// WithScale sets the workload input scale.
func WithScale(s int) ExpOption {
	return func(o *ExpOptions) { o.Scale = s }
}

// WithWorkloads restricts the suite to the named workloads.
func WithWorkloads(names ...string) ExpOption {
	return func(o *ExpOptions) { o.Workloads = names }
}

// WithWorkers bounds the worker pool (ignored with WithEngine).
func WithWorkers(n int) ExpOption {
	return func(o *ExpOptions) { o.Workers = n }
}

// WithEngine dispatches the experiment on an existing engine, sharing its
// baseline memoization.
func WithEngine(e *Engine) ExpOption {
	return func(o *ExpOptions) { o.Engine = e }
}

// WithIntervals samples a time series into every cell's Result.Intervals
// (period 0 = every 10k retired instructions).
func WithIntervals(period uint64) ExpOption {
	return func(o *ExpOptions) { o.Intervals = true; o.IntervalPeriod = period }
}

// WithTraceOut streams each cell's JSONL trace to the writer the factory
// returns for it.
func WithTraceOut(fn func(workload string, mode Mode) io.Writer) ExpOption {
	return func(o *ExpOptions) { o.TraceOut = fn }
}

// fill resolves defaults for the struct-literal path (DefaultExpOptions
// resolves everything but the engine up front; a literal may leave any
// field zero).
func (o ExpOptions) fill() ExpOptions {
	if o.MaxInstructions == 0 {
		o.MaxInstructions = 1_000_000
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if o.Engine == nil {
		o.Engine = NewEngine(o.Workers)
	}
	return o
}

// cfg builds one cell's simulation config.
func (o ExpOptions) cfg(mode Mode) Config {
	c := Config{Mode: mode, MaxInstructions: o.MaxInstructions, Scale: o.Scale}
	if o.Intervals {
		c.Intervals = true
		c.IntervalPeriod = o.IntervalPeriod
	}
	return c
}

// job builds one engine job, attaching the cell's trace destination.
func (o ExpOptions) job(name string, cfg Config) Job {
	if o.TraceOut != nil {
		cfg.TraceTo = o.TraceOut(name, cfg.Mode)
	}
	return Job{name, cfg}
}
