package tea

import (
	"context"
	"io"

	"teasim/tea/spec"
)

// ExpOptions scopes an experiment reproduction run. The zero value selects
// every default, so experiments accept a struct literal setting only what
// matters; DefaultExpOptions with functional options is the equivalent
// constructor form.
type ExpOptions struct {
	// MaxInstructions per workload per configuration (default 1M).
	MaxInstructions uint64
	// Scale selects workload input sizes (default 1 = paper-like).
	Scale int
	// Workloads restricts the suite (default: all).
	Workloads []string
	// Workers bounds the experiment engine's worker pool (0 = DefaultWorkers;
	// ignored when Engine is set).
	Workers int
	// Engine, when non-nil, dispatches this experiment's cells. Sharing one
	// engine across experiments shares its baseline memoization, so repeated
	// (workload, budget, scale) baselines simulate once.
	Engine *Engine

	// Intervals samples a per-interval time series into every cell's
	// Result.Intervals (see Config.Intervals). Cells carrying telemetry are
	// never memoized, so interval-bearing experiments re-simulate their
	// baselines.
	Intervals bool
	// IntervalPeriod is the sample period in retired instructions
	// (0 = every 10k).
	IntervalPeriod uint64
	// TraceOut, when non-nil, supplies a JSONL trace destination for each
	// cell (nil return = no trace for that cell). Cells run concurrently, so
	// the factory must hand every cell its own writer.
	TraceOut func(workload string, mode Mode) io.Writer

	// Spec supplies the machine point for the "custom" experiment (nil = the
	// baseline preset); other experiments derive their machines from their
	// modes and ignore it.
	Spec *spec.MachineSpec
	// Set holds dotted-path spec patches for the "custom" experiment, applied
	// on top of Spec (see Config.Set).
	Set []string

	// Quick runs every cell on the statistical memory tier (spec patch
	// memory.model=quick, see internal/mem/quick.go): much faster cells,
	// fidelity-marked rows (Result.Fidelity), NOT comparable to exact-tier
	// results — never mix quick rows into paper-figure tables
	// (EXPERIMENTS.md).
	Quick bool

	// Ctx cancels the experiment cooperatively (nil = context.Background()):
	// completed cells keep their results, in-flight cells finish, and the
	// experiment returns the context's error with whatever rows it built.
	Ctx context.Context
	// Partial degrades a failing cell to an annotated error row (Result.Err)
	// instead of aborting the experiment — quarantine semantics for long
	// suites where one corrupt cell should not cost the other results.
	Partial bool
	// Paranoia runs every cell with the per-cycle invariant checker
	// (Config.Paranoia): slower, never memoized, bit-identical results.
	Paranoia bool
}

// ExpOption mutates ExpOptions in DefaultExpOptions.
type ExpOption func(*ExpOptions)

// DefaultExpOptions returns the experiment defaults — 1M instructions per
// cell, paper-like input scale, the full suite — with opts applied on top:
//
//	rows, err := tea.Fig5(tea.DefaultExpOptions(tea.WithWorkloads("bfs", "xz")))
func DefaultExpOptions(opts ...ExpOption) ExpOptions {
	o := ExpOptions{
		MaxInstructions: 1_000_000,
		Scale:           1,
		Workloads:       Workloads(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithInstructions sets the per-cell instruction budget.
func WithInstructions(n uint64) ExpOption {
	return func(o *ExpOptions) { o.MaxInstructions = n }
}

// WithScale sets the workload input scale.
func WithScale(s int) ExpOption {
	return func(o *ExpOptions) { o.Scale = s }
}

// WithWorkloads restricts the suite to the named workloads.
func WithWorkloads(names ...string) ExpOption {
	return func(o *ExpOptions) { o.Workloads = names }
}

// WithWorkers bounds the worker pool (ignored with WithEngine).
func WithWorkers(n int) ExpOption {
	return func(o *ExpOptions) { o.Workers = n }
}

// WithEngine dispatches the experiment on an existing engine, sharing its
// baseline memoization.
func WithEngine(e *Engine) ExpOption {
	return func(o *ExpOptions) { o.Engine = e }
}

// WithIntervals samples a time series into every cell's Result.Intervals
// (period 0 = every 10k retired instructions).
func WithIntervals(period uint64) ExpOption {
	return func(o *ExpOptions) { o.Intervals = true; o.IntervalPeriod = period }
}

// WithTraceOut streams each cell's JSONL trace to the writer the factory
// returns for it.
func WithTraceOut(fn func(workload string, mode Mode) io.Writer) ExpOption {
	return func(o *ExpOptions) { o.TraceOut = fn }
}

// WithSpec supplies the machine point for the "custom" experiment.
func WithSpec(s *spec.MachineSpec) ExpOption {
	return func(o *ExpOptions) { o.Spec = s }
}

// WithSet adds dotted-path spec patches for the "custom" experiment.
func WithSet(patches ...string) ExpOption {
	return func(o *ExpOptions) { o.Set = append(o.Set, patches...) }
}

// WithQuick runs every cell on the statistical memory tier (fast,
// fidelity-marked, not comparable to exact-tier results).
func WithQuick() ExpOption {
	return func(o *ExpOptions) { o.Quick = true }
}

// WithContext cancels the experiment cooperatively through ctx.
func WithContext(ctx context.Context) ExpOption {
	return func(o *ExpOptions) { o.Ctx = ctx }
}

// WithPartial degrades failing cells to annotated error rows instead of
// aborting the experiment.
func WithPartial() ExpOption {
	return func(o *ExpOptions) { o.Partial = true }
}

// WithParanoia runs every cell with the per-cycle invariant checker.
func WithParanoia() ExpOption {
	return func(o *ExpOptions) { o.Paranoia = true }
}

// fill resolves defaults for the struct-literal path (DefaultExpOptions
// resolves everything but the engine up front; a literal may leave any
// field zero).
func (o ExpOptions) fill() ExpOptions {
	if o.MaxInstructions == 0 {
		o.MaxInstructions = 1_000_000
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if o.Engine == nil {
		o.Engine = NewEngine(o.Workers)
	}
	return o
}

// cfg builds one cell's simulation config.
func (o ExpOptions) cfg(mode Mode) Config {
	c := Config{Mode: mode, MaxInstructions: o.MaxInstructions, Scale: o.Scale, Paranoia: o.Paranoia}
	if o.Quick {
		c.Set = append(c.Set, "memory.model=quick")
	}
	if o.Intervals {
		c.Intervals = true
		c.IntervalPeriod = o.IntervalPeriod
	}
	return c
}

// job builds one engine job, attaching the cell's trace destination.
func (o ExpOptions) job(name string, cfg Config) Job {
	if o.TraceOut != nil {
		cfg.TraceTo = o.TraceOut(name, cfg.Mode)
	}
	return Job{name, cfg}
}

// ctx resolves the experiment's context (nil Ctx = context.Background()).
// Every experiment runner threads this value explicitly — context-first,
// like Run/RunContext — rather than re-reading the struct field.
func (o ExpOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// mapJobs dispatches an experiment's jobs under ctx and the options' failure
// semantics. Without Partial it behaves exactly like Engine.Map: the first
// (lowest-index) failure aborts with an error. With Partial, failing cells
// come back as zero Results annotated with Err, so the experiment still
// renders every healthy row; only context cancellation is an error.
func (o ExpOptions) mapJobs(ctx context.Context, jobs []Job) ([]Result, error) {
	if !o.Partial {
		return o.Engine.MapContext(ctx, jobs)
	}
	results, errs, err := o.Engine.MapPartial(ctx, jobs)
	if err != nil {
		return results, err
	}
	for i, jerr := range errs {
		if jerr != nil {
			results[i] = Result{
				Workload: jobs[i].Workload,
				Mode:     jobs[i].Cfg.Mode,
				Err:      firstLine(jerr.Error()),
			}
		}
	}
	return results, nil
}
