package tea_test

// Spec-equivalence contract (DESIGN.md §10): the declarative machine tree is
// a pure re-expression of the old hardcoded mode switches. Running a mode
// and running its preset spec must be bit-identical; a sensitivity sweep
// expressed as spec patches must reproduce the override-field curves
// exactly; and a custom, non-preset spec must run end to end.

import (
	"fmt"
	"reflect"
	"testing"

	"teasim/tea"
	"teasim/tea/spec"
)

// TestSpecModeEquivalence runs the whole suite in every mode twice — once
// through the Mode preset, once through the explicit preset spec — and
// requires bit-identical Results (the Mode label is normalized: a custom
// spec reports the scheme it attaches, not the preset's marketing name).
func TestSpecModeEquivalence(t *testing.T) {
	budget := uint64(20_000)
	for _, name := range tea.Workloads() {
		for _, mode := range tea.Modes() {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				byMode, err := tea.Run(name, tea.Config{Mode: mode, MaxInstructions: budget})
				if err != nil {
					t.Fatalf("mode run: %v", err)
				}
				preset, err := mode.Preset()
				if err != nil {
					t.Fatal(err)
				}
				bySpec, err := tea.Run(name, tea.Config{Spec: &preset, MaxInstructions: budget})
				if err != nil {
					t.Fatalf("spec run: %v", err)
				}
				bySpec.Mode = byMode.Mode
				if !reflect.DeepEqual(byMode, bySpec) {
					t.Errorf("preset spec diverges from its mode:\nmode: %+v\nspec: %+v", byMode, bySpec)
				}
			})
		}
	}
}

// TestSensitivityPatchEquivalence asserts the patch-based Sensitivity sweep
// reproduces the Fill-Buffer and Block-Cache curves of the override-field
// form exactly, and that the engine's fingerprint memo simulates each
// workload's baseline exactly once across both sweeps.
func TestSensitivityPatchEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation sweep; skipped in -short mode")
	}
	const budget = 20_000
	workloads := []string{"bfs", "mcf"}
	engine := tea.NewEngine(4)
	opts := tea.ExpOptions{MaxInstructions: budget, Scale: 1, Workloads: workloads, Engine: engine}

	sweeps := []struct {
		param    tea.SensParam
		values   []int
		override func(*tea.Config, int)
	}{
		{tea.SensFillBuffer, []int{256, 512, 1024}, func(c *tea.Config, v int) { c.FillBufferSize = v }},
		{tea.SensBlockCache, []int{256, 512, 1024}, func(c *tea.Config, v int) { c.BlockCacheEntries = v }},
	}
	for _, sw := range sweeps {
		rows, err := tea.Sensitivity(sw.param, sw.values, opts)
		if err != nil {
			t.Fatalf("%s sweep: %v", sw.param, err)
		}
		i := 0
		for _, name := range workloads {
			base, err := tea.Run(name, tea.Config{Mode: tea.ModeBaseline, MaxInstructions: budget, Scale: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range sw.values {
				cfg := tea.Config{Mode: tea.ModeTEA, MaxInstructions: budget, Scale: 1}
				sw.override(&cfg, v)
				res, err := tea.Run(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				row := rows[i]
				i++
				wantSpeedup := float64(base.Cycles) / float64(res.Cycles)
				if row.Workload != name || row.Value != v ||
					row.Speedup != wantSpeedup || row.Coverage != res.Coverage || row.Accuracy != res.Accuracy {
					t.Errorf("%s %s@%d: patch row %+v diverges from override run (speedup %v, cov %v, acc %v)",
						sw.param, name, v, row, wantSpeedup, res.Coverage, res.Accuracy)
				}
			}
		}
	}

	// Both sweeps shared one engine: per workload, the baseline must have
	// simulated once, and the default machine point — fill buffer 512 and
	// block cache 512 both patch fields back to their preset values — once.
	stats := engine.MemoStats()
	wantEntries := len(workloads) * (1 /*baseline*/ + 5 /*distinct TEA points*/)
	if stats.Entries != wantEntries {
		t.Errorf("memo holds %d entries, want %d (baseline and default TEA cells shared across sweeps)",
			stats.Entries, wantEntries)
	}
	// 2 sweeps × (1 baseline + 3 points) × 2 workloads = 16 jobs over 12
	// distinct machine points: 4 hits.
	if wantHits := 2 * len(workloads); stats.Hits != wantHits {
		t.Errorf("memo served %d hits, want %d", stats.Hits, wantHits)
	}
}

// TestCustomSpecEndToEnd runs a machine point no preset describes — a
// 1024-entry Block Cache with a 4-deep shadow fetch queue — from an explicit
// spec, end to end.
func TestCustomSpecEndToEnd(t *testing.T) {
	custom, err := spec.Preset("tea")
	if err != nil {
		t.Fatal(err)
	}
	custom.Companion.TEA.SetBlockCacheEntries(1024)
	custom.Companion.TEA.MaxLeadBlocks = 4
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := tea.Run("bfs", tea.Config{Spec: &custom, MaxInstructions: 20_000, CoSim: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("custom machine simulated nothing: %+v", res)
	}
	if res.Mode != tea.ModeTEA {
		t.Errorf("custom TEA spec labeled %s, want %s", res.Mode, tea.ModeTEA)
	}
	if want := custom.FingerprintString(); res.SpecHash != want {
		t.Errorf("result spec hash %s, want %s", res.SpecHash, want)
	}

	// The custom point is a different machine from the preset.
	preset, err := tea.Run("bfs", tea.Config{Mode: tea.ModeTEA, MaxInstructions: 20_000, CoSim: true})
	if err != nil {
		t.Fatal(err)
	}
	if preset.SpecHash == res.SpecHash {
		t.Error("custom spec fingerprints identically to the preset")
	}
}
