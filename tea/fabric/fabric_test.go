package fabric

// The fabric's chaos tests run the whole pool in-process: each "worker" is a
// goroutine running the real RunWorker loop over real pipes, with the real
// faultinject harness armed — only process death is simulated (the
// injector's Die override severs the worker's pipes and exits its goroutine
// instead of SIGKILLing the test binary). Process-level SIGKILL chaos runs
// in scripts/chaos_smoke.sh against real teaworker binaries.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"teasim/internal/faultinject"
	"teasim/tea"
	"teasim/tea/spec"
)

// stubRun is a deterministic fake simulation: same cell in, same result out,
// like the real simulator.
func stubRun(_ context.Context, w string, cfg tea.Config) (tea.Result, error) {
	fp, err := cfg.SpecFingerprint()
	if err != nil {
		return tea.Result{}, err
	}
	return tea.Result{
		Workload:     w,
		Mode:         cfg.Mode,
		SpecHash:     fmt.Sprintf("%016x", fp),
		Cycles:       uint64(len(w))*1000 + uint64(cfg.Mode)*7 + cfg.MaxInstructions,
		Instructions: cfg.MaxInstructions,
		IPC:          1.25,
	}, nil
}

var errWorkerKilled = errors.New("worker killed")

// inProc spawns fabric workers as goroutines over pipes.
type inProc struct {
	faults string                               // TEASIM_FAULTS-syntax spec, parsed per worker id
	runFor func(id int, die func()) tea.RunFunc // nil = stubRun
}

func (p *inProc) spawn(id int, journal string) (*Proc, error) {
	cr, cw := io.Pipe() // coordinator -> worker
	wr, ww := io.Pipe() // worker -> coordinator
	kill := func() {
		cr.CloseWithError(errWorkerKilled)
		wr.CloseWithError(errWorkerKilled)
	}
	// die is the in-process stand-in for SIGKILL: sever the worker's pipes
	// (the coordinator observes the same abrupt stream end a dead process
	// produces) and terminate the worker goroutine mid-flight.
	die := func() {
		ww.CloseWithError(errWorkerKilled)
		cr.CloseWithError(errWorkerKilled)
		runtime.Goexit()
	}
	var inj *faultinject.Injector
	if p.faults != "" {
		var err error
		inj, err = faultinject.Parse(p.faults, id)
		if err != nil {
			return nil, err
		}
		if inj != nil {
			inj.SetDie(die)
		}
	}
	run := tea.RunFunc(stubRun)
	if p.runFor != nil {
		run = p.runFor(id, die)
	}
	go func() {
		RunWorker(WorkerOptions{
			In: cr, Out: ww, Log: io.Discard,
			Journal:    journal,
			HBInterval: 20 * time.Millisecond,
			Faults:     inj,
			Run:        run,
		})
		ww.Close()
	}()
	return &Proc{In: cw, Out: wr, Kill: kill}, nil
}

// newTestFabric builds a coordinator over an in-process pool with fast
// chaos-friendly timings; override fields via mutate.
func newTestFabric(t *testing.T, pool *inProc, mutate func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Workers:          3,
		ShardSize:        2,
		HeartbeatTimeout: 400 * time.Millisecond,
		RetryBackoff:     5 * time.Millisecond,
		Dir:              t.TempDir(),
		Spawn:            pool.spawn,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// matrixJobs is a small Fig-8-like cell matrix.
func matrixJobs() []tea.Job {
	var jobs []tea.Job
	for _, w := range []string{"bfs", "mcf", "xz"} {
		for _, m := range []tea.Mode{tea.ModeBaseline, tea.ModeTEA, tea.ModeBranchRunahead} {
			jobs = append(jobs, tea.Job{Workload: w, Cfg: tea.Config{Mode: m, MaxInstructions: 1000, Scale: 1}})
		}
	}
	return jobs
}

// cleanResults runs the same jobs through a plain in-process engine.
func cleanResults(t *testing.T, jobs []tea.Job) []tea.Result {
	t.Helper()
	e := tea.NewEngine(4, tea.WithRunFunc(stubRun))
	res, err := e.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWireConfigRoundTrip(t *testing.T) {
	custom, err := spec.Preset("tea")
	if err != nil {
		t.Fatal(err)
	}
	if err := custom.Set("frontend.width=10"); err != nil {
		t.Fatal(err)
	}
	cfgs := []tea.Config{
		{Mode: tea.ModeBaseline, MaxInstructions: 1000, Scale: 1},
		{Mode: tea.ModeTEA, MaxInstructions: 5000, Scale: 2, OnlyLoops: true, NoMasks: true},
		{Mode: tea.ModeTEA, NoMem: true, DisableEarlyFlush: true, MaxInstructions: 100},
		{Mode: tea.ModeWide16, MaxInstructions: 1000, Scale: 1},
		{Mode: tea.ModeTEABigEngine, MaxInstructions: 1000},
		{Mode: tea.ModeTEA, BlockCacheEntries: 128, FillBufferSize: 256, H2PDecayPeriod: 10_000, MaxLeadBlocks: 4, FetchQueueSize: 64},
		{Mode: tea.ModeTEA, Set: []string{"companion.tea.fill_buf_size=1024"}},
		{Mode: tea.ModeBaseline, Spec: &custom, MaxInstructions: 2000},
	}
	for i, cfg := range cfgs {
		wantFP, err := cfg.SpecFingerprint()
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		wc, err := EncodeConfig(cfg)
		if err != nil {
			t.Fatalf("cfg %d: encode: %v", i, err)
		}
		// Through the wire: the config must survive JSON framing.
		b, err := json.Marshal(wc)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		var back WireConfig
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		got, err := DecodeConfig(back)
		if err != nil {
			t.Fatalf("cfg %d: decode: %v", i, err)
		}
		gotFP, err := got.SpecFingerprint()
		if err != nil {
			t.Fatalf("cfg %d: decoded fingerprint: %v", i, err)
		}
		if gotFP != wantFP {
			t.Errorf("cfg %d: fingerprint changed across the wire: %016x != %016x", i, gotFP, wantFP)
		}
		if got.Mode != cfg.Mode {
			t.Errorf("cfg %d: mode label changed across the wire: %v != %v", i, got.Mode, cfg.Mode)
		}
		if got.MaxInstructions != cfg.MaxInstructions || got.Scale != cfg.Scale {
			t.Errorf("cfg %d: budget changed across the wire", i)
		}
	}
	// Non-memoizable configs must refuse the wire.
	if _, err := EncodeConfig(tea.Config{Mode: tea.ModeTEA, CoSim: true}); err == nil {
		t.Error("EncodeConfig accepted a non-memoizable config")
	}
}

func TestFabricMatchesInProcessByteForByte(t *testing.T) {
	pool := &inProc{}
	c := newTestFabric(t, pool, nil)
	e := tea.NewEngine(6, tea.WithRunFunc(c.RunFunc(stubRun)))
	jobs := matrixJobs()
	got, err := e.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := cleanResults(t, jobs)
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Errorf("fabric results differ from a single-process run:\nfabric: %s\nclean:  %s", gb, wb)
	}
	st := c.Stats()
	if st.Dispatched != len(jobs) || st.Crashes != 0 || st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want %d dispatched and no faults", st, len(jobs))
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashBeforeResultRecoversFromJournal(t *testing.T) {
	var runs atomic.Int64
	pool := &inProc{
		faults: "crash-before-result@1:1",
		runFor: func(int, func()) tea.RunFunc {
			return func(ctx context.Context, w string, cfg tea.Config) (tea.Result, error) {
				runs.Add(1)
				return stubRun(ctx, w, cfg)
			}
		},
	}
	c := newTestFabric(t, pool, nil)
	e := tea.NewEngine(6, tea.WithRunFunc(c.RunFunc(stubRun)))
	jobs := matrixJobs()
	got, err := e.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := cleanResults(t, jobs); !reflect.DeepEqual(got, want) {
		t.Errorf("results after crash differ from a clean run:\ngot:  %+v\nwant: %+v", got, want)
	}
	st := c.Stats()
	if st.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", st.Crashes)
	}
	if st.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1 (the journaled-but-unreported cell)", st.Recovered)
	}
	// The recovered cell was NOT re-simulated: its fsync'd journal record
	// stood in for the lost result frame.
	if n := runs.Load(); n != int64(len(jobs)) {
		t.Errorf("worker simulations = %d, want exactly %d (no re-run of the recovered cell)", n, len(jobs))
	}
}

func TestTornJournalWriteRequeues(t *testing.T) {
	var runs atomic.Int64
	pool := &inProc{
		faults: "torn-journal@1:1",
		runFor: func(int, func()) tea.RunFunc {
			return func(ctx context.Context, w string, cfg tea.Config) (tea.Result, error) {
				runs.Add(1)
				return stubRun(ctx, w, cfg)
			}
		},
	}
	c := newTestFabric(t, pool, nil)
	e := tea.NewEngine(6, tea.WithRunFunc(c.RunFunc(stubRun)))
	jobs := matrixJobs()
	got, err := e.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := cleanResults(t, jobs); !reflect.DeepEqual(got, want) {
		t.Errorf("results after torn write differ from a clean run:\ngot:  %+v\nwant: %+v", got, want)
	}
	st := c.Stats()
	if st.Crashes != 1 || st.Recovered != 0 || st.Requeues < 1 {
		t.Errorf("stats = %+v, want 1 crash, 0 recovered (torn record must not be trusted), >=1 requeue", st)
	}
	// The torn cell ran twice: once on the dying worker (its record torn),
	// once after requeue. Nothing else re-ran.
	if n := runs.Load(); n != int64(len(jobs))+1 {
		t.Errorf("worker simulations = %d, want %d (one re-run of the torn cell)", n, len(jobs)+1)
	}
}

func TestHangWatchdogKillsStalledWorker(t *testing.T) {
	pool := &inProc{faults: "stall@1"}
	c := newTestFabric(t, pool, nil)
	e := tea.NewEngine(6, tea.WithRunFunc(c.RunFunc(stubRun)))
	jobs := matrixJobs()
	got, err := e.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if want := cleanResults(t, jobs); !reflect.DeepEqual(got, want) {
		t.Errorf("results after hang differ from a clean run:\ngot:  %+v\nwant: %+v", got, want)
	}
	st := c.Stats()
	if st.Hangs != 1 {
		t.Errorf("Hangs = %d, want 1 (frozen-beat heartbeat frames must not count as progress)", st.Hangs)
	}
	if st.Crashes != 1 || st.Requeues < 1 {
		t.Errorf("stats = %+v, want the hung worker killed and its cells requeued", st)
	}
}

func TestPoolCollapseFallsBackInProcess(t *testing.T) {
	pool := &inProc{faults: "crash-on-shard"} // every worker dies on its first shard
	c := newTestFabric(t, pool, func(cfg *Config) {
		cfg.RequeueBudget = 10
		cfg.QuarantineAfter = 10
	})
	e := tea.NewEngine(6, tea.WithRunFunc(c.RunFunc(stubRun)))
	jobs := matrixJobs()
	got, err := e.Map(jobs)
	if err != nil {
		t.Fatalf("collapse did not degrade gracefully: %v", err)
	}
	if want := cleanResults(t, jobs); !reflect.DeepEqual(got, want) {
		t.Errorf("degraded results differ from a clean run:\ngot:  %+v\nwant: %+v", got, want)
	}
	st := c.Stats()
	if !st.Collapsed || !c.Degraded() {
		t.Errorf("stats = %+v, want a collapsed pool in degraded mode", st)
	}
	if st.Live != 0 || st.Crashes != 3 {
		t.Errorf("stats = %+v, want all 3 workers dead", st)
	}
	if st.Fallbacks == 0 {
		t.Error("no cells ran through the fallback after collapse")
	}
	// A degraded fabric keeps serving new submissions in-process.
	res, err := c.RunFunc(stubRun)(context.Background(), "sssp", tea.Config{Mode: tea.ModeTEA, MaxInstructions: 1000, Scale: 1})
	if err != nil || res.Cycles == 0 {
		t.Errorf("post-collapse submission failed: %+v, %v", res, err)
	}
}

func TestToxicCellQuarantined(t *testing.T) {
	pool := &inProc{
		runFor: func(id int, die func()) tea.RunFunc {
			return func(ctx context.Context, w string, cfg tea.Config) (tea.Result, error) {
				if w == "poison" {
					die() // takes the whole worker down, like an OOM kill
				}
				return stubRun(ctx, w, cfg)
			}
		},
	}
	c := newTestFabric(t, pool, func(cfg *Config) {
		cfg.ShardSize = 1 // isolate the poison cell's blast radius
	})
	e := tea.NewEngine(4, tea.WithRunFunc(c.RunFunc(stubRun)))
	jobs := []tea.Job{
		{Workload: "bfs", Cfg: tea.Config{Mode: tea.ModeTEA, MaxInstructions: 1000, Scale: 1}},
		{Workload: "poison", Cfg: tea.Config{Mode: tea.ModeTEA, MaxInstructions: 1000, Scale: 1}},
		{Workload: "mcf", Cfg: tea.Config{Mode: tea.ModeTEA, MaxInstructions: 1000, Scale: 1}},
	}
	results, errs, err := e.MapPartial(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy cells failed alongside the toxic one: %v, %v", errs[0], errs[2])
	}
	if results[0].Cycles == 0 || results[2].Cycles == 0 {
		t.Error("healthy cells returned no results")
	}
	var qe *QuarantineError
	if errs[1] == nil || !errors.As(errs[1], &qe) {
		t.Fatalf("toxic cell error = %v, want a *QuarantineError", errs[1])
	}
	if qe.Workload != "poison" || qe.Workers < 2 {
		t.Errorf("quarantine = %+v, want the poison cell after >=2 distinct worker deaths", qe)
	}
	if !strings.Contains(qe.Error(), "quarantined") {
		t.Errorf("quarantine error message = %q", qe.Error())
	}
	st := c.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Live < 1 {
		t.Error("quarantine did not stop the toxic cell before the pool collapsed")
	}
}

func TestEngineWatchdogFedByRemoteHeartbeats(t *testing.T) {
	// A slow-but-advancing remote cell must survive the ENGINE's hang
	// watchdog: the worker's heartbeat frames are relayed into the
	// Config.Heartbeat the engine installed, exactly like a local run.
	pool := &inProc{
		runFor: func(int, func()) tea.RunFunc {
			return func(ctx context.Context, w string, cfg tea.Config) (tea.Result, error) {
				for i := uint64(1); i <= 12; i++ {
					time.Sleep(25 * time.Millisecond)
					if cfg.Heartbeat != nil {
						cfg.Heartbeat.Beat(i * 1000)
					}
				}
				return stubRun(ctx, w, cfg)
			}
		},
	}
	c := newTestFabric(t, pool, nil)
	e := tea.NewEngine(2,
		tea.WithRunFunc(c.RunFunc(stubRun)),
		tea.WithPolicy(tea.JobPolicy{HangTimeout: 150 * time.Millisecond}))
	res, err := e.Map([]tea.Job{{Workload: "bfs", Cfg: tea.Config{Mode: tea.ModeTEA, MaxInstructions: 1000, Scale: 1}}})
	if err != nil {
		t.Fatalf("advancing remote cell was killed by the engine watchdog: %v", err)
	}
	if res[0].Cycles == 0 {
		t.Error("remote cell returned no result")
	}
}

func TestMergeJournals(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, recs ...tea.JournalRecord) string {
		path := filepath.Join(dir, name)
		j, err := tea.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	recA := tea.JournalRecord{Workload: "bfs", Mode: tea.ModeTEA, Spec: "00000000000000aa", MaxInstr: 1000, Scale: 1, Result: tea.Result{Workload: "bfs", Cycles: 10}}
	recB := tea.JournalRecord{Workload: "mcf", Mode: tea.ModeBaseline, Spec: "00000000000000bb", MaxInstr: 1000, Scale: 1, Result: tea.Result{Workload: "mcf", Cycles: 20}}
	p1 := mk("worker-1.jsonl", recA, recB)
	p2 := mk("worker-2.jsonl", recB, recA) // full overlap, reversed order
	// A torn tail on one journal: half a record, no newline.
	p3 := filepath.Join(dir, "worker-3.jsonl")
	sealed, err := recA.Seal()
	if err != nil {
		t.Fatal(err)
	}
	line, err := json.Marshal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p3, line[:len(line)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	merged, dropped, err := MergeJournals(p1, p2, p3, filepath.Join(dir, "missing.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("merged %d records, want 2 (deduped by memo tuple): %+v", len(merged), merged)
	}
	if merged[0].Workload != "bfs" || merged[1].Workload != "mcf" {
		t.Errorf("merge lost first-wins ordering: %+v", merged)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1 torn record", dropped)
	}
}
