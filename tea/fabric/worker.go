package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"teasim/internal/faultinject"
	"teasim/internal/telemetry"
	"teasim/tea"
)

// WorkerOptions configures one worker loop (RunWorker). cmd/teaworker wires
// it to the process's stdin/stdout/stderr; the in-process chaos tests wire
// it to pipes so they can run a whole fabric inside one test binary.
type WorkerOptions struct {
	In  io.Reader // shard frames from the coordinator
	Out io.Writer // hello/hb/result/done frames back
	Log io.Writer // diagnostics (default os.Stderr)

	// Journal, when set, appends every completed memoizable cell to this
	// crash-safe JSONL file *before* the result frame is sent, so a worker
	// killed between finishing a cell and reporting it loses nothing: the
	// coordinator recovers the result from the journal on worker death.
	Journal string

	// HBInterval is the heartbeat frame period while a cell runs
	// (default 200ms).
	HBInterval time.Duration

	// Faults is the chaos-injection harness (nil = no faults armed). The
	// worker consults the fault-point catalog documented in faultinject.
	Faults *faultinject.Injector

	// Run is the simulation entry point (default tea.RunContext; tests stub
	// it).
	Run tea.RunFunc
}

// RunWorker executes the worker side of the fabric protocol: read shard
// frames, simulate each cell (journaling completed ones), stream heartbeats
// while simulating, and report results. It returns nil when the coordinator
// closes the input stream (clean shutdown) and an error on a protocol or I/O
// failure.
func RunWorker(o WorkerOptions) error {
	if o.Run == nil {
		o.Run = tea.RunContext
	}
	if o.HBInterval <= 0 {
		o.HBInterval = 200 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = os.Stderr
	}
	out := &frameWriter{w: o.Out}
	var jw *workerJournal
	if o.Journal != "" {
		f, err := os.OpenFile(o.Journal, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("fabric worker: open journal: %w", err)
		}
		jw = &workerJournal{f: f}
		defer f.Close()
	}
	if err := out.send(Frame{T: frameHello}); err != nil {
		return fmt.Errorf("fabric worker: hello: %w", err)
	}
	in := newFrameReader(o.In)
	for {
		f, err := in.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("fabric worker: %w", err)
		}
		if f.T != frameShard {
			continue // hello echoes, future frame types
		}
		o.Faults.Crash("crash-on-shard")
		for _, c := range f.Cells {
			runCell(&o, out, jw, c)
		}
		if err := out.send(Frame{T: frameDone, Shard: f.Shard}); err != nil {
			return fmt.Errorf("fabric worker: report shard %d: %w", f.Shard, err)
		}
	}
}

// runCell simulates one cell and reports it. A cell-level failure (spec
// resolution, simulation error) is reported as a result frame with Err — the
// coordinator treats it as final, not as a worker fault. Panics are *not*
// recovered: a panicking simulation takes the worker down, which is exactly
// the crash path the coordinator is built to absorb (requeue elsewhere,
// quarantine if it keeps happening).
func runCell(o *WorkerOptions, out *frameWriter, jw *workerJournal, c WireCell) {
	cfg, err := DecodeConfig(c.Cfg)
	if err != nil {
		sendResult(out, c.ID, nil, err)
		return
	}
	hb := &telemetry.Heartbeat{}
	cfg.Heartbeat = hb

	// Stream heartbeat frames while the cell runs. The coordinator keys
	// progress on the beat count advancing, so a wedged simulation is
	// detected even though frames keep flowing. The delay-heartbeat fault
	// suppresses the sender entirely (a worker whose pipe stalled).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if !o.Faults.Fire("delay-heartbeat") {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(o.HBInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					beats, cycle := hb.Load()
					if out.send(Frame{T: frameHB, ID: c.ID, Beats: beats, Cycle: cycle}) != nil {
						return
					}
				}
			}
		}()
	}

	o.Faults.Stall("stall")
	res, err := o.Run(context.Background(), c.Workload, cfg)
	close(stop)
	wg.Wait()

	if err == nil && jw != nil && cfg.Memoizable() {
		if jerr := jw.append(c.Workload, cfg, res, o.Faults); jerr != nil {
			fmt.Fprintf(o.Log, "fabric worker: journal %s/%s: %v\n", c.Workload, cfg.Mode, jerr)
		}
	}
	o.Faults.Crash("crash-before-result")
	sendResult(out, c.ID, &res, err)
}

// sendResult reports one cell's outcome.
func sendResult(out *frameWriter, id int, res *tea.Result, err error) {
	f := Frame{T: frameResult, ID: id}
	if err != nil {
		f.Err = err.Error()
	} else {
		f.Res = res
	}
	out.send(f)
}

// workerJournal appends sealed journal records keyed like the engine's memo
// cache, fsyncing each line so a completed cell survives the worker's death.
// It hosts the torn-journal fault site: half a line, fsync, SIGKILL — the
// realest possible torn tail for the corrupt-record drop path to absorb.
type workerJournal struct {
	mu sync.Mutex
	f  *os.File
}

func (jw *workerJournal) append(workload string, cfg tea.Config, res tea.Result, faults *faultinject.Injector) error {
	fp, err := cfg.SpecFingerprint()
	if err != nil {
		return err
	}
	rec := tea.JournalRecord{
		Workload: workload,
		Mode:     cfg.Mode,
		Spec:     fmt.Sprintf("%016x", fp),
		MaxInstr: cfg.MaxInstructions,
		Scale:    cfg.Scale,
		Result:   res,
	}
	rec, err = rec.Seal()
	if err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if faults.Fire("torn-journal") {
		jw.f.Write(line[:len(line)/2])
		jw.f.Sync()
		faults.Die()
		return fmt.Errorf("torn-journal fired") // only reached under a test Die override
	}
	if _, err := jw.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return jw.f.Sync()
}
