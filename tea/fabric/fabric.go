package fabric

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"teasim/internal/faultinject"
	"teasim/internal/telemetry"
	"teasim/tea"
)

// Config configures a Coordinator. The zero value selects every default.
type Config struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// WorkerCmd is the worker command argv (default: a `teaworker` binary
	// next to this executable, else "teaworker" from PATH). The coordinator
	// appends "-journal <path>" and sets TEASIM_WORKER_ID in the
	// environment.
	WorkerCmd []string
	// ShardSize bounds how many cells ride in one shard frame (default 4).
	// Cells in a shard run sequentially on the worker; concurrency comes
	// from the pool.
	ShardSize int
	// HeartbeatTimeout arms the no-progress watchdog (default 30s; <0
	// disables): a worker with assigned cells whose heartbeat count stops
	// advancing for this long is killed and its cells recovered or
	// requeued. Frames arriving with a frozen beat count do NOT count as
	// progress — a wedged simulation keeps chattering.
	HeartbeatTimeout time.Duration
	// RequeueBudget bounds how many times one cell is re-dispatched after
	// worker deaths before it is quarantined (default 3).
	RequeueBudget int
	// QuarantineAfter quarantines a cell once this many *distinct* workers
	// died while running it (default 2): one dead worker is bad luck, two is
	// evidence the cell kills workers.
	QuarantineAfter int
	// RetryBackoff is the delay before a cell's first requeue, doubling per
	// subsequent death (default 100ms).
	RetryBackoff time.Duration
	// Dir holds the per-worker journals (default: a temp dir removed on
	// Close).
	Dir string
	// Log receives coordinator diagnostics (default io.Discard).
	Log io.Writer
	// Spawn replaces process spawning (tests run workers in-process over
	// pipes). nil = spawn WorkerCmd.
	Spawn SpawnFunc
}

// SpawnFunc starts worker id, journaling to the given path.
type SpawnFunc func(id int, journal string) (*Proc, error)

// Proc is one spawned worker's handles. Kill must be idempotent and
// uncatchable (SIGKILL for processes); Wait reaps the worker after death and
// may be nil.
type Proc struct {
	In   io.WriteCloser
	Out  io.ReadCloser
	Kill func()
	Wait func() error
}

// Stats counts the coordinator's life so far.
type Stats struct {
	Workers     int  // configured pool size
	Live        int  // workers still alive
	Dispatched  int  // cells sent to workers (re-dispatches count again)
	Shards      int  // shard frames sent
	Crashes     int  // worker deaths observed (including hang kills)
	Hangs       int  // workers killed by the no-progress watchdog
	Requeues    int  // cells re-dispatched after a worker death
	Recovered   int  // cells recovered from a dead worker's journal
	Quarantined int  // cells given up on (budget or distinct-worker limit)
	Fallbacks   int  // cells run through the fallback RunFunc
	Collapsed   bool // the whole pool died; running degraded in-process
}

// QuarantineError marks a cell the fabric gave up on: it was dispatched
// past the requeue budget, or distinct workers kept dying while running it.
// It flows through the engine's error path like any job failure, so
// `-partial` runs render it as an ERROR row instead of losing the suite.
type QuarantineError struct {
	Workload string
	Mode     tea.Mode
	Attempts int // dispatches that ended in a worker death
	Workers  int // distinct workers that died running the cell
	Cause    string
}

func (q *QuarantineError) Error() string {
	return fmt.Sprintf("fabric: %s/%s quarantined after %d failed dispatches on %d workers: %s",
		q.Workload, q.Mode, q.Attempts, q.Workers, q.Cause)
}

// cellKey is the memo tuple matching engine memoization and journal records,
// used to recover a dead worker's completed-but-unreported cells from its
// journal.
type cellKey struct {
	workload string
	mode     tea.Mode
	spec     string // resolved fingerprint, %016x
	maxInstr uint64
	scale    int
}

// outcome is one cell's final disposition.
type outcome struct {
	res      tea.Result
	err      error
	collapse bool // pool collapsed before the cell ran; caller falls back
}

// cell is one in-flight submission. The requeue fields are only touched on
// the sequential death→backoff→redispatch path (a cell is active on at most
// one worker), so they need no lock.
type cell struct {
	id        int
	key       cellKey
	wire      WireCell
	hb        *telemetry.Heartbeat // engine watchdog pass-through (may be nil)
	done      chan outcome         // buffered 1
	delivered atomic.Bool
	attempts  int // dispatches that ended in a worker death
	diedOn    map[int]bool
}

// worker is one pool member as the coordinator sees it.
type worker struct {
	id      int
	proc    *Proc
	out     *frameWriter
	journal string

	mu           sync.Mutex
	active       map[int]*cell
	beats        map[int]uint64
	lastProgress time.Time
	dead         bool
}

// Coordinator owns a worker pool and dispatches cells to it. Construct with
// New; plug into an engine with RunFunc. Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	dir    string
	ownDir bool

	ctx       context.Context
	cancel    context.CancelFunc
	submit    chan *cell
	idle      chan *worker
	collapsed chan struct{}
	wg        sync.WaitGroup
	nextID    atomic.Int64
	nextShard atomic.Int64

	mu       sync.Mutex
	live     int
	degraded bool
	closed   bool
	st       Stats
	workers  []*worker
}

// DefaultWorkerCmd locates the worker binary: `teaworker` beside the current
// executable, else bare "teaworker" resolved from PATH at spawn time.
func DefaultWorkerCmd() []string {
	if exe, err := os.Executable(); err == nil {
		p := filepath.Join(filepath.Dir(exe), "teaworker")
		if _, err := os.Stat(p); err == nil {
			return []string{p}
		}
	}
	return []string{"teaworker"}
}

// New builds a coordinator and spawns its worker pool. Workers that fail to
// spawn are logged and skipped; New fails only when none spawn.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 4
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 30 * time.Second
	}
	if cfg.RequeueBudget <= 0 {
		cfg.RequeueBudget = 3
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if len(cfg.WorkerCmd) == 0 {
		cfg.WorkerCmd = DefaultWorkerCmd()
	}
	c := &Coordinator{
		cfg:       cfg,
		dir:       cfg.Dir,
		submit:    make(chan *cell, 256),
		idle:      make(chan *worker, cfg.Workers),
		collapsed: make(chan struct{}),
	}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "teafabric-*")
		if err != nil {
			return nil, fmt.Errorf("fabric: %w", err)
		}
		c.dir, c.ownDir = dir, true
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	spawn := cfg.Spawn
	if spawn == nil {
		spawn = c.spawnProc
	}
	for i := 1; i <= cfg.Workers; i++ {
		journal := filepath.Join(c.dir, fmt.Sprintf("worker-%d.jsonl", i))
		proc, err := spawn(i, journal)
		if err != nil {
			fmt.Fprintf(cfg.Log, "fabric: worker %d failed to spawn: %v\n", i, err)
			continue
		}
		w := &worker{
			id:           i,
			proc:         proc,
			out:          &frameWriter{w: proc.In},
			journal:      journal,
			active:       make(map[int]*cell),
			beats:        make(map[int]uint64),
			lastProgress: time.Now(),
		}
		c.workers = append(c.workers, w)
		c.live++
		c.idle <- w
		c.wg.Add(2)
		go c.reader(w)
		go c.monitor(w)
	}
	c.st.Workers = cfg.Workers
	if c.live == 0 {
		c.cancel()
		if c.ownDir {
			os.RemoveAll(c.dir)
		}
		return nil, fmt.Errorf("fabric: no workers spawned (cmd %v)", cfg.WorkerCmd)
	}
	c.wg.Add(1)
	go c.dispatcher()
	return c, nil
}

// spawnProc is the default SpawnFunc: one worker process on stdin/stdout
// pipes, stderr forwarded to the coordinator log, TEASIM_WORKER_ID set so
// faultinject @worker selectors address it.
func (c *Coordinator) spawnProc(id int, journal string) (*Proc, error) {
	argv := append(append([]string{}, c.cfg.WorkerCmd...), "-journal", journal)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d", faultinject.EnvWorkerID, id))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &Proc{
		In:   stdin,
		Out:  stdout,
		Kill: func() { cmd.Process.Kill() },
		Wait: cmd.Wait,
	}, nil
}

// RunFunc returns a tea.RunFunc backed by this fabric, for tea.WithRunFunc
// or serve.Config.RunFunc. Non-memoizable configs (telemetry, co-sim,
// paranoia, fast-path ablations — anything that cannot cross the wire) and
// every cell after pool collapse run through fallback (nil = tea.RunContext)
// in-process.
func (c *Coordinator) RunFunc(fallback tea.RunFunc) tea.RunFunc {
	if fallback == nil {
		fallback = tea.RunContext
	}
	return func(ctx context.Context, workload string, cfg tea.Config) (tea.Result, error) {
		if !cfg.Memoizable() || c.Degraded() {
			c.countFallback()
			return fallback(ctx, workload, cfg)
		}
		fp, err := cfg.SpecFingerprint()
		if err != nil {
			// Unresolvable spec: let the in-process path surface the
			// resolution error with full context.
			c.countFallback()
			return fallback(ctx, workload, cfg)
		}
		wc, err := EncodeConfig(cfg)
		if err != nil {
			c.countFallback()
			return fallback(ctx, workload, cfg)
		}
		cl := &cell{
			id: int(c.nextID.Add(1)),
			key: cellKey{
				workload: workload,
				mode:     cfg.Mode,
				spec:     fmt.Sprintf("%016x", fp),
				maxInstr: cfg.MaxInstructions,
				scale:    cfg.Scale,
			},
			hb:     cfg.Heartbeat,
			done:   make(chan outcome, 1),
			diedOn: make(map[int]bool),
		}
		cl.wire = WireCell{ID: cl.id, Workload: workload, Cfg: wc}
		select {
		case c.submit <- cl:
		case <-c.collapsed:
			c.countFallback()
			return fallback(ctx, workload, cfg)
		case <-ctx.Done():
			return tea.Result{}, ctx.Err()
		}
		select {
		case o := <-cl.done:
			if o.collapse {
				c.countFallback()
				return fallback(ctx, workload, cfg)
			}
			return o.res, o.err
		case <-ctx.Done():
			// Abandon the cell; a late delivery parks in the buffered done
			// channel and is garbage collected with it.
			return tea.Result{}, ctx.Err()
		}
	}
}

// Degraded reports whether the pool has collapsed and the fabric is routing
// everything through the fallback.
func (c *Coordinator) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Live = c.live
	return st
}

// JournalDir returns the directory holding the per-worker journals, so a
// caller can merge them (MergeJournals) or keep them for forensics.
func (c *Coordinator) JournalDir() string { return c.dir }

func (c *Coordinator) countFallback() {
	c.mu.Lock()
	c.st.Fallbacks++
	c.mu.Unlock()
}

// Close shuts the pool down: workers get EOF on stdin (clean exit), then a
// kill, and the coordinator's goroutines drain. Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	workers := c.workers
	c.mu.Unlock()
	for _, w := range workers {
		w.proc.In.Close()
	}
	c.cancel()
	for _, w := range workers {
		w.proc.Kill()
	}
	c.wg.Wait()
	if c.ownDir {
		os.RemoveAll(c.dir)
	}
	return nil
}

// dispatcher pulls submitted cells, batches them into shards, and assigns
// each shard to a live idle worker. After pool collapse it degrades to
// delivering collapse outcomes so no submitter is left hanging.
func (c *Coordinator) dispatcher() {
	defer c.wg.Done()
	for {
		var first *cell
		select {
		case first = <-c.submit:
		case <-c.collapsed:
			c.drainCollapsed()
			return
		case <-c.ctx.Done():
			return
		}
		cells := []*cell{first}
	gather:
		for len(cells) < c.cfg.ShardSize {
			select {
			case cl := <-c.submit:
				cells = append(cells, cl)
			default:
				break gather
			}
		}
		var w *worker
		for w == nil {
			select {
			case cand := <-c.idle:
				cand.mu.Lock()
				if !cand.dead {
					w = cand
				}
				cand.mu.Unlock()
			case <-c.collapsed:
				for _, cl := range cells {
					c.deliver(cl, outcome{collapse: true})
				}
				c.drainCollapsed()
				return
			case <-c.ctx.Done():
				return
			}
		}
		c.assign(w, cells)
	}
}

// drainCollapsed keeps answering cells that raced into the submit queue
// around the moment of collapse, until Close.
func (c *Coordinator) drainCollapsed() {
	for {
		select {
		case cl := <-c.submit:
			c.deliver(cl, outcome{collapse: true})
		case <-c.ctx.Done():
			return
		}
	}
}

// assign registers the cells on the worker and sends the shard frame. On a
// send failure the worker is dying; whichever of this path and the death
// path removes a cell from the active map owns requeueing it.
func (c *Coordinator) assign(w *worker, cells []*cell) {
	shard := int(c.nextShard.Add(1))
	f := Frame{T: frameShard, Shard: shard}
	w.mu.Lock()
	for _, cl := range cells {
		w.active[cl.id] = cl
		w.beats[cl.id] = 0
		f.Cells = append(f.Cells, cl.wire)
	}
	w.lastProgress = time.Now()
	w.mu.Unlock()
	c.mu.Lock()
	c.st.Shards++
	c.st.Dispatched += len(cells)
	c.mu.Unlock()
	fmt.Fprintf(c.cfg.Log, "fabric: shard %d (%d cells) -> worker %d\n", shard, len(cells), w.id)
	if err := w.out.send(f); err != nil {
		for _, cl := range c.takeActive(w, cells) {
			c.requeue(cl, w.id, err)
		}
	}
}

// takeActive removes and returns the given cells still registered on the
// worker (the death path may have claimed some already).
func (c *Coordinator) takeActive(w *worker, cells []*cell) []*cell {
	w.mu.Lock()
	defer w.mu.Unlock()
	var taken []*cell
	for _, cl := range cells {
		if w.active[cl.id] == cl {
			delete(w.active, cl.id)
			taken = append(taken, cl)
		}
	}
	return taken
}

// reader consumes one worker's output stream: heartbeats feed the progress
// clock (and the engine's own hang watchdog through the cell's Heartbeat),
// results resolve cells, done frames return the worker to the idle pool.
// Stream end — clean or not — is the worker's death.
func (c *Coordinator) reader(w *worker) {
	defer c.wg.Done()
	in := newFrameReader(w.proc.Out)
	for {
		f, err := in.next()
		if err != nil {
			c.workerDied(w, err)
			return
		}
		switch f.T {
		case frameHB:
			w.mu.Lock()
			cl := w.active[f.ID]
			advanced := f.Beats > w.beats[f.ID]
			if advanced {
				w.beats[f.ID] = f.Beats
				w.lastProgress = time.Now()
			}
			w.mu.Unlock()
			if advanced && cl != nil && cl.hb != nil {
				cl.hb.Beat(f.Cycle)
			}
		case frameResult:
			w.mu.Lock()
			cl := w.active[f.ID]
			delete(w.active, f.ID)
			w.lastProgress = time.Now()
			w.mu.Unlock()
			if cl == nil {
				break // duplicate or abandoned cell
			}
			switch {
			case f.Err != "":
				c.deliver(cl, outcome{err: fmt.Errorf("fabric worker %d: %s", w.id, f.Err)})
			case f.Res != nil:
				c.deliver(cl, outcome{res: *f.Res})
			default:
				c.deliver(cl, outcome{err: fmt.Errorf("fabric worker %d: empty result frame", w.id)})
			}
		case frameDone:
			w.mu.Lock()
			w.lastProgress = time.Now()
			dead := w.dead
			w.mu.Unlock()
			if !dead {
				c.idle <- w // cap == pool size: never blocks
			}
		}
	}
}

// monitor is the per-worker no-progress watchdog: a worker with assigned
// cells whose heartbeat stops advancing for HeartbeatTimeout is killed; the
// death path then recovers or requeues its cells.
func (c *Coordinator) monitor(w *worker) {
	defer c.wg.Done()
	if c.cfg.HeartbeatTimeout <= 0 {
		return
	}
	tick := c.cfg.HeartbeatTimeout / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case now := <-t.C:
			w.mu.Lock()
			hung := !w.dead && len(w.active) > 0 &&
				now.Sub(w.lastProgress) >= c.cfg.HeartbeatTimeout
			w.mu.Unlock()
			if hung {
				c.mu.Lock()
				c.st.Hangs++
				c.mu.Unlock()
				fmt.Fprintf(c.cfg.Log, "fabric: worker %d hung (no progress for %v), killing\n",
					w.id, c.cfg.HeartbeatTimeout)
				w.proc.Kill() // reader observes EOF -> workerDied
				return
			}
		}
	}
}

// workerDied handles one worker's death: recover completed-but-unreported
// cells from its journal, requeue the rest, and flip the fabric into
// degraded mode when the last worker goes.
func (c *Coordinator) workerDied(w *worker, cause error) {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	orphans := make([]*cell, 0, len(w.active))
	for _, cl := range w.active {
		orphans = append(orphans, cl)
	}
	w.active = make(map[int]*cell)
	w.mu.Unlock()
	w.proc.Kill()
	if w.proc.Wait != nil {
		go w.proc.Wait()
	}

	c.mu.Lock()
	closed := c.closed
	c.live--
	collapsed := c.live == 0 && !closed
	if collapsed {
		c.degraded = true
		c.st.Collapsed = true
	}
	if !closed {
		c.st.Crashes++
	}
	c.mu.Unlock()
	if closed {
		return
	}
	fmt.Fprintf(c.cfg.Log, "fabric: worker %d died (%v), %d cells orphaned\n", w.id, cause, len(orphans))
	if collapsed {
		close(c.collapsed)
	}

	// A cell the worker finished and journaled but never reported is not
	// re-simulated: the fsync'd journal record (checksummed, memo-keyed) is
	// recovered as the cell's result. Torn or corrupt lines fail
	// verification and are dropped, so those cells requeue instead.
	byKey := make(map[cellKey]tea.Result)
	recs, dropped, jerr := tea.ReadJournal(w.journal)
	if jerr != nil {
		fmt.Fprintf(c.cfg.Log, "fabric: worker %d journal: %v\n", w.id, jerr)
	}
	if dropped > 0 {
		fmt.Fprintf(c.cfg.Log, "fabric: worker %d journal: %d corrupt record(s) dropped\n", w.id, dropped)
	}
	for _, rec := range recs {
		byKey[cellKey{rec.Workload, rec.Mode, rec.Spec, rec.MaxInstr, rec.Scale}] = rec.Result
	}
	for _, cl := range orphans {
		if res, ok := byKey[cl.key]; ok {
			c.mu.Lock()
			c.st.Recovered++
			c.mu.Unlock()
			fmt.Fprintf(c.cfg.Log, "fabric: recovered %s/%s from worker %d journal\n",
				cl.key.workload, cl.key.mode, w.id)
			c.deliver(cl, outcome{res: res})
			continue
		}
		c.requeue(cl, w.id, cause)
	}
}

// requeue re-dispatches a cell after a worker death, under exponential
// backoff and the quarantine limits.
func (c *Coordinator) requeue(cl *cell, workerID int, cause error) {
	cl.diedOn[workerID] = true
	cl.attempts++
	c.mu.Lock()
	degraded := c.degraded
	c.mu.Unlock()
	if degraded {
		c.deliver(cl, outcome{collapse: true})
		return
	}
	if len(cl.diedOn) >= c.cfg.QuarantineAfter || cl.attempts > c.cfg.RequeueBudget {
		c.mu.Lock()
		c.st.Quarantined++
		c.mu.Unlock()
		c.deliver(cl, outcome{err: &QuarantineError{
			Workload: cl.key.workload,
			Mode:     cl.key.mode,
			Attempts: cl.attempts,
			Workers:  len(cl.diedOn),
			Cause:    cause.Error(),
		}})
		return
	}
	c.mu.Lock()
	c.st.Requeues++
	c.mu.Unlock()
	backoff := c.cfg.RetryBackoff << uint(cl.attempts-1)
	fmt.Fprintf(c.cfg.Log, "fabric: requeueing %s/%s in %v (attempt %d)\n",
		cl.key.workload, cl.key.mode, backoff, cl.attempts)
	if cl.hb != nil {
		// Keep the engine-side hang watchdog fed while the cell waits out
		// its backoff: requeue latency is fabric scheduling, not a wedge.
		cl.hb.Beat(0)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-time.After(backoff):
		case <-c.ctx.Done():
			c.deliver(cl, outcome{err: c.ctx.Err()})
			return
		}
		select {
		case c.submit <- cl:
		case <-c.collapsed:
			c.deliver(cl, outcome{collapse: true})
		case <-c.ctx.Done():
			c.deliver(cl, outcome{err: c.ctx.Err()})
		}
	}()
}

// deliver resolves a cell exactly once.
func (c *Coordinator) deliver(cl *cell, o outcome) {
	if cl.delivered.CompareAndSwap(false, true) {
		cl.done <- o
	}
}

// MergeJournals reads every journal file and returns the union of intact
// records — first occurrence wins per memo tuple, matching the engine's
// memoization — plus the total count of corrupt or torn lines dropped.
// Merging a fabric's worker journals yields the same record set a
// single-process run would have journaled (order aside).
func MergeJournals(paths ...string) ([]tea.JournalRecord, int, error) {
	seen := make(map[cellKey]bool)
	var merged []tea.JournalRecord
	totalDropped := 0
	for _, p := range paths {
		recs, dropped, err := tea.ReadJournal(p)
		totalDropped += dropped
		if err != nil {
			return merged, totalDropped, err
		}
		for _, rec := range recs {
			key := cellKey{rec.Workload, rec.Mode, rec.Spec, rec.MaxInstr, rec.Scale}
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, rec)
		}
	}
	return merged, totalDropped, nil
}
