// Package fabric scales the experiment engine across worker processes: a
// Coordinator partitions submitted cells into shards, dispatches them to a
// pool of `teaworker` processes over a checksummed JSONL protocol on
// stdin/stdout, and reassembles the results so a fabric-backed run is
// byte-identical to a single-process one. Robustness is the point of the
// layer, not an afterthought: workers are expected to crash (SIGKILL, OOM,
// nonzero exit), hang, and tear journal writes, and the coordinator's job is
// to notice (per-shard heartbeats, a no-progress watchdog), recover what the
// dead worker already journaled, requeue the rest onto surviving workers
// under exponential backoff, quarantine cells that keep killing workers, and
// degrade to in-process execution when the pool collapses entirely.
//
// The coordinator plugs in below the engine's memoization/journaling layer
// as a tea.RunFunc (Coordinator.RunFunc with tea.WithRunFunc), so every
// engine feature — memo cache, resume journals, job policy, partial-failure
// quarantine rows — composes with remote execution unchanged. See DESIGN.md
// §16 for the protocol and the requeue/quarantine state machine.
package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"

	"teasim/tea"
	"teasim/tea/spec"
)

// Frame types. Coordinator → worker: shard. Worker → coordinator: hello
// (once, at startup), hb (per running cell, periodic), result (per cell),
// done (per shard).
const (
	frameHello  = "hello"
	frameShard  = "shard"
	frameHB     = "hb"
	frameResult = "result"
	frameDone   = "done"
)

// Frame is one line of the coordinator↔worker protocol: single-line JSON,
// FNV-1a checksummed like a JournalRecord, so a torn or corrupted pipe read
// is detected instead of silently mislabeling a result. Unknown frame types
// are skipped by both sides, leaving room to extend the protocol.
type Frame struct {
	T     string     `json:"t"`
	Shard int        `json:"shard,omitempty"` // shard id (shard, done)
	ID    int        `json:"id,omitempty"`    // cell id (hb, result)
	Cells []WireCell `json:"cells,omitempty"` // shard payload

	// Heartbeat payload (hb): the worker-local simulation heartbeat. Beats
	// must advance for the coordinator to count progress — a wedged cell's
	// hb frames keep arriving with a frozen count and are rightly ignored.
	Beats uint64 `json:"beats,omitempty"`
	Cycle uint64 `json:"cycle,omitempty"`

	// Result payload (result): exactly one of Res and Err.
	Res *tea.Result `json:"res,omitempty"`
	Err string      `json:"err,omitempty"`

	// Sum is the FNV-1a 64 hash (hex) of the frame's JSON with this field
	// empty.
	Sum string `json:"sum,omitempty"`
}

// frameChecksum hashes the frame with its Sum cleared. json.Marshal of a
// struct is deterministic (declaration order), so the byte stream is stable
// between the sealing and verifying side.
func frameChecksum(f Frame) (string, error) {
	f.Sum = ""
	b, err := json.Marshal(f)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16), nil
}

// seal fills the frame's checksum.
func (f Frame) seal() (Frame, error) {
	sum, err := frameChecksum(f)
	if err != nil {
		return Frame{}, err
	}
	f.Sum = sum
	return f, nil
}

// verify reports whether the frame's checksum matches its contents.
func (f Frame) verify() bool {
	if f.Sum == "" {
		return false
	}
	sum, err := frameChecksum(f)
	return err == nil && sum == f.Sum
}

// frameWriter serializes sealed frames onto one stream. The mutex matters on
// the worker side, where heartbeat-sender goroutines interleave with result
// frames on the same stdout.
type frameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// send seals and writes one frame as a single line.
func (fw *frameWriter) send(f Frame) error {
	f, err := f.seal()
	if err != nil {
		return fmt.Errorf("fabric: seal frame: %w", err)
	}
	line, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("fabric: marshal frame: %w", err)
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.buf = append(fw.buf[:0], line...)
	fw.buf = append(fw.buf, '\n')
	_, err = fw.w.Write(fw.buf)
	return err
}

// frameReader parses frames off one stream, rejecting corrupt lines.
type frameReader struct {
	sc *bufio.Scanner
}

func newFrameReader(r io.Reader) *frameReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &frameReader{sc: sc}
}

// next returns the next intact frame, io.EOF at clean end of stream, or an
// error for a read failure or a corrupt frame (the caller treats a corrupt
// frame from a worker as that worker failing).
func (fr *frameReader) next() (Frame, error) {
	for fr.sc.Scan() {
		line := fr.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var f Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return Frame{}, fmt.Errorf("fabric: corrupt frame: %w", err)
		}
		if !f.verify() {
			return Frame{}, fmt.Errorf("fabric: frame checksum mismatch")
		}
		return f, nil
	}
	if err := fr.sc.Err(); err != nil {
		return Frame{}, err
	}
	return Frame{}, io.EOF
}

// WireCell is one experiment cell in flight: the coordinator-assigned id the
// worker echoes on hb and result frames, plus the cell's identity.
type WireCell struct {
	ID       int        `json:"id"`
	Workload string     `json:"workload"`
	Cfg      WireConfig `json:"cfg"`
}

// WireConfig is the serializable subset of tea.Config — exactly the fields a
// memoizable run can carry. The Config is sent faithfully (mode name, the
// custom spec if any, patches, ablations, overrides) rather than pre-resolved
// to a spec, because Result.Mode labeling depends on how the machine was
// named: a wide16 cell resolved to a bare spec would come back labeled
// "baseline". Non-memoizable configs (telemetry, co-sim, paranoia, fast-path
// ablations) never cross the wire; the coordinator runs those through its
// fallback.
type WireConfig struct {
	Mode tea.Mode        `json:"mode"`
	Spec json.RawMessage `json:"spec,omitempty"` // canonical spec JSON, when Config.Spec != nil
	Set  []string        `json:"set,omitempty"`

	MaxInstr uint64 `json:"max_instr,omitempty"`
	Scale    int    `json:"scale,omitempty"`

	OnlyLoops         bool `json:"only_loops,omitempty"`
	NoMasks           bool `json:"no_masks,omitempty"`
	NoMem             bool `json:"no_mem,omitempty"`
	DisableEarlyFlush bool `json:"no_early_flush,omitempty"`

	BlockCacheEntries int    `json:"block_cache,omitempty"`
	FillBufferSize    int    `json:"fill_buf,omitempty"`
	H2PDecayPeriod    uint64 `json:"h2p_decay,omitempty"`
	MaxLeadBlocks     int    `json:"lead_blocks,omitempty"`
	FetchQueueSize    int    `json:"fetch_queue,omitempty"`
}

// EncodeConfig serializes a memoizable config for the wire.
func EncodeConfig(cfg tea.Config) (WireConfig, error) {
	if !cfg.Memoizable() {
		return WireConfig{}, fmt.Errorf("fabric: config is not memoizable, cannot be dispatched remotely")
	}
	wc := WireConfig{
		Mode:              cfg.Mode,
		Set:               cfg.Set,
		MaxInstr:          cfg.MaxInstructions,
		Scale:             cfg.Scale,
		OnlyLoops:         cfg.OnlyLoops,
		NoMasks:           cfg.NoMasks,
		NoMem:             cfg.NoMem,
		DisableEarlyFlush: cfg.DisableEarlyFlush,
		BlockCacheEntries: cfg.BlockCacheEntries,
		FillBufferSize:    cfg.FillBufferSize,
		H2PDecayPeriod:    cfg.H2PDecayPeriod,
		MaxLeadBlocks:     cfg.MaxLeadBlocks,
		FetchQueueSize:    cfg.FetchQueueSize,
	}
	if cfg.Spec != nil {
		wc.Spec = cfg.Spec.Canonical()
	}
	return wc, nil
}

// DecodeConfig reconstructs the config on the worker side. The round trip
// preserves the resolved spec fingerprint (the memo/journal key) and the
// mode label (pinned by TestWireConfigRoundTrip).
func DecodeConfig(wc WireConfig) (tea.Config, error) {
	cfg := tea.Config{
		Mode:              wc.Mode,
		Set:               wc.Set,
		MaxInstructions:   wc.MaxInstr,
		Scale:             wc.Scale,
		OnlyLoops:         wc.OnlyLoops,
		NoMasks:           wc.NoMasks,
		NoMem:             wc.NoMem,
		DisableEarlyFlush: wc.DisableEarlyFlush,
		BlockCacheEntries: wc.BlockCacheEntries,
		FillBufferSize:    wc.FillBufferSize,
		H2PDecayPeriod:    wc.H2PDecayPeriod,
		MaxLeadBlocks:     wc.MaxLeadBlocks,
		FetchQueueSize:    wc.FetchQueueSize,
	}
	if len(wc.Spec) > 0 {
		s, err := spec.Parse(wc.Spec)
		if err != nil {
			return tea.Config{}, fmt.Errorf("fabric: decode cell spec: %w", err)
		}
		cfg.Spec = &s
	}
	return cfg, nil
}
