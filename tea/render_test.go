package tea_test

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"teasim/tea"
)

var update = flag.Bool("update", false, "rewrite golden report files")

// Hand-built rows: the golden files pin the rendering, not the simulator,
// so the values are small fixed numbers.

func sampleSpeedupRows() []tea.SpeedupRow {
	return []tea.SpeedupRow{
		{
			Workload: "bfs",
			Base:     tea.Result{Workload: "bfs", Mode: tea.ModeBaseline, Cycles: 200000, Instructions: 100000, IPC: 0.5, Accuracy: 1},
			With:     tea.Result{Workload: "bfs", Mode: tea.ModeTEA, Cycles: 160000, Instructions: 100000, IPC: 0.625, Coverage: 0.92, Accuracy: 0.998},
			Speedup:  1.25,
		},
		{
			Workload: "mcf",
			Base:     tea.Result{Workload: "mcf", Mode: tea.ModeBaseline, Cycles: 300000, Instructions: 100000, IPC: 0.334, Accuracy: 1},
			With:     tea.Result{Workload: "mcf", Mode: tea.ModeTEA, Cycles: 250000, Instructions: 100000, IPC: 0.4, Coverage: 0.68, Accuracy: 0.941},
			Speedup:  1.2,
		},
	}
}

func sampleFig8Rows() []tea.Fig8Row {
	return []tea.Fig8Row{
		{Workload: "mcf", SimpleFlow: false, TEA: 1.2, Runahead: 1.05},
		{Workload: "bfs", SimpleFlow: true, TEA: 1.25, Runahead: 1.0},
		{Workload: "xz", SimpleFlow: true, TEA: 0.97, Runahead: 0.9},
	}
}

func sampleFig10Rows() []tea.Fig10Row {
	return []tea.Fig10Row{
		{Workload: "bfs", Config: "tea", Accuracy: 0.998, Coverage: 0.92, Saved: 31.5},
		{Workload: "mcf", Config: "tea", Accuracy: 0.941, Coverage: 0.68, Saved: 18.2},
		{Workload: "bfs", Config: "nomem", Accuracy: 0.85, Coverage: 0.4, Saved: 12.0},
		{Workload: "mcf", Config: "nomem", Accuracy: 0.8, Coverage: 0.3, Saved: 9.1},
	}
}

func TestGoldenReports(t *testing.T) {
	cases := []struct {
		name  string
		write func(w io.Writer, f tea.Format) error
	}{
		{"speedups", func(w io.Writer, f tea.Format) error {
			return tea.WriteSpeedups(w, f, "Fig 5: sample speedups", sampleSpeedupRows())
		}},
		{"fig8", func(w io.Writer, f tea.Format) error {
			return tea.WriteFig8(w, f, sampleFig8Rows())
		}},
		{"fig10", func(w io.Writer, f tea.Format) error {
			return tea.WriteFig10(w, f, sampleFig10Rows())
		}},
	}
	formats := []struct {
		ext string
		f   tea.Format
	}{
		{"txt", tea.FormatText},
		{"json", tea.FormatJSON},
		{"csv", tea.FormatCSV},
	}
	for _, c := range cases {
		for _, ff := range formats {
			t.Run(c.name+"."+ff.ext, func(t *testing.T) {
				var buf bytes.Buffer
				if err := c.write(&buf, ff.f); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join("testdata", c.name+"."+ff.ext)
				if *update {
					if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run `go test ./tea -run TestGoldenReports -update` to create)", err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Errorf("rendering changed; got:\n%s\nwant:\n%s", buf.Bytes(), want)
				}
			})
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, f := range []tea.Format{tea.FormatText, tea.FormatJSON, tea.FormatCSV} {
		got, err := tea.ParseFormat(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFormat(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := tea.ParseFormat("yaml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

func TestPrintMatchesWriteText(t *testing.T) {
	var p, w bytes.Buffer
	tea.PrintSpeedups(&p, "Fig 5: sample speedups", sampleSpeedupRows())
	if err := tea.WriteSpeedups(&w, tea.FormatText, "Fig 5: sample speedups", sampleSpeedupRows()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Bytes(), w.Bytes()) {
		t.Fatal("PrintSpeedups and WriteSpeedups(text) disagree")
	}
}

func TestModeJSONRoundTrip(t *testing.T) {
	for _, m := range []tea.Mode{tea.ModeBaseline, tea.ModeTEA, tea.ModeTEADedicated,
		tea.ModeBranchRunahead, tea.ModeTEABigEngine, tea.ModeWide16} {
		got, err := tea.ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := tea.ParseMode("warp-drive"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
