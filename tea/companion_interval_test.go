package tea

import (
	"testing"

	"teasim/tea/spec"
)

// TestCompanionOnIntervalAllKinds asserts the OnInterval contract for every
// registered companion kind: the companion annotates telemetry intervals
// with its coverage/accuracy, and sampling those intervals never perturbs
// simulation-visible state — the committed cycle and instruction counts are
// bit-identical with and without telemetry.
func TestCompanionOnIntervalAllKinds(t *testing.T) {
	for _, kind := range spec.Kinds() {
		if kind == spec.CompanionNone {
			continue
		}
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			p, err := spec.Preset(string(kind))
			if err != nil {
				t.Fatalf("kind %q has no same-named preset: %v", kind, err)
			}
			cfg := Config{
				Spec:            &p,
				MaxInstructions: 50_000,
				Scale:           1,
				Set:             []string{"memory.model=quick"},
			}
			plain, err := Run("mcf", cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Intervals = true
			cfg.IntervalPeriod = 5_000
			sampled, err := Run("mcf", cfg)
			if err != nil {
				t.Fatal(err)
			}

			if sampled.Cycles != plain.Cycles || sampled.Instructions != plain.Instructions {
				t.Errorf("interval sampling perturbed the simulation: %d/%d cycles, %d/%d instrs",
					plain.Cycles, sampled.Cycles, plain.Instructions, sampled.Instructions)
			}
			if len(sampled.Intervals) == 0 {
				t.Fatal("no intervals sampled")
			}
			annotated := 0
			for i, iv := range sampled.Intervals {
				if iv.Coverage < 0 || iv.Coverage > 1 {
					t.Errorf("interval %d: coverage %v out of [0,1]", i, iv.Coverage)
				}
				if iv.Accuracy < 0 || iv.Accuracy > 1 {
					t.Errorf("interval %d: accuracy %v out of [0,1]", i, iv.Accuracy)
				}
				if iv.Accuracy > 0 {
					annotated++
				}
			}
			// Every companion annotates accuracy 1 for intervals with no
			// precomputations, so an all-zero column means the OnInterval
			// hook never ran for this kind.
			if annotated == 0 {
				t.Error("no interval carries an accuracy annotation; OnInterval never ran")
			}
		})
	}
}
