package tea

// Internal engine tests for context cancellation and progress callbacks;
// like engine_test.go they stub the runFn seam to avoid real simulation.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubEngine returns an engine whose runFn counts invocations and calls
// hook (if non-nil) on each.
func stubEngine(workers int, calls *atomic.Int64, hook func(int64), opts ...EngineOption) *Engine {
	e := NewEngine(workers, opts...)
	e.runFn = func(_ context.Context, w string, c Config) (Result, error) {
		n := calls.Add(1)
		if hook != nil {
			hook(n)
		}
		return Result{Workload: w, Mode: c.Mode, Cycles: 100}, nil
	}
	return e
}

func teaJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Workload: "w", Cfg: Config{Mode: ModeTEA, MaxInstructions: uint64(i + 1)}}
	}
	return jobs
}

func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		e := stubEngine(workers, &calls, nil)
		res, err := e.MapContext(ctx, teaJobs(8))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: got results from a cancelled map", workers)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("cancelled map still ran %d jobs", calls.Load())
	}
}

func TestMapContextStopsClaimingOnCancel(t *testing.T) {
	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		// Cancel from inside the second job: no job after the in-flight ones
		// may be claimed.
		e := stubEngine(workers, &calls, func(n int64) {
			if n == 2 {
				cancel()
			}
		})
		_, err := e.MapContext(ctx, teaJobs(50))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight jobs finish, so at most workers extra beyond the trigger.
		if got := calls.Load(); got > int64(2+workers) {
			t.Fatalf("workers=%d: %d jobs ran after cancellation", workers, got)
		}
		cancel()
	}
}

func TestMapContextErrorStillDeterministic(t *testing.T) {
	e := NewEngine(4)
	e.runFn = func(_ context.Context, w string, c Config) (Result, error) {
		if c.MaxInstructions == 3 {
			return Result{}, errors.New("boom")
		}
		return Result{Workload: w}, nil
	}
	_, err := e.MapContext(context.Background(), teaJobs(10))
	if err == nil || !strings.Contains(err.Error(), "job 2") {
		t.Fatalf("err = %v, want the deterministic lowest-index failure (job 2)", err)
	}
}

func TestEngineProgressEvents(t *testing.T) {
	var calls atomic.Int64
	var events []JobEvent
	e := stubEngine(1, &calls, nil,
		WithProgress(func(ev JobEvent) { events = append(events, ev) }))
	jobs := teaJobs(3)
	if _, err := e.Map(jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(events), 2*len(jobs))
	}
	started := map[int]bool{}
	for _, ev := range events {
		switch ev.Phase {
		case JobStarted:
			started[ev.Index] = true
			if ev.Err != nil || ev.Wall != 0 {
				t.Fatalf("started event carries outcome fields: %+v", ev)
			}
		case JobDone:
			if !started[ev.Index] {
				t.Fatalf("job %d done before started", ev.Index)
			}
			if ev.Err != nil {
				t.Fatalf("job %d failed: %v", ev.Index, ev.Err)
			}
			if ev.Wall < 0 || ev.Wall > time.Minute {
				t.Fatalf("job %d wall time %v", ev.Index, ev.Wall)
			}
		default:
			t.Fatalf("unknown phase %v", ev.Phase)
		}
		if ev.Job.Workload != "w" {
			t.Fatalf("event lost its job: %+v", ev)
		}
	}
	if len(started) != len(jobs) {
		t.Fatalf("only %d of %d jobs reported", len(started), len(jobs))
	}
	// A callback-less engine runs jobs without notifications (and without
	// panicking on the nil callback).
	quiet := stubEngine(1, &calls, nil, WithProgress(nil))
	if _, err := quiet.Map(teaJobs(1)); err != nil {
		t.Fatal(err)
	}
}

func TestProgressSerializedUnderParallelMap(t *testing.T) {
	var calls atomic.Int64
	var count int // intentionally unsynchronized: callbacks promise serialization
	e := stubEngine(4, &calls, nil, WithProgress(func(JobEvent) { count++ }))
	if _, err := e.Map(teaJobs(32)); err != nil {
		t.Fatal(err)
	}
	if count != 64 {
		t.Fatalf("count = %d, want 64", count)
	}
}
