package tea

// The companion zoo: every companion package links here so its init-time
// factory (internal/companion.Register) and spec kind registration are
// available to any tea caller. A new companion adds one blank import.
import (
	_ "teasim/internal/bullseye"
	_ "teasim/internal/core"
	_ "teasim/internal/ldbp"
	_ "teasim/internal/runahead"
	_ "teasim/internal/twowin"
)
