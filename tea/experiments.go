package tea

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// ExpOptions scopes an experiment reproduction run.
type ExpOptions struct {
	// MaxInstructions per workload per configuration (default 1M).
	MaxInstructions uint64
	// Scale selects workload input sizes (default 1 = paper-like).
	Scale int
	// Workloads restricts the suite (default: all 16).
	Workloads []string
	// Workers bounds the experiment engine's worker pool (0 = DefaultWorkers;
	// ignored when Engine is set).
	Workers int
	// Engine, when non-nil, dispatches this experiment's cells. Sharing one
	// engine across experiments shares its baseline memoization, so repeated
	// (workload, budget, scale) baselines simulate once.
	Engine *Engine
}

func (o ExpOptions) fill() ExpOptions {
	if o.MaxInstructions == 0 {
		o.MaxInstructions = 1_000_000
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if o.Engine == nil {
		o.Engine = NewEngine(o.Workers)
	}
	return o
}

func (o ExpOptions) cfg(mode Mode) Config {
	return Config{Mode: mode, MaxInstructions: o.MaxInstructions, Scale: o.Scale}
}

// Geomean returns the geometric mean of xs (1.0 for empty input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// SpeedupRow is one workload's outcome in a speedup experiment.
type SpeedupRow struct {
	Workload string
	Base     Result
	With     Result
	Speedup  float64
}

// runSpeedups measures cycles(baseline)/cycles(mode) per workload. Every
// cell is an independent engine job; baselines come from the engine's memo
// cache when another experiment on the same engine already ran them.
func runSpeedups(o ExpOptions, mode Mode, modeCfg func(Config) Config) ([]SpeedupRow, error) {
	jobs := make([]Job, 0, 2*len(o.Workloads))
	for _, name := range o.Workloads {
		cfg := o.cfg(mode)
		if modeCfg != nil {
			cfg = modeCfg(cfg)
		}
		jobs = append(jobs, Job{name, o.cfg(ModeBaseline)}, Job{name, cfg})
	}
	res, err := o.Engine.Map(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]SpeedupRow, 0, len(o.Workloads))
	for i, name := range o.Workloads {
		base, with := res[2*i], res[2*i+1]
		rows = append(rows, SpeedupRow{
			Workload: name,
			Base:     base,
			With:     with,
			Speedup:  float64(base.Cycles) / float64(with.Cycles),
		})
	}
	return rows, nil
}

// runAll dispatches one run per workload under cfg and returns the results
// in workload order.
func runAll(o ExpOptions, cfg Config) ([]Result, error) {
	jobs := make([]Job, 0, len(o.Workloads))
	for _, name := range o.Workloads {
		jobs = append(jobs, Job{name, cfg})
	}
	return o.Engine.Map(jobs)
}

// Fig5 reproduces Fig. 5: per-benchmark performance of the on-core TEA
// thread over the baseline (paper geomean: +10.1%).
func Fig5(o ExpOptions) ([]SpeedupRow, error) {
	return runSpeedups(o.fill(), ModeTEA, nil)
}

// Fig6 reproduces Fig. 6: total branch MPKI per benchmark on the baseline.
func Fig6(o ExpOptions) ([]Result, error) {
	o = o.fill()
	return runAll(o, o.cfg(ModeBaseline))
}

// Fig7 reproduces Fig. 7: the breakdown of retired mispredictions into
// covered / late / incorrect / uncovered under the TEA thread.
func Fig7(o ExpOptions) ([]Result, error) {
	o = o.fill()
	return runAll(o, o.cfg(ModeTEA))
}

// Fig8Row pairs the TEA and Branch Runahead speedups for one workload.
type Fig8Row struct {
	Workload   string
	SimpleFlow bool
	TEA        float64
	Runahead   float64
}

// Fig8 reproduces Fig. 8: TEA vs Branch Runahead, with the paper's
// simple/complex control-flow split (paper: 10.1% vs 7.3% geomean). Both
// halves share one engine, so each workload's baseline is simulated once
// rather than once per mode.
func Fig8(o ExpOptions) ([]Fig8Row, error) {
	o = o.fill()
	teaRows, err := runSpeedups(o, ModeTEA, nil)
	if err != nil {
		return nil, err
	}
	brRows, err := runSpeedups(o, ModeBranchRunahead, nil)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, 0, len(teaRows))
	for i := range teaRows {
		rows = append(rows, Fig8Row{
			Workload:   teaRows[i].Workload,
			SimpleFlow: SimpleFlow(teaRows[i].Workload),
			TEA:        teaRows[i].Speedup,
			Runahead:   brRows[i].Speedup,
		})
	}
	return rows, nil
}

// Fig9 reproduces Fig. 9: the TEA thread on a dedicated execution engine
// (paper: 12.3% vs 10.1% on-core).
func Fig9(o ExpOptions) ([]SpeedupRow, error) {
	return runSpeedups(o.fill(), ModeTEADedicated, nil)
}

// Fig9Big reproduces §V-D's second data point: the TEA thread on an
// execution engine as large as the main core's backend (paper: +12.8%,
// "very little additional benefit" over the 16-unit engine).
func Fig9Big(o ExpOptions) ([]SpeedupRow, error) {
	return runSpeedups(o.fill(), ModeTEABigEngine, nil)
}

// Wide16 reproduces §IV-H's comparison point: a true 16-wide frontend
// without precomputation (paper: ~+2.8% for ~10% more area, versus the TEA
// thread's +10.1% for ~3.5%).
func Wide16(o ExpOptions) ([]SpeedupRow, error) {
	return runSpeedups(o.fill(), ModeWide16, nil)
}

// Fig10Config identifies one bar group of Fig. 10.
type Fig10Config struct {
	Name string
	Cfg  func(Config) Config
	Mode Mode
}

// Fig10Configs returns the five thread-construction configurations compared
// in Fig. 10: full TEA, only-loops, no-masks, no-mem, and Branch Runahead.
func Fig10Configs() []Fig10Config {
	id := func(c Config) Config { return c }
	return []Fig10Config{
		{Name: "tea", Mode: ModeTEA, Cfg: id},
		{Name: "onlyloops", Mode: ModeTEA, Cfg: func(c Config) Config { c.OnlyLoops = true; return c }},
		{Name: "nomasks", Mode: ModeTEA, Cfg: func(c Config) Config { c.NoMasks = true; return c }},
		{Name: "nomem", Mode: ModeTEA, Cfg: func(c Config) Config { c.NoMem = true; return c }},
		{Name: "runahead", Mode: ModeBranchRunahead, Cfg: id},
	}
}

// Fig10Row is one workload × configuration cell of Fig. 10: precomputation
// accuracy (a), misprediction coverage (b), and cycles saved per covered
// branch (c).
type Fig10Row struct {
	Workload string
	Config   string
	Accuracy float64
	Coverage float64
	Saved    float64
}

// Fig10 reproduces Fig. 10 (accuracy, coverage, timeliness ablations). The
// whole configuration × workload matrix is dispatched as one batch so every
// cell can run in parallel.
func Fig10(o ExpOptions) ([]Fig10Row, error) {
	o = o.fill()
	fcs := Fig10Configs()
	jobs := make([]Job, 0, len(fcs)*len(o.Workloads))
	for _, fc := range fcs {
		for _, name := range o.Workloads {
			jobs = append(jobs, Job{name, fc.Cfg(o.cfg(fc.Mode))})
		}
	}
	res, err := o.Engine.Map(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig10Row, 0, len(jobs))
	for i, fc := range fcs {
		for j, name := range o.Workloads {
			r := res[i*len(o.Workloads)+j]
			rows = append(rows, Fig10Row{
				Workload: name,
				Config:   fc.Name,
				Accuracy: r.Accuracy,
				Coverage: r.Coverage,
				Saved:    r.AvgCyclesSaved,
			})
		}
	}
	return rows, nil
}

// Table3 reproduces Table III: the extra dynamic uop footprint of the TEA
// thread per benchmark (paper average: +31.9%).
func Table3(o ExpOptions) ([]Result, error) {
	return Fig7(o) // the same runs carry UopOverheadPct
}

// PrefetchOnly reproduces the §V-B aside: TEA with early resolution
// disabled, isolating the data-prefetch side effect (paper: +1.2% overall).
func PrefetchOnly(o ExpOptions) ([]SpeedupRow, error) {
	o = o.fill()
	return runSpeedups(o, ModeTEA, func(c Config) Config {
		c.DisableEarlyFlush = true
		return c
	})
}

// --- report rendering ---

// PrintSpeedups renders speedup rows with a geomean footer.
func PrintSpeedups(w io.Writer, title string, rows []SpeedupRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprintf(tw, "workload\tbase cyc\twith cyc\tspeedup\tcoverage\taccuracy\n")
	var sp []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%+.1f%%\t%.0f%%\t%.1f%%\n",
			r.Workload, r.Base.Cycles, r.With.Cycles, 100*(r.Speedup-1),
			100*r.With.Coverage, 100*r.With.Accuracy)
		sp = append(sp, r.Speedup)
	}
	fmt.Fprintf(tw, "geomean\t\t\t%+.1f%%\t\t\n", 100*(Geomean(sp)-1))
	tw.Flush()
}

// PrintFig8 renders the TEA-vs-Branch-Runahead comparison with the paper's
// simple/complex control-flow grouping.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 8: TEA vs Branch Runahead\n")
	fmt.Fprintf(tw, "workload\tflow\tTEA\tRunahead\n")
	grouped := append([]Fig8Row(nil), rows...)
	sort.SliceStable(grouped, func(i, j int) bool {
		return grouped[i].SimpleFlow && !grouped[j].SimpleFlow
	})
	var teaAll, brAll, teaS, brS, teaC, brC []float64
	for _, r := range grouped {
		flow := "complex"
		if r.SimpleFlow {
			flow = "simple"
		}
		fmt.Fprintf(tw, "%s\t%s\t%+.1f%%\t%+.1f%%\n", r.Workload, flow,
			100*(r.TEA-1), 100*(r.Runahead-1))
		teaAll = append(teaAll, r.TEA)
		brAll = append(brAll, r.Runahead)
		if r.SimpleFlow {
			teaS, brS = append(teaS, r.TEA), append(brS, r.Runahead)
		} else {
			teaC, brC = append(teaC, r.TEA), append(brC, r.Runahead)
		}
	}
	fmt.Fprintf(tw, "geomean simple\t\t%+.1f%%\t%+.1f%%\n", 100*(Geomean(teaS)-1), 100*(Geomean(brS)-1))
	fmt.Fprintf(tw, "geomean complex\t\t%+.1f%%\t%+.1f%%\n", 100*(Geomean(teaC)-1), 100*(Geomean(brC)-1))
	fmt.Fprintf(tw, "geomean all\t\t%+.1f%%\t%+.1f%%\n", 100*(Geomean(teaAll)-1), 100*(Geomean(brAll)-1))
	tw.Flush()
}

// PrintFig6 renders the MPKI table.
func PrintFig6(w io.Writer, rows []Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 6: branch MPKI (baseline)\n")
	fmt.Fprintf(tw, "workload\tMPKI\tcond misp\ttarget misp\tIPC\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%d\t%.2f\n", r.Workload, r.MPKI,
			r.CondMispredicts, r.IndMispredicts, r.IPC)
	}
	tw.Flush()
}

// PrintFig7 renders the misprediction-coverage breakdown.
func PrintFig7(w io.Writer, rows []Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 7: misprediction breakdown under TEA\n")
	fmt.Fprintf(tw, "workload\tcovered\tlate\tincorrect\tuncovered\tcoverage\taccuracy\n")
	var cov, acc []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.0f%%\t%.1f%%\n", r.Workload,
			r.Covered, r.Late, r.Incorrect, r.Uncovered, 100*r.Coverage, 100*r.Accuracy)
		cov = append(cov, r.Coverage)
		acc = append(acc, r.Accuracy)
	}
	fmt.Fprintf(tw, "mean\t\t\t\t\t%.0f%%\t%.1f%%\n", 100*mean(cov), 100*mean(acc))
	tw.Flush()
}

// PrintFig10 renders the ablation grid.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Fig 10: thread-construction ablations\n")
	fmt.Fprintf(tw, "config\tworkload\taccuracy\tcoverage\tsaved/branch\n")
	agg := map[string][]Fig10Row{}
	var order []string
	for _, r := range rows {
		if _, seen := agg[r.Config]; !seen {
			order = append(order, r.Config)
		}
		agg[r.Config] = append(agg[r.Config], r)
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%.0f%%\t%.1f\n", r.Config, r.Workload,
			100*r.Accuracy, 100*r.Coverage, r.Saved)
	}
	for _, cfg := range order {
		var acc, cov, saved []float64
		for _, r := range agg[cfg] {
			acc = append(acc, r.Accuracy)
			cov = append(cov, r.Coverage)
			saved = append(saved, r.Saved)
		}
		fmt.Fprintf(tw, "mean %s\t\t%.1f%%\t%.0f%%\t%.1f\n", cfg,
			100*mean(acc), 100*mean(cov), mean(saved))
	}
	tw.Flush()
}

// PrintTable3 renders the dynamic-footprint table.
func PrintTable3(w io.Writer, rows []Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table III: extra dynamic uops fetched by the TEA thread\n")
	fmt.Fprintf(tw, "workload\toverhead\n")
	var ov []float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t+%.1f%%\n", r.Workload, r.UopOverheadPct)
		ov = append(ov, r.UopOverheadPct)
	}
	fmt.Fprintf(tw, "mean\t+%.1f%%\n", mean(ov))
	tw.Flush()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
