package tea

import (
	"context"
	"math"

	"teasim/tea/spec"
)

// Geomean returns the geometric mean of xs (1.0 for empty input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// SpeedupRow is one workload's outcome in a speedup experiment.
type SpeedupRow struct {
	Workload string
	Base     Result
	With     Result
	Speedup  float64
	// Err annotates a quarantined row (ExpOptions.Partial): one of the two
	// cells failed, so the speedup is meaningless and reports exclude the
	// row from aggregates.
	Err string `json:"Err,omitempty"`
}

// runSpeedups measures cycles(baseline)/cycles(mode) per workload. Every
// cell is an independent engine job; baselines come from the engine's memo
// cache when another experiment on the same engine already ran them. Like
// every runner it is context-first: ctx cancels the batch cooperatively.
func runSpeedups(ctx context.Context, o ExpOptions, mode Mode, modeCfg func(Config) Config) ([]SpeedupRow, error) {
	jobs := make([]Job, 0, 2*len(o.Workloads))
	for _, name := range o.Workloads {
		cfg := o.cfg(mode)
		if modeCfg != nil {
			cfg = modeCfg(cfg)
		}
		jobs = append(jobs, o.job(name, o.cfg(ModeBaseline)), o.job(name, cfg))
	}
	res, err := o.mapJobs(ctx, jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]SpeedupRow, 0, len(o.Workloads))
	for i, name := range o.Workloads {
		base, with := res[2*i], res[2*i+1]
		row := SpeedupRow{Workload: name, Base: base, With: with}
		switch {
		case base.Err != "":
			row.Err = base.Err
		case with.Err != "":
			row.Err = with.Err
		case with.Cycles > 0:
			row.Speedup = float64(base.Cycles) / float64(with.Cycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runAll dispatches one run per workload under cfg and returns the results
// in workload order.
func runAll(ctx context.Context, o ExpOptions, cfg Config) ([]Result, error) {
	jobs := make([]Job, 0, len(o.Workloads))
	for _, name := range o.Workloads {
		jobs = append(jobs, o.job(name, cfg))
	}
	return o.mapJobs(ctx, jobs)
}

// Fig5 reproduces Fig. 5: per-benchmark performance of the on-core TEA
// thread over the baseline (paper geomean: +10.1%).
func Fig5(o ExpOptions) ([]SpeedupRow, error) {
	o = o.fill()
	return runSpeedups(o.ctx(), o, ModeTEA, nil)
}

// Fig6 reproduces Fig. 6: total branch MPKI per benchmark on the baseline.
func Fig6(o ExpOptions) ([]Result, error) {
	o = o.fill()
	return runAll(o.ctx(), o, o.cfg(ModeBaseline))
}

// Fig7 reproduces Fig. 7: the breakdown of retired mispredictions into
// covered / late / incorrect / uncovered under the TEA thread.
func Fig7(o ExpOptions) ([]Result, error) {
	o = o.fill()
	return runAll(o.ctx(), o, o.cfg(ModeTEA))
}

// Fig8Row pairs the TEA and Branch Runahead speedups for one workload.
type Fig8Row struct {
	Workload   string
	SimpleFlow bool
	TEA        float64
	Runahead   float64
	// Instructions counts the simulated instructions behind the row (the
	// shared baseline plus both modes) for benchmark alloc accounting; it
	// is not part of the rendered reports.
	Instructions uint64 `json:"-"`
	// Err annotates a quarantined row (ExpOptions.Partial).
	Err string `json:"Err,omitempty"`
}

// Fig8 reproduces Fig. 8: TEA vs Branch Runahead, with the paper's
// simple/complex control-flow split (paper: 10.1% vs 7.3% geomean). Both
// halves share one engine, so each workload's baseline is simulated once
// rather than once per mode.
func Fig8(o ExpOptions) ([]Fig8Row, error) {
	o = o.fill()
	ctx := o.ctx()
	teaRows, err := runSpeedups(ctx, o, ModeTEA, nil)
	if err != nil {
		return nil, err
	}
	brRows, err := runSpeedups(ctx, o, ModeBranchRunahead, nil)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, 0, len(teaRows))
	for i := range teaRows {
		row := Fig8Row{
			Workload:   teaRows[i].Workload,
			SimpleFlow: SimpleFlow(teaRows[i].Workload),
			TEA:        teaRows[i].Speedup,
			Runahead:   brRows[i].Speedup,
			Instructions: teaRows[i].Base.Instructions +
				teaRows[i].With.Instructions + brRows[i].With.Instructions,
		}
		if teaRows[i].Err != "" {
			row.Err = teaRows[i].Err
		} else if brRows[i].Err != "" {
			row.Err = brRows[i].Err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9 reproduces Fig. 9: the TEA thread on a dedicated execution engine
// (paper: 12.3% vs 10.1% on-core).
func Fig9(o ExpOptions) ([]SpeedupRow, error) {
	o = o.fill()
	return runSpeedups(o.ctx(), o, ModeTEADedicated, nil)
}

// Fig9Big reproduces §V-D's second data point: the TEA thread on an
// execution engine as large as the main core's backend (paper: +12.8%,
// "very little additional benefit" over the 16-unit engine).
func Fig9Big(o ExpOptions) ([]SpeedupRow, error) {
	o = o.fill()
	return runSpeedups(o.ctx(), o, ModeTEABigEngine, nil)
}

// Wide16 reproduces §IV-H's comparison point: a true 16-wide frontend
// without precomputation (paper: ~+2.8% for ~10% more area, versus the TEA
// thread's +10.1% for ~3.5%).
func Wide16(o ExpOptions) ([]SpeedupRow, error) {
	o = o.fill()
	return runSpeedups(o.ctx(), o, ModeWide16, nil)
}

// Fig10Config identifies one bar group of Fig. 10.
type Fig10Config struct {
	Name string
	Cfg  func(Config) Config
	Mode Mode
}

// Fig10Configs returns the five thread-construction configurations compared
// in Fig. 10: full TEA, only-loops, no-masks, no-mem, and Branch Runahead.
func Fig10Configs() []Fig10Config {
	id := func(c Config) Config { return c }
	return []Fig10Config{
		{Name: "tea", Mode: ModeTEA, Cfg: id},
		{Name: "onlyloops", Mode: ModeTEA, Cfg: func(c Config) Config { c.OnlyLoops = true; return c }},
		{Name: "nomasks", Mode: ModeTEA, Cfg: func(c Config) Config { c.NoMasks = true; return c }},
		{Name: "nomem", Mode: ModeTEA, Cfg: func(c Config) Config { c.NoMem = true; return c }},
		{Name: "runahead", Mode: ModeBranchRunahead, Cfg: id},
	}
}

// Fig10Row is one workload × configuration cell of Fig. 10: precomputation
// accuracy (a), misprediction coverage (b), and cycles saved per covered
// branch (c).
type Fig10Row struct {
	Workload string
	Config   string
	Accuracy float64
	Coverage float64
	Saved    float64
	// Instructions is the cell's simulated instruction count for benchmark
	// alloc accounting; not part of the rendered reports.
	Instructions uint64 `json:"-"`
	// Err annotates a quarantined cell (ExpOptions.Partial).
	Err string `json:"Err,omitempty"`
}

// Fig10 reproduces Fig. 10 (accuracy, coverage, timeliness ablations). The
// whole configuration × workload matrix is dispatched as one batch so every
// cell can run in parallel.
func Fig10(o ExpOptions) ([]Fig10Row, error) {
	o = o.fill()
	fcs := Fig10Configs()
	jobs := make([]Job, 0, len(fcs)*len(o.Workloads))
	for _, fc := range fcs {
		for _, name := range o.Workloads {
			jobs = append(jobs, o.job(name, fc.Cfg(o.cfg(fc.Mode))))
		}
	}
	res, err := o.mapJobs(o.ctx(), jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig10Row, 0, len(jobs))
	for i, fc := range fcs {
		for j, name := range o.Workloads {
			r := res[i*len(o.Workloads)+j]
			rows = append(rows, Fig10Row{
				Workload:     name,
				Config:       fc.Name,
				Accuracy:     r.Accuracy,
				Coverage:     r.Coverage,
				Saved:        r.AvgCyclesSaved,
				Instructions: r.Instructions,
				Err:          r.Err,
			})
		}
	}
	return rows, nil
}

// Table3 reproduces Table III: the extra dynamic uop footprint of the TEA
// thread per benchmark (paper average: +31.9%).
func Table3(o ExpOptions) ([]Result, error) {
	return Fig7(o) // the same runs carry UopOverheadPct
}

// PrefetchOnly reproduces the §V-B aside: TEA with early resolution
// disabled, isolating the data-prefetch side effect (paper: +1.2% overall).
func PrefetchOnly(o ExpOptions) ([]SpeedupRow, error) {
	o = o.fill()
	return runSpeedups(o.ctx(), o, ModeTEA, func(c Config) Config {
		c.DisableEarlyFlush = true
		return c
	})
}

// Custom measures a user-supplied machine point against the baseline, per
// workload: the spec (nil = the baseline preset) with patches applied on
// top, resolved and validated once up front so a bad -config or -set fails
// before any simulation. This is the experiment behind `teaexp -config` /
// `teaexp -set`.
func Custom(machine *spec.MachineSpec, patches []string, o ExpOptions) ([]SpeedupRow, error) {
	resolved, err := (Config{Spec: machine, Set: patches}).ResolvedSpec()
	if err != nil {
		return nil, err
	}
	o = o.fill()
	return runSpeedups(o.ctx(), o, ModeBaseline, func(c Config) Config {
		c.Spec = &resolved
		return c
	})
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
