package tea

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one (workload, configuration) cell of an experiment matrix.
type Job struct {
	Workload string
	Cfg      Config
}

// Engine dispatches experiment cells to a bounded worker pool. Results come
// back in job order regardless of scheduling, so a parallel run is
// byte-identical to a sequential one. The engine also memoizes every
// memoizable cell (Config.Memoizable) — keyed by the workload, the mode
// label, the resolved machine spec's fingerprint, and the run budget — so
// paired experiments (Fig. 8's TEA-vs-Runahead matrix, sensitivity sweeps,
// or a whole `teaexp -exp all` invocation sharing one engine) simulate each
// distinct machine point exactly once: shared baselines, and equally the
// default-valued cell every sensitivity sweep revisits.
//
// A zero-value Engine is not usable; construct with NewEngine. Engines are
// safe for concurrent use and may be shared across experiments to widen the
// memoization scope.
type Engine struct {
	workers int

	// runFn is the simulation entry point (tea.Run outside tests).
	runFn func(string, Config) (Result, error)

	mu   sync.Mutex
	memo map[memoKey]*memoEntry
	hits int

	pmu      sync.Mutex // serializes progress callbacks
	progress func(JobEvent)
}

// JobPhase tags a progress notification.
type JobPhase int

// Job phases.
const (
	// JobStarted fires when a worker claims the job.
	JobStarted JobPhase = iota
	// JobDone fires when the job finishes (Err reports its outcome).
	JobDone
)

// String returns the phase name.
func (p JobPhase) String() string {
	switch p {
	case JobStarted:
		return "started"
	case JobDone:
		return "done"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// JobEvent is one progress notification from a Map run.
type JobEvent struct {
	Index int           // job index in the Map slice
	Job   Job           // the cell being simulated
	Phase JobPhase      // started or done
	Err   error         // outcome, JobDone only
	Wall  time.Duration // wall time, JobDone only (near-zero for memo hits)
}

// SetProgress installs a callback invoked at the start and end of every job
// a Map or MapContext call runs. Callbacks are serialized — they may safely
// write to a terminal or mutate shared state — and run on worker
// goroutines, so they should return quickly. Pass nil to remove.
func (e *Engine) SetProgress(fn func(JobEvent)) {
	e.pmu.Lock()
	e.progress = fn
	e.pmu.Unlock()
}

// notify delivers a progress event, serialized under pmu.
func (e *Engine) notify(ev JobEvent) {
	e.pmu.Lock()
	if e.progress != nil {
		e.progress(ev)
	}
	e.pmu.Unlock()
}

// memoKey identifies one memoizable simulation: the workload, the machine
// point (the resolved spec's fingerprint, plus the mode for the Result's
// label), and the run budget. Two configs that resolve to the same machine
// — a preset and the equivalent -set patches, or an override field and its
// patch form — share one key and therefore one simulation.
type memoKey struct {
	workload string
	mode     Mode
	fp       uint64
	maxInstr uint64
	scale    int
}

// memoEntry latches one result; once ensures a single simulation even when
// several workers want the same cell concurrently.
type memoEntry struct {
	once sync.Once
	res  Result
	err  error
}

// DefaultWorkers returns the worker count used when none is specified: the
// TEASIM_WORKERS environment variable if set and positive, else GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv("TEASIM_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// NewEngine builds an engine with the given worker-pool bound
// (workers <= 0 selects DefaultWorkers).
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Engine{
		workers: workers,
		runFn:   Run,
		memo:    make(map[memoKey]*memoEntry),
	}
}

// Workers reports the engine's worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// MemoStats reports the engine's result-cache state: how many distinct
// machine points it has simulated (or has in flight) and how many jobs were
// served from an existing entry instead of re-simulating.
type MemoStats struct {
	Entries int
	Hits    int
}

// MemoStats snapshots the memoization counters.
func (e *Engine) MemoStats() MemoStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return MemoStats{Entries: len(e.memo), Hits: e.hits}
}

// runJob executes one cell, consulting the result memo cache. Cells that
// are not memoizable (Config.Memoizable: telemetry, co-simulation, idle-skip
// debugging) always simulate, as do cells whose spec fails to resolve — the
// direct run surfaces the resolution error with full context.
func (e *Engine) runJob(j Job) (Result, error) {
	if !j.Cfg.Memoizable() {
		return e.runFn(j.Workload, j.Cfg)
	}
	fp, err := j.Cfg.SpecFingerprint()
	if err != nil {
		return e.runFn(j.Workload, j.Cfg)
	}
	key := memoKey{j.Workload, j.Cfg.Mode, fp, j.Cfg.MaxInstructions, j.Cfg.Scale}
	e.mu.Lock()
	ent := e.memo[key]
	if ent == nil {
		ent = &memoEntry{}
		e.memo[key] = ent
	} else {
		e.hits++
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ent.res, ent.err = e.runFn(j.Workload, j.Cfg)
	})
	return ent.res, ent.err
}

// Map runs every job on the worker pool and returns the results in job
// order. Workers pull jobs from a shared index, so long cells do not hold up
// the queue. A panic inside a job is captured and surfaced as that job's
// error. On error the lowest-index failure is returned (deterministically,
// independent of worker scheduling) and remaining jobs are cancelled
// best-effort.
func (e *Engine) Map(jobs []Job) ([]Result, error) {
	return e.MapContext(context.Background(), jobs)
}

// MapContext is Map with cooperative cancellation: once ctx is done,
// workers stop claiming jobs (in-flight jobs finish) and the context's
// error is returned, taking precedence over any job failure.
func (e *Engine) MapContext(ctx context.Context, jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))

	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := e.runJobInto(i, j, &results[i], &errs[i]); err != nil {
				return nil, fmt.Errorf("tea: job %d (%s/%s): %w", i, j.Workload, j.Cfg.Mode, err)
			}
		}
		return results, nil
	}

	var next, failed atomic.Int64
	failed.Store(int64(len(jobs)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= len(jobs) || int64(i) > failed.Load() {
					return
				}
				if err := e.runJobInto(i, jobs[i], &results[i], &errs[i]); err != nil {
					// Record the failure index; later jobs are skipped but
					// earlier in-flight ones finish, keeping error selection
					// deterministic.
					for {
						cur := failed.Load()
						if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tea: job %d (%s/%s): %w", i, jobs[i].Workload, jobs[i].Cfg.Mode, err)
		}
	}
	return results, nil
}

// runJobInto runs one job with panic capture and progress notification,
// storing the outcome in place.
func (e *Engine) runJobInto(i int, j Job, res *Result, errp *error) (err error) {
	e.notify(JobEvent{Index: i, Job: j, Phase: JobStarted})
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
			*errp = err
		}
		e.notify(JobEvent{Index: i, Job: j, Phase: JobDone, Err: *errp, Wall: time.Since(start)})
	}()
	*res, err = e.runJob(j)
	*errp = err
	return err
}
