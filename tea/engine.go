package tea

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"teasim/internal/telemetry"
)

// Job is one (workload, configuration) cell of an experiment matrix.
type Job struct {
	Workload string
	Cfg      Config
}

// Engine dispatches experiment cells to a bounded worker pool. Results come
// back in job order regardless of scheduling, so a parallel run is
// byte-identical to a sequential one. The engine also memoizes every
// memoizable cell (Config.Memoizable) — keyed by the workload, the mode
// label, the resolved machine spec's fingerprint, and the run budget — so
// paired experiments (Fig. 8's TEA-vs-Runahead matrix, sensitivity sweeps,
// or a whole `teaexp -exp all` invocation sharing one engine) simulate each
// distinct machine point exactly once: shared baselines, and equally the
// default-valued cell every sensitivity sweep revisits.
//
// Fault tolerance is layered on the same memo key. SetJournal records every
// freshly simulated memoizable cell to a crash-safe JSONL journal;
// SeedJournal pre-loads the cache from a previous run's journal so a killed
// suite resumes with only the missing cells. SetPolicy adds per-job
// deadlines, a no-progress hang watchdog fed by the simulation loop's cycle
// heartbeat, bounded retry for panicking jobs, and repro bundles for cells
// that fail permanently. MapPartial degrades failed cells to per-job errors
// instead of aborting the batch.
//
// A zero-value Engine is not usable; construct with NewEngine. Engines are
// safe for concurrent use and may be shared across experiments to widen the
// memoization scope.
type Engine struct {
	workers int

	// runFn is the simulation entry point (tea.RunContext unless WithRunFunc
	// or a test replaces it).
	runFn RunFunc

	mu      sync.Mutex
	memo    map[memoKey]*memoEntry
	hits    int
	seeded  int
	policy  JobPolicy
	journal JournalWriter
	sink    telemetry.Sink

	pmu      sync.Mutex // serializes progress callbacks
	progress func(JobEvent)
}

// RunFunc is the engine's simulation entry point: it simulates one workload
// under one configuration. The default is RunContext; WithRunFunc replaces it
// for callers that layer extra result sources underneath the engine (the
// serve daemon's content-addressed store) or stub simulation in tests.
type RunFunc func(ctx context.Context, workload string, cfg Config) (Result, error)

// JournalWriter persists freshly simulated memoizable cells. *Journal is the
// single-file implementation; tea/store's sharded content-addressed store is
// another.
type JournalWriter interface {
	Append(JournalRecord) error
}

// EngineOption configures an Engine at construction (NewEngine).
type EngineOption func(*Engine)

// WithPolicy sets the failure-handling policy for the engine's jobs.
func WithPolicy(p JobPolicy) EngineOption {
	return func(e *Engine) { e.policy = p }
}

// WithJournal attaches a journal: every memoizable cell the engine freshly
// simulates is durably appended after it completes. Journal write failures
// surface as the job's error — a suite that cannot checkpoint should fail
// loudly, not silently lose its resumability.
func WithJournal(j JournalWriter) EngineOption {
	return func(e *Engine) { e.journal = j }
}

// WithTelemetry attaches a sink that receives an EvJobFailure event for
// every failed job attempt, making post-hoc failure diagnosis possible even
// when the process's stderr is gone.
func WithTelemetry(s telemetry.Sink) EngineOption {
	return func(e *Engine) { e.sink = s }
}

// WithProgress installs a callback invoked at the start and end of every job
// a Map or MapContext call runs. Callbacks are serialized — they may safely
// write to a terminal or mutate shared state — and run on worker goroutines,
// so they should return quickly.
func WithProgress(fn func(JobEvent)) EngineOption {
	return func(e *Engine) { e.progress = fn }
}

// WithRunFunc replaces the engine's simulation entry point (default
// RunContext). The engine's memoization, policy, and journaling layer on top
// of whatever fn returns.
func WithRunFunc(fn RunFunc) EngineOption {
	return func(e *Engine) { e.runFn = fn }
}

// JobPhase tags a progress notification.
type JobPhase int

// Job phases.
const (
	// JobStarted fires when a worker claims the job.
	JobStarted JobPhase = iota
	// JobDone fires when the job finishes (Err reports its outcome).
	JobDone
)

// String returns the phase name.
func (p JobPhase) String() string {
	switch p {
	case JobStarted:
		return "started"
	case JobDone:
		return "done"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// JobEvent is one progress notification from a Map run.
type JobEvent struct {
	Index int           // job index in the Map slice
	Job   Job           // the cell being simulated
	Phase JobPhase      // started or done
	Err   error         // outcome, JobDone only
	Wall  time.Duration // wall time, JobDone only (near-zero for memo hits)
}

// notify delivers a progress event, serialized under pmu.
func (e *Engine) notify(ev JobEvent) {
	e.pmu.Lock()
	if e.progress != nil {
		e.progress(ev)
	}
	e.pmu.Unlock()
}

// JobPolicy configures failure handling for a job attempt. The zero value
// disables everything: no deadline, no watchdog, no retries, no bundles —
// exactly the pre-policy engine behavior.
type JobPolicy struct {
	// Timeout bounds one attempt's wall time (0 = none). A timed-out attempt
	// fails with a deadline error; timeouts are not retried (simulations are
	// deterministic — a second attempt would time out too).
	Timeout time.Duration
	// HangTimeout arms a no-progress watchdog (0 = none): an attempt whose
	// cycle heartbeat does not advance for this long is cancelled. Distinct
	// from Timeout: a slow-but-advancing cell survives, a wedged one dies in
	// HangTimeout regardless of how long the suite has run.
	HangTimeout time.Duration
	// Retries bounds re-attempts after a panic. Simulations are
	// deterministic, so retries exist for quarantine and diagnosis — the
	// final failure still surfaces, with the attempt count in the error.
	Retries int
	// RetryBackoff is the wait before the first retry, doubling per attempt
	// (0 = immediate).
	RetryBackoff time.Duration
	// ReproDir, when set, receives a repro bundle for every permanently
	// failed cell: the resolved machine spec as <workload>-<mode>-<fp>.json
	// (loadable with -config) plus a .meta.json with the workload, budget,
	// and failure.
	ReproDir string
}

// memoKey identifies one memoizable simulation: the workload, the machine
// point (the resolved spec's fingerprint, plus the mode for the Result's
// label), and the run budget. Two configs that resolve to the same machine
// — a preset and the equivalent -set patches, or an override field and its
// patch form — share one key and therefore one simulation.
type memoKey struct {
	workload string
	mode     Mode
	fp       uint64
	maxInstr uint64
	scale    int
}

// memoEntry latches one result. The mutex serializes workers wanting the
// same cell; unlike a sync.Once, a cancelled attempt can decline to latch,
// so a resumed run still simulates the cell.
type memoEntry struct {
	mu   sync.Mutex
	done bool
	res  Result
	err  error
}

// DefaultWorkers returns the worker count used when none is specified: the
// TEASIM_WORKERS environment variable if set and positive, else GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv("TEASIM_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// NewEngine builds an engine with the given worker-pool bound
// (workers <= 0 selects DefaultWorkers) and the given options applied:
//
//	eng := tea.NewEngine(0, tea.WithPolicy(policy), tea.WithJournal(j))
func NewEngine(workers int, opts ...EngineOption) *Engine {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	e := &Engine{
		workers: workers,
		runFn:   RunContext,
		memo:    make(map[memoKey]*memoEntry),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Workers reports the engine's worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// MemoStats reports the engine's result-cache state: how many distinct
// machine points it holds (simulated, in flight, or seeded), how many jobs
// were served from an existing entry instead of re-simulating, and how many
// entries came pre-seeded from a journal (SeedJournal). Entries-Seeded is
// therefore the number of cells this process actually simulated.
type MemoStats struct {
	Entries int
	Hits    int
	Seeded  int
}

// MemoStats snapshots the memoization counters.
func (e *Engine) MemoStats() MemoStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return MemoStats{Entries: len(e.memo), Hits: e.hits, Seeded: e.seeded}
}

// SeedJournal pre-loads the memo cache from journal records (ReadJournal),
// returning how many entries were installed. Records whose key fields fail
// to parse, or that collide with an existing cache entry, are skipped.
// Seeded cells count as memo hits when jobs land on them, so a resumed run
// re-simulates exactly the missing cells.
func (e *Engine) SeedJournal(recs []JournalRecord) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, rec := range recs {
		fp, err := strconv.ParseUint(rec.Spec, 16, 64)
		if err != nil {
			continue
		}
		key := memoKey{rec.Workload, rec.Mode, fp, rec.MaxInstr, rec.Scale}
		if _, exists := e.memo[key]; exists {
			continue
		}
		e.memo[key] = &memoEntry{done: true, res: rec.Result}
		n++
	}
	e.seeded += n
	return n
}

// journalAppend durably records one freshly simulated cell.
func (e *Engine) journalAppend(key memoKey, res Result) error {
	e.mu.Lock()
	j := e.journal
	e.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Append(JournalRecord{
		Workload: key.workload,
		Mode:     key.mode,
		Spec:     fmt.Sprintf("%016x", key.fp),
		MaxInstr: key.maxInstr,
		Scale:    key.scale,
		Result:   res,
	})
}

// PanicError is a job attempt that died by panic, carrying the cell's
// identity and a bounded goroutine stack so the failure is diagnosable
// post-hoc (the stack would otherwise unwind into nothing).
type PanicError struct {
	Workload string
	Mode     Mode
	SpecHash string // resolved spec fingerprint, or "unresolved"
	Val      any    // the panic value
	Stack    []byte // bounded debug.Stack() capture
}

// panicStackLimit bounds the retained stack: enough for the interesting
// frames, small enough to embed in errors and bundle metadata.
const panicStackLimit = 8 * 1024

// Error formats the panic with its cell identity; the stack follows on
// subsequent lines.
func (p *PanicError) Error() string {
	return fmt.Sprintf("panic in %s/%s (spec %s): %v\n%s",
		p.Workload, p.Mode, p.SpecHash, p.Val, p.Stack)
}

// errJobHang marks a watchdog kill (wrapped with context.Cause).
var errJobHang = errors.New("no heartbeat progress (hang watchdog)")

// errJobDeadline marks a per-job deadline expiry.
var errJobDeadline = errors.New("job deadline exceeded")

// specHashOf renders a job's resolved spec fingerprint for error messages.
func specHashOf(cfg Config) string {
	if fp, err := cfg.SpecFingerprint(); err == nil {
		return fmt.Sprintf("%016x", fp)
	}
	return "unresolved"
}

// firstLine truncates an error message to its first line for telemetry.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// emitFailure forwards one failed attempt to the telemetry sink, if any.
// attempt is 1-based; backoff is the cumulative retry backoff the cell has
// accrued before this attempt, so traces distinguish retried cells (attempt
// > 1, nonzero backoff) from first failures.
func (e *Engine) emitFailure(j Job, err error, attempt int, backoff time.Duration) {
	e.mu.Lock()
	s := e.sink
	e.mu.Unlock()
	if s == nil {
		return
	}
	ev := telemetry.Event{
		Kind:      telemetry.EvJobFailure,
		Job:       fmt.Sprintf("%s/%s@%s", j.Workload, j.Cfg.Mode, specHashOf(j.Cfg)),
		Err:       firstLine(err.Error()),
		Attempt:   attempt,
		BackoffMS: backoff.Milliseconds(),
	}
	s.Event(&ev)
}

// runAttempt executes one attempt of a job under the policy's deadline and
// hang watchdog, capturing panics with their stack. attempt and backoff
// annotate the attempt's telemetry (see emitFailure).
func (e *Engine) runAttempt(ctx context.Context, j Job, p JobPolicy, attempt int, backoff time.Duration) (res Result, err error) {
	jobCtx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeoutCause(jobCtx, p.Timeout, errJobDeadline)
		defer cancel()
	}
	if p.HangTimeout > 0 {
		hb := &telemetry.Heartbeat{}
		j.Cfg.Heartbeat = hb
		wctx, wcancel := context.WithCancelCause(jobCtx)
		jobCtx = wctx
		stop := watchHang(wctx, hb, p.HangTimeout, wcancel)
		defer stop()
	}
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > panicStackLimit {
				stack = append(stack[:panicStackLimit:panicStackLimit], "... (stack truncated)"...)
			}
			err = &PanicError{
				Workload: j.Workload, Mode: j.Cfg.Mode,
				SpecHash: specHashOf(j.Cfg), Val: r, Stack: stack,
			}
			e.emitFailure(j, err, attempt, backoff)
		}
	}()
	res, err = e.runFn(jobCtx, j.Workload, j.Cfg)
	if err != nil && jobCtx.Err() != nil && ctx.Err() == nil {
		// The job-local deadline or watchdog fired (not a batch
		// cancellation): name the policy failure rather than the bare
		// context error.
		err = fmt.Errorf("job %s/%s: %w", j.Workload, j.Cfg.Mode, context.Cause(jobCtx))
		e.emitFailure(j, err, attempt, backoff)
	}
	return res, err
}

// watchHang polls the heartbeat and cancels the attempt once it stalls for
// timeout. Returns a stop func releasing the watchdog goroutine.
func watchHang(ctx context.Context, hb *telemetry.Heartbeat, timeout time.Duration, cancel context.CancelCauseFunc) func() {
	done := make(chan struct{})
	go func() {
		tick := timeout / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		lastBeats, _ := hb.Load()
		lastChange := time.Now()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case now := <-t.C:
				beats, _ := hb.Load()
				if beats != lastBeats {
					lastBeats, lastChange = beats, now
					continue
				}
				if now.Sub(lastChange) >= timeout {
					cancel(errJobHang)
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// retryable reports whether a failed attempt is worth re-running: only
// panics (deterministic failures are retried for quarantine/diagnosis, and
// the retry may still reproduce a corrupted-state panic differently under
// paranoia checking). Deadlines, hangs, and ordinary simulation errors are
// final.
func retryable(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// runResilient runs one cell under the engine's policy: attempt, bounded
// retry with backoff for panics, and a repro bundle once the cell fails
// permanently.
func (e *Engine) runResilient(ctx context.Context, j Job) (Result, error) {
	e.mu.Lock()
	p := e.policy
	e.mu.Unlock()
	var err error
	var res Result
	var cumBackoff time.Duration
	for attempt := 0; ; attempt++ {
		res, err = e.runAttempt(ctx, j, p, attempt+1, cumBackoff)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			// Batch cancelled: stop immediately, no retries or bundles.
			return Result{}, err
		}
		if attempt >= p.Retries || !retryable(err) {
			break
		}
		if p.RetryBackoff > 0 {
			backoff := p.RetryBackoff << uint(attempt)
			cumBackoff += backoff
			select {
			case <-ctx.Done():
				return Result{}, err
			case <-time.After(backoff):
			}
		}
		err = fmt.Errorf("attempt %d/%d: %w", attempt+2, p.Retries+1, err)
	}
	if p.ReproDir != "" {
		if path, werr := writeReproBundle(p.ReproDir, j, err); werr == nil {
			err = fmt.Errorf("%w (repro bundle: %s)", err, path)
		} else {
			err = fmt.Errorf("%w (repro bundle failed: %v)", err, werr)
		}
	}
	return Result{}, err
}

// reproMeta is the sidecar metadata written next to a repro bundle's spec.
type reproMeta struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Spec     string `json:"spec"`
	MaxInstr uint64 `json:"max_instr"`
	Scale    int    `json:"scale"`
	Error    string `json:"error"`
}

// writeReproBundle captures a permanently failed cell: the resolved machine
// spec (directly loadable with `teasim -config` / `teaexp -config`) plus a
// .meta.json naming the workload, budget, and failure. Returns the spec path.
func writeReproBundle(dir string, j Job, jobErr error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	machine, err := j.Cfg.ResolvedSpec()
	if err != nil {
		return "", fmt.Errorf("spec unresolvable: %w", err)
	}
	base := fmt.Sprintf("%s-%s-%s", j.Workload, j.Cfg.Mode, machine.FingerprintString())
	specPath := filepath.Join(dir, base+".json")
	if err := os.WriteFile(specPath, machine.Indent(), 0o644); err != nil {
		return "", err
	}
	meta := reproMeta{
		Workload: j.Workload,
		Mode:     j.Cfg.Mode.String(),
		Spec:     machine.FingerprintString(),
		MaxInstr: j.Cfg.MaxInstructions,
		Scale:    j.Cfg.Scale,
		Error:    jobErr.Error(),
	}
	metaJSON, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, base+".meta.json"), metaJSON, 0o644); err != nil {
		return "", err
	}
	return specPath, nil
}

// runJob executes one cell, consulting the result memo cache. Cells that
// are not memoizable (Config.Memoizable: telemetry, co-simulation, idle-skip
// debugging, paranoia) always simulate, as do cells whose spec fails to
// resolve — the direct run surfaces the resolution error with full context.
func (e *Engine) runJob(ctx context.Context, j Job) (Result, error) {
	if !j.Cfg.Memoizable() {
		return e.runResilient(ctx, j)
	}
	fp, err := j.Cfg.SpecFingerprint()
	if err != nil {
		return e.runResilient(ctx, j)
	}
	key := memoKey{j.Workload, j.Cfg.Mode, fp, j.Cfg.MaxInstructions, j.Cfg.Scale}
	e.mu.Lock()
	ent := e.memo[key]
	if ent == nil {
		ent = &memoEntry{}
		e.memo[key] = ent
	} else {
		e.hits++
	}
	e.mu.Unlock()
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.done {
		return ent.res, ent.err
	}
	res, err := e.runResilient(ctx, j)
	if err != nil && ctx.Err() != nil {
		// Batch cancelled mid-cell: report but do not latch, so a resumed
		// run (or a later Map on this engine) still simulates the cell.
		return res, err
	}
	ent.res, ent.err, ent.done = res, err, true
	if err == nil {
		if jerr := e.journalAppend(key, res); jerr != nil {
			ent.err = jerr
			return res, jerr
		}
	}
	return ent.res, ent.err
}

// Map runs every job on the worker pool and returns the results in job
// order. Workers pull jobs from a shared index, so long cells do not hold up
// the queue. A panic inside a job is captured (with its stack) and surfaced
// as that job's error. On error the lowest-index failure is returned
// (deterministically, independent of worker scheduling) and remaining jobs
// are cancelled best-effort.
func (e *Engine) Map(jobs []Job) ([]Result, error) {
	return e.MapContext(context.Background(), jobs)
}

// MapContext is Map with cooperative cancellation: once ctx is done,
// workers stop claiming jobs, in-flight jobs finish, and the context's
// error is returned alongside the partial results — completed cells keep
// their values at their job indices (and are in the journal, if one is
// attached), so a killed suite loses nothing it finished. A context that is
// already done returns (nil, ctx.Err()) without running anything.
func (e *Engine) MapContext(ctx context.Context, jobs []Job) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results, errs := e.mapRun(ctx, jobs, true)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("tea: job %d (%s/%s): %w", i, jobs[i].Workload, jobs[i].Cfg.Mode, err)
		}
	}
	return results, nil
}

// MapPartial is MapContext with quarantine semantics: a failing cell does
// not abort the batch. Every job runs (subject to ctx); per-job errors come
// back in errs (indexed like jobs), and err is non-nil only for context
// cancellation. Callers render failed cells as annotated error rows instead
// of losing the suite.
func (e *Engine) MapPartial(ctx context.Context, jobs []Job) (results []Result, errs []error, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	results, errs = e.mapRun(ctx, jobs, false)
	return results, errs, ctx.Err()
}

// mapRun is the shared worker-pool core: results and errors land at their
// job indices. With stopOnFail, workers stop claiming jobs past the
// lowest-index failure (Map semantics); without it every job runs
// (MapPartial semantics).
func (e *Engine) mapRun(ctx context.Context, jobs []Job, stopOnFail bool) ([]Result, []error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))

	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			if ctx.Err() != nil {
				break
			}
			if err := e.runJobInto(ctx, i, j, &results[i], &errs[i]); err != nil && stopOnFail {
				break
			}
		}
		return results, errs
	}

	var next, failed atomic.Int64
	failed.Store(int64(len(jobs)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= len(jobs) || int64(i) > failed.Load() {
					return
				}
				if err := e.runJobInto(ctx, i, jobs[i], &results[i], &errs[i]); err != nil && stopOnFail {
					// Record the failure index; later jobs are skipped but
					// earlier in-flight ones finish, keeping error selection
					// deterministic.
					for {
						cur := failed.Load()
						if int64(i) >= cur || failed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// runJobInto runs one job with progress notification, storing the outcome
// in place. Panics are captured (with stacks) inside runAttempt; the
// recover here is a backstop for faults outside the attempt path.
func (e *Engine) runJobInto(ctx context.Context, i int, j Job, res *Result, errp *error) (err error) {
	e.notify(JobEvent{Index: i, Job: j, Phase: JobStarted})
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
			*errp = err
		}
		e.notify(JobEvent{Index: i, Job: j, Phase: JobDone, Err: *errp, Wall: time.Since(start)})
	}()
	*res, err = e.runJob(ctx, j)
	*errp = err
	return err
}
