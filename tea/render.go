package tea

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Format selects a report rendering for the Write* functions.
type Format int

// Formats.
const (
	// FormatText renders the aligned human-readable table (the Print*
	// output).
	FormatText Format = iota
	// FormatJSON renders a {"title","columns","rows","summary"} envelope
	// whose rows are the structured experiment rows, not formatted cells.
	FormatJSON
	// FormatCSV renders the header, formatted rows, and summary rows as CSV
	// (no title line).
	FormatCSV
)

// String returns the format's flag name.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatJSON:
		return "json"
	case FormatCSV:
		return "csv"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseFormat parses a format flag name.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	case "csv":
		return FormatCSV, nil
	}
	return 0, fmt.Errorf("tea: unknown format %q (want text, json, or csv)", s)
}

// report is the one shape behind every table: a title, a header, formatted
// row and summary cells, and the structured rows for JSON. All renderings
// derive from it, so the three formats can never drift apart.
type report struct {
	title   string
	header  []string
	rows    [][]string
	footers [][]string
	data    any
}

// jsonReport is the FormatJSON envelope.
type jsonReport struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    any        `json:"rows"`
	Summary [][]string `json:"summary,omitempty"`
}

// write renders the report in the requested format.
func (r report) write(w io.Writer, f Format) error {
	switch f {
	case FormatText:
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\n", r.title)
		fmt.Fprintf(tw, "%s\n", strings.Join(r.header, "\t"))
		for _, row := range r.rows {
			fmt.Fprintf(tw, "%s\n", strings.Join(row, "\t"))
		}
		for _, row := range r.footers {
			fmt.Fprintf(tw, "%s\n", strings.Join(row, "\t"))
		}
		return tw.Flush()
	case FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonReport{Title: r.title, Columns: r.header, Rows: r.data, Summary: r.footers})
	case FormatCSV:
		cw := csv.NewWriter(w)
		if err := cw.Write(r.header); err != nil {
			return err
		}
		for _, row := range r.rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		for _, row := range r.footers {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	return fmt.Errorf("tea: unknown format %d", int(f))
}

// errorRows counts quarantined ERROR rows (errRow output) in the report.
func (r report) errorRows() int {
	n := 0
	for _, row := range r.rows {
		for _, cell := range row {
			if strings.HasPrefix(cell, "ERROR: ") {
				n++
				break
			}
		}
	}
	return n
}

// Report is a rendered-ready experiment outcome: the uniform row schema
// every registered experiment returns (see RunExperiment). One Report
// carries the title, header, formatted cells, and structured rows, so all
// three Write* formats derive from the same data and can never drift apart.
type Report struct {
	rep report
}

// Title returns the report's title line.
func (r *Report) Title() string { return r.rep.title }

// Columns returns the report's column headers.
func (r *Report) Columns() []string { return append([]string(nil), r.rep.header...) }

// Rows returns the structured experiment rows ([]SpeedupRow, []Result,
// []Fig8Row, ... depending on the experiment).
func (r *Report) Rows() any { return r.rep.data }

// ErrorRows counts quarantined ERROR rows (ExpOptions.Partial): cells that
// failed and were excluded from the report's aggregates. Callers that need a
// degraded run to be machine-detectable (teaexp -partial's exit status, the
// serve daemon's response headers) key off this count.
func (r *Report) ErrorRows() int { return r.rep.errorRows() }

// Write renders the report in the requested format.
func (r *Report) Write(w io.Writer, f Format) error { return r.rep.write(w, f) }

// pct formats a signed percentage delta from a ratio (1.0 -> "+0.0%").
func pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", 100*(ratio-1)) }

// errRow formats a quarantined row (ExpOptions.Partial): the leading
// identity cells, then an ERROR annotation in place of the metrics, padded
// to the report width. Reports exclude such rows from their aggregate
// footers — a geomean over quarantined zeros would be meaningless.
func errRow(lead []string, errMsg string, width int) []string {
	const maxErr = 60
	if len(errMsg) > maxErr {
		errMsg = errMsg[:maxErr-3] + "..."
	}
	row := append(lead, "ERROR: "+errMsg)
	for len(row) < width {
		row = append(row, "")
	}
	return row
}

func speedupsReport(title string, rows []SpeedupRow) report {
	r := report{
		title:  title,
		header: []string{"workload", "base cyc", "with cyc", "speedup", "coverage", "accuracy"},
		data:   rows,
	}
	var sp []float64
	for _, row := range rows {
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Workload}, row.Err, len(r.header)))
			continue
		}
		r.rows = append(r.rows, []string{
			row.Workload,
			fmt.Sprintf("%d", row.Base.Cycles),
			fmt.Sprintf("%d", row.With.Cycles),
			pct(row.Speedup),
			fmt.Sprintf("%.0f%%", 100*row.With.Coverage),
			fmt.Sprintf("%.1f%%", 100*row.With.Accuracy),
		})
		sp = append(sp, row.Speedup)
	}
	r.footers = [][]string{{"geomean", "", "", pct(Geomean(sp)), "", ""}}
	return r
}

// WriteSpeedups renders speedup rows with a geomean footer.
func WriteSpeedups(w io.Writer, f Format, title string, rows []SpeedupRow) error {
	return speedupsReport(title, rows).write(w, f)
}

// PrintSpeedups renders speedup rows as text with a geomean footer.
func PrintSpeedups(w io.Writer, title string, rows []SpeedupRow) {
	WriteSpeedups(w, FormatText, title, rows)
}

func fig6Report(rows []Result) report {
	r := report{
		title:  "Fig 6: branch MPKI (baseline)",
		header: []string{"workload", "MPKI", "cond misp", "target misp", "IPC"},
		data:   rows,
	}
	for _, row := range rows {
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Workload}, row.Err, len(r.header)))
			continue
		}
		r.rows = append(r.rows, []string{
			row.Workload,
			fmt.Sprintf("%.1f", row.MPKI),
			fmt.Sprintf("%d", row.CondMispredicts),
			fmt.Sprintf("%d", row.IndMispredicts),
			fmt.Sprintf("%.2f", row.IPC),
		})
	}
	return r
}

// WriteFig6 renders the MPKI table.
func WriteFig6(w io.Writer, f Format, rows []Result) error {
	return fig6Report(rows).write(w, f)
}

// PrintFig6 renders the MPKI table as text.
func PrintFig6(w io.Writer, rows []Result) { WriteFig6(w, FormatText, rows) }

func fig7Report(rows []Result) report {
	r := report{
		title: "Fig 7: misprediction breakdown under TEA",
		header: []string{"workload", "covered", "late", "incorrect", "uncovered",
			"coverage", "accuracy"},
		data: rows,
	}
	var cov, acc []float64
	for _, row := range rows {
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Workload}, row.Err, len(r.header)))
			continue
		}
		r.rows = append(r.rows, []string{
			row.Workload,
			fmt.Sprintf("%d", row.Covered),
			fmt.Sprintf("%d", row.Late),
			fmt.Sprintf("%d", row.Incorrect),
			fmt.Sprintf("%d", row.Uncovered),
			fmt.Sprintf("%.0f%%", 100*row.Coverage),
			fmt.Sprintf("%.1f%%", 100*row.Accuracy),
		})
		cov = append(cov, row.Coverage)
		acc = append(acc, row.Accuracy)
	}
	r.footers = [][]string{{"mean", "", "", "", "",
		fmt.Sprintf("%.0f%%", 100*mean(cov)), fmt.Sprintf("%.1f%%", 100*mean(acc))}}
	return r
}

// WriteFig7 renders the misprediction-coverage breakdown.
func WriteFig7(w io.Writer, f Format, rows []Result) error {
	return fig7Report(rows).write(w, f)
}

// PrintFig7 renders the misprediction-coverage breakdown as text.
func PrintFig7(w io.Writer, rows []Result) { WriteFig7(w, FormatText, rows) }

func fig8Report(rows []Fig8Row) report {
	grouped := append([]Fig8Row(nil), rows...)
	sort.SliceStable(grouped, func(i, j int) bool {
		return grouped[i].SimpleFlow && !grouped[j].SimpleFlow
	})
	r := report{
		title:  "Fig 8: TEA vs Branch Runahead",
		header: []string{"workload", "flow", "TEA", "Runahead"},
		data:   grouped,
	}
	var teaAll, brAll, teaS, brS, teaC, brC []float64
	for _, row := range grouped {
		flow := "complex"
		if row.SimpleFlow {
			flow = "simple"
		}
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Workload, flow}, row.Err, len(r.header)))
			continue
		}
		r.rows = append(r.rows, []string{row.Workload, flow, pct(row.TEA), pct(row.Runahead)})
		teaAll = append(teaAll, row.TEA)
		brAll = append(brAll, row.Runahead)
		if row.SimpleFlow {
			teaS, brS = append(teaS, row.TEA), append(brS, row.Runahead)
		} else {
			teaC, brC = append(teaC, row.TEA), append(brC, row.Runahead)
		}
	}
	r.footers = [][]string{
		{"geomean simple", "", pct(Geomean(teaS)), pct(Geomean(brS))},
		{"geomean complex", "", pct(Geomean(teaC)), pct(Geomean(brC))},
		{"geomean all", "", pct(Geomean(teaAll)), pct(Geomean(brAll))},
	}
	return r
}

// WriteFig8 renders the TEA-vs-Branch-Runahead comparison with the paper's
// simple/complex control-flow grouping.
func WriteFig8(w io.Writer, f Format, rows []Fig8Row) error {
	return fig8Report(rows).write(w, f)
}

// PrintFig8 renders the TEA-vs-Branch-Runahead comparison as text.
func PrintFig8(w io.Writer, rows []Fig8Row) { WriteFig8(w, FormatText, rows) }

func fig10Report(rows []Fig10Row) report {
	r := report{
		title:  "Fig 10: thread-construction ablations",
		header: []string{"config", "workload", "accuracy", "coverage", "saved/branch"},
		data:   rows,
	}
	agg := map[string][]Fig10Row{}
	var order []string
	for _, row := range rows {
		if _, seen := agg[row.Config]; !seen {
			order = append(order, row.Config)
		}
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Config, row.Workload}, row.Err, len(r.header)))
			continue
		}
		agg[row.Config] = append(agg[row.Config], row)
		r.rows = append(r.rows, []string{
			row.Config, row.Workload,
			fmt.Sprintf("%.1f%%", 100*row.Accuracy),
			fmt.Sprintf("%.0f%%", 100*row.Coverage),
			fmt.Sprintf("%.1f", row.Saved),
		})
	}
	for _, cfg := range order {
		var acc, cov, saved []float64
		for _, row := range agg[cfg] {
			acc = append(acc, row.Accuracy)
			cov = append(cov, row.Coverage)
			saved = append(saved, row.Saved)
		}
		r.footers = append(r.footers, []string{"mean " + cfg, "",
			fmt.Sprintf("%.1f%%", 100*mean(acc)),
			fmt.Sprintf("%.0f%%", 100*mean(cov)),
			fmt.Sprintf("%.1f", mean(saved))})
	}
	return r
}

// WriteFig10 renders the ablation grid.
func WriteFig10(w io.Writer, f Format, rows []Fig10Row) error {
	return fig10Report(rows).write(w, f)
}

// PrintFig10 renders the ablation grid as text.
func PrintFig10(w io.Writer, rows []Fig10Row) { WriteFig10(w, FormatText, rows) }

func table3Report(rows []Result) report {
	r := report{
		title:  "Table III: extra dynamic uops fetched by the TEA thread",
		header: []string{"workload", "overhead"},
		data:   rows,
	}
	var ov []float64
	for _, row := range rows {
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Workload}, row.Err, len(r.header)))
			continue
		}
		r.rows = append(r.rows, []string{row.Workload, fmt.Sprintf("+%.1f%%", row.UopOverheadPct)})
		ov = append(ov, row.UopOverheadPct)
	}
	r.footers = [][]string{{"mean", fmt.Sprintf("+%.1f%%", mean(ov))}}
	return r
}

// WriteTable3 renders the dynamic-footprint table.
func WriteTable3(w io.Writer, f Format, rows []Result) error {
	return table3Report(rows).write(w, f)
}

// PrintTable3 renders the dynamic-footprint table as text.
func PrintTable3(w io.Writer, rows []Result) { WriteTable3(w, FormatText, rows) }

func sensitivityReport(p SensParam, rows []SensRow) report {
	r := report{
		title:  fmt.Sprintf("Sensitivity: %s", p),
		header: []string{"workload", "value", "speedup", "coverage", "accuracy"},
		data:   rows,
	}
	byValue := map[int][]float64{}
	var order []int
	for _, row := range rows {
		if _, seen := byValue[row.Value]; !seen {
			order = append(order, row.Value)
			byValue[row.Value] = nil
		}
		if row.Err != "" {
			r.rows = append(r.rows, errRow(
				[]string{row.Workload, fmt.Sprintf("%d", row.Value)}, row.Err, len(r.header)))
			continue
		}
		r.rows = append(r.rows, []string{
			row.Workload,
			fmt.Sprintf("%d", row.Value),
			pct(row.Speedup),
			fmt.Sprintf("%.0f%%", 100*row.Coverage),
			fmt.Sprintf("%.1f%%", 100*row.Accuracy),
		})
		byValue[row.Value] = append(byValue[row.Value], row.Speedup)
	}
	for _, v := range order {
		r.footers = append(r.footers, []string{
			fmt.Sprintf("geomean @%d", v), "", pct(Geomean(byValue[v])), "", ""})
	}
	return r
}

// WriteSensitivity renders a sensitivity sweep with per-value geomeans.
func WriteSensitivity(w io.Writer, f Format, p SensParam, rows []SensRow) error {
	return sensitivityReport(p, rows).write(w, f)
}

// PrintSensitivity renders a sensitivity sweep as text.
func PrintSensitivity(w io.Writer, p SensParam, rows []SensRow) {
	WriteSensitivity(w, FormatText, p, rows)
}
