package tea_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"teasim/tea"
)

// stubRun is a deterministic fake simulation for registry dispatch tests.
func stubRun(ctx context.Context, workload string, cfg tea.Config) (tea.Result, error) {
	cyc := uint64(2000 + 7*len(workload))
	if cfg.Mode != tea.ModeBaseline {
		cyc -= 150
	}
	return tea.Result{
		Workload:     workload,
		Mode:         cfg.Mode,
		Cycles:       cyc,
		Instructions: 9000,
		IPC:          9000 / float64(cyc),
		Coverage:     0.4,
		Accuracy:     0.85,
	}, nil
}

func TestExperimentCatalog(t *testing.T) {
	exps := tea.Experiments()
	if len(exps) == 0 {
		t.Fatal("empty experiment catalog")
	}
	// Paper order: the figures lead the catalog.
	for i, want := range []string{"fig5", "fig6", "fig7", "fig8", "fig9"} {
		if exps[i].Name != want {
			t.Errorf("catalog[%d] = %q, want %q", i, exps[i].Name, want)
		}
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Title == "" || e.Description == "" {
			t.Errorf("experiment %q lacks title or description", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("experiment %q listed twice", e.Name)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"fig9big", "wide16", "fig10", "table3", "prefetchonly", "custom", "sens-blockcache"} {
		if !seen[want] {
			t.Errorf("catalog missing %q", want)
		}
	}

	names := tea.ExperimentNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("ExperimentNames not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestLookupExperiment(t *testing.T) {
	if _, ok := tea.LookupExperiment("fig5"); !ok {
		t.Error("fig5 not found")
	}
	if _, ok := tea.LookupExperiment("fig99"); ok {
		t.Error("fig99 unexpectedly found")
	}
	if _, err := tea.RunExperiment(context.Background(), "fig99", tea.ExpOptions{}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("RunExperiment(fig99) err = %v, want unknown experiment", err)
	}
}

func TestRegisterExperimentRejectsDuplicates(t *testing.T) {
	mustPanic := func(name string, e tea.Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterExperiment did not panic", name)
			}
		}()
		tea.RegisterExperiment(e)
	}
	run := func(ctx context.Context, o tea.ExpOptions) (*tea.Report, error) { return nil, nil }
	mustPanic("duplicate", tea.Experiment{Name: "fig5", Title: "t", Description: "d", Run: run})
	mustPanic("no name", tea.Experiment{Run: run})
	mustPanic("no runner", tea.Experiment{Name: "unique-but-runnerless"})
}

// TestRunExperimentMatchesDirectCall pins the redesign's core promise: the
// registry path renders byte-identical output to the direct Fig* call it
// wraps.
func TestRunExperimentMatchesDirectCall(t *testing.T) {
	opts := func() tea.ExpOptions {
		return tea.ExpOptions{
			Workloads:       []string{"bfs", "mcf"},
			MaxInstructions: 10_000,
			Engine:          tea.NewEngine(1, tea.WithRunFunc(stubRun)),
		}
	}

	rows, err := tea.Fig5(opts())
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := tea.WriteSpeedups(&direct, tea.FormatCSV,
		"Fig 5: TEA thread speedup over baseline (paper geomean +10.1%)", rows); err != nil {
		t.Fatal(err)
	}

	rep, err := tea.RunExperiment(context.Background(), "fig5", opts())
	if err != nil {
		t.Fatal(err)
	}
	var viaRegistry bytes.Buffer
	if err := rep.Write(&viaRegistry, tea.FormatCSV); err != nil {
		t.Fatal(err)
	}
	if viaRegistry.String() != direct.String() {
		t.Errorf("registry output differs from direct call:\n--- registry ---\n%s\n--- direct ---\n%s",
			viaRegistry.String(), direct.String())
	}
}

// TestReportErrorRows pins the quarantine accounting the -partial exit code
// and the daemon's X-Tea-Error-Rows header rely on.
func TestReportErrorRows(t *testing.T) {
	boom := func(ctx context.Context, workload string, cfg tea.Config) (tea.Result, error) {
		if workload == "mcf" && cfg.Mode != tea.ModeBaseline {
			panic("injected failure")
		}
		return stubRun(ctx, workload, cfg)
	}
	rep, err := tea.RunExperiment(context.Background(), "fig5", tea.ExpOptions{
		Workloads:       []string{"bfs", "mcf"},
		MaxInstructions: 10_000,
		Partial:         true,
		Engine:          tea.NewEngine(1, tea.WithRunFunc(boom)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.ErrorRows(); got != 1 {
		t.Errorf("ErrorRows = %d, want 1", got)
	}

	clean, err := tea.RunExperiment(context.Background(), "fig5", tea.ExpOptions{
		Workloads:       []string{"bfs"},
		MaxInstructions: 10_000,
		Engine:          tea.NewEngine(1, tea.WithRunFunc(stubRun)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clean.ErrorRows(); got != 0 {
		t.Errorf("clean ErrorRows = %d, want 0", got)
	}
}
