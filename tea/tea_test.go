package tea_test

import (
	"testing"

	"teasim/tea"
)

func TestRunBaselineTiny(t *testing.T) {
	res, err := tea.Run("bfs", tea.Config{Mode: tea.ModeBaseline, Scale: 0, CoSim: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
}

func TestRunTEAProducesCoverage(t *testing.T) {
	res, err := tea.Run("bfs", tea.Config{Mode: tea.ModeTEA, Scale: 1,
		MaxInstructions: 150_000, CoSim: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered == 0 {
		t.Fatal("TEA covered no mispredictions")
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("accuracy = %.3f", res.Accuracy)
	}
	if res.EarlyFlushes == 0 {
		t.Fatal("no early flushes")
	}
}

func TestRunAllModesOneWorkload(t *testing.T) {
	for _, m := range []tea.Mode{tea.ModeBaseline, tea.ModeTEA,
		tea.ModeTEADedicated, tea.ModeBranchRunahead} {
		res, err := tea.Run("sssp", tea.Config{Mode: m, Scale: 0, CoSim: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Mode != m || res.Cycles == 0 {
			t.Fatalf("%v: bad result %+v", m, res)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := tea.Run("nope", tea.Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := tea.Workloads()
	if len(names) != 17 {
		t.Fatalf("got %d workloads", len(names))
	}
	simple := 0
	for _, n := range names {
		if tea.SimpleFlow(n) {
			simple++
		}
	}
	if simple != 7 {
		t.Fatalf("simple-flow count = %d, want 7 (six GAP kernels + xz)", simple)
	}
}

func TestGeomean(t *testing.T) {
	if g := tea.Geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean = %v", g)
	}
	if g := tea.Geomean(nil); g != 1 {
		t.Fatalf("geomean(nil) = %v", g)
	}
}

func TestSpeedupHelper(t *testing.T) {
	sp, ra, rb, err := tea.Speedup("cc",
		tea.Config{Mode: tea.ModeBaseline, Scale: 0, CoSim: true},
		tea.Config{Mode: tea.ModeTEA, Scale: 0, CoSim: true})
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 || ra.Cycles == 0 || rb.Cycles == 0 {
		t.Fatalf("speedup=%v a=%+v b=%+v", sp, ra.Cycles, rb.Cycles)
	}
}

func TestAblationConfigsRun(t *testing.T) {
	for _, fc := range tea.Fig10Configs() {
		cfg := fc.Cfg(tea.Config{Mode: fc.Mode, Scale: 0, CoSim: true})
		if _, err := tea.Run("tc", cfg); err != nil {
			t.Fatalf("%s: %v", fc.Name, err)
		}
	}
}

func TestSensitivitySweep(t *testing.T) {
	rows, err := tea.Sensitivity(tea.SensLead, []int{1, 4},
		tea.ExpOptions{MaxInstructions: 60_000, Scale: 1, Workloads: []string{"cc"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Fatalf("bad speedup %v", r.Speedup)
		}
	}
}

func TestSensitivityUnknownParam(t *testing.T) {
	_, err := tea.Sensitivity(tea.SensParam("bogus"), []int{1},
		tea.ExpOptions{MaxInstructions: 10_000, Workloads: []string{"cc"}})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestStructureOverridesApply(t *testing.T) {
	// A Block Cache too small for the workload's code footprint must change
	// behaviour (coverage drops or cycles change). gcc has the largest
	// footprint of the suite (interpreter dispatch + eight handlers).
	big, err := tea.Run("gcc", tea.Config{Mode: tea.ModeTEA, Scale: 1,
		MaxInstructions: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	small, err := tea.Run("gcc", tea.Config{Mode: tea.ModeTEA, Scale: 1,
		MaxInstructions: 150_000, BlockCacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if small.Cycles == big.Cycles && small.Covered == big.Covered {
		t.Fatal("block cache size had no effect at all")
	}
	if small.Coverage > big.Coverage+0.05 {
		t.Fatalf("tiny block cache should not increase coverage: %.2f vs %.2f",
			small.Coverage, big.Coverage)
	}
}

func TestModeString(t *testing.T) {
	names := map[tea.Mode]string{
		tea.ModeBaseline:       "baseline",
		tea.ModeTEA:            "tea",
		tea.ModeTEADedicated:   "tea-dedicated",
		tea.ModeBranchRunahead: "runahead",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestNewModesRun(t *testing.T) {
	for _, m := range []tea.Mode{tea.ModeTEABigEngine, tea.ModeWide16} {
		res, err := tea.Run("cc", tea.Config{Mode: m, Scale: 0, CoSim: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Cycles == 0 {
			t.Fatalf("%v: empty result", m)
		}
	}
	// Wide16 must not attach a precomputation engine.
	res, _ := tea.Run("cc", tea.Config{Mode: tea.ModeWide16, Scale: 0})
	if res.EarlyFlushes != 0 || res.Covered != 0 {
		t.Fatal("wide16 should have no precomputation activity")
	}
}
