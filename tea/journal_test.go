package tea

// Journal tests: the crash-safety contract is that every record that made it
// to disk intact is recoverable, and anything torn or corrupted is dropped
// rather than poisoning the resume.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func journalRecord(workload string, mode Mode, cycles uint64) JournalRecord {
	return JournalRecord{
		Workload: workload,
		Mode:     mode,
		Spec:     "00000000deadbeef",
		MaxInstr: 1_000_000,
		Scale:    1,
		Result:   Result{Workload: workload, Mode: mode, Cycles: cycles, Instructions: 1_000_000},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []JournalRecord{
		journalRecord("bfs", ModeBaseline, 100),
		journalRecord("bfs", ModeTEA, 80),
		journalRecord("mcf", ModeBaseline, 300),
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, dropped, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		// Append stamps the version and checksum; compare the payload.
		got[i].V, got[i].Checksum = 0, ""
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalDropsCorruptRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("bfs", ModeBaseline, 100)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("mcf", ModeTEA, 200)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines, want 2", len(lines))
	}
	// Bit-flip inside the first intact record, then simulate a crash mid-
	// append: the tail record is torn halfway through its line.
	flipped := strings.Replace(lines[0], `"workload":"bfs"`, `"workload":"zzz"`, 1)
	if flipped == lines[0] {
		t.Fatal("corruption substitution found nothing to replace")
	}
	torn := lines[1][:len(lines[1])/2]
	garbage := "not json at all\n" + `{"v":99}` + "\n"
	if err := os.WriteFile(path, []byte(flipped+garbage+torn), 0o644); err != nil {
		t.Fatal(err)
	}

	got, dropped, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("recovered %d records from an all-corrupt journal, want 0", len(got))
	}
	// flipped (checksum mismatch) + garbage + wrong version + torn tail.
	if dropped != 4 {
		t.Errorf("dropped = %d, want 4", dropped)
	}
}

func TestJournalSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("bfs", ModeBaseline, 100)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRecord("mcf", ModeTEA, 200)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL mid-append: truncate inside the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	got, dropped, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Workload != "bfs" {
		t.Fatalf("got %d records (%v), want just the intact bfs record", len(got), got)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	recs, dropped, err := ReadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || recs != nil || dropped != 0 {
		t.Fatalf("missing journal: got (%v, %d, %v), want (nil, 0, nil)", recs, dropped, err)
	}
}

func TestSeedJournalSkipsBadAndDuplicateRecords(t *testing.T) {
	e := NewEngine(1)
	recs := []JournalRecord{
		journalRecord("bfs", ModeBaseline, 100),
		journalRecord("bfs", ModeBaseline, 999), // duplicate key: first wins
		{Workload: "mcf", Mode: ModeTEA, Spec: "not-hex", MaxInstr: 1, Scale: 1},
		journalRecord("mcf", ModeTEA, 200),
	}
	if n := e.SeedJournal(recs); n != 2 {
		t.Fatalf("seeded %d entries, want 2", n)
	}
	ms := e.MemoStats()
	if ms.Entries != 2 || ms.Seeded != 2 {
		t.Errorf("MemoStats = %+v, want 2 entries, 2 seeded", ms)
	}
}
