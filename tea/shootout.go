package tea

import (
	"context"
	"fmt"
	"io"

	"teasim/tea/spec"
)

// ShootoutRow is one workload × companion-kind cell of the companion zoo
// shootout: the kind's speedup over the shared baseline plus its
// coverage/accuracy/timeliness breakdown.
type ShootoutRow struct {
	Workload string
	Kind     string
	Speedup  float64
	Coverage float64
	Accuracy float64
	// Saved is the timeliness metric: cycles saved per covered misprediction.
	Saved float64
	// Err annotates a quarantined row (ExpOptions.Partial).
	Err string `json:"Err,omitempty"`
}

// ShootoutKinds returns the companion kinds the shootout compares, in report
// order: the paper's none/tea/runahead rows first (their cells are
// bit-identical to the Fig 5/8 cells), then every other registered kind in
// sorted order. The list is registry-driven — a newly registered companion
// kind with a same-named preset joins the shootout without touching this
// package.
func ShootoutKinds() []spec.CompanionKind {
	head := []spec.CompanionKind{spec.CompanionNone, spec.CompanionTEA, spec.CompanionRunahead}
	seen := map[spec.CompanionKind]bool{}
	for _, k := range head {
		seen[k] = true
	}
	kinds := append([]spec.CompanionKind(nil), head...)
	for _, k := range spec.Kinds() {
		if !seen[k] {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// shootoutConfig builds one kind's cell config. tea and runahead go through
// their Modes — the exact memo keys Fig 5/8 use, so their rows come from (or
// seed) the same cache entries; every other kind resolves the preset
// registered under its own name.
func shootoutConfig(o ExpOptions, kind spec.CompanionKind) (Config, error) {
	switch kind {
	case spec.CompanionTEA:
		return o.cfg(ModeTEA), nil
	case spec.CompanionRunahead:
		return o.cfg(ModeBranchRunahead), nil
	}
	p, err := spec.Preset(string(kind))
	if err != nil {
		return Config{}, fmt.Errorf("tea: shootout: companion kind %q has no preset: %w", kind, err)
	}
	cfg := o.cfg(ModeBaseline)
	cfg.Spec = &p
	return cfg, nil
}

// Shootout runs every registered companion kind against the shared baseline:
// the N-way generalization of Fig. 8. Each workload's baseline is simulated
// exactly once — the opening "none" pass populates the engine memo, and every
// kind's speedup batch hits it — so adding a companion to the zoo costs one
// extra cell per workload, never a new baseline.
func Shootout(o ExpOptions) ([]ShootoutRow, error) {
	o = o.fill()
	ctx := o.ctx()
	kinds := ShootoutKinds()

	// The "none" pass is both the first report group and everybody's
	// baseline cells.
	base, err := runAll(ctx, o, o.cfg(ModeBaseline))
	if err != nil {
		return nil, err
	}
	rows := make([]ShootoutRow, 0, len(kinds)*len(o.Workloads))
	for i, name := range o.Workloads {
		row := ShootoutRow{Workload: name, Kind: string(spec.CompanionNone), Speedup: 1}
		if base[i].Err != "" {
			row.Err = base[i].Err
		} else {
			row.Accuracy = base[i].Accuracy
		}
		rows = append(rows, row)
	}

	for _, kind := range kinds[1:] {
		cfg, err := shootoutConfig(o, kind)
		if err != nil {
			return nil, err
		}
		sp, err := runSpeedups(ctx, o, cfg.Mode, func(Config) Config { return cfg })
		if err != nil {
			return nil, err
		}
		for _, s := range sp {
			rows = append(rows, ShootoutRow{
				Workload: s.Workload,
				Kind:     string(kind),
				Speedup:  s.Speedup,
				Coverage: s.With.Coverage,
				Accuracy: s.With.Accuracy,
				Saved:    s.With.AvgCyclesSaved,
				Err:      s.Err,
			})
		}
	}
	return rows, nil
}

const titleShootout = "Companion shootout: every registered companion kind vs the shared baseline"

func shootoutReport(rows []ShootoutRow) report {
	r := report{
		title:  titleShootout,
		header: []string{"kind", "workload", "speedup", "coverage", "accuracy", "saved/branch"},
		data:   rows,
	}
	agg := map[string][]ShootoutRow{}
	var order []string
	for _, row := range rows {
		if _, seen := agg[row.Kind]; !seen {
			order = append(order, row.Kind)
			agg[row.Kind] = nil
		}
		if row.Err != "" {
			r.rows = append(r.rows, errRow([]string{row.Kind, row.Workload}, row.Err, len(r.header)))
			continue
		}
		agg[row.Kind] = append(agg[row.Kind], row)
		r.rows = append(r.rows, []string{
			row.Kind, row.Workload,
			pct(row.Speedup),
			fmt.Sprintf("%.0f%%", 100*row.Coverage),
			fmt.Sprintf("%.1f%%", 100*row.Accuracy),
			fmt.Sprintf("%.1f", row.Saved),
		})
	}
	for _, kind := range order {
		var sp, cov, acc []float64
		for _, row := range agg[kind] {
			sp = append(sp, row.Speedup)
			cov = append(cov, row.Coverage)
			acc = append(acc, row.Accuracy)
		}
		r.footers = append(r.footers, []string{"geomean " + kind, "",
			pct(Geomean(sp)),
			fmt.Sprintf("%.0f%%", 100*mean(cov)),
			fmt.Sprintf("%.1f%%", 100*mean(acc)), ""})
	}
	return r
}

// WriteShootout renders the companion shootout with per-kind geomean footers.
func WriteShootout(w io.Writer, f Format, rows []ShootoutRow) error {
	return shootoutReport(rows).write(w, f)
}

// PrintShootout renders the companion shootout as text.
func PrintShootout(w io.Writer, rows []ShootoutRow) { WriteShootout(w, FormatText, rows) }

func init() {
	RegisterExperiment(Experiment{
		Name:        "shootout",
		Title:       titleShootout,
		Description: "every registered companion kind vs the shared baseline (N-way Fig 8)",
		Run: func(ctx context.Context, o ExpOptions) (*Report, error) {
			o.Ctx = ctx
			rows, err := Shootout(o)
			if err != nil {
				return nil, err
			}
			return &Report{shootoutReport(rows)}, nil
		},
	})
}
