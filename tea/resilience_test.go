package tea

// Failure-handling tests: deadlines, the hang watchdog, panic retry,
// quarantine repro bundles, and the journal-backed kill/resume contract.
// Everything drives the engine through the runFn seam so the failure modes
// are exact and the tests are fast.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"teasim/internal/telemetry"
	"teasim/tea/spec"
)

// stubResult is a deterministic fake simulation outcome: same (workload,
// config) in, same Result out, like the real simulator.
func stubResult(w string, c Config) Result {
	return Result{
		Workload:     w,
		Mode:         c.Mode,
		Cycles:       uint64(len(w))*1000 + uint64(c.Mode) + 1,
		Instructions: c.MaxInstructions,
	}
}

// recordingSink captures telemetry events for assertions.
type recordingSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (s *recordingSink) Event(e *telemetry.Event) {
	s.mu.Lock()
	s.events = append(s.events, *e)
	s.mu.Unlock()
}
func (s *recordingSink) Interval(*telemetry.Interval) {}
func (s *recordingSink) Close() error                 { return nil }

func (s *recordingSink) failures() []telemetry.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []telemetry.Event
	for _, e := range s.events {
		if e.Kind == telemetry.EvJobFailure {
			out = append(out, e)
		}
	}
	return out
}

func TestJobDeadline(t *testing.T) {
	e := NewEngine(1, WithPolicy(JobPolicy{Timeout: 30 * time.Millisecond}))
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		<-ctx.Done() // a cell that never finishes on its own
		return Result{}, ctx.Err()
	}
	_, err := e.Map([]Job{{Workload: "bfs", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}}})
	if err == nil || !strings.Contains(err.Error(), "job deadline exceeded") {
		t.Fatalf("err = %v, want a job deadline error", err)
	}
	if !strings.Contains(err.Error(), "bfs/tea") {
		t.Errorf("deadline error does not name the cell: %v", err)
	}
}

func TestHangWatchdogKillsStalledJob(t *testing.T) {
	e := NewEngine(1, WithPolicy(JobPolicy{HangTimeout: 60 * time.Millisecond}))
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		if c.Heartbeat == nil {
			t.Error("policy with HangTimeout did not install a heartbeat")
			return Result{}, errors.New("no heartbeat")
		}
		c.Heartbeat.Beat(1) // one beat, then wedge
		<-ctx.Done()
		return Result{}, ctx.Err()
	}
	_, err := e.Map([]Job{{Workload: "bfs", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}}})
	if err == nil || !strings.Contains(err.Error(), "no heartbeat progress") {
		t.Fatalf("err = %v, want a hang watchdog error", err)
	}
}

func TestHangWatchdogSparesAdvancingJob(t *testing.T) {
	e := NewEngine(1, WithPolicy(JobPolicy{HangTimeout: 80 * time.Millisecond}))
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		// Slow but alive: beats arrive well inside the hang timeout for
		// longer than the timeout itself.
		for i := uint64(1); i <= 8; i++ {
			select {
			case <-ctx.Done():
				return Result{}, ctx.Err()
			case <-time.After(20 * time.Millisecond):
				c.Heartbeat.Beat(i)
			}
		}
		return stubResult(w, c), nil
	}
	res, err := e.Map([]Job{{Workload: "bfs", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}}})
	if err != nil {
		t.Fatalf("advancing job was killed: %v", err)
	}
	if res[0].Cycles == 0 {
		t.Error("advancing job returned no result")
	}
}

func TestRetryRecoversFlakyPanic(t *testing.T) {
	sink := &recordingSink{}
	e := NewEngine(1, WithTelemetry(sink),
		WithPolicy(JobPolicy{Retries: 3, RetryBackoff: time.Millisecond}))
	var attempts atomic.Int32
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		if attempts.Add(1) < 3 {
			panic("transient corruption")
		}
		return stubResult(w, c), nil
	}
	res, err := e.Map([]Job{{Workload: "bfs", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}}})
	if err != nil {
		t.Fatalf("retried job still failed: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if !reflect.DeepEqual(res[0], stubResult("bfs", Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1})) {
		t.Errorf("unexpected result after retry: %+v", res[0])
	}
	// Satellite: every failed attempt leaves a telemetry trace.
	fails := sink.failures()
	if len(fails) != 2 {
		t.Fatalf("got %d EvJobFailure events, want 2 (one per panicking attempt)", len(fails))
	}
	if !strings.Contains(fails[0].Job, "bfs/tea@") {
		t.Errorf("failure event job id = %q, want workload/mode@spec", fails[0].Job)
	}
	if !strings.Contains(fails[0].Err, "transient corruption") {
		t.Errorf("failure event err = %q, want the panic value", fails[0].Err)
	}
	// Retried cells are distinguishable from first failures: the attempt
	// number and cumulative backoff ride on the event.
	if fails[0].Attempt != 1 || fails[0].BackoffMS != 0 {
		t.Errorf("first failure carries attempt=%d backoff=%dms, want 1/0",
			fails[0].Attempt, fails[0].BackoffMS)
	}
	if fails[1].Attempt != 2 || fails[1].BackoffMS < 1 {
		t.Errorf("second failure carries attempt=%d backoff=%dms, want 2 with accrued backoff",
			fails[1].Attempt, fails[1].BackoffMS)
	}
}

func TestPanicErrorCarriesStackAndIdentity(t *testing.T) {
	e := NewEngine(1)
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		panic("boom in the scheduler")
	}
	_, err := e.Map([]Job{{Workload: "mcf", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}}})
	if err == nil {
		t.Fatal("panicking job returned nil error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError in the chain", err)
	}
	if pe.Workload != "mcf" || pe.Mode != ModeTEA {
		t.Errorf("PanicError identity = %s/%s, want mcf/tea", pe.Workload, pe.Mode)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Errorf("PanicError stack missing or not a goroutine dump: %q", pe.Stack)
	}
	if len(pe.Stack) > panicStackLimit+32 {
		t.Errorf("stack not bounded: %d bytes", len(pe.Stack))
	}
	msg := err.Error()
	if !strings.Contains(msg, "panic in mcf/tea (spec ") || !strings.Contains(msg, "boom in the scheduler") {
		t.Errorf("error message missing identity or panic value: %s", firstLine(msg))
	}
}

func TestQuarantineWritesLoadableReproBundle(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine(2, WithPolicy(JobPolicy{ReproDir: dir}))
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		if w == "bad" {
			panic("corrupted cell")
		}
		return stubResult(w, c), nil
	}
	jobs := []Job{
		{Workload: "bfs", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}},
		{Workload: "bad", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}},
		{Workload: "mcf", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}},
	}
	results, errs, err := e.MapPartial(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy cells failed: %v, %v", errs[0], errs[2])
	}
	if results[0].Cycles == 0 || results[2].Cycles == 0 {
		t.Error("healthy cells returned no results alongside the quarantined one")
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "repro bundle: ") {
		t.Fatalf("quarantined cell error = %v, want a repro bundle pointer", errs[1])
	}

	// The bundle must round-trip: the written spec loads and validates like
	// any -config input, and its fingerprint matches the bundle name.
	matches, err := filepath.Glob(filepath.Join(dir, "bad-tea-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var specPath, metaPath string
	for _, m := range matches {
		if strings.HasSuffix(m, ".meta.json") {
			metaPath = m
		} else {
			specPath = m
		}
	}
	if specPath == "" || metaPath == "" {
		t.Fatalf("bundle incomplete, got %v", matches)
	}
	loaded, err := spec.Load(specPath)
	if err != nil {
		t.Fatalf("bundle spec does not load: %v", err)
	}
	if !strings.Contains(specPath, loaded.FingerprintString()) {
		t.Errorf("bundle name %s does not carry the spec fingerprint %s", specPath, loaded.FingerprintString())
	}
	metaJSON, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Workload string `json:"workload"`
		Mode     string `json:"mode"`
		MaxInstr uint64 `json:"max_instr"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		t.Fatalf("bundle metadata does not parse: %v", err)
	}
	if meta.Workload != "bad" || meta.Mode != "tea" || meta.MaxInstr != 1000 {
		t.Errorf("bundle metadata = %+v, want the failed cell's identity", meta)
	}
	if !strings.Contains(meta.Error, "corrupted cell") {
		t.Errorf("bundle metadata error = %q, want the panic value", meta.Error)
	}
}

func TestPartialExperimentRendersErrorRows(t *testing.T) {
	e := NewEngine(2)
	e.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		if w == "mcf" && c.Mode == ModeTEA {
			panic("quarantine me")
		}
		return stubResult(w, c), nil
	}
	opts := ExpOptions{Workloads: []string{"bfs", "mcf"}, Engine: e, Partial: true}
	rows, err := Fig5(opts)
	if err != nil {
		t.Fatalf("partial experiment aborted: %v", err)
	}
	if rows[0].Err != "" || rows[0].Speedup == 0 {
		t.Errorf("healthy row polluted: %+v", rows[0])
	}
	if rows[1].Err == "" || !strings.Contains(rows[1].Err, "quarantine me") {
		t.Errorf("quarantined row not annotated: %+v", rows[1])
	}
	var sb strings.Builder
	if err := WriteSpeedups(&sb, FormatText, "partial", rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ERROR: ") {
		t.Errorf("text report does not mark the quarantined row:\n%s", out)
	}
	if !strings.Contains(out, "geomean") && !strings.Contains(out, "Geomean") {
		t.Errorf("text report lost its aggregate footer:\n%s", out)
	}
}

// TestCancelJournalResume is the kill/resume contract end to end at the
// library level: a batch cancelled mid-flight keeps its completed prefix, the
// journal holds exactly the completed cells, and a resumed engine
// re-simulates only the missing ones to an identical final state.
func TestCancelJournalResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	jobs := []Job{
		{Workload: "bfs", Cfg: Config{Mode: ModeBaseline, MaxInstructions: 1000, Scale: 1}},
		{Workload: "bfs", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}},
		{Workload: "mcf", Cfg: Config{Mode: ModeBaseline, MaxInstructions: 1000, Scale: 1}},
		{Workload: "mcf", Cfg: Config{Mode: ModeTEA, MaxInstructions: 1000, Scale: 1}},
	}

	// Interrupted run: single worker for a deterministic completion prefix;
	// the third cell observes the cancellation mid-simulation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(1, WithJournal(j1))
	calls := 0
	e1.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		calls++
		if calls == 3 {
			cancel() // the SIGINT arrives while cell 3 is in flight
			return Result{}, ctx.Err()
		}
		return stubResult(w, c), nil
	}
	partial, err := e1.MapContext(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(partial[0], stubResult("bfs", jobs[0].Cfg)) ||
		!reflect.DeepEqual(partial[1], stubResult("bfs", jobs[1].Cfg)) {
		t.Errorf("completed prefix lost: %+v", partial[:2])
	}
	if partial[2].Cycles != 0 || partial[3].Cycles != 0 {
		t.Errorf("uncompleted cells carry results: %+v", partial[2:])
	}

	// The journal holds exactly the completed cells, in completion order.
	recs, dropped, err := ReadJournal(path)
	if err != nil || dropped != 0 {
		t.Fatalf("ReadJournal: %d dropped, err %v", dropped, err)
	}
	if len(recs) != 2 || recs[0].Workload != "bfs" || recs[1].Mode != ModeTEA {
		t.Fatalf("journal holds %d records (%+v), want exactly the 2 completed cells", len(recs), recs)
	}

	// Resumed run: seeds from the journal, re-simulates only the 2 missing
	// cells, and lands on results identical to a clean uninterrupted run.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(1, WithJournal(j2))
	calls2 := 0
	e2.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		calls2++
		return stubResult(w, c), nil
	}
	if n := e2.SeedJournal(recs); n != 2 {
		t.Fatalf("seeded %d cells, want 2", n)
	}
	resumed, err := e2.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if calls2 != 2 {
		t.Errorf("resumed run simulated %d cells, want only the 2 missing", calls2)
	}
	ms := e2.MemoStats()
	if ms.Seeded != 2 || ms.Entries != 4 {
		t.Errorf("resumed MemoStats = %+v, want 4 entries of which 2 seeded", ms)
	}

	e3 := NewEngine(1)
	e3.runFn = func(ctx context.Context, w string, c Config) (Result, error) {
		return stubResult(w, c), nil
	}
	clean, err := e3.Map(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, clean) {
		t.Errorf("resumed results differ from a clean run:\nresumed: %+v\nclean:   %+v", resumed, clean)
	}

	// The resumed run appended only the cells it simulated — no duplicates.
	recs, dropped, err = ReadJournal(path)
	if err != nil || dropped != 0 {
		t.Fatalf("ReadJournal after resume: %d dropped, err %v", dropped, err)
	}
	if len(recs) != 4 {
		t.Errorf("journal holds %d records after resume, want 4", len(recs))
	}
}
