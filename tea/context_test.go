package tea_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"teasim/tea"
)

func TestRunContextCancelledReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := tea.RunContext(ctx, "mcf", tea.Config{Mode: tea.ModeTEA, MaxInstructions: 5_000_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Cycles != 0 {
		t.Fatalf("cancelled run produced a result: %+v", res)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("cancelled run took %v, want immediate return", el)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// A budget far beyond what 50ms of simulation reaches.
	_, err := tea.RunContext(ctx, "mcf", tea.Config{Mode: tea.ModeTEA, MaxInstructions: 200_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := tea.Config{Mode: tea.ModeTEA, MaxInstructions: 60_000}
	a, err := tea.Run("bfs", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tea.RunContext(context.Background(), "bfs", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run and RunContext disagree:\n%+v\n%+v", a, b)
	}
}

// TestTelemetryDeterminism: sampling intervals must not perturb the
// simulation — every core metric stays bit-identical.
func TestTelemetryDeterminism(t *testing.T) {
	cfg := tea.Config{Mode: tea.ModeTEA, MaxInstructions: 100_000}
	plain, err := tea.Run("bfs", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Intervals = true
	cfg.IntervalPeriod = 5_000
	traced, err := tea.Run("bfs", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Intervals) == 0 {
		t.Fatal("no intervals sampled")
	}
	traced.Intervals = nil
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("telemetry changed the simulation:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

func TestRunIntervalsPopulated(t *testing.T) {
	res, err := tea.Run("bfs", tea.Config{Mode: tea.ModeTEA, Scale: 1, MaxInstructions: 100_000,
		Intervals: true, IntervalPeriod: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) < 5 {
		t.Fatalf("got %d intervals for a 100k-instruction run at period 10k", len(res.Intervals))
	}
	var lastRetired uint64
	for i, iv := range res.Intervals {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
		if iv.Retired <= lastRetired {
			t.Fatalf("interval %d retired count not increasing: %d after %d", i, iv.Retired, lastRetired)
		}
		lastRetired = iv.Retired
		if iv.IPC <= 0 {
			t.Fatalf("interval %d IPC = %v", i, iv.IPC)
		}
		if len(iv.Metrics) == 0 {
			t.Fatalf("interval %d has no registry metrics", i)
		}
		if _, ok := iv.Metrics["tea.fillbuf_occupancy"]; !ok {
			t.Fatalf("interval %d missing TEA metrics: %v", i, iv.Metrics)
		}
	}
}

func TestDefaultExpOptions(t *testing.T) {
	o := tea.DefaultExpOptions()
	if o.MaxInstructions != 1_000_000 || o.Scale != 1 || len(o.Workloads) != 17 {
		t.Fatalf("bad defaults: %+v", o)
	}
	eng := tea.NewEngine(2)
	o = tea.DefaultExpOptions(
		tea.WithInstructions(5_000),
		tea.WithScale(0),
		tea.WithWorkloads("bfs", "xz"),
		tea.WithWorkers(3),
		tea.WithEngine(eng),
		tea.WithIntervals(2_000),
	)
	if o.MaxInstructions != 5_000 || o.Scale != 0 || o.Workers != 3 || o.Engine != eng {
		t.Fatalf("options not applied: %+v", o)
	}
	if !reflect.DeepEqual(o.Workloads, []string{"bfs", "xz"}) {
		t.Fatalf("workloads = %v", o.Workloads)
	}
	if !o.Intervals || o.IntervalPeriod != 2_000 {
		t.Fatalf("intervals option not applied: %+v", o)
	}
}

// TestOptionsConstructorMatchesLiteral: the two ways of building options
// must drive experiments identically.
func TestOptionsConstructorMatchesLiteral(t *testing.T) {
	eng := tea.NewEngine(2)
	lit := tea.ExpOptions{MaxInstructions: 30_000, Scale: 1,
		Workloads: []string{"bfs"}, Engine: eng}
	ctor := tea.DefaultExpOptions(tea.WithInstructions(30_000),
		tea.WithWorkloads("bfs"), tea.WithEngine(eng))
	a, err := tea.Fig6(lit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tea.Fig6(ctor)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("literal and constructor options disagree:\n%+v\n%+v", a, b)
	}
}
