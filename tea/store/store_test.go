package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"teasim/internal/telemetry"
	"teasim/tea"
)

// testRec builds a distinct record for index i.
func testRec(i int) tea.JournalRecord {
	return tea.JournalRecord{
		Workload: fmt.Sprintf("wl%d", i),
		Mode:     tea.ModeTEA,
		Spec:     fmt.Sprintf("%016x", 0xdead0000+i),
		MaxInstr: 1000,
		Scale:    1,
		Result:   tea.Result{Workload: fmt.Sprintf("wl%d", i), Mode: tea.ModeTEA, Cycles: uint64(100 + i), Instructions: 1000},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(testRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		res, ok := s.Get(KeyOf(testRec(i)))
		if !ok || res.Cycles != uint64(100+i) {
			t.Fatalf("get %d: ok=%v cycles=%d", i, ok, res.Cycles)
		}
	}
	if _, ok := s.Get(Key{Workload: "nope"}); ok {
		t.Fatal("got a result for an unknown key")
	}
	st := s.Stats()
	if st.Entries != n || st.Hits != n || st.Misses != 1 || st.Puts != n {
		t.Fatalf("stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything persisted, spread over the shard files.
	s2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened with %d entries, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := s2.Get(KeyOf(testRec(i))); !ok {
			t.Fatalf("entry %d lost across reopen", i)
		}
	}
	shards, _ := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	nonEmpty := 0
	for _, p := range shards {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("expected records spread over shards, got %d non-empty of %d", nonEmpty, len(shards))
	}
}

func TestStoreDropsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRec(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, "shard-000.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn tail and a bit-flip in an intact line must both be dropped.
	corrupted := append([]byte{}, b...)
	corrupted = append(corrupted, []byte(`{"at":1,"rec":{"v":1,"workload":"torn`)...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewRing(8)
	s2, err := Open(dir, Options{Shards: 1, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("want the one intact record, got %d", s2.Len())
	}
	if s2.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s2.Stats().Dropped)
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.Superseded != 0 {
		t.Fatalf("corrupt/superseded = %d/%d, want 1/0", st.Corrupt, st.Superseded)
	}
	evs := sink.Events()
	if len(evs) != 1 {
		t.Fatalf("telemetry events = %d, want 1", len(evs))
	}
	if ev := evs[0]; ev.Kind != telemetry.EvCorruptRecord || ev.Count != 1 || ev.Job != path {
		t.Fatalf("unexpected corrupt-record event %+v", ev)
	}
}

func TestStoreTTLAndCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	s, err := Open(dir, Options{Shards: 2, TTL: time.Hour, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Two generations an hour apart: the first expires, the second stays.
	for i := 0; i < 4; i++ {
		if err := s.Put(testRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(time.Hour)
	for i := 4; i < 8; i++ {
		if err := s.Put(testRec(i)); err != nil {
			t.Fatal(err)
		}
	}

	if _, ok := s.Get(KeyOf(testRec(0))); ok {
		t.Fatal("expired entry served")
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", st.Expired)
	}
	if _, ok := s.Get(KeyOf(testRec(5))); !ok {
		t.Fatal("fresh entry missed")
	}

	sizeBefore := shardBytes(t, dir)
	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// testRec(0) was already lazily retired by the Get above; the other
	// three stale entries fall to Compact.
	if cs.Kept != 4 || cs.Expired != 3 {
		t.Fatalf("compact: %+v, want Kept=4 Expired=3", cs)
	}
	if sizeAfter := shardBytes(t, dir); sizeAfter >= sizeBefore {
		t.Fatalf("compaction did not shrink shards: %d -> %d bytes", sizeBefore, sizeAfter)
	}

	// The store stays writable and readable after compaction...
	if err := s.Put(testRec(8)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// ...and a reopen sees exactly the survivors: 4 fresh + 1 new.
	s2, err := Open(dir, Options{Shards: 2, TTL: time.Hour, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("reopened with %d entries, want 5", s2.Len())
	}
	for i := 4; i < 9; i++ {
		if res, ok := s2.Get(KeyOf(testRec(i))); !ok || res.Cycles != uint64(100+i) {
			t.Fatalf("survivor %d: ok=%v cycles=%d", i, ok, res.Cycles)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok := s2.Get(KeyOf(testRec(i))); ok {
			t.Fatalf("expired entry %d survived compaction + reopen", i)
		}
	}
}

func TestStoreNewestWins(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_000_000, 0)
	s, err := Open(dir, Options{Shards: 1, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	rec := testRec(0)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	now = now.Add(time.Minute)
	rec.Result.Cycles = 999
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if res, ok := s2.Get(KeyOf(rec)); !ok || res.Cycles != 999 {
		t.Fatalf("want newest write (999 cycles), got ok=%v cycles=%d", ok, res.Cycles)
	}
	if s2.Len() != 1 {
		t.Fatalf("duplicate key indexed twice: len=%d", s2.Len())
	}
}

func shardBytes(t *testing.T, dir string) int64 {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}
