// Package store is a sharded, content-addressed, durable result store: the
// crash-safe journal (tea.Journal) generalized from one append-only file
// into a long-lived service cache. Results are addressed by the engine's
// memo tuple — (workload, mode, resolved-spec fingerprint, budget, scale) —
// so any two requests naming the same machine point share one stored
// simulation, however they spelled it (preset, custom spec, or patches).
//
// Layout: a directory of shard-NNN.jsonl files. Each line is a small
// envelope {"at": unixSeconds, "rec": <sealed tea.JournalRecord>}; the inner
// record carries its own version and checksum (tea.JournalRecord.Seal), so a
// torn or bit-rotted line is detected and dropped on open exactly like a
// journal resume. Appends hash the key onto a shard and fsync, keeping
// writer contention per-shard rather than global.
//
// Entries older than the configured TTL stop being served (a Get counts
// Expired and misses); Compact rewrites every shard dropping expired and
// superseded records, bounding disk growth for a daemon that runs for
// months.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"teasim/internal/telemetry"
	"teasim/tea"
)

// Key addresses one stored simulation: the engine's memo tuple.
type Key struct {
	Workload string
	Mode     string // tea.Mode.String() form
	Spec     string // resolved spec fingerprint, %016x
	MaxInstr uint64
	Scale    int
}

// KeyOf derives the store key from a journal record.
func KeyOf(rec tea.JournalRecord) Key {
	return Key{
		Workload: rec.Workload,
		Mode:     rec.Mode.String(),
		Spec:     rec.Spec,
		MaxInstr: rec.MaxInstr,
		Scale:    rec.Scale,
	}
}

// String renders the key's canonical address (also the shard-hash input).
func (k Key) String() string {
	return fmt.Sprintf("%s/%s@%s/n%d/s%d", k.Workload, k.Mode, k.Spec, k.MaxInstr, k.Scale)
}

// Options configures a store.
type Options struct {
	// Shards is the shard-file count (0 = 8). More shards mean less append
	// contention; the count may change between opens — existing records are
	// re-read from whatever file holds them, new appends use the new layout.
	Shards int
	// TTL bounds how long an entry is served after it was written (0 =
	// forever). Expired entries miss on Get and are dropped by Compact.
	TTL time.Duration
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
	// Telemetry, when set, receives one EvCorruptRecord event per shard
	// file that had corrupt or torn-tail lines dropped while opening (nil =
	// no events). Silent data loss is the one failure a durable store must
	// not have; the event makes every dropped record observable.
	Telemetry telemetry.Sink
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Entries    int    // live (non-expired at last touch) indexed entries
	Hits       uint64 // Gets served from the index
	Misses     uint64 // Gets with no usable entry
	Expired    uint64 // Gets that found only an expired entry
	Puts       uint64 // records appended this process
	Dropped    int    // lines dropped while opening (Corrupt + Superseded)
	Corrupt    int    // torn or checksum-failing lines dropped while opening
	Superseded int    // intact lines shadowed by a newer write of their key
}

// envelope is the on-disk line framing: the write timestamp (for TTL) around
// the sealed journal record.
type envelope struct {
	At  int64             `json:"at"`
	Rec tea.JournalRecord `json:"rec"`
}

// entry is one indexed result.
type entry struct {
	rec tea.JournalRecord
	at  int64
}

// shard is one index partition with its backing file.
type shard struct {
	mu    sync.Mutex
	f     *os.File
	index map[Key]entry
	buf   []byte
}

// Store is a sharded content-addressed result store. It is safe for
// concurrent use.
type Store struct {
	dir    string
	ttl    time.Duration
	now    func() time.Time
	tel    telemetry.Sink
	shards []*shard

	mu         sync.Mutex // counters
	hits       uint64
	misses     uint64
	expired    uint64
	puts       uint64
	corrupt    int
	superseded int
}

// Open opens (creating if needed) the store rooted at dir, reading every
// existing shard file and indexing the intact records. Records that fail
// their checksum are dropped (counted in Stats.Dropped); a duplicate key
// keeps the newest write, matching compaction.
func Open(dir string, o Options) (*Store, error) {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, ttl: o.TTL, now: o.Now, tel: o.Telemetry, shards: make([]*shard, o.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{index: make(map[Key]entry)}
	}
	// Read every shard file present, whatever shard count wrote it; each
	// record is indexed under the CURRENT layout's shard so lookups and
	// compaction agree on ownership.
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	for _, path := range matches {
		if err := s.load(path); err != nil {
			return nil, err
		}
	}
	for i, sh := range s.shards {
		f, err := os.OpenFile(s.shardPath(i), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("store: open shard: %w", err)
		}
		sh.f = f
	}
	return s, nil
}

func (s *Store) shardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.jsonl", i))
}

// shardOf maps a key onto its owning shard.
func (s *Store) shardOf(k Key) *shard {
	h := fnv.New64a()
	h.Write([]byte(k.String()))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// load indexes one existing shard file.
func (s *Store) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: load: %w", err)
	}
	defer f.Close()
	corrupt, superseded := 0, 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var env envelope
		if json.Unmarshal(line, &env) != nil || !env.Rec.Verify() {
			corrupt++
			continue
		}
		key := KeyOf(env.Rec)
		sh := s.shardOf(key)
		if have, ok := sh.index[key]; ok && have.at > env.At {
			superseded++ // shadowed by a newer record already indexed
			continue
		}
		sh.index[key] = entry{rec: env.Rec, at: env.At}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: load %s: %w", path, err)
	}
	s.mu.Lock()
	s.corrupt += corrupt
	s.superseded += superseded
	s.mu.Unlock()
	if corrupt > 0 && s.tel != nil {
		s.tel.Event(&telemetry.Event{Kind: telemetry.EvCorruptRecord, Job: path, Count: corrupt})
	}
	return nil
}

// fresh reports whether an entry written at unix second `at` is still within
// the TTL.
func (s *Store) fresh(at int64) bool {
	return s.ttl == 0 || s.now().Unix()-at < int64(s.ttl/time.Second)
}

// Get returns the stored result for a key, if present and fresh.
func (s *Store) Get(k Key) (tea.Result, bool) {
	sh := s.shardOf(k)
	sh.mu.Lock()
	ent, ok := sh.index[k]
	if ok && !s.fresh(ent.at) {
		delete(sh.index, k) // lazily retire; the line dies at the next Compact
		ok = false
		sh.mu.Unlock()
		s.mu.Lock()
		s.expired++
		s.misses++
		s.mu.Unlock()
		return tea.Result{}, false
	}
	sh.mu.Unlock()
	s.mu.Lock()
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if !ok {
		return tea.Result{}, false
	}
	return ent.rec.Result, true
}

// Put durably appends one record (sealed, timestamped, fsynced) and indexes
// it. Put implements tea.JournalWriter, so a store can back an engine
// directly via tea.WithJournal.
func (s *Store) Put(rec tea.JournalRecord) error {
	sealed, err := rec.Seal()
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	key := KeyOf(sealed)
	at := s.now().Unix()
	line, err := json.Marshal(envelope{At: at, Rec: sealed})
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.buf = append(sh.buf[:0], line...)
	sh.buf = append(sh.buf, '\n')
	if _, err := sh.f.Write(sh.buf); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	if err := sh.f.Sync(); err != nil {
		return fmt.Errorf("store: put sync: %w", err)
	}
	sh.index[key] = entry{rec: sealed, at: at}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return nil
}

// Append is Put under the tea.JournalWriter spelling.
func (s *Store) Append(rec tea.JournalRecord) error { return s.Put(rec) }

// Len returns the number of indexed entries (including any not yet noticed
// to be expired).
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	// Count entries before taking s.mu: Put holds a shard lock while
	// touching the counters, so nesting the locks the other way here would
	// invert the order.
	entries := s.Len()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:    entries,
		Hits:       s.hits,
		Misses:     s.misses,
		Expired:    s.expired,
		Puts:       s.puts,
		Dropped:    s.corrupt + s.superseded,
		Corrupt:    s.corrupt,
		Superseded: s.superseded,
	}
}

// CompactStats reports one compaction pass.
type CompactStats struct {
	Kept    int // live records rewritten
	Expired int // records dropped for age
}

// Compact rewrites every shard file from its live index, dropping expired
// and superseded records, then atomically replaces the old file. The store
// stays usable throughout; each shard is locked only while its own file is
// rewritten.
func (s *Store) Compact() (CompactStats, error) {
	var cs CompactStats
	for i, sh := range s.shards {
		sh.mu.Lock()
		kept := make([]envelope, 0, len(sh.index))
		for key, ent := range sh.index {
			if !s.fresh(ent.at) {
				delete(sh.index, key)
				cs.Expired++
				continue
			}
			kept = append(kept, envelope{At: ent.at, Rec: ent.rec})
		}
		err := s.rewriteShard(i, sh, kept)
		sh.mu.Unlock()
		if err != nil {
			return cs, err
		}
		cs.Kept += len(kept)
	}
	return cs, nil
}

// rewriteShard writes the kept envelopes to a temp file, fsyncs, renames it
// over the shard, and swaps the shard's append handle. Called with the shard
// locked.
func (s *Store) rewriteShard(i int, sh *shard, kept []envelope) error {
	path := s.shardPath(i)
	tmp, err := os.CreateTemp(s.dir, "compact-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, env := range kept {
		line, err := json.Marshal(env)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	if sh.f != nil {
		sh.f.Close()
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact reopen: %w", err)
	}
	sh.f = f
	return nil
}

// Close closes every shard file. The store must not be used afterwards.
func (s *Store) Close() error {
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}
