package tea

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Experiment is one named entry of the experiment catalog: a runner plus the
// metadata clients use to pick it. Every experiment takes the same inputs
// (ExpOptions) and produces the same output shape (*Report), so callers —
// teaexp, the serve daemon, tests — dispatch purely by name instead of
// hard-coding Fig* function calls, and new experiments (companion shootouts,
// generated-workload sweeps) become catalog entries rather than new CLI
// switch arms.
type Experiment struct {
	// Name is the dispatch key ("fig5", "sens-blockcache", ...).
	Name string
	// Title is the rendered report's title line.
	Title string
	// Description is a one-line human summary for catalog listings.
	Description string
	// Run executes the experiment. It must honor ctx for cooperative
	// cancellation and return a Report built from the options' rows.
	Run func(ctx context.Context, o ExpOptions) (*Report, error)
}

// registry holds the experiment catalog. Registration happens at package
// init (the built-in figures) and from extension packages; the lock exists
// for the latter.
var registry = struct {
	sync.Mutex
	byName map[string]Experiment
	order  []string
}{byName: map[string]Experiment{}}

// RegisterExperiment adds an experiment to the catalog. Registering a name
// twice panics: silently replacing a figure would redefine what every client
// of that name gets.
func RegisterExperiment(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("tea: RegisterExperiment needs a name and a runner")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[e.Name]; dup {
		panic("tea: experiment " + e.Name + " registered twice")
	}
	registry.byName[e.Name] = e
	registry.order = append(registry.order, e.Name)
}

// Experiments returns the catalog in registration order (the built-in
// figures first, in paper order).
func Experiments() []Experiment {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Experiment, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// ExperimentNames returns the sorted dispatch keys, for error messages and
// flag docs.
func ExperimentNames() []string {
	registry.Lock()
	defer registry.Unlock()
	names := append([]string(nil), registry.order...)
	sort.Strings(names)
	return names
}

// LookupExperiment finds a catalog entry by name.
func LookupExperiment(name string) (Experiment, bool) {
	registry.Lock()
	defer registry.Unlock()
	e, ok := registry.byName[name]
	return e, ok
}

// RunExperiment dispatches one experiment by name. ctx overrides o.Ctx (nil
// = keep o.Ctx); the options otherwise scope the run exactly as they do for
// the direct Fig* calls, so a report built here is byte-identical to one
// rendered from the equivalent direct call.
func RunExperiment(ctx context.Context, name string, o ExpOptions) (*Report, error) {
	e, ok := LookupExperiment(name)
	if !ok {
		return nil, fmt.Errorf("tea: unknown experiment %q (see tea.Experiments)", name)
	}
	if ctx != nil {
		o.Ctx = ctx
	}
	return e.Run(o.ctx(), o)
}

// Report titles for the speedup-style experiments (shared by teaexp and the
// registry so the CLI and the daemon render identical bytes).
const (
	titleFig5         = "Fig 5: TEA thread speedup over baseline (paper geomean +10.1%)"
	titleFig9         = "Fig 9: TEA on a dedicated execution engine (paper geomean +12.3%)"
	titleFig9Big      = "§V-D: TEA on a main-core-sized engine (paper geomean +12.8%)"
	titleWide16       = "§IV-H: 16-wide frontend, no precomputation (paper ~+2.8%)"
	titlePrefetchOnly = "§V-B aside: early resolution disabled (prefetch effect only; paper +1.2%)"
	titleCustom       = "Custom machine point vs baseline"
)

// speedupExp adapts a speedup-row experiment to the registry's runner shape.
func speedupExp(title string, run func(ExpOptions) ([]SpeedupRow, error)) func(context.Context, ExpOptions) (*Report, error) {
	return func(ctx context.Context, o ExpOptions) (*Report, error) {
		o.Ctx = ctx
		rows, err := run(o)
		if err != nil {
			return nil, err
		}
		return &Report{speedupsReport(title, rows)}, nil
	}
}

// resultExp adapts a Result-row experiment to the registry's runner shape.
func resultExp(rep func([]Result) report, run func(ExpOptions) ([]Result, error)) func(context.Context, ExpOptions) (*Report, error) {
	return func(ctx context.Context, o ExpOptions) (*Report, error) {
		o.Ctx = ctx
		rows, err := run(o)
		if err != nil {
			return nil, err
		}
		return &Report{rep(rows)}, nil
	}
}

// sensExp adapts one sensitivity sweep to the registry's runner shape.
func sensExp(p SensParam) Experiment {
	return Experiment{
		Name:        "sens-" + string(p),
		Title:       fmt.Sprintf("Sensitivity: %s", p),
		Description: fmt.Sprintf("structure-size sensitivity sweep over %s", p),
		Run: func(ctx context.Context, o ExpOptions) (*Report, error) {
			o.Ctx = ctx
			rows, err := Sensitivity(p, nil, o)
			if err != nil {
				return nil, err
			}
			return &Report{sensitivityReport(p, rows)}, nil
		},
	}
}

func init() {
	for _, e := range []Experiment{
		{
			Name: "fig5", Title: titleFig5,
			Description: "per-benchmark TEA-thread speedup over the baseline core",
			Run:         speedupExp(titleFig5, Fig5),
		},
		{
			Name: "fig6", Title: "Fig 6: branch MPKI (baseline)",
			Description: "total branch MPKI per benchmark on the baseline",
			Run:         resultExp(fig6Report, Fig6),
		},
		{
			Name: "fig7", Title: "Fig 7: misprediction breakdown under TEA",
			Description: "retired mispredictions split into covered/late/incorrect/uncovered",
			Run:         resultExp(fig7Report, Fig7),
		},
		{
			Name: "fig8", Title: "Fig 8: TEA vs Branch Runahead",
			Description: "TEA vs Branch Runahead with the simple/complex control-flow split",
			Run: func(ctx context.Context, o ExpOptions) (*Report, error) {
				o.Ctx = ctx
				rows, err := Fig8(o)
				if err != nil {
					return nil, err
				}
				return &Report{fig8Report(rows)}, nil
			},
		},
		{
			Name: "fig9", Title: titleFig9,
			Description: "TEA thread on a dedicated 16-unit execution engine",
			Run:         speedupExp(titleFig9, Fig9),
		},
		{
			Name: "fig9big", Title: titleFig9Big,
			Description: "TEA thread on an engine as large as the main core's backend",
			Run:         speedupExp(titleFig9Big, Fig9Big),
		},
		{
			Name: "wide16", Title: titleWide16,
			Description: "16-wide frontend baseline without precomputation",
			Run:         speedupExp(titleWide16, Wide16),
		},
		{
			Name: "fig10", Title: "Fig 10: thread-construction ablations",
			Description: "accuracy/coverage/timeliness across thread-construction ablations",
			Run: func(ctx context.Context, o ExpOptions) (*Report, error) {
				o.Ctx = ctx
				rows, err := Fig10(o)
				if err != nil {
					return nil, err
				}
				return &Report{fig10Report(rows)}, nil
			},
		},
		{
			Name: "table3", Title: "Table III: extra dynamic uops fetched by the TEA thread",
			Description: "extra dynamic uop footprint of the TEA thread per benchmark",
			Run:         resultExp(table3Report, Table3),
		},
		{
			Name: "prefetchonly", Title: titlePrefetchOnly,
			Description: "TEA with early resolution disabled (data-prefetch effect only)",
			Run:         speedupExp(titlePrefetchOnly, PrefetchOnly),
		},
		{
			Name: "custom", Title: titleCustom,
			Description: "a user-supplied machine point (ExpOptions.Spec + Set patches) vs the baseline",
			Run: func(ctx context.Context, o ExpOptions) (*Report, error) {
				o.Ctx = ctx
				rows, err := Custom(o.Spec, o.Set, o)
				if err != nil {
					return nil, err
				}
				return &Report{speedupsReport(titleCustom, rows)}, nil
			},
		},
		sensExp(SensBlockCache),
		sensExp(SensFillBuffer),
		sensExp(SensH2PDecay),
		sensExp(SensLead),
		sensExp(SensFetchQueue),
	} {
		RegisterExperiment(e)
	}
}
