package tea

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"teasim/tea/spec"
)

// TestShootoutKindsRegistryDriven asserts the shootout's kind list is the
// spec registry: every registered kind appears exactly once, with the
// paper's none/tea/runahead rows leading.
func TestShootoutKindsRegistryDriven(t *testing.T) {
	kinds := ShootoutKinds()
	if len(kinds) < 5 {
		t.Fatalf("shootout covers %d kinds, want >= 5 (got %v)", len(kinds), kinds)
	}
	want := []spec.CompanionKind{spec.CompanionNone, spec.CompanionTEA, spec.CompanionRunahead}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("kind order %v, want %v leading", kinds, want)
		}
	}
	seen := map[spec.CompanionKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("kind %q listed twice", k)
		}
		seen[k] = true
	}
	for _, k := range spec.Kinds() {
		if !seen[k] {
			t.Fatalf("registered kind %q missing from the shootout", k)
		}
	}
}

// TestShootoutBaselineMemoized asserts the N-way shootout simulates each
// workload's baseline exactly once: the opening "none" pass populates the
// engine memo and every kind's speedup batch hits it. Cells are counted by
// resolved-spec fingerprint, the engine's own memo identity.
func TestShootoutBaselineMemoized(t *testing.T) {
	e := NewEngine(4)
	var mu sync.Mutex
	counts := map[string]int{}
	e.runFn = func(_ context.Context, w string, c Config) (Result, error) {
		fp, err := c.SpecFingerprint()
		if err != nil {
			return Result{}, err
		}
		mu.Lock()
		counts[fmt.Sprintf("%s/%x", w, fp)]++
		mu.Unlock()
		// Distinct nonzero cycles keep speedup math finite.
		return Result{Workload: w, Mode: c.Mode, Cycles: 100 + fp%37, Accuracy: 1}, nil
	}
	wls := []string{"bfs", "mcf"}
	o := ExpOptions{MaxInstructions: 1000, Workloads: wls, Engine: e}
	rows, err := Shootout(o)
	if err != nil {
		t.Fatal(err)
	}
	kinds := ShootoutKinds()
	if want := len(kinds) * len(wls); len(rows) != want {
		t.Fatalf("%d rows, want %d (%d kinds x %d workloads)", len(rows), want, len(kinds), len(wls))
	}
	for cell, n := range counts {
		if n != 1 {
			t.Errorf("cell %s simulated %d times, want exactly 1", cell, n)
		}
	}
	// One baseline + one cell per non-none kind, per workload.
	if want := len(wls) * len(kinds); len(counts) != want {
		t.Errorf("%d distinct cells simulated, want %d", len(counts), want)
	}
	// The memo must prove the sharing: every kind's speedup batch re-requests
	// the baseline and hits the cache instead of re-simulating.
	ms := e.MemoStats()
	if ms.Entries != len(counts) {
		t.Errorf("memo entries = %d, want %d", ms.Entries, len(counts))
	}
	if want := len(wls) * (len(kinds) - 1); ms.Hits != want {
		t.Errorf("memo hits = %d, want %d (baselines shared across kinds)", ms.Hits, want)
	}
}

// TestShootoutMatchesFig8Rows asserts the shootout's tea and runahead rows
// are bit-identical to the Fig. 8 rows for the same options: the shootout
// builds those cells from the same Mode configs, so the speedups must agree
// exactly — on independent engines, not via the memo cache.
func TestShootoutMatchesFig8Rows(t *testing.T) {
	opts := func() ExpOptions {
		return ExpOptions{
			MaxInstructions: 50_000,
			Workloads:       []string{"mcf", "bfs"},
			Quick:           true,
			Engine:          NewEngine(2),
		}
	}
	srows, err := Shootout(opts())
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(opts())
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]map[string]float64{}
	for _, r := range srows {
		if sp[r.Kind] == nil {
			sp[r.Kind] = map[string]float64{}
		}
		sp[r.Kind][r.Workload] = r.Speedup
	}
	for _, r := range f8 {
		if got := sp["tea"][r.Workload]; got != r.TEA {
			t.Errorf("%s: shootout tea speedup %v != fig8 %v", r.Workload, got, r.TEA)
		}
		if got := sp["runahead"][r.Workload]; got != r.Runahead {
			t.Errorf("%s: shootout runahead speedup %v != fig8 %v", r.Workload, got, r.Runahead)
		}
	}
}

// TestShootoutReport asserts the rendered table is the N-way Fig-8 shape:
// per-kind rows with coverage/accuracy/timeliness columns and a geomean
// footer per kind.
func TestShootoutReport(t *testing.T) {
	rows := []ShootoutRow{
		{Workload: "bfs", Kind: "none", Speedup: 1, Accuracy: 1},
		{Workload: "bfs", Kind: "tea", Speedup: 1.10, Coverage: 0.5, Accuracy: 0.9, Saved: 12},
		{Workload: "bfs", Kind: "runahead", Speedup: 1.07, Coverage: 0.4, Accuracy: 0.97, Saved: 15},
		{Workload: "bfs", Kind: "bullseye", Speedup: 1.02, Coverage: 0.2, Accuracy: 0.99, Saved: 15},
		{Workload: "bfs", Kind: "ldbp", Speedup: 1.03, Coverage: 0.3, Accuracy: 1, Saved: 15},
		{Workload: "bfs", Kind: "twowin", Speedup: 1.01, Coverage: 0.4, Accuracy: 1, Saved: 1.5},
	}
	var sb strings.Builder
	if err := WriteShootout(&sb, FormatText, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"kind", "coverage", "accuracy", "saved/branch",
		"geomean tea", "geomean runahead", "geomean bullseye",
		"geomean ldbp", "geomean twowin",
		"+10.0%", "90.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The registry entry renders the same bytes as the direct call.
	rep, ok := LookupExperiment("shootout")
	if !ok {
		t.Fatal("shootout not in the experiment registry")
	}
	if rep.Description == "" || rep.Title == "" {
		t.Fatal("shootout registry entry missing title/description")
	}
}
