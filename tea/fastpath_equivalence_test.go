package tea_test

import (
	"fmt"
	"reflect"
	"testing"

	"teasim/tea"
)

// TestFastPathEquivalence is the decoded-block-cache + bitset-scheduler
// contract (DESIGN.md §12): both fast paths are pure simulator-speed
// optimizations, so every mode must produce bit-identical results — every
// counter, rate, and the final cycle count — with the fast paths enabled
// (the default) and disabled (the reference predict/fetch walk and the
// pointer/heap scheduler). All six modes run on a representative workload
// pair, and the full workload suite runs in the two headline modes.
func TestFastPathEquivalence(t *testing.T) {
	budget := uint64(20_000)
	for _, mode := range tea.Modes() {
		for _, name := range []string{"mcf", "bfs"} {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				checkFastPathEquivalence(t, name, tea.Config{
					Mode:            mode,
					MaxInstructions: budget,
				})
			})
		}
	}
	for _, name := range tea.Workloads() {
		for _, mode := range []tea.Mode{tea.ModeBaseline, tea.ModeTEA} {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				checkFastPathEquivalence(t, name, tea.Config{
					Mode:            mode,
					MaxInstructions: budget,
				})
			})
		}
	}
}

func checkFastPathEquivalence(t *testing.T, name string, cfg tea.Config) {
	t.Helper()
	cfg.DisableBlockCache, cfg.DisableBitsetSched = false, false
	on, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("fast paths on: %v", err)
	}
	cfg.DisableBlockCache, cfg.DisableBitsetSched = true, true
	off, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("fast paths off: %v", err)
	}
	// DeepEqual, not field picking: any future Result field must hold the
	// invariant too.
	if !reflect.DeepEqual(on, off) {
		t.Errorf("results diverge with the fast paths:\n on: %+v\noff: %+v", on, off)
	}
	// The paths are also independent: each fast path alone must match.
	cfg.DisableBlockCache, cfg.DisableBitsetSched = true, false
	schedOnly, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("bitset only: %v", err)
	}
	if !reflect.DeepEqual(on, schedOnly) {
		t.Errorf("results diverge with only the bitset scheduler:\n on: %+v\noff: %+v", on, schedOnly)
	}
	cfg.DisableBlockCache, cfg.DisableBitsetSched = false, true
	cacheOnly, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("block cache only: %v", err)
	}
	if !reflect.DeepEqual(on, cacheOnly) {
		t.Errorf("results diverge with only the block cache:\n on: %+v\noff: %+v", on, cacheOnly)
	}
}
