package tea_test

import (
	"fmt"
	"reflect"
	"testing"

	"teasim/tea"
)

// fastPathToggles enumerates the simulator-speed fast paths covered by the
// bit-identity contract, as functions that disable one path on a config.
// Every new bit-identical optimization lever must be added here.
var fastPathToggles = []struct {
	name    string
	disable func(*tea.Config)
}{
	{"block_cache", func(c *tea.Config) { c.DisableBlockCache = true }},
	{"bitset_sched", func(c *tea.Config) { c.DisableBitsetSched = true }},
	{"split_ready", func(c *tea.Config) { c.DisableSplitReady = true }},
	{"hist_rewind", func(c *tea.Config) { c.DisableHistRewind = true }},
}

// TestFastPathEquivalence is the fast-path bit-identity contract (DESIGN.md
// §12, §14): the decoded-block cache, the bitset scheduler, the split
// main/companion ready lists, and invertible folded-history recovery are all
// pure simulator-speed optimizations, so every mode must produce
// bit-identical results — every counter, rate, and the final cycle count —
// with the fast paths enabled (the default) and disabled (the reference
// paths). All six modes run on a representative workload pair, and the full
// workload suite runs in the two headline modes.
func TestFastPathEquivalence(t *testing.T) {
	budget := uint64(20_000)
	for _, mode := range tea.Modes() {
		for _, name := range []string{"mcf", "bfs"} {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				checkFastPathEquivalence(t, name, tea.Config{
					Mode:            mode,
					MaxInstructions: budget,
				})
			})
		}
	}
	for _, name := range tea.Workloads() {
		for _, mode := range []tea.Mode{tea.ModeBaseline, tea.ModeTEA} {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				checkFastPathEquivalence(t, name, tea.Config{
					Mode:            mode,
					MaxInstructions: budget,
				})
			})
		}
	}
}

// exactTierViolation reports why cfg is outside the bit-identity contract
// (empty when it is inside). The equivalence harness refuses such configs
// outright: a quick-tier run is self-consistent but not comparable to the
// exact tier, and silently asserting equivalence on one would prove nothing.
func exactTierViolation(cfg tea.Config) string {
	machine, err := cfg.ResolvedSpec()
	if err != nil {
		return fmt.Sprintf("spec does not resolve: %v", err)
	}
	if machine.Memory.Quick() {
		return `memory.model "quick" is outside the bit-identity contract (see DESIGN.md §14)`
	}
	return ""
}

func checkFastPathEquivalence(t *testing.T, name string, cfg tea.Config) {
	t.Helper()
	if v := exactTierViolation(cfg); v != "" {
		t.Fatalf("config not eligible for the equivalence harness: %s", v)
	}
	on, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("fast paths on: %v", err)
	}
	check := func(label string, c tea.Config) {
		got, err := tea.Run(name, c)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		// DeepEqual, not field picking: any future Result field must hold
		// the invariant too.
		if !reflect.DeepEqual(on, got) {
			t.Errorf("results diverge (%s):\n on: %+v\ngot: %+v", label, on, got)
		}
	}
	// All reference paths at once.
	all := cfg
	for _, tog := range fastPathToggles {
		tog.disable(&all)
	}
	check("all fast paths off", all)
	// The paths are also independent: each fast path disabled alone must
	// match too.
	for _, tog := range fastPathToggles {
		one := cfg
		tog.disable(&one)
		check(fmt.Sprintf("only %s disabled", tog.name), one)
	}
}

// TestQuickTierRejected pins the quick fidelity tier's exclusion from the
// bit-identity contract: the equivalence harness must refuse a quick-model
// spec rather than run it and silently compare incomparable tiers.
func TestQuickTierRejected(t *testing.T) {
	cfg := tea.Config{
		Mode:            tea.ModeBaseline,
		MaxInstructions: 1000,
		Set:             []string{"memory.model=quick"},
	}
	if v := exactTierViolation(cfg); v == "" {
		t.Fatal("quick-tier config was not rejected by the equivalence harness guard")
	}
	if v := exactTierViolation(tea.Config{Mode: tea.ModeBaseline}); v != "" {
		t.Fatalf("exact-tier config wrongly rejected: %s", v)
	}
}
