package tea_test

import (
	"fmt"
	"reflect"
	"testing"

	"teasim/tea"
)

// TestIdleSkipEquivalence is the idle-cycle fast-forward contract (DESIGN.md
// §9): skipping is cycle-exact, so every workload must produce bit-identical
// results — every counter, rate, and the final cycle count — with skipping
// enabled and disabled. It runs the whole suite at a reduced budget in the
// headline modes, plus the Branch Runahead companion on a handful of
// workloads to cover the second Quiescent implementation.
func TestIdleSkipEquivalence(t *testing.T) {
	budget := uint64(20_000)
	modes := []tea.Mode{tea.ModeBaseline, tea.ModeTEA}
	for _, name := range tea.Workloads() {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", name, mode), func(t *testing.T) {
				t.Parallel()
				checkSkipEquivalence(t, name, tea.Config{
					Mode:            mode,
					MaxInstructions: budget,
				})
			})
		}
	}
	for _, name := range []string{"mcf", "omnetpp", "bfs"} {
		t.Run(fmt.Sprintf("%s/%s", name, tea.ModeBranchRunahead), func(t *testing.T) {
			t.Parallel()
			checkSkipEquivalence(t, name, tea.Config{
				Mode:            tea.ModeBranchRunahead,
				MaxInstructions: budget,
			})
		})
	}
}

func checkSkipEquivalence(t *testing.T, name string, cfg tea.Config) {
	t.Helper()
	cfg.DisableIdleSkip = false
	on, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("skip on: %v", err)
	}
	cfg.DisableIdleSkip = true
	off, err := tea.Run(name, cfg)
	if err != nil {
		t.Fatalf("skip off: %v", err)
	}
	// DeepEqual, not field picking: any future Result field must hold the
	// invariant too (Intervals slices compare element-wise).
	if !reflect.DeepEqual(on, off) {
		t.Errorf("results diverge with idle skipping:\n on: %+v\noff: %+v", on, off)
	}
}
