package tea_test

import (
	"reflect"
	"testing"

	"teasim/tea"
)

// TestQuickTierRuns exercises the statistical memory tier end-to-end: a
// quick-model run must finish, retire its budget, and stamp its rows with
// the fidelity marker so downstream tables can refuse to mix tiers. Values
// stay exact — the tier replaces timing, not semantics — so co-simulation
// holds under quick too.
func TestQuickTierRuns(t *testing.T) {
	for _, mode := range []tea.Mode{tea.ModeBaseline, tea.ModeTEA} {
		res, err := tea.Run("mcf", tea.Config{
			Mode:            mode,
			MaxInstructions: 20_000,
			CoSim:           true,
			Set:             []string{"memory.model=quick"},
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Fidelity != "quick" {
			t.Errorf("%s: Fidelity = %q, want \"quick\"", mode, res.Fidelity)
		}
		if res.Instructions == 0 || res.Cycles == 0 {
			t.Errorf("%s: empty run: %+v", mode, res)
		}
	}
}

// TestQuickTierDeterministic pins reproducibility: the quick tier's hit/miss
// draw is a pure hash of the access stream, so two identical runs are
// bit-identical (within the tier — never across tiers).
func TestQuickTierDeterministic(t *testing.T) {
	cfg := tea.Config{
		Mode:            tea.ModeTEA,
		MaxInstructions: 20_000,
		Set:             []string{"memory.model=quick", "memory.quick_l1_hit_pct=80"},
	}
	a, err := tea.Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tea.Run("mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("quick runs diverge:\n a: %+v\n b: %+v", a, b)
	}
}
