package spec

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden spec files")

// TestPresetGoldens pins every registered preset's resolved spec JSON to a
// committed golden file: any drift in a preset's literals — accidental or
// deliberate — shows up as a readable diff in review.
func TestPresetGoldens(t *testing.T) {
	names := Presets()
	if len(names) == 0 {
		t.Fatal("no presets registered")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			s, err := Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			got := s.Indent()
			path := filepath.Join("testdata", "specs", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./tea/spec -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("preset %q drifted from its golden %s:\n--- golden\n%s\n--- got\n%s",
					name, path, want, got)
			}
		})
	}
}

// TestPresetsValidate asserts every registered preset passes Validate.
func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q fails validation: %v", name, err)
		}
	}
}

// TestJSONRoundTripByteStable asserts marshal → unmarshal → marshal is
// byte-identical for every preset (the canonical-encoding contract behind
// Fingerprint).
func TestJSONRoundTripByteStable(t *testing.T) {
	for _, name := range Presets() {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		first := s.Canonical()
		parsed, err := Parse(first)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		second := parsed.Canonical()
		if !bytes.Equal(first, second) {
			t.Errorf("preset %q round trip is not byte-stable:\nfirst:  %s\nsecond: %s",
				name, first, second)
		}
		if !reflect.DeepEqual(s, parsed) {
			t.Errorf("preset %q round trip changed the value:\nbefore: %+v\nafter:  %+v",
				name, s, parsed)
		}
	}
}

// TestParseRejectsUnknownFields asserts a typo'd -config field is an error,
// not a silently-default machine.
func TestParseRejectsUnknownFields(t *testing.T) {
	s := Baseline()
	data := bytes.Replace(s.Canonical(), []byte(`"rob_size"`), []byte(`"rob_sise"`), 1)
	if _, err := Parse(data); err == nil || !strings.Contains(err.Error(), "rob_sise") {
		t.Fatalf("Parse accepted an unknown field; err = %v", err)
	}
}

// TestFingerprint asserts equal specs fingerprint equal, any field change
// moves the fingerprint, and clones are independent.
func TestFingerprint(t *testing.T) {
	a, b := Baseline(), Baseline()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two fresh baselines fingerprint differently")
	}
	b.Frontend.FetchQueueSize = 64
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("changing fetch_queue_size did not change the fingerprint")
	}

	tea, err := Preset("tea")
	if err != nil {
		t.Fatal(err)
	}
	clone := tea.Clone()
	if tea.Fingerprint() != clone.Fingerprint() {
		t.Fatal("clone fingerprints differently from its original")
	}
	clone.Companion.TEA.FillBufSize = 1024
	clone.Predictor.TageHistLens[0] = 5
	if tea.Companion.TEA.FillBufSize != 512 || tea.Predictor.TageHistLens[0] != 4 {
		t.Fatal("mutating a clone leaked into the original")
	}
	if tea.Fingerprint() == clone.Fingerprint() {
		t.Fatal("companion edit did not change the fingerprint")
	}
}

// TestValidateErrors exercises the actionable-error paths: each broken spec
// must fail with a message naming the offending field.
func TestValidateErrors(t *testing.T) {
	teaSpec := func(mut func(*MachineSpec)) MachineSpec {
		s, err := Preset("tea")
		if err != nil {
			t.Fatal(err)
		}
		mut(&s)
		return s
	}
	cases := []struct {
		name string
		spec MachineSpec
		want string // substring of the joined error
	}{
		{
			name: "zero value",
			spec: MachineSpec{},
			want: "frontend.width must be positive",
		},
		{
			name: "negative rob",
			spec: teaSpec(func(s *MachineSpec) { s.Backend.ROBSize = -1 }),
			want: "backend.rob_size must be positive",
		},
		{
			name: "non pow2 cache sets",
			spec: teaSpec(func(s *MachineSpec) { s.Memory.LLCWays = 12 }),
			want: "llc set count",
		},
		{
			name: "tage tables out of range",
			spec: teaSpec(func(s *MachineSpec) { s.Predictor.TageTables = 13 }),
			want: "predictor.tage_tables must be in [1,12]",
		},
		{
			name: "hist lens mismatch",
			spec: teaSpec(func(s *MachineSpec) { s.Predictor.TageTables = 4 }),
			want: "predictor.tage_hist_lens has 12 lengths for 4 tables",
		},
		{
			name: "non pow2 btb sets",
			spec: teaSpec(func(s *MachineSpec) { s.Predictor.BTBWays = 3 }),
			want: "btb_entries/btb_ways",
		},
		{
			name: "companion overrides on baseline",
			spec: teaSpec(func(s *MachineSpec) {
				s.Companion = Companion{Kind: CompanionNone, Dedicated: true, Ports: 16}
			}),
			want: `kind "none" has no engine`,
		},
		{
			name: "tea section on baseline",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.Kind = CompanionNone }),
			want: "set companion.kind=tea to use it",
		},
		{
			name: "tea kind without section",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.TEA = nil }),
			want: `kind "tea" requires a tea section`,
		},
		{
			name: "both sections",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.Runahead = DefaultRunahead() }),
			want: `kind "tea" conflicts with a runahead section`,
		},
		{
			name: "dedicated without ports",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.Dedicated = true }),
			want: "dedicated engine requires ports > 0",
		},
		{
			name: "ports without dedicated",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.Ports = 16 }),
			want: "only apply to a dedicated engine",
		},
		{
			name: "runahead with engine shape",
			spec: teaSpec(func(s *MachineSpec) {
				s.Companion = Companion{Kind: CompanionRunahead, Runahead: DefaultRunahead(), NoPriority: true}
			}),
			want: "runahead brings its own engine",
		},
		{
			name: "unknown kind",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.Kind = "turbo" }),
			want: `companion.kind "turbo" unknown`,
		},
		{
			name: "non pow2 block cache sets",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.TEA.BlockCacheSets = 48 }),
			want: "companion.tea.block_cache_sets must be a power of two",
		},
		{
			name: "h2p threshold above max",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.TEA.H2PThreshold = 7 }),
			want: "h2p_threshold (7) must be below h2p_max (7)",
		},
		{
			name: "rs partition swallows backend",
			spec: teaSpec(func(s *MachineSpec) { s.Companion.TEA.RSPartition = 400 }),
			want: "must leave the main thread reservation stations",
		},
		{
			name: "zero runahead field",
			spec: teaSpec(func(s *MachineSpec) {
				s.Companion = Companion{Kind: CompanionRunahead, Runahead: DefaultRunahead()}
				s.Companion.Runahead.QueueDepth = 0
			}),
			want: "companion.runahead.queue_depth must be positive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a broken spec; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestSetPatches exercises the dotted-path patch language over every value
// kind and the companion.kind reshaping rules.
func TestSetPatches(t *testing.T) {
	t.Run("values", func(t *testing.T) {
		s, err := Preset("tea")
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{
			"frontend.fetch_queue_size=64",
			"backend.alu_lat=2",
			"companion.tea.h2p_max=5",
			"companion.tea.fill_buf_size=1024",
			"companion.tea.only_loops=true",
			"companion.dedicated=true",
			"companion.ports=16",
			"predictor.tage_tables=4",
			"predictor.tage_hist_lens=4,8,13,22",
		} {
			if err := s.Set(p); err != nil {
				t.Fatalf("Set(%q): %v", p, err)
			}
		}
		if s.Frontend.FetchQueueSize != 64 || s.Backend.ALULat != 2 ||
			s.Companion.TEA.H2PMax != 5 || s.Companion.TEA.FillBufSize != 1024 ||
			!s.Companion.TEA.OnlyLoops || !s.Companion.Dedicated || s.Companion.Ports != 16 {
			t.Fatalf("patches did not land: %+v", s)
		}
		if want := []uint32{4, 8, 13, 22}; !reflect.DeepEqual(s.Predictor.TageHistLens, want) {
			t.Fatalf("hist lens patch: got %v, want %v", s.Predictor.TageHistLens, want)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("patched spec fails validation: %v", err)
		}
	})

	t.Run("kind reshapes", func(t *testing.T) {
		s := Baseline()
		if err := s.Set("companion.kind=tea"); err != nil {
			t.Fatal(err)
		}
		if s.Companion.Kind != CompanionTEA || s.Companion.TEA == nil {
			t.Fatalf("kind=tea did not install a TEA section: %+v", s.Companion)
		}
		if err := s.Set("companion.tea.walk_cycles=250"); err != nil {
			t.Fatal(err)
		}
		if err := s.Set("companion.kind=runahead"); err != nil {
			t.Fatal(err)
		}
		if s.Companion.TEA != nil || s.Companion.Runahead == nil {
			t.Fatalf("kind=runahead did not swap sections: %+v", s.Companion)
		}
		if err := s.Set("companion.kind=none"); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.Companion, Companion{Kind: CompanionNone}) {
			t.Fatalf("kind=none did not clear the companion: %+v", s.Companion)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("errors", func(t *testing.T) {
		for _, tc := range []struct{ patch, want string }{
			{"frontend.fetch_queue_size", "not of the form"},
			{"frontend.nope=3", `unknown field "nope"`},
			{"frontend=3", "is a section, not a field"},
			{"frontend.width.deep=3", "cannot descend"},
			{"frontend.width=abc", "want an integer"},
			{"companion.tea.only_loops=maybe", "want true or false"},
			{"companion.kind=turbo", `"turbo" unknown`},
		} {
			s, err := Preset("tea")
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Set(tc.patch); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Set(%q) = %v, want error containing %q", tc.patch, err, tc.want)
			}
		}
		// Patching a nil section points at the kind switch.
		s := Baseline()
		err := s.Set("companion.tea.fill_buf_size=64")
		if err == nil || !strings.Contains(err.Error(), "set companion.kind first") {
			t.Errorf("nil-section patch: %v", err)
		}
	})
}

// TestBlockCacheEntries pins the capacity↔geometry conversion used by the
// sensitivity sweeps: entries round up to a power-of-two set count at fixed
// associativity.
func TestBlockCacheEntries(t *testing.T) {
	tea := DefaultTEA()
	if got := tea.BlockCacheEntries(); got != 512 {
		t.Fatalf("default Block Cache entries = %d, want 512", got)
	}
	for _, tc := range []struct{ entries, wantSets int }{
		{64, 8}, {512, 64}, {1000, 128}, {1024, 128}, {2048, 256},
	} {
		tea.SetBlockCacheEntries(tc.entries)
		if tea.BlockCacheSets != tc.wantSets {
			t.Errorf("SetBlockCacheEntries(%d): sets = %d, want %d",
				tc.entries, tea.BlockCacheSets, tc.wantSets)
		}
	}
}

// TestPresetUnknown asserts the preset lookup error names the known presets.
func TestPresetUnknown(t *testing.T) {
	_, err := Preset("warp-drive")
	if err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("unknown-preset error should list known presets, got %v", err)
	}
}
