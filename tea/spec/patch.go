package spec

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Set applies one dotted-path patch of the form "section.field=value", where
// path components are the JSON names of the spec tree:
//
//	frontend.fetch_queue_size=64
//	companion.tea.fill_buf_size=1024
//	predictor.tage_hist_lens=4,8,13,22
//	companion.kind=runahead
//
// Setting companion.kind also reshapes the companion: "tea" installs
// DefaultTEA (keeping an existing tea section), "runahead" installs
// DefaultRunahead, "none" clears every companion field. Patches are applied
// in order, so later patches can refine the section a kind change installed.
// The result is not validated; call Validate after the last patch.
func (s *MachineSpec) Set(patch string) error {
	path, value, ok := strings.Cut(patch, "=")
	if !ok {
		return fmt.Errorf("spec: patch %q is not of the form section.field=value", patch)
	}
	path = strings.TrimSpace(path)
	value = strings.TrimSpace(value)

	// companion.kind reshapes the tree; handle it before generic traversal.
	if path == "companion.kind" {
		return s.setKind(value)
	}

	v := reflect.ValueOf(s).Elem()
	walked := ""
	for _, name := range strings.Split(path, ".") {
		if name == "" {
			return fmt.Errorf("spec: patch path %q has an empty component", path)
		}
		// Follow pointers (companion.tea, companion.runahead), erroring on
		// nil sections with a hint instead of a panic.
		if v.Kind() == reflect.Pointer {
			if v.IsNil() {
				return fmt.Errorf("spec: %s is not populated (set companion.kind first)", walked)
			}
			v = v.Elem()
		}
		if v.Kind() != reflect.Struct {
			return fmt.Errorf("spec: %s is a value, not a section; cannot descend into %q", walked, name)
		}
		field, ok := fieldByJSONName(v, name)
		if !ok {
			return fmt.Errorf("spec: unknown field %q under %q (known: %s)",
				name, orRoot(walked), strings.Join(jsonNames(v), ", "))
		}
		v = field
		if walked == "" {
			walked = name
		} else {
			walked += "." + name
		}
	}
	if v.Kind() == reflect.Pointer || v.Kind() == reflect.Struct {
		return fmt.Errorf("spec: %s is a section, not a field; pick one of: %s",
			walked, strings.Join(jsonNames(deref(v)), ", "))
	}
	if err := assign(v, value); err != nil {
		return fmt.Errorf("spec: %s: %w", walked, err)
	}
	return nil
}

// setKind switches the companion scheme through the kind registry: the
// outgoing kind's section is cleared, engine shape fields are reset unless
// the new kind uses them, and the new kind's default section is installed
// (keeping an existing section of the same kind) so follow-up patches have
// something to refine.
func (s *MachineSpec) setKind(value string) error {
	info, ok := LookupKind(CompanionKind(value))
	if !ok {
		return fmt.Errorf("spec: companion.kind %q unknown (registered kinds: %s)", value, kindList())
	}
	c := &s.Companion
	c.Kind = info.Kind
	for _, k := range Kinds() {
		if other := kindRegistry[k]; other.Kind != info.Kind && other.Clear != nil {
			other.Clear(c)
		}
	}
	if !info.Engine {
		c.Dedicated, c.Ports, c.NoPriority = false, 0, false
	}
	if info.Install != nil && !info.Has(c) {
		info.Install(c)
	}
	return nil
}

// assign parses value into the addressable leaf v.
func assign(v reflect.Value, value string) error {
	switch v.Kind() {
	case reflect.Int:
		n, err := strconv.ParseInt(value, 0, 64)
		if err != nil {
			return fmt.Errorf("want an integer, got %q", value)
		}
		v.SetInt(n)
	case reflect.Uint8, reflect.Uint64:
		n, err := strconv.ParseUint(value, 0, v.Type().Bits())
		if err != nil {
			return fmt.Errorf("want an unsigned integer, got %q", value)
		}
		v.SetUint(n)
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("want true or false, got %q", value)
		}
		v.SetBool(b)
	case reflect.String:
		v.SetString(value)
	case reflect.Slice:
		if v.Type().Elem().Kind() != reflect.Uint32 {
			return fmt.Errorf("unsupported slice type %s", v.Type())
		}
		parts := strings.Split(value, ",")
		lens := make([]uint32, 0, len(parts))
		for _, p := range parts {
			n, err := strconv.ParseUint(strings.TrimSpace(p), 0, 32)
			if err != nil {
				return fmt.Errorf("want a comma-separated integer list, got %q", value)
			}
			lens = append(lens, uint32(n))
		}
		v.Set(reflect.ValueOf(lens))
	default:
		return fmt.Errorf("unsupported field type %s", v.Type())
	}
	return nil
}

// fieldByJSONName finds the addressable struct field whose json tag matches.
func fieldByJSONName(v reflect.Value, name string) (reflect.Value, bool) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if jsonName(t.Field(i)) == name {
			return v.Field(i), true
		}
	}
	return reflect.Value{}, false
}

// jsonNames lists a struct's field names as they appear in patch paths.
func jsonNames(v reflect.Value) []string {
	if v.Kind() != reflect.Struct {
		return nil
	}
	t := v.Type()
	names := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		if n := jsonName(t.Field(i)); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func jsonName(f reflect.StructField) string {
	tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
	return tag
}

func deref(v reflect.Value) reflect.Value {
	if v.Kind() == reflect.Pointer && !v.IsNil() {
		return v.Elem()
	}
	return v
}

func orRoot(path string) string {
	if path == "" {
		return "the spec root"
	}
	return path
}
