// The companion zoo: parameter sections, defaults, validation, and presets
// for the companion kinds beyond the paper's TEA/runahead pair. Each kind is
// one RegisterKind call here plus one simulator package (internal/bullseye,
// internal/ldbp, internal/twowin) that registers its factory.
package spec

// Bullseye holds the Bullseye-style predictor parameters: large dedicated
// tagged pattern tables, one logical table per tracked H2P branch, trained
// at retire from local history and consulted at fetch through
// OverridePrediction (Behrendt et al. 2025).
type Bullseye struct {
	// H2P identification (shared filter design with TEA's §IV-B table).
	H2PSets        int    `json:"h2p_sets"`
	H2PWays        int    `json:"h2p_ways"`
	H2PDecayPeriod uint64 `json:"h2p_decay_period"`

	// Per-branch tagged pattern table: TableEntries entries (power of two)
	// indexed/tagged by HistBits of local retired history.
	TableEntries int `json:"table_entries"`
	HistBits     int `json:"hist_bits"`
	// MaxBranches bounds the tracked H2P branch slots (LRU on overflow).
	MaxBranches int `json:"max_branches"`

	// Signed saturating outcome counters in [-ConfMax, ConfMax]; the
	// predictor only overrides when every step of the ahead-chained lookup
	// has |counter| >= ConfThreshold.
	ConfMax       int `json:"conf_max"`
	ConfThreshold int `json:"conf_threshold"`
}

// LDBP holds the load-driven branch prediction parameters: load→branch
// dependence chains captured from the retired-instruction window, trigger
// loads tracked for stride locality, and branch outcomes precomputed from
// committed memory values Lookahead iterations ahead.
type LDBP struct {
	// H2P identification (same filter design as TEA/bullseye).
	H2PSets        int    `json:"h2p_sets"`
	H2PWays        int    `json:"h2p_ways"`
	H2PDecayPeriod uint64 `json:"h2p_decay_period"`

	// Chain capture from the retired-instruction window.
	WindowSize   int `json:"window_size"`
	MaxChains    int `json:"max_chains"`
	MaxChainUops int `json:"max_chain_uops"`

	// Outcome queue depth per tracked branch and stride lookahead distance.
	QueueDepth int `json:"queue_depth"`
	Lookahead  int `json:"lookahead"`
	// StrideConf is how many consecutive identical address deltas the
	// trigger load must show before its stride is trusted.
	StrideConf int `json:"stride_conf"`
}

// TwoWindow holds the lightweight in-order precompute BPU parameters: a
// small window over the oldest unresolved in-flight conditional branches,
// resolved early from ready physical registers and repaired through the
// early-flush path (SNIPPETS.md #1/#2).
type TwoWindow struct {
	// WindowSize is the number of tracked unresolved branches (the
	// reference design uses two).
	WindowSize int `json:"window_size"`
	// EvalsPerCyc bounds condition evaluations per cycle.
	EvalsPerCyc int `json:"evals_per_cyc"`
}

// DefaultBullseye returns the default Bullseye structures: 64 tracked H2P
// branches with 4K-entry pattern tables each — deliberately large, the
// design trades storage for accuracy.
func DefaultBullseye() *Bullseye {
	return &Bullseye{
		H2PSets:        32,
		H2PWays:        8,
		H2PDecayPeriod: 50_000,

		TableEntries: 4096,
		HistBits:     24,
		MaxBranches:  64,

		ConfMax:       8,
		ConfThreshold: 4,
	}
}

// DefaultLDBP returns the default load-driven branch prediction structures.
func DefaultLDBP() *LDBP {
	return &LDBP{
		H2PSets:        32,
		H2PWays:        8,
		H2PDecayPeriod: 50_000,

		WindowSize:   512,
		MaxChains:    64,
		MaxChainUops: 8,

		QueueDepth: 16,
		Lookahead:  8,
		StrideConf: 3,
	}
}

// DefaultTwoWindow returns the reference two-entry precompute window.
func DefaultTwoWindow() *TwoWindow {
	return &TwoWindow{
		WindowSize:  2,
		EvalsPerCyc: 2,
	}
}

func init() {
	RegisterKind(KindInfo{
		Kind:    CompanionBullseye,
		Summary: "Bullseye: per-H2P tagged pattern tables trained at retire",
		Hint:    "see spec.DefaultBullseye",
		Has:     func(c *Companion) bool { return c.Bullseye != nil },
		Install: func(c *Companion) { c.Bullseye = DefaultBullseye() },
		Clear:   func(c *Companion) { c.Bullseye = nil },
		CloneInto: func(dst, src *Companion) {
			if src.Bullseye != nil {
				b := *src.Bullseye
				dst.Bullseye = &b
			}
		},
		Validate: func(s *MachineSpec, bad func(string, ...any)) {
			validateBullseye(s.Companion.Bullseye, bad)
		},
	})
	RegisterKind(KindInfo{
		Kind:    CompanionLDBP,
		Summary: "LDBP: load-driven branch prediction off committed load values",
		Hint:    "see spec.DefaultLDBP",
		Has:     func(c *Companion) bool { return c.LDBP != nil },
		Install: func(c *Companion) { c.LDBP = DefaultLDBP() },
		Clear:   func(c *Companion) { c.LDBP = nil },
		CloneInto: func(dst, src *Companion) {
			if src.LDBP != nil {
				l := *src.LDBP
				dst.LDBP = &l
			}
		},
		Validate: func(s *MachineSpec, bad func(string, ...any)) {
			validateLDBP(s.Companion.LDBP, bad)
		},
	})
	RegisterKind(KindInfo{
		Kind:    CompanionTwoWindow,
		Summary: "two-window in-order precompute BPU on the early-flush path",
		Hint:    "see spec.DefaultTwoWindow",
		Has:     func(c *Companion) bool { return c.TwoWin != nil },
		Install: func(c *Companion) { c.TwoWin = DefaultTwoWindow() },
		Clear:   func(c *Companion) { c.TwoWin = nil },
		CloneInto: func(dst, src *Companion) {
			if src.TwoWin != nil {
				w := *src.TwoWin
				dst.TwoWin = &w
			}
		},
		Validate: func(s *MachineSpec, bad func(string, ...any)) {
			validateTwoWindow(s.Companion.TwoWin, bad)
		},
	})

	Register("bullseye", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionBullseye, Bullseye: DefaultBullseye()}
		return s
	})
	Register("ldbp", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionLDBP, LDBP: DefaultLDBP()}
		return s
	})
	Register("twowin", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionTwoWindow, TwoWin: DefaultTwoWindow()}
		return s
	})
}

func validateBullseye(b *Bullseye, bad func(string, ...any)) {
	for name, v := range map[string]int{
		"h2p_ways":         b.H2PWays,
		"h2p_decay_period": int(b.H2PDecayPeriod),
		"hist_bits":        b.HistBits,
		"max_branches":     b.MaxBranches,
		"conf_max":         b.ConfMax,
		"conf_threshold":   b.ConfThreshold,
	} {
		if v <= 0 {
			bad("companion.bullseye.%s must be positive, got %d", name, v)
		}
	}
	for name, v := range map[string]int{
		"h2p_sets":      b.H2PSets,
		"table_entries": b.TableEntries,
	} {
		if v <= 0 || v&(v-1) != 0 {
			bad("companion.bullseye.%s must be a power of two (indices are computed by masking), got %d", name, v)
		}
	}
	if b.HistBits > 62 {
		bad("companion.bullseye.hist_bits must fit a uint64 history register, got %d", b.HistBits)
	}
	if b.ConfThreshold > b.ConfMax {
		bad("companion.bullseye.conf_threshold (%d) must not exceed conf_max (%d) or no prediction ever qualifies",
			b.ConfThreshold, b.ConfMax)
	}
}

func validateLDBP(l *LDBP, bad func(string, ...any)) {
	for name, v := range map[string]int{
		"h2p_ways":         l.H2PWays,
		"h2p_decay_period": int(l.H2PDecayPeriod),
		"window_size":      l.WindowSize,
		"max_chains":       l.MaxChains,
		"max_chain_uops":   l.MaxChainUops,
		"queue_depth":      l.QueueDepth,
		"lookahead":        l.Lookahead,
		"stride_conf":      l.StrideConf,
	} {
		if v <= 0 {
			bad("companion.ldbp.%s must be positive, got %d", name, v)
		}
	}
	if v := l.H2PSets; v <= 0 || v&(v-1) != 0 {
		bad("companion.ldbp.h2p_sets must be a power of two (indices are computed by masking), got %d", v)
	}
}

func validateTwoWindow(w *TwoWindow, bad func(string, ...any)) {
	for name, v := range map[string]int{
		"window_size":   w.WindowSize,
		"evals_per_cyc": w.EvalsPerCyc,
	} {
		if v <= 0 {
			bad("companion.twowin.%s must be positive, got %d", name, v)
		}
	}
}
