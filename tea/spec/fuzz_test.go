package spec

// Fuzz targets for the two user-facing spec entry points: Parse+Validate
// (the -config path) and Set (the -set patch path). The contract under fuzz
// is "no panic, errors are errors": arbitrary input either produces a spec
// that canonicalizes deterministically or a regular error value.
//
// Seeds come from the committed preset goldens, so the fuzzer starts from
// every machine shape the simulator actually supports.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedGoldens feeds every committed preset golden to the fuzzer.
func seedGoldens(f *testing.F) [][]byte {
	paths, err := filepath.Glob(filepath.Join("testdata", "specs", "*.json"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no preset goldens found: %v", err)
	}
	var seeds [][]byte
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, data)
	}
	return seeds
}

func FuzzValidate(f *testing.F) {
	for _, data := range seedGoldens(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected input is fine; panicking on it is not
		}
		verr := s.Validate()
		// Whatever Validate thought, the spec must canonicalize
		// deterministically: fingerprinting drives memo keys and journal
		// resume, so instability here silently corrupts results.
		c1, c2 := s.Canonical(), s.Canonical()
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical encoding unstable:\n%s\n%s", c1, c2)
		}
		if verr != nil {
			return
		}
		// A valid spec must round-trip: parse(canonical) == same fingerprint.
		back, err := Parse(c1)
		if err != nil {
			t.Fatalf("valid spec's canonical form does not re-parse: %v", err)
		}
		if back.Fingerprint() != s.Fingerprint() {
			t.Fatalf("fingerprint changed across round-trip: %016x != %016x",
				back.Fingerprint(), s.Fingerprint())
		}
	})
}

func FuzzSetPatch(f *testing.F) {
	// Seed with real patch syntax from the docs and each preset as the base.
	patches := []string{
		"frontend.fetch_queue_size=64",
		"companion.tea.fill_buf_size=1024",
		"predictor.tage_hist_lens=4,8,13,22",
		"companion.kind=runahead",
		"companion.kind=none",
		"companion.kind=bullseye",
		"companion.kind=ldbp",
		"companion.kind=twowin",
		"companion.bullseye.hist_bits=12",
		"companion.ldbp.lookahead=24",
		"companion.twowin.window_size=4",
		"backend.rob_size=512",
		"nonsense",
		"a.b.c.d.e=1",
		"frontend.fetch_queue_size=",
		"=value",
	}
	for _, data := range seedGoldens(f) {
		for _, p := range patches {
			f.Add(data, p)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, patch string) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		if err := s.Set(patch); err != nil {
			return // a bad patch is an error, never a panic
		}
		// A patch that applied must leave an encodable spec behind.
		if len(s.Canonical()) == 0 {
			t.Fatal("patched spec has empty canonical encoding")
		}
	})
}
