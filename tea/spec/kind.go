package spec

import (
	"fmt"
	"sort"
	"strings"
)

// KindInfo describes one registered companion kind: how its parameter
// section hangs off Companion, how to install a default section when a
// companion.kind patch selects it, and how to validate the populated
// section. Validate and Set drive off this registry, so adding a companion
// kind is one RegisterKind call plus a section struct — no switch edits.
type KindInfo struct {
	// Kind is the registry key (the value of companion.kind).
	Kind CompanionKind
	// Summary is a one-line description for docs and tooling.
	Summary string
	// Engine marks kinds whose companion shares (or partitions) the main
	// core's engine, making the dedicated/ports/no_priority shape fields
	// meaningful. Only TEA does; every other kind must leave them unset.
	Engine bool
	// Hint names the default-section constructor in error messages
	// (e.g. "see spec.DefaultTEA for Table II").
	Hint string
	// Has reports whether the kind's parameter section is populated.
	// nil for sectionless kinds (none).
	Has func(c *Companion) bool
	// Install populates the kind's default section (companion.kind patches
	// call it when Has is false); Clear removes the section (switching to a
	// different kind).
	Install func(c *Companion)
	// Clear removes the kind's section from c.
	Clear func(c *Companion)
	// CloneInto deep-copies the kind's section from src into dst
	// (MachineSpec.Clone).
	CloneInto func(dst, src *Companion)
	// Validate checks the populated section; only called when Has reports
	// true. It receives the whole spec for cross-section rules.
	Validate func(s *MachineSpec, bad func(string, ...any))
}

// kindRegistry holds every registered companion kind.
var kindRegistry = map[CompanionKind]KindInfo{}

// RegisterKind adds a companion kind to the registry. It panics on a
// duplicate kind: two packages claiming one kind is a wiring bug.
func RegisterKind(info KindInfo) {
	if info.Kind == "" {
		panic("spec: RegisterKind requires a kind name")
	}
	if _, dup := kindRegistry[info.Kind]; dup {
		panic(fmt.Sprintf("spec: companion kind %q registered twice", info.Kind))
	}
	kindRegistry[info.Kind] = info
}

// Kinds returns the registered companion kinds, sorted by name.
func Kinds() []CompanionKind {
	kinds := make([]CompanionKind, 0, len(kindRegistry))
	for k := range kindRegistry {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// LookupKind returns the registered info for a kind.
func LookupKind(k CompanionKind) (KindInfo, bool) {
	info, ok := kindRegistry[k]
	return info, ok
}

// kindList renders the registered kind names for unknown-kind errors.
func kindList() string {
	names := make([]string, 0, len(kindRegistry))
	for _, k := range Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

func init() {
	RegisterKind(KindInfo{
		Kind:    CompanionNone,
		Summary: "bare out-of-order core, no precomputation companion",
	})
	RegisterKind(KindInfo{
		Kind:    CompanionTEA,
		Summary: "the paper's TEA thread (block-level precompute, early flush)",
		Engine:  true,
		Hint:    "see spec.DefaultTEA for Table II",
		Has:     func(c *Companion) bool { return c.TEA != nil },
		Install: func(c *Companion) { c.TEA = DefaultTEA() },
		Clear:   func(c *Companion) { c.TEA = nil },
		CloneInto: func(dst, src *Companion) {
			if src.TEA != nil {
				t := *src.TEA
				dst.TEA = &t
			}
		},
		Validate: func(s *MachineSpec, bad func(string, ...any)) {
			validateTEA(s.Companion.TEA, bad)
			if t := s.Companion.TEA; t.RSPartition > 0 && t.RSPartition >= s.Backend.RSSize {
				bad("companion.tea.rs_partition (%d) must leave the main thread reservation stations (backend.rs_size %d)",
					t.RSPartition, s.Backend.RSSize)
			}
		},
	})
	RegisterKind(KindInfo{
		Kind:    CompanionRunahead,
		Summary: "Branch Runahead comparison engine (dependence-chain runahead)",
		Hint:    "see spec.DefaultRunahead",
		Has:     func(c *Companion) bool { return c.Runahead != nil },
		Install: func(c *Companion) { c.Runahead = DefaultRunahead() },
		Clear:   func(c *Companion) { c.Runahead = nil },
		CloneInto: func(dst, src *Companion) {
			if src.Runahead != nil {
				r := *src.Runahead
				dst.Runahead = &r
			}
		},
		Validate: func(s *MachineSpec, bad func(string, ...any)) {
			validateRunahead(s.Companion.Runahead, bad)
		},
	})
}
