package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
)

// MarshalJSON output is canonical by construction: encoding/json emits
// struct fields in declaration order, so marshal → unmarshal → marshal is
// byte-stable (the round-trip test pins this).

// Canonical returns the spec's canonical (compact, deterministic) JSON
// encoding — the byte stream behind Fingerprint.
func (s *MachineSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Only unrepresentable values (NaN, cycles) can fail here; the spec
		// tree contains neither.
		panic(fmt.Sprintf("spec: canonical encoding failed: %v", err))
	}
	return b
}

// Fingerprint returns a stable 64-bit hash (FNV-1a) of the canonical
// encoding. Two specs fingerprint equal exactly when every resolved field
// is equal, so the fingerprint keys experiment memoization and stamps
// results for provenance.
func (s *MachineSpec) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(s.Canonical())
	return h.Sum64()
}

// FingerprintString returns the fingerprint as the fixed-width hex string
// used in reports (Result.spec_hash).
func (s *MachineSpec) FingerprintString() string {
	return fmt.Sprintf("%016x", s.Fingerprint())
}

// Indent returns the indented JSON encoding used for golden files and
// -config examples (trailing newline included).
func (s *MachineSpec) Indent() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("spec: indented encoding failed: %v", err))
	}
	return append(b, '\n')
}

// Parse decodes a spec from JSON, rejecting unknown fields so a typo in a
// -config file fails loudly instead of silently simulating the default.
// The result is not validated; call Validate after any further patches.
func Parse(data []byte) (MachineSpec, error) {
	var s MachineSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return MachineSpec{}, fmt.Errorf("spec: %w", err)
	}
	return s, nil
}

// Load reads and parses a spec JSON file (see Parse).
func Load(path string) (MachineSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return MachineSpec{}, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return MachineSpec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}
