package spec

import (
	"fmt"
	"sort"
)

// presets is the single registry of named machine points. Each entry builds
// a fresh spec so callers can mutate their copy freely. The six entries
// mirror the tea.Mode enum one-to-one (the mode's report name is its preset
// name); new machine points can be registered without touching simulator
// code.
var presets = map[string]func() MachineSpec{}

// Register adds (or replaces) a named preset. The builder must return a
// fresh value on every call.
func Register(name string, build func() MachineSpec) {
	if name == "" || build == nil {
		panic("spec: Register requires a name and a builder")
	}
	presets[name] = build
}

// Preset returns a fresh copy of a registered machine point.
func Preset(name string) (MachineSpec, error) {
	build, ok := presets[name]
	if !ok {
		return MachineSpec{}, fmt.Errorf("spec: unknown preset %q (have %v)", name, Presets())
	}
	return build(), nil
}

// Presets returns the registered preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Baseline returns the Table I out-of-order core with no companion.
func Baseline() MachineSpec {
	return MachineSpec{
		Frontend: Frontend{
			Width:            8,
			RetireWidth:      16,
			FetchQueueSize:   128,
			FetchToRenameLat: 10,
			MaxBlockInstrs:   32,
			FetchLinesPerCyc: 2,
			FrontQCap:        96,
		},
		Backend: Backend{
			ROBSize:  512,
			RSSize:   352,
			NumPRegs: 400,
			LQSize:   256,
			SQSize:   192,

			ALUPorts:  6,
			LDPorts:   2,
			LDSTPorts: 2,
			FPPorts:   2,

			ALULat: 1, MulLat: 3, DivLat: 12, FPLat: 3, FDivLat: 12,

			MispredictExtraLat: 3,
		},
		Memory: Memory{
			L1ISize: 32 << 10, L1IWays: 8,
			L1DSize: 48 << 10, L1DWays: 12,
			LLCSize: 1 << 20, LLCWays: 16,
			L1Lat: 4, LLCLat: 18,
			L1MSHRs: 16, LLCMSHRs: 32,
		},
		Predictor: Predictor{
			TageTables:   12,
			TageHistLens: []uint32{4, 8, 13, 22, 36, 60, 100, 167, 280, 468, 782, 1270},
			BTBEntries:   4096,
			BTBWays:      4,
			RASEntries:   64,
		},
		Companion: Companion{Kind: CompanionNone},
	}
}

// DefaultTEA returns the Table II TEA-thread structures.
func DefaultTEA() *TEA {
	return &TEA{
		H2PSets:        32,
		H2PWays:        8,
		H2PMax:         7,
		H2PThreshold:   1,
		H2PDecayPeriod: 50_000,

		FillBufSize:   512,
		WalkCycles:    500,
		SourceMemSize: 16,

		BlockCacheSets:  64,
		BlockCacheWays:  8,
		EmptyTagSets:    32,
		EmptyTagWays:    8,
		MaskResetPeriod: 500_000,
		SegMaxUops:      8,

		FrontLatency:  7, // + 1 predict + 1 block read = 9-cycle TEA frontend
		MaxLeadBlocks: 2,
		RSPartition:   192,
		PRPartition:   192,

		StoreCacheLines: 16,
		StoreWaitWindow: 4096,
		LateLimit:       4,
		WrongLimit:      4,
	}
}

// DefaultRunahead returns the scaled-up Branch Runahead engine of §V-C.
func DefaultRunahead() *Runahead {
	return &Runahead{
		MaxChains:      64,
		MaxChainUops:   64,
		QueueDepth:     16,
		MaxInstances:   12,
		EngineWidth:    16,
		RecaptureEvery: 64,
		DisableAfter:   4,
		HistSize:       512,
	}
}

func init() {
	// The six paper machine points (one per tea.Mode).
	Register("baseline", Baseline)
	Register("tea", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionTEA, TEA: DefaultTEA()}
		return s
	})
	Register("tea-dedicated", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionTEA, TEA: DefaultTEA(), Dedicated: true, Ports: 16}
		return s
	})
	Register("tea-bigengine", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionTEA, TEA: DefaultTEA(), Dedicated: true, Ports: s.Backend.Ports()}
		return s
	})
	Register("runahead", func() MachineSpec {
		s := Baseline()
		s.Companion = Companion{Kind: CompanionRunahead, Runahead: DefaultRunahead()}
		return s
	})
	Register("wide16", func() MachineSpec {
		// Double the frontend width only; the predictor still delivers one
		// taken branch per cycle (the paper's §IV-H point).
		s := Baseline()
		s.Frontend.Width = 16
		s.Frontend.FrontQCap = 192
		return s
	})
}
