package spec

import (
	"errors"
	"fmt"
)

// maxTageTables is the implementation capacity of the TAGE predictor (the
// per-prediction context carries fixed-size per-table state).
const maxTageTables = 12

// Validate checks the spec against the simulator's structural requirements
// and the companion cross-field rules, returning every violation (joined)
// with an actionable message. A spec that validates builds without panics.
func (s *MachineSpec) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	positive := func(section string, fields map[string]int) {
		for name, v := range fields {
			if v <= 0 {
				bad("%s.%s must be positive, got %d", section, name, v)
			}
		}
	}
	pow2 := func(section, name string, v int) {
		if v <= 0 || v&(v-1) != 0 {
			bad("%s.%s must be a power of two (indices are computed by masking), got %d", section, name, v)
		}
	}

	positive("frontend", map[string]int{
		"width":               s.Frontend.Width,
		"retire_width":        s.Frontend.RetireWidth,
		"fetch_queue_size":    s.Frontend.FetchQueueSize,
		"max_block_instrs":    s.Frontend.MaxBlockInstrs,
		"fetch_lines_per_cyc": s.Frontend.FetchLinesPerCyc,
		"front_q_cap":         s.Frontend.FrontQCap,
	})

	positive("backend", map[string]int{
		"rob_size":  s.Backend.ROBSize,
		"rs_size":   s.Backend.RSSize,
		"num_pregs": s.Backend.NumPRegs,
		"lq_size":   s.Backend.LQSize,
		"sq_size":   s.Backend.SQSize,
		"alu_lat":   int(s.Backend.ALULat),
		"mul_lat":   int(s.Backend.MulLat),
		"div_lat":   int(s.Backend.DivLat),
		"fp_lat":    int(s.Backend.FPLat),
		"fdiv_lat":  int(s.Backend.FDivLat),
	})
	if s.Backend.Ports() <= 0 {
		bad("backend: at least one execution port is required (alu+ld+ldst+fp = %d)", s.Backend.Ports())
	}
	for name, v := range map[string]int{
		"alu_ports": s.Backend.ALUPorts, "ld_ports": s.Backend.LDPorts,
		"ldst_ports": s.Backend.LDSTPorts, "fp_ports": s.Backend.FPPorts,
	} {
		if v < 0 {
			bad("backend.%s must be non-negative, got %d", name, v)
		}
	}

	positive("memory", map[string]int{
		"l1i_size": s.Memory.L1ISize, "l1i_ways": s.Memory.L1IWays,
		"l1d_size": s.Memory.L1DSize, "l1d_ways": s.Memory.L1DWays,
		"llc_size": s.Memory.LLCSize, "llc_ways": s.Memory.LLCWays,
		"l1_lat": int(s.Memory.L1Lat), "llc_lat": int(s.Memory.LLCLat),
		"l1_mshrs": s.Memory.L1MSHRs, "llc_mshrs": s.Memory.LLCMSHRs,
	})
	// Cache sets = size / (ways × 64B line); indices are masked.
	for _, c := range []struct {
		name       string
		size, ways int
	}{
		{"l1i", s.Memory.L1ISize, s.Memory.L1IWays},
		{"l1d", s.Memory.L1DSize, s.Memory.L1DWays},
		{"llc", s.Memory.LLCSize, s.Memory.LLCWays},
	} {
		if c.size <= 0 || c.ways <= 0 {
			continue // already reported above
		}
		if sets := c.size / c.ways / 64; sets <= 0 || sets&(sets-1) != 0 {
			bad("memory: %s set count %d (size %d / ways %d / 64B lines) must be a positive power of two",
				c.name, sets, c.size, c.ways)
		}
	}

	switch s.Memory.Model {
	case "", "quick":
	default:
		bad(`memory.model %q unknown (want "" for the exact tier or "quick" for the statistical tier)`, s.Memory.Model)
	}
	if s.Memory.Quick() {
		for name, v := range map[string]int{
			"quick_l1_hit_pct":  s.Memory.QuickL1HitPct,
			"quick_llc_hit_pct": s.Memory.QuickLLCHitPct,
		} {
			if v < 0 || v > 100 {
				bad("memory.%s must be a percentage in [0,100] (0 means the default), got %d", name, v)
			}
		}
	} else if s.Memory.QuickL1HitPct != 0 || s.Memory.QuickLLCHitPct != 0 || s.Memory.QuickMemLat != 0 {
		bad(`memory: quick_* parameters require memory.model "quick"`)
	}

	p := &s.Predictor
	if p.TageTables < 1 || p.TageTables > maxTageTables {
		bad("predictor.tage_tables must be in [1,%d], got %d", maxTageTables, p.TageTables)
	}
	if len(p.TageHistLens) != p.TageTables {
		bad("predictor.tage_hist_lens has %d lengths for %d tables (they must match)",
			len(p.TageHistLens), p.TageTables)
	}
	for i, l := range p.TageHistLens {
		if l == 0 {
			bad("predictor.tage_hist_lens[%d] must be positive", i)
		}
	}
	positive("predictor", map[string]int{
		"btb_entries": p.BTBEntries,
		"btb_ways":    p.BTBWays,
		"ras_entries": p.RASEntries,
	})
	if p.BTBEntries > 0 && p.BTBWays > 0 {
		pow2("predictor", "btb_entries/btb_ways (set count)", p.BTBEntries/p.BTBWays)
	}

	s.validateCompanion(&errs, bad)
	return errors.Join(errs...)
}

// validateCompanion enforces the kind cross-field rules against the kind
// registry: exactly the section named by Kind is populated and engine shape
// fields are only set for kinds that share the main core's engine.
func (s *MachineSpec) validateCompanion(errs *[]error, bad func(string, ...any)) {
	c := &s.Companion
	info, ok := LookupKind(c.Kind)
	if !ok {
		bad("companion.kind %q unknown (registered kinds: %s)", c.Kind, kindList())
		return
	}
	for _, k := range Kinds() {
		other := kindRegistry[k]
		if other.Kind == c.Kind || other.Has == nil || !other.Has(c) {
			continue
		}
		if info.Has == nil {
			bad(`companion: kind %q must not carry a %s section (set companion.kind=%s to use it)`,
				c.Kind, other.Kind, other.Kind)
		} else {
			bad(`companion: kind %q conflicts with a %s section; remove one`, c.Kind, other.Kind)
		}
	}
	if info.Engine {
		if c.Dedicated && c.Ports <= 0 {
			bad("companion: dedicated engine requires ports > 0, got %d", c.Ports)
		}
		if !c.Dedicated && c.Ports != 0 {
			bad("companion: ports (%d) only apply to a dedicated engine; set dedicated=true", c.Ports)
		}
	} else if c.Dedicated || c.Ports != 0 || c.NoPriority {
		if info.Has == nil {
			bad(`companion: kind %q has no engine; dedicated/ports/no_priority must be unset`, c.Kind)
		} else {
			bad(`companion: %s brings its own engine; dedicated/ports/no_priority must be unset`, c.Kind)
		}
	}
	if info.Has != nil {
		if !info.Has(c) {
			bad(`companion: kind %q requires a %s section (%s)`, c.Kind, c.Kind, info.Hint)
		} else if info.Validate != nil {
			info.Validate(s, bad)
		}
	}
}

func validateTEA(t *TEA, bad func(string, ...any)) {
	for name, v := range map[string]int{
		"h2p_ways":          t.H2PWays,
		"fill_buf_size":     t.FillBufSize,
		"walk_cycles":       int(t.WalkCycles),
		"source_mem_size":   t.SourceMemSize,
		"block_cache_ways":  t.BlockCacheWays,
		"empty_tag_ways":    t.EmptyTagWays,
		"seg_max_uops":      t.SegMaxUops,
		"max_lead_blocks":   t.MaxLeadBlocks,
		"rs_partition":      t.RSPartition,
		"pr_partition":      t.PRPartition,
		"store_cache_lines": t.StoreCacheLines,
		"store_wait_window": t.StoreWaitWindow,
		"late_limit":        t.LateLimit,
		"wrong_limit":       t.WrongLimit,
		"h2p_decay_period":  int(t.H2PDecayPeriod),
	} {
		if v <= 0 {
			bad("companion.tea.%s must be positive, got %d", name, v)
		}
	}
	for name, v := range map[string]int{
		"h2p_sets":         t.H2PSets,
		"block_cache_sets": t.BlockCacheSets,
		"empty_tag_sets":   t.EmptyTagSets,
	} {
		if v <= 0 || v&(v-1) != 0 {
			bad("companion.tea.%s must be a power of two (indices are computed by masking), got %d", name, v)
		}
	}
	if t.H2PThreshold >= t.H2PMax {
		bad("companion.tea.h2p_threshold (%d) must be below h2p_max (%d) or no branch ever qualifies",
			t.H2PThreshold, t.H2PMax)
	}
}

func validateRunahead(r *Runahead, bad func(string, ...any)) {
	for name, v := range map[string]int{
		"max_chains":      r.MaxChains,
		"max_chain_uops":  r.MaxChainUops,
		"queue_depth":     r.QueueDepth,
		"max_instances":   r.MaxInstances,
		"engine_width":    r.EngineWidth,
		"recapture_every": r.RecaptureEvery,
		"disable_after":   r.DisableAfter,
		"hist_size":       r.HistSize,
	} {
		if v <= 0 {
			bad("companion.runahead.%s must be positive, got %d", name, v)
		}
	}
}
