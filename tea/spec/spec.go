// Package spec defines the declarative machine configuration tree behind
// every simulation: a MachineSpec describes the frontend, backend, memory
// hierarchy, branch predictor, and precomputation companion of one machine
// point, independent of simulator code.
//
// The package is pure data: specs are built from presets (the named machine
// points behind the paper's tables and figures), loaded from JSON, and
// edited with dotted-path patches ("companion.tea.fill_buf_size=1024").
// The tea package turns a resolved spec into simulator configuration; every
// sensitivity study is therefore a data change, not a code change.
//
// Resolution order for one run (see tea.Config): preset (or an explicit
// spec) → ablation switches → structure-size overrides → -set patches, then
// Validate. The resolved spec's Fingerprint keys experiment memoization and
// stamps results for provenance.
package spec

// CompanionKind selects the precomputation scheme attached to the core.
type CompanionKind string

// Companion kinds.
const (
	// CompanionNone runs the bare out-of-order core.
	CompanionNone CompanionKind = "none"
	// CompanionTEA attaches the paper's TEA thread.
	CompanionTEA CompanionKind = "tea"
	// CompanionRunahead attaches the Branch Runahead comparison engine.
	CompanionRunahead CompanionKind = "runahead"
	// CompanionBullseye attaches per-H2P tagged pattern tables trained at
	// retire (the Bullseye predictor, see zoo.go).
	CompanionBullseye CompanionKind = "bullseye"
	// CompanionLDBP attaches load-driven branch prediction: load→branch
	// chains captured at retire, predicted ahead off committed load values.
	CompanionLDBP CompanionKind = "ldbp"
	// CompanionTwoWindow attaches a lightweight in-order two-window
	// precompute BPU that resolves in-flight branches from ready operands.
	CompanionTwoWindow CompanionKind = "twowin"
)

// MachineSpec is one complete machine point. The zero value is not a valid
// machine; start from a preset (Preset, Baseline) or a JSON file.
type MachineSpec struct {
	Frontend  Frontend  `json:"frontend"`
	Backend   Backend   `json:"backend"`
	Memory    Memory    `json:"memory"`
	Predictor Predictor `json:"predictor"`
	Companion Companion `json:"companion"`
}

// Frontend describes fetch and the decoupled branch-prediction feed.
type Frontend struct {
	Width            int    `json:"width"`               // fetch/decode/rename/issue width
	RetireWidth      int    `json:"retire_width"`        // retirement bandwidth
	FetchQueueSize   int    `json:"fetch_queue_size"`    // decoupled-BP fetch queue entries
	FetchToRenameLat uint64 `json:"fetch_to_rename_lat"` // fetch→rename pipeline depth
	MaxBlockInstrs   int    `json:"max_block_instrs"`    // BP throughput cap per fetch block
	FetchLinesPerCyc int    `json:"fetch_lines_per_cyc"` // sequential I-cache lines per cycle
	FrontQCap        int    `json:"front_q_cap"`         // fetched-but-not-renamed uop bound
}

// Backend describes the out-of-order engine.
type Backend struct {
	ROBSize  int `json:"rob_size"`
	RSSize   int `json:"rs_size"`
	NumPRegs int `json:"num_pregs"`
	LQSize   int `json:"lq_size"`
	SQSize   int `json:"sq_size"`

	ALUPorts  int `json:"alu_ports"`
	LDPorts   int `json:"ld_ports"`
	LDSTPorts int `json:"ldst_ports"`
	FPPorts   int `json:"fp_ports"`

	ALULat  uint64 `json:"alu_lat"`
	MulLat  uint64 `json:"mul_lat"`
	DivLat  uint64 `json:"div_lat"`
	FPLat   uint64 `json:"fp_lat"`
	FDivLat uint64 `json:"fdiv_lat"`

	MispredictExtraLat uint64 `json:"mispredict_extra_lat"`
}

// Ports returns the total execution-port count (the main core's issue
// bandwidth; the tea-bigengine preset sizes its dedicated engine to this).
func (b Backend) Ports() int { return b.ALUPorts + b.LDPorts + b.LDSTPorts + b.FPPorts }

// Memory describes the cache hierarchy (sizes in bytes, latencies in core
// cycles). The DRAM model is fixed DDR4-2400R.
type Memory struct {
	L1ISize int    `json:"l1i_size"`
	L1IWays int    `json:"l1i_ways"`
	L1DSize int    `json:"l1d_size"`
	L1DWays int    `json:"l1d_ways"`
	LLCSize int    `json:"llc_size"`
	LLCWays int    `json:"llc_ways"`
	L1Lat   uint64 `json:"l1_lat"`
	LLCLat  uint64 `json:"llc_lat"`

	L1MSHRs  int `json:"l1_mshrs"`
	LLCMSHRs int `json:"llc_mshrs"`

	// Model selects the memory fidelity tier: "" (exact, the default — the
	// full hierarchy walk) or "quick" (statistical hit/miss draw with fixed
	// latencies; see internal/mem/quick.go). Quick runs are reproducible but
	// OUTSIDE the bit-identity contract: the fast-path equivalence harness
	// rejects them, and their rows must never be mixed into paper-figure
	// tables (EXPERIMENTS.md). All fields omitempty so exact-tier spec
	// fingerprints and goldens are unchanged.
	Model          string `json:"model,omitempty"`
	QuickL1HitPct  int    `json:"quick_l1_hit_pct,omitempty"`  // default 90
	QuickLLCHitPct int    `json:"quick_llc_hit_pct,omitempty"` // default 60
	QuickMemLat    uint64 `json:"quick_mem_lat,omitempty"`     // default 180
}

// Quick reports whether the spec selects the statistical memory tier.
func (m *Memory) Quick() bool { return m.Model == "quick" }

// Predictor describes the decoupled branch-prediction stack (TAGE-SC-L
// class). TageHistLens is the geometric history series of the tagged
// tables; its length must equal TageTables.
type Predictor struct {
	TageTables   int      `json:"tage_tables"`
	TageHistLens []uint32 `json:"tage_hist_lens"`
	BTBEntries   int      `json:"btb_entries"`
	BTBWays      int      `json:"btb_ways"`
	RASEntries   int      `json:"ras_entries"`
}

// Companion describes the precomputation scheme. Exactly the section named
// by Kind must be populated — TEA for "tea", Runahead for "runahead", and so
// on through the kind registry (see RegisterKind); "none" carries no section.
// Validate enforces this through the registry.
type Companion struct {
	Kind CompanionKind `json:"kind"`

	// Dedicated gives a TEA companion its own execution engine with Ports
	// execution slots per cycle instead of shared backend resources
	// (§V-D / Fig. 9).
	Dedicated bool `json:"dedicated,omitempty"`
	Ports     int  `json:"ports,omitempty"`
	// NoPriority demotes companion uops below the main thread at select
	// (ablation of §IV-E's prioritization claim).
	NoPriority bool `json:"no_priority,omitempty"`

	TEA      *TEA       `json:"tea,omitempty"`
	Runahead *Runahead  `json:"runahead,omitempty"`
	Bullseye *Bullseye  `json:"bullseye,omitempty"`
	LDBP     *LDBP      `json:"ldbp,omitempty"`
	TwoWin   *TwoWindow `json:"twowin,omitempty"`
}

// TEA holds the TEA-thread structures (Table II) and the Fig. 10 ablation
// switches.
type TEA struct {
	// H2P table (§IV-B).
	H2PSets        int    `json:"h2p_sets"`
	H2PWays        int    `json:"h2p_ways"`
	H2PMax         uint8  `json:"h2p_max"`
	H2PThreshold   uint8  `json:"h2p_threshold"`
	H2PDecayPeriod uint64 `json:"h2p_decay_period"`

	// Fill Buffer and Backward Dataflow Walk (§IV-C).
	FillBufSize   int    `json:"fill_buf_size"`
	WalkCycles    uint64 `json:"walk_cycles"`
	SourceMemSize int    `json:"source_mem_size"`

	// Block Cache (§IV-B/C). Set counts must be powers of two.
	BlockCacheSets  int    `json:"block_cache_sets"`
	BlockCacheWays  int    `json:"block_cache_ways"`
	EmptyTagSets    int    `json:"empty_tag_sets"`
	EmptyTagWays    int    `json:"empty_tag_ways"`
	MaskResetPeriod uint64 `json:"mask_reset_period"`
	SegMaxUops      int    `json:"seg_max_uops"`

	// Frontend/backend (§IV-D/E).
	FrontLatency  uint64 `json:"front_latency"`
	MaxLeadBlocks int    `json:"max_lead_blocks"` // shadow fetch queue depth
	RSPartition   int    `json:"rs_partition"`
	PRPartition   int    `json:"pr_partition"`

	// Store data cache and conservative load ordering (§IV-E).
	StoreCacheLines int `json:"store_cache_lines"`
	StoreWaitWindow int `json:"store_wait_window"`

	// Termination policy (§V-B, §IV-G).
	LateLimit  int `json:"late_limit"`
	WrongLimit int `json:"wrong_limit"`

	// Ablation switches (Fig. 10 / §V-B).
	OnlyLoops         bool `json:"only_loops,omitempty"`
	NoMasks           bool `json:"no_masks,omitempty"`
	NoMem             bool `json:"no_mem,omitempty"`
	DisableEarlyFlush bool `json:"disable_early_flush,omitempty"`
}

// BlockCacheEntries returns the Block Cache data capacity (sets × ways).
func (t *TEA) BlockCacheEntries() int { return t.BlockCacheSets * t.BlockCacheWays }

// SetBlockCacheEntries resizes the Block Cache to at least entries while
// keeping the associativity, rounding the set count up to the next power of
// two (indices are computed by masking).
func (t *TEA) SetBlockCacheEntries(entries int) {
	sets := 1
	for sets*t.BlockCacheWays < entries {
		sets *= 2
	}
	t.BlockCacheSets = sets
}

// Runahead holds the Branch Runahead engine parameters (§V-C).
type Runahead struct {
	MaxChains      int `json:"max_chains"`
	MaxChainUops   int `json:"max_chain_uops"`
	QueueDepth     int `json:"queue_depth"`
	MaxInstances   int `json:"max_instances"`
	EngineWidth    int `json:"engine_width"`
	RecaptureEvery int `json:"recapture_every"`
	DisableAfter   int `json:"disable_after"`
	HistSize       int `json:"hist_size"`
}

// Clone returns a deep copy: mutating the copy (patches, overrides) never
// affects the original. Companion sections are deep-copied through the kind
// registry, so new kinds inherit correct clone semantics for free.
func (s MachineSpec) Clone() MachineSpec {
	c := s
	if s.Predictor.TageHistLens != nil {
		c.Predictor.TageHistLens = append([]uint32(nil), s.Predictor.TageHistLens...)
	}
	for _, info := range kindRegistry {
		if info.CloneInto != nil {
			info.CloneInto(&c.Companion, &s.Companion)
		}
	}
	return c
}
