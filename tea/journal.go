package tea

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"sync"
)

// JournalRecord is one completed experiment cell, keyed exactly like the
// engine's memo cache: the workload, the mode label, the resolved machine
// spec's fingerprint, and the run budget. Records are written as one JSON
// line each, so a journal survives `kill -9` with at most the in-progress
// line lost; the checksum makes a torn or bit-rotted line detectable rather
// than silently poisoning a resumed run.
type JournalRecord struct {
	V        int    `json:"v"` // record format version (currently 1)
	Workload string `json:"workload"`
	Mode     Mode   `json:"mode"`
	Spec     string `json:"spec"` // resolved spec fingerprint, %016x
	MaxInstr uint64 `json:"max_instr"`
	Scale    int    `json:"scale"`
	Result   Result `json:"result"`
	// Checksum is the FNV-1a 64 hash (hex) of the record's canonical JSON
	// with this field empty.
	Checksum string `json:"checksum,omitempty"`
}

// journalVersion is the record format written by Append.
const journalVersion = 1

// recordChecksum computes the checksum over the record with its Checksum
// field cleared. json.Marshal of a struct is deterministic (declaration
// order), so the byte stream is stable across writes and reads.
func recordChecksum(rec JournalRecord) (string, error) {
	rec.Checksum = ""
	b, err := json.Marshal(rec)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16), nil
}

// Seal returns the record with its format version and checksum filled,
// ready to be persisted. Journal.Append seals automatically; external
// persistence layers (tea/store) seal before writing their own framing.
func (r JournalRecord) Seal() (JournalRecord, error) {
	r.V = journalVersion
	sum, err := recordChecksum(r)
	if err != nil {
		return JournalRecord{}, err
	}
	r.Checksum = sum
	return r, nil
}

// Verify reports whether the record is intact: the known format version and
// a checksum matching its contents. Torn or bit-rotted records verify false.
func (r JournalRecord) Verify() bool {
	if r.V != journalVersion || r.Checksum == "" {
		return false
	}
	sum, err := recordChecksum(r)
	return err == nil && sum == r.Checksum
}

// Journal is a crash-safe append-only results log. Every Append marshals one
// record, writes it as a single line, and fsyncs, so a completed cell is
// durable before the engine reports it. A Journal is safe for concurrent use
// by the engine's worker pool.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
}

// OpenJournal opens (creating if needed) a journal for appending. The same
// path can be read first with ReadJournal to resume a killed run.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tea: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append durably writes one record: checksum, single-line JSON, fsync.
func (j *Journal) Append(rec JournalRecord) error {
	rec, err := rec.Seal()
	if err != nil {
		return fmt.Errorf("tea: journal append: %w", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("tea: journal append: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.buf = append(j.buf[:0], line...)
	j.buf = append(j.buf, '\n')
	if _, err := j.f.Write(j.buf); err != nil {
		return fmt.Errorf("tea: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("tea: journal sync: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ReadJournal loads every intact record from a journal file. Records that
// fail to parse or whose checksum does not match — a line torn by `kill -9`
// mid-append, or later corruption — are skipped and counted in dropped, so a
// resumed run re-simulates those cells instead of trusting them. A missing
// file is not an error: it returns no records, matching a first run.
func ReadJournal(path string) (recs []JournalRecord, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("tea: read journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if json.Unmarshal(line, &rec) != nil || !rec.Verify() {
			dropped++
			continue
		}
		recs = append(recs, rec)
	}
	if serr := sc.Err(); serr != nil {
		return recs, dropped, fmt.Errorf("tea: read journal: %w", serr)
	}
	return recs, dropped, nil
}
