package tea

// Internal engine tests: these reach the runFn seam to count and fault
// simulation calls without paying for real runs. The cross-worker
// determinism test on real simulations also lives here so `go test -race`
// exercises the pool end to end.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// countingEngine returns an engine whose runFn tallies invocations per
// (workload, mode, budget) cell instead of simulating.
func countingEngine(workers int) (*Engine, func() map[string]int) {
	e := NewEngine(workers)
	var mu sync.Mutex
	counts := map[string]int{}
	e.runFn = func(_ context.Context, w string, c Config) (Result, error) {
		mu.Lock()
		counts[fmt.Sprintf("%s/%s/%d", w, c.Mode, c.MaxInstructions)]++
		mu.Unlock()
		// Distinct nonzero cycles keep speedup math finite.
		return Result{Workload: w, Mode: c.Mode, Cycles: 100 + uint64(c.Mode)}, nil
	}
	return e, func() map[string]int {
		mu.Lock()
		defer mu.Unlock()
		out := make(map[string]int, len(counts))
		for k, v := range counts {
			out[k] = v
		}
		return out
	}
}

// TestFig8BaselineMemoized asserts the paired Fig. 8 experiment simulates
// each workload's baseline exactly once per (workload, budget): without the
// engine's memo cache the TEA and Runahead halves would each run it.
func TestFig8BaselineMemoized(t *testing.T) {
	e, snapshot := countingEngine(4)
	wls := []string{"bfs", "mcf", "gcc"}
	o := ExpOptions{MaxInstructions: 1000, Workloads: wls, Engine: e}
	if _, err := Fig8(o); err != nil {
		t.Fatal(err)
	}
	counts := snapshot()
	for _, w := range wls {
		key := w + "/baseline/1000"
		if counts[key] != 1 {
			t.Errorf("baseline for %s ran %d times, want exactly 1", w, counts[key])
		}
	}
	for k, n := range counts {
		if n != 1 {
			t.Errorf("cell %s ran %d times, want 1", k, n)
		}
	}

	// A further experiment on the same engine and budget reuses the cache.
	if _, err := Fig5(o); err != nil {
		t.Fatal(err)
	}
	counts = snapshot()
	for _, w := range wls {
		key := w + "/baseline/1000"
		if counts[key] != 1 {
			t.Errorf("after Fig5 reuse, baseline for %s ran %d times, want 1", w, counts[key])
		}
	}
	// A different budget is a different cell and must re-simulate.
	o2 := ExpOptions{MaxInstructions: 2000, Workloads: wls, Engine: e}
	if _, err := Fig5(o2); err != nil {
		t.Fatal(err)
	}
	counts = snapshot()
	for _, w := range wls {
		if counts[w+"/baseline/2000"] != 1 {
			t.Errorf("baseline for %s at budget 2000 ran %d times, want 1",
				w, counts[w+"/baseline/2000"])
		}
	}
}

// TestEngineMemoByFingerprint asserts the memo cache keys on the resolved
// machine spec: configs describing the same machine share one simulation no
// matter how they spell it (override field, -set patch, or plain preset),
// while a config describing a different machine re-simulates.
func TestEngineMemoByFingerprint(t *testing.T) {
	e, snapshot := countingEngine(2)
	base := Config{Mode: ModeBaseline, MaxInstructions: 1000, Scale: 1}
	override := base
	override.FetchQueueSize = 64
	patched := base
	patched.Set = []string{"frontend.fetch_queue_size=64"}
	redundant := base
	redundant.FetchQueueSize = 128 // the preset value: same machine as base
	jobs := []Job{
		{"bfs", base}, {"bfs", base},
		{"bfs", override}, {"bfs", override}, {"bfs", patched},
		{"bfs", redundant},
	}
	if _, err := e.Map(jobs); err != nil {
		t.Fatal(err)
	}
	// base + redundant share one cell; override (twice) + patched share
	// another.
	if n := snapshot()["bfs/baseline/1000"]; n != 2 {
		t.Fatalf("six equivalent-machine jobs ran %d simulations, want 2 (one per distinct fingerprint)", n)
	}
}

// TestEngineNoMemoForBehavioralConfigs asserts runs whose configuration
// changes what the caller observes — co-simulation, telemetry, idle-skip
// debugging — are never served from the cache.
func TestEngineNoMemoForBehavioralConfigs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"cosim", func(c *Config) { c.CoSim = true }},
		{"intervals", func(c *Config) { c.Intervals = true }},
		{"noidleskip", func(c *Config) { c.DisableIdleSkip = true }},
		{"paranoia", func(c *Config) { c.Paranoia = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, snapshot := countingEngine(2)
			cfg := Config{Mode: ModeBaseline, MaxInstructions: 1000, Scale: 1}
			tc.mut(&cfg)
			if cfg.Memoizable() {
				t.Fatalf("config with %s reports Memoizable", tc.name)
			}
			if _, err := e.Map([]Job{{"bfs", cfg}, {"bfs", cfg}}); err != nil {
				t.Fatal(err)
			}
			if n := snapshot()["bfs/baseline/1000"]; n != 2 {
				t.Fatalf("%s run simulated %d times for two jobs, want 2 (no memoization)", tc.name, n)
			}
		})
	}
}

// TestEnginePanicCapture asserts a panicking job surfaces as that job's
// error instead of killing the process.
func TestEnginePanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewEngine(workers)
		e.runFn = func(_ context.Context, w string, c Config) (Result, error) {
			if w == "boom" {
				panic("simulated wedge")
			}
			return Result{Workload: w, Cycles: 1}, nil
		}
		jobs := []Job{
			{"bfs", Config{Mode: ModeTEA}},
			{"boom", Config{Mode: ModeTEA}},
			{"mcf", Config{Mode: ModeTEA}},
		}
		_, err := e.Map(jobs)
		if err == nil {
			t.Fatalf("workers=%d: expected an error from the panicking job", workers)
		}
		if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("workers=%d: error %q does not identify the panicking job", workers, err)
		}
	}
}

// TestEngineDeterministicError asserts the lowest-index failure wins
// regardless of worker scheduling.
func TestEngineDeterministicError(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		e := NewEngine(8)
		e.runFn = func(_ context.Context, w string, c Config) (Result, error) {
			if strings.HasPrefix(w, "bad") {
				return Result{}, fmt.Errorf("fault in %s", w)
			}
			return Result{Workload: w, Cycles: 1}, nil
		}
		jobs := []Job{
			{"ok0", Config{}}, {"bad1", Config{}}, {"ok2", Config{}},
			{"bad3", Config{}}, {"ok4", Config{}},
		}
		_, err := e.Map(jobs)
		if err == nil || !strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), "bad1") {
			t.Fatalf("trial %d: got %v, want the job-1 fault", trial, err)
		}
	}
}

// TestEngineDeterminismAcrossWorkers is the regression test for the worker
// pool: Fig 5 and Fig 10 on a reduced budget must produce byte-identical
// rows (same values, same order) with 8 workers and with 1. Run under
// `go test -race` this also proves the pool is data-race-free on real
// simulations.
func TestEngineDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation matrix; skipped in -short mode")
	}
	wls := []string{"bfs", "cc", "mcf", "gcc", "xz", "omnetpp"}
	optsFor := func(workers int) ExpOptions {
		return ExpOptions{MaxInstructions: 25_000, Scale: 1, Workloads: wls, Workers: workers}
	}

	seq5, err := Fig5(optsFor(1))
	if err != nil {
		t.Fatal(err)
	}
	par5, err := Fig5(optsFor(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq5, par5) {
		t.Errorf("Fig5 rows differ between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", seq5, par5)
	}

	seq10, err := Fig10(optsFor(1))
	if err != nil {
		t.Fatal(err)
	}
	par10, err := Fig10(optsFor(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq10, par10) {
		t.Errorf("Fig10 rows differ between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", seq10, par10)
	}
}
