package tea

// Paranoia suite: run real simulations with the per-cycle invariant checker
// armed and confirm (a) no invariant fires and (b) results are bit-identical
// to the unchecked run — the checker only reads.
//
// The default run covers a trimmed workload subset on every mode at a small
// budget (CI-friendly); `go test ./tea/ -run TestParanoiaSuite -paranoia-full`
// (the `make paranoia` target) runs the full workload suite at a larger
// budget on all six preset machine points.

import (
	"flag"
	"fmt"
	"reflect"
	"testing"
)

var paranoiaFull = flag.Bool("paranoia-full", false,
	"run the paranoia suite over every workload at full budget")

func TestParanoiaSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("paranoia suite is slow; skipped with -short")
	}
	workloads := []string{"bfs", "mcf"}
	budget := uint64(20_000)
	if *paranoiaFull {
		workloads = Workloads()
		budget = 200_000
	}
	modes := []Mode{ModeBaseline, ModeTEA, ModeTEADedicated, ModeTEABigEngine, ModeBranchRunahead, ModeWide16}
	for _, w := range workloads {
		for _, m := range modes {
			w, m := w, m
			t.Run(fmt.Sprintf("%s/%s", w, m), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Mode: m, MaxInstructions: budget, Scale: 1}
				plain, err := Run(w, cfg)
				if err != nil {
					t.Fatalf("unchecked run failed: %v", err)
				}
				cfg.Paranoia = true
				checked, err := Run(w, cfg) // an invariant violation panics
				if err != nil {
					t.Fatalf("paranoid run failed: %v", err)
				}
				if !reflect.DeepEqual(checked, plain) {
					t.Errorf("paranoia changed the result:\nchecked: %+v\nplain:   %+v", checked, plain)
				}
			})
		}
	}
}
