package tea

import (
	"fmt"

	"teasim/internal/bpred"
	"teasim/internal/mem"
	"teasim/internal/pipeline"
	"teasim/tea/spec"
)

// ResolvedSpec resolves the machine point this configuration simulates:
// Config.Spec (or, when nil, the Mode's preset), with the ablation switches,
// structure-size overrides, and Set patches applied on top — in that order —
// then validated. The result is what RunContext builds the simulator from
// and what SpecFingerprint hashes, so two configs resolving to equal specs
// simulate identical machines.
func (c Config) ResolvedSpec() (spec.MachineSpec, error) {
	var s spec.MachineSpec
	if c.Spec != nil {
		s = c.Spec.Clone()
	} else {
		var err error
		if s, err = c.Mode.Preset(); err != nil {
			return spec.MachineSpec{}, err
		}
	}

	// Ablations and TEA structure-size overrides need a TEA section to land
	// on; silently ignoring them on a TEA-less machine would report the
	// un-ablated machine's numbers under an ablation's name.
	t := s.Companion.TEA
	if t == nil {
		if c.OnlyLoops || c.NoMasks || c.NoMem || c.DisableEarlyFlush {
			return spec.MachineSpec{}, fmt.Errorf(
				"tea: ablation switches require a TEA companion (machine %q has companion %q)",
				c.machineName(), s.Companion.Kind)
		}
		if c.BlockCacheEntries > 0 || c.FillBufferSize > 0 || c.H2PDecayPeriod > 0 || c.MaxLeadBlocks > 0 {
			return spec.MachineSpec{}, fmt.Errorf(
				"tea: TEA structure-size overrides require a TEA companion (machine %q has companion %q)",
				c.machineName(), s.Companion.Kind)
		}
	} else {
		t.OnlyLoops = t.OnlyLoops || c.OnlyLoops
		t.NoMasks = t.NoMasks || c.NoMasks
		t.NoMem = t.NoMem || c.NoMem
		t.DisableEarlyFlush = t.DisableEarlyFlush || c.DisableEarlyFlush
		if c.BlockCacheEntries > 0 {
			t.SetBlockCacheEntries(c.BlockCacheEntries)
		}
		if c.FillBufferSize > 0 {
			t.FillBufSize = c.FillBufferSize
		}
		if c.H2PDecayPeriod > 0 {
			t.H2PDecayPeriod = c.H2PDecayPeriod
		}
		if c.MaxLeadBlocks > 0 {
			t.MaxLeadBlocks = c.MaxLeadBlocks
		}
	}
	if c.FetchQueueSize > 0 {
		s.Frontend.FetchQueueSize = c.FetchQueueSize
	}

	for _, patch := range c.Set {
		if err := s.Set(patch); err != nil {
			return spec.MachineSpec{}, fmt.Errorf("tea: machine %q: %w", c.machineName(), err)
		}
	}

	if err := s.Validate(); err != nil {
		return spec.MachineSpec{}, fmt.Errorf("tea: machine %q: %w", c.machineName(), err)
	}
	return s, nil
}

// SpecFingerprint returns the resolved spec's canonical fingerprint — the
// machine-identity half of an Engine memoization key and the provenance hash
// stamped into Result.SpecHash.
func (c Config) SpecFingerprint() (uint64, error) {
	s, err := c.ResolvedSpec()
	if err != nil {
		return 0, err
	}
	return s.Fingerprint(), nil
}

// machineName names the configured machine point for error messages.
func (c Config) machineName() string {
	if c.Spec != nil {
		return "custom spec"
	}
	return c.Mode.String()
}

// effectiveMode returns the Result.Mode label: the configured Mode, or — for
// a custom spec — the mode whose scheme the spec's companion matches.
func effectiveMode(c Config, s *spec.MachineSpec) Mode {
	if c.Spec == nil {
		return c.Mode
	}
	switch s.Companion.Kind {
	case spec.CompanionTEA:
		if s.Companion.Dedicated {
			return ModeTEADedicated
		}
		return ModeTEA
	case spec.CompanionRunahead:
		return ModeBranchRunahead
	default:
		return ModeBaseline
	}
}

// pipelineConfig converts the spec's frontend/backend/memory/predictor and
// companion-engine shape into the pipeline configuration. Behavioral fields
// (CoSim, telemetry, budgets) stay with the caller.
func pipelineConfig(s *spec.MachineSpec) pipeline.Config {
	cfg := pipeline.Config{
		FrontWidth:       s.Frontend.Width,
		RetireWidth:      s.Frontend.RetireWidth,
		FetchQueueSize:   s.Frontend.FetchQueueSize,
		FetchToRenameLat: s.Frontend.FetchToRenameLat,
		MaxBlockInstrs:   s.Frontend.MaxBlockInstrs,
		FetchLinesPerCyc: s.Frontend.FetchLinesPerCyc,
		FrontQCap:        s.Frontend.FrontQCap,

		ROBSize:  s.Backend.ROBSize,
		RSSize:   s.Backend.RSSize,
		NumPRegs: s.Backend.NumPRegs,
		LQSize:   s.Backend.LQSize,
		SQSize:   s.Backend.SQSize,

		ALUPorts:  s.Backend.ALUPorts,
		LDPorts:   s.Backend.LDPorts,
		LDSTPorts: s.Backend.LDSTPorts,
		FPPorts:   s.Backend.FPPorts,

		ALULat: s.Backend.ALULat, MulLat: s.Backend.MulLat,
		DivLat: s.Backend.DivLat, FPLat: s.Backend.FPLat,
		FDivLat: s.Backend.FDivLat,

		MispredictExtraLat: s.Backend.MispredictExtraLat,

		BP: bpred.Config{
			TageTables:   s.Predictor.TageTables,
			TageHistLens: s.Predictor.TageHistLens,
			BTBEntries:   s.Predictor.BTBEntries,
			BTBWays:      s.Predictor.BTBWays,
			RASEntries:   s.Predictor.RASEntries,
		},
		Mem: mem.HierarchyConfig{
			L1ISize: s.Memory.L1ISize, L1IWays: s.Memory.L1IWays,
			L1DSize: s.Memory.L1DSize, L1DWays: s.Memory.L1DWays,
			LLCSize: s.Memory.LLCSize, LLCWays: s.Memory.LLCWays,
			L1Lat: s.Memory.L1Lat, LLCLat: s.Memory.LLCLat,
			L1MSHRs: s.Memory.L1MSHRs, LLCMSHRs: s.Memory.LLCMSHRs,

			Quick:          s.Memory.Quick(),
			QuickL1HitPct:  s.Memory.QuickL1HitPct,
			QuickLLCHitPct: s.Memory.QuickLLCHitPct,
			QuickMemLat:    s.Memory.QuickMemLat,
		},

		CompanionDedicated:  s.Companion.Dedicated,
		CompanionPorts:      s.Companion.Ports,
		CompanionNoPriority: s.Companion.NoPriority,
		CompanionPRegs:      192,
	}
	if t := s.Companion.TEA; t != nil {
		cfg.CompanionPRegs = t.PRPartition
	}
	return cfg
}
