#!/bin/sh
# Chaos smoke test (CI: robustness job; locally: make chaos).
#
# Runs a small Fig 8 matrix on a real multi-process worker fabric with the
# faultinject harness armed, and checks the fabric's core promise: whatever
# the chaos, the merged report is byte-identical to a clean single-process
# run.
#
#   1. Clean reference: plain in-process teaexp run.
#   2. Chaos run on 3 workers: worker 1 is SIGKILLed right after journaling
#      its first cell (crash-before-result), worker 2 tears a journal line
#      mid-write and dies (torn-journal). The coordinator must recover the
#      journaled cell without re-simulation, drop the torn record, requeue
#      the lost cell, and still emit the reference bytes.
#   3. Pool collapse: one worker that dies on every shard (crash-on-shard).
#      The coordinator must degrade to in-process execution and still emit
#      the reference bytes.
set -eux

EXP=fig8
W=bfs,mcf
N=200000

go build -o teaexp.bin ./cmd/teaexp
go build -o teaworker.bin ./cmd/teaworker

# 1. Clean single-process reference.
./teaexp.bin -exp "$EXP" -w "$W" -n "$N" -format csv > clean.csv 2> clean.err

# 2. Chaos run: two distinct worker faults, byte-identical output required.
TEASIM_FAULTS='crash-before-result@1:1,torn-journal@2:1' \
    ./teaexp.bin -exp "$EXP" -w "$W" -n "$N" -format csv \
    -fabric 3 -fabric-worker ./teaworker.bin > chaos.csv 2> chaos.err
cat chaos.err
diff clean.csv chaos.csv
# The fabric summary must show the faults actually fired and were absorbed.
grep -E '[1-9][0-9]* crashes' chaos.err
grep -E '[1-9][0-9]* (requeued|recovered)' chaos.err

# 3. Pool collapse: the only worker dies on every shard; the run must fall
#    back in-process and still match the reference.
TEASIM_FAULTS='crash-on-shard' \
    ./teaexp.bin -exp "$EXP" -w "$W" -n "$N" -format csv \
    -fabric 1 -fabric-worker ./teaworker.bin > collapse.csv 2> collapse.err
cat collapse.err
diff clean.csv collapse.csv
grep 'pool collapsed' collapse.err

rm -f teaexp.bin teaworker.bin clean.csv chaos.csv collapse.csv \
    clean.err chaos.err collapse.err
echo "chaos smoke: OK"
