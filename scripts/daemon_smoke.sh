#!/bin/sh
# Daemon smoke test (CI: daemon-smoke job; locally: make daemon-smoke).
#
# Boots teasrvd with a fresh store, POSTs a tiny Fig 8 matrix, and checks
# the service's core promises end to end:
#   1. the served CSV is byte-identical to the direct library run (teaexp
#      dispatches through the same tea.RunExperiment registry call),
#   2. a re-POST is served entirely from the content-addressed store
#      (zero new simulations, per the X-Tea-Simulated header),
#   3. SIGTERM drains cleanly (exit 0, store compacted),
#   4. SIGTERM under load: a request queued for a run slot gets an
#      immediate 503 instead of a hung connection, while the request
#      already running finishes with 200.
set -eux

ADDR=127.0.0.1:18080
BODY='{"experiment":"fig8","workloads":["bfs","mcf"],"max_instructions":200000,"format":"csv"}'

go build -o teasrvd.bin ./cmd/teasrvd
go build -o teaexp.bin ./cmd/teaexp

rm -rf smoke-store
./teasrvd.bin -listen "$ADDR" -store smoke-store 2> teasrvd.err &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" > /dev/null && break
    sleep 0.2
done
curl -sf "http://$ADDR/healthz" > /dev/null
curl -sf "http://$ADDR/v1/experiments" | grep -q '"fig8"'

# 1. Daemon report vs direct library run: byte-identical.
curl -sf -D run1.hdr -o served.csv --data-binary "$BODY" "http://$ADDR/v1/run"
./teaexp.bin -exp fig8 -w bfs,mcf -n 200000 -format csv > direct.csv 2> direct.err
diff served.csv direct.csv

# 2. Re-POST: same bytes, zero new simulations, every cell a store hit.
curl -sf -D run2.hdr -o served2.csv --data-binary "$BODY" "http://$ADDR/v1/run"
diff served.csv served2.csv
grep 'X-Tea-Simulated: 0' run2.hdr
grep 'X-Tea-Store-Hits: 6' run2.hdr

# 3. SIGTERM: clean drain, exit 0.
kill -TERM "$pid"
wait "$pid"
trap - EXIT
grep 'drained cleanly' teasrvd.err

# 4. SIGTERM under load: restart with a single run slot, occupy it with a
#    slow uncached request, queue a second one behind it, then drain. The
#    queued request must be answered 503 promptly; the running one 200.
./teasrvd.bin -listen "$ADDR" -store smoke-store -max-concurrent 1 2> teasrvd2.err &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT
for i in $(seq 1 100); do
    curl -sf "http://$ADDR/healthz" > /dev/null && break
    sleep 0.2
done
SLOW='{"experiment":"fig8","workloads":["xz"],"max_instructions":5000000,"format":"csv"}'
curl -s -o /dev/null -w '%{http_code}' --data-binary "$SLOW" "http://$ADDR/v1/run" > slow.code &
slowpid=$!
sleep 1 # the slow request takes the only run slot
curl -s -o /dev/null -w '%{http_code}' --data-binary "$BODY" "http://$ADDR/v1/run" > queued.code &
queuedpid=$!
sleep 0.5 # the second request is now queued for the slot
kill -TERM "$pid"
wait "$queuedpid"
grep -q '^503$' queued.code
wait "$slowpid"
grep -q '^200$' slow.code
wait "$pid"
trap - EXIT
grep 'drained cleanly' teasrvd2.err

rm -rf smoke-store teasrvd.bin teaexp.bin served.csv served2.csv direct.csv \
    run1.hdr run2.hdr teasrvd.err teasrvd2.err direct.err slow.code queued.code
echo "daemon smoke: OK"
