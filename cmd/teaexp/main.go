// Command teaexp regenerates the paper's tables and figures.
//
// Usage:
//
//	teaexp -exp fig5                # TEA speedup per benchmark
//	teaexp -exp fig8 -n 500000      # TEA vs Branch Runahead, 500k instrs each
//	teaexp -exp all                 # every experiment (slow)
//	teaexp -exp fig10 -workers 4    # bound the experiment worker pool
//	teaexp -exp fig5 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments: fig5 fig6 fig7 fig8 fig9 fig10 table3 prefetchonly tables all,
// plus sensitivity sweeps: sens-blockcache, sens-fillbuffer, sens-h2pdecay,
// sens-lead, sens-fetchqueue.
//
// Every (workload, config) cell runs as an independent job on a worker pool
// (default GOMAXPROCS; override with -workers or TEASIM_WORKERS), and all
// experiments of one invocation share a baseline memoization cache, so
// `-exp all` simulates each workload's baseline once.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"teasim/tea"
)

func main() { os.Exit(realMain()) }

// realMain runs the experiments and returns the process exit code; keeping
// it separate from main lets deferred profile writers flush on every path.
func realMain() int {
	var (
		exp     = flag.String("exp", "fig5", "experiment id (fig5..fig10, table3, prefetchonly, tables, all)")
		n       = flag.Uint64("n", 1_000_000, "max instructions per run")
		scale   = flag.Int("scale", 1, "workload input scale")
		wl      = flag.String("w", "", "comma-separated workload subset (default all)")
		workers = flag.Int("workers", 0, "experiment worker pool size (0 = TEASIM_WORKERS or GOMAXPROCS)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// One engine for the whole invocation: `-exp all` shares every
	// (workload, budget, scale) baseline across figures.
	opts := tea.ExpOptions{MaxInstructions: *n, Scale: *scale, Engine: tea.NewEngine(*workers)}
	if *wl != "" {
		opts.Workloads = strings.Split(*wl, ",")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"tables", "fig5", "fig6", "fig7", "fig8", "fig9", "fig9big", "fig10", "table3", "prefetchonly", "wide16"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := runExp(id, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Second))
	}
	return 0
}

func runExp(id string, opts tea.ExpOptions) error {
	switch id {
	case "tables":
		printConfigTables()
		return nil
	case "fig5":
		rows, err := tea.Fig5(opts)
		if err != nil {
			return err
		}
		tea.PrintSpeedups(os.Stdout, "Fig 5: TEA thread speedup over baseline (paper geomean +10.1%)", rows)
	case "fig6":
		rows, err := tea.Fig6(opts)
		if err != nil {
			return err
		}
		tea.PrintFig6(os.Stdout, rows)
	case "fig7":
		rows, err := tea.Fig7(opts)
		if err != nil {
			return err
		}
		tea.PrintFig7(os.Stdout, rows)
	case "fig8":
		rows, err := tea.Fig8(opts)
		if err != nil {
			return err
		}
		tea.PrintFig8(os.Stdout, rows)
	case "fig9":
		rows, err := tea.Fig9(opts)
		if err != nil {
			return err
		}
		tea.PrintSpeedups(os.Stdout, "Fig 9: TEA on a dedicated execution engine (paper geomean +12.3%)", rows)
	case "fig9big":
		rows, err := tea.Fig9Big(opts)
		if err != nil {
			return err
		}
		tea.PrintSpeedups(os.Stdout, "§V-D: TEA on a main-core-sized engine (paper geomean +12.8%)", rows)
	case "wide16":
		rows, err := tea.Wide16(opts)
		if err != nil {
			return err
		}
		tea.PrintSpeedups(os.Stdout, "§IV-H: 16-wide frontend, no precomputation (paper ~+2.8%)", rows)
	case "fig10":
		rows, err := tea.Fig10(opts)
		if err != nil {
			return err
		}
		tea.PrintFig10(os.Stdout, rows)
	case "table3":
		rows, err := tea.Table3(opts)
		if err != nil {
			return err
		}
		tea.PrintTable3(os.Stdout, rows)
	case "prefetchonly":
		rows, err := tea.PrefetchOnly(opts)
		if err != nil {
			return err
		}
		tea.PrintSpeedups(os.Stdout, "§V-B aside: early resolution disabled (prefetch effect only; paper +1.2%)", rows)
	case "sens-blockcache", "sens-fillbuffer", "sens-h2pdecay", "sens-lead", "sens-fetchqueue":
		p := tea.SensParam(strings.TrimPrefix(id, "sens-"))
		rows, err := tea.Sensitivity(p, nil, opts)
		if err != nil {
			return err
		}
		tea.PrintSensitivity(os.Stdout, p, rows)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func printConfigTables() {
	fmt.Print(`Table I (baseline core, as modelled):
  3.2GHz, 8-wide fetch/decode/rename/issue, 12-cycle frontend
  512-entry ROB, 352-entry RS, 16-wide retire
  12 execution ports (6 ALU, 2 LD, 2 LD/ST, 2 FP), 400 physical registers
  256-entry load queue, 192-entry store queue
  64KB-class TAGE-SC-L (12 tables, loop predictor, statistical corrector)
  history-based indirect predictor, RAS, 4k-entry BTB, 128-entry fetch queue
  L1I 32KB/8w 4cyc, L1D 48KB/12w 4cyc, LLC 1MB/16w 18cyc, 64B lines
  DDR4-2400R: 2 channels, 4 bank groups x 4 banks, tRP-tCL-tRCD 16-16-16

Table II (TEA thread structures, as modelled):
  H2P table: 256 entries, 8-way, 3-bit counters, decay every 50k instrs
  Fill Buffer: 512 uops; Backward Dataflow Walk: ~500 cycles
  Source List: register bit-vector + 16 memory addresses
  Block Cache: 512 entries (+256 empty-block tags), 32-bit masks,
    mask reset every 500k instrs, 8 uops/cycle fetch
  TEA frontend: 9-cycle latency, shadow RAT, shadow fetch queue
  Backend partition: 192 RS + 192 physical registers while active
  Store data cache: 16 half-lines (32B); late limit: 4
`)
}
