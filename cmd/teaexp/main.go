// Command teaexp regenerates the paper's tables and figures.
//
// Usage:
//
//	teaexp -list                    # print the experiment catalog
//	teaexp -exp fig5                # TEA speedup per benchmark
//	teaexp -exp fig8 -n 500000      # TEA vs Branch Runahead, 500k instrs each
//	teaexp -exp all                 # every experiment (slow)
//	teaexp -exp fig10 -workers 4    # bound the experiment worker pool
//	teaexp -exp fig8 -fabric 3      # shard cells across 3 teaworker processes
//	teaexp -exp fig5 -json          # machine-readable output (also: -format csv)
//	teaexp -exp fig5 -json -intervals         # per-interval time series per cell
//	teaexp -exp fig5 -trace-out /tmp/t -w bfs # JSONL event trace per cell
//	teaexp -exp fig5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	teaexp -config machine.json               # custom machine point vs baseline
//	teaexp -set companion.kind=tea -set companion.tea.fill_buf_size=1024
//
// Experiments come from the tea experiment registry (tea.Experiments):
// fig5 fig6 fig7 fig8 fig9 fig9big fig10 table3 prefetchonly wide16 custom,
// plus sensitivity sweeps (sens-blockcache, sens-fillbuffer, sens-h2pdecay,
// sens-lead, sens-fetchqueue) and the synthetic ids tables and all. The
// same registry backs the teasrvd daemon, so CLI and service output are
// byte-identical for the same request.
//
// -config loads a machine spec JSON file (see tea/spec; the committed preset
// goldens under tea/spec/testdata/specs are ready-made starting points) and
// repeatable -set flags patch individual fields. Either flag replaces -exp
// with a custom experiment: every workload runs on the configured machine
// and on the baseline, reported as a speedup table.
//
// Every (workload, config) cell runs as an independent job on a worker pool
// (default GOMAXPROCS; override with -workers or TEASIM_WORKERS), and all
// experiments of one invocation share a baseline memoization cache, so
// `-exp all` simulates each workload's baseline once.
//
// With -json or -format csv, stdout carries only the report data; timing
// lines move to stderr. -progress streams per-job start/finish lines to
// stderr in any format.
//
// Long runs (see DESIGN.md "Failure handling"):
//
//	teaexp -exp all -journal run.jsonl          # checkpoint every finished cell
//	teaexp -exp all -journal run.jsonl -resume  # re-simulate only missing cells
//	teaexp -exp fig5 -partial -retries 1 -repro-dir repro  # quarantine failures
//	teaexp -exp fig5 -paranoia                  # per-cycle invariant checking
//
// Ctrl-C (SIGINT) stops cleanly: in-flight cells finish, the journal is
// flushed, and the process exits 130; a -resume rerun picks up exactly the
// cells that were still missing.
//
// Exit codes: 0 success, 1 run failure, 2 usage error, 3 success with
// quarantined error rows (-partial emitted at least one ERROR row), 130
// interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"teasim/tea"
	"teasim/tea/fabric"
	"teasim/tea/spec"
)

func main() { os.Exit(realMain()) }

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// realMain runs the experiments and returns the process exit code; keeping
// it separate from main lets deferred profile writers flush on every path.
func realMain() int {
	var (
		exp      = flag.String("exp", "fig5", "experiment id from the tea registry (fig5..fig10, table3, prefetchonly, sens-*), or tables / all")
		n        = flag.Uint64("n", 1_000_000, "max instructions per run")
		scale    = flag.Int("scale", 1, "workload input scale")
		wl       = flag.String("w", "", "comma-separated workload subset (default all)")
		workers  = flag.Int("workers", 0, "experiment worker pool size (0 = TEASIM_WORKERS or GOMAXPROCS)")
		format   = flag.String("format", "text", "report format: text | json | csv")
		jsonFlag = flag.Bool("json", false, "shorthand for -format json")
		ivals    = flag.Bool("intervals", false, "sample a per-interval time series into every cell's result (JSON output)")
		ivPeriod = flag.Uint64("interval-period", 0, "interval sample period in retired instructions (0 = 10k)")
		traceOut = flag.String("trace-out", "", "write per-cell JSONL event traces to <base>-<workload>-<mode>.jsonl")
		progress = flag.Bool("progress", false, "stream per-job progress to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
		config   = flag.String("config", "", "machine spec JSON file: run it vs the baseline instead of -exp")

		journal  = flag.String("journal", "", "append every finished cell to this JSONL results journal")
		resume   = flag.Bool("resume", false, "pre-seed the result cache from -journal, re-simulating only missing cells")
		partial  = flag.Bool("partial", false, "quarantine failing cells as annotated error rows instead of aborting")
		paranoia = flag.Bool("paranoia", false, "run every cell with the per-cycle invariant checker (slow, never memoized)")
		jobTO    = flag.Duration("job-timeout", 0, "wall-time deadline per cell (0 = none)")
		hangTO   = flag.Duration("hang-timeout", 0, "kill a cell whose simulation makes no progress for this long (0 = none)")
		retries  = flag.Int("retries", 0, "re-attempts for a panicking cell before it fails for good")
		reproDir = flag.String("repro-dir", "", "write a repro bundle (spec + metadata) for every permanently failed cell")

		fabricN   = flag.Int("fabric", 0, "dispatch cells to this many teaworker processes (0 = in-process); crashed or hung workers are absorbed (see DESIGN.md §16)")
		fabricCmd = flag.String("fabric-worker", "", "worker command for -fabric (default: teaworker beside this binary, else from PATH)")

		quick = flag.Bool("quick", false, "statistical memory tier (shorthand for -set memory.model=quick; rows are fidelity-marked and must not be mixed into paper tables)")
		list  = flag.Bool("list", false, "print the experiment registry (name, title, description) and exit")

		sets stringList
	)
	flag.Var(&sets, "set", "spec patch section.field=value (repeatable; with -config or alone)")
	flag.Parse()

	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "teaexp: -resume requires -journal")
		return 2
	}

	if *list {
		// The catalog in registration order, one experiment per line; the
		// daemon serves the same registry, so this is the service catalog too.
		for _, e := range tea.Experiments() {
			fmt.Printf("%-18s %s\n%-18s   %s\n", e.Name, e.Title, "", e.Description)
		}
		return 0
	}

	outFmt := tea.FormatText
	if *jsonFlag {
		outFmt = tea.FormatJSON
	} else {
		f, err := tea.ParseFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		outFmt = f
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// SIGINT cancels the batch cooperatively: in-flight cells finish, the
	// journal stays consistent, and the process exits 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One engine for the whole invocation: `-exp all` shares every
	// (workload, budget, scale) baseline across figures.
	var engOpts []tea.EngineOption
	if *jobTO != 0 || *hangTO != 0 || *retries != 0 || *reproDir != "" {
		engOpts = append(engOpts, tea.WithPolicy(tea.JobPolicy{
			Timeout:      *jobTO,
			HangTimeout:  *hangTO,
			Retries:      *retries,
			RetryBackoff: 100 * time.Millisecond,
			ReproDir:     *reproDir,
		}))
	}
	var resumed []tea.JournalRecord
	if *journal != "" {
		if *resume {
			recs, dropped, err := tea.ReadJournal(*journal)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			resumed = recs
			fmt.Fprintf(os.Stderr, "[journal: read %d cells (%d corrupt records dropped)]\n", len(recs), dropped)
		}
		j, err := tea.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer j.Close()
		engOpts = append(engOpts, tea.WithJournal(j))
	}
	if *progress {
		engOpts = append(engOpts, tea.WithProgress(func(ev tea.JobEvent) {
			switch ev.Phase {
			case tea.JobStarted:
				fmt.Fprintf(os.Stderr, "[job %d] %s/%s started\n", ev.Index, ev.Job.Workload, ev.Job.Cfg.Mode)
			case tea.JobDone:
				status := "done"
				if ev.Err != nil {
					status = "failed: " + ev.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "[job %d] %s/%s %s in %v\n", ev.Index, ev.Job.Workload, ev.Job.Cfg.Mode,
					status, ev.Wall.Round(time.Millisecond))
			}
		}))
	}
	// -fabric scales the cell matrix across worker processes: the
	// coordinator plugs in below the engine's memoization/journal layer as
	// its RunFunc, so resume journals, policy, and -partial quarantine all
	// compose with remote execution unchanged.
	if *fabricN > 0 {
		fcfg := fabric.Config{
			Workers:          *fabricN,
			HeartbeatTimeout: *hangTO, // 0 selects the fabric default (30s)
			Log:              os.Stderr,
		}
		if *fabricCmd != "" {
			fcfg.WorkerCmd = strings.Fields(*fabricCmd)
		}
		coord, err := fabric.New(fcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			st := coord.Stats()
			coord.Close()
			fmt.Fprintf(os.Stderr, "[fabric: %d workers (%d live), %d cells in %d shards; %d crashes, %d hangs, %d requeued, %d recovered, %d quarantined, %d fallback]\n",
				st.Workers, st.Live, st.Dispatched, st.Shards, st.Crashes, st.Hangs, st.Requeues, st.Recovered, st.Quarantined, st.Fallbacks)
			if st.Collapsed {
				fmt.Fprintln(os.Stderr, "[fabric: worker pool collapsed; remaining cells ran in-process]")
			}
		}()
		engOpts = append(engOpts, tea.WithRunFunc(coord.RunFunc(nil)))
	}
	eng := tea.NewEngine(*workers, engOpts...)
	if len(resumed) > 0 {
		seeded := eng.SeedJournal(resumed)
		fmt.Fprintf(os.Stderr, "[journal: resumed %d cells]\n", seeded)
	}
	opts := tea.ExpOptions{
		MaxInstructions: *n,
		Scale:           *scale,
		Engine:          eng,
		Intervals:       *ivals,
		IntervalPeriod:  *ivPeriod,
		Ctx:             ctx,
		Partial:         *partial,
		Paranoia:        *paranoia,
		Quick:           *quick,
	}
	if *wl != "" {
		opts.Workloads = strings.Split(*wl, ",")
	}
	if *quick {
		fmt.Fprintln(os.Stderr, "[quick fidelity tier: statistical memory model — rows are not comparable to exact-tier results and must not enter paper tables]")
	}

	var traces *traceFiles
	if *traceOut != "" {
		traces = &traceFiles{base: *traceOut, seen: map[string]int{}}
		defer traces.closeAll()
		opts.TraceOut = traces.open
	}

	ids := []string{*exp}
	switch {
	case *config != "" || len(sets) > 0:
		// A custom machine point replaces -exp: it dispatches through the
		// registry like every other experiment.
		if *config != "" {
			s, err := spec.Load(*config)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			opts.Spec = &s
		}
		opts.Set = sets
		ids = []string{"custom"}
	case *exp == "all":
		ids = []string{"tables", "fig5", "fig6", "fig7", "fig8", "fig9", "fig9big", "fig10", "table3", "prefetchonly", "wide16"}
	}
	errRows := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := runExp(ctx, id, outFmt, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if errors.Is(err, context.Canceled) {
				if *journal != "" {
					fmt.Fprintln(os.Stderr, "[interrupted: journal flushed; rerun with -resume to continue]")
				}
				return 130
			}
			return 1
		}
		if rep != nil {
			errRows += rep.ErrorRows()
		}
		// In text mode the timing line is part of the report stream (and of
		// the CLI's stable output); in data formats it moves to stderr so
		// stdout stays parseable.
		timing := fmt.Sprintf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Second))
		if outFmt == tea.FormatText {
			fmt.Print(timing)
		} else {
			fmt.Fprint(os.Stderr, timing)
		}
	}
	if traces != nil {
		if err := traces.closeAll(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	ms := eng.MemoStats()
	fmt.Fprintf(os.Stderr, "[memo: %d simulated, %d seeded, %d hits]\n", ms.Entries-ms.Seeded, ms.Seeded, ms.Hits)
	// Under -partial, quarantined cells were deliberately tolerated but must
	// still be visible to scripts: succeed, distinctly.
	if *partial && errRows > 0 {
		fmt.Fprintf(os.Stderr, "[partial: %d quarantined error rows]\n", errRows)
		return 3
	}
	return 0
}

// traceFiles opens one JSONL trace file per experiment cell, deduplicating
// names when the same (workload, mode) appears in several cells (Fig. 10's
// ablations, `-exp all`).
type traceFiles struct {
	base  string
	seen  map[string]int
	files []*os.File
	err   error
}

// open returns the trace writer for one cell (nil after a failure, which is
// reported at closeAll).
func (t *traceFiles) open(workload string, mode tea.Mode) io.Writer {
	if t.err != nil {
		return nil
	}
	key := workload + "-" + mode.String()
	t.seen[key]++
	name := fmt.Sprintf("%s-%s.jsonl", t.base, key)
	if c := t.seen[key]; c > 1 {
		name = fmt.Sprintf("%s-%s-%d.jsonl", t.base, key, c)
	}
	f, err := os.Create(name)
	if err != nil {
		t.err = err
		return nil
	}
	t.files = append(t.files, f)
	return f
}

// closeAll closes every opened trace file and reports the first error
// (including a failed open). Safe to call twice.
func (t *traceFiles) closeAll() error {
	for _, f := range t.files {
		if err := f.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	t.files = nil
	return t.err
}

// runExp dispatches one experiment through the tea registry and renders its
// report to stdout. The returned report lets the caller count quarantined
// error rows for the -partial exit code ("tables" has none and returns nil).
func runExp(ctx context.Context, id string, f tea.Format, opts tea.ExpOptions) (*tea.Report, error) {
	if id == "tables" {
		if f != tea.FormatText {
			fmt.Fprintln(os.Stderr, "[tables are text-only; skipped]")
			return nil, nil
		}
		printConfigTables()
		return nil, nil
	}
	rep, err := tea.RunExperiment(ctx, id, opts)
	if err != nil {
		return nil, err
	}
	return rep, rep.Write(os.Stdout, f)
}

func printConfigTables() {
	fmt.Print(`Table I (baseline core, as modelled):
  3.2GHz, 8-wide fetch/decode/rename/issue, 12-cycle frontend
  512-entry ROB, 352-entry RS, 16-wide retire
  12 execution ports (6 ALU, 2 LD, 2 LD/ST, 2 FP), 400 physical registers
  256-entry load queue, 192-entry store queue
  64KB-class TAGE-SC-L (12 tables, loop predictor, statistical corrector)
  history-based indirect predictor, RAS, 4k-entry BTB, 128-entry fetch queue
  L1I 32KB/8w 4cyc, L1D 48KB/12w 4cyc, LLC 1MB/16w 18cyc, 64B lines
  DDR4-2400R: 2 channels, 4 bank groups x 4 banks, tRP-tCL-tRCD 16-16-16

Table II (TEA thread structures, as modelled):
  H2P table: 256 entries, 8-way, 3-bit counters, decay every 50k instrs
  Fill Buffer: 512 uops; Backward Dataflow Walk: ~500 cycles
  Source List: register bit-vector + 16 memory addresses
  Block Cache: 512 entries (+256 empty-block tags), 32-bit masks,
    mask reset every 500k instrs, 8 uops/cycle fetch
  TEA frontend: 9-cycle latency, shadow RAT, shadow fetch queue
  Backend partition: 192 RS + 192 physical registers while active
  Store data cache: 16 half-lines (32B); late limit: 4
`)
}
