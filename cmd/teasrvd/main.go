// Command teasrvd serves the tea experiment library as a long-running
// simulation service (see tea/serve and DESIGN.md §13).
//
// Usage:
//
//	teasrvd -listen :8080 -store /var/lib/teasim/results
//
// Endpoints:
//
//	GET  /healthz         liveness probe
//	GET  /statz           service counters + store stats (JSON)
//	GET  /v1/experiments  the experiment catalog (JSON)
//	POST /v1/run          run an experiment; returns the rendered report,
//	                      or an SSE progress stream with "stream": true
//
// A POST body names a registry experiment plus its scope:
//
//	{"experiment": "fig5", "workloads": ["bfs"], "max_instructions": 500000,
//	 "format": "csv"}
//	{"experiment": "custom", "preset": "tea",
//	 "patches": ["companion.tea.fill_buf_size=1024"]}
//
// Every memoizable cell is deduplicated against the content-addressed
// result store (-store): identical cells across requests — concurrent or
// not — cost one simulation, and a re-POST of a served request simulates
// nothing. Admission control (-max-concurrent, -queue, -client-quota)
// answers overload with 429 + Retry-After instead of queueing without
// bound.
//
// SIGTERM/SIGINT drain cleanly: the listener closes, in-flight requests
// finish (up to -drain-timeout), the store is compacted and closed, and
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"teasim/internal/telemetry"
	"teasim/tea"
	"teasim/tea/fabric"
	"teasim/tea/serve"
	"teasim/tea/store"
)

// corruptLogSink surfaces the store's corrupt-record telemetry in the daemon
// log: a durable store dropping records is an operator-visible event, not a
// silent counter.
type corruptLogSink struct{ lg *log.Logger }

func (s corruptLogSink) Event(e *telemetry.Event) {
	if e.Kind == telemetry.EvCorruptRecord {
		s.lg.Printf("store: dropped %d corrupt record(s) opening %s", e.Count, e.Job)
	}
}
func (s corruptLogSink) Interval(*telemetry.Interval) {}
func (s corruptLogSink) Close() error                 { return nil }

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		listen  = flag.String("listen", ":8080", "listen address")
		dir     = flag.String("store", "", "content-addressed result store directory (empty = no persistence)")
		ttl     = flag.Duration("store-ttl", 0, "drop stored results older than this (0 = keep forever)")
		shards  = flag.Int("store-shards", 0, "store shard file count (0 = default)")
		workers = flag.Int("workers", 0, "per-request engine worker pool size (0 = TEASIM_WORKERS or GOMAXPROCS)")
		maxConc = flag.Int("max-concurrent", 4, "requests running at once")
		queue   = flag.Int("queue", 8, "requests waiting for a run slot before 429")
		quota   = flag.Int("client-quota", 0, "in-flight requests per client before 429 (0 = unlimited)")
		defN    = flag.Uint64("n", 1_000_000, "default max instructions per cell")
		maxN    = flag.Uint64("max-n", 0, "reject requests budgeting more instructions per cell (0 = uncapped)")
		jobTO   = flag.Duration("job-timeout", 0, "wall-time deadline per cell (0 = none)")
		hangTO  = flag.Duration("hang-timeout", 0, "kill a cell whose simulation makes no progress for this long (0 = none)")
		retries = flag.Int("retries", 0, "re-attempts for a panicking cell before it fails for good")
		drainTO = flag.Duration("drain-timeout", time.Minute, "max wait for in-flight requests on shutdown")
		fabricN = flag.Int("fabric", 0, "scale out simulations to this many worker processes (0 = in-process)")
		fabricW = flag.String("fabric-worker", "", "worker command for -fabric (default: teaworker beside this binary)")
	)
	flag.Parse()
	lg := log.New(os.Stderr, "teasrvd: ", log.LstdFlags)

	var st *store.Store
	if *dir != "" {
		var err error
		st, err = store.Open(*dir, store.Options{Shards: *shards, TTL: *ttl, Telemetry: corruptLogSink{lg}})
		if err != nil {
			lg.Print(err)
			return 1
		}
		defer st.Close()
		lg.Printf("store %s: %d results", *dir, st.Len())
	}

	var runFn tea.RunFunc
	if *fabricN > 0 {
		fcfg := fabric.Config{Workers: *fabricN, HeartbeatTimeout: *hangTO, Log: os.Stderr}
		if *fabricW != "" {
			fcfg.WorkerCmd = strings.Fields(*fabricW)
		}
		coord, err := fabric.New(fcfg)
		if err != nil {
			lg.Print(err)
			return 1
		}
		defer func() {
			fs := coord.Stats()
			coord.Close()
			lg.Printf("fabric: %d workers (%d live), %d cells in %d shards; %d crashes, %d hangs, %d requeued, %d recovered, %d quarantined, %d fallback",
				fs.Workers, fs.Live, fs.Dispatched, fs.Shards, fs.Crashes, fs.Hangs, fs.Requeues, fs.Recovered, fs.Quarantined, fs.Fallbacks)
			if fs.Collapsed {
				lg.Print("fabric: worker pool collapsed; cells ran in-process")
			}
		}()
		runFn = coord.RunFunc(nil)
		lg.Printf("fabric: %d worker processes", *fabricN)
	}

	srv := serve.New(serve.Config{
		Store:               st,
		Workers:             *workers,
		MaxConcurrent:       *maxConc,
		QueueDepth:          *queue,
		ClientQuota:         *quota,
		DefaultInstructions: *defN,
		MaxInstructions:     *maxN,
		Policy: tea.JobPolicy{
			Timeout:      *jobTO,
			HangTimeout:  *hangTO,
			Retries:      *retries,
			RetryBackoff: 100 * time.Millisecond,
		},
		RunFunc: runFn,
		Log:     lg,
	})
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}

	// SIGTERM/SIGINT start the drain; a second signal aborts it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	lg.Printf("listening on %s", *listen)

	select {
	case err := <-errc:
		lg.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop()
	lg.Print("draining (in-flight requests finish; signal again to abort)")
	// Empty the admission queue first: queued requests get an immediate 503
	// instead of hanging until Shutdown's grace period expires under them.
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Printf("drain: %v", err)
		return 1
	}
	if st != nil {
		cs, err := st.Compact()
		if err != nil {
			lg.Printf("store compact: %v", err)
			return 1
		}
		lg.Printf("store compacted: %d kept, %d expired", cs.Kept, cs.Expired)
	}
	stats := srv.Stats()
	fmt.Fprintf(os.Stderr, "teasrvd: served %d requests (%d simulations, %d store hits, %d coalesced); drained cleanly\n",
		stats.Requests, stats.Simulations, stats.StoreHits, stats.Coalesced)
	return 0
}
