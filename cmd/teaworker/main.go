// Command teaworker is one member of a teasim fabric pool: it reads shard
// frames from stdin, simulates each cell, journals completed cells before
// reporting them, and streams heartbeats so the coordinator can tell a slow
// worker from a wedged one. It is spawned by the fabric coordinator
// (`teaexp -fabric N`, `teasrvd -fabric N`), not run by hand.
//
// The faultinject chaos harness is compiled in and armed from TEASIM_FAULTS
// (see internal/faultinject), so robustness tests can SIGKILL a real worker
// mid-shard or tear a real journal line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"teasim/internal/faultinject"
	"teasim/tea/fabric"
)

func main() {
	journal := flag.String("journal", "", "crash-safe journal path for completed cells")
	hb := flag.Duration("hb", 200*time.Millisecond, "heartbeat frame interval")
	flag.Parse()

	err := fabric.RunWorker(fabric.WorkerOptions{
		In:         os.Stdin,
		Out:        os.Stdout,
		Log:        os.Stderr,
		Journal:    *journal,
		HBInterval: *hb,
		Faults:     faultinject.FromEnv(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "teaworker:", err)
		os.Exit(1)
	}
}
