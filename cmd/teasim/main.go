// Command teasim runs one benchmark on the simulated core and prints its
// performance and precomputation statistics.
//
// Usage:
//
//	teasim -w bfs -mode tea -n 1000000
//	teasim -w mcf -mode baseline
//	teasim -w bfs -mode tea -speedup   # run the baseline too (in parallel)
//	teasim -w bfs -mode tea -paranoia  # per-cycle invariant checking (slow)
//	teasim -w bfs -mode tea -json -intervals            # machine-readable result
//	teasim -w bfs -mode tea -trace-out trace.jsonl -trace-start 60000 -trace-end 61000
//	teasim -w bfs -config machine.json                  # custom machine spec
//	teasim -w bfs -mode tea -set companion.tea.fill_buf_size=1024
//	teasim -list
//
// -config loads a full machine spec (see tea/spec and the preset goldens
// under tea/spec/testdata/specs); repeatable -set flags patch individual
// fields of the spec (or of the -mode preset when -config is absent).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"teasim/tea"
	"teasim/tea/spec"
)

// parseModeArg resolves -mode: the canonical report names via tea.ParseMode
// plus the historical CLI aliases.
func parseModeArg(s string) (tea.Mode, error) {
	switch strings.ToLower(s) {
	case "dedicated":
		return tea.ModeTEADedicated, nil
	case "br":
		return tea.ModeBranchRunahead, nil
	}
	return tea.ParseMode(strings.ToLower(s))
}

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// jsonOutput is the -json envelope: the run's result, plus the baseline and
// speedup when -speedup is set.
type jsonOutput struct {
	Result   tea.Result  `json:"result"`
	Baseline *tea.Result `json:"baseline,omitempty"`
	Speedup  float64     `json:"speedup,omitempty"` // cycles(baseline)/cycles(run)
}

func main() {
	var (
		workload = flag.String("w", "bfs", "workload name (see -list)")
		mode     = flag.String("mode", "tea", "baseline | tea | tea-dedicated | tea-bigengine | runahead | wide16")
		config   = flag.String("config", "", "machine spec JSON file (overrides -mode)")
		n        = flag.Uint64("n", 1_000_000, "max instructions to simulate (0 = to completion)")
		scale    = flag.Int("scale", 1, "workload input scale (0 = tiny)")
		cosim    = flag.Bool("cosim", false, "verify against the golden functional model")
		list     = flag.Bool("list", false, "list workloads and exit")
		onlyLoop = flag.Bool("onlyloops", false, "ablation: loop-confined chains")
		noMasks  = flag.Bool("nomasks", false, "ablation: no mask combining")
		noMem    = flag.Bool("nomem", false, "ablation: no memory dependencies")
		noFlush  = flag.Bool("noflush", false, "ablation: disable early flushes")
		paranoia = flag.Bool("paranoia", false, "run with the per-cycle invariant checker (slow)")
		speedup  = flag.Bool("speedup", false, "also run the baseline and report the speedup")
		workers  = flag.Int("workers", 0, "engine worker pool size (0 = TEASIM_WORKERS or GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "print the result as JSON (wall time goes to stderr)")
		ivals    = flag.Bool("intervals", false, "sample a per-interval time series into the result")
		ivPeriod = flag.Uint64("interval-period", 0, "interval sample period in retired instructions (0 = 10k)")
		traceOut = flag.String("trace-out", "", "write a JSONL event trace to this file")
		trStart  = flag.Uint64("trace-start", 0, "first traced cycle (with -trace-out)")
		trEnd    = flag.Uint64("trace-end", 0, "last traced cycle, 0 = unbounded (with -trace-out)")
		quick    = flag.Bool("quick", false, "statistical memory tier (shorthand for -set memory.model=quick; NOT comparable to exact runs)")
		sets     stringList
	)
	flag.Var(&sets, "set", "spec patch section.field=value (repeatable)")
	flag.Parse()
	if *quick {
		sets = append(sets, "memory.model=quick")
	}

	if *list {
		for _, name := range tea.Workloads() {
			flow := "complex"
			if tea.SimpleFlow(name) {
				flow = "simple"
			}
			fmt.Printf("%-12s %s control flow\n", name, flow)
		}
		return
	}

	m, err := parseModeArg(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := tea.Config{
		Mode:              m,
		Set:               sets,
		MaxInstructions:   *n,
		Scale:             *scale,
		CoSim:             *cosim,
		OnlyLoops:         *onlyLoop,
		NoMasks:           *noMasks,
		NoMem:             *noMem,
		DisableEarlyFlush: *noFlush,
		Paranoia:          *paranoia,
		Intervals:         *ivals,
		IntervalPeriod:    *ivPeriod,
		TraceStart:        *trStart,
		TraceEnd:          *trEnd,
	}
	if *config != "" {
		s, err := spec.Load(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Spec = &s
	}
	// Resolve up front so a bad -config or -set fails with its own message
	// instead of surfacing mid-run.
	if _, err := cfg.ResolvedSpec(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceTo = f
	}
	// Dispatch through the experiment engine: panic capture for free, and
	// with -speedup the baseline cell runs in parallel on multi-core hosts.
	eng := tea.NewEngine(*workers)
	jobs := []tea.Job{{Workload: *workload, Cfg: cfg}}
	if *speedup {
		jobs = append(jobs, tea.Job{Workload: *workload,
			Cfg: tea.Config{Mode: tea.ModeBaseline, MaxInstructions: *n, Scale: *scale}})
	}
	// SIGINT cancels the run cooperatively (exit 130) instead of tearing the
	// process down mid-cycle.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, err := eng.MapContext(ctx, jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if ctx.Err() != nil {
			os.Exit(130)
		}
		os.Exit(1)
	}
	el := time.Since(start)
	res := results[0]

	if *jsonOut {
		out := jsonOutput{Result: res}
		if len(results) > 1 {
			out.Baseline = &results[1]
			out.Speedup = float64(results[1].Cycles) / float64(res.Cycles)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sim wall time %v (%.2f Minstr/s)\n", el.Round(time.Millisecond),
			float64(res.Instructions)/el.Seconds()/1e6)
		return
	}

	fmt.Printf("workload      %s (%s)\n", res.Workload, res.Mode)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("IPC           %.3f\n", res.IPC)
	fmt.Printf("MPKI          %.2f (cond %d, target %d)\n", res.MPKI,
		res.CondMispredicts, res.IndMispredicts)
	if res.Mode != tea.ModeBaseline {
		fmt.Printf("accuracy      %.2f%%\n", 100*res.Accuracy)
		fmt.Printf("coverage      %.1f%% (covered %d, late %d, incorrect %d, uncovered %d)\n",
			100*res.Coverage, res.Covered, res.Late, res.Incorrect, res.Uncovered)
		fmt.Printf("saved/branch  %.1f cycles\n", res.AvgCyclesSaved)
		fmt.Printf("early flushes %d\n", res.EarlyFlushes)
		fmt.Printf("uop overhead  +%.1f%%\n", res.UopOverheadPct)
	}
	if len(results) > 1 {
		base := results[1]
		fmt.Printf("speedup       %+.1f%% (baseline %d cycles)\n",
			100*(float64(base.Cycles)/float64(res.Cycles)-1), base.Cycles)
	}
	fmt.Printf("sim wall time %v (%.2f Minstr/s)\n", el.Round(time.Millisecond),
		float64(res.Instructions)/el.Seconds()/1e6)
}
