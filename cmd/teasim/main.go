// Command teasim runs one benchmark on the simulated core and prints its
// performance and precomputation statistics.
//
// Usage:
//
//	teasim -w bfs -mode tea -n 1000000
//	teasim -w mcf -mode baseline
//	teasim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"teasim/tea"
)

func main() {
	var (
		workload = flag.String("w", "bfs", "workload name (see -list)")
		mode     = flag.String("mode", "tea", "baseline | tea | tea-dedicated | runahead")
		n        = flag.Uint64("n", 1_000_000, "max instructions to simulate (0 = to completion)")
		scale    = flag.Int("scale", 1, "workload input scale (0 = tiny)")
		cosim    = flag.Bool("cosim", false, "verify against the golden functional model")
		list     = flag.Bool("list", false, "list workloads and exit")
		onlyLoop = flag.Bool("onlyloops", false, "ablation: loop-confined chains")
		noMasks  = flag.Bool("nomasks", false, "ablation: no mask combining")
		noMem    = flag.Bool("nomem", false, "ablation: no memory dependencies")
		noFlush  = flag.Bool("noflush", false, "ablation: disable early flushes")
	)
	flag.Parse()

	if *list {
		for _, name := range tea.Workloads() {
			flow := "complex"
			if tea.SimpleFlow(name) {
				flow = "simple"
			}
			fmt.Printf("%-12s %s control flow\n", name, flow)
		}
		return
	}

	var m tea.Mode
	switch strings.ToLower(*mode) {
	case "baseline":
		m = tea.ModeBaseline
	case "tea":
		m = tea.ModeTEA
	case "tea-dedicated", "dedicated":
		m = tea.ModeTEADedicated
	case "runahead", "br":
		m = tea.ModeBranchRunahead
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	cfg := tea.Config{
		Mode:              m,
		MaxInstructions:   *n,
		Scale:             *scale,
		CoSim:             *cosim,
		OnlyLoops:         *onlyLoop,
		NoMasks:           *noMasks,
		NoMem:             *noMem,
		DisableEarlyFlush: *noFlush,
	}
	start := time.Now()
	res, err := tea.Run(*workload, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	el := time.Since(start)

	fmt.Printf("workload      %s (%s)\n", res.Workload, res.Mode)
	fmt.Printf("instructions  %d\n", res.Instructions)
	fmt.Printf("cycles        %d\n", res.Cycles)
	fmt.Printf("IPC           %.3f\n", res.IPC)
	fmt.Printf("MPKI          %.2f (cond %d, target %d)\n", res.MPKI,
		res.CondMispredicts, res.IndMispredicts)
	if m != tea.ModeBaseline {
		fmt.Printf("accuracy      %.2f%%\n", 100*res.Accuracy)
		fmt.Printf("coverage      %.1f%% (covered %d, late %d, incorrect %d, uncovered %d)\n",
			100*res.Coverage, res.Covered, res.Late, res.Incorrect, res.Uncovered)
		fmt.Printf("saved/branch  %.1f cycles\n", res.AvgCyclesSaved)
		fmt.Printf("early flushes %d\n", res.EarlyFlushes)
		fmt.Printf("uop overhead  +%.1f%%\n", res.UopOverheadPct)
	}
	fmt.Printf("sim wall time %v (%.2f Minstr/s)\n", el.Round(time.Millisecond),
		float64(res.Instructions)/el.Seconds()/1e6)
}
