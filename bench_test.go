// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (§V). Each benchmark regenerates its experiment on a
// reduced instruction budget and reports the headline quantity via
// b.ReportMetric, printing the full table through b.Log on the first run.
//
// Budgets are intentionally small so `go test -bench=.` finishes in
// minutes; use cmd/teaexp for full-budget reproductions, and set
// TEASIM_BENCH_N to override the per-run instruction budget.
package teasim_test

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"teasim/tea"
)

// benchBudget returns the per-run instruction budget for benchmarks.
func benchBudget(def uint64) uint64 {
	if v := os.Getenv("TEASIM_BENCH_N"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func opts(n uint64) tea.ExpOptions {
	return tea.ExpOptions{MaxInstructions: n, Scale: 1}
}

// allocMeter reports heap allocations per simulated kilo-instruction, the
// bench-trajectory metric that makes hot-path allocation regressions visible
// regardless of how many simulated instructions a benchmark covers. Start it
// before the loop, add each iteration's simulated instruction count, and
// report after the loop.
type allocMeter struct {
	startMallocs uint64
	instrs       uint64
}

func startAllocMeter(b *testing.B) *allocMeter {
	b.ReportAllocs()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &allocMeter{startMallocs: ms.Mallocs}
}

func (m *allocMeter) add(instrs uint64) { m.instrs += instrs }

// addRows accumulates the simulated instructions behind a result set.
func (m *allocMeter) addRows(rows []tea.Result) {
	for _, r := range rows {
		m.instrs += r.Instructions
	}
}

// addSpeedups accumulates both halves of a speedup experiment.
func (m *allocMeter) addSpeedups(rows []tea.SpeedupRow) {
	for _, r := range rows {
		m.instrs += r.Base.Instructions + r.With.Instructions
	}
}

// addSens accumulates the simulated instructions behind a sensitivity sweep.
func (m *allocMeter) addSens(rows []tea.SensRow) {
	for _, r := range rows {
		m.instrs += r.Instructions
	}
}

func (m *allocMeter) report(b *testing.B) {
	if m.instrs == 0 {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.Mallocs-m.startMallocs)/(float64(m.instrs)/1000), "allocs/kinstr")
}

// BenchmarkFig5TEASpeedup regenerates Fig. 5: per-benchmark speedup of the
// on-core TEA thread (paper geomean +10.1%). Reported metric: geomean
// speedup percentage.
func BenchmarkFig5TEASpeedup(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig5(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addSpeedups(rows)
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.Speedup)
		}
		g := tea.Geomean(sp)
		b.ReportMetric(100*(g-1), "geomean-speedup-%")
		if i == 0 {
			var sb strings.Builder
			tea.PrintSpeedups(&sb, "Fig 5 (reduced budget)", rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkFig6MPKI regenerates Fig. 6: baseline branch MPKI. Reported
// metric: mean MPKI across the suite.
func BenchmarkFig6MPKI(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig6(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addRows(rows)
		sum := 0.0
		for _, r := range rows {
			sum += r.MPKI
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-MPKI")
		if i == 0 {
			var sb strings.Builder
			tea.PrintFig6(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkFig7Coverage regenerates Fig. 7: the covered/late/incorrect/
// uncovered breakdown (paper: ~76% coverage). Reported metric: mean
// coverage percentage.
func BenchmarkFig7Coverage(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig7(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addRows(rows)
		sum := 0.0
		for _, r := range rows {
			sum += r.Coverage
		}
		b.ReportMetric(100*sum/float64(len(rows)), "mean-coverage-%")
		if i == 0 {
			var sb strings.Builder
			tea.PrintFig7(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkFig8VsRunahead regenerates Fig. 8: TEA vs Branch Runahead
// (paper: 10.1% vs 7.3%). Reported metrics: both geomeans, plus simulated
// instructions per second so the regression gate covers a multi-mode
// experiment (Fig8 runs baseline, TEA, and runahead configs back to back).
func BenchmarkFig8VsRunahead(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	var instrs uint64
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig8(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		var teaSp, brSp []float64
		for _, r := range rows {
			m.add(r.Instructions)
			instrs += r.Instructions
			teaSp = append(teaSp, r.TEA)
			brSp = append(brSp, r.Runahead)
		}
		b.ReportMetric(100*(tea.Geomean(teaSp)-1), "tea-geomean-%")
		b.ReportMetric(100*(tea.Geomean(brSp)-1), "runahead-geomean-%")
		if i == 0 {
			var sb strings.Builder
			tea.PrintFig8(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(instrs)/sec, "sim-instrs/s")
	}
	m.report(b)
}

// BenchmarkFig9DedicatedEngine regenerates Fig. 9: TEA on a dedicated
// execution engine (paper: +12.3%). Reported metric: geomean speedup.
func BenchmarkFig9DedicatedEngine(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig9(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addSpeedups(rows)
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.Speedup)
		}
		b.ReportMetric(100*(tea.Geomean(sp)-1), "geomean-speedup-%")
		if i == 0 {
			var sb strings.Builder
			tea.PrintSpeedups(&sb, "Fig 9 (reduced budget)", rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkFig10Ablations regenerates Fig. 10: accuracy / coverage /
// timeliness across the five thread-construction configurations. Reported
// metric: full-TEA mean accuracy percentage.
func BenchmarkFig10Ablations(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(80_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig10(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		var accSum float64
		var cnt int
		for _, r := range rows {
			m.add(r.Instructions)
			if r.Config == "tea" {
				accSum += r.Accuracy
				cnt++
			}
		}
		b.ReportMetric(100*accSum/float64(cnt), "tea-mean-accuracy-%")
		if i == 0 {
			var sb strings.Builder
			tea.PrintFig10(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkTable3Footprint regenerates Table III: the TEA thread's extra
// dynamic uop footprint (paper average +31.9%). Reported metric: mean
// overhead percentage.
func BenchmarkTable3Footprint(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Table3(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addRows(rows)
		sum := 0.0
		for _, r := range rows {
			sum += r.UopOverheadPct
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-overhead-%")
		if i == 0 {
			var sb strings.Builder
			tea.PrintTable3(&sb, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkPrefetchOnly regenerates the §V-B aside: early resolution off,
// measuring the TEA thread's residual prefetching effect (paper: +1.2%).
func BenchmarkPrefetchOnly(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.PrefetchOnly(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addSpeedups(rows)
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.Speedup)
		}
		b.ReportMetric(100*(tea.Geomean(sp)-1), "geomean-speedup-%")
	}
	m.report(b)
}

// BenchmarkSimulatorThroughput measures raw simulation speed on a
// representative memory-bound workload (mcf, TEA mode) — a harness health
// metric, not a paper figure. Reported rates: simulated cycles per second
// (the idle-skip win shows up here: skipped cycles are simulated without
// being ticked) and simulated instructions per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(200_000)
	var cycles, instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := tea.Run("mcf", tea.Config{Mode: tea.ModeTEA, MaxInstructions: n, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions), "instructions")
		cycles += res.Cycles
		instrs += res.Instructions
		m.add(res.Instructions)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cycles)/sec, "sim-cycles/s")
		b.ReportMetric(float64(instrs)/sec, "sim-instrs/s")
	}
	m.report(b)
}

// BenchmarkAblationBlockCache sweeps the Block Cache capacity (§IV-B: the
// paper reports deepsjeng/omnetpp gain ~5% from more entries, and added the
// empty-block tag store to stretch capacity). Uses the two capacity-bound
// workloads the paper names.
func BenchmarkAblationBlockCache(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(120_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Sensitivity(tea.SensBlockCache, []int{128, 512, 2048},
			tea.ExpOptions{MaxInstructions: n, Scale: 1,
				Workloads: []string{"deepsjeng", "omnetpp"}})
		if err != nil {
			b.Fatal(err)
		}
		m.addSens(rows)
		if i == 0 {
			var sb strings.Builder
			tea.PrintSensitivity(&sb, tea.SensBlockCache, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkAblationFillBuffer sweeps the Fill Buffer size (§IV-C: the paper
// reports ~1% sensitivity because bit-masks let chains grow across walks).
func BenchmarkAblationFillBuffer(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(120_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Sensitivity(tea.SensFillBuffer, []int{128, 512, 1024},
			tea.ExpOptions{MaxInstructions: n, Scale: 1,
				Workloads: []string{"mcf", "bfs", "tc"}})
		if err != nil {
			b.Fatal(err)
		}
		m.addSens(rows)
		if i == 0 {
			var sb strings.Builder
			tea.PrintSensitivity(&sb, tea.SensFillBuffer, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkAblationLead sweeps the shadow-fetch-queue depth (DESIGN.md §7:
// short leads maximize surviving precomputation under frequent flushes).
func BenchmarkAblationLead(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(120_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Sensitivity(tea.SensLead, []int{1, 2, 8},
			tea.ExpOptions{MaxInstructions: n, Scale: 1,
				Workloads: []string{"bfs", "xz"}})
		if err != nil {
			b.Fatal(err)
		}
		m.addSens(rows)
		if i == 0 {
			var sb strings.Builder
			tea.PrintSensitivity(&sb, tea.SensLead, rows)
			b.Log("\n" + sb.String())
		}
	}
	m.report(b)
}

// BenchmarkFig9BigEngine regenerates §V-D's second data point: the TEA
// thread on a main-core-sized execution engine (paper: +12.8%).
func BenchmarkFig9BigEngine(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Fig9Big(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addSpeedups(rows)
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.Speedup)
		}
		b.ReportMetric(100*(tea.Geomean(sp)-1), "geomean-speedup-%")
	}
	m.report(b)
}

// BenchmarkWide16 regenerates §IV-H's comparison: a 16-wide frontend
// without precomputation barely helps because the branch predictor still
// delivers one taken branch per cycle (paper: ~+2.8%).
func BenchmarkWide16(b *testing.B) {
	m := startAllocMeter(b)
	n := benchBudget(150_000)
	for i := 0; i < b.N; i++ {
		rows, err := tea.Wide16(opts(n))
		if err != nil {
			b.Fatal(err)
		}
		m.addSpeedups(rows)
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.Speedup)
		}
		b.ReportMetric(100*(tea.Geomean(sp)-1), "geomean-speedup-%")
	}
	m.report(b)
}
