// Package teasim is a from-scratch Go reproduction of "Timely, Efficient,
// and Accurate Branch Precomputation" (Deshmukh, Cai, Patt — MICRO 2024).
//
// The public API lives in teasim/tea; the simulator substrates (µISA,
// assembler, golden-model emulator, branch predictors, cache/DRAM models,
// the out-of-order core, the TEA thread itself, and the Branch Runahead
// baseline) live under internal/. See README.md for a tour, DESIGN.md for
// the system inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results.
package teasim
