GO ?= go

.PHONY: all build test tier1 tier2 lint race bench bench-smoke bench-compare bench-experiments paranoia fuzz-smoke daemon-smoke chaos profile-cpu profile-mem clean

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier 1: the must-stay-green gate (fast, run on every change).
tier1:
	$(GO) build ./... && $(GO) test ./...

# Lint: formatting (gofmt -l exits 0 even with findings, so fail on output)
# plus go vet. CI runs this as its own step.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# Tier 2: static analysis plus the full suite under the race detector.
# Includes TestEngineDeterminismAcrossWorkers, which drives real simulations
# through the 8-worker pool and compares rows against a sequential run.
tier2:
	$(GO) vet ./... && $(GO) test -race -timeout 30m ./...

race: tier2

# Microbenchmark of the pipeline hot path; watch the allocs/kinstr metric.
bench:
	$(GO) test ./internal/pipeline/ -bench CorePerCycle -benchtime 2s -run XXX

# Figure/table benchmarks at reduced budgets (see bench_test.go).
bench-experiments:
	$(GO) test -bench 'Fig10|Fig5' -benchtime=1x -run XXX

# Quick throughput/allocation health check, summarized as JSON (CI runs this;
# BENCH_PR3.json and BENCH_PR6.json in the repo root are committed reference
# snapshots).
BENCH_SMOKE_OUT ?= bench-smoke.json
bench-smoke:
	$(GO) test -bench 'SimulatorThroughput|Fig8VsRunahead' -benchtime=1x -run XXX . \
		| tee /dev/stderr \
		| $(GO) run ./internal/tools/benchjson -o $(BENCH_SMOKE_OUT)
	@echo "wrote $(BENCH_SMOKE_OUT)"

# Regression gate: run the smoke benchmarks and fail if sim-instrs/s dropped
# more than MAX_REGRESS percent against the committed baseline — the newest
# BENCH_PR<N>.json snapshot in the repo root (version-sorted, so PR10 beats
# PR9). CI runs this after bench-smoke; run it locally before sending
# perf-sensitive changes.
BENCH_BASELINE ?= $(shell ls BENCH_PR*.json | sort -V | tail -1)
MAX_REGRESS ?= 10
bench-compare: bench-smoke
	$(GO) run ./internal/tools/benchjson -compare -max-regress $(MAX_REGRESS) \
		$(BENCH_BASELINE) $(BENCH_SMOKE_OUT)

# Paranoia suite: the full workload × mode matrix with the per-cycle
# invariant checker armed (see internal/pipeline/paranoia.go), asserting
# results stay bit-identical to unchecked runs. Slow; CI runs the trimmed
# default (plain TestParanoiaSuite) inside tier1 and this full form in the
# robustness job.
paranoia:
	$(GO) test ./tea/ -run TestParanoiaSuite -paranoia-full -count=1 -timeout 30m

# Fuzz smoke: a short budget on each tea/spec fuzz target, enough to catch
# parser/patch regressions that panic on malformed input.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./tea/spec -run '^$$' -fuzz FuzzValidate -fuzztime $(FUZZTIME)
	$(GO) test ./tea/spec -run '^$$' -fuzz FuzzSetPatch -fuzztime $(FUZZTIME)

# Daemon smoke: boot teasrvd, POST a tiny Fig 8 matrix, and assert the
# served report is byte-identical to the direct library run, a re-POST is
# served entirely from the result store, and SIGTERM drains cleanly
# (see scripts/daemon_smoke.sh; CI runs this as its own job).
daemon-smoke:
	sh scripts/daemon_smoke.sh

# Chaos smoke: run a small matrix on a real multi-process worker fabric with
# faultinject armed (worker SIGKILL mid-shard, torn journal write, full pool
# collapse) and assert the merged report stays byte-identical to a clean
# single-process run (see scripts/chaos_smoke.sh; CI runs this in the
# robustness job).
chaos:
	sh scripts/chaos_smoke.sh

# Profiling workflow (see README "Profiling and parallelism"): run an
# experiment under the profiler, then inspect with `go tool pprof`.
profile-cpu:
	$(GO) run ./cmd/teaexp -exp fig5 -n 200000 -cpuprofile cpu.pprof
	@echo "inspect with: go tool pprof -top cpu.pprof"

profile-mem:
	$(GO) run ./cmd/teaexp -exp fig5 -n 200000 -memprofile mem.pprof
	@echo "inspect with: go tool pprof -top -sample_index=alloc_objects mem.pprof"

clean:
	rm -f cpu.pprof mem.pprof
