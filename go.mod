module teasim

go 1.22
