package asm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"teasim/internal/emu"
	"teasim/internal/isa"
)

// TestLabelResolutionProperty: for random programs with interleaved labels,
// branches, and jumps, every resolved immediate is the absolute address of
// its label, aligned and inside the code segment.
func TestLabelResolutionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%30
		b := NewBuilder()
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('A' + i%26))
			if i >= 26 {
				labels[i] += "x"
			}
		}
		// First pass: define every label at a random point while emitting
		// random branch/jump/ALU instructions referencing random labels.
		type ref struct {
			idx   int
			label string
		}
		var refs []ref
		for i := 0; i < n; i++ {
			b.Label(labels[i])
			switch rng.Intn(4) {
			case 0:
				refs = append(refs, ref{len(b.snapshotCode()), labels[rng.Intn(n)]})
				b.Beq(isa.R1, isa.R2, refs[len(refs)-1].label)
			case 1:
				refs = append(refs, ref{len(b.snapshotCode()), labels[rng.Intn(n)]})
				b.Jmp(refs[len(refs)-1].label)
			case 2:
				b.AddI(isa.R1, isa.R1, int64(rng.Intn(100)))
			case 3:
				refs = append(refs, ref{len(b.snapshotCode()), labels[rng.Intn(n)]})
				b.LiLabel(isa.R3, refs[len(refs)-1].label)
			}
		}
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		for _, r := range refs {
			want, ok := p.Labels[r.label]
			if !ok {
				return false
			}
			if uint64(p.Code[r.idx].Imm) != want {
				return false
			}
			if want < p.CodeBase || want >= p.CodeEnd() || (want-p.CodeBase)%isa.InstBytes != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// snapshotCode exposes the emitted-code slice for index bookkeeping in
// the property above (test-only helper; the builder's code slice is private).
func (b *Builder) snapshotCode() []isa.Inst { return b.code }

// TestBuildCopiesCode: mutating the returned program must not alias the
// builder, so a builder can keep emitting after Build.
func TestBuildCopiesCode(t *testing.T) {
	b := NewBuilder()
	b.Li(isa.R1, 1)
	b.Halt()
	p1 := b.MustBuild()
	p1.Code[0].Imm = 999
	p2 := b.MustBuild()
	if p2.Code[0].Imm == 999 {
		t.Fatal("Build aliases internal code slice")
	}
}

// TestDataCopiesInput: Data must snapshot the caller's bytes.
func TestDataCopiesInput(t *testing.T) {
	b := NewBuilder()
	buf := []byte{1, 2, 3}
	b.Data(0x2000, buf)
	buf[0] = 99
	b.Halt()
	p := b.MustBuild()
	if p.Data[0].Bytes[0] != 1 {
		t.Fatal("Data aliased caller's slice")
	}
}

// TestEntryResolution: entry is "main" when defined, else the code base.
func TestEntryResolution(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Label("main")
	b.Halt()
	p := b.MustBuild()
	if p.Entry != p.CodeBase+isa.InstBytes {
		t.Fatalf("entry %#x, want main at %#x", p.Entry, p.CodeBase+isa.InstBytes)
	}

	b2 := NewBuilder()
	b2.Halt()
	p2 := b2.MustBuild()
	if p2.Entry != p2.CodeBase {
		t.Fatalf("entry %#x, want code base %#x", p2.Entry, p2.CodeBase)
	}
}

// TestDataEncodings: DataU32 and DataF64 round-trip through the emulator's
// memory image with little-endian layout.
func TestDataEncodings(t *testing.T) {
	b := NewBuilder()
	b.DataU32(0x3000, []uint32{0xdeadbeef, 1})
	b.DataF64(0x4000, []float64{1.5, -2.25})
	b.Halt()
	m := emu.New(b.MustBuild())
	if got := m.Mem.Read(0x3000, 4); got != 0xdeadbeef {
		t.Fatalf("u32 = %#x", got)
	}
	if got := m.Mem.Read(0x3004, 4); got != 1 {
		t.Fatalf("u32[1] = %#x", got)
	}
	if got := math.Float64frombits(m.Mem.ReadU64(0x4000)); got != 1.5 {
		t.Fatalf("f64 = %v", got)
	}
	if got := math.Float64frombits(m.Mem.ReadU64(0x4008)); got != -2.25 {
		t.Fatalf("f64[1] = %v", got)
	}
}

// TestPCTracksEmission: PC advances by exactly InstBytes per emitted
// instruction regardless of helper used.
func TestPCTracksEmission(t *testing.T) {
	b := NewBuilder()
	start := b.PC()
	b.Add(isa.R1, isa.R2, isa.R3)
	b.Ld(isa.R1, isa.R2, 8)
	b.St(isa.R2, 8, isa.R1)
	b.Beqz(isa.R1, "x")
	b.Label("x")
	b.Halt()
	if b.PC() != start+5*isa.InstBytes {
		t.Fatalf("PC=%#x want %#x", b.PC(), start+5*isa.InstBytes)
	}
}

// TestRandomALUDifferential is a differential property test across the whole
// toolchain: a random straight-line ALU program is assembled, run on the
// functional emulator, and compared against an independent re-implementation
// of the operator semantics in this test.
func TestRandomALUDifferential(t *testing.T) {
	type aluOp struct {
		op isa.Op
		ev func(a, b int64) int64
	}
	ops := []aluOp{
		{isa.OpAdd, func(a, b int64) int64 { return a + b }},
		{isa.OpSub, func(a, b int64) int64 { return a - b }},
		{isa.OpAnd, func(a, b int64) int64 { return a & b }},
		{isa.OpOr, func(a, b int64) int64 { return a | b }},
		{isa.OpXor, func(a, b int64) int64 { return a ^ b }},
		{isa.OpMul, func(a, b int64) int64 { return a * b }},
		{isa.OpShl, func(a, b int64) int64 { return int64(uint64(a) << (uint64(b) & 63)) }},
		{isa.OpShr, func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }},
		{isa.OpSar, func(a, b int64) int64 { return a >> (uint64(b) & 63) }},
		{isa.OpSlt, func(a, b int64) int64 {
			if a < b {
				return 1
			}
			return 0
		}},
		{isa.OpSltu, func(a, b int64) int64 {
			if uint64(a) < uint64(b) {
				return 1
			}
			return 0
		}},
		{isa.OpMin, func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		}},
		{isa.OpMax, func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		}},
		{isa.OpDiv, func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{isa.OpRem, func(a, b int64) int64 {
			if b == 0 {
				return a
			}
			return a % b
		}},
	}
	const resAddr = 0x80000
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		b := NewBuilder()
		// Model register file r1..r8 (r0 stays zero in both worlds).
		var model [9]int64
		for r := 1; r <= 8; r++ {
			model[r] = rng.Int63() - rng.Int63()
			b.Li(isa.Reg(r), model[r])
		}
		for i := 0; i < 60; i++ {
			o := ops[rng.Intn(len(ops))]
			rd, r1, r2 := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
			b.Emit(isa.Inst{Op: o.op, Rd: isa.Reg(rd), Rs1: isa.Reg(r1), Rs2: isa.Reg(r2)})
			model[rd] = o.ev(model[r1], model[r2])
		}
		for r := 1; r <= 8; r++ {
			b.LiU(isa.R20, resAddr+uint64(r-1)*8)
			b.St(isa.R20, 0, isa.Reg(r))
		}
		b.Halt()
		m := emu.New(b.MustBuild())
		if _, err := m.Run(10_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !m.Halted {
			t.Fatalf("trial %d: did not halt", trial)
		}
		for r := 1; r <= 8; r++ {
			got := int64(m.Mem.ReadU64(resAddr + uint64(r-1)*8))
			if got != model[r] {
				t.Fatalf("trial %d: r%d = %d, model says %d", trial, r, got, model[r])
			}
		}
	}
}
