// Package asm provides a small builder DSL for writing µISA programs in Go.
// Labels are resolved to absolute code addresses at Build time; branch and
// jump immediates hold absolute targets.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"teasim/internal/isa"
)

// DefaultCodeBase is where code is placed unless overridden.
const DefaultCodeBase = 0x10000

// Builder assembles a program instruction by instruction.
type Builder struct {
	codeBase uint64
	code     []isa.Inst
	labels   map[string]int // label -> instruction index
	fixups   map[int]string // instruction index -> label (Imm patch)
	data     []isa.DataSeg
	errs     []error
}

// NewBuilder returns a Builder placing code at DefaultCodeBase.
func NewBuilder() *Builder {
	return &Builder{
		codeBase: DefaultCodeBase,
		labels:   make(map[string]int),
		fixups:   make(map[int]string),
	}
}

// SetCodeBase overrides the code base address. Must be called before any
// instruction is emitted.
func (b *Builder) SetCodeBase(addr uint64) {
	if len(b.code) > 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: SetCodeBase after code emitted"))
		return
	}
	b.codeBase = addr
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint64 {
	return b.codeBase + uint64(len(b.code))*isa.InstBytes
}

// Label defines name at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

func (b *Builder) emit(in isa.Inst) { b.code = append(b.code, in) }

// Emit appends a raw instruction. Escape hatch for tests and generators that
// need an opcode without a dedicated helper.
func (b *Builder) Emit(in isa.Inst) { b.emit(in) }

// BranchOp emits a conditional branch with an explicit opcode.
func (b *Builder) BranchOp(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.branch(op, rs1, rs2, label)
}

func (b *Builder) emitLabelled(in isa.Inst, label string) {
	b.fixups[len(b.code)] = label
	b.emit(in)
}

// --- ALU ---

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpOr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd = rs1 << (rs2 & 63).
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpShl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shr emits rd = rs1 >> (rs2 & 63) (logical).
func (b *Builder) Shr(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpShr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sar emits rd = rs1 >> (rs2 & 63) (arithmetic).
func (b *Builder) Sar(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSar, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2 (low 64 bits).
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2 (signed; division by zero yields 0).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd = rs1 % rs2 (signed; modulo by zero yields rs1).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpRem, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd = (rs1 <s rs2) ? 1 : 0.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSlt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sltu emits rd = (rs1 <u rs2) ? 1 : 0.
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSltu, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Min emits rd = min(rs1, rs2) (signed).
func (b *Builder) Min(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpMin, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Max emits rd = max(rs1, rs2) (signed).
func (b *Builder) Max(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpMax, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// --- ALU immediate ---

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpAddI, Rd: rd, Rs1: rs1, Imm: imm})
}

// AndI emits rd = rs1 & imm.
func (b *Builder) AndI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpAndI, Rd: rd, Rs1: rs1, Imm: imm})
}

// OrI emits rd = rs1 | imm.
func (b *Builder) OrI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpOrI, Rd: rd, Rs1: rs1, Imm: imm})
}

// XorI emits rd = rs1 ^ imm.
func (b *Builder) XorI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpXorI, Rd: rd, Rs1: rs1, Imm: imm})
}

// ShlI emits rd = rs1 << (imm & 63).
func (b *Builder) ShlI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpShlI, Rd: rd, Rs1: rs1, Imm: imm})
}

// ShrI emits rd = rs1 >> (imm & 63) (logical).
func (b *Builder) ShrI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpShrI, Rd: rd, Rs1: rs1, Imm: imm})
}

// MulI emits rd = rs1 * imm.
func (b *Builder) MulI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpMulI, Rd: rd, Rs1: rs1, Imm: imm})
}

// SltI emits rd = (rs1 <s imm) ? 1 : 0.
func (b *Builder) SltI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpSltI, Rd: rd, Rs1: rs1, Imm: imm})
}

// SltuI emits rd = (rs1 <u imm) ? 1 : 0.
func (b *Builder) SltuI(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpSltuI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li emits rd = imm.
func (b *Builder) Li(rd isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OpLi, Rd: rd, Imm: imm})
}

// LiU emits rd = imm for an unsigned 64-bit immediate (e.g. an address).
func (b *Builder) LiU(rd isa.Reg, imm uint64) { b.Li(rd, int64(imm)) }

// LiLabel emits rd = address-of(label), resolved at Build time.
func (b *Builder) LiLabel(rd isa.Reg, label string) {
	b.emitLabelled(isa.Inst{Op: isa.OpLi, Rd: rd}, label)
}

// Mov emits rd = rs (as OR with R0).
func (b *Builder) Mov(rd, rs isa.Reg) { b.Or(rd, rs, isa.R0) }

// --- FP ---

// FAdd emits rd = f(rs1) + f(rs2).
func (b *Builder) FAdd(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FSub emits rd = f(rs1) - f(rs2).
func (b *Builder) FSub(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FMul emits rd = f(rs1) * f(rs2).
func (b *Builder) FMul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FDiv emits rd = f(rs1) / f(rs2).
func (b *Builder) FDiv(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FLt emits rd = (f(rs1) < f(rs2)) ? 1 : 0.
func (b *Builder) FLt(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpFLt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// FCvt emits rd = float64(int64(rs1)) as float bits.
func (b *Builder) FCvt(rd, rs1 isa.Reg) { b.emit(isa.Inst{Op: isa.OpFCvt, Rd: rd, Rs1: rs1}) }

// FInt emits rd = int64(f(rs1)).
func (b *Builder) FInt(rd, rs1 isa.Reg) { b.emit(isa.Inst{Op: isa.OpFInt, Rd: rd, Rs1: rs1}) }

// --- memory ---

// Ld emits rd = mem64[rs1 + off].
func (b *Builder) Ld(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1, Imm: off})
}

// Ld4 emits rd = zext(mem32[rs1 + off]).
func (b *Builder) Ld4(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.OpLd4, Rd: rd, Rs1: rs1, Imm: off})
}

// Ld1 emits rd = zext(mem8[rs1 + off]).
func (b *Builder) Ld1(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.OpLd1, Rd: rd, Rs1: rs1, Imm: off})
}

// St emits mem64[rs1 + off] = rs2.
func (b *Builder) St(rs1 isa.Reg, off int64, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: off})
}

// St4 emits mem32[rs1 + off] = rs2.
func (b *Builder) St4(rs1 isa.Reg, off int64, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSt4, Rs1: rs1, Rs2: rs2, Imm: off})
}

// St1 emits mem8[rs1 + off] = rs2.
func (b *Builder) St1(rs1 isa.Reg, off int64, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpSt1, Rs1: rs1, Rs2: rs2, Imm: off})
}

// --- control flow ---

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.emitLabelled(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Beq branches to label if rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBeq, rs1, rs2, label) }

// Bne branches to label if rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBne, rs1, rs2, label) }

// Blt branches to label if rs1 <s rs2.
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBlt, rs1, rs2, label) }

// Bge branches to label if rs1 >=s rs2.
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBge, rs1, rs2, label) }

// Bltu branches to label if rs1 <u rs2.
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBltu, rs1, rs2, label) }

// Bgeu branches to label if rs1 >=u rs2.
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) { b.branch(isa.OpBgeu, rs1, rs2, label) }

// Beqz branches to label if rs1 == 0.
func (b *Builder) Beqz(rs1 isa.Reg, label string) { b.Beq(rs1, isa.R0, label) }

// Bnez branches to label if rs1 != 0.
func (b *Builder) Bnez(rs1 isa.Reg, label string) { b.Bne(rs1, isa.R0, label) }

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) { b.emitLabelled(isa.Inst{Op: isa.OpJmp}, label) }

// Call calls label, writing the return address to LR.
func (b *Builder) Call(label string) {
	b.emitLabelled(isa.Inst{Op: isa.OpCall, Rd: isa.LR}, label)
}

// Ret returns via LR.
func (b *Builder) Ret() { b.emit(isa.Inst{Op: isa.OpRet, Rs1: isa.LR}) }

// Jr jumps to rs1 + off (indirect; e.g. computed switch targets).
func (b *Builder) Jr(rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.OpJr, Rs1: rs1, Imm: off})
}

// CallR calls the address in rs1, writing the return address to LR.
func (b *Builder) CallR(rs1 isa.Reg) {
	b.emit(isa.Inst{Op: isa.OpCallR, Rd: isa.LR, Rs1: rs1})
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.OpNop}) }

// Halt emits the end-of-program instruction.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.OpHalt}) }

// --- data ---

// Data places raw bytes at addr in the initial memory image.
func (b *Builder) Data(addr uint64, bytes []byte) {
	b.data = append(b.data, isa.DataSeg{Addr: addr, Bytes: append([]byte(nil), bytes...)})
}

// DataU64 places a slice of 8-byte little-endian words at addr.
func (b *Builder) DataU64(addr uint64, words []uint64) {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	b.data = append(b.data, isa.DataSeg{Addr: addr, Bytes: buf})
}

// DataU32 places a slice of 4-byte little-endian words at addr.
func (b *Builder) DataU32(addr uint64, words []uint32) {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	b.data = append(b.data, isa.DataSeg{Addr: addr, Bytes: buf})
}

// DataF64 places a slice of float64 values at addr.
func (b *Builder) DataF64(addr uint64, vals []float64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	b.data = append(b.data, isa.DataSeg{Addr: addr, Bytes: buf})
}

// Build resolves labels and returns the finished program. The entry point is
// the label "main" if defined, else the first instruction.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	addrOf := func(idx int) uint64 { return b.codeBase + uint64(idx)*isa.InstBytes }
	for idx, label := range b.fixups {
		tgt, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q at instruction %d", label, idx)
		}
		b.code[idx].Imm = int64(addrOf(tgt))
	}
	labels := make(map[string]uint64, len(b.labels))
	for name, idx := range b.labels {
		labels[name] = addrOf(idx)
	}
	entry := b.codeBase
	if main, ok := labels["main"]; ok {
		entry = main
	}
	return &isa.Program{
		Code:     append([]isa.Inst(nil), b.code...),
		CodeBase: b.codeBase,
		Entry:    entry,
		Data:     b.data,
		Labels:   labels,
	}, nil
}

// MustBuild is Build that panics on error; for tests and static workloads.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
