package asm

import (
	"testing"

	"teasim/internal/isa"
)

func TestLabelsResolveToAbsoluteTargets(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Li(isa.R1, 0) // idx 0
	b.Label("loop") // idx 1
	b.AddI(isa.R1, isa.R1, 1)
	b.SltI(isa.R2, isa.R1, 10)
	b.Bnez(isa.R2, "loop") // idx 3
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantLoop := p.CodeBase + 1*isa.InstBytes
	if p.Code[3].Imm != int64(wantLoop) {
		t.Fatalf("branch target = %#x, want %#x", p.Code[3].Imm, wantLoop)
	}
	if p.Entry != p.CodeBase {
		t.Fatalf("entry = %#x, want main at %#x", p.Entry, p.CodeBase)
	}
	if p.Labels["loop"] != wantLoop {
		t.Fatalf("label map: %#x", p.Labels["loop"])
	}
}

func TestForwardReference(t *testing.T) {
	b := NewBuilder()
	b.Jmp("end") // forward
	b.Li(isa.R1, 1)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != int64(p.CodeBase+2*isa.InstBytes) {
		t.Fatalf("forward jmp target = %#x", p.Code[0].Imm)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestLiLabel(t *testing.T) {
	b := NewBuilder()
	b.LiLabel(isa.R5, "table")
	b.Halt()
	b.Label("table")
	b.Nop()
	p := b.MustBuild()
	if p.Code[0].Imm != int64(p.CodeBase+2*isa.InstBytes) {
		t.Fatalf("LiLabel imm = %#x", p.Code[0].Imm)
	}
}

func TestDataSegments(t *testing.T) {
	b := NewBuilder()
	b.Halt()
	b.DataU64(0x20000, []uint64{1, 2, 3})
	b.DataU32(0x30000, []uint32{7})
	b.DataF64(0x40000, []float64{1.5})
	p := b.MustBuild()
	if len(p.Data) != 3 {
		t.Fatalf("data segs = %d", len(p.Data))
	}
	if len(p.Data[0].Bytes) != 24 || p.Data[0].Bytes[8] != 2 {
		t.Fatalf("u64 seg wrong: %v", p.Data[0].Bytes)
	}
	if len(p.Data[1].Bytes) != 4 || p.Data[1].Bytes[0] != 7 {
		t.Fatalf("u32 seg wrong: %v", p.Data[1].Bytes)
	}
	if len(p.Data[2].Bytes) != 8 {
		t.Fatalf("f64 seg wrong: %v", p.Data[2].Bytes)
	}
}

func TestSetCodeBaseAfterEmitFails(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.SetCodeBase(0x9000)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for late SetCodeBase")
	}
}

func TestCallRetShape(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p := b.MustBuild()
	if p.Code[0].Op != isa.OpCall || p.Code[0].Rd != isa.LR {
		t.Fatalf("call shape: %+v", p.Code[0])
	}
	if p.Code[2].Op != isa.OpRet || p.Code[2].Rs1 != isa.LR {
		t.Fatalf("ret shape: %+v", p.Code[2])
	}
}
