package ldbp

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
)

// buildLoopKernel emits the strided-load + data-dependent-branch loop LDBP
// targets: the branch hangs directly off a unit-stride trigger load.
func buildLoopKernel(b *asm.Builder, n int, data []uint64, filler int) {
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)
	b.Li(isa.R10, 0)
	b.Li(isa.R11, 50)
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Blt(isa.R5, isa.R11, "skip")
	b.Add(isa.R10, isa.R10, isa.R5)
	for k := 0; k < filler; k++ {
		b.AddI(isa.R12, isa.R10, int64(k))
		b.Xor(isa.R13, isa.R12, isa.R10)
	}
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
}

func randData(n int, seed uint64) []uint64 {
	data := make([]uint64, n)
	rng := seed
	for i := range data {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		data[i] = rng % 100
	}
	return data
}

// testConfig extends the lookahead past the in-flight iteration depth of
// the unit kernel so queued tags land on instances not yet fetched.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Lookahead = 24
	cfg.QueueDepth = 32
	return cfg
}

func run(t *testing.T, attach bool, build func(b *asm.Builder)) (*pipeline.Core, *L) {
	t.Helper()
	bld := asm.NewBuilder()
	build(bld)
	p := bld.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	c := pipeline.New(cfg, p)
	var l *L
	if attach {
		l = New(testConfig(), c)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c, l
}

func TestLDBPCapturesLoadBranchChain(t *testing.T) {
	n := 20000
	data := randData(n, 42)
	_, l := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	if l.Stats.ChainsCaptured == 0 {
		t.Fatal("no load-branch chain captured")
	}
	if l.Stats.Precomputations == 0 {
		t.Fatal("stride never confirmed: no precomputations")
	}
	if l.Stats.Overrides == 0 {
		t.Fatal("no predictions overridden")
	}
	// Predictions come from committed memory on an immutable array: the
	// direction is exact whenever the tag matches.
	if acc := l.Stats.Accuracy(); acc < 0.95 {
		t.Fatalf("override accuracy = %.3f, want >= 0.95", acc)
	}
	t.Logf("chains=%d precomps=%d chainUops=%d overrides=%d acc=%.3f cov=%.3f",
		l.Stats.ChainsCaptured, l.Stats.Precomputations, l.Stats.ChainUops,
		l.Stats.Overrides, l.Stats.Accuracy(), l.Stats.Coverage())
}

func TestLDBPSpeedupOnStridedLoop(t *testing.T) {
	n := 20000
	data := randData(n, 7)
	build := func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) }
	base, _ := run(t, false, build)
	lC, l := run(t, true, build)
	speedup := float64(base.Stats.Cycles) / float64(lC.Stats.Cycles)
	t.Logf("baseline=%d ldbp=%d speedup=%.3f cov=%.3f mpkiBase=%.2f mpkiL=%.2f",
		base.Stats.Cycles, lC.Stats.Cycles, speedup, l.Stats.Coverage(),
		base.Stats.MPKI(), lC.Stats.MPKI())
	if speedup < 1.02 {
		t.Fatalf("LDBP speedup = %.3f on a strided independent loop, want > 1.02", speedup)
	}
	if lC.Stats.MPKI() >= base.Stats.MPKI() {
		t.Fatalf("MPKI did not improve: %.2f -> %.2f", base.Stats.MPKI(), lC.Stats.MPKI())
	}
}

func TestLDBPCapturesALUChain(t *testing.T) {
	// An ALU op between the load and the branch must be captured into the
	// chain and emulated at precompute time.
	n := 20000
	data := randData(n, 99)
	_, l := run(t, true, func(b *asm.Builder) {
		const base = 0x200000
		b.DataU64(base, data)
		b.Label("main")
		b.LiU(isa.R1, base)
		b.Li(isa.R2, int64(n))
		b.Li(isa.R3, 0)
		b.Li(isa.R11, 57)
		b.Label("loop")
		b.ShlI(isa.R4, isa.R3, 3)
		b.Add(isa.R4, isa.R1, isa.R4)
		b.Ld(isa.R5, isa.R4, 0)
		b.AddI(isa.R6, isa.R5, 7)
		b.Blt(isa.R6, isa.R11, "skip")
		b.AddI(isa.R10, isa.R10, 1)
		b.Label("skip")
		b.AddI(isa.R3, isa.R3, 1)
		b.Blt(isa.R3, isa.R2, "loop")
		b.Halt()
	})
	if l.Stats.ChainsCaptured == 0 {
		t.Fatal("no chain captured through the ALU op")
	}
	found := false
	for _, ch := range l.chains {
		if len(ch.uops) == 2 { // AddI + branch
			found = true
		}
	}
	if !found {
		t.Fatal("chain does not include the intermediate ALU uop")
	}
	if acc := l.Stats.Accuracy(); l.Stats.Precomputed > 100 && acc < 0.95 {
		t.Fatalf("override accuracy = %.3f through ALU chain", acc)
	}
}

func TestLDBPDisablesOnMutatedData(t *testing.T) {
	// The main loop stores to the array the chain reads: precomputed values
	// go stale and the wrong-streak disable must fire (or the engine must
	// stay out of the way).
	n := 20000
	data := randData(n, 777)
	_, l := run(t, true, func(b *asm.Builder) {
		const base = 0x200000
		b.DataU64(base, data)
		b.Label("main")
		b.LiU(isa.R1, base)
		b.Li(isa.R2, int64(n))
		b.Li(isa.R3, 0)
		b.Li(isa.R11, 50)
		b.Label("loop")
		b.ShlI(isa.R4, isa.R3, 3)
		b.Add(isa.R4, isa.R1, isa.R4)
		b.Ld(isa.R5, isa.R4, 0)
		b.Blt(isa.R5, isa.R11, "skip")
		// Mutate several elements ahead so stale reads precompute wrong.
		b.AddI(isa.R6, isa.R5, 13)
		b.St(isa.R4, 64, isa.R6)
		b.Label("skip")
		b.AddI(isa.R3, isa.R3, 1)
		b.Blt(isa.R3, isa.R2, "loop")
		b.Halt()
	})
	if l.Stats.Precomputed > 200 && l.Stats.Accuracy() < 0.75 &&
		l.Stats.ChainsDisabled == 0 {
		t.Fatalf("accuracy %.2f with %d overrides and no chain disabled",
			l.Stats.Accuracy(), l.Stats.Precomputed)
	}
}

func TestLDBPSpecLogRewindOnFlush(t *testing.T) {
	n := 20000
	data := randData(n, 321)
	_, l := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 4) })
	for pc, spec := range l.specIdx {
		ret := l.retireIdx[pc]
		if spec < ret {
			t.Fatalf("pc %#x: specIdx %d < retireIdx %d (rewind overshoot)", pc, spec, ret)
		}
		if spec-ret > 4096 {
			t.Fatalf("pc %#x: specIdx drifted %d ahead of retireIdx", pc, spec-ret)
		}
	}
}

func TestLDBPQueuePruning(t *testing.T) {
	n := 20000
	data := randData(n, 55)
	_, l := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 4) })
	for pc, q := range l.queues {
		floor := l.retireIdx[pc]
		for _, e := range q {
			if e.tag <= floor {
				t.Fatalf("pc %#x: stale queue entry tag %d <= retireIdx %d", pc, e.tag, floor)
			}
		}
	}
}
