// Package ldbp implements a load-driven branch prediction companion
// (Sridhar et al.): at retirement it walks the retired-instruction window
// backward from each H2P conditional branch looking for a short
// load→ALU→branch dependence chain with a single trigger load. Once the
// trigger load's address stream shows a stable stride, each retiring
// trigger load precomputes the branch outcome several iterations ahead by
// reading committed memory at addr + stride·d and emulating the chain, and
// the queued directions override TAGE at fetch time — the natural fit for
// our GAP kernels, whose data-dependent branches hang off strided loads.
//
// Like Branch Runahead, predictions are tagged with the dynamic instance
// number of the branch (specIdx/retireIdx, rewound on flushes) so an
// override lands on exactly the instance it was computed for.
package ldbp

import (
	"teasim/internal/companion"
	"teasim/internal/core"
	"teasim/internal/emu"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
	"teasim/tea/spec"
)

// Config sizes the predictor (see spec.LDBP for field semantics).
type Config struct {
	H2PSets        int
	H2PWays        int
	H2PDecayPeriod uint64

	WindowSize   int
	MaxChains    int
	MaxChainUops int

	QueueDepth int
	Lookahead  int
	StrideConf int
}

// DefaultConfig mirrors spec.DefaultLDBP.
func DefaultConfig() Config {
	return Config{
		H2PSets: 32, H2PWays: 8, H2PDecayPeriod: 50_000,
		WindowSize: 512, MaxChains: 64, MaxChainUops: 8,
		QueueDepth: 16, Lookahead: 8, StrideConf: 3,
	}
}

// Stats counts chain and prediction activity plus the retired-misprediction
// classification (the shared Fig. 7 buckets).
type Stats struct {
	ChainsCaptured  uint64
	ChainsDisabled  uint64
	Precomputations uint64 // chain emulations run
	ChainUops       uint64 // uops emulated across all precomputations
	Overrides       uint64 // fetch-time overrides offered

	Precomputed uint64 // retired branches carrying an override
	PreCorrect  uint64
	PreWrong    uint64

	CoveredMisp   uint64
	IncorrectMisp uint64 // override made a correct prediction wrong
	UncoveredMisp uint64
	CyclesSaved   uint64
}

// Accuracy returns the fraction of used overrides that were correct.
func (s *Stats) Accuracy() float64 {
	if s.Precomputed == 0 {
		return 1
	}
	return float64(s.PreCorrect) / float64(s.Precomputed)
}

// Coverage returns the fraction of would-be mispredictions fixed.
func (s *Stats) Coverage() float64 {
	total := s.CoveredMisp + s.IncorrectMisp + s.UncoveredMisp
	if total == 0 {
		return 0
	}
	return float64(s.CoveredMisp) / float64(total)
}

type chainUop struct {
	pc uint64
	in *isa.Inst
}

// chain is one captured load→branch dependence chain. uops holds the ALU
// ops between the trigger load and the branch in program order, with the
// branch last; every live-in besides the load's destination is seeded from
// the retired architectural registers at precompute time.
type chain struct {
	branchPC uint64
	loadPC   uint64
	loadIn   *isa.Inst
	uops     []chainUop

	// Trigger-load stride tracking.
	lastAddr   uint64
	haveAddr   bool
	stride     int64
	strideRuns int

	wrongStreak int
	disabled    bool
}

type qEntry struct {
	tag   uint64
	taken bool
}

type popRec struct {
	seq uint64
	pc  uint64
}

type winEntry struct {
	pc uint64
	in *isa.Inst
}

// L is the load-driven branch prediction companion.
type L struct {
	Cfg  Config
	core *pipeline.Core

	h2p    *core.H2PTable
	chains map[uint64]*chain   // by branch PC
	byLoad map[uint64][]*chain // trigger load PC → chains

	window []winEntry

	queues map[uint64][]qEntry

	specIdx   map[uint64]uint64
	retireIdx map[uint64]uint64
	specLog   []popRec

	archRegs [isa.NumRegs]uint64

	retired   uint64
	nextDecay uint64

	ivLast struct {
		covered, incorrect, uncovered uint64
		precomputed, preCorrect       uint64
	}

	Stats Stats
}

// New builds an LDBP engine and attaches it to the core.
func New(cfg Config, c *pipeline.Core) *L {
	h2pCfg := core.DefaultConfig()
	h2pCfg.H2PSets, h2pCfg.H2PWays = cfg.H2PSets, cfg.H2PWays
	l := &L{
		Cfg:       cfg,
		core:      c,
		h2p:       core.NewH2PTable(&h2pCfg),
		chains:    make(map[uint64]*chain),
		byLoad:    make(map[uint64][]*chain),
		queues:    make(map[uint64][]qEntry),
		specIdx:   make(map[uint64]uint64),
		retireIdx: make(map[uint64]uint64),
		nextDecay: cfg.H2PDecayPeriod,
	}
	c.Attach(l)
	return l
}

func init() {
	companion.Register(spec.CompanionLDBP,
		func(s *spec.MachineSpec, c *pipeline.Core, _ companion.Options) (companion.Instance, error) {
			return lInstance{New(ConfigFromSpec(s.Companion.LDBP), c)}, nil
		})
}

// ConfigFromSpec converts the spec's ldbp companion section.
func ConfigFromSpec(l *spec.LDBP) Config {
	return Config{
		H2PSets:        l.H2PSets,
		H2PWays:        l.H2PWays,
		H2PDecayPeriod: l.H2PDecayPeriod,
		WindowSize:     l.WindowSize,
		MaxChains:      l.MaxChains,
		MaxChainUops:   l.MaxChainUops,
		QueueDepth:     l.QueueDepth,
		Lookahead:      l.Lookahead,
		StrideConf:     l.StrideConf,
	}
}

// lInstance adapts LDBP to the companion registry.
type lInstance struct{ l *L }

func (i lInstance) Metrics() companion.Metrics {
	s := &i.l.Stats
	m := companion.Metrics{
		Accuracy:  s.Accuracy(),
		Coverage:  s.Coverage(),
		Covered:   s.CoveredMisp,
		Incorrect: s.IncorrectMisp,
		Uncovered: s.UncoveredMisp,
		ExtraUops: s.ChainUops,
	}
	if s.CoveredMisp > 0 {
		m.AvgCyclesSaved = float64(s.CyclesSaved) / float64(s.CoveredMisp)
	}
	return m
}

// capture walks the retired-instruction window backward from the H2P
// branch at pc, collecting the dependence chain down to a single trigger
// load. Chains with stores, non-emulable producers, more than one load, or
// more than MaxChainUops uops are rejected.
func (l *L) capture(pc uint64, in *isa.Inst) {
	if len(l.chains) >= l.Cfg.MaxChains {
		return
	}
	var live uint32
	addReg := func(r isa.Reg) {
		if r != isa.R0 {
			live |= 1 << uint(r)
		}
	}
	delReg := func(r isa.Reg) { live &^= 1 << uint(r) }
	hasReg := func(r isa.Reg) bool { return r != isa.R0 && live&(1<<uint(r)) != 0 }

	addReg(in.Rs1)
	addReg(in.Rs2)

	var rev []chainUop
	var loadPC uint64
	var loadIn *isa.Inst
	for i := len(l.window) - 1; i >= 0 && loadIn == nil; i-- {
		e := &l.window[i]
		if e.pc == pc {
			return // crossed into the previous iteration without a load
		}
		if !e.in.HasDest() || e.in.Rd == isa.R0 || !hasReg(e.in.Rd) {
			continue
		}
		if e.in.IsLoad() {
			loadPC, loadIn = e.pc, e.in
			delReg(e.in.Rd)
			break
		}
		if e.in.IsBranch() || e.in.IsStore() {
			return
		}
		if len(rev) >= l.Cfg.MaxChainUops {
			return
		}
		rev = append(rev, chainUop{pc: e.pc, in: e.in})
		delReg(e.in.Rd)
		addReg(e.in.Rs1)
		addReg(e.in.Rs2)
	}
	if loadIn == nil {
		return
	}

	ch := &chain{branchPC: pc, loadPC: loadPC, loadIn: loadIn}
	for i := len(rev) - 1; i >= 0; i-- {
		ch.uops = append(ch.uops, rev[i])
	}
	ch.uops = append(ch.uops, chainUop{pc: pc, in: in})
	l.chains[pc] = ch
	l.byLoad[loadPC] = append(l.byLoad[loadPC], ch)
	l.Stats.ChainsCaptured++
}

// onLoadRetire updates the stride trackers of every chain triggered by this
// load and, once the stride is confirmed, precomputes the chained branch
// Lookahead iterations ahead off committed memory.
func (l *L) onLoadRetire(pc uint64, addr uint64) {
	for _, ch := range l.byLoad[pc] {
		if ch.disabled {
			continue
		}
		if ch.haveAddr {
			d := int64(addr) - int64(ch.lastAddr)
			if d == ch.stride {
				if ch.strideRuns < l.Cfg.StrideConf {
					ch.strideRuns++
				}
			} else {
				ch.stride, ch.strideRuns = d, 1
			}
		}
		ch.lastAddr, ch.haveAddr = addr, true
		if ch.strideRuns >= l.Cfg.StrideConf && ch.stride != 0 {
			l.precompute(ch)
		}
	}
}

// precompute emulates the chain at addr + stride·d for d = 0..Lookahead (d=0
// covers the not-yet-retired branch of the current iteration), tagging each
// outcome with the future branch instance it predicts.
func (l *L) precompute(ch *chain) {
	base := l.retireIdx[ch.branchPC]
	q := l.queues[ch.branchPC][:0]
	for d := 0; d <= l.Cfg.Lookahead && len(q) < l.Cfg.QueueDepth; d++ {
		addr := uint64(int64(ch.lastAddr) + ch.stride*int64(d))
		val := l.core.Mem.Read(addr, ch.loadIn.MemBytes())
		regs := l.archRegs
		if ch.loadIn.Rd != isa.R0 {
			regs[ch.loadIn.Rd] = val
		}
		l.Stats.Precomputations++
		l.Stats.ChainUops += uint64(len(ch.uops)) + 1
		taken := false
		for i, cu := range ch.uops {
			in := cu.in
			if i == len(ch.uops)-1 {
				taken, _ = emu.BranchOutcome(in, regs[in.Rs1], regs[in.Rs2])
				break
			}
			if v, ok := emu.Eval(in, regs[in.Rs1], regs[in.Rs2], cu.pc); ok && in.Rd != isa.R0 {
				regs[in.Rd] = v
			}
		}
		// One branch instance per trigger-load instance: the d-th future
		// load predicts the d-th future branch instance.
		q = append(q, qEntry{tag: base + 1 + uint64(d), taken: taken})
	}
	l.queues[ch.branchPC] = q
}

// --- Companion interface ---

// OnBlock is unused.
func (l *L) OnBlock(*pipeline.FetchBlock) {}

// OnMainFetch is unused.
func (l *L) OnMainFetch(*pipeline.Uop) {}

// OverridePrediction counts this dynamic instance of the branch and, when a
// queued direction is available for exactly this instance, overrides TAGE.
func (l *L) OverridePrediction(pc uint64, seq uint64) (bool, bool) {
	if _, tracked := l.specIdx[pc]; !tracked {
		if !l.h2p.IsH2P(pc) {
			return false, false
		}
	}
	l.specIdx[pc]++
	l.specLog = append(l.specLog, popRec{seq: seq, pc: pc})
	idx := l.specIdx[pc]
	for _, e := range l.queues[pc] {
		if e.tag == idx {
			l.Stats.Overrides++
			return e.taken, true
		}
	}
	return false, false
}

// OnRetire tracks architectural state, trains the H2P filter, captures
// chains, fires precomputations off retiring trigger loads, and classifies
// override outcomes.
func (l *L) OnRetire(u *pipeline.Uop) {
	l.retired++
	if l.retired >= l.nextDecay {
		l.nextDecay += l.Cfg.H2PDecayPeriod
		l.h2p.Decay()
	}
	if u.HasDest {
		l.archRegs[u.In.Rd] = l.core.PRF.Val[u.Prd]
	}

	if len(l.specLog) > 0 {
		cut := 0
		for cut < len(l.specLog) && l.specLog[cut].seq <= u.Seq {
			cut++
		}
		l.specLog = l.specLog[cut:]
	}

	if u.In.IsLoad() {
		l.onLoadRetire(u.PC, u.Addr)
	}

	isBranch := u.In.IsBranch()
	if isBranch && u.Rec != nil {
		if _, tracked := l.specIdx[u.PC]; tracked && u.In.IsCondBranch() {
			if l.specIdx[u.PC] <= l.retireIdx[u.PC] {
				l.specIdx[u.PC]++
			}
			l.retireIdx[u.PC]++
			l.pruneQueue(u.PC)
		}
		l.accountBranch(u.Rec)
		if wouldMispredict(u.Rec) {
			l.h2p.RecordMispredict(u.PC)
		}
		if u.In.IsCondBranch() && l.h2p.IsH2P(u.PC) && l.chains[u.PC] == nil {
			l.capture(u.PC, u.In)
		}
	}

	l.window = append(l.window, winEntry{pc: u.PC, in: u.In})
	if len(l.window) > l.Cfg.WindowSize {
		l.window = l.window[1:]
	}
}

// pruneQueue drops entries for instances that have already retired.
func (l *L) pruneQueue(pc uint64) {
	q := l.queues[pc]
	if len(q) == 0 {
		return
	}
	floor := l.retireIdx[pc]
	kept := q[:0]
	for _, e := range q {
		if e.tag > floor {
			kept = append(kept, e)
		}
	}
	l.queues[pc] = kept
}

// wouldMispredict reports whether the underlying TAGE prediction (before
// any override) disagreed with the actual outcome.
func wouldMispredict(rec *pipeline.BranchRec) bool {
	if !rec.Pred.BTBHit || !rec.In.IsCondBranch() {
		return rec.WasMispred
	}
	return rec.Pred.Cond.Pred != rec.ActualTaken
}

// accountBranch classifies the override outcome against the would-be TAGE
// prediction, mirroring the TEA coverage categories, and disables chains
// that go wrong repeatedly.
func (l *L) accountBranch(rec *pipeline.BranchRec) {
	if !rec.In.IsCondBranch() {
		if rec.WasMispred {
			l.Stats.UncoveredMisp++
		}
		return
	}
	tageWrong := wouldMispredict(rec)
	if rec.Precomputed {
		l.Stats.Precomputed++
		if rec.PreTaken == rec.ActualTaken {
			l.Stats.PreCorrect++
			if ch := l.chains[rec.PC]; ch != nil {
				ch.wrongStreak = 0
			}
			if tageWrong {
				l.Stats.CoveredMisp++
				// A fetch-time override removes the full penalty (§II-C).
				l.Stats.CyclesSaved += 15
			}
		} else {
			l.Stats.PreWrong++
			if !tageWrong {
				l.Stats.IncorrectMisp++
			} else {
				l.Stats.UncoveredMisp++
			}
			if ch := l.chains[rec.PC]; ch != nil && !ch.disabled {
				ch.wrongStreak++
				if ch.wrongStreak >= 4 {
					ch.disabled = true
					l.Stats.ChainsDisabled++
					delete(l.queues, rec.PC)
				}
			}
		}
		return
	}
	if tageWrong {
		l.Stats.UncoveredMisp++
	}
}

// OnFlush rewinds the speculative instance counts for squashed instances.
// Queued directions survive: they were computed from retired state.
func (l *L) OnFlush(seq uint64, branchRenamed bool) {
	for len(l.specLog) > 0 {
		last := l.specLog[len(l.specLog)-1]
		if last.seq <= seq {
			break
		}
		l.specIdx[last.pc]--
		l.specLog = l.specLog[:len(l.specLog)-1]
	}
}

// Tick is a no-op: LDBP precomputes at retirement, not per cycle.
func (l *L) Tick() {}

// OnInterval annotates a telemetry sample with the engine's per-interval
// override coverage and accuracy.
func (l *L) OnInterval(iv *telemetry.Interval) {
	s := &l.Stats
	last := &l.ivLast
	dCov := s.CoveredMisp - last.covered
	dInc := s.IncorrectMisp - last.incorrect
	dUnc := s.UncoveredMisp - last.uncovered
	if total := dCov + dInc + dUnc; total > 0 {
		iv.Coverage = float64(dCov) / float64(total)
	}
	if dPre := s.Precomputed - last.precomputed; dPre > 0 {
		iv.Accuracy = float64(s.PreCorrect-last.preCorrect) / float64(dPre)
	} else {
		iv.Accuracy = 1
	}
	last.covered, last.incorrect, last.uncovered = s.CoveredMisp, s.IncorrectMisp, s.UncoveredMisp
	last.precomputed, last.preCorrect = s.Precomputed, s.PreCorrect
}

// Quiescent implements the idle-skip contract: Tick is a pure no-op, so the
// engine is always quiescent (retires end idle windows on their own).
func (l *L) Quiescent(uint64) (bool, uint64) { return true, 0 }

// OnSkip is a no-op: there is no per-cycle bookkeeping.
func (l *L) OnSkip(uint64) {}

// The backend hooks are unused: LDBP never inserts uops.
func (l *L) LoadValue(uint64, int) (uint64, bool)       { return 0, false }
func (l *L) OlderStorePending(uint64) bool              { return false }
func (l *L) StoreExec(uint64, uint64, int)              {}
func (l *L) BranchResolved(*pipeline.Uop, bool, uint64) {}
func (l *L) UopExecuted(*pipeline.Uop)                  {}
func (l *L) UopSquashed(*pipeline.Uop)                  {}
func (l *L) PrecomputationWrong(uint64)                 {}
