// Package companion is the factory registry behind the companion zoo: each
// precomputation scheme (internal/core's TEA thread, internal/runahead,
// internal/bullseye, internal/ldbp, internal/twowin) registers a Factory for
// its spec.CompanionKind in an init function, and the tea package builds
// whatever the resolved spec names through New — no layer above the registry
// special-cases a kind. Adding a companion is therefore one package: a
// pipeline.Companion implementation, a Factory, and a spec.RegisterKind call
// for its parameter section.
package companion

import (
	"fmt"
	"sort"

	"teasim/internal/pipeline"
	"teasim/tea/spec"
)

// Metrics is the uniform precomputation report every companion instance
// exposes after a run — the fields behind Result's coverage/accuracy/
// timeliness columns. Companions without a concept for a field leave it
// zero (e.g. only TEA classifies Late or issues EarlyFlushes).
type Metrics struct {
	// Accuracy is correct precomputations / precomputations used (1 when
	// the companion never produced one).
	Accuracy float64
	// Coverage is covered / all retired mispredictions the companion saw.
	Coverage float64

	// Retired-misprediction classification (the paper's Fig. 7 buckets).
	Covered   uint64
	Late      uint64
	Incorrect uint64
	Uncovered uint64

	// AvgCyclesSaved is the mean misprediction penalty removed per covered
	// misprediction (timeliness).
	AvgCyclesSaved float64
	// EarlyFlushes counts pipeline repairs issued ahead of main resolution.
	EarlyFlushes uint64
	// ExtraUops is the companion's dynamic uop footprint (fetched chain
	// uops, engine uops, ...), reported against main-thread fetched uops.
	ExtraUops uint64
}

// Options carries run-behavioral knobs that ride on the run config rather
// than the machine spec.
type Options struct {
	// Paranoia arms the companion's internal invariant checkers.
	Paranoia bool
}

// Instance is a constructed, attached companion. Construction (the Factory)
// must have called pipeline.Core.Attach; the run loop drives it through the
// pipeline.Companion hooks, and Metrics is read once after the run.
type Instance interface {
	Metrics() Metrics
}

// Factory builds a companion for a resolved machine spec and attaches it to
// the core. The spec has passed Validate, so the kind's section is non-nil.
type Factory func(s *spec.MachineSpec, c *pipeline.Core, o Options) (Instance, error)

var factories = map[spec.CompanionKind]Factory{}

// Register adds a companion factory for a kind. It panics on a duplicate
// kind: two packages claiming one kind is a wiring bug.
func Register(kind spec.CompanionKind, f Factory) {
	if kind == "" || f == nil {
		panic("companion: Register requires a kind and a factory")
	}
	if _, dup := factories[kind]; dup {
		panic(fmt.Sprintf("companion: kind %q registered twice", kind))
	}
	factories[kind] = f
}

// Kinds returns the kinds with registered factories, sorted.
func Kinds() []spec.CompanionKind {
	kinds := make([]spec.CompanionKind, 0, len(factories))
	for k := range factories {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// New builds and attaches the companion the spec names. Kind "none" returns
// (nil, nil): the bare core runs without a companion. An unregistered kind
// is an error — typically a missing blank import of the companion package.
func New(s *spec.MachineSpec, c *pipeline.Core, o Options) (Instance, error) {
	kind := s.Companion.Kind
	if kind == spec.CompanionNone {
		return nil, nil
	}
	f, ok := factories[kind]
	if !ok {
		return nil, fmt.Errorf("companion: no factory registered for kind %q (registered: %v; missing import of the companion package?)",
			kind, Kinds())
	}
	return f(s, c, o)
}
