package bpred

import (
	"testing"

	"teasim/internal/isa"
)

// drive runs the predictor protocol sequentially (predict → recover on
// mispredict → train) for a conditional branch outcome stream and returns
// the number of correct predictions. Each element of outcomes is one dynamic
// branch; pcs gives the static PC per element.
func drive(p *Predictor, pcs []uint64, outcomes []bool, targets []uint64) int {
	correct := 0
	for i, taken := range outcomes {
		pc := pcs[i]
		tgt := targets[i]
		pred := p.Predict(pc)
		predTaken := pred.BTBHit && pred.Taken
		predTarget := pred.Target
		ok := predTaken == taken && (!taken || predTarget == tgt)
		if ok {
			correct++
		} else {
			in := &isa.Inst{Op: isa.OpBne, Imm: int64(tgt)}
			p.Recover(&pred, in, taken, tgt)
		}
		in := &isa.Inst{Op: isa.OpBne, Imm: int64(tgt)}
		p.Train(&pred, in, taken, tgt)
	}
	return correct
}

func condStream(n int, pc, tgt uint64, f func(i int) bool) (pcs []uint64, outs []bool, tgts []uint64) {
	for i := 0; i < n; i++ {
		pcs = append(pcs, pc)
		outs = append(outs, f(i))
		tgts = append(tgts, tgt)
	}
	return
}

func accuracyTail(p *Predictor, pcs []uint64, outs []bool, tgts []uint64, warm int) float64 {
	_ = drive(p, pcs[:warm], outs[:warm], tgts[:warm])
	c := drive(p, pcs[warm:], outs[warm:], tgts[warm:])
	return float64(c) / float64(len(outs)-warm)
}

func TestTAGELearnsAlternating(t *testing.T) {
	p := New()
	pcs, outs, tgts := condStream(2000, 0x1000, 0x2000, func(i int) bool { return i%2 == 0 })
	if acc := accuracyTail(p, pcs, outs, tgts, 500); acc < 0.99 {
		t.Fatalf("alternating accuracy = %.3f", acc)
	}
}

func TestTAGELearnsPeriodicPattern(t *testing.T) {
	p := New()
	pcs, outs, tgts := condStream(4000, 0x1000, 0x2000, func(i int) bool { return i%7 == 3 })
	if acc := accuracyTail(p, pcs, outs, tgts, 1500); acc < 0.98 {
		t.Fatalf("period-7 accuracy = %.3f", acc)
	}
}

func TestTAGELearnsCorrelatedBranches(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: requires
	// global history, impossible for a bimodal predictor.
	p := New()
	var pcs []uint64
	var outs []bool
	var tgts []uint64
	rng := uint32(12345)
	prevA := false
	for i := 0; i < 4000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		a := rng&1 == 1
		pcs = append(pcs, 0x1000, 0x1100)
		outs = append(outs, a, prevA)
		tgts = append(tgts, 0x2000, 0x2100)
		prevA = a
	}
	// Accuracy on the correlated branch alone should be high; overall
	// accuracy is bounded by the random branch (~50%), so measure pairs.
	warm := 2000
	drive(p, pcs[:warm], outs[:warm], tgts[:warm])
	correctB, totalB := 0, 0
	for i := warm; i+1 < len(outs); i += 2 {
		drive(p, pcs[i:i+1], outs[i:i+1], tgts[i:i+1]) // branch A
		predB := p.Predict(pcs[i+1])
		takenB := predB.BTBHit && predB.Taken
		in := &isa.Inst{Op: isa.OpBne, Imm: int64(tgts[i+1])}
		if takenB == outs[i+1] {
			correctB++
		} else {
			p.Recover(&predB, in, outs[i+1], tgts[i+1])
		}
		p.Train(&predB, in, outs[i+1], tgts[i+1])
		totalB++
	}
	acc := float64(correctB) / float64(totalB)
	if acc < 0.95 {
		t.Fatalf("correlated branch accuracy = %.3f", acc)
	}
}

func TestLoopPredictorFixedTrip(t *testing.T) {
	p := New()
	// A loop branch taken 39 times then not-taken, repeatedly. TAGE alone
	// handles trips within history length; this trip (40) fits too, so
	// verify overall accuracy is near-perfect after warmup.
	var outs []bool
	for rep := 0; rep < 60; rep++ {
		for i := 0; i < 39; i++ {
			outs = append(outs, true)
		}
		outs = append(outs, false)
	}
	pcs := make([]uint64, len(outs))
	tgts := make([]uint64, len(outs))
	for i := range pcs {
		pcs[i], tgts[i] = 0x1000, 0x0ff0
	}
	warm := 40 * 20
	drive(p, pcs[:warm], outs[:warm], tgts[:warm])
	c := drive(p, pcs[warm:], outs[warm:], tgts[warm:])
	acc := float64(c) / float64(len(outs)-warm)
	if acc < 0.97 {
		t.Fatalf("fixed-trip loop accuracy = %.3f", acc)
	}
}

func TestLongLoopBeyondTAGEHistory(t *testing.T) {
	// Trip count 2000 exceeds every TAGE history length; only the loop
	// predictor can catch the exit.
	p := New()
	trip := 2000
	var outs []bool
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < trip-1; i++ {
			outs = append(outs, true)
		}
		outs = append(outs, false)
	}
	pcs := make([]uint64, len(outs))
	tgts := make([]uint64, len(outs))
	for i := range pcs {
		pcs[i], tgts[i] = 0x1000, 0x0ff0
	}
	warm := trip * 5
	drive(p, pcs[:warm], outs[:warm], tgts[:warm])
	// In the tail, every exit must be predicted (3 exits, trip*3 branches).
	c := drive(p, pcs[warm:], outs[warm:], tgts[warm:])
	miss := (len(outs) - warm) - c
	if miss > 1 {
		t.Fatalf("long-loop tail mispredictions = %d (want <=1)", miss)
	}
}

func TestBTBInsertLookupEvict(t *testing.T) {
	b := &BTB{}
	b.Insert(0x1000, 0x2000, KindCond, false)
	if tgt, kind, _, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 || kind != KindCond {
		t.Fatalf("lookup after insert: %x %v %v", tgt, kind, ok)
	}
	if _, _, _, ok := b.Lookup(0x1004); ok {
		t.Fatal("phantom hit")
	}
	// Fill one set beyond capacity; oldest entry must be evicted.
	setStride := uint64(btbSets * 4) // PCs mapping to the same set
	for i := uint64(1); i <= btbWays; i++ {
		b.Insert(0x1000+i*setStride, 0x3000, KindDirect, false)
	}
	if _, _, _, ok := b.Lookup(0x1000); ok {
		t.Fatal("LRU eviction did not happen")
	}
	// Most recently inserted must survive.
	if _, _, _, ok := b.Lookup(0x1000 + btbWays*setStride); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestRASPushPopRestore(t *testing.T) {
	r := &RAS{}
	r.Push(0x100)
	r.Push(0x200)
	ck := r.Save()
	r.Push(0x300)
	if got := r.Pop(); got != 0x300 {
		t.Fatalf("pop = %#x", got)
	}
	if got := r.Pop(); got != 0x200 {
		t.Fatalf("pop = %#x", got)
	}
	r.Restore(ck)
	if got := r.Peek(); got != 0x200 {
		t.Fatalf("after restore peek = %#x", got)
	}
	if got := r.Pop(); got != 0x200 {
		t.Fatalf("after restore pop = %#x", got)
	}
	if got := r.Pop(); got != 0x100 {
		t.Fatalf("after restore pop2 = %#x", got)
	}
}

func TestRASRepairsOverwrite(t *testing.T) {
	r := &RAS{}
	r.Push(0xAAA)
	ck := r.Save()
	// Wrong path pops the entry then pushes garbage over it.
	r.Pop()
	r.Push(0xBBB)
	r.Push(0xCCC)
	r.Restore(ck)
	if got := r.Pop(); got != 0xAAA {
		t.Fatalf("repaired top = %#x", got)
	}
}

func TestHistoryCheckpointEqualsReplay(t *testing.T) {
	// Two histories with identical folds; one takes a wrong-path detour and
	// restores. All folded state must match the straight-line twin.
	mk := func() *History {
		h := &History{}
		h.RegisterFold(8, 6)
		h.RegisterFold(60, 10)
		h.RegisterFold(782, 11)
		h.RegisterFold(1270, 12)
		return h
	}
	a, b := mk(), mk()
	rng := uint32(999)
	bit := func() bool {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng&1 == 1
	}
	for i := 0; i < 3000; i++ {
		x := bit()
		a.Push(x)
		b.Push(x)
		if i%97 == 0 {
			ck := a.Save()
			for j := 0; j < i%23+1; j++ {
				a.Push(bit())
				a.PushPath(uint64(j) * 8)
			}
			a.Restore(&ck)
		}
	}
	for i := 0; i < a.NumFolds(); i++ {
		if a.Fold(i) != b.Fold(i) {
			t.Fatalf("fold %d diverged after restore: %#x vs %#x", i, a.Fold(i), b.Fold(i))
		}
	}
	if a.Path() != b.Path() {
		t.Fatalf("path diverged: %#x vs %#x", a.Path(), b.Path())
	}
}

func TestITTAGELearnsHistoryDependentTarget(t *testing.T) {
	p := New()
	// An indirect branch whose target depends on the direction of the
	// preceding conditional branch.
	condPC, indPC := uint64(0x1000), uint64(0x1100)
	tgtA, tgtB := uint64(0x4000), uint64(0x5000)
	rng := uint32(7)
	correct, total := 0, 0
	for i := 0; i < 6000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		dir := rng&1 == 1
		// conditional branch
		cp := p.Predict(condPC)
		inC := &isa.Inst{Op: isa.OpBne, Imm: 0x2000}
		if !(cp.BTBHit && cp.Taken == dir) {
			p.Recover(&cp, inC, dir, 0x2000)
		}
		p.Train(&cp, inC, dir, 0x2000)
		// indirect branch: target selected by dir
		tgt := tgtA
		if dir {
			tgt = tgtB
		}
		ip := p.Predict(indPC)
		inI := &isa.Inst{Op: isa.OpJr, Rs1: isa.R5}
		hitOK := ip.BTBHit && ip.Target == tgt
		if i > 3000 {
			total++
			if hitOK {
				correct++
			}
		}
		if !hitOK {
			p.Recover(&ip, inI, true, tgt)
		}
		p.Train(&ip, inI, true, tgt)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.90 {
		t.Fatalf("indirect accuracy = %.3f", acc)
	}
}

func TestReturnPredictionViaRAS(t *testing.T) {
	p := New()
	callPC, retPC := uint64(0x1000), uint64(0x3000)
	fn := uint64(0x3000 - 0x100)
	_ = fn
	correct, total := 0, 0
	for i := 0; i < 200; i++ {
		// call site alternates between two PCs → two return addresses
		cPC := callPC + uint64(i%2)*0x40
		cp := p.Predict(cPC)
		inC := &isa.Inst{Op: isa.OpCall, Rd: isa.LR, Imm: 0x2000}
		if !(cp.BTBHit && cp.Taken && cp.Target == 0x2000) {
			p.Recover(&cp, inC, true, 0x2000)
		}
		p.Train(&cp, inC, true, 0x2000)

		retTarget := cPC + isa.InstBytes
		rp := p.Predict(retPC)
		inR := &isa.Inst{Op: isa.OpRet, Rs1: isa.LR}
		if i > 20 {
			total++
			if rp.BTBHit && rp.Target == retTarget {
				correct++
			}
		}
		if !(rp.BTBHit && rp.Target == retTarget) {
			p.Recover(&rp, inR, true, retTarget)
		}
		p.Train(&rp, inR, true, retTarget)
	}
	if correct != total {
		t.Fatalf("return accuracy %d/%d", correct, total)
	}
}

func TestPredictorRecoverConsistency(t *testing.T) {
	// After a Recover, the predictor's speculative state must equal the
	// state of a twin predictor that predicted the same branch correctly
	// (i.e., applied the actual outcome directly).
	a, b := New(), New()
	// Warm the BTB so the branch is visible to both.
	warm := func(p *Predictor) {
		pr := p.Predict(0x1000)
		in := &isa.Inst{Op: isa.OpBne, Imm: 0x2000}
		p.Recover(&pr, in, true, 0x2000)
		p.Train(&pr, in, true, 0x2000)
	}
	warm(a)
	warm(b)
	// Now both BTBs know the branch. Make A mispredict (force outcome to the
	// opposite of its prediction), B "predicts" whatever A's actual was.
	pa := a.Predict(0x1000)
	actual := !pa.Taken
	in := &isa.Inst{Op: isa.OpBne, Imm: 0x2000}
	a.Recover(&pa, in, actual, 0x2000)

	pb := b.Predict(0x1000)
	if pb.Taken != actual {
		b.Recover(&pb, in, actual, 0x2000)
	}
	// Histories must now agree.
	if a.Hist.Path() != b.Hist.Path() {
		t.Fatalf("path state diverged")
	}
	for i := 0; i < a.Hist.NumFolds(); i++ {
		if a.Hist.Fold(i) != b.Hist.Fold(i) {
			t.Fatalf("fold %d diverged", i)
		}
	}
}

func TestBTBMissImplicitNotTaken(t *testing.T) {
	p := New()
	pred := p.Predict(0x9000)
	if pred.BTBHit || pred.Taken {
		t.Fatalf("cold predict should be BTB miss: %+v", pred)
	}
	// A never-taken conditional must stay out of the BTB even after Train.
	in := &isa.Inst{Op: isa.OpBne, Imm: 0xA000}
	p.Train(&pred, in, false, 0xA000)
	if _, _, _, ok := p.BTB.Lookup(0x9000); ok {
		t.Fatal("never-taken branch entered BTB")
	}
}

func TestBTBStoresKindAndCallFlag(t *testing.T) {
	b := &BTB{}
	b.Insert(0x100, 0x500, KindIndirect, true)
	tgt, kind, isCall, ok := b.Lookup(0x100)
	if !ok || tgt != 0x500 || kind != KindIndirect || !isCall {
		t.Fatalf("lookup: %#x %v call=%v ok=%v", tgt, kind, isCall, ok)
	}
	// Updating the same PC replaces target and kind in place.
	b.Insert(0x100, 0x600, KindReturn, false)
	tgt, kind, isCall, _ = b.Lookup(0x100)
	if tgt != 0x600 || kind != KindReturn || isCall {
		t.Fatalf("update: %#x %v call=%v", tgt, kind, isCall)
	}
}

func TestKindOfMapping(t *testing.T) {
	cases := []struct {
		op   isa.Op
		kind BranchKind
	}{
		{isa.OpBeq, KindCond}, {isa.OpBlt, KindCond},
		{isa.OpJmp, KindDirect}, {isa.OpCall, KindDirect},
		{isa.OpJr, KindIndirect}, {isa.OpCallR, KindIndirect},
		{isa.OpRet, KindReturn},
	}
	for _, c := range cases {
		in := &isa.Inst{Op: c.op}
		if got := KindOf(in); got != c.kind {
			t.Errorf("KindOf(%v) = %v, want %v", c.op, got, c.kind)
		}
	}
}

func TestRASDeepNesting(t *testing.T) {
	r := &RAS{}
	// Push a call chain deeper than any sensible program nests, within
	// capacity, and unwind it exactly.
	for i := uint64(1); i <= 40; i++ {
		r.Push(i * 0x10)
	}
	for i := uint64(40); i >= 1; i-- {
		if got := r.Pop(); got != i*0x10 {
			t.Fatalf("pop %d = %#x", i, got)
		}
	}
}

func TestHistorySaveIsolation(t *testing.T) {
	// A saved checkpoint is a value: later pushes must not mutate it.
	h := &History{}
	h.RegisterFold(16, 8)
	for i := 0; i < 100; i++ {
		h.Push(i%3 == 0)
	}
	ck := h.Save()
	before := ck
	for i := 0; i < 50; i++ {
		h.Push(true)
	}
	if ck != before {
		t.Fatal("checkpoint mutated by later pushes")
	}
	h.Restore(&ck)
	if h.Fold(0) != before.comps[0] {
		t.Fatal("restore did not apply checkpoint")
	}
}

func TestPredictorBTBMissIsInvisibleToHistory(t *testing.T) {
	// Predicting a BTB-missing branch must leave all speculative state
	// untouched (the BP "does not see" it).
	p := New()
	pathBefore := p.Hist.Path()
	var foldsBefore []uint32
	for i := 0; i < p.Hist.NumFolds(); i++ {
		foldsBefore = append(foldsBefore, p.Hist.Fold(i))
	}
	pred := p.Predict(0xDEAD00)
	if pred.BTBHit {
		t.Fatal("cold PC hit the BTB")
	}
	if p.Hist.Path() != pathBefore {
		t.Fatal("path history changed on BTB miss")
	}
	for i := range foldsBefore {
		if p.Hist.Fold(i) != foldsBefore[i] {
			t.Fatal("folded history changed on BTB miss")
		}
	}
}
