package bpred

// BTB: 4k-entry, 4-way set-associative branch target buffer (Table I). The
// decoupled branch predictor only "sees" branches that hit in the BTB; a
// branch missing from the BTB is implicitly predicted not-taken and is
// inserted when it resolves. The entry records the branch kind so the
// predictor stack knows which component to consult.

import "teasim/internal/isa"

const (
	btbEntries = 4096
	btbWays    = 4
	btbSets    = btbEntries / btbWays
)

// BranchKind classifies a branch for the prediction stack.
type BranchKind uint8

// Branch kinds stored in the BTB.
const (
	KindCond     BranchKind = iota
	KindDirect              // jmp / call (always taken, static target)
	KindIndirect            // jr / callr
	KindReturn              // ret
)

// KindOf maps an instruction to its branch kind. Panics on non-branches.
func KindOf(in *isa.Inst) BranchKind {
	switch {
	case in.IsCondBranch():
		return KindCond
	case in.IsReturn():
		return KindReturn
	case in.IsIndirect():
		return KindIndirect
	default:
		return KindDirect
	}
}

type btbEntry struct {
	valid  bool
	tag    uint32
	target uint64 // last-seen target (static for direct branches)
	kind   BranchKind
	isCall bool
	lru    uint8
}

// BTB is the branch target buffer.
type BTB struct {
	sets [btbSets][btbWays]btbEntry
}

func btbIndex(pc uint64) (uint32, uint32) {
	set := uint32(pc>>2) & (btbSets - 1)
	tag := uint32(pc >> 12) // bits above the set index
	return set, tag
}

// Lookup returns the entry for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, kind BranchKind, isCall, ok bool) {
	set, tag := btbIndex(pc)
	for w := 0; w < btbWays; w++ {
		e := &b.sets[set][w]
		if e.valid && e.tag == tag {
			b.touch(set, uint32(w))
			return e.target, e.kind, e.isCall, true
		}
	}
	return 0, 0, false, false
}

// Insert records (or updates) a branch.
func (b *BTB) Insert(pc, target uint64, kind BranchKind, isCall bool) {
	set, tag := btbIndex(pc)
	victim, oldest := 0, uint8(0)
	for w := 0; w < btbWays; w++ {
		e := &b.sets[set][w]
		if e.valid && e.tag == tag {
			e.target, e.kind, e.isCall = target, kind, isCall
			b.touch(set, uint32(w))
			return
		}
		if !e.valid {
			victim = w
			oldest = 255
		} else if oldest != 255 && e.lru >= oldest {
			victim, oldest = w, e.lru
		}
	}
	b.sets[set][victim] = btbEntry{valid: true, tag: tag, target: target, kind: kind, isCall: isCall}
	b.touch(set, uint32(victim))
}

// touch implements 2-bit pseudo-LRU aging: accessed way goes to 0, others age.
func (b *BTB) touch(set, way uint32) {
	for w := uint32(0); w < btbWays; w++ {
		e := &b.sets[set][w]
		if w == way {
			e.lru = 0
		} else if e.lru < 3 {
			e.lru++
		}
	}
}
