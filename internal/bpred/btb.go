package bpred

// BTB: 4k-entry, 4-way set-associative branch target buffer (Table I). The
// decoupled branch predictor only "sees" branches that hit in the BTB; a
// branch missing from the BTB is implicitly predicted not-taken and is
// inserted when it resolves. The entry records the branch kind so the
// predictor stack knows which component to consult.

import "teasim/internal/isa"

const (
	btbEntries = 4096
	btbWays    = 4
	btbSets    = btbEntries / btbWays
)

// BranchKind classifies a branch for the prediction stack.
type BranchKind uint8

// Branch kinds stored in the BTB.
const (
	KindCond     BranchKind = iota
	KindDirect              // jmp / call (always taken, static target)
	KindIndirect            // jr / callr
	KindReturn              // ret
)

// KindOf maps an instruction to its branch kind. Panics on non-branches.
func KindOf(in *isa.Inst) BranchKind {
	switch {
	case in.IsCondBranch():
		return KindCond
	case in.IsReturn():
		return KindReturn
	case in.IsIndirect():
		return KindIndirect
	default:
		return KindDirect
	}
}

type btbEntry struct {
	valid  bool
	tag    uint32
	target uint64 // last-seen target (static for direct branches)
	kind   BranchKind
	isCall bool
	lru    uint8
}

// BTB is the branch target buffer. The zero value lazily adopts the Table I
// geometry on first use; newBTB builds a custom geometry.
type BTB struct {
	entries  []btbEntry // sets × ways, flat
	ways     int
	setMask  uint32
	tagShift uint // bits above the set index
}

// newBTB builds a BTB with the given geometry (the set count must be a
// power of two; Config.normalize enforces this).
func newBTB(entries, ways int) *BTB {
	sets := entries / ways
	shift := uint(2)
	for s := sets; s > 1; s >>= 1 {
		shift++
	}
	return &BTB{
		entries:  make([]btbEntry, sets*ways),
		ways:     ways,
		setMask:  uint32(sets - 1),
		tagShift: shift,
	}
}

// ensure backfills the default geometry for zero-value BTBs.
func (b *BTB) ensure() {
	if b.entries == nil {
		*b = *newBTB(btbEntries, btbWays)
	}
}

// set returns the ways of pc's set and its tag.
func (b *BTB) set(pc uint64) ([]btbEntry, uint32) {
	idx := int(uint32(pc>>2) & b.setMask)
	return b.entries[idx*b.ways : (idx+1)*b.ways], uint32(pc >> b.tagShift)
}

// Lookup returns the entry for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, kind BranchKind, isCall, ok bool) {
	b.ensure()
	ws, tag := b.set(pc)
	for w := range ws {
		e := &ws[w]
		if e.valid && e.tag == tag {
			b.touch(ws, w)
			return e.target, e.kind, e.isCall, true
		}
	}
	return 0, 0, false, false
}

// Insert records (or updates) a branch.
func (b *BTB) Insert(pc, target uint64, kind BranchKind, isCall bool) {
	b.ensure()
	ws, tag := b.set(pc)
	victim, oldest := 0, uint8(0)
	for w := range ws {
		e := &ws[w]
		if e.valid && e.tag == tag {
			e.target, e.kind, e.isCall = target, kind, isCall
			b.touch(ws, w)
			return
		}
		if !e.valid {
			victim = w
			oldest = 255
		} else if oldest != 255 && e.lru >= oldest {
			victim, oldest = w, e.lru
		}
	}
	ws[victim] = btbEntry{valid: true, tag: tag, target: target, kind: kind, isCall: isCall}
	b.touch(ws, victim)
}

// touch implements 2-bit pseudo-LRU aging: accessed way goes to 0, others age.
func (b *BTB) touch(ws []btbEntry, way int) {
	for w := range ws {
		e := &ws[w]
		if w == way {
			e.lru = 0
		} else if e.lru < 3 {
			e.lru++
		}
	}
}
