// Package bpred implements the decoupled branch prediction stack used by the
// baseline core (Table I of the paper): a TAGE-SC-L-class conditional
// predictor (TAGE + loop predictor + statistical corrector), an ITTAGE-style
// history-based indirect predictor, a 4k-entry BTB, and a return address
// stack — all with per-branch checkpointing so any flush (normal, early TEA,
// or memory-ordering) restores speculative predictor state exactly.
package bpred

// historyBits is the size of the circular global-history buffer. It must
// exceed the longest folded history length plus the maximum number of
// in-flight speculative branches, so that restoring a checkpoint never
// resurrects an overwritten bit. The longest TAGE history is ~1270 bits and
// the pipeline holds well under 1k speculative branches.
const historyBits = 4096

// folded is an incrementally maintained folded (compressed) history
// register, as used by TAGE (Seznec). A history of origLen bits is folded
// by XOR into compLen bits.
type folded struct {
	comp     uint32
	compLen  uint32
	origLen  uint32
	outPoint uint32 // origLen % compLen
	mask     uint32 // 1<<compLen - 1
}

func newFolded(origLen, compLen uint32) folded {
	return folded{compLen: compLen, origLen: origLen,
		outPoint: origLen % compLen, mask: 1<<compLen - 1}
}

// update shifts in newBit and removes oldBit (the bit that just moved past
// origLen in the global history).
func (f *folded) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= f.mask
}

// History is the speculative global branch history: a circular bit buffer
// with registered folded views, plus a path-history register. All speculative
// predictor state that must be rewound on a flush lives here (the RAS and
// loop predictor keep their own small checkpoints).
type History struct {
	bits [historyBits / 64]uint64
	ptr  uint32 // index where the NEXT bit will be written
	path uint32 // path history (low PC bits of taken branches)

	folds []folded
}

// RegisterFold adds a folded view of the most recent origLen history bits
// compressed to compLen bits and returns its handle.
func (h *History) RegisterFold(origLen, compLen uint32) int {
	if len(h.folds) >= maxFolds {
		panic("bpred: too many folded histories; raise maxFolds")
	}
	h.folds = append(h.folds, newFolded(origLen, compLen))
	return len(h.folds) - 1
}

// Fold returns the current folded value of the registered view.
func (h *History) Fold(i int) uint32 { return h.folds[i].comp }

// Path returns the path-history register.
func (h *History) Path() uint32 { return h.path }

// bitAt returns history bit at distance i (0 = most recently pushed).
func (h *History) bitAt(i uint32) uint32 {
	pos := (h.ptr - 1 - i) & (historyBits - 1)
	return uint32(h.bits[pos/64]>>(pos%64)) & 1
}

func (h *History) setBit(pos, b uint32) {
	word, off := pos/64, pos%64
	h.bits[word] = (h.bits[word] &^ (1 << off)) | (uint64(b) << off)
}

// Push records one speculative history bit and updates all folded views.
func (h *History) Push(bit bool) {
	var nb uint32
	if bit {
		nb = 1
	}
	h.setBit(h.ptr&(historyBits-1), nb)
	h.ptr = (h.ptr + 1) & (historyBits - 1)
	// Folds registered back to back share origLen (TAGE makes three views of
	// each table's history, ITTAGE two); fetch the outgoing bit once per run.
	lastLen, ob := ^uint32(0), uint32(0)
	for i := range h.folds {
		f := &h.folds[i]
		if f.origLen != lastLen {
			lastLen = f.origLen
			ob = h.bitAt(lastLen)
		}
		f.update(nb, ob)
	}
}

// PushPath mixes low bits of a taken-branch PC into the path history.
func (h *History) PushPath(pc uint64) {
	h.path = (h.path<<1 | uint32(pc>>2)&1) & 0xffff
}

// maxFolds bounds the number of folded views so checkpoints are a fixed,
// allocation-free array (48 covers TAGE 12×3 + ITTAGE 2×2 + SC 3).
const maxFolds = 48

// Checkpoint is a snapshot of the speculative history state taken just
// before a branch's own update. It is small enough to store per in-flight
// branch (the paper's in-flight branch queue plays the same role) and is a
// plain value: no heap allocation per branch.
type Checkpoint struct {
	ptr   uint32
	path  uint32
	n     int32
	comps [maxFolds]uint32
}

// Save captures the current history state. The checkpoint stays valid until
// more than historyBits bits have been pushed past it.
func (h *History) Save() Checkpoint {
	var c Checkpoint
	h.SaveInto(&c)
	return c
}

// SaveInto is Save writing into caller-owned (zeroed) storage, avoiding a
// Checkpoint-sized temporary copy on the per-branch hot path.
func (h *History) SaveInto(c *Checkpoint) {
	c.ptr, c.path, c.n = h.ptr, h.path, int32(len(h.folds))
	for i := range h.folds {
		c.comps[i] = h.folds[i].comp
	}
}

// Restore rewinds the history to a previously saved checkpoint.
func (h *History) Restore(c Checkpoint) {
	h.ptr = c.ptr
	h.path = c.path
	for i := 0; i < int(c.n); i++ {
		h.folds[i].comp = c.comps[i]
	}
}

// NumFolds returns the number of registered folded views (for tests).
func (h *History) NumFolds() int { return len(h.folds) }
