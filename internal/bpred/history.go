// Package bpred implements the decoupled branch prediction stack used by the
// baseline core (Table I of the paper): a TAGE-SC-L-class conditional
// predictor (TAGE + loop predictor + statistical corrector), an ITTAGE-style
// history-based indirect predictor, a 4k-entry BTB, and a return address
// stack — all with per-branch checkpointing so any flush (normal, early TEA,
// or memory-ordering) restores speculative predictor state exactly.
package bpred

// historyBits is the size of the circular global-history buffer. It must
// exceed the longest folded history length plus the maximum number of
// in-flight speculative branches, so that restoring a checkpoint never
// resurrects an overwritten bit. The longest TAGE history is ~1270 bits and
// the pipeline holds well under 1k speculative branches.
const historyBits = 4096

// folded is an incrementally maintained folded (compressed) history
// register, as used by TAGE (Seznec). A history of origLen bits is folded
// by XOR into compLen bits.
type folded struct {
	comp     uint32
	compLen  uint32
	origLen  uint32
	outPoint uint32 // origLen % compLen
	mask     uint32 // 1<<compLen - 1
}

func newFolded(origLen, compLen uint32) folded {
	return folded{compLen: compLen, origLen: origLen,
		outPoint: origLen % compLen, mask: 1<<compLen - 1}
}

// update shifts in newBit and removes oldBit (the bit that just moved past
// origLen in the global history).
func (f *folded) update(newBit, oldBit uint32) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= f.mask
}

// unupdate is the exact inverse of update: given the same newBit/oldBit pair,
// it recovers the pre-update comp. Derivation: update computes
// u = (comp<<1)|newBit, then t = u ^ oldBit<<outPoint, then folds the
// overflow bit (t>>compLen, which equals comp's old top bit) into bit 0 and
// masks. All three steps are invertible because newBit and oldBit are known
// at rewind time (they are still in the circular history buffer).
func (f *folded) unupdate(newBit, oldBit uint32) {
	x := f.comp ^ (oldBit << f.outPoint) // = (u & mask) ^ top
	top := (x & 1) ^ newBit              // u's bit 0 is newBit
	f.comp = ((x ^ top) | (top << f.compLen)) >> 1
}

// History is the speculative global branch history: a circular bit buffer
// with registered folded views, plus a path-history register. All speculative
// predictor state that must be rewound on a flush lives here (the RAS and
// loop predictor keep their own small checkpoints).
type History struct {
	bits [historyBits / 64]uint64
	ptr  uint32 // index where the NEXT bit will be written
	path uint32 // path history (low PC bits of taken branches)

	// pushes counts every Push ever applied (monotone except during rewind).
	// A rewind-mode checkpoint is just this counter plus the 4-byte path
	// register: Restore unwinds pushes one by one instead of copying the 48
	// folded comps back.
	pushes uint64
	// rewind selects rewind-mode checkpoints (see SaveInto). The circular
	// bit buffer itself is the undo log: every pushed bit, and every bit
	// that fell out of a fold's origLen window, is still in the buffer when
	// the rewind runs (historyBits exceeds the longest fold plus the
	// in-flight branch count), so unpush can re-derive both XOR operands.
	rewind bool

	// snaps is a ring of periodic full-fold snapshots (rewind mode only),
	// taken every snapPeriod pushes. They bound Restore's cost: a rewind
	// over a long in-flight distance copies the newest snapshot at or
	// before the checkpoint and replays at most snapPeriod-1 pushes forward
	// from the bit buffer, instead of unwinding the whole distance push by
	// push. Snapshots younger than a restored checkpoint are dropped at
	// Restore (the re-executed path will rewrite those push counts with
	// different bits).
	snaps    [snapRing]histSnap
	snapHead int // ring index of the next snapshot write
	snapLen  int // live snapshots (newest at snapHead-1)

	folds []folded
}

// snapPeriod is the push distance between fold snapshots; snapRing sizes the
// ring so coverage (snapPeriod*snapRing pushes) exceeds the in-flight branch
// bound. Both must be powers of two.
const (
	snapPeriod = 32
	snapRing   = 64
)

// histSnap is one periodic snapshot: the full fold state just after the
// push numbered pushes.
type histSnap struct {
	pushes uint64
	ptr    uint32
	comps  [maxFolds]uint32
}

// SetRewind selects rewind-mode (true) or copy-mode (false) checkpoints.
// Both produce bit-identical restored state; rewind mode makes Save O(1)
// instead of O(maxFolds) per branch.
func (h *History) SetRewind(on bool) { h.rewind = on }

// RegisterFold adds a folded view of the most recent origLen history bits
// compressed to compLen bits and returns its handle.
func (h *History) RegisterFold(origLen, compLen uint32) int {
	if len(h.folds) >= maxFolds {
		panic("bpred: too many folded histories; raise maxFolds")
	}
	h.folds = append(h.folds, newFolded(origLen, compLen))
	return len(h.folds) - 1
}

// Fold returns the current folded value of the registered view.
func (h *History) Fold(i int) uint32 { return h.folds[i].comp }

// Path returns the path-history register.
func (h *History) Path() uint32 { return h.path }

// bitAt returns history bit at distance i (0 = most recently pushed).
func (h *History) bitAt(i uint32) uint32 {
	pos := (h.ptr - 1 - i) & (historyBits - 1)
	return uint32(h.bits[pos/64]>>(pos%64)) & 1
}

func (h *History) setBit(pos, b uint32) {
	word, off := pos/64, pos%64
	h.bits[word] = (h.bits[word] &^ (1 << off)) | (uint64(b) << off)
}

// Push records one speculative history bit and updates all folded views.
func (h *History) Push(bit bool) {
	var nb uint32
	if bit {
		nb = 1
	}
	h.setBit(h.ptr&(historyBits-1), nb)
	h.ptr = (h.ptr + 1) & (historyBits - 1)
	h.pushes++
	// Folds registered back to back share origLen (TAGE makes three views of
	// each table's history, ITTAGE two); fetch the outgoing bit once per run.
	lastLen, ob := ^uint32(0), uint32(0)
	for i := range h.folds {
		f := &h.folds[i]
		if f.origLen != lastLen {
			lastLen = f.origLen
			ob = h.bitAt(lastLen)
		}
		f.update(nb, ob)
	}
	if h.rewind && h.pushes&(snapPeriod-1) == 0 {
		h.snapshot()
	}
}

// snapshot records the current fold state into the ring.
func (h *History) snapshot() {
	s := &h.snaps[h.snapHead]
	h.snapHead = (h.snapHead + 1) & (snapRing - 1)
	if h.snapLen < snapRing {
		h.snapLen++
	}
	s.pushes, s.ptr = h.pushes, h.ptr
	for i := range h.folds {
		s.comps[i] = h.folds[i].comp
	}
}

// dropSnapsAfter discards snapshots taken after push count p. A restore to p
// invalidates them: the path re-executed from there will reuse the same push
// counts with different history bits.
func (h *History) dropSnapsAfter(p uint64) {
	for h.snapLen > 0 {
		newest := (h.snapHead - 1 + snapRing) & (snapRing - 1)
		if h.snaps[newest].pushes <= p {
			return
		}
		h.snapHead = newest
		h.snapLen--
	}
}

// replayPush re-applies one already-recorded push: the bit is read back from
// the circular buffer (Push wrote it there and nothing has overwritten it
// within the buffer's margin) instead of being provided by the caller.
func (h *History) replayPush() {
	nb := uint32(h.bits[h.ptr/64]>>(h.ptr%64)) & 1
	h.ptr = (h.ptr + 1) & (historyBits - 1)
	h.pushes++
	lastLen, ob := ^uint32(0), uint32(0)
	for i := range h.folds {
		f := &h.folds[i]
		if f.origLen != lastLen {
			lastLen = f.origLen
			ob = h.bitAt(lastLen)
		}
		f.update(nb, ob)
	}
}

// unpush exactly inverts the most recent Push. Both XOR operands of each
// fold's update are re-read from the circular buffer at the same distances
// the push used (ptr has not moved since, and at most historyBits-1 newer
// bits could have overwritten old positions — far beyond any fold's window),
// so unupdate recovers the pre-push comps bit for bit. The pushed bit itself
// is left in the buffer; it is unreachable until overwritten by a new Push
// at the same position.
func (h *History) unpush() {
	nb := h.bitAt(0)
	lastLen, ob := ^uint32(0), uint32(0)
	for i := range h.folds {
		f := &h.folds[i]
		if f.origLen != lastLen {
			lastLen = f.origLen
			ob = h.bitAt(lastLen)
		}
		f.unupdate(nb, ob)
	}
	h.ptr = (h.ptr - 1) & (historyBits - 1)
	h.pushes--
}

// PushPath mixes low bits of a taken-branch PC into the path history.
func (h *History) PushPath(pc uint64) {
	h.path = (h.path<<1 | uint32(pc>>2)&1) & 0xffff
}

// maxFolds bounds the number of folded views so checkpoints are a fixed,
// allocation-free array (48 covers TAGE 12×3 + ITTAGE 2×2 + SC 3).
const maxFolds = 48

// Checkpoint is a snapshot of the speculative history state taken just
// before a branch's own update. It is small enough to store per in-flight
// branch (the paper's in-flight branch queue plays the same role) and is a
// plain value: no heap allocation per branch.
//
// Two flavors share the struct, tagged by n: a copy-mode checkpoint
// (n >= 0) carries all folded comps and restores by copying them back; a
// rewind-mode checkpoint (n == rewindTag) carries only the push counter and
// path register, and restores by unwinding pushes through the invertible
// fold update. Restore dispatches on the checkpoint's own tag, so mixed use
// is safe.
type Checkpoint struct {
	ptr    uint32
	path   uint32
	n      int32
	pushes uint64
	comps  [maxFolds]uint32
}

// rewindTag marks a rewind-mode Checkpoint (see SaveInto).
const rewindTag int32 = -1

// Save captures the current history state. The checkpoint stays valid until
// more than historyBits bits have been pushed past it.
func (h *History) Save() Checkpoint {
	var c Checkpoint
	h.SaveInto(&c)
	return c
}

// SaveInto is Save writing into caller-owned (zeroed) storage, avoiding a
// Checkpoint-sized temporary copy on the per-branch hot path. In rewind
// mode only the counters are recorded — the per-branch cost drops from
// maxFolds+3 words to 4 — and the comps array is left untouched (Restore
// never reads it for a rewind-tagged checkpoint).
func (h *History) SaveInto(c *Checkpoint) {
	if h.rewind {
		c.ptr, c.path, c.n, c.pushes = h.ptr, h.path, rewindTag, h.pushes
		return
	}
	c.ptr, c.path, c.n = h.ptr, h.path, int32(len(h.folds))
	for i := range h.folds {
		c.comps[i] = h.folds[i].comp
	}
}

// Restore rewinds the history to a previously saved checkpoint. A
// rewind-tagged checkpoint restores from the nearest periodic snapshot at or
// before it (copy + at most snapPeriod-1 forward replays from the bit
// buffer) when the distance is long, and by unwinding push by push when it
// is short or no snapshot covers it; cost is bounded either way.
func (h *History) Restore(c *Checkpoint) {
	if c.n == rewindTag {
		h.dropSnapsAfter(c.pushes)
		if h.pushes-c.pushes > snapPeriod && h.snapLen > 0 {
			s := &h.snaps[(h.snapHead-1+snapRing)&(snapRing-1)]
			h.ptr = s.ptr
			h.pushes = s.pushes
			for i := range h.folds {
				h.folds[i].comp = s.comps[i]
			}
			for h.pushes < c.pushes {
				h.replayPush()
			}
		}
		for h.pushes > c.pushes {
			h.unpush()
		}
		h.ptr = c.ptr // always equal after the unwind; cheap belt-and-braces
		h.path = c.path
		return
	}
	h.ptr = c.ptr
	h.path = c.path
	h.snapLen, h.snapHead = 0, 0 // a copy restore invalidates every snapshot
	for i := 0; i < int(c.n); i++ {
		h.folds[i].comp = c.comps[i]
	}
}

// NumFolds returns the number of registered folded views (for tests).
func (h *History) NumFolds() int { return len(h.folds) }
