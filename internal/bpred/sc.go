package bpred

// Statistical corrector: a small GEHL-style confidence network that can
// override low-confidence TAGE predictions, as in TAGE-SC-L. It sums signed
// counters from a bias table and a few history-indexed tables; when the sum
// disagrees with TAGE with enough magnitude, the prediction is flipped.

const (
	scTables   = 4 // bias + 3 history lengths
	scBiasBits = 12
	scTblBits  = 10
	scCtrMax   = 31
	scCtrMin   = -32
)

var scHistLens = [scTables - 1]uint32{6, 14, 30}

type scorr struct {
	bias   []int8
	tables [scTables - 1][]int8
	folds  [scTables - 1]int
	hist   *History

	thresh int32 // dynamic flip threshold
	tc     int8  // threshold adaptation counter
}

func newSC(h *History) *scorr {
	s := &scorr{bias: make([]int8, 1<<scBiasBits), hist: h, thresh: 6}
	for i := range s.tables {
		s.tables[i] = make([]int8, 1<<scTblBits)
		s.folds[i] = h.RegisterFold(scHistLens[i], scTblBits)
	}
	return s
}

// predict refines the TAGE prediction in ctx, recording the indices and sum
// needed for training.
func (s *scorr) predict(pc uint64, ctx *CondCtx) {
	ctx.scIdx[0] = uint32(pc>>2) & (1<<scBiasBits - 1)
	sum := int32(2*s.bias[ctx.scIdx[0]] + 1)
	for i := range s.tables {
		idx := (uint32(pc>>2) ^ s.hist.Fold(s.folds[i]) ^ uint32(i)<<3) & (1<<scTblBits - 1)
		ctx.scIdx[i+1] = idx
		sum += int32(2*s.tables[i][idx] + 1)
	}
	// TAGE's own vote, weighted by provider confidence.
	tageWeight := int32(5)
	if ctx.weakProv {
		tageWeight = 2
	}
	if ctx.TagePred {
		sum += tageWeight
	} else {
		sum -= tageWeight
	}
	ctx.scSum = sum
	scPred := sum >= 0
	if scPred != ctx.TagePred && abs32(sum) >= s.thresh {
		ctx.scUsed = true
		ctx.Pred = scPred
	}
}

// update trains the corrector counters and adapts the flip threshold.
func (s *scorr) update(ctx *CondCtx, taken bool) {
	scPred := ctx.scSum >= 0
	mag := abs32(ctx.scSum)
	// Train on mispredictions and low-confidence correct predictions.
	if scPred != taken || mag < s.thresh+4 {
		updateCtr(&s.bias[ctx.scIdx[0]], taken, scCtrMin, scCtrMax)
		for i := range s.tables {
			updateCtr(&s.tables[i][ctx.scIdx[i+1]], taken, scCtrMin, scCtrMax)
		}
	}
	// Threshold adaptation (Seznec): widen when flips hurt, narrow when
	// near-threshold sums are correct.
	if ctx.scUsed {
		if (ctx.Pred == taken) != (ctx.TagePred == taken) {
			if ctx.Pred == taken {
				s.tc--
			} else {
				s.tc++
			}
			if s.tc >= 4 {
				if s.thresh < 60 {
					s.thresh++
				}
				s.tc = 0
			} else if s.tc <= -4 {
				if s.thresh > 4 {
					s.thresh--
				}
				s.tc = 0
			}
		}
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
