package bpred

// TAGE conditional branch predictor (Seznec-style): a bimodal base table
// plus nTables partially tagged tables indexed with geometrically increasing
// folded global histories. A small loop predictor and statistical corrector
// (sc.go) sit on top, forming the TAGE-SC-L-class predictor from Table I.

const (
	nTables     = 12 // maximum (and default) tagged-table count
	baseBits    = 14 // 16K-entry bimodal
	tableBits   = 10 // 1K entries per tagged table
	ctrMax      = 3  // 3-bit signed counter in [-4, 3]
	ctrMin      = -4
	uMax        = 3
	uResetEvery = 1 << 18 // graceful usefulness decay period (branches)
)

// default geometric history lengths for the tagged tables.
var defaultHistLens = [nTables]uint32{4, 8, 13, 22, 36, 60, 100, 167, 280, 468, 782, 1270}

// tag widths per table (longer histories get wider tags).
var tagBits = [nTables]uint32{8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 12, 12}

type tageEntry struct {
	ctr int8
	tag uint16
	u   uint8
}

type tageTable struct {
	entries  []tageEntry
	idxFold  int // History fold handles
	tagFold  int
	tagFold2 int
	histLen  uint32
	tagMask  uint16
}

// CondCtx carries the per-prediction state needed to train the conditional
// predictor at retirement. It is stored in the pipeline's in-flight branch
// queue alongside the history checkpoint.
type CondCtx struct {
	PC       uint64
	Pred     bool // final prediction (after loop/SC)
	TagePred bool
	AltPred  bool
	provider int8 // table index of provider, -1 = bimodal
	altTable int8 // table index of altpred, -1 = bimodal
	provIdx  uint32
	altIdx   uint32
	provTag  uint16
	baseIdx  uint32
	provPred bool // raw provider-counter prediction (before alt override)
	weakProv bool
	// tags/indices computed at prediction time for allocation on mispredict.
	idx [nTables]uint32
	tag [nTables]uint16
	// loop predictor context
	loopHit  bool
	loopPred bool
	loopIdx  int
	loopSpec uint16
	// statistical corrector context
	scSum  int32
	scUsed bool
	scIdx  [scTables]uint32
}

type tage struct {
	base   []int8 // bimodal counters, 2-bit in [-2,1]
	tables [nTables]tageTable
	n      int // tagged tables in use (tables[:n])
	hist   *History

	useAltOnNA int8 // prefer altpred for newly allocated entries
	branchTick uint64
	allocSeed  uint32 // deterministic xorshift for allocation choice
}

func newTAGE(h *History, n int, lens []uint32) *tage {
	t := &tage{base: make([]int8, 1<<baseBits), n: n, hist: h, allocSeed: 0x9e3779b9}
	for i := 0; i < n; i++ {
		tb := &t.tables[i]
		tb.entries = make([]tageEntry, 1<<tableBits)
		tb.histLen = lens[i]
		tb.tagMask = uint16(1<<tagBits[i] - 1)
		tb.idxFold = h.RegisterFold(lens[i], tableBits)
		tb.tagFold = h.RegisterFold(lens[i], tagBits[i])
		tb.tagFold2 = h.RegisterFold(lens[i], tagBits[i]-1)
	}
	return t
}

func (t *tage) rng() uint32 {
	t.allocSeed ^= t.allocSeed << 13
	t.allocSeed ^= t.allocSeed >> 17
	t.allocSeed ^= t.allocSeed << 5
	return t.allocSeed
}

func (t *tage) index(table int, pc uint64) uint32 {
	tb := &t.tables[table]
	h := uint32(pc>>2) ^ uint32(pc>>(2+tableBits)) ^ t.hist.Fold(tb.idxFold) ^
		(t.hist.Path() & ((1 << min32(tb.histLen, 16)) - 1))
	return h & (1<<tableBits - 1)
}

func (t *tage) tagOf(table int, pc uint64) uint16 {
	tb := &t.tables[table]
	return uint16(uint32(pc>>2)^t.hist.Fold(tb.tagFold)^(t.hist.Fold(tb.tagFold2)<<1)) & tb.tagMask
}

func (t *tage) baseIndex(pc uint64) uint32 {
	return uint32(pc>>2) & (1<<baseBits - 1)
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// predict computes the TAGE component prediction and fills ctx.
func (t *tage) predict(pc uint64, ctx *CondCtx) {
	ctx.PC = pc
	ctx.provider, ctx.altTable = -1, -1
	ctx.baseIdx = t.baseIndex(pc)
	basePred := t.base[ctx.baseIdx] >= 0

	for i := 0; i < t.n; i++ {
		ctx.idx[i] = t.index(i, pc)
		ctx.tag[i] = t.tagOf(i, pc)
	}
	for i := t.n - 1; i >= 0; i-- {
		e := &t.tables[i].entries[ctx.idx[i]]
		if e.tag == ctx.tag[i] {
			if ctx.provider < 0 {
				ctx.provider = int8(i)
				ctx.provIdx = ctx.idx[i]
				ctx.provTag = ctx.tag[i]
			} else if ctx.altTable < 0 {
				ctx.altTable = int8(i)
				ctx.altIdx = ctx.idx[i]
				break
			}
		}
	}

	ctx.AltPred = basePred
	if ctx.altTable >= 0 {
		ctx.AltPred = t.tables[ctx.altTable].entries[ctx.altIdx].ctr >= 0
	}
	if ctx.provider >= 0 {
		e := &t.tables[ctx.provider].entries[ctx.provIdx]
		ctx.provPred = e.ctr >= 0
		ctx.TagePred = ctx.provPred
		// Newly allocated entries (weak ctr, low usefulness) may be less
		// reliable than the alternate prediction.
		ctx.weakProv = (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if ctx.weakProv && t.useAltOnNA >= 0 {
			ctx.TagePred = ctx.AltPred
		}
	} else {
		ctx.provPred = basePred
		ctx.TagePred = basePred
	}
	ctx.Pred = ctx.TagePred
}

// update trains TAGE with the resolved outcome. Called at retirement with
// the context captured at prediction time.
func (t *tage) update(ctx *CondCtx, taken bool) {
	t.branchTick++
	if t.branchTick%uResetEvery == 0 {
		for i := 0; i < t.n; i++ {
			for j := range t.tables[i].entries {
				t.tables[i].entries[j].u >>= 1
			}
		}
	}

	correct := ctx.TagePred == taken
	// useAltOnNA tracks whether alt beats a weak provider when they differ.
	if ctx.provider >= 0 && ctx.weakProv && ctx.provPred != ctx.AltPred {
		if ctx.provPred == taken && t.useAltOnNA > -8 {
			t.useAltOnNA--
		} else if ctx.provPred != taken && t.useAltOnNA < 7 {
			t.useAltOnNA++
		}
	}

	// Allocate on misprediction in a table with longer history.
	if !correct && ctx.provider < int8(t.n-1) {
		t.allocate(ctx, taken)
	}

	if ctx.provider >= 0 {
		e := &t.tables[ctx.provider].entries[ctx.provIdx]
		updateCtr(&e.ctr, taken, ctrMin, ctrMax)
		// Usefulness: reward the provider when it beat the alternate.
		if ctx.provPred != ctx.AltPred {
			if ctx.provPred == taken && e.u < uMax {
				e.u++
			} else if ctx.provPred != taken && e.u > 0 {
				e.u--
			}
		}
		// Also train alt/base when the provider entry is weak.
		if ctx.weakProv {
			if ctx.altTable >= 0 {
				updateCtr(&t.tables[ctx.altTable].entries[ctx.altIdx].ctr, taken, ctrMin, ctrMax)
			} else {
				updateBase(&t.base[ctx.baseIdx], taken)
			}
		}
	} else {
		updateBase(&t.base[ctx.baseIdx], taken)
	}
}

// allocate tries to claim an entry in a table with longer history than the
// provider, preferring entries with zero usefulness.
func (t *tage) allocate(ctx *CondCtx, taken bool) {
	start := int(ctx.provider) + 1
	// Randomize the first candidate slightly (as in TAGE) to avoid ping-pong.
	if start < t.n-1 && t.rng()&3 == 0 {
		start++
	}
	allocated := 0
	for i := start; i < t.n && allocated < 2; i++ {
		e := &t.tables[i].entries[ctx.idx[i]]
		if e.u == 0 {
			e.tag = ctx.tag[i]
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			e.u = 0
			allocated++
			i++ // skip adjacent table to spread allocations
		} else if e.u > 0 && allocated == 0 {
			// Decay usefulness so a future allocation can succeed.
			e.u--
		}
	}
}

func updateCtr(c *int8, taken bool, lo, hi int8) {
	if taken {
		if *c < hi {
			*c++
		}
	} else if *c > lo {
		*c--
	}
}

func updateBase(c *int8, taken bool) { updateCtr(c, taken, -2, 1) }
