package bpred

// RAS: speculative return address stack with top-of-stack checkpointing.
// Each branch checkpoint saves the stack pointer and the entry it points at,
// which repairs both push-overwrites and pops on a flush (standard
// TOSA/TOSV recovery).

const rasEntries = 64

// RAS is the return address stack.
type RAS struct {
	stack [rasEntries]uint64
	top   uint32 // index of the current top entry
}

// Push records a call's return address.
func (r *RAS) Push(ret uint64) {
	r.top = (r.top + 1) % rasEntries
	r.stack[r.top] = ret
}

// Pop predicts a return target and unwinds the stack.
func (r *RAS) Pop() uint64 {
	v := r.stack[r.top]
	r.top = (r.top - 1 + rasEntries) % rasEntries
	return v
}

// Peek returns the current predicted return target without popping.
func (r *RAS) Peek() uint64 { return r.stack[r.top] }

// RASCheckpoint repairs the stack after a flush.
type RASCheckpoint struct {
	top uint32
	val uint64
}

// Save captures the recovery state (pointer + top value).
func (r *RAS) Save() RASCheckpoint {
	return RASCheckpoint{top: r.top, val: r.stack[r.top]}
}

// Restore rewinds to the checkpoint.
func (r *RAS) Restore(c RASCheckpoint) {
	r.top = c.top
	r.stack[r.top] = c.val
}
