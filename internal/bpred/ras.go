package bpred

// RAS: speculative return address stack with top-of-stack checkpointing.
// Each branch checkpoint saves the stack pointer and the entry it points at,
// which repairs both push-overwrites and pops on a flush (standard
// TOSA/TOSV recovery).

const rasEntries = 64

// RAS is the return address stack. The zero value lazily adopts the Table I
// depth on first use; newRAS builds a custom depth.
type RAS struct {
	stack []uint64
	top   uint32 // index of the current top entry
}

// newRAS builds a stack with the given depth.
func newRAS(entries int) *RAS { return &RAS{stack: make([]uint64, entries)} }

// ensure backfills the default depth for zero-value stacks.
func (r *RAS) ensure() {
	if r.stack == nil {
		r.stack = make([]uint64, rasEntries)
	}
}

// Push records a call's return address.
func (r *RAS) Push(ret uint64) {
	r.ensure()
	r.top = (r.top + 1) % uint32(len(r.stack))
	r.stack[r.top] = ret
}

// Pop predicts a return target and unwinds the stack.
func (r *RAS) Pop() uint64 {
	r.ensure()
	v := r.stack[r.top]
	n := uint32(len(r.stack))
	r.top = (r.top - 1 + n) % n
	return v
}

// Peek returns the current predicted return target without popping.
func (r *RAS) Peek() uint64 {
	r.ensure()
	return r.stack[r.top]
}

// RASCheckpoint repairs the stack after a flush.
type RASCheckpoint struct {
	top uint32
	val uint64
}

// Save captures the recovery state (pointer + top value).
func (r *RAS) Save() RASCheckpoint {
	r.ensure()
	return RASCheckpoint{top: r.top, val: r.stack[r.top]}
}

// Restore rewinds to the checkpoint.
func (r *RAS) Restore(c RASCheckpoint) {
	r.ensure()
	r.top = c.top
	r.stack[r.top] = c.val
}
