package bpred

import (
	"fmt"

	"teasim/internal/isa"
)

// Config sets the predictor-stack geometry (defaults = Table I). Zero
// fields select their defaults, so the zero value is the Table I predictor.
type Config struct {
	// TageTables is the number of tagged TAGE tables (1..12; default 12).
	// Fewer tables use the first TageTables geometric history lengths.
	TageTables int
	// TageHistLens overrides the geometric history lengths (len must equal
	// TageTables; nil = the default 4..1270 series truncated to TageTables).
	TageHistLens []uint32
	// BTBEntries/BTBWays set the branch target buffer geometry (default
	// 4096 entries, 4-way; the set count must be a power of two).
	BTBEntries int
	BTBWays    int
	// RASEntries sets the return address stack depth (default 64).
	RASEntries int
	// NoHistRewind disables the rewind-mode history recovery fast path,
	// falling back to full per-branch folded-history checkpoints. Both paths
	// restore bit-identical state (enforced by TestHistoryRewindEquivalence
	// and the tea fast-path equivalence matrix); the reference path exists
	// for debugging and for those tests.
	NoHistRewind bool
}

// DefaultConfig returns the Table I predictor stack configuration.
func DefaultConfig() Config {
	return Config{
		TageTables:   nTables,
		TageHistLens: defaultHistLens[:],
		BTBEntries:   btbEntries,
		BTBWays:      btbWays,
		RASEntries:   rasEntries,
	}
}

// normalize fills zero fields with their defaults and rejects geometry the
// implementation cannot index.
func (c Config) normalize() Config {
	if c.TageTables == 0 {
		c.TageTables = nTables
	}
	if c.TageTables < 1 || c.TageTables > nTables {
		panic(fmt.Sprintf("bpred: TageTables %d out of range [1,%d]", c.TageTables, nTables))
	}
	if c.TageHistLens == nil {
		c.TageHistLens = defaultHistLens[:c.TageTables]
	}
	if len(c.TageHistLens) != c.TageTables {
		panic(fmt.Sprintf("bpred: %d history lengths for %d TAGE tables", len(c.TageHistLens), c.TageTables))
	}
	if c.BTBEntries == 0 {
		c.BTBEntries = btbEntries
	}
	if c.BTBWays == 0 {
		c.BTBWays = btbWays
	}
	sets := c.BTBEntries / c.BTBWays
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("bpred: BTB set count %d not a power of two (entries %d / ways %d)", sets, c.BTBEntries, c.BTBWays))
	}
	if c.RASEntries == 0 {
		c.RASEntries = rasEntries
	}
	return c
}

// Predictor is the full decoupled prediction stack: TAGE-SC-L conditional
// predictor, ITTAGE-lite indirect predictor, BTB, and RAS over a shared
// speculative history.
//
// Protocol (driven by the pipeline's decoupled frontend):
//
//  1. For each branch instruction reached while generating fetch addresses,
//     call Predict(pc). If the branch misses in the BTB the predictor does
//     not "see" it: no speculative state is updated and the implicit
//     prediction is not-taken (the returned Pred still carries the recovery
//     snapshot).
//  2. On a misprediction flush (from the main thread or an early TEA flush),
//     call Recover with the actual outcome; this rewinds all speculative
//     state to just before the branch and re-applies the branch with its
//     true outcome.
//  3. At retirement call Train exactly once per branch.
type Predictor struct {
	Hist *History
	tage *tage
	sc   *scorr
	loop *loopPred
	it   *ittage
	BTB  *BTB
	RAS  *RAS
}

// New constructs the predictor stack with Table I parameters.
func New() *Predictor { return NewWithConfig(Config{}) }

// NewWithConfig constructs the predictor stack with the given geometry
// (zero fields = Table I defaults).
func NewWithConfig(cfg Config) *Predictor {
	cfg = cfg.normalize()
	h := &History{rewind: !cfg.NoHistRewind}
	return &Predictor{
		Hist: h,
		tage: newTAGE(h, cfg.TageTables, cfg.TageHistLens),
		sc:   newSC(h),
		loop: &loopPred{},
		it:   newITTAGE(h),
		BTB:  newBTB(cfg.BTBEntries, cfg.BTBWays),
		RAS:  newRAS(cfg.RASEntries),
	}
}

// Snapshot bundles all speculative predictor state for one branch.
type Snapshot struct {
	Hist Checkpoint
	RAS  RASCheckpoint
}

// Pred is the result of predicting one branch, including everything needed
// to recover from and train on it.
type Pred struct {
	PC     uint64
	BTBHit bool
	Kind   BranchKind
	IsCall bool
	Taken  bool
	Target uint64 // valid when Taken

	Cond CondCtx
	Ind  IndCtx
	Snap Snapshot
}

// Predict predicts the branch at pc and speculatively updates history/RAS.
// On a BTB miss the prediction is implicitly not-taken and no speculative
// state changes (the snapshot is still captured for recovery).
func (p *Predictor) Predict(pc uint64) Pred {
	var pred Pred
	p.PredictInto(pc, &pred)
	return pred
}

// PredictInto is Predict writing into caller-owned storage (the in-flight
// branch queue entry), avoiding a large struct copy per branch.
func (p *Predictor) PredictInto(pc uint64, pred *Pred) {
	*pred = Pred{PC: pc}
	p.Hist.SaveInto(&pred.Snap.Hist)
	pred.Snap.RAS = p.RAS.Save()
	target, kind, isCall, hit := p.BTB.Lookup(pc)
	if !hit {
		return
	}
	pred.BTBHit, pred.Kind, pred.IsCall = true, kind, isCall

	switch kind {
	case KindCond:
		p.tage.predict(pc, &pred.Cond)
		p.sc.predict(pc, &pred.Cond)
		p.loop.predict(pc, &pred.Cond)
		pred.Taken = pred.Cond.Pred
		pred.Target = target
	case KindDirect:
		pred.Taken, pred.Target = true, target
	case KindIndirect:
		p.it.predict(pc, &pred.Ind)
		pred.Taken = true
		if pred.Ind.hit {
			pred.Target = pred.Ind.Pred
		} else {
			pred.Target = target // BTB last-seen target fallback
		}
	case KindReturn:
		pred.Taken, pred.Target = true, p.RAS.Peek()
	}
	p.specUpdate(kind, pc, pred.Taken, pred.Target, isCall)
}

// ForceConditional overrides the conditional prediction in pred (already
// produced by PredictInto) with an externally computed direction, repairing
// the speculative history to reflect the forced outcome. Only valid for
// BTB-hit conditional branches.
func (p *Predictor) ForceConditional(pred *Pred, taken bool) {
	if !pred.BTBHit || pred.Kind != KindCond || pred.Taken == taken {
		pred.Taken = taken
		return
	}
	// Rewind the speculative update made with the TAGE direction and
	// re-apply with the forced one.
	p.Hist.Restore(&pred.Snap.Hist)
	p.RAS.Restore(pred.Snap.RAS)
	p.loop.restore(&pred.Cond)
	pred.Taken = taken
	p.specUpdate(KindCond, pred.PC, taken, pred.Target, false)
}

// specUpdate applies a branch's speculative effect on history and RAS. It is
// used both at prediction time (with the predicted outcome) and during
// recovery (with the actual outcome).
func (p *Predictor) specUpdate(kind BranchKind, pc uint64, taken bool, target uint64, isCall bool) {
	switch kind {
	case KindCond:
		p.Hist.Push(taken)
		if taken {
			p.Hist.PushPath(pc)
		}
	case KindDirect:
		p.Hist.Push(true)
		p.Hist.PushPath(pc)
		if isCall {
			p.RAS.Push(pc + isa.InstBytes)
		}
	case KindIndirect:
		// Mix target bits into the history for indirect correlation.
		p.Hist.Push(target>>2&1 == 1)
		p.Hist.Push(target>>3&1 == 1)
		p.Hist.PushPath(pc)
		if isCall {
			p.RAS.Push(pc + isa.InstBytes)
		}
	case KindReturn:
		p.Hist.Push(true)
		p.Hist.PushPath(pc)
		p.RAS.Pop()
	}
}

// Recover rewinds speculative state to just before the mispredicted branch
// and re-applies it with its actual outcome. in is the branch instruction
// (the predictor may not have known its kind if the BTB missed). The BTB is
// trained immediately so the next occurrence is identified.
func (p *Predictor) Recover(pred *Pred, in *isa.Inst, actualTaken bool, actualTarget uint64) {
	p.Hist.Restore(&pred.Snap.Hist)
	p.RAS.Restore(pred.Snap.RAS)
	if pred.BTBHit && pred.Kind == KindCond {
		p.loop.restore(&pred.Cond)
	}
	kind := KindOf(in)
	if actualTaken || kind != KindCond {
		p.BTB.Insert(pred.PC, actualTarget, kind, in.IsCall())
		p.specUpdate(kind, pred.PC, actualTaken, actualTarget, in.IsCall())
	}
	// A not-taken conditional stays invisible to the history (matching what
	// prediction will do next time if the BTB still misses, and what a
	// correct BTB-hit prediction applied).
	if !actualTaken && kind == KindCond && pred.BTBHit {
		// It was visible at prediction time; keep it visible.
		p.specUpdate(kind, pred.PC, actualTaken, actualTarget, false)
	}
}

// Train updates all predictor components at retirement.
func (p *Predictor) Train(pred *Pred, in *isa.Inst, taken bool, target uint64) {
	kind := KindOf(in)
	if pred.BTBHit {
		switch kind {
		case KindCond:
			p.tage.update(&pred.Cond, taken)
			p.sc.update(&pred.Cond, taken)
			p.loop.train(&pred.Cond, taken)
			p.loop.update(&pred.Cond, taken)
		case KindIndirect:
			p.it.update(&pred.Ind, target)
		}
	}
	// Insert taken branches into the BTB (never-taken conditionals stay out:
	// their implicit not-taken prediction is free and correct).
	if taken {
		p.BTB.Insert(pred.PC, target, kind, in.IsCall())
	}
}
