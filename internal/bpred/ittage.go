package bpred

// History-based indirect target predictor (ITTAGE-lite): two partially
// tagged tables indexed with folded global history of different lengths,
// falling back to the BTB's last-seen target. Covers jr/callr targets
// (switch dispatch, indirect calls); returns use the RAS instead.

const (
	indTables  = 2
	indTblBits = 11
	indTagBits = 10
)

var indHistLens = [indTables]uint32{8, 24}

type indEntry struct {
	tag    uint16
	target uint64
	ctr    int8 // confidence in [-2, 1]
}

// IndCtx is the per-prediction training context for indirect branches.
type IndCtx struct {
	PC       uint64
	provider int8 // -1 = BTB fallback
	idx      [indTables]uint32
	tag      [indTables]uint16
	Pred     uint64
	hit      bool
}

type ittage struct {
	tables   [indTables][]indEntry
	idxFolds [indTables]int
	tagFolds [indTables]int
	hist     *History
}

func newITTAGE(h *History) *ittage {
	it := &ittage{hist: h}
	for i := 0; i < indTables; i++ {
		it.tables[i] = make([]indEntry, 1<<indTblBits)
		it.idxFolds[i] = h.RegisterFold(indHistLens[i], indTblBits)
		it.tagFolds[i] = h.RegisterFold(indHistLens[i], indTagBits)
	}
	return it
}

// predict returns the predicted target (0 if no component hit) and fills ctx.
func (it *ittage) predict(pc uint64, ctx *IndCtx) {
	ctx.PC = pc
	ctx.provider = -1
	for i := 0; i < indTables; i++ {
		ctx.idx[i] = (uint32(pc>>2) ^ it.hist.Fold(it.idxFolds[i]) ^ it.hist.Path()) & (1<<indTblBits - 1)
		ctx.tag[i] = uint16(uint32(pc>>3)^it.hist.Fold(it.tagFolds[i])) & (1<<indTagBits - 1)
	}
	for i := indTables - 1; i >= 0; i-- {
		e := &it.tables[i][ctx.idx[i]]
		if e.tag == ctx.tag[i] && e.ctr >= 0 {
			ctx.provider = int8(i)
			ctx.Pred = e.target
			ctx.hit = true
			return
		}
	}
	ctx.hit = false
}

// update trains the indirect tables with the resolved target.
func (it *ittage) update(ctx *IndCtx, target uint64) {
	if ctx.provider >= 0 {
		e := &it.tables[ctx.provider][ctx.idx[ctx.provider]]
		if e.target == target {
			if e.ctr < 1 {
				e.ctr++
			}
			return
		}
		if e.ctr > -2 {
			e.ctr--
		}
		if e.ctr < 0 {
			e.target = target
		}
	}
	// Mispredicted (or no provider): allocate in a longer-history table.
	start := int(ctx.provider) + 1
	for i := start; i < indTables; i++ {
		e := &it.tables[i][ctx.idx[i]]
		if e.ctr <= 0 {
			*e = indEntry{tag: ctx.tag[i], target: target, ctr: 0}
			return
		}
		e.ctr--
	}
}
