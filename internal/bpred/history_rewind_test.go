package bpred

import "testing"

// TestHistoryRewindEquivalence drives a rewind-mode history and a copy-mode
// twin through identical random push / checkpoint / mispredict-restore
// sequences — including restores that unwind past several younger
// checkpoints, as nested flushes do — and asserts every piece of observable
// state (ptr, path register, every folded comp) is bit-identical after each
// restore. This is the contract that lets the pipeline enable rewind
// recovery by default: a rewind-tagged Restore must be indistinguishable
// from copying the 48 folded comps back.
func TestHistoryRewindEquivalence(t *testing.T) {
	mk := func(rewind bool) *History {
		h := &History{rewind: rewind}
		// Mix of short/long origLens with shared-length runs, mirroring how
		// TAGE registers three views per table and ITTAGE two.
		for _, l := range []uint32{4, 4, 9, 9, 26, 26, 75, 212, 212, 600, 1270, 1270} {
			h.RegisterFold(l, 11)
			h.RegisterFold(l, 8)
		}
		return h
	}
	a, b := mk(true), mk(false)

	rng := uint32(0x8124)
	rnd := func(n uint32) uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng % n
	}
	check := func(step int) {
		t.Helper()
		if a.ptr != b.ptr || a.path != b.path {
			t.Fatalf("step %d: ptr/path diverged: %d/%#x vs %d/%#x",
				step, a.ptr, a.path, b.ptr, b.path)
		}
		for i := range a.folds {
			if a.folds[i].comp != b.folds[i].comp {
				t.Fatalf("step %d: fold %d diverged: %#x vs %#x",
					step, i, a.folds[i].comp, b.folds[i].comp)
			}
		}
	}

	// Checkpoints live on a stack with flush semantics: a mispredict at
	// entry k squashes every younger checkpoint. Entries older than the
	// validity window (historyBits minus the longest fold) are retired off
	// the bottom, exactly as the pipeline retires branches.
	type saved struct {
		a, b Checkpoint
		at   uint64 // a.pushes when taken
	}
	var stack []saved
	for step := 0; step < 30000; step++ {
		switch rnd(12) {
		case 0, 1: // a branch is predicted: checkpoint both
			var s saved
			a.SaveInto(&s.a)
			b.SaveInto(&s.b)
			s.at = a.pushes
			stack = append(stack, s)
		case 2: // mispredict: flush to a random in-flight branch
			if len(stack) == 0 {
				continue
			}
			k := int(rnd(uint32(len(stack))))
			s := stack[k]
			stack = stack[:k]
			a.Restore(&s.a)
			b.Restore(&s.b)
			check(step)
		case 3: // taken branch mixes path history
			pc := uint64(rnd(1<<20)) * 4
			a.PushPath(pc)
			b.PushPath(pc)
		default: // speculative history bit
			bit := rnd(2) == 1
			a.Push(bit)
			b.Push(bit)
		}
		for len(stack) > 0 && a.pushes-stack[0].at > historyBits-1271 {
			stack = stack[1:] // oldest branch retires; checkpoint expires
		}
	}
	check(-1)
	// Final unwind all the way down the stack, oldest last.
	for k := len(stack) - 1; k >= 0; k-- {
		a.Restore(&stack[k].a)
		b.Restore(&stack[k].b)
		check(100000 + k)
	}
}

// TestFoldedUnupdateInverts exercises the algebraic inverse directly over
// all (newBit, oldBit) pairs and many comp values for awkward geometries
// (outPoint 0, compLen > origLen, single-bit comps).
func TestFoldedUnupdateInverts(t *testing.T) {
	geoms := [][2]uint32{{8, 8}, {8, 3}, {3, 8}, {1270, 12}, {5, 1}, {7, 7}, {16, 11}}
	for _, g := range geoms {
		f := newFolded(g[0], g[1])
		rng := uint32(7)
		for i := 0; i < 2000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			f.comp = rng & f.mask
			nb, ob := rng>>8&1, rng>>9&1
			before := f.comp
			f.update(nb, ob)
			f.unupdate(nb, ob)
			if f.comp != before {
				t.Fatalf("fold(%d,%d): comp %#x -> update(%d,%d) -> unupdate = %#x",
					g[0], g[1], before, nb, ob, f.comp)
			}
		}
	}
}
