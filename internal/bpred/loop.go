package bpred

// Loop predictor: detects conditional branches with a constant trip count
// and predicts the loop exit exactly, as the L component of TAGE-SC-L.
// Entries track the trip count observed at retirement (pastIter) and a
// speculative iteration counter advanced at prediction time. A flush
// restores the speculative counter from the per-branch checkpoint value.

const (
	loopEntries = 128
	loopTagBits = 10
	loopConfMax = 3
)

type loopEntry struct {
	tag      uint16
	pastIter uint16 // confirmed trip count
	specIter uint16 // speculative iteration (advance at predict)
	retIter  uint16 // iteration counter advanced at retire
	conf     uint8
	age      uint8
}

type loopPred struct {
	entries [loopEntries]loopEntry
	// useLoop is a chooser: the loop prediction overrides TAGE only while
	// it has been winning (as in TAGE-SC-L's WITHDRAW mechanism).
	useLoop int8
}

// loopMinTrip is the smallest trip count worth predicting; shorter "loops"
// are noise that TAGE handles better.
const loopMinTrip = 4

func loopIndex(pc uint64) (int, uint16) {
	idx := int(pc>>2) & (loopEntries - 1)
	tag := uint16(pc>>(2+7)) & (1<<loopTagBits - 1)
	return idx, tag
}

// predict fills the loop context in ctx. A hit with high confidence predicts
// "taken" until specIter reaches pastIter, then "not taken" (loop exit).
// The convention assumes backward loop branches are taken to iterate.
func (l *loopPred) predict(pc uint64, ctx *CondCtx) {
	idx, tag := loopIndex(pc)
	e := &l.entries[idx]
	ctx.loopIdx = idx
	if e.tag != tag || e.conf < loopConfMax || e.pastIter < loopMinTrip {
		ctx.loopHit = false
		return
	}
	ctx.loopHit = true
	ctx.loopSpec = e.specIter
	ctx.loopPred = e.specIter+1 < e.pastIter
	if l.useLoop >= 0 {
		ctx.Pred = ctx.loopPred
	}
	// Advance speculative iteration; wrap on predicted exit.
	if e.specIter+1 >= e.pastIter {
		e.specIter = 0
	} else {
		e.specIter++
	}
}

// restore rewinds the speculative iteration counter for the entry used by a
// flushed branch. Counters of other entries self-correct via confidence.
func (l *loopPred) restore(ctx *CondCtx) {
	if ctx.loopHit {
		l.entries[ctx.loopIdx].specIter = ctx.loopSpec
	}
}

// update trains the loop table at retirement.
func (l *loopPred) update(ctx *CondCtx, taken bool) {
	idx, tag := loopIndex(ctx.PC)
	e := &l.entries[idx]
	if e.tag != tag {
		// Allocate when the current occupant has aged out.
		if e.age > 0 {
			e.age--
			return
		}
		*e = loopEntry{tag: tag, age: 7}
		if taken {
			e.retIter = 1
		}
		return
	}
	if taken {
		e.retIter++
		if e.retIter == 0 { // overflow: not a countable loop
			e.conf = 0
			e.pastIter = 0
		}
		if ctx.loopHit && ctx.loopPred && e.age < 7 {
			e.age++
		}
		return
	}
	// Loop exit: compare trip count with the recorded one.
	trip := e.retIter + 1
	if trip == e.pastIter {
		if e.conf < loopConfMax {
			e.conf++
		}
	} else {
		e.pastIter = trip
		e.conf = 0
		e.specIter = 0
	}
	e.retIter = 0
	// If the predictor was used and wrong, decay quickly.
	if ctx.loopHit && ctx.loopPred != taken {
		e.conf = 0
		e.age = 0
		e.specIter = 0
	}
}

// train adjusts the loop-vs-TAGE chooser; call once per retired conditional
// branch that had a confident loop prediction.
func (l *loopPred) train(ctx *CondCtx, taken bool) {
	if !ctx.loopHit || ctx.loopPred == ctx.TagePred {
		return
	}
	if ctx.loopPred == taken {
		if l.useLoop < 7 {
			l.useLoop++
		}
	} else if l.useLoop > -8 {
		l.useLoop -= 2
	}
}
