package bpred

import (
	"testing"

	"teasim/internal/isa"
)

// BenchmarkPredictTrainLoop measures the full per-branch predictor cost
// (predict + train, occasional recover) — the hot path of the decoupled
// frontend.
func BenchmarkPredictTrainLoop(b *testing.B) {
	p := New()
	in := &isa.Inst{Op: isa.OpBne, Imm: 0x2000}
	rng := uint32(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		taken := rng&7 == 0
		pred := p.Predict(0x1000)
		if (pred.BTBHit && pred.Taken) != taken {
			p.Recover(&pred, in, taken, 0x2000)
		}
		p.Train(&pred, in, taken, 0x2000)
	}
}

// BenchmarkHistoryPush measures speculative history maintenance (one push
// updates every registered folded view).
func BenchmarkHistoryPush(b *testing.B) {
	p := New() // registers all TAGE/ITTAGE/SC folds
	h := p.Hist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(i&3 == 0)
	}
}

// BenchmarkCheckpointSaveRestore measures flush-recovery cost.
func BenchmarkCheckpointSaveRestore(b *testing.B) {
	p := New()
	h := p.Hist
	for i := 0; i < 100; i++ {
		h.Push(i&1 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck := h.Save()
		h.Push(true)
		h.Restore(&ck)
	}
}
