// Package bullseye implements the Bullseye companion: large dedicated
// tagged pattern tables, one per tracked H2P branch, trained at retirement
// from local branch history and consulted at fetch time through
// OverridePrediction (Behrendt et al. 2025). Unlike TEA it executes
// nothing — it trades storage (kilobytes of pattern table per branch) for
// accuracy on branches whose outcome stream is locally repetitive.
//
// Because the decoupled BP runs ahead of retirement, a fetch-time lookup
// must predict the branch several instances ahead of the last retired one.
// The predictor chains its own table: starting from the retired local
// history it predicts one step, shifts the predicted outcome into the
// history, and repeats for the in-flight depth (the count of fetched but
// not yet retired instances of the branch). The override is only offered
// when every step of the chain clears the confidence threshold.
package bullseye

import (
	"teasim/internal/companion"
	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
	"teasim/tea/spec"
)

// Config sizes the predictor (see spec.Bullseye for field semantics).
type Config struct {
	H2PSets        int
	H2PWays        int
	H2PDecayPeriod uint64

	TableEntries int
	HistBits     int
	MaxBranches  int

	ConfMax       int
	ConfThreshold int
}

// DefaultConfig mirrors spec.DefaultBullseye.
func DefaultConfig() Config {
	return Config{
		H2PSets: 32, H2PWays: 8, H2PDecayPeriod: 50_000,
		TableEntries: 4096, HistBits: 24, MaxBranches: 64,
		ConfMax: 8, ConfThreshold: 4,
	}
}

// Stats counts predictor activity and the retired-misprediction
// classification (the shared Fig. 7 buckets).
type Stats struct {
	Allocs    uint64 // branch slots allocated
	Evictions uint64 // LRU slot evictions
	Overrides uint64 // fetch-time overrides offered

	Precomputed uint64 // retired branches carrying an override
	PreCorrect  uint64
	PreWrong    uint64

	CoveredMisp   uint64
	IncorrectMisp uint64 // override made a correct prediction wrong
	UncoveredMisp uint64
	CyclesSaved   uint64
}

// Accuracy returns the fraction of used overrides that were correct.
func (s *Stats) Accuracy() float64 {
	if s.Precomputed == 0 {
		return 1
	}
	return float64(s.PreCorrect) / float64(s.Precomputed)
}

// Coverage returns the fraction of would-be mispredictions fixed.
func (s *Stats) Coverage() float64 {
	total := s.CoveredMisp + s.IncorrectMisp + s.UncoveredMisp
	if total == 0 {
		return 0
	}
	return float64(s.CoveredMisp) / float64(total)
}

// patEnt is one tagged pattern-table entry: a signed saturating outcome
// counter in [-ConfMax, ConfMax] (positive = taken).
type patEnt struct {
	tag uint16
	ctr int16
}

// branchEnt is one tracked H2P branch: its retired local history and its
// dedicated pattern table.
type branchEnt struct {
	hist uint64
	tbl  []patEnt
	last uint64 // LRU tick
}

type popRec struct {
	seq uint64
	pc  uint64
}

// B is the Bullseye companion.
type B struct {
	Cfg  Config
	core *pipeline.Core

	h2p      *core.H2PTable
	branches map[uint64]*branchEnt
	lruTick  uint64

	// Instance accounting: inFlight counts the fetched-but-not-retired
	// instances per branch PC — the lookahead depth a fetch-time prediction
	// must chain across. The counters mirror specLog exactly (incremented on
	// append, decremented on retire-prune and flush-rewind), so they can
	// never drift no matter how fetches, retires, and flushes interleave.
	inFlight map[uint64]uint64
	specLog  []popRec

	retired   uint64
	nextDecay uint64

	ivLast struct {
		covered, incorrect, uncovered uint64
		precomputed, preCorrect       uint64
	}

	Stats Stats
}

// New builds a Bullseye predictor and attaches it to the core.
func New(cfg Config, c *pipeline.Core) *B {
	h2pCfg := core.DefaultConfig()
	h2pCfg.H2PSets, h2pCfg.H2PWays = cfg.H2PSets, cfg.H2PWays
	b := &B{
		Cfg:       cfg,
		core:      c,
		h2p:       core.NewH2PTable(&h2pCfg),
		branches:  make(map[uint64]*branchEnt),
		inFlight:  make(map[uint64]uint64),
		nextDecay: cfg.H2PDecayPeriod,
	}
	c.Attach(b)
	return b
}

func init() {
	companion.Register(spec.CompanionBullseye,
		func(s *spec.MachineSpec, c *pipeline.Core, _ companion.Options) (companion.Instance, error) {
			return bInstance{New(ConfigFromSpec(s.Companion.Bullseye), c)}, nil
		})
}

// ConfigFromSpec converts the spec's bullseye companion section.
func ConfigFromSpec(b *spec.Bullseye) Config {
	return Config{
		H2PSets:        b.H2PSets,
		H2PWays:        b.H2PWays,
		H2PDecayPeriod: b.H2PDecayPeriod,
		TableEntries:   b.TableEntries,
		HistBits:       b.HistBits,
		MaxBranches:    b.MaxBranches,
		ConfMax:        b.ConfMax,
		ConfThreshold:  b.ConfThreshold,
	}
}

// bInstance adapts Bullseye to the companion registry.
type bInstance struct{ b *B }

func (i bInstance) Metrics() companion.Metrics {
	s := &i.b.Stats
	m := companion.Metrics{
		Accuracy:  s.Accuracy(),
		Coverage:  s.Coverage(),
		Covered:   s.CoveredMisp,
		Incorrect: s.IncorrectMisp,
		Uncovered: s.UncoveredMisp,
	}
	if s.CoveredMisp > 0 {
		m.AvgCyclesSaved = float64(s.CyclesSaved) / float64(s.CoveredMisp)
	}
	return m
}

// slot hashes a (masked) history into the branch's pattern table, returning
// the entry and whether its tag matches.
func (b *B) slot(e *branchEnt, hist uint64) (*patEnt, bool) {
	h := hist & (uint64(1)<<uint(b.Cfg.HistBits) - 1)
	x := (h + 1) * 0x9E3779B97F4A7C15
	pe := &e.tbl[int(x>>24)&(len(e.tbl)-1)]
	return pe, pe.tag == uint16(x>>48)
}

// predictAhead chains the pattern table depth steps past the retired
// history, feeding each predicted outcome back into the history. Any tag
// miss or low-confidence step along the chain abstains.
func (b *B) predictAhead(e *branchEnt, depth uint64) (taken, ok bool) {
	hist := e.hist
	for i := uint64(0); i < depth; i++ {
		pe, hit := b.slot(e, hist)
		if !hit {
			return false, false
		}
		c := int(pe.ctr)
		if c < 0 {
			c = -c
		}
		if c < b.Cfg.ConfThreshold {
			return false, false
		}
		taken = pe.ctr > 0
		hist = hist << 1
		if taken {
			hist |= 1
		}
	}
	return taken, true
}

// train updates the pattern table at the retired history with the actual
// outcome and shifts the outcome into the history.
func (b *B) train(e *branchEnt, taken bool) {
	pe, hit := b.slot(e, e.hist)
	if !hit {
		h := (e.hist&(uint64(1)<<uint(b.Cfg.HistBits)-1) + 1) * 0x9E3779B97F4A7C15
		pe.tag, pe.ctr = uint16(h>>48), 0
	}
	if taken {
		if int(pe.ctr) < b.Cfg.ConfMax {
			pe.ctr++
		}
	} else {
		if int(pe.ctr) > -b.Cfg.ConfMax {
			pe.ctr--
		}
	}
	e.hist = e.hist << 1
	if taken {
		e.hist |= 1
	}
}

// alloc claims a branch slot, evicting the LRU one at capacity.
func (b *B) alloc(pc uint64) *branchEnt {
	if len(b.branches) >= b.Cfg.MaxBranches {
		var victim uint64
		var oldest uint64 = ^uint64(0)
		for vpc, ve := range b.branches {
			if ve.last < oldest {
				oldest, victim = ve.last, vpc
			}
		}
		delete(b.branches, victim)
		b.Stats.Evictions++
	}
	e := &branchEnt{tbl: make([]patEnt, b.Cfg.TableEntries)}
	b.branches[pc] = e
	b.Stats.Allocs++
	return e
}

// --- Companion interface ---

// OnBlock is unused.
func (b *B) OnBlock(*pipeline.FetchBlock) {}

// OnMainFetch is unused.
func (b *B) OnMainFetch(*pipeline.Uop) {}

// OverridePrediction counts this dynamic instance and, when the chained
// table lookup clears the confidence threshold at the instance's in-flight
// depth, overrides TAGE.
func (b *B) OverridePrediction(pc uint64, seq uint64) (bool, bool) {
	e := b.branches[pc]
	if e == nil {
		return false, false
	}
	b.inFlight[pc]++
	b.specLog = append(b.specLog, popRec{seq: seq, pc: pc})
	// This instance included: the first tracked in-flight instance is one
	// step past the retired history.
	depth := b.inFlight[pc]
	taken, ok := b.predictAhead(e, depth)
	if ok {
		b.Stats.Overrides++
	}
	return taken, ok
}

// OnRetire trains the pattern tables and the H2P filter, keeps the instance
// counters aligned, and classifies override outcomes.
func (b *B) OnRetire(u *pipeline.Uop) {
	b.retired++
	if b.retired >= b.nextDecay {
		b.nextDecay += b.Cfg.H2PDecayPeriod
		b.h2p.Decay()
	}

	// Prune the speculative-instance log: retired branches can no longer be
	// rewound by a flush, and they leave the in-flight window.
	if len(b.specLog) > 0 {
		cut := 0
		for cut < len(b.specLog) && b.specLog[cut].seq <= u.Seq {
			b.inFlight[b.specLog[cut].pc]--
			cut++
		}
		b.specLog = b.specLog[cut:]
	}

	if !u.In.IsBranch() || u.Rec == nil {
		return
	}
	if u.In.IsCondBranch() {
		e := b.branches[u.PC]
		if e == nil && b.h2p.IsH2P(u.PC) {
			e = b.alloc(u.PC)
		}
		if e != nil {
			b.lruTick++
			e.last = b.lruTick
			b.train(e, u.Rec.ActualTaken)
		}
	}
	b.accountBranch(u.Rec)
	if wouldMispredict(u.Rec) {
		b.h2p.RecordMispredict(u.PC)
	}
}

// wouldMispredict reports whether the underlying TAGE prediction (before
// any override) disagreed with the actual outcome.
func wouldMispredict(rec *pipeline.BranchRec) bool {
	if !rec.Pred.BTBHit || !rec.In.IsCondBranch() {
		return rec.WasMispred
	}
	return rec.Pred.Cond.Pred != rec.ActualTaken
}

// accountBranch classifies the override outcome against the would-be TAGE
// prediction, mirroring the TEA coverage categories.
func (b *B) accountBranch(rec *pipeline.BranchRec) {
	if !rec.In.IsCondBranch() {
		if rec.WasMispred {
			b.Stats.UncoveredMisp++
		}
		return
	}
	tageWrong := wouldMispredict(rec)
	if rec.Precomputed {
		b.Stats.Precomputed++
		if rec.PreTaken == rec.ActualTaken {
			b.Stats.PreCorrect++
			if tageWrong {
				b.Stats.CoveredMisp++
				// A fetch-time override removes the full penalty (§II-C).
				b.Stats.CyclesSaved += 15
			}
		} else {
			b.Stats.PreWrong++
			if !tageWrong {
				b.Stats.IncorrectMisp++
			} else {
				b.Stats.UncoveredMisp++
			}
		}
		return
	}
	if tageWrong {
		b.Stats.UncoveredMisp++
	}
}

// OnFlush rewinds the speculative instance counts for squashed instances.
// Tables and histories hold retired state only, so they survive untouched.
func (b *B) OnFlush(seq uint64, branchRenamed bool) {
	for len(b.specLog) > 0 {
		last := b.specLog[len(b.specLog)-1]
		if last.seq <= seq {
			break
		}
		b.inFlight[last.pc]--
		b.specLog = b.specLog[:len(b.specLog)-1]
	}
}

// Tick is a no-op: Bullseye has no per-cycle engine — all work happens in
// the fetch and retire hooks.
func (b *B) Tick() {}

// OnInterval annotates a telemetry sample with the predictor's per-interval
// override coverage and accuracy.
func (b *B) OnInterval(iv *telemetry.Interval) {
	s := &b.Stats
	last := &b.ivLast
	dCov := s.CoveredMisp - last.covered
	dInc := s.IncorrectMisp - last.incorrect
	dUnc := s.UncoveredMisp - last.uncovered
	if total := dCov + dInc + dUnc; total > 0 {
		iv.Coverage = float64(dCov) / float64(total)
	}
	if dPre := s.Precomputed - last.precomputed; dPre > 0 {
		iv.Accuracy = float64(s.PreCorrect-last.preCorrect) / float64(dPre)
	} else {
		iv.Accuracy = 1
	}
	last.covered, last.incorrect, last.uncovered = s.CoveredMisp, s.IncorrectMisp, s.UncoveredMisp
	last.precomputed, last.preCorrect = s.Precomputed, s.PreCorrect
}

// Quiescent implements the idle-skip contract: Tick is a pure no-op, so the
// predictor is always quiescent and never self-schedules a wake (fetches
// and retires end idle windows on their own).
func (b *B) Quiescent(uint64) (bool, uint64) { return true, 0 }

// OnSkip is a no-op: there is no per-cycle bookkeeping.
func (b *B) OnSkip(uint64) {}

// The backend hooks are unused: Bullseye never inserts uops.
func (b *B) LoadValue(uint64, int) (uint64, bool)       { return 0, false }
func (b *B) OlderStorePending(uint64) bool              { return false }
func (b *B) StoreExec(uint64, uint64, int)              {}
func (b *B) BranchResolved(*pipeline.Uop, bool, uint64) {}
func (b *B) UopExecuted(*pipeline.Uop)                  {}
func (b *B) UopSquashed(*pipeline.Uop)                  {}
func (b *B) PrecomputationWrong(uint64)                 {}
