package bullseye

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
)

// buildLoopKernel emits a loop with a data-dependent branch (same shape as
// the runahead kernel): Bullseye's target when the outcome stream repeats.
func buildLoopKernel(b *asm.Builder, n int, data []uint64, filler int) {
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)
	b.Li(isa.R10, 0)
	b.Li(isa.R11, 50)
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Blt(isa.R5, isa.R11, "skip")
	b.Add(isa.R10, isa.R10, isa.R5)
	for k := 0; k < filler; k++ {
		b.AddI(isa.R12, isa.R10, int64(k))
		b.Xor(isa.R13, isa.R12, isa.R10)
	}
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
}

// periodicData repeats a pseudo-random block of the given period: beyond a
// weak global predictor's reach but exactly what a large dedicated
// pattern table memorizes from local history.
func periodicData(n, period int, seed uint64) []uint64 {
	pat := make([]uint64, period)
	rng := seed
	for i := range pat {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		pat[i] = rng % 100
	}
	data := make([]uint64, n)
	for i := range data {
		data[i] = pat[i%period]
	}
	return data
}

// testConfig sizes the pattern table for the unit kernel: large enough that
// a period-sized history set doesn't thrash the tagged entries.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TableEntries = 16384
	cfg.HistBits = 20
	return cfg
}

// run simulates the kernel with co-sim enabled, with a deliberately
// shortened TAGE (4 tables) so the periodic pattern actually mispredicts —
// the unit under test is Bullseye's mechanics, not a predictor shootout.
func run(t *testing.T, attach bool, build func(b *asm.Builder)) (*pipeline.Core, *B) {
	t.Helper()
	bld := asm.NewBuilder()
	build(bld)
	p := bld.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	cfg.BP.TageTables = 4
	cfg.BP.TageHistLens = nil
	c := pipeline.New(cfg, p)
	var by *B
	if attach {
		by = New(testConfig(), c)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c, by
}

func TestBullseyeLearnsPeriodicPattern(t *testing.T) {
	n := 30000
	data := periodicData(n, 1000, 42)
	_, by := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 16) })
	if by.Stats.Allocs == 0 {
		t.Fatal("no H2P branch allocated a pattern table")
	}
	if by.Stats.Overrides == 0 {
		t.Fatal("no predictions overridden")
	}
	if acc := by.Stats.Accuracy(); acc < 0.85 {
		t.Fatalf("override accuracy = %.3f, want >= 0.85", acc)
	}
	t.Logf("allocs=%d evictions=%d overrides=%d acc=%.3f cov=%.3f",
		by.Stats.Allocs, by.Stats.Evictions, by.Stats.Overrides,
		by.Stats.Accuracy(), by.Stats.Coverage())
}

func TestBullseyeImprovesMPKI(t *testing.T) {
	n := 30000
	data := periodicData(n, 1000, 7)
	build := func(b *asm.Builder) { buildLoopKernel(b, n, data, 16) }
	base, _ := run(t, false, build)
	byC, by := run(t, true, build)
	t.Logf("baseline=%d bullseye=%d mpkiBase=%.2f mpkiBy=%.2f cov=%.3f",
		base.Stats.Cycles, byC.Stats.Cycles, base.Stats.MPKI(), byC.Stats.MPKI(),
		by.Stats.Coverage())
	// Correct fetch-time overrides remove mispredictions entirely.
	if byC.Stats.MPKI() >= base.Stats.MPKI() {
		t.Fatalf("MPKI did not improve: %.2f -> %.2f", base.Stats.MPKI(), byC.Stats.MPKI())
	}
	if byC.Stats.Cycles >= base.Stats.Cycles {
		t.Fatalf("no speedup: %d -> %d cycles", base.Stats.Cycles, byC.Stats.Cycles)
	}
}

func TestBullseyeAbstainsOnRandomData(t *testing.T) {
	// Truly random outcomes: the confidence threshold must keep Bullseye
	// from spraying coin-flip overrides (a few low-confidence slips are
	// fine; systematic overriding is not).
	n := 30000
	rng := uint64(99)
	data := make([]uint64, n)
	for i := range data {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		data[i] = rng % 100
	}
	_, by := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 16) })
	if by.Stats.Precomputed > uint64(n/10) {
		t.Fatalf("overrode %d of %d random branches; confidence gate broken",
			by.Stats.Precomputed, n)
	}
}

func TestBullseyeSpecLogRewindOnFlush(t *testing.T) {
	// Instance counting must survive heavy flushing without drifting.
	n := 30000
	data := periodicData(n, 1000, 321)
	_, by := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 4) })
	// The in-flight counters must mirror the speculative-instance log
	// exactly: any divergence means a flush rewind or retire prune lost an
	// instance, which is how depth drift (and the predictAhead blow-up it
	// causes) starts.
	logged := map[uint64]uint64{}
	for _, rec := range by.specLog {
		logged[rec.pc]++
	}
	for pc, n := range by.inFlight {
		if n != logged[pc] {
			t.Fatalf("pc %#x: inFlight %d but specLog holds %d entries", pc, n, logged[pc])
		}
		if n > 4096 {
			t.Fatalf("pc %#x: in-flight count %d is unbounded", pc, n)
		}
	}
	for pc, n := range logged {
		if by.inFlight[pc] != n {
			t.Fatalf("pc %#x: specLog holds %d entries but inFlight = %d", pc, n, by.inFlight[pc])
		}
	}
}

func TestBullseyeLRUEviction(t *testing.T) {
	// More H2P branches than MaxBranches forces LRU eviction, and instance
	// accounting must survive the eviction/reallocation cycle (co-sim is on,
	// so committed state stays exact regardless).
	n := 8000
	data := periodicData(n, 500, 5)
	bld := asm.NewBuilder()
	const base = 0x200000
	bld.DataU64(base, data)
	bld.Label("main")
	bld.LiU(isa.R1, base)
	bld.Li(isa.R2, int64(n))
	bld.Li(isa.R3, 0)
	bld.Li(isa.R11, 50)
	bld.Label("loop")
	bld.ShlI(isa.R4, isa.R3, 3)
	bld.Add(isa.R4, isa.R1, isa.R4)
	bld.Ld(isa.R5, isa.R4, 0)
	// Four data-dependent branches off the same load: four H2P sites
	// competing for two slots.
	bld.Blt(isa.R5, isa.R11, "s1")
	bld.AddI(isa.R12, isa.R5, 1)
	bld.Label("s1")
	bld.Bge(isa.R5, isa.R11, "s2")
	bld.AddI(isa.R13, isa.R5, 2)
	bld.Label("s2")
	bld.Beq(isa.R5, isa.R11, "s3")
	bld.AddI(isa.R14, isa.R5, 3)
	bld.Label("s3")
	bld.Bne(isa.R5, isa.R11, "s4")
	bld.AddI(isa.R15, isa.R5, 4)
	bld.Label("s4")
	bld.AddI(isa.R3, isa.R3, 1)
	bld.Blt(isa.R3, isa.R2, "loop")
	bld.Halt()
	p := bld.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	cfg.BP.TageTables = 4
	cfg.BP.TageHistLens = nil
	c := pipeline.New(cfg, p)
	byCfg := testConfig()
	byCfg.MaxBranches = 2
	by := New(byCfg, c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	if by.Stats.Allocs == 0 {
		t.Fatal("no allocations")
	}
	if by.Stats.Evictions == 0 {
		t.Fatal("four H2P branches in two slots never evicted")
	}
	t.Logf("allocs=%d evictions=%d", by.Stats.Allocs, by.Stats.Evictions)
}
