// Package faultinject is the chaos-injection harness compiled into
// cmd/teaworker: a small registry of named fault points, armed from an
// environment variable, that lets the fabric's robustness tests drive *real*
// failures — a worker SIGKILLed mid-shard, a journal line torn in half by a
// crash, a simulation that wedges, a heartbeat that stops arriving — instead
// of mocked ones.
//
// Fault points are armed with TEASIM_FAULTS, a comma-separated list of
//
//	point[@worker][:nth]
//
// where point names a fault site (see the catalog below), @worker restricts
// the fault to the fabric worker whose TEASIM_WORKER_ID matches (omitted =
// every worker), and :nth fires the fault on the nth hit of the point
// (omitted = the first). Each armed fault fires exactly once.
//
// The catalog of points the worker consults (DESIGN.md §16):
//
//	crash-on-shard       SIGKILL self as soon as a shard arrives
//	stall                wedge forever before simulating a cell (heartbeat
//	                     frames keep flowing but beats stop advancing)
//	delay-heartbeat      stop sending heartbeat frames while a cell runs
//	torn-journal         write half of a journal line, fsync, SIGKILL self
//	                     (crash-mid-journal-write: a real torn tail)
//	crash-before-result  SIGKILL self after simulating (and journaling) a
//	                     cell but before reporting its result
//
// A nil *Injector is valid and never fires, so production binaries pay one
// nil check per fault site.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// EnvFaults is the environment variable naming the armed fault points.
const EnvFaults = "TEASIM_FAULTS"

// EnvWorkerID is the environment variable carrying the fabric worker's index
// (set by the coordinator when it spawns the process).
const EnvWorkerID = "TEASIM_WORKER_ID"

// point is one armed fault.
type point struct {
	nth  int // fire on the nth hit (1-based)
	hits int
	done bool
}

// Injector holds the armed fault points for this process. Safe for
// concurrent use; the zero value (and nil) never fires.
type Injector struct {
	mu     sync.Mutex
	points map[string]*point
	die    func()
}

// Parse arms an injector from a TEASIM_FAULTS-syntax spec, keeping only the
// faults addressed to workerID (or to every worker). An empty spec returns
// nil: nothing armed, zero overhead.
func Parse(spec string, workerID int) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{points: make(map[string]*point)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name := part
		nth := 1
		if i := strings.IndexByte(name, ':'); i >= 0 {
			n, err := strconv.Atoi(name[i+1:])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: bad trigger count in %q", part)
			}
			nth = n
			name = name[:i]
		}
		if i := strings.IndexByte(name, '@'); i >= 0 {
			id, err := strconv.Atoi(name[i+1:])
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad worker selector in %q", part)
			}
			name = name[:i]
			if id != workerID {
				continue // armed for a different worker
			}
		}
		if name == "" {
			return nil, fmt.Errorf("faultinject: empty fault point in %q", part)
		}
		in.points[name] = &point{nth: nth}
	}
	if len(in.points) == 0 {
		return nil, nil
	}
	return in, nil
}

// FromEnv arms an injector from TEASIM_FAULTS / TEASIM_WORKER_ID. A bad spec
// is reported on stderr and ignored (a chaos harness must never break a
// production run that forgot to unset the variable cleanly).
func FromEnv() *Injector {
	spec := os.Getenv(EnvFaults)
	if spec == "" {
		return nil
	}
	id, _ := strconv.Atoi(os.Getenv(EnvWorkerID))
	in, err := Parse(spec, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultinject: ignoring %s: %v\n", EnvFaults, err)
		return nil
	}
	return in
}

// Fire reports whether the named point triggers on this hit, consuming the
// trigger: each armed point fires exactly once, on its nth hit.
func (in *Injector) Fire(name string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.points[name]
	if p == nil || p.done {
		return false
	}
	p.hits++
	if p.hits < p.nth {
		return false
	}
	p.done = true
	return true
}

// Armed reports whether the named point is armed and not yet fired, without
// consuming a hit.
func (in *Injector) Armed(name string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.points[name]
	return p != nil && !p.done
}

// Crash fires the named point and, when triggered, kills the process (see
// Die) — the same uncatchable death as `kill -9`, so nothing downstream
// (defers, journal syncs, result frames) runs.
func (in *Injector) Crash(name string) {
	if in.Fire(name) {
		in.Die()
	}
}

// SetDie overrides how this injector's crash points die. A test seam:
// in-process chaos tests (tea/fabric) run simulated workers as goroutines of
// the test binary, and a real SIGKILL would take the whole test down — the
// override severs the fake worker's pipes and exits its goroutine instead.
// Production workers never call this.
func (in *Injector) SetDie(fn func()) {
	in.mu.Lock()
	in.die = fn
	in.mu.Unlock()
}

// Die kills the current worker: the SetDie override if installed, else a
// process SIGKILL. Exposed for fault sites that do their damage before dying
// (torn-journal writes half a line first).
func (in *Injector) Die() {
	var fn func()
	if in != nil {
		in.mu.Lock()
		fn = in.die
		in.mu.Unlock()
	}
	if fn != nil {
		fn()
		return
	}
	Die()
}

// Stall fires the named point and, when triggered, wedges the calling
// goroutine forever — the canonical hung-simulation fault.
func (in *Injector) Stall(name string) {
	if in.Fire(name) {
		select {}
	}
}

// Die SIGKILLs the current process. Exposed for fault sites that need to do
// their damage first (torn-journal writes half a line, then dies).
func Die() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL delivery can race the return; make death certain.
	time.Sleep(10 * time.Second)
	os.Exit(137)
}
