package faultinject

import "testing"

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", ","} {
		in, err := Parse(spec, 0)
		if err != nil || in != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire("crash-before-result") || in.Armed("stall") {
		t.Error("nil injector fired")
	}
	in.Crash("crash-before-result") // must not kill the test process
	in.Stall("stall")               // must not wedge the test
}

func TestFireOnNthHitExactlyOnce(t *testing.T) {
	in, err := Parse("torn-journal:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if in.Fire("torn-journal") {
			t.Fatalf("fired on hit %d, want hit 3", i)
		}
	}
	if !in.Armed("torn-journal") {
		t.Fatal("point disarmed before firing")
	}
	if !in.Fire("torn-journal") {
		t.Fatal("did not fire on hit 3")
	}
	if in.Fire("torn-journal") || in.Armed("torn-journal") {
		t.Error("point fired twice")
	}
}

func TestWorkerSelector(t *testing.T) {
	in, err := Parse("crash-before-result@1:2,stall@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Armed("stall") {
		t.Error("worker 1 armed a fault addressed to worker 2")
	}
	if !in.Armed("crash-before-result") {
		t.Error("worker 1 did not arm its own fault")
	}
	// A spec whose every fault is addressed elsewhere arms nothing.
	if in2, err := Parse("stall@7", 1); err != nil || in2 != nil {
		t.Errorf("foreign-only spec: got %v, %v; want nil, nil", in2, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"stall:0", "stall:x", "stall@y", ":2"} {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

func TestUnknownPointNeverFires(t *testing.T) {
	in, err := Parse("stall", 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Fire("crash-on-shard") {
		t.Error("unarmed point fired")
	}
}
