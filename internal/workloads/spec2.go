package workloads

import (
	"math"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

// SPEC-CPU2017-like kernels, part 2: deepsjeng, leela, exchange2, xz, nab.

// --- deepsjeng ---

// Deepsjeng is a transposition-table / alpha-beta-flavoured kernel: hashed
// position probes with hit/miss and score-window branches that depend on
// pseudo-random search state.
func Deepsjeng() Workload {
	const tblBits = 12
	build := func(scale int) *isa.Program {
		iters := specIters(scale, 40) * 8192
		b := asm.NewBuilder()
		l := newLayout()
		keys := l.words(1 << tblBits)
		vals := l.words(1 << tblBits)

		b.Label("main")
		b.LiU(isa.R1, keys)
		b.LiU(isa.R2, vals)
		b.Li(isa.R3, 0xDEE95E19) // rng / position
		b.Li(isa.R20, 0)         // alpha
		b.Li(isa.R21, 0)         // hits
		b.Li(isa.R22, 0)         // prunes
		b.Li(isa.R23, 0)         // i
		b.Li(isa.R24, int64(iters))
		b.Label("loop")
		emitXorshift(b, isa.R3, isa.R28)
		// h = pos * golden; idx = h >> (64-tblBits)
		b.Li(isa.R10, -0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
		b.Mul(isa.R4, isa.R3, isa.R10)
		b.ShrI(isa.R5, isa.R4, 64-tblBits) // idx
		idx(b, isa.R6, isa.R1, isa.R5)
		b.Ld(isa.R7, isa.R6, 0)      // stored key
		b.Beq(isa.R7, isa.R4, "hit") // H2P: table hit?
		// miss: score = h & 1023 - 512; store entry
		b.St(isa.R6, 0, isa.R4)
		b.AndI(isa.R8, isa.R4, 1023)
		b.AddI(isa.R8, isa.R8, -512)
		idx(b, isa.R9, isa.R2, isa.R5)
		b.St(isa.R9, 0, isa.R8)
		b.Jmp("score")
		b.Label("hit")
		b.AddI(isa.R21, isa.R21, 1)
		idx(b, isa.R9, isa.R2, isa.R5)
		b.Ld(isa.R8, isa.R9, 0)
		b.Label("score")
		// alpha-beta window update (data-dependent branch ladder)
		b.Bge(isa.R20, isa.R8, "noraise") // H2P: score > alpha?
		b.Mov(isa.R20, isa.R8)
		b.Li(isa.R11, 400)
		b.Blt(isa.R20, isa.R11, "noraise") // beta cutoff
		b.AddI(isa.R22, isa.R22, 1)
		b.ShrI(isa.R20, isa.R20, 1) // window reset
		b.Label("noraise")
		// periodic alpha decay keeps the window active
		b.AndI(isa.R11, isa.R23, 63)
		b.Bnez(isa.R11, "next")
		b.AddI(isa.R20, isa.R20, -3)
		b.Label("next")
		b.AddI(isa.R23, isa.R23, 1)
		b.Blt(isa.R23, isa.R24, "loop")
		storeResult(b, 0, isa.R21)
		storeResult(b, 1, isa.R22)
		b.Li(isa.R10, 0)
		b.Add(isa.R10, isa.R20, isa.R0)
		storeResult(b, 2, isa.R10)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		iters := specIters(scale, 40) * 8192
		keys := make([]uint64, 1<<tblBits)
		vals := make([]uint64, 1<<tblBits)
		r := newRng(0)
		*r = rng(0xDEE95E19)
		var alpha int64
		var hits, prunes uint64
		for i := 0; i < iters; i++ {
			pos := r.next()
			h := pos * 0x9e3779b97f4a7c15
			idx := h >> (64 - tblBits)
			var score int64
			if keys[idx] == h {
				hits++
				score = int64(vals[idx])
			} else {
				keys[idx] = h
				score = int64(h&1023) - 512
				vals[idx] = uint64(score)
			}
			if score > alpha {
				alpha = score
				if alpha >= 400 {
					prunes++
					alpha >>= 1
				}
			}
			if i&63 == 0 {
				alpha -= 3
			}
		}
		return []uint64{hits, prunes, uint64(alpha)}
	}
	return Workload{Name: "deepsjeng", Flow: Complex, Build: build, Expected: expected}
}

// --- leela ---

// Leela is a Monte-Carlo-playout-flavoured kernel: random moves on a board
// with occupancy and liberty checks (data-dependent branch nest) and a
// floating-point UCT-style comparison for move selection.
func Leela() Workload {
	const bsize = 19
	const cells = bsize * bsize
	build := func(scale int) *isa.Program {
		moves := specIters(scale, 30) * 8192
		b := asm.NewBuilder()
		l := newLayout()
		board := l.words(cells)
		wins := l.words(4)
		visits := l.words(4)

		b.Label("main")
		b.LiU(isa.R1, board)
		b.LiU(isa.R2, wins)
		b.LiU(isa.R3, visits)
		b.Li(isa.R4, 0x1EE1A) // rng
		b.Li(isa.R20, 0)      // placed
		b.Li(isa.R21, 0)      // rejected
		b.Li(isa.R22, 0)      // move counter
		b.Li(isa.R23, int64(moves))
		// visits[i] = 1 to avoid div by zero
		b.Li(isa.R8, 0)
		b.Label("vinit")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Li(isa.R11, 1)
		b.St(isa.R10, 0, isa.R11)
		b.AddI(isa.R8, isa.R8, 1)
		b.SltI(isa.R11, isa.R8, 4)
		b.Bnez(isa.R11, "vinit")

		b.Label("move")
		emitXorshift(b, isa.R4, isa.R28)
		b.LiU(isa.R10, cells)
		b.Rem(isa.R5, isa.R4, isa.R10) // cell (rng state is "positive enough")
		b.Bge(isa.R5, isa.R0, "cellok")
		b.Add(isa.R5, isa.R5, isa.R10)
		b.Label("cellok")
		idx(b, isa.R6, isa.R1, isa.R5)
		b.Ld(isa.R7, isa.R6, 0)
		b.Bnez(isa.R7, "occupied") // H2P: cell occupied?
		// liberty check: count occupied orthogonal neighbours
		b.Li(isa.R9, 0)
		for d, off := range []int64{-1, 1, -bsize, bsize} {
			lbl := "nb" + string(rune('0'+d))
			b.AddI(isa.R11, isa.R5, off)
			b.Blt(isa.R11, isa.R0, lbl)
			b.Li(isa.R12, cells)
			b.Bge(isa.R11, isa.R12, lbl)
			idx(b, isa.R12, isa.R1, isa.R11)
			b.Ld(isa.R13, isa.R12, 0)
			b.Beqz(isa.R13, lbl)
			b.AddI(isa.R9, isa.R9, 1)
			b.Label(lbl)
		}
		b.SltI(isa.R10, isa.R9, 4)
		b.Beqz(isa.R10, "occupied") // suicide: all four taken
		// place stone: colour from move parity
		b.AndI(isa.R11, isa.R22, 1)
		b.AddI(isa.R11, isa.R11, 1)
		b.St(isa.R6, 0, isa.R11)
		b.AddI(isa.R20, isa.R20, 1)
		// UCT-ish bookkeeping on 4 arms: arm = cell & 3
		b.AndI(isa.R12, isa.R5, 3)
		idx(b, isa.R13, isa.R3, isa.R12)
		b.Ld(isa.R14, isa.R13, 0)
		b.AddI(isa.R14, isa.R14, 1)
		b.St(isa.R13, 0, isa.R14)
		idx(b, isa.R15, isa.R2, isa.R12)
		b.Ld(isa.R16, isa.R15, 0)
		b.AndI(isa.R17, isa.R4, 1)
		b.Add(isa.R16, isa.R16, isa.R17)
		b.St(isa.R15, 0, isa.R16)
		// fp compare: wins/visits > 0.5 → reward branch (H2P, fp)
		b.FCvt(isa.R16, isa.R16)
		b.FCvt(isa.R14, isa.R14)
		b.FDiv(isa.R16, isa.R16, isa.R14)
		b.Li(isa.R17, int64(math.Float64bits(0.5)))
		b.FLt(isa.R18, isa.R17, isa.R16)
		b.Beqz(isa.R18, "next")
		b.AddI(isa.R20, isa.R20, 1)
		b.Jmp("next")
		b.Label("occupied")
		b.AddI(isa.R21, isa.R21, 1)
		// periodic board clear keeps the game going
		b.AndI(isa.R11, isa.R21, 1023)
		b.Bnez(isa.R11, "next")
		b.Li(isa.R8, 0)
		b.Label("clear")
		idx(b, isa.R10, isa.R1, isa.R8)
		b.St(isa.R10, 0, isa.R0)
		b.AddI(isa.R8, isa.R8, 1)
		b.Li(isa.R10, cells)
		b.Blt(isa.R8, isa.R10, "clear")
		b.Label("next")
		b.AddI(isa.R22, isa.R22, 1)
		b.Blt(isa.R22, isa.R23, "move")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		moves := specIters(scale, 30) * 8192
		board := make([]uint64, cells)
		wins := make([]uint64, 4)
		visits := []uint64{1, 1, 1, 1}
		r := newRng(0)
		*r = rng(0x1EE1A)
		var placed, rejected uint64
		for mv := 0; mv < moves; mv++ {
			x := r.next()
			cell := int64(x) % cells
			if cell < 0 {
				cell += cells
			}
			if board[cell] != 0 {
				rejected++
				if rejected&1023 == 0 {
					for i := range board {
						board[i] = 0
					}
				}
				continue
			}
			occ := 0
			for _, off := range []int64{-1, 1, -bsize, bsize} {
				nb := cell + off
				if nb < 0 || nb >= cells {
					continue
				}
				if board[nb] != 0 {
					occ++
				}
			}
			if occ >= 4 {
				rejected++
				if rejected&1023 == 0 {
					for i := range board {
						board[i] = 0
					}
				}
				continue
			}
			board[cell] = uint64(mv&1) + 1
			placed++
			arm := cell & 3
			visits[arm]++
			wins[arm] += x & 1
			if 0.5 < float64(wins[arm])/float64(visits[arm]) {
				placed++
			}
		}
		return []uint64{placed, rejected}
	}
	return Workload{Name: "leela", Flow: Complex, Build: build, Expected: expected}
}

// --- exchange2 ---

// Exchange2 is a recursive backtracking kernel (N-queens with bitmask
// constraints): deep call/ret nesting with data-dependent pruning branches.
func Exchange2() Workload {
	build := func(scale int) *isa.Program {
		n := 8
		if scale >= 1 {
			n = 10
		}
		reps := 1
		if scale > 1 {
			reps = scale
		}
		b := asm.NewBuilder()

		b.Label("main")
		b.LiU(isa.SP, 0x800000)
		b.Li(isa.R20, 0) // solutions
		b.Li(isa.R26, int64(n))
		b.Li(isa.R27, int64(1<<n)-1) // full mask
		b.Li(isa.R25, 0)             // rep
		b.Li(isa.R24, int64(reps))
		b.Label("rep")
		b.Li(isa.R1, 0) // cols
		b.Li(isa.R2, 0) // diag1
		b.Li(isa.R3, 0) // diag2
		b.Call("solve")
		b.AddI(isa.R25, isa.R25, 1)
		b.Blt(isa.R25, isa.R24, "rep")
		storeResult(b, 0, isa.R20)
		b.Halt()

		// solve(cols=r1, d1=r2, d2=r3): standard bitmask queens.
		// avail = ~(cols|d1|d2) & full; iterate lowest set bits.
		b.Label("solve")
		b.Beq(isa.R1, isa.R27, "solved") // all columns used
		b.Or(isa.R4, isa.R1, isa.R2)
		b.Or(isa.R4, isa.R4, isa.R3)
		b.XorI(isa.R4, isa.R4, -1)
		b.And(isa.R4, isa.R4, isa.R27) // avail
		b.Label("try")
		b.Beqz(isa.R4, "return")
		// bit = avail & -avail
		b.Sub(isa.R5, isa.R0, isa.R4)
		b.And(isa.R5, isa.R4, isa.R5)
		b.Xor(isa.R4, isa.R4, isa.R5) // clear bit
		// push caller state (r1..r5, lr)
		b.AddI(isa.SP, isa.SP, -48)
		b.St(isa.SP, 0, isa.R1)
		b.St(isa.SP, 8, isa.R2)
		b.St(isa.SP, 16, isa.R3)
		b.St(isa.SP, 24, isa.R4)
		b.St(isa.SP, 32, isa.R5)
		b.St(isa.SP, 40, isa.LR)
		// recurse with (cols|bit, (d1|bit)<<1 & full, (d2|bit)>>1)
		b.Or(isa.R1, isa.R1, isa.R5)
		b.Or(isa.R2, isa.R2, isa.R5)
		b.ShlI(isa.R2, isa.R2, 1)
		b.And(isa.R2, isa.R2, isa.R27)
		b.Or(isa.R3, isa.R3, isa.R5)
		b.ShrI(isa.R3, isa.R3, 1)
		b.Call("solve")
		// pop
		b.Ld(isa.R1, isa.SP, 0)
		b.Ld(isa.R2, isa.SP, 8)
		b.Ld(isa.R3, isa.SP, 16)
		b.Ld(isa.R4, isa.SP, 24)
		b.Ld(isa.R5, isa.SP, 32)
		b.Ld(isa.LR, isa.SP, 40)
		b.AddI(isa.SP, isa.SP, 48)
		b.Jmp("try")
		b.Label("solved")
		b.AddI(isa.R20, isa.R20, 1)
		b.Label("return")
		b.Ret()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n := 8
		if scale >= 1 {
			n = 10
		}
		reps := 1
		if scale > 1 {
			reps = scale
		}
		full := uint64(1<<n) - 1
		var solve func(cols, d1, d2 uint64) uint64
		solve = func(cols, d1, d2 uint64) uint64 {
			if cols == full {
				return 1
			}
			var cnt uint64
			avail := ^(cols | d1 | d2) & full
			for avail != 0 {
				bit := avail & (-avail)
				avail ^= bit
				cnt += solve(cols|bit, ((d1|bit)<<1)&full, (d2|bit)>>1)
			}
			return cnt
		}
		return []uint64{solve(0, 0, 0) * uint64(reps)}
	}
	return Workload{Name: "exchange2", Flow: Complex, Build: build, Expected: expected}
}

// --- xz ---

// XZ is an LZ77 match-finder kernel: hash-chain candidate probing with
// byte-granular match-length loops — simple control flow (the paper
// classifies xz with the GAP kernels) but thoroughly data-dependent.
func XZ() Workload {
	const dataLen = 1 << 16
	const hashBits = 12
	genData := func() []byte {
		// 16 zero bytes of padding: match-length probes may read past the
		// scan region; both the µISA and the native model see those zeros.
		r := newRng(0x7A12)
		data := make([]byte, dataLen+16)
		// Mix of random bytes and repeated phrases (so matches exist).
		phrase := []byte("the_quick_brown_fox_jumps_over_the_lazy_dog_")
		i := 0
		for i < dataLen {
			if r.intn(4) == 0 && i+len(phrase) < dataLen {
				copy(data[i:], phrase)
				i += len(phrase)
			} else {
				data[i] = byte('a' + r.intn(16))
				i++
			}
		}
		return data
	}
	build := func(scale int) *isa.Program {
		passes := specIters(scale, 20)
		data := genData()
		b := asm.NewBuilder()
		l := newLayout()
		dataA := l.alloc(dataLen + 16)
		headA := l.words(1 << hashBits)
		b.Data(dataA, data)

		b.Label("main")
		b.LiU(isa.R1, dataA)
		b.LiU(isa.R2, headA)
		b.Li(isa.R20, 0) // matched bytes
		b.Li(isa.R21, 0) // literals
		b.Li(isa.R25, 0) // pass
		b.Li(isa.R24, int64(passes))
		b.Label("pass")
		// clear hash heads
		b.Li(isa.R8, 0)
		b.Li(isa.R9, 1<<hashBits)
		b.Label("clr")
		idx(b, isa.R10, isa.R2, isa.R8)
		b.Li(isa.R11, -1)
		b.St(isa.R10, 0, isa.R11)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "clr")
		b.Li(isa.R3, 0) // pos
		b.Li(isa.R4, dataLen-8)
		b.Label("scan")
		// h = (d0 | d1<<8 | d2<<16) * 2654435761 >> (32-hashBits) & mask
		b.Add(isa.R10, isa.R1, isa.R3)
		b.Ld4(isa.R5, isa.R10, 0)
		b.LiU(isa.R6, 0xFFFFFF)
		b.And(isa.R5, isa.R5, isa.R6)
		b.LiU(isa.R6, 2654435761)
		b.Mul(isa.R5, isa.R5, isa.R6)
		b.ShrI(isa.R5, isa.R5, 32-hashBits)
		b.LiU(isa.R6, (1<<hashBits)-1)
		b.And(isa.R5, isa.R5, isa.R6) // h
		idx(b, isa.R7, isa.R2, isa.R5)
		b.Ld(isa.R8, isa.R7, 0) // candidate pos
		b.St(isa.R7, 0, isa.R3) // head[h] = pos
		b.Li(isa.R11, -1)
		b.Beq(isa.R8, isa.R11, "literal") // H2P: chain empty?
		// match length loop (cap 16)
		b.Li(isa.R9, 0)
		b.Label("mlen")
		b.Add(isa.R10, isa.R1, isa.R3)
		b.Add(isa.R10, isa.R10, isa.R9)
		b.Ld1(isa.R12, isa.R10, 0)
		b.Add(isa.R10, isa.R1, isa.R8)
		b.Add(isa.R10, isa.R10, isa.R9)
		b.Ld1(isa.R13, isa.R10, 0)
		b.Bne(isa.R12, isa.R13, "mdone") // H2P: byte compare
		b.AddI(isa.R9, isa.R9, 1)
		b.SltI(isa.R10, isa.R9, 16)
		b.Bnez(isa.R10, "mlen")
		b.Label("mdone")
		b.SltI(isa.R10, isa.R9, 4)
		b.Bnez(isa.R10, "literal") // H2P: long enough?
		b.Add(isa.R20, isa.R20, isa.R9)
		b.Add(isa.R3, isa.R3, isa.R9) // skip matched bytes
		b.Jmp("cont")
		b.Label("literal")
		b.AddI(isa.R21, isa.R21, 1)
		b.AddI(isa.R3, isa.R3, 1)
		b.Label("cont")
		b.Blt(isa.R3, isa.R4, "scan")
		b.AddI(isa.R25, isa.R25, 1)
		b.Blt(isa.R25, isa.R24, "pass")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		passes := specIters(scale, 20)
		data := genData()
		var matched, literals uint64
		for p := 0; p < passes; p++ {
			head := make([]int64, 1<<hashBits)
			for i := range head {
				head[i] = -1
			}
			pos := int64(0)
			for pos < dataLen-8 {
				trigram := uint64(data[pos]) | uint64(data[pos+1])<<8 | uint64(data[pos+2])<<16
				h := (trigram * 2654435761) >> (32 - hashBits) & ((1 << hashBits) - 1)
				cand := head[h]
				head[h] = pos
				if cand == -1 {
					literals++
					pos++
					continue
				}
				mlen := int64(0)
				for mlen < 16 && data[pos+mlen] == data[cand+mlen] {
					mlen++
				}
				if mlen < 4 {
					literals++
					pos++
					continue
				}
				matched += uint64(mlen)
				pos += mlen
			}
		}
		return []uint64{matched, literals}
	}
	return Workload{Name: "xz", Flow: Simple, Build: build, Expected: expected}
}

// --- nab ---

// NAB is a molecular-dynamics-flavoured kernel: a cache-resident decision
// array drives a data-dependent cutoff branch (a short, fast dependence
// chain), and each accepted pair performs scattered floating-point loads
// over a multi-megabyte coordinate set. Resolving the branch early lets the
// correct-path long-latency loads issue sooner — the paper's "many long
// latency loads in the shadow of a few H2P branches".
func NAB() Workload {
	build := func(scale int) *isa.Program {
		n := 1 << 17 // 3 MB of coordinates: well beyond the LLC
		pairs := 1 << 16
		if scale <= 0 {
			n = 1 << 12
			pairs = 1 << 12
		}
		r := newRng(0x4AB)
		xs := make([]float64, n)
		ys := make([]float64, n)
		zs := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(r.intn(1000)) / 10
			ys[i] = float64(r.intn(1000)) / 10
			zs[i] = float64(r.intn(1000)) / 10
		}
		key := make([]uint64, pairs)
		iIdx := make([]uint64, pairs)
		jIdx := make([]uint64, pairs)
		for k := 0; k < pairs; k++ {
			key[k] = r.next() & 255
			iIdx[k] = uint64(r.intn(n))
			jIdx[k] = uint64(r.intn(n))
		}
		b := asm.NewBuilder()
		l := newLayout()
		xA := l.words(n)
		yA := l.words(n)
		zA := l.words(n)
		kA := l.words(pairs)
		iA := l.words(pairs)
		jA := l.words(pairs)
		b.DataF64(xA, xs)
		b.DataF64(yA, ys)
		b.DataF64(zA, zs)
		b.DataU64(kA, key)
		b.DataU64(iA, iIdx)
		b.DataU64(jA, jIdx)

		b.Label("main")
		b.LiU(isa.R1, xA)
		b.LiU(isa.R2, yA)
		b.LiU(isa.R3, zA)
		b.LiU(isa.R4, kA)
		b.LiU(isa.R5, iA)
		b.LiU(isa.R15, jA)
		b.Li(isa.R9, int64(pairs))
		b.Li(isa.R20, 0) // energy (f64 bits, 0.0)
		b.Li(isa.R21, 0) // accepted pairs
		b.Li(isa.R8, 0)  // k
		b.Label("ploop")
		// Decision chain: cache-resident key load + threshold compare.
		idx(b, isa.R10, isa.R4, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.SltI(isa.R12, isa.R11, 104) // ~40% accept rate, data-dependent
		b.Beqz(isa.R12, "pnext")      // H2P guarding the expensive body
		// Guarded body: scattered coordinate loads (LLC/DRAM) + FP.
		idx(b, isa.R10, isa.R5, isa.R8)
		b.Ld(isa.R6, isa.R10, 0) // i
		idx(b, isa.R10, isa.R15, isa.R8)
		b.Ld(isa.R7, isa.R10, 0) // j
		idx(b, isa.R10, isa.R1, isa.R6)
		b.Ld(isa.R16, isa.R10, 0) // xi
		idx(b, isa.R10, isa.R1, isa.R7)
		b.Ld(isa.R17, isa.R10, 0) // xj
		b.FSub(isa.R16, isa.R17, isa.R16)
		b.FMul(isa.R16, isa.R16, isa.R16)
		idx(b, isa.R10, isa.R2, isa.R6)
		b.Ld(isa.R13, isa.R10, 0)
		idx(b, isa.R10, isa.R2, isa.R7)
		b.Ld(isa.R17, isa.R10, 0)
		b.FSub(isa.R17, isa.R17, isa.R13)
		b.FMul(isa.R17, isa.R17, isa.R17)
		b.FAdd(isa.R16, isa.R16, isa.R17)
		idx(b, isa.R10, isa.R3, isa.R6)
		b.Ld(isa.R13, isa.R10, 0)
		idx(b, isa.R10, isa.R3, isa.R7)
		b.Ld(isa.R17, isa.R10, 0)
		b.FSub(isa.R17, isa.R17, isa.R13)
		b.FMul(isa.R17, isa.R17, isa.R17)
		b.FAdd(isa.R16, isa.R16, isa.R17) // r2
		b.AddI(isa.R21, isa.R21, 1)
		b.Li(isa.R18, int64(math.Float64bits(1.0)))
		b.FAdd(isa.R16, isa.R16, isa.R18)
		b.FDiv(isa.R16, isa.R18, isa.R16)
		b.FAdd(isa.R20, isa.R20, isa.R16)
		b.Label("pnext")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "ploop")
		b.Li(isa.R11, int64(math.Float64bits(1e6)))
		b.FMul(isa.R20, isa.R20, isa.R11)
		b.FInt(isa.R20, isa.R20)
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n := 1 << 17
		pairs := 1 << 16
		if scale <= 0 {
			n = 1 << 12
			pairs = 1 << 12
		}
		r := newRng(0x4AB)
		xs := make([]float64, n)
		ys := make([]float64, n)
		zs := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(r.intn(1000)) / 10
			ys[i] = float64(r.intn(1000)) / 10
			zs[i] = float64(r.intn(1000)) / 10
		}
		key := make([]uint64, pairs)
		iIdx := make([]uint64, pairs)
		jIdx := make([]uint64, pairs)
		for k := 0; k < pairs; k++ {
			key[k] = r.next() & 255
			iIdx[k] = uint64(r.intn(n))
			jIdx[k] = uint64(r.intn(n))
		}
		var energy float64
		var cnt uint64
		for k := 0; k < pairs; k++ {
			if int64(key[k]) >= 104 {
				continue
			}
			i, j := iIdx[k], jIdx[k]
			dx := xs[j] - xs[i]
			dy := ys[j] - ys[i]
			dz := zs[j] - zs[i]
			r2 := dx*dx + dy*dy + dz*dz
			cnt++
			energy += 1.0 / (1.0 + r2)
		}
		return []uint64{uint64(int64(energy * 1e6)), cnt}
	}
	return Workload{Name: "nab", Flow: Complex, Build: build, Expected: expected}
}
