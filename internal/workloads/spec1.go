package workloads

import (
	"sort"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

// SPEC-CPU2017-like kernels, part 1: perlbench, gcc, mcf, omnetpp,
// xalancbmk. Each reproduces the control-flow/data pattern that makes the
// original benchmark's branches hard to predict (complex control flow per
// the paper's §V-C classification).

// specIters maps scale to the main iteration count of a SPEC-like kernel.
func specIters(scale int, base int) int {
	if scale <= 0 {
		if v := base / 20; v >= 1 {
			return v
		}
		return 1
	}
	return base * scale
}

// emitXorshift advances the xorshift state in reg (clobbers tmp), exactly
// mirroring rng.next.
func emitXorshift(b *asm.Builder, reg, tmp isa.Reg) {
	b.ShlI(tmp, reg, 13)
	b.Xor(reg, reg, tmp)
	b.ShrI(tmp, reg, 7)
	b.Xor(reg, reg, tmp)
	b.ShlI(tmp, reg, 17)
	b.Xor(reg, reg, tmp)
}

// --- perlbench ---

// Perlbench is a string-matching kernel: pattern scans over skewed-alphabet
// text with byte-compare inner loops (the H2P mismatch ladder) plus a
// character-class histogram.
func Perlbench() Workload {
	const textLen = 1 << 16
	patterns := [][]byte{
		[]byte("aba"), []byte("cadb"), []byte("abcab"), []byte("dd"),
	}
	genText := func() []byte {
		r := newRng(0x9E51)
		text := make([]byte, textLen)
		for i := range text {
			// Skewed alphabet a..e (a most common).
			v := r.intn(10)
			switch {
			case v < 4:
				text[i] = 'a'
			case v < 7:
				text[i] = 'b'
			case v < 9:
				text[i] = 'c'
			default:
				text[i] = 'd' + byte(r.intn(2))
			}
		}
		return text
	}
	build := func(scale int) *isa.Program {
		iters := specIters(scale, 4)
		text := genText()
		b := asm.NewBuilder()
		l := newLayout()
		textA := l.alloc(textLen)
		b.Data(textA, text)
		var patA [4]uint64
		var patL [4]int
		for i, p := range patterns {
			patA[i] = l.alloc(len(p) + 1)
			patL[i] = len(p)
			b.Data(patA[i], p)
		}

		b.Label("main")
		b.Li(isa.R20, 0) // matches
		b.Li(isa.R21, 0) // class histogram ('a' count)
		b.Li(isa.R22, 0) // rep counter
		b.Label("rep")
		for pi := 0; pi < 4; pi++ {
			lbl := func(s string) string { return s + string(rune('0'+pi)) }
			b.LiU(isa.R1, textA)
			b.LiU(isa.R2, patA[pi])
			b.Li(isa.R3, 0)                       // pos
			b.Li(isa.R4, int64(textLen-patL[pi])) // limit
			b.Li(isa.R5, int64(patL[pi]))
			b.Label(lbl("scan"))
			b.Li(isa.R6, 0) // k
			b.Label(lbl("cmp"))
			b.Add(isa.R10, isa.R1, isa.R3)
			b.Add(isa.R10, isa.R10, isa.R6)
			b.Ld1(isa.R11, isa.R10, 0)
			b.Add(isa.R10, isa.R2, isa.R6)
			b.Ld1(isa.R12, isa.R10, 0)
			b.Bne(isa.R11, isa.R12, lbl("miss")) // H2P mismatch ladder
			b.AddI(isa.R6, isa.R6, 1)
			b.Blt(isa.R6, isa.R5, lbl("cmp"))
			b.AddI(isa.R20, isa.R20, 1)
			b.Label(lbl("miss"))
			// character-class branch on first byte
			b.Li(isa.R13, 'a')
			b.Bne(isa.R11, isa.R13, lbl("notA"))
			b.AddI(isa.R21, isa.R21, 1)
			b.Label(lbl("notA"))
			b.AddI(isa.R3, isa.R3, 1)
			b.Blt(isa.R3, isa.R4, lbl("scan"))
		}
		b.AddI(isa.R22, isa.R22, 1)
		b.Li(isa.R23, int64(iters))
		b.Blt(isa.R22, isa.R23, "rep")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		iters := specIters(scale, 4)
		text := genText()
		var matches, classA uint64
		for rep := 0; rep < iters; rep++ {
			for _, p := range patterns {
				for pos := 0; pos < textLen-len(p); pos++ {
					k := 0
					var last byte
					for k < len(p) {
						last = text[pos+k]
						if last != p[k] {
							break
						}
						k++
					}
					if k == len(p) {
						matches++
						last = p[len(p)-1] // loop exited with k==len; last read was equal
						last = text[pos+len(p)-1]
					}
					// The asm checks r11 (last text byte read) against 'a'.
					if last == 'a' {
						classA++
					}
					_ = last
				}
			}
		}
		return []uint64{matches, classA}
	}
	return Workload{Name: "perlbench", Flow: Complex, Build: build, Expected: expected}
}

// --- gcc ---

// GCC is a bytecode-interpreter kernel: an indirect jump table dispatching
// eight handlers over a random opcode stream (indirect H2P branches plus
// data-dependent handler conditionals).
func GCC() Workload {
	const codeLen = 1 << 12
	genCode := func() []uint64 {
		// Real interpreter traces repeat short opcode motifs ("basic
		// blocks" of the interpreted program) with occasional noise; the
		// motif structure is what history-based indirect predictors learn.
		r := newRng(0x6CC)
		motifs := make([][]uint64, 24)
		for m := range motifs {
			motif := make([]uint64, 3+r.intn(6))
			for i := range motif {
				var op uint64
				switch v := r.intn(16); {
				case v < 6:
					op = 0
				case v < 9:
					op = 5
				case v < 11:
					op = 3
				case v < 12:
					op = 1
				case v < 13:
					op = 4
				case v < 14:
					op = 6
				case v < 15:
					op = 2
				default:
					op = 7
				}
				motif[i] = op<<8 | uint64(r.intn(256))
			}
			motifs[m] = motif
		}
		code := make([]uint64, 0, codeLen)
		for len(code) < codeLen {
			code = append(code, motifs[r.intn(len(motifs))]...)
		}
		return code[:codeLen]
	}
	build := func(scale int) *isa.Program {
		iters := specIters(scale, 40)
		code := genCode()
		b := asm.NewBuilder()
		l := newLayout()
		codeA := l.words(codeLen)
		b.DataU64(codeA, code)
		cells := l.words(256)

		b.Label("main")
		b.LiU(isa.R1, codeA)
		b.LiU(isa.R2, cells)
		b.Li(isa.R20, 0) // acc
		b.Li(isa.R21, 0) // taken-handler counter
		b.Li(isa.R22, 0) // outer reps
		// jump table in r14..: store handler addresses in memory
		table := l.words(8)
		for i := 0; i < 8; i++ {
			b.LiLabel(isa.R10, "h"+string(rune('0'+i)))
			b.LiU(isa.R11, table+uint64(i)*8)
			b.St(isa.R11, 0, isa.R10)
		}
		b.LiU(isa.R3, table)
		b.Label("rep")
		b.Li(isa.R4, 0) // vpc
		b.Li(isa.R5, int64(codeLen))
		b.Label("dispatch")
		idx(b, isa.R10, isa.R1, isa.R4)
		b.Ld(isa.R6, isa.R10, 0)    // packed op
		b.ShrI(isa.R7, isa.R6, 8)   // opcode
		b.AndI(isa.R8, isa.R6, 255) // operand
		idx(b, isa.R10, isa.R3, isa.R7)
		b.Ld(isa.R10, isa.R10, 0)
		b.Jr(isa.R10, 0) // indirect dispatch (H2P target)

		b.Label("h0") // acc += operand
		b.Add(isa.R20, isa.R20, isa.R8)
		b.Jmp("next")
		b.Label("h1") // acc ^= operand
		b.Xor(isa.R20, isa.R20, isa.R8)
		b.Jmp("next")
		b.Label("h2") // store cell
		b.AndI(isa.R9, isa.R20, 255)
		idx(b, isa.R10, isa.R2, isa.R9)
		b.St(isa.R10, 0, isa.R8)
		b.Jmp("next")
		b.Label("h3") // load cell into acc
		idx(b, isa.R10, isa.R2, isa.R8)
		b.Ld(isa.R9, isa.R10, 0)
		b.Add(isa.R20, isa.R20, isa.R9)
		b.Jmp("next")
		b.Label("h4") // conditional on acc parity (H2P)
		b.AndI(isa.R9, isa.R20, 1)
		b.Beqz(isa.R9, "next")
		b.AddI(isa.R21, isa.R21, 1)
		b.MulI(isa.R20, isa.R20, 3)
		b.Jmp("next")
		b.Label("h5") // shift mix
		b.ShrI(isa.R9, isa.R20, 3)
		b.Xor(isa.R20, isa.R20, isa.R9)
		b.Jmp("next")
		b.Label("h6") // conditional skip of next vpc (control-flow wobble)
		b.AndI(isa.R9, isa.R20, 7)
		b.Bne(isa.R9, isa.R8, "next")
		b.AddI(isa.R4, isa.R4, 1)
		b.Jmp("next")
		b.Label("h7") // subtract
		b.Sub(isa.R20, isa.R20, isa.R8)
		b.Jmp("next")

		b.Label("next")
		// Shared post-processing (interpreter bookkeeping: flags, profiling
		// counters, operand stack maintenance) — dilutes dispatch density to
		// a realistic instructions-per-opcode ratio.
		b.ShrI(isa.R9, isa.R20, 7)
		b.Xor(isa.R9, isa.R9, isa.R20)
		b.MulI(isa.R9, isa.R9, 0x2545F491)
		b.ShrI(isa.R11, isa.R9, 11)
		b.Xor(isa.R9, isa.R9, isa.R11)
		b.AndI(isa.R11, isa.R9, 255)
		idx(b, isa.R10, isa.R2, isa.R11)
		b.Ld(isa.R12, isa.R10, 0)
		b.Add(isa.R12, isa.R12, isa.R9)
		b.St(isa.R10, 0, isa.R12)
		b.AndI(isa.R13, isa.R4, 15)
		b.Add(isa.R20, isa.R20, isa.R13)
		b.AddI(isa.R4, isa.R4, 1)
		b.Blt(isa.R4, isa.R5, "dispatch")
		b.AddI(isa.R22, isa.R22, 1)
		b.Li(isa.R23, int64(iters))
		b.Blt(isa.R22, isa.R23, "rep")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		iters := specIters(scale, 40)
		code := genCode()
		cells := make([]uint64, 256)
		var acc, takenCnt uint64
		for rep := 0; rep < iters; rep++ {
			for vpc := 0; vpc < codeLen; vpc++ {
				op := code[vpc] >> 8
				operand := code[vpc] & 255
				switch op {
				case 0:
					acc += operand
				case 1:
					acc ^= operand
				case 2:
					cells[acc&255] = operand
				case 3:
					acc += cells[operand]
				case 4:
					if acc&1 == 1 {
						takenCnt++
						acc *= 3
					}
				case 5:
					acc ^= acc >> 3
				case 6:
					if acc&7 == operand {
						vpc++
					}
				case 7:
					acc -= operand
				}
				h := (acc >> 7) ^ acc
				h *= 0x2545F491
				h ^= h >> 11
				cells[h&255] += h
				acc += uint64(vpc) & 15
			}
		}
		return []uint64{acc, takenCnt}
	}
	return Workload{Name: "gcc", Flow: Complex, Build: build, Expected: expected}
}

// --- mcf ---

// MCF is a network-simplex-flavoured arc-scanning kernel: per-arc reduced
// costs select among several control-flow paths that converge on shared H2P
// branches (the paper's Fig. 3 pattern), with potential updates creating
// cross-iteration dependences.
func MCF() Workload {
	const nNodes = 4096
	const nArcs = 1 << 15
	type arcs struct{ tail, head, cost []uint64 }
	genArcs := func() arcs {
		r := newRng(0x3CF)
		a := arcs{
			tail: make([]uint64, nArcs),
			head: make([]uint64, nArcs),
			cost: make([]uint64, nArcs),
		}
		for i := 0; i < nArcs; i++ {
			a.tail[i] = uint64(r.intn(nNodes))
			a.head[i] = uint64(r.intn(nNodes))
			a.cost[i] = uint64(r.intn(200))
		}
		return a
	}
	build := func(scale int) *isa.Program {
		passes := specIters(scale, 20)
		a := genArcs()
		b := asm.NewBuilder()
		l := newLayout()
		tailA := l.words(nArcs)
		headA := l.words(nArcs)
		costA := l.words(nArcs)
		flowA := l.words(nArcs)
		potA := l.words(nNodes)
		b.DataU64(tailA, a.tail)
		b.DataU64(headA, a.head)
		b.DataU64(costA, a.cost)

		b.Label("main")
		b.LiU(isa.R1, tailA)
		b.LiU(isa.R2, headA)
		b.LiU(isa.R3, costA)
		b.LiU(isa.R4, flowA)
		b.LiU(isa.R5, potA)
		b.Li(isa.R20, 0) // pushes
		b.Li(isa.R21, 0) // blocked
		b.Li(isa.R22, 0) // pass
		b.Label("pass")
		b.Li(isa.R8, 0) // arc index
		b.Li(isa.R9, nArcs)
		b.Label("arc")
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R11, isa.R10, 0) // tail
		idx(b, isa.R10, isa.R2, isa.R8)
		b.Ld(isa.R12, isa.R10, 0) // head
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R13, isa.R10, 0) // cost
		idx(b, isa.R14, isa.R4, isa.R8)
		b.Ld(isa.R15, isa.R14, 0) // flow
		idx(b, isa.R16, isa.R5, isa.R11)
		b.Ld(isa.R17, isa.R16, 0) // pot[tail]
		idx(b, isa.R18, isa.R5, isa.R12)
		b.Ld(isa.R19, isa.R18, 0) // pot[head]
		// red = cost + pot[tail] - pot[head] (signed arithmetic)
		b.Add(isa.R13, isa.R13, isa.R17)
		b.Sub(isa.R13, isa.R13, isa.R19)
		// Path selection.
		b.SltI(isa.R23, isa.R15, 4)
		b.Beqz(isa.R23, "saturated") // flow >= 4
		b.SltI(isa.R23, isa.R13, 50)
		b.Beqz(isa.R23, "expensive") // red >= 50
		// cheap arc: push flow
		b.AddI(isa.R15, isa.R15, 1)
		b.St(isa.R14, 0, isa.R15)
		b.AddI(isa.R20, isa.R20, 1)
		b.AddI(isa.R19, isa.R19, 1) // pot[head]++
		b.St(isa.R18, 0, isa.R19)
		b.Jmp("merge")
		b.Label("saturated")
		b.AddI(isa.R21, isa.R21, 1)
		b.SltI(isa.R23, isa.R13, 0)
		b.Beqz(isa.R23, "merge")
		b.St(isa.R14, 0, isa.R0) // reset flow on negative reduced cost
		b.Jmp("merge")
		b.Label("expensive")
		b.AddI(isa.R17, isa.R17, 1) // pot[tail]++
		b.St(isa.R16, 0, isa.R17)
		// All paths converge on a shared data-dependent H2P branch (Fig. 3).
		b.Label("merge")
		b.Ld(isa.R17, isa.R16, 0) // reload pot[tail]
		b.AndI(isa.R23, isa.R17, 7)
		b.AndI(isa.R24, isa.R13, 7)
		b.Bne(isa.R23, isa.R24, "arcnext") // H2P with multiple inbound paths
		b.AddI(isa.R20, isa.R20, 1)
		b.Label("arcnext")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "arc")
		b.AddI(isa.R22, isa.R22, 1)
		b.Li(isa.R23, int64(passes))
		b.Blt(isa.R22, isa.R23, "pass")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		passes := specIters(scale, 20)
		a := genArcs()
		flow := make([]uint64, nArcs)
		pot := make([]uint64, nNodes)
		var pushes, blocked uint64
		for p := 0; p < passes; p++ {
			for i := 0; i < nArcs; i++ {
				tail, head := a.tail[i], a.head[i]
				red := a.cost[i] + pot[tail] - pot[head]
				if int64(flow[i]) >= 4 {
					blocked++
					if int64(red) < 0 {
						flow[i] = 0
					}
				} else if int64(red) < 50 {
					flow[i]++
					pushes++
					pot[head]++
				} else {
					pot[tail]++
				}
				if pot[tail]&7 == red&7 {
					pushes++
				}
			}
		}
		return []uint64{pushes, blocked}
	}
	return Workload{Name: "mcf", Flow: Complex, Build: build, Expected: expected}
}

// --- omnetpp ---

// Omnetpp is a discrete-event-simulation kernel: a binary min-heap of
// timestamped events whose sift comparisons are data-dependent H2P
// branches, with event handlers scheduling future events.
func Omnetpp() Workload {
	const heapCap = 4096
	build := func(scale int) *isa.Program {
		events := specIters(scale, 60) * 4096
		b := asm.NewBuilder()
		l := newLayout()
		heapA := l.words(heapCap + 2)

		b.Label("main")
		b.LiU(isa.R1, heapA)
		b.Li(isa.R2, 0)           // heap size
		b.Li(isa.R3, 0x123456789) // rng
		b.Li(isa.R20, 0)          // processed
		b.Li(isa.R21, 0)          // xor of times
		b.Li(isa.R25, int64(events))
		// Seed 64 initial events: time = rng & 0xFFFF, type = rng & 3.
		b.Li(isa.R4, 0)
		b.Label("seed")
		emitXorshift(b, isa.R3, isa.R28)
		b.AndI(isa.R5, isa.R3, 0xFFFF)
		b.ShlI(isa.R5, isa.R5, 2)
		b.AndI(isa.R6, isa.R3, 3)
		b.Or(isa.R5, isa.R5, isa.R6) // packed event
		b.Call("push")
		b.AddI(isa.R4, isa.R4, 1)
		b.SltI(isa.R6, isa.R4, 64)
		b.Bnez(isa.R6, "seed")

		b.Label("evloop")
		b.Beqz(isa.R2, "finish")
		b.Call("pop") // min event in r5
		b.AddI(isa.R20, isa.R20, 1)
		b.Xor(isa.R21, isa.R21, isa.R5)
		b.Bge(isa.R20, isa.R25, "finish")
		// handler: by type, schedule 0..2 future events
		b.AndI(isa.R6, isa.R5, 3)
		b.ShrI(isa.R7, isa.R5, 2) // current time
		b.Beqz(isa.R6, "evloop")  // type 0: sink event
		// schedule one event at time + delay
		emitXorshift(b, isa.R3, isa.R28)
		b.AndI(isa.R8, isa.R3, 0x3FF)
		b.AddI(isa.R8, isa.R8, 1)
		b.Add(isa.R8, isa.R7, isa.R8)
		b.ShlI(isa.R8, isa.R8, 2)
		emitXorshift(b, isa.R3, isa.R28)
		b.AndI(isa.R9, isa.R3, 3)
		b.Or(isa.R5, isa.R8, isa.R9)
		b.Li(isa.R10, heapCap)
		b.Bge(isa.R2, isa.R10, "evloop") // heap full: drop
		b.Call("push")
		// types 2 and 3 fork a second event (keeps the population alive)
		b.SltI(isa.R10, isa.R6, 2)
		b.Bnez(isa.R10, "evloop")
		emitXorshift(b, isa.R3, isa.R28)
		b.AndI(isa.R8, isa.R3, 0x3FF)
		b.AddI(isa.R8, isa.R8, 1)
		b.Add(isa.R8, isa.R7, isa.R8)
		b.ShlI(isa.R8, isa.R8, 2)
		emitXorshift(b, isa.R3, isa.R28)
		b.AndI(isa.R9, isa.R3, 3)
		b.Or(isa.R5, isa.R8, isa.R9)
		b.Li(isa.R10, heapCap)
		b.Bge(isa.R2, isa.R10, "evloop")
		b.Call("push")
		b.Jmp("evloop")

		b.Label("finish")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()

		// push: heap[size++] = r5, sift up. clobbers r10-r16.
		b.Label("push")
		b.Mov(isa.R10, isa.R2) // i
		idx(b, isa.R11, isa.R1, isa.R10)
		b.St(isa.R11, 0, isa.R5)
		b.AddI(isa.R2, isa.R2, 1)
		b.Label("siftup")
		b.Beqz(isa.R10, "pushdone")
		b.AddI(isa.R12, isa.R10, -1)
		b.ShrI(isa.R12, isa.R12, 1) // parent
		idx(b, isa.R13, isa.R1, isa.R12)
		b.Ld(isa.R14, isa.R13, 0)
		idx(b, isa.R15, isa.R1, isa.R10)
		b.Ld(isa.R16, isa.R15, 0)
		b.Bgeu(isa.R16, isa.R14, "pushdone") // H2P: heap order
		b.St(isa.R13, 0, isa.R16)
		b.St(isa.R15, 0, isa.R14)
		b.Mov(isa.R10, isa.R12)
		b.Jmp("siftup")
		b.Label("pushdone")
		b.Ret()

		// pop: r5 = heap[0]; heap[0] = heap[--size]; sift down. clobbers r10-r19.
		b.Label("pop")
		b.Ld(isa.R5, isa.R1, 0)
		b.AddI(isa.R2, isa.R2, -1)
		idx(b, isa.R11, isa.R1, isa.R2)
		b.Ld(isa.R12, isa.R11, 0)
		b.St(isa.R1, 0, isa.R12)
		b.Li(isa.R10, 0) // i
		b.Label("siftdn")
		b.ShlI(isa.R12, isa.R10, 1)
		b.AddI(isa.R12, isa.R12, 1) // left child
		b.Bge(isa.R12, isa.R2, "popdone")
		idx(b, isa.R13, isa.R1, isa.R12)
		b.Ld(isa.R14, isa.R13, 0) // left value
		b.AddI(isa.R15, isa.R12, 1)
		b.Bge(isa.R15, isa.R2, "onechild")
		idx(b, isa.R16, isa.R1, isa.R15)
		b.Ld(isa.R17, isa.R16, 0)
		b.Bgeu(isa.R17, isa.R14, "onechild") // H2P: which child smaller
		b.Mov(isa.R12, isa.R15)
		b.Mov(isa.R14, isa.R17)
		b.Mov(isa.R13, isa.R16)
		b.Label("onechild")
		idx(b, isa.R18, isa.R1, isa.R10)
		b.Ld(isa.R19, isa.R18, 0)
		b.Bgeu(isa.R14, isa.R19, "popdone") // H2P: heap order restored?
		b.St(isa.R18, 0, isa.R14)
		b.St(isa.R13, 0, isa.R19)
		b.Mov(isa.R10, isa.R12)
		b.Jmp("siftdn")
		b.Label("popdone")
		b.Ret()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		events := specIters(scale, 60) * 4096
		var heap []uint64
		push := func(v uint64) {
			heap = append(heap, v)
			i := len(heap) - 1
			for i > 0 {
				p := (i - 1) / 2
				if heap[i] >= heap[p] {
					break
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
		}
		pop := func() uint64 {
			v := heap[0]
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			i := 0
			for {
				c := 2*i + 1
				if c >= len(heap) {
					break
				}
				if c+1 < len(heap) && heap[c+1] < heap[c] {
					c++
				}
				if heap[c] >= heap[i] {
					break
				}
				heap[i], heap[c] = heap[c], heap[i]
				i = c
			}
			return v
		}
		r := newRng(0)
		*r = rng(0x123456789)
		var processed, acc uint64
		for i := 0; i < 64; i++ {
			t := (r.next() & 0xFFFF) << 2
			push(t | (uint64(*r) & 3))
		}
		for len(heap) > 0 {
			ev := pop()
			processed++
			acc ^= ev
			if processed >= uint64(events) {
				break
			}
			if ev&3 == 0 {
				continue
			}
			now := ev >> 2
			delay := (r.next() & 0x3FF) + 1
			t := (now + delay) << 2
			typ := r.next() & 3
			if len(heap) >= heapCap {
				continue
			}
			push(t | typ)
			if ev&3 >= 2 {
				delay2 := (r.next() & 0x3FF) + 1
				t2 := (now + delay2) << 2
				typ2 := r.next() & 3
				if len(heap) >= heapCap {
					continue
				}
				push(t2 | typ2)
			}
		}
		return []uint64{processed, acc}
	}
	return Workload{Name: "omnetpp", Flow: Complex, Build: build, Expected: expected}
}

// --- xalancbmk ---

// Xalancbmk is a tree-walking kernel: random-key probes descend a binary
// search tree (pointer chasing with data-dependent direction branches) and
// dispatch on the node kind at the end of each probe.
func Xalancbmk() Workload {
	const nNodes = 1 << 14
	type tree struct {
		key, left, right, kind []uint64
	}
	genTree := func() *tree {
		r := newRng(0xA1A)
		keys := make([]uint64, nNodes)
		for i := range keys {
			keys[i] = r.next() % (1 << 30)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		t := &tree{
			key:   make([]uint64, nNodes),
			left:  make([]uint64, nNodes),
			right: make([]uint64, nNodes),
			kind:  make([]uint64, nNodes),
		}
		// Balanced BST from the sorted keys; node 0 unused as nil.
		next := 1
		var build func(lo, hi int) uint64
		build = func(lo, hi int) uint64 {
			if lo >= hi {
				return 0
			}
			mid := (lo + hi) / 2
			n := next
			next++
			t.key[n] = keys[mid]
			t.kind[n] = keys[mid] & 3
			t.left[n] = build(lo, mid)
			t.right[n] = build(mid+1, hi)
			return uint64(n)
		}
		build(0, nNodes-1)
		return t
	}
	build := func(scale int) *isa.Program {
		probes := specIters(scale, 16) * 8192
		t := genTree()
		b := asm.NewBuilder()
		l := newLayout()
		keyA := l.words(nNodes)
		leftA := l.words(nNodes)
		rightA := l.words(nNodes)
		kindA := l.words(nNodes)
		b.DataU64(keyA, t.key)
		b.DataU64(leftA, t.left)
		b.DataU64(rightA, t.right)
		b.DataU64(kindA, t.kind)

		b.Label("main")
		b.LiU(isa.R1, keyA)
		b.LiU(isa.R2, leftA)
		b.LiU(isa.R3, rightA)
		b.LiU(isa.R4, kindA)
		b.Li(isa.R5, 0x777AA)
		b.Li(isa.R20, 0) // found
		b.Li(isa.R21, 0) // kind histogram acc
		b.Li(isa.R22, 0) // probe counter
		b.Li(isa.R23, int64(probes))
		b.Label("probe")
		emitXorshift(b, isa.R5, isa.R28)
		b.AndI(isa.R7, isa.R5, (1<<30)-1) // probe key
		b.Li(isa.R8, 1)                   // node = root
		b.Label("walk")
		b.Beqz(isa.R8, "probenext")
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R11, isa.R10, 0) // node key
		b.Beq(isa.R11, isa.R7, "hit")
		b.Bltu(isa.R7, isa.R11, "goleft") // H2P descent direction
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R8, isa.R10, 0)
		b.Jmp("walk")
		b.Label("goleft")
		idx(b, isa.R10, isa.R2, isa.R8)
		b.Ld(isa.R8, isa.R10, 0)
		b.Jmp("walk")
		b.Label("hit")
		b.AddI(isa.R20, isa.R20, 1)
		idx(b, isa.R10, isa.R4, isa.R8)
		b.Ld(isa.R12, isa.R10, 0)
		// kind dispatch
		b.Beqz(isa.R12, "k0")
		b.SltI(isa.R13, isa.R12, 2)
		b.Bnez(isa.R13, "k1")
		b.SltI(isa.R13, isa.R12, 3)
		b.Bnez(isa.R13, "k2")
		b.MulI(isa.R21, isa.R21, 3)
		b.Jmp("probenext")
		b.Label("k0")
		b.AddI(isa.R21, isa.R21, 1)
		b.Jmp("probenext")
		b.Label("k1")
		b.Xor(isa.R21, isa.R21, isa.R7)
		b.Jmp("probenext")
		b.Label("k2")
		b.Add(isa.R21, isa.R21, isa.R11)
		b.Label("probenext")
		b.AddI(isa.R22, isa.R22, 1)
		b.Blt(isa.R22, isa.R23, "probe")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		probes := specIters(scale, 16) * 8192
		t := genTree()
		r := newRng(0)
		*r = rng(0x777AA)
		var found, acc uint64
		for p := 0; p < probes; p++ {
			key := r.next() & ((1 << 30) - 1)
			node := uint64(1)
			for node != 0 {
				nk := t.key[node]
				if nk == key {
					found++
					switch t.kind[node] {
					case 0:
						acc++
					case 1:
						acc ^= key
					case 2:
						acc += nk
					default:
						acc *= 3
					}
					break
				}
				if key < nk {
					node = t.left[node]
				} else {
					node = t.right[node]
				}
			}
		}
		return []uint64{found, acc}
	}
	return Workload{Name: "xalancbmk", Flow: Complex, Build: build, Expected: expected}
}
