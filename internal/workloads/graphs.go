package workloads

import "sort"

// graph is a CSR-format directed graph with sorted adjacency lists (sorted
// neighbors are required by the triangle-counting merge intersection and
// give the GAP kernels realistic memory behaviour).
type graph struct {
	n    int
	offs []uint64 // n+1 offsets into nbrs
	nbrs []uint64
	w    []uint64 // per-edge weights (for sssp)
}

// genGraph builds a synthetic graph with a skewed degree distribution
// (Kronecker-flavoured endpoint selection, like the GAP generator's output
// shape): most vertices have near-average degree, a few act as hubs.
func genGraph(n, avgDeg int, seed uint64) *graph {
	r := newRng(seed)
	adj := make([][]uint64, n)
	m := n * avgDeg
	for e := 0; e < m; e++ {
		u := skewedVertex(r, n)
		v := skewedVertex(r, n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], uint64(v))
	}
	g := &graph{n: n, offs: make([]uint64, n+1)}
	for u := 0; u < n; u++ {
		ns := adj[u]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		// Deduplicate (parallel edges skew triangle counting).
		ded := ns[:0]
		var prev uint64 = ^uint64(0)
		for _, v := range ns {
			if v != prev {
				ded = append(ded, v)
				prev = v
			}
		}
		g.nbrs = append(g.nbrs, ded...)
		g.offs[u+1] = uint64(len(g.nbrs))
	}
	g.w = make([]uint64, len(g.nbrs))
	wr := newRng(seed ^ 0xABCD)
	for i := range g.w {
		g.w[i] = uint64(wr.intn(15)) + 1
	}
	return g
}

// skewedVertex picks a vertex with a power-law-ish bias: a few repeated
// halvings of the range concentrate probability on low vertex ids.
func skewedVertex(r *rng, n int) int {
	v := r.intn(n)
	for r.next()&3 == 0 { // 25% chance per level to bias toward hubs
		v /= 2
	}
	return v
}

// undirected returns g with every edge mirrored (needed by bfs/cc/bc).
func undirected(g *graph) *graph {
	adj := make([][]uint64, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.nbrs[g.offs[u]:g.offs[u+1]] {
			adj[u] = append(adj[u], v)
			adj[int(v)] = append(adj[int(v)], uint64(u))
		}
	}
	out := &graph{n: g.n, offs: make([]uint64, g.n+1)}
	for u := 0; u < g.n; u++ {
		ns := adj[u]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		ded := ns[:0]
		var prev uint64 = ^uint64(0)
		for _, v := range ns {
			if v != prev {
				ded = append(ded, v)
				prev = v
			}
		}
		out.nbrs = append(out.nbrs, ded...)
		out.offs[u+1] = uint64(len(out.nbrs))
	}
	out.w = make([]uint64, len(out.nbrs))
	wr := newRng(0xBEEF)
	for i := range out.w {
		out.w[i] = uint64(wr.intn(15)) + 1
	}
	return out
}

// graphScale maps a workload scale to (vertices, average degree).
func graphScale(scale int) (int, int) {
	switch {
	case scale <= 0:
		return 256, 6 // tiny: unit tests
	case scale == 1:
		return 8192, 10 // benchmark default
	default:
		return 8192 * scale, 10
	}
}
