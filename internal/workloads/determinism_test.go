package workloads

import (
	"testing"

	"teasim/internal/isa"
)

// TestBuildDeterminism: building a workload twice yields byte-identical
// programs (code and data), so every simulation is reproducible.
func TestBuildDeterminism(t *testing.T) {
	for _, w := range All() {
		a := w.Build(0)
		b := w.Build(0)
		if a.Entry != b.Entry || a.CodeBase != b.CodeBase {
			t.Fatalf("%s: entry/base differ", w.Name)
		}
		if len(a.Code) != len(b.Code) {
			t.Fatalf("%s: code length differs", w.Name)
		}
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				t.Fatalf("%s: instruction %d differs", w.Name, i)
			}
		}
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: data segment count differs", w.Name)
		}
		for i := range a.Data {
			if a.Data[i].Addr != b.Data[i].Addr || len(a.Data[i].Bytes) != len(b.Data[i].Bytes) {
				t.Fatalf("%s: data segment %d differs", w.Name, i)
			}
			for j := range a.Data[i].Bytes {
				if a.Data[i].Bytes[j] != b.Data[i].Bytes[j] {
					t.Fatalf("%s: data byte %d/%d differs", w.Name, i, j)
				}
			}
		}
	}
}

// TestExpectedDeterminism: the native models are pure functions of scale.
func TestExpectedDeterminism(t *testing.T) {
	for _, w := range All() {
		a := w.Expected(0)
		b := w.Expected(0)
		if len(a) != len(b) {
			t.Fatalf("%s: result count differs", w.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: result %d differs: %d vs %d", w.Name, i, a[i], b[i])
			}
		}
	}
}

// TestScalesDiffer: scale 0 and scale 1 are genuinely different inputs.
func TestScalesDiffer(t *testing.T) {
	for _, w := range All() {
		a := w.Build(0)
		b := w.Build(1)
		if len(a.Code) == 0 || len(b.Code) == 0 {
			t.Fatalf("%s: empty program", w.Name)
		}
		sameData := len(a.Data) == len(b.Data)
		if sameData {
			for i := range a.Data {
				if len(a.Data[i].Bytes) != len(b.Data[i].Bytes) {
					sameData = false
					break
				}
			}
		}
		// Either the data or the code must change with scale (iteration
		// counts are immediates in the code).
		sameCode := len(a.Code) == len(b.Code)
		if sameCode {
			for i := range a.Code {
				if a.Code[i] != b.Code[i] {
					sameCode = false
					break
				}
			}
		}
		if sameData && sameCode {
			t.Fatalf("%s: scale has no effect", w.Name)
		}
	}
}

// TestProgramsEndWithHalt: every workload's control flow terminates at an
// explicit halt (the BP stream relies on it).
func TestProgramsEndWithHalt(t *testing.T) {
	for _, w := range All() {
		p := w.Build(0)
		found := false
		for i := range p.Code {
			if p.Code[i].Op == isa.OpHalt {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: no halt instruction", w.Name)
		}
	}
}

// TestResultAddrLayout: result words do not collide with kernel data (which
// the layout allocator places from 0x1000000 up).
func TestResultAddrLayout(t *testing.T) {
	if ResultAddr(0) >= 0x1000000 {
		t.Fatal("result region overlaps the data arena")
	}
	if ResultAddr(1)-ResultAddr(0) != 8 {
		t.Fatal("result stride must be one word")
	}
}
