package workloads

import (
	"reflect"
	"testing"

	"teasim/internal/isa"
)

// TestProgramsWellFormed statically validates every kernel at both scales:
// all direct control-flow targets land on aligned addresses inside the code
// segment, the entry point is valid, and exactly one reachable HALT class
// exists (the frontend relies on in-segment fetch).
func TestProgramsWellFormed(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for scale := 0; scale <= 1; scale++ {
				p := w.Build(scale)
				if len(p.Code) == 0 {
					t.Fatalf("scale %d: empty program", scale)
				}
				if p.InstAt(p.Entry) == nil {
					t.Fatalf("scale %d: entry %#x outside code", scale, p.Entry)
				}
				halts := 0
				for i := range p.Code {
					in := &p.Code[i]
					if in.Op == isa.OpHalt {
						halts++
					}
					// Direct branches and jumps carry absolute targets.
					switch in.Op {
					case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge,
						isa.OpBltu, isa.OpBgeu, isa.OpJmp, isa.OpCall:
						if p.InstAt(uint64(in.Imm)) == nil {
							t.Fatalf("scale %d: inst %d (%v) targets %#x outside code",
								scale, i, in, uint64(in.Imm))
						}
					}
					// Register fields must name real architectural registers.
					if in.Rd >= isa.NumRegs || in.Rs1 >= isa.NumRegs || in.Rs2 >= isa.NumRegs {
						t.Fatalf("scale %d: inst %d has out-of-range register", scale, i)
					}
				}
				if halts == 0 {
					t.Fatalf("scale %d: no halt instruction", scale)
				}
			}
		})
	}
}

// TestBuildDeterministic: building the same kernel twice yields identical
// code and data — experiments depend on run-to-run reproducibility.
func TestBuildDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a, b := w.Build(1), w.Build(1)
			if !reflect.DeepEqual(a.Code, b.Code) {
				t.Fatal("code differs between builds")
			}
			if !reflect.DeepEqual(a.Data, b.Data) {
				t.Fatal("data differs between builds")
			}
			if a.Entry != b.Entry || a.CodeBase != b.CodeBase {
				t.Fatal("entry/base differ between builds")
			}
		})
	}
}

// TestExpectedDeterministic: the native model must be as reproducible as the
// µISA program it validates.
func TestExpectedDeterministic(t *testing.T) {
	for _, w := range All() {
		if !reflect.DeepEqual(w.Expected(1), w.Expected(1)) {
			t.Fatalf("%s: Expected(1) not deterministic", w.Name)
		}
		if len(w.Expected(0)) == 0 {
			t.Fatalf("%s: no expected results at scale 0", w.Name)
		}
	}
}

// TestDataSegmentsDisjointFromCode: initial data must not overlap the code
// segment (the pipeline fetches from the program image, not memory, so an
// overlap would silently diverge from the emulator).
func TestDataSegmentsDisjointFromCode(t *testing.T) {
	for _, w := range All() {
		p := w.Build(1)
		for _, seg := range p.Data {
			lo, hi := seg.Addr, seg.Addr+uint64(len(seg.Bytes))
			if lo < p.CodeEnd() && hi > p.CodeBase {
				t.Fatalf("%s: data segment [%#x,%#x) overlaps code [%#x,%#x)",
					w.Name, lo, hi, p.CodeBase, p.CodeEnd())
			}
		}
	}
}
