// Package workloads provides the 17 benchmark kernels used to reproduce the
// paper's evaluation: the six GAP graph kernels implemented for real (bfs,
// bc, cc, pr, sssp, tc on synthetic graphs) and eleven SPEC-CPU2017-like
// kernels reproducing each benchmark's H2P-branch-relevant inner loops.
//
// Every kernel is written in the µISA through the assembler DSL, driven by
// deterministic pseudo-random inputs, and functionally validated against a
// native Go implementation of the same algorithm (workloads_test.go).
//
// The paper's control-flow classification (§V-C) is preserved: the GAP
// kernels plus xz are "simple control flow" (independent branches in plain
// loops); the remaining SPEC-like kernels are "complex".
package workloads

import (
	"teasim/internal/asm"
	"teasim/internal/isa"
)

// Flow classifies a workload's control-flow complexity (paper §V-C).
type Flow int

// Control-flow classes.
const (
	Simple Flow = iota
	Complex
)

// resultBase is where kernels store their final result words, so tests and
// examples can validate functional correctness via the emulator or the
// pipeline's committed memory.
const resultBase = 0xF00000

// ResultAddr returns the address of result word i.
func ResultAddr(i int) uint64 { return resultBase + uint64(i)*8 }

// Workload is one benchmark: a program builder plus the expected result
// words computed by a native Go model of the same algorithm.
type Workload struct {
	Name string
	Flow Flow
	// Build assembles the program at the given scale (1 = benchmark size;
	// tests use smaller scales). Expected returns the native-model result
	// words for the same scale.
	Build    func(scale int) *isa.Program
	Expected func(scale int) []uint64
}

// All returns the full benchmark suite in the paper's presentation order
// (SPEC first, then GAP).
func All() []Workload {
	return []Workload{
		Perlbench(), GCC(), MCF(), Omnetpp(), Xalancbmk(), X264(),
		Deepsjeng(), Leela(), Exchange2(), XZ(), NAB(),
		BFS(), BC(), CC(), PR(), SSSP(), TC(),
	}
}

// ByName returns the workload with the given name, or false.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// rng is the deterministic xorshift generator used for all synthetic inputs.
type rng uint64

func newRng(seed uint64) *rng {
	r := rng(seed*2862933555777941757 + 3037000493)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// layout is a bump allocator for kernel data regions.
type layout struct{ next uint64 }

func newLayout() *layout { return &layout{next: 0x1000000} }

func (l *layout) alloc(bytes int) uint64 {
	a := l.next
	l.next = (l.next + uint64(bytes) + 63) &^ 63
	return a
}

func (l *layout) words(n int) uint64 { return l.alloc(8 * n) }

// storeResult emits code writing reg to result word i (clobbers r29).
func storeResult(b *asm.Builder, i int, reg isa.Reg) {
	b.LiU(isa.R29, ResultAddr(i))
	b.St(isa.R29, 0, reg)
}
