package workloads

import (
	"testing"

	"teasim/internal/emu"
)

// verify runs a workload at the given scale on the functional emulator and
// compares the result words against the native Go model.
func verify(t *testing.T, w Workload, scale int) {
	t.Helper()
	prog := w.Build(scale)
	m := emu.New(prog)
	if _, err := m.Run(2_000_000_000); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if !m.Halted {
		t.Fatalf("%s: did not halt", w.Name)
	}
	want := w.Expected(scale)
	for i, exp := range want {
		got := m.Mem.ReadU64(ResultAddr(i))
		if got != exp {
			t.Fatalf("%s: result[%d] = %d, want %d", w.Name, i, got, exp)
		}
	}
	t.Logf("%s: %d instructions, %d result words OK", w.Name, m.Count, len(want))
}

func TestWorkloadsFunctionalTiny(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) { verify(t, w, 0) })
	}
}

// TestWorkloadsFunctionalDefault validates the benchmark-scale inputs too
// (slower; still well within test budget on the pure emulator).
func TestWorkloadsFunctionalDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) { verify(t, w, 1) })
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("suite has %d workloads, want 17", len(all))
	}
	seen := map[string]bool{}
	simple := 0
	for _, w := range all {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Flow == Simple {
			simple++
		}
	}
	// Paper §V-C: all six GAP kernels plus xz are simple control flow.
	if simple != 7 {
		t.Fatalf("simple-flow workloads = %d, want 7", simple)
	}
	if _, ok := ByName("mcf"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName matched a non-existent workload")
	}
}
