package workloads

import (
	"teasim/internal/asm"
	"teasim/internal/isa"
)

// X264 is a motion-estimation kernel in the style of x264's SAD search: for
// each macroblock the encoder scans candidate offsets and accumulates a sum
// of absolute differences with an early-termination branch ("already worse
// than the best candidate?") — a classic data-dependent H2P ladder — plus a
// min-update branch per candidate.
func X264() Workload {
	const (
		frameW   = 256
		frameH   = 64
		blockPix = 16 // pixels compared per candidate (1 row of a 16x16 MB)
		searchR  = 8  // candidate offsets per block
	)
	genFrames := func() (cur, ref []byte) {
		r := newRng(0x264)
		n := frameW * frameH
		cur = make([]byte, n)
		ref = make([]byte, n)
		for i := range ref {
			ref[i] = byte(r.intn(256))
		}
		// The current frame is the reference shifted by a per-region motion
		// vector plus noise, so good matches exist but must be searched for.
		for i := range cur {
			shift := 1 + (i/2048)%4
			j := i + shift
			if j >= n {
				j = i
			}
			v := int(ref[j])
			if r.intn(8) == 0 {
				v += r.intn(16) - 8
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			cur[i] = byte(v)
		}
		return
	}
	build := func(scale int) *isa.Program {
		blocks := specIters(scale, 6) * 2048
		cur, ref := genFrames()
		b := asm.NewBuilder()
		l := newLayout()
		curA := l.alloc(len(cur) + 64)
		refA := l.alloc(len(ref) + 64)
		b.Data(curA, cur)
		b.Data(refA, ref)

		b.Label("main")
		b.LiU(isa.R1, curA)
		b.LiU(isa.R2, refA)
		b.Li(isa.R9, int64(blocks))
		b.Li(isa.R20, 0)        // total SAD of chosen candidates
		b.Li(isa.R21, 0)        // early terminations
		b.Li(isa.R22, 0)        // block index
		b.Li(isa.R23, 0x264AB5) // rng for block placement
		lim := int64(frameW*frameH - blockPix - searchR - 1)
		b.Label("blk")
		// Block base: pseudo-random position (realistic scattered access).
		emitXorshift(b, isa.R23, isa.R28)
		b.AndI(isa.R3, isa.R23, 0x3FFF)
		b.Li(isa.R4, lim)
		b.Blt(isa.R3, isa.R4, "posok")
		b.Sub(isa.R3, isa.R3, isa.R4)
		b.Label("posok")
		b.Li(isa.R10, 1<<20) // best = INF
		b.Li(isa.R11, 0)     // candidate offset
		b.Label("cand")
		// SAD over blockPix pixels with early termination.
		b.Li(isa.R12, 0) // sad
		b.Li(isa.R13, 0) // k
		b.Label("sad")
		b.Add(isa.R14, isa.R1, isa.R3)
		b.Add(isa.R14, isa.R14, isa.R13)
		b.Ld1(isa.R15, isa.R14, 0) // cur[base+k]
		b.Add(isa.R14, isa.R2, isa.R3)
		b.Add(isa.R14, isa.R14, isa.R11)
		b.Add(isa.R14, isa.R14, isa.R13)
		b.Ld1(isa.R16, isa.R14, 0) // ref[base+off+k]
		b.Sub(isa.R17, isa.R15, isa.R16)
		b.Bge(isa.R17, isa.R0, "abs")
		b.Sub(isa.R17, isa.R0, isa.R17)
		b.Label("abs")
		b.Add(isa.R12, isa.R12, isa.R17)
		b.Bge(isa.R12, isa.R10, "terminate") // H2P: already worse than best?
		b.AddI(isa.R13, isa.R13, 1)
		b.SltI(isa.R14, isa.R13, blockPix)
		b.Bnez(isa.R14, "sad")
		// Full SAD computed: min-update branch (H2P: data-dependent).
		b.Bge(isa.R12, isa.R10, "candnext")
		b.Mov(isa.R10, isa.R12)
		b.Jmp("candnext")
		b.Label("terminate")
		b.AddI(isa.R21, isa.R21, 1)
		b.Label("candnext")
		b.AddI(isa.R11, isa.R11, 1)
		b.SltI(isa.R14, isa.R11, searchR)
		b.Bnez(isa.R14, "cand")
		b.Add(isa.R20, isa.R20, isa.R10)
		b.AddI(isa.R22, isa.R22, 1)
		b.Blt(isa.R22, isa.R9, "blk")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		blocks := specIters(scale, 6) * 2048
		cur, ref := genFrames()
		r := newRng(0)
		*r = rng(0x264AB5)
		lim := uint64(frameW*frameH - blockPix - searchR - 1)
		var total, terms uint64
		for bi := 0; bi < blocks; bi++ {
			base := r.next() & 0x3FFF
			if base >= lim {
				base -= lim
			}
			best := uint64(1 << 20)
			for off := uint64(0); off < searchR; off++ {
				sad := uint64(0)
				terminated := false
				for k := uint64(0); k < blockPix; k++ {
					a := int64(cur[base+k])
					c := int64(ref[base+off+k])
					d := a - c
					if d < 0 {
						d = -d
					}
					sad += uint64(d)
					if sad >= best {
						terms++
						terminated = true
						break
					}
				}
				if !terminated && sad < best {
					best = sad
				}
			}
			total += best
		}
		return []uint64{total, terms}
	}
	return Workload{Name: "x264", Flow: Complex, Build: build, Expected: expected}
}
