package workloads

import (
	"math"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

// The six GAP benchmark kernels (Beamer et al.), implemented for real on
// synthetic graphs. All are "simple control flow" per the paper's §V-C
// classification: their H2P branches live in plain loops (the Fig. 1
// pattern) with largely independent dependence chains.

const infDist = uint64(1) << 40

// emitGraph places a graph's CSR arrays and returns their base addresses.
func emitGraph(b *asm.Builder, l *layout, g *graph, withWeights bool) (offs, nbrs, w uint64) {
	offs = l.words(g.n + 1)
	nbrs = l.words(len(g.nbrs) + 1)
	b.DataU64(offs, g.offs)
	b.DataU64(nbrs, g.nbrs)
	if withWeights {
		w = l.words(len(g.w) + 1)
		b.DataU64(w, g.w)
	}
	return
}

// idx emits "dst = base + (i << 3)" (clobbers r28).
func idx(b *asm.Builder, dst, base, i isa.Reg) {
	b.ShlI(isa.R28, i, 3)
	b.Add(dst, base, isa.R28)
}

// --- BFS ---

// BFS builds the breadth-first-search kernel: a frontier queue sweep whose
// "already visited?" check is the canonical data-dependent H2P branch.
func BFS() Workload {
	build := func(scale int) *isa.Program {
		n, d := graphScale(scale)
		g := undirected(genGraph(n, d, 0xBF5))
		b := asm.NewBuilder()
		l := newLayout()
		offs, nbrs, _ := emitGraph(b, l, g, false)
		dist := l.words(g.n)
		queue := l.words(g.n + 1)

		b.Label("main")
		b.LiU(isa.R1, offs)
		b.LiU(isa.R2, nbrs)
		b.LiU(isa.R3, dist)
		b.LiU(isa.R4, queue)
		b.Li(isa.R5, 0) // head
		b.Li(isa.R6, 1) // tail
		b.LiU(isa.R7, infDist)
		b.Li(isa.R9, int64(g.n))
		// dist[i] = INF
		b.Li(isa.R8, 0)
		b.Label("init")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.St(isa.R10, 0, isa.R7)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "init")
		// dist[0] = 0; queue[0] = 0
		b.St(isa.R3, 0, isa.R0)
		b.St(isa.R4, 0, isa.R0)

		b.Label("loop")
		b.Beq(isa.R5, isa.R6, "done")
		idx(b, isa.R10, isa.R4, isa.R5)
		b.Ld(isa.R11, isa.R10, 0) // u
		b.AddI(isa.R5, isa.R5, 1)
		idx(b, isa.R12, isa.R3, isa.R11)
		b.Ld(isa.R13, isa.R12, 0)   // dist[u]
		b.AddI(isa.R13, isa.R13, 1) // du+1
		idx(b, isa.R10, isa.R1, isa.R11)
		b.Ld(isa.R14, isa.R10, 0) // start
		b.Ld(isa.R15, isa.R10, 8) // end
		b.Label("nbr")
		b.Bgeu(isa.R14, isa.R15, "loop")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v
		b.AddI(isa.R14, isa.R14, 1)
		idx(b, isa.R17, isa.R3, isa.R16)
		b.Ld(isa.R18, isa.R17, 0)     // dist[v]
		b.Bne(isa.R18, isa.R7, "nbr") // H2P: visited?
		b.St(isa.R17, 0, isa.R13)
		idx(b, isa.R10, isa.R4, isa.R6)
		b.St(isa.R10, 0, isa.R16)
		b.AddI(isa.R6, isa.R6, 1)
		b.Jmp("nbr")

		b.Label("done")
		// result 0: sum of reachable distances; result 1: reached count
		b.Li(isa.R20, 0)
		b.Li(isa.R21, 0)
		b.Li(isa.R8, 0)
		b.Label("res")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.Beq(isa.R11, isa.R7, "skipres")
		b.Add(isa.R20, isa.R20, isa.R11)
		b.AddI(isa.R21, isa.R21, 1)
		b.Label("skipres")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "res")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n, d := graphScale(scale)
		g := undirected(genGraph(n, d, 0xBF5))
		dist := nativeBFS(g, 0)
		var sum, reached uint64
		for _, dv := range dist {
			if dv != infDist {
				sum += dv
				reached++
			}
		}
		return []uint64{sum, reached}
	}
	return Workload{Name: "bfs", Flow: Simple, Build: build, Expected: expected}
}

func nativeBFS(g *graph, src int) []uint64 {
	dist := make([]uint64, g.n)
	for i := range dist {
		dist[i] = infDist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u] + 1
		for _, v := range g.nbrs[g.offs[u]:g.offs[u+1]] {
			if dist[v] == infDist {
				dist[v] = du
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// --- CC ---

// CC builds the connected-components kernel (min-label propagation).
func CC() Workload {
	build := func(scale int) *isa.Program {
		n, d := graphScale(scale)
		g := undirected(genGraph(n, d, 0xCC7))
		b := asm.NewBuilder()
		l := newLayout()
		offs, nbrs, _ := emitGraph(b, l, g, false)
		label := l.words(g.n)

		b.Label("main")
		b.LiU(isa.R1, offs)
		b.LiU(isa.R2, nbrs)
		b.LiU(isa.R3, label)
		b.Li(isa.R9, int64(g.n))
		// label[i] = i
		b.Li(isa.R8, 0)
		b.Label("init")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.St(isa.R10, 0, isa.R8)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "init")

		b.Label("outer")
		b.Li(isa.R20, 0) // changed
		b.Li(isa.R8, 0)  // u
		b.Label("vloop")
		idx(b, isa.R21, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R21, 0) // lu
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R14, isa.R10, 0)
		b.Ld(isa.R15, isa.R10, 8)
		b.Label("eloop")
		b.Bgeu(isa.R14, isa.R15, "vnext")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v
		b.AddI(isa.R14, isa.R14, 1)
		idx(b, isa.R17, isa.R3, isa.R16)
		b.Ld(isa.R18, isa.R17, 0)         // lv
		b.Bltu(isa.R18, isa.R11, "pullv") // H2P: lv < lu
		b.Bltu(isa.R11, isa.R18, "pushv") // H2P: lu < lv
		b.Jmp("eloop")
		b.Label("pullv")
		b.Mov(isa.R11, isa.R18)
		b.St(isa.R21, 0, isa.R11)
		b.Li(isa.R20, 1)
		b.Jmp("eloop")
		b.Label("pushv")
		b.St(isa.R17, 0, isa.R11)
		b.Li(isa.R20, 1)
		b.Jmp("eloop")
		b.Label("vnext")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "vloop")
		b.Bnez(isa.R20, "outer")

		// result 0: sum of labels; result 1: component count
		b.Li(isa.R20, 0)
		b.Li(isa.R21, 0)
		b.Li(isa.R8, 0)
		b.Label("res")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.Add(isa.R20, isa.R20, isa.R11)
		b.Bne(isa.R11, isa.R8, "skipc")
		b.AddI(isa.R21, isa.R21, 1)
		b.Label("skipc")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "res")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n, d := graphScale(scale)
		g := undirected(genGraph(n, d, 0xCC7))
		label := make([]uint64, g.n)
		for i := range label {
			label[i] = uint64(i)
		}
		for changed := true; changed; {
			changed = false
			for u := 0; u < g.n; u++ {
				lu := label[u]
				for _, v := range g.nbrs[g.offs[u]:g.offs[u+1]] {
					lv := label[v]
					if lv < lu {
						lu = lv
						label[u] = lu
						changed = true
					} else if lu < lv {
						label[v] = lu
						changed = true
					}
				}
			}
		}
		var sum, comps uint64
		for i, lv := range label {
			sum += lv
			if lv == uint64(i) {
				comps++
			}
		}
		return []uint64{sum, comps}
	}
	return Workload{Name: "cc", Flow: Simple, Build: build, Expected: expected}
}

// --- SSSP ---

// SSSP builds the Bellman-Ford kernel with a bounded round count; the relax
// condition is the H2P branch guarding long-latency loads.
func SSSP() Workload {
	const maxRounds = 48
	build := func(scale int) *isa.Program {
		n, d := graphScale(scale)
		g := genGraph(n, d, 0x55B)
		b := asm.NewBuilder()
		l := newLayout()
		offs, nbrs, w := emitGraph(b, l, g, true)
		dist := l.words(g.n)

		b.Label("main")
		b.LiU(isa.R1, offs)
		b.LiU(isa.R2, nbrs)
		b.LiU(isa.R3, dist)
		b.LiU(isa.R4, w)
		b.LiU(isa.R7, infDist)
		b.Li(isa.R9, int64(g.n))
		b.Li(isa.R8, 0)
		b.Label("init")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.St(isa.R10, 0, isa.R7)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "init")
		b.St(isa.R3, 0, isa.R0) // dist[0] = 0
		b.Li(isa.R22, 0)        // round

		b.Label("round")
		b.Li(isa.R20, 0) // changed
		b.Li(isa.R8, 0)  // u
		b.Label("vloop")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R13, isa.R10, 0)       // du
		b.Beq(isa.R13, isa.R7, "vnext") // H2P: unreached yet?
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R14, isa.R10, 0)
		b.Ld(isa.R15, isa.R10, 8)
		b.Label("eloop")
		b.Bgeu(isa.R14, isa.R15, "vnext")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v
		idx(b, isa.R10, isa.R4, isa.R14)
		b.Ld(isa.R19, isa.R10, 0) // weight
		b.AddI(isa.R14, isa.R14, 1)
		b.Add(isa.R19, isa.R13, isa.R19) // nd = du + w
		idx(b, isa.R17, isa.R3, isa.R16)
		b.Ld(isa.R18, isa.R17, 0)         // dist[v]
		b.Bgeu(isa.R19, isa.R18, "eloop") // H2P: relax?
		b.St(isa.R17, 0, isa.R19)
		b.Li(isa.R20, 1)
		b.Jmp("eloop")
		b.Label("vnext")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "vloop")
		b.AddI(isa.R22, isa.R22, 1)
		b.SltI(isa.R23, isa.R22, maxRounds)
		b.Beqz(isa.R23, "finish")
		b.Bnez(isa.R20, "round")

		b.Label("finish")
		b.Li(isa.R20, 0)
		b.Li(isa.R21, 0)
		b.Li(isa.R8, 0)
		b.Label("res")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.Beq(isa.R11, isa.R7, "skipres")
		b.Add(isa.R20, isa.R20, isa.R11)
		b.AddI(isa.R21, isa.R21, 1)
		b.Label("skipres")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "res")
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n, d := graphScale(scale)
		g := genGraph(n, d, 0x55B)
		dist := make([]uint64, g.n)
		for i := range dist {
			dist[i] = infDist
		}
		dist[0] = 0
		for round := 0; round < maxRounds; round++ {
			changed := false
			for u := 0; u < g.n; u++ {
				du := dist[u]
				if du == infDist {
					continue
				}
				for e := g.offs[u]; e < g.offs[u+1]; e++ {
					v := g.nbrs[e]
					nd := du + g.w[e]
					if nd < dist[v] {
						dist[v] = nd
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		var sum, reached uint64
		for _, dv := range dist {
			if dv != infDist {
				sum += dv
				reached++
			}
		}
		return []uint64{sum, reached}
	}
	return Workload{Name: "sssp", Flow: Simple, Build: build, Expected: expected}
}

// --- PR ---

// PR builds the PageRank kernel: push-style rank distribution with a
// floating-point convergence check per vertex.
func PR() Workload {
	const iters = 12
	build := func(scale int) *isa.Program {
		n, d := graphScale(scale)
		g := genGraph(n, d, 0x9A6E)
		b := asm.NewBuilder()
		l := newLayout()
		offs, nbrs, _ := emitGraph(b, l, g, false)
		rank := l.words(g.n)
		next := l.words(g.n)

		base := 0.15 / float64(g.n)
		init := 1.0 / float64(g.n)
		eps := 1.0 / float64(16*g.n)

		b.Label("main")
		b.LiU(isa.R1, offs)
		b.LiU(isa.R2, nbrs)
		b.LiU(isa.R3, rank)
		b.LiU(isa.R4, next)
		b.Li(isa.R9, int64(g.n))
		b.Li(isa.R24, int64(math.Float64bits(base)))
		b.Li(isa.R25, int64(math.Float64bits(init)))
		b.Li(isa.R26, int64(math.Float64bits(0.85)))
		b.Li(isa.R27, int64(math.Float64bits(eps)))
		// rank[i] = 1/n
		b.Li(isa.R8, 0)
		b.Label("init")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.St(isa.R10, 0, isa.R25)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "init")
		b.Li(isa.R22, 0) // iter

		b.Label("iter")
		// next[i] = base
		b.Li(isa.R8, 0)
		b.Label("clr")
		idx(b, isa.R10, isa.R4, isa.R8)
		b.St(isa.R10, 0, isa.R24)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "clr")
		// push contributions
		b.Li(isa.R8, 0)
		b.Label("vloop")
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R14, isa.R10, 0)
		b.Ld(isa.R15, isa.R10, 8)
		b.Beq(isa.R14, isa.R15, "vnext") // no out-edges
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R10, 0) // rank[u] bits
		b.Sub(isa.R12, isa.R15, isa.R14)
		b.FCvt(isa.R12, isa.R12)          // deg as f64
		b.FDiv(isa.R11, isa.R11, isa.R12) // share
		b.FMul(isa.R11, isa.R11, isa.R26) // 0.85*share
		b.Label("eloop")
		b.Bgeu(isa.R14, isa.R15, "vnext")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v
		b.AddI(isa.R14, isa.R14, 1)
		idx(b, isa.R17, isa.R4, isa.R16)
		b.Ld(isa.R18, isa.R17, 0)
		b.FAdd(isa.R18, isa.R18, isa.R11)
		b.St(isa.R17, 0, isa.R18)
		b.Jmp("eloop")
		b.Label("vnext")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "vloop")
		// convergence count + copy next->rank
		b.Li(isa.R20, 0) // active
		b.Li(isa.R8, 0)
		b.Label("conv")
		idx(b, isa.R10, isa.R4, isa.R8)
		b.Ld(isa.R18, isa.R10, 0) // next
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R10, 0) // rank
		b.St(isa.R10, 0, isa.R18)
		b.FSub(isa.R12, isa.R18, isa.R11)
		b.FLt(isa.R13, isa.R12, isa.R0) // diff < 0.0 (bits of 0.0 == 0)
		b.Beqz(isa.R13, "abs")
		b.Xor(isa.R28, isa.R28, isa.R28)
		b.FSub(isa.R12, isa.R28, isa.R12) // negate via 0.0 - diff
		b.Label("abs")
		b.FLt(isa.R13, isa.R27, isa.R12) // eps < |diff|  (H2P: data-dependent)
		b.Beqz(isa.R13, "inactive")
		b.AddI(isa.R20, isa.R20, 1)
		b.Label("inactive")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "conv")
		b.AddI(isa.R22, isa.R22, 1)
		b.SltI(isa.R23, isa.R22, iters)
		b.Bnez(isa.R23, "iter")

		// result 0: last active count; result 1: scaled rank sum
		storeResult(b, 0, isa.R20)
		b.Li(isa.R20, 0) // fp sum bits in r20
		b.Li(isa.R8, 0)
		b.Label("res")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.FAdd(isa.R20, isa.R20, isa.R11)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "res")
		b.Li(isa.R11, int64(math.Float64bits(1e6)))
		b.FMul(isa.R20, isa.R20, isa.R11)
		b.FInt(isa.R20, isa.R20)
		storeResult(b, 1, isa.R20)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n, d := graphScale(scale)
		g := genGraph(n, d, 0x9A6E)
		base := 0.15 / float64(g.n)
		eps := 1.0 / float64(16*g.n)
		rank := make([]float64, g.n)
		next := make([]float64, g.n)
		for i := range rank {
			rank[i] = 1.0 / float64(g.n)
		}
		var active uint64
		for it := 0; it < iters; it++ {
			for i := range next {
				next[i] = base
			}
			for u := 0; u < g.n; u++ {
				deg := g.offs[u+1] - g.offs[u]
				if deg == 0 {
					continue
				}
				contrib := 0.85 * (rank[u] / float64(deg))
				for _, v := range g.nbrs[g.offs[u]:g.offs[u+1]] {
					next[v] += contrib
				}
			}
			active = 0
			for i := range rank {
				diff := next[i] - rank[i]
				old := rank[i]
				rank[i] = next[i]
				_ = old
				if diff < 0 {
					diff = 0 - diff
				}
				if eps < diff {
					active++
				}
			}
		}
		var sum float64
		for _, rv := range rank {
			sum += rv
		}
		return []uint64{active, uint64(int64(sum * 1e6))}
	}
	return Workload{Name: "pr", Flow: Simple, Build: build, Expected: expected}
}

// --- TC ---

// TC builds the triangle-counting kernel: sorted adjacency merge
// intersection, whose comparison ladder is notoriously hard to predict.
func TC() Workload {
	build := func(scale int) *isa.Program {
		n, d := graphScale(scale)
		g := undirected(genGraph(n/2, d, 0x7C7)) // halve n: tc is O(m^1.5)
		b := asm.NewBuilder()
		l := newLayout()
		offs, nbrs, _ := emitGraph(b, l, g, false)

		b.Label("main")
		b.LiU(isa.R1, offs)
		b.LiU(isa.R2, nbrs)
		b.Li(isa.R9, int64(g.n))
		b.Li(isa.R20, 0) // triangles
		b.Li(isa.R8, 0)  // u
		b.Label("uloop")
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R14, isa.R10, 0) // e
		b.Ld(isa.R15, isa.R10, 8) // eEnd
		b.Label("eloop")
		b.Bgeu(isa.R14, isa.R15, "unext")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v
		b.AddI(isa.R14, isa.R14, 1)
		b.Bgeu(isa.R8, isa.R16, "eloop") // orientation: v > u only
		// merge N(u) x N(v)
		idx(b, isa.R10, isa.R1, isa.R8)
		b.Ld(isa.R11, isa.R10, 0) // i
		idx(b, isa.R10, isa.R1, isa.R16)
		b.Ld(isa.R12, isa.R10, 0) // j
		b.Ld(isa.R13, isa.R10, 8) // jEnd
		b.Label("merge")
		b.Bgeu(isa.R11, isa.R15, "eloop")
		b.Bgeu(isa.R12, isa.R13, "eloop")
		idx(b, isa.R10, isa.R2, isa.R11)
		b.Ld(isa.R18, isa.R10, 0) // a
		idx(b, isa.R10, isa.R2, isa.R12)
		b.Ld(isa.R19, isa.R10, 0)        // c
		b.Bltu(isa.R18, isa.R19, "adva") // H2P ladder
		b.Bltu(isa.R19, isa.R18, "advb")
		b.Bgeu(isa.R16, isa.R18, "advc") // only w > v
		b.AddI(isa.R20, isa.R20, 1)
		b.Label("advc")
		b.AddI(isa.R11, isa.R11, 1)
		b.AddI(isa.R12, isa.R12, 1)
		b.Jmp("merge")
		b.Label("adva")
		b.AddI(isa.R11, isa.R11, 1)
		b.Jmp("merge")
		b.Label("advb")
		b.AddI(isa.R12, isa.R12, 1)
		b.Jmp("merge")
		b.Label("unext")
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "uloop")
		storeResult(b, 0, isa.R20)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n, d := graphScale(scale)
		g := undirected(genGraph(n/2, d, 0x7C7))
		var count uint64
		for u := 0; u < g.n; u++ {
			for _, v64 := range g.nbrs[g.offs[u]:g.offs[u+1]] {
				v := int(v64)
				if v <= u {
					continue
				}
				i, iEnd := g.offs[u], g.offs[u+1]
				j, jEnd := g.offs[v], g.offs[v+1]
				for i < iEnd && j < jEnd {
					a, c := g.nbrs[i], g.nbrs[j]
					switch {
					case a < c:
						i++
					case c < a:
						j++
					default:
						if a > uint64(v) {
							count++
						}
						i++
						j++
					}
				}
			}
		}
		return []uint64{count}
	}
	return Workload{Name: "tc", Flow: Simple, Build: build, Expected: expected}
}

// --- BC ---

// BC builds the Brandes betweenness-centrality kernel (single source):
// a forward BFS with path counting and a backward dependency accumulation.
func BC() Workload {
	build := func(scale int) *isa.Program {
		n, d := graphScale(scale)
		g := undirected(genGraph(n, d, 0xBC4))
		b := asm.NewBuilder()
		l := newLayout()
		offs, nbrs, _ := emitGraph(b, l, g, false)
		dist := l.words(g.n)
		sigma := l.words(g.n)
		order := l.words(g.n + 1)
		delta := l.words(g.n)

		b.Label("main")
		b.LiU(isa.R1, offs)
		b.LiU(isa.R2, nbrs)
		b.LiU(isa.R3, dist)
		b.LiU(isa.R4, order)
		b.LiU(isa.R5, sigma)
		b.LiU(isa.R6, delta)
		b.LiU(isa.R7, infDist)
		b.Li(isa.R9, int64(g.n))
		// init dist=INF sigma=0 delta=0.0
		b.Li(isa.R8, 0)
		b.Label("init")
		idx(b, isa.R10, isa.R3, isa.R8)
		b.St(isa.R10, 0, isa.R7)
		idx(b, isa.R10, isa.R5, isa.R8)
		b.St(isa.R10, 0, isa.R0)
		idx(b, isa.R10, isa.R6, isa.R8)
		b.St(isa.R10, 0, isa.R0)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "init")
		b.St(isa.R3, 0, isa.R0) // dist[0]=0
		b.Li(isa.R11, 1)
		b.St(isa.R5, 0, isa.R11) // sigma[0]=1
		b.St(isa.R4, 0, isa.R0)  // order[0]=0
		b.Li(isa.R21, 0)         // head
		b.Li(isa.R22, 1)         // tail

		b.Label("bfs")
		b.Beq(isa.R21, isa.R22, "back")
		idx(b, isa.R10, isa.R4, isa.R21)
		b.Ld(isa.R11, isa.R10, 0) // u
		b.AddI(isa.R21, isa.R21, 1)
		idx(b, isa.R10, isa.R3, isa.R11)
		b.Ld(isa.R13, isa.R10, 0)
		b.AddI(isa.R13, isa.R13, 1) // du+1
		idx(b, isa.R12, isa.R5, isa.R11)
		b.Ld(isa.R23, isa.R12, 0) // sigma[u]
		idx(b, isa.R10, isa.R1, isa.R11)
		b.Ld(isa.R14, isa.R10, 0)
		b.Ld(isa.R15, isa.R10, 8)
		b.Label("nbr")
		b.Bgeu(isa.R14, isa.R15, "bfs")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v
		b.AddI(isa.R14, isa.R14, 1)
		idx(b, isa.R17, isa.R3, isa.R16)
		b.Ld(isa.R18, isa.R17, 0)
		b.Beq(isa.R18, isa.R7, "discover") // H2P
		b.Bne(isa.R18, isa.R13, "nbr")     // H2P: same-level path?
		// sigma[v] += sigma[u]
		idx(b, isa.R10, isa.R5, isa.R16)
		b.Ld(isa.R19, isa.R10, 0)
		b.Add(isa.R19, isa.R19, isa.R23)
		b.St(isa.R10, 0, isa.R19)
		b.Jmp("nbr")
		b.Label("discover")
		b.St(isa.R17, 0, isa.R13)
		idx(b, isa.R10, isa.R5, isa.R16)
		b.St(isa.R10, 0, isa.R23)
		idx(b, isa.R10, isa.R4, isa.R22)
		b.St(isa.R10, 0, isa.R16)
		b.AddI(isa.R22, isa.R22, 1)
		b.Jmp("nbr")

		// Backward accumulation in reverse BFS order.
		b.Label("back")
		b.Label("bloop")
		b.Beqz(isa.R22, "finish")
		b.AddI(isa.R22, isa.R22, -1)
		idx(b, isa.R10, isa.R4, isa.R22)
		b.Ld(isa.R11, isa.R10, 0) // w
		idx(b, isa.R10, isa.R3, isa.R11)
		b.Ld(isa.R13, isa.R10, 0)
		b.AddI(isa.R13, isa.R13, 1) // dw+1
		idx(b, isa.R10, isa.R5, isa.R11)
		b.Ld(isa.R23, isa.R10, 0)
		b.FCvt(isa.R23, isa.R23) // f(sigma[w])
		idx(b, isa.R24, isa.R6, isa.R11)
		b.Ld(isa.R25, isa.R24, 0) // delta[w] bits
		idx(b, isa.R10, isa.R1, isa.R11)
		b.Ld(isa.R14, isa.R10, 0)
		b.Ld(isa.R15, isa.R10, 8)
		b.Label("bnbr")
		b.Bgeu(isa.R14, isa.R15, "bstore")
		idx(b, isa.R10, isa.R2, isa.R14)
		b.Ld(isa.R16, isa.R10, 0) // v (successor candidate)
		b.AddI(isa.R14, isa.R14, 1)
		idx(b, isa.R10, isa.R3, isa.R16)
		b.Ld(isa.R18, isa.R10, 0)
		b.Bne(isa.R18, isa.R13, "bnbr") // H2P: dist[v] == dist[w]+1 ?
		// delta[w] += sigma[w]/sigma[v] * (1 + delta[v])
		idx(b, isa.R10, isa.R5, isa.R16)
		b.Ld(isa.R19, isa.R10, 0)
		b.FCvt(isa.R19, isa.R19)
		b.FDiv(isa.R19, isa.R23, isa.R19)
		idx(b, isa.R10, isa.R6, isa.R16)
		b.Ld(isa.R26, isa.R10, 0)
		b.Li(isa.R27, int64(math.Float64bits(1.0)))
		b.FAdd(isa.R26, isa.R26, isa.R27)
		b.FMul(isa.R19, isa.R19, isa.R26)
		b.FAdd(isa.R25, isa.R25, isa.R19)
		b.Jmp("bnbr")
		b.Label("bstore")
		b.St(isa.R24, 0, isa.R25)
		b.Jmp("bloop")

		b.Label("finish")
		// result 0: scaled sum of delta; result 1: sum of sigma
		b.Li(isa.R20, 0)
		b.Li(isa.R21, 0)
		b.Li(isa.R8, 0)
		b.Label("res")
		idx(b, isa.R10, isa.R6, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.FAdd(isa.R20, isa.R20, isa.R11)
		idx(b, isa.R10, isa.R5, isa.R8)
		b.Ld(isa.R11, isa.R10, 0)
		b.Add(isa.R21, isa.R21, isa.R11)
		b.AddI(isa.R8, isa.R8, 1)
		b.Blt(isa.R8, isa.R9, "res")
		b.Li(isa.R11, int64(math.Float64bits(1e3)))
		b.FMul(isa.R20, isa.R20, isa.R11)
		b.FInt(isa.R20, isa.R20)
		storeResult(b, 0, isa.R20)
		storeResult(b, 1, isa.R21)
		b.Halt()
		return b.MustBuild()
	}
	expected := func(scale int) []uint64 {
		n, d := graphScale(scale)
		g := undirected(genGraph(n, d, 0xBC4))
		dist := make([]uint64, g.n)
		sigma := make([]uint64, g.n)
		delta := make([]float64, g.n)
		for i := range dist {
			dist[i] = infDist
		}
		dist[0] = 0
		sigma[0] = 1
		order := []int{0}
		for head := 0; head < len(order); head++ {
			u := order[head]
			du := dist[u] + 1
			su := sigma[u]
			for _, v := range g.nbrs[g.offs[u]:g.offs[u+1]] {
				if dist[v] == infDist {
					dist[v] = du
					sigma[v] = su
					order = append(order, int(v))
				} else if dist[v] == du {
					sigma[v] += su
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			dw := dist[w] + 1
			sw := float64(sigma[w])
			dcc := delta[w]
			for _, v := range g.nbrs[g.offs[w]:g.offs[w+1]] {
				if dist[v] == dw {
					dcc += sw / float64(sigma[v]) * (1 + delta[v])
				}
			}
			delta[w] = dcc
		}
		var dsum float64
		var ssum uint64
		for i := 0; i < g.n; i++ {
			dsum += delta[i]
			ssum += sigma[i]
		}
		return []uint64{uint64(int64(dsum * 1e3)), ssum}
	}
	return Workload{Name: "bc", Flow: Simple, Build: build, Expected: expected}
}
