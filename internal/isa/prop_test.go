package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// allOps enumerates every defined opcode.
func allOps() []Op {
	ops := make([]Op, 0, int(numOps))
	for op := Op(0); op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

// TestOpcodeInvariantsExhaustive checks structural invariants that must hold
// for every opcode, not just the sampled ones in TestClassification.
func TestOpcodeInvariantsExhaustive(t *testing.T) {
	for _, op := range allOps() {
		in := Inst{Op: op, Rd: R3, Rs1: R4, Rs2: R5, Imm: 0x1000}

		// Mnemonics are unique and non-empty.
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}

		// Memory size agrees with load/store classification.
		if (in.MemBytes() > 0) != (in.IsLoad() || in.IsStore()) {
			t.Errorf("%v: MemBytes=%d but IsLoad=%v IsStore=%v",
				op, in.MemBytes(), in.IsLoad(), in.IsStore())
		}

		// Conditional branches are branches; indirect flow is a jump.
		if in.IsCondBranch() && !in.IsBranch() {
			t.Errorf("%v: IsCondBranch without IsBranch", op)
		}
		if in.IsIndirect() && in.Class() != ClassJump {
			t.Errorf("%v: IsIndirect but class %v", op, in.Class())
		}
		if in.IsCall() && in.Class() != ClassJump {
			t.Errorf("%v: IsCall but class %v", op, in.Class())
		}
		if in.IsReturn() && !in.IsIndirect() {
			t.Errorf("%v: IsReturn but not indirect", op)
		}

		// Stores, conditional branches, nop/halt never write a register.
		switch in.Class() {
		case ClassStore, ClassBranch, ClassNop, ClassHalt:
			if in.HasDest() {
				t.Errorf("%v: HasDest true for class %v", op, in.Class())
			}
		}

		// Srcs appends (never reallocates a prefix away) and stays ≤2.
		pre := []Reg{LR}
		got := in.Srcs(pre)
		if len(got) < 1 || got[0] != LR {
			t.Errorf("%v: Srcs clobbered the prefix", op)
		}
		if n := len(got) - 1; n > 2 {
			t.Errorf("%v: %d sources", op, n)
		}

		// Stores read exactly address base + data registers.
		if in.IsStore() {
			if n := len(in.Srcs(nil)); n != 2 {
				t.Errorf("%v: store has %d sources, want 2", op, n)
			}
		}
		// Loads read exactly the address base.
		if in.IsLoad() {
			if n := len(in.Srcs(nil)); n != 1 {
				t.Errorf("%v: load has %d sources, want 1", op, n)
			}
		}

		// String never panics and mentions the mnemonic.
		if s := in.String(); !strings.Contains(s, op.String()) {
			t.Errorf("%v: disassembly %q missing mnemonic", op, s)
		}
	}
}

// TestInstAtProperty: InstAt returns non-nil exactly for aligned addresses
// inside the code segment, and the returned pointer identifies the right
// instruction.
func TestInstAtProperty(t *testing.T) {
	p := &Program{CodeBase: 0x10000, Code: make([]Inst, 100)}
	for i := range p.Code {
		p.Code[i] = Inst{Op: OpAddI, Rd: R1, Rs1: R1, Imm: int64(i)}
	}
	f := func(raw uint64) bool {
		// Bias half the samples into the interesting window around the
		// segment; leave the rest fully random.
		pc := raw
		if raw%2 == 0 {
			pc = p.CodeBase - 64 + raw%(uint64(len(p.Code))*InstBytes+128)
		}
		in := p.InstAt(pc)
		inSeg := pc >= p.CodeBase && pc < p.CodeEnd() && (pc-p.CodeBase)%InstBytes == 0
		if (in != nil) != inSeg {
			return false
		}
		if in != nil && in.Imm != int64((pc-p.CodeBase)/InstBytes) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCodeEndEmpty covers the degenerate empty program.
func TestCodeEndEmpty(t *testing.T) {
	p := &Program{CodeBase: 0x4000}
	if p.CodeEnd() != 0x4000 {
		t.Fatalf("CodeEnd=%#x", p.CodeEnd())
	}
	if p.InstAt(0x4000) != nil {
		t.Fatal("InstAt on empty program")
	}
}

// TestSrcsNeverIncludeDest: for every opcode with a destination, the
// destination register is not reported as a source (the µISA has no
// read-modify-write encodings; rename relies on this).
func TestSrcsNeverIncludeDest(t *testing.T) {
	for _, op := range allOps() {
		in := Inst{Op: op, Rd: R7, Rs1: R8, Rs2: R9}
		if !in.HasDest() {
			continue
		}
		for _, s := range in.Srcs(nil) {
			if s == in.Rd {
				t.Errorf("%v: dest r%d also listed as source", op, in.Rd)
			}
		}
	}
}

// TestDisassemblyStable: random instructions disassemble deterministically
// and non-emptily (fuzz against formatting panics on weird operand values).
func TestDisassemblyStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := Inst{
			Op:  Op(rng.Intn(int(numOps))),
			Rd:  Reg(rng.Intn(NumRegs)),
			Rs1: Reg(rng.Intn(NumRegs)),
			Rs2: Reg(rng.Intn(NumRegs)),
			Imm: rng.Int63() - rng.Int63(),
		}
		a, b := in.String(), in.String()
		if a == "" || a != b {
			t.Fatalf("unstable disassembly for %+v: %q vs %q", in, a, b)
		}
	}
}
