package isa

import "testing"

func TestClassification(t *testing.T) {
	cases := []struct {
		in   Inst
		cls  Class
		br   bool
		cond bool
		ind  bool
	}{
		{Inst{Op: OpAdd}, ClassALU, false, false, false},
		{Inst{Op: OpMul}, ClassMul, false, false, false},
		{Inst{Op: OpDiv}, ClassDiv, false, false, false},
		{Inst{Op: OpFAdd}, ClassFP, false, false, false},
		{Inst{Op: OpLd}, ClassLoad, false, false, false},
		{Inst{Op: OpSt}, ClassStore, false, false, false},
		{Inst{Op: OpBeq}, ClassBranch, true, true, false},
		{Inst{Op: OpJmp}, ClassJump, true, false, false},
		{Inst{Op: OpRet}, ClassJump, true, false, true},
		{Inst{Op: OpJr}, ClassJump, true, false, true},
		{Inst{Op: OpCallR}, ClassJump, true, false, true},
		{Inst{Op: OpCall}, ClassJump, true, false, false},
		{Inst{Op: OpHalt}, ClassHalt, false, false, false},
		{Inst{Op: OpNop}, ClassNop, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.Class(); got != c.cls {
			t.Errorf("%v: Class=%v want %v", c.in.Op, got, c.cls)
		}
		if got := c.in.IsBranch(); got != c.br {
			t.Errorf("%v: IsBranch=%v want %v", c.in.Op, got, c.br)
		}
		if got := c.in.IsCondBranch(); got != c.cond {
			t.Errorf("%v: IsCondBranch=%v want %v", c.in.Op, got, c.cond)
		}
		if got := c.in.IsIndirect(); got != c.ind {
			t.Errorf("%v: IsIndirect=%v want %v", c.in.Op, got, c.ind)
		}
	}
}

func TestMemBytes(t *testing.T) {
	for _, c := range []struct {
		op Op
		n  int
	}{
		{OpLd, 8}, {OpLd4, 4}, {OpLd1, 1},
		{OpSt, 8}, {OpSt4, 4}, {OpSt1, 1},
		{OpAdd, 0}, {OpBeq, 0},
	} {
		in := Inst{Op: c.op}
		if got := in.MemBytes(); got != c.n {
			t.Errorf("%v: MemBytes=%d want %d", c.op, got, c.n)
		}
	}
}

func TestHasDest(t *testing.T) {
	for _, c := range []struct {
		op  Op
		has bool
	}{
		{OpAdd, true}, {OpLi, true}, {OpLd, true}, {OpFAdd, true},
		{OpCall, true}, {OpCallR, true},
		{OpSt, false}, {OpBeq, false}, {OpJmp, false}, {OpRet, false},
		{OpJr, false}, {OpNop, false}, {OpHalt, false},
	} {
		in := Inst{Op: c.op}
		if got := in.HasDest(); got != c.has {
			t.Errorf("%v: HasDest=%v want %v", c.op, got, c.has)
		}
	}
}

func TestSrcs(t *testing.T) {
	cases := []struct {
		in Inst
		n  int
	}{
		{Inst{Op: OpAdd, Rs1: R1, Rs2: R2}, 2},
		{Inst{Op: OpAddI, Rs1: R1}, 1},
		{Inst{Op: OpLi}, 0},
		{Inst{Op: OpLd, Rs1: R3}, 1},
		{Inst{Op: OpSt, Rs1: R3, Rs2: R4}, 2},
		{Inst{Op: OpBeq, Rs1: R1, Rs2: R2}, 2},
		{Inst{Op: OpJmp}, 0},
		{Inst{Op: OpCall}, 0},
		{Inst{Op: OpRet, Rs1: LR}, 1},
		{Inst{Op: OpJr, Rs1: R5}, 1},
		{Inst{Op: OpHalt}, 0},
	}
	for _, c := range cases {
		got := c.in.Srcs(nil)
		if len(got) != c.n {
			t.Errorf("%v: Srcs len=%d want %d", c.in.Op, len(got), c.n)
		}
	}
}

func TestProgramInstAt(t *testing.T) {
	p := &Program{
		Code:     []Inst{{Op: OpLi, Rd: R1, Imm: 7}, {Op: OpHalt}},
		CodeBase: 0x1000,
	}
	if in := p.InstAt(0x1000); in == nil || in.Op != OpLi {
		t.Fatalf("InstAt(0x1000) = %v", in)
	}
	if in := p.InstAt(0x1004); in == nil || in.Op != OpHalt {
		t.Fatalf("InstAt(0x1004) = %v", in)
	}
	if in := p.InstAt(0x1008); in != nil {
		t.Fatalf("InstAt past end = %v, want nil", in)
	}
	if in := p.InstAt(0x1002); in != nil {
		t.Fatalf("InstAt misaligned = %v, want nil", in)
	}
	if in := p.InstAt(0xfff); in != nil {
		t.Fatalf("InstAt below base = %v, want nil", in)
	}
	if got := p.CodeEnd(); got != 0x1008 {
		t.Fatalf("CodeEnd = %#x, want 0x1008", got)
	}
}

func TestStringMnemonics(t *testing.T) {
	// Every opcode must have a distinct, non-placeholder mnemonic.
	seen := map[string]Op{}
	for op := OpNop; op < numOps; op++ {
		s := op.String()
		if s == "" || s[0] == 'o' && len(s) > 3 && s[:3] == "op(" {
			t.Errorf("opcode %d has placeholder name %q", op, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q reused by %d and %d", s, prev, op)
		}
		seen[s] = op
	}
	in := Inst{Op: OpBeq, Rs1: R1, Rs2: R2, Imm: 0x40}
	if got := in.String(); got != "beq r1, r2, 0x40" {
		t.Errorf("String() = %q", got)
	}
}
