// Package isa defines the µISA executed by the simulator: a fixed-length,
// RISC-like instruction set with 32 general-purpose registers, compare-and-
// branch control flow, and 64-bit flat addressing.
//
// Every instruction occupies 4 bytes of the code address space, so a 128-byte
// fetch block holds 32 instructions — matching the paper's decoupled branch
// predictor throughput of "up to 128B or ~32 instructions per cycle".
// One instruction is one micro-op (the paper's footnote 2 notes that
// instruction granularity suffices for fixed-length ISAs).
package isa

import "fmt"

// Reg names an architectural register. R0 is hardwired to zero.
type Reg uint8

// Architectural register conventions. SP and LR are software conventions
// used by the assembler's call/ret helpers; the hardware treats them as
// ordinary registers (except R0, which always reads zero).
const (
	R0 Reg = iota // always zero
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	SP // R30: stack pointer by convention
	LR // R31: link register (written by CALL, read by RET)

	// NumRegs is the number of architectural registers.
	NumRegs = 32
)

// InstBytes is the size of one encoded instruction in the code address space.
const InstBytes = 4

// Op is a µISA opcode.
type Op uint8

// Opcodes. Grouped by execution class; see Inst for operand meanings.
const (
	OpNop Op = iota
	OpHalt

	// ALU register-register: Rd = Rs1 <op> Rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl  // logical left shift by Rs2&63
	OpShr  // logical right shift by Rs2&63
	OpSar  // arithmetic right shift by Rs2&63
	OpMul  // low 64 bits
	OpDiv  // signed; x/0 = 0 (architecturally defined, no trap)
	OpRem  // signed; x%0 = x
	OpSltu // Rd = (Rs1 <u Rs2) ? 1 : 0
	OpSlt  // Rd = (Rs1 <s Rs2) ? 1 : 0
	OpMin  // signed minimum
	OpMax  // signed maximum

	// ALU register-immediate: Rd = Rs1 <op> Imm.
	OpAddI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpMulI
	OpSltI  // Rd = (Rs1 <s Imm) ? 1 : 0
	OpSltuI // Rd = (Rs1 <u Imm) ? 1 : 0
	OpLi    // Rd = Imm (64-bit immediate load)

	// Floating point. Register bits are reinterpreted as float64.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFLt  // Rd = (f(Rs1) < f(Rs2)) ? 1 : 0 (integer result)
	OpFCvt // Rd = float64(int64(Rs1)) as bits
	OpFInt // Rd = int64(f(Rs1))

	// Memory. Address = Rs1 + Imm. Loads zero-extend.
	OpLd  // 8-byte load into Rd
	OpLd4 // 4-byte load into Rd
	OpLd1 // 1-byte load into Rd
	OpSt  // 8-byte store of Rs2
	OpSt4 // 4-byte store of Rs2
	OpSt1 // 1-byte store of Rs2

	// Conditional branches: if (Rs1 <cond> Rs2) PC = Imm (absolute target).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Unconditional control flow.
	OpJmp   // PC = Imm
	OpCall  // LR-equivalent: Rd (conventionally LR) = PC+4; PC = Imm
	OpRet   // PC = Rs1 (conventionally LR); paired with RAS
	OpJr    // PC = Rs1 + Imm (indirect jump, e.g. switch tables)
	OpCallR // Rd = PC+4; PC = Rs1 (indirect call)

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpSltu: "sltu", OpSlt: "slt", OpMin: "min", OpMax: "max",
	OpAddI: "addi", OpAndI: "andi", OpOrI: "ori", OpXorI: "xori",
	OpShlI: "shli", OpShrI: "shri", OpMulI: "muli", OpSltI: "slti",
	OpSltuI: "sltui", OpLi: "li",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFLt: "flt", OpFCvt: "fcvt", OpFInt: "fint",
	OpLd: "ld", OpLd4: "ld4", OpLd1: "ld1",
	OpSt: "st", OpSt4: "st4", OpSt1: "st1",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpJr: "jr", OpCallR: "callr",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Inst is one decoded µISA instruction. The simulator stores programs as
// []Inst; the instruction at code address A is Code[(A-CodeBase)/InstBytes].
type Inst struct {
	Op  Op
	Rd  Reg   // destination register (0 = no destination for most classes)
	Rs1 Reg   // first source
	Rs2 Reg   // second source (also store data register)
	Imm int64 // immediate / absolute branch target / address offset
}

// Class is a coarse execution class used for port binding and latency.
type Class uint8

// Execution classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassFP
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional control flow (direct and indirect)
	ClassHalt
)

// Class returns the execution class of the instruction.
func (in *Inst) Class() Class {
	switch in.Op {
	case OpNop:
		return ClassNop
	case OpHalt:
		return ClassHalt
	case OpMul, OpMulI:
		return ClassMul
	case OpDiv, OpRem:
		return ClassDiv
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFLt, OpFCvt, OpFInt:
		return ClassFP
	case OpLd, OpLd4, OpLd1:
		return ClassLoad
	case OpSt, OpSt4, OpSt1:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return ClassBranch
	case OpJmp, OpCall, OpRet, OpJr, OpCallR:
		return ClassJump
	default:
		return ClassALU
	}
}

// IsBranch reports whether the instruction can redirect control flow.
func (in *Inst) IsBranch() bool {
	c := in.Class()
	return c == ClassBranch || c == ClassJump
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (in *Inst) IsCondBranch() bool { return in.Class() == ClassBranch }

// IsIndirect reports whether the branch target comes from a register.
func (in *Inst) IsIndirect() bool {
	switch in.Op {
	case OpRet, OpJr, OpCallR:
		return true
	}
	return false
}

// IsCall reports whether the instruction pushes a return address.
func (in *Inst) IsCall() bool { return in.Op == OpCall || in.Op == OpCallR }

// IsReturn reports whether the instruction pops the return-address stack.
func (in *Inst) IsReturn() bool { return in.Op == OpRet }

// IsLoad reports whether the instruction reads memory.
func (in *Inst) IsLoad() bool { return in.Class() == ClassLoad }

// IsStore reports whether the instruction writes memory.
func (in *Inst) IsStore() bool { return in.Class() == ClassStore }

// MemBytes returns the access size in bytes for loads/stores, else 0.
func (in *Inst) MemBytes() int {
	switch in.Op {
	case OpLd, OpSt:
		return 8
	case OpLd4, OpSt4:
		return 4
	case OpLd1, OpSt1:
		return 1
	}
	return 0
}

// HasDest reports whether the instruction writes a register. R0 writes are
// architecturally discarded but still reported here; renaming handles R0.
func (in *Inst) HasDest() bool {
	switch in.Class() {
	case ClassNop, ClassHalt, ClassStore, ClassBranch:
		return false
	case ClassJump:
		return in.Op == OpCall || in.Op == OpCallR
	}
	return true
}

// Srcs appends the source registers of the instruction to dst and returns
// it. R0 is included (it reads as zero but participates in dependence
// tracking uniformly; consumers may skip it).
func (in *Inst) Srcs(dst []Reg) []Reg {
	switch in.Op {
	case OpNop, OpHalt, OpLi, OpJmp, OpCall:
		return dst
	case OpAddI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpMulI, OpSltI,
		OpSltuI, OpFCvt, OpFInt, OpLd, OpLd4, OpLd1, OpRet, OpJr, OpCallR:
		return append(dst, in.Rs1)
	case OpSt, OpSt4, OpSt1:
		return append(dst, in.Rs1, in.Rs2)
	default:
		return append(dst, in.Rs1, in.Rs2)
	}
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Class() {
	case ClassNop, ClassHalt:
		return in.Op.String()
	case ClassBranch:
		return fmt.Sprintf("%s r%d, r%d, 0x%x", in.Op, in.Rs1, in.Rs2, uint64(in.Imm))
	case ClassStore:
		return fmt.Sprintf("%s [r%d%+d], r%d", in.Op, in.Rs1, in.Imm, in.Rs2)
	case ClassLoad:
		return fmt.Sprintf("%s r%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case ClassJump:
		switch in.Op {
		case OpJmp:
			return fmt.Sprintf("jmp 0x%x", uint64(in.Imm))
		case OpCall:
			return fmt.Sprintf("call 0x%x", uint64(in.Imm))
		case OpRet:
			return fmt.Sprintf("ret r%d", in.Rs1)
		case OpJr:
			return fmt.Sprintf("jr r%d%+d", in.Rs1, in.Imm)
		case OpCallR:
			return fmt.Sprintf("callr r%d", in.Rs1)
		}
	}
	switch in.Op {
	case OpLi:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case OpAddI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI, OpMulI, OpSltI, OpSltuI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpFCvt, OpFInt:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
}

// Program is a complete executable image: code plus initial data.
type Program struct {
	// Code is the instruction array. The instruction at address
	// CodeBase + i*InstBytes is Code[i].
	Code []Inst
	// CodeBase is the address of Code[0].
	CodeBase uint64
	// Entry is the initial PC.
	Entry uint64
	// Data holds initial memory contents keyed by address ranges.
	Data []DataSeg
	// Labels maps symbolic names to code addresses (for diagnostics).
	Labels map[string]uint64
}

// DataSeg is a contiguous chunk of initialized memory.
type DataSeg struct {
	Addr  uint64
	Bytes []byte
}

// InstAt returns the instruction at code address pc, or nil if pc is outside
// the code segment or misaligned.
func (p *Program) InstAt(pc uint64) *Inst {
	if pc < p.CodeBase || (pc-p.CodeBase)%InstBytes != 0 {
		return nil
	}
	idx := (pc - p.CodeBase) / InstBytes
	if idx >= uint64(len(p.Code)) {
		return nil
	}
	return &p.Code[idx]
}

// CodeEnd returns the first address past the code segment.
func (p *Program) CodeEnd() uint64 {
	return p.CodeBase + uint64(len(p.Code))*InstBytes
}
