// Command benchjson converts `go test -bench` output into a compact JSON
// summary keyed by benchmark name, capturing ns/op plus every custom metric
// (allocs/kinstr, sim-cycles/s, ...). It reads the bench output on stdin and
// writes JSON to the -o file (default stdout):
//
//	go test -bench Throughput -benchtime 3x -run XXX . | go run ./internal/tools/benchjson -o BENCH.json
//
// Lines that are not benchmark results (logs, table dumps, PASS/ok) are
// ignored, so the full `go test` stream can be piped through unfiltered.
//
// Compare mode gates CI on throughput regressions: given two summaries it
// checks every benchmark present in both for a drop in a higher-is-better
// metric (sim-instrs/s by default) beyond the allowed percentage and exits
// non-zero if any benchmark regressed:
//
//	go run ./internal/tools/benchjson -compare BENCH_PR6.json new.json -max-regress 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed result line.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (name string, r benchResult, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", r, false
	}
	fields := strings.Fields(line)
	// Minimum shape: BenchmarkName <iters> <value> <unit> [...]
	if len(fields) < 4 {
		return "", r, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix go test appends on parallel machines.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", r, false
	}
	r.Iterations = iters
	r.Metrics = map[string]float64{}
	// The remainder alternates <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return name, r, true
}

// compareResult is one benchmark's verdict in compare mode.
type compareResult struct {
	name     string
	old, new float64
	deltaPct float64 // negative = regression
	regress  bool
}

// compare checks every benchmark present in both summaries for a drop in
// metric beyond maxRegress percent. Benchmarks missing the metric on either
// side are skipped (a benchmark without a throughput metric cannot regress
// it); a benchmark present only in one file is likewise ignored so adding or
// retiring benchmarks does not break the gate.
func compare(oldR, newR map[string]benchResult, metric string, maxRegress float64) []compareResult {
	var out []compareResult
	for name, o := range oldR {
		n, ok := newR[name]
		if !ok {
			continue
		}
		ov, ok1 := o.Metrics[metric]
		nv, ok2 := n.Metrics[metric]
		if !ok1 || !ok2 || ov <= 0 {
			continue
		}
		delta := (nv - ov) / ov * 100
		out = append(out, compareResult{
			name: name, old: ov, new: nv,
			deltaPct: delta,
			regress:  delta < -maxRegress,
		})
	}
	return out
}

func loadSummary(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r map[string]benchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func runCompare(oldPath, newPath, metric string, maxRegress float64) int {
	oldR, err := loadSummary(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: ", err)
		return 1
	}
	newR, err := loadSummary(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: ", err)
		return 1
	}
	results := compare(oldR, newR, metric, maxRegress)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark shares metric %q across %s and %s\n",
			metric, oldPath, newPath)
		return 1
	}
	failed := 0
	for _, r := range results {
		status := "ok"
		if r.regress {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-40s %s: %.0f -> %.0f (%+.1f%%, allowed -%.0f%%) %s\n",
			r.name, metric, r.old, r.new, r.deltaPct, maxRegress, status)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed %s by more than %.0f%%\n",
			failed, metric, maxRegress)
		return 1
	}
	return 0
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	comparePair := flag.Bool("compare", false,
		"compare two summary files (args: old.json new.json) instead of reading bench output")
	metric := flag.String("metric", "sim-instrs/s", "higher-is-better metric to gate on in -compare mode")
	maxRegress := flag.Float64("max-regress", 10, "allowed regression percentage in -compare mode")
	flag.Parse()

	if *comparePair {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two summary files")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *metric, *maxRegress))
	}

	results := map[string]benchResult{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
