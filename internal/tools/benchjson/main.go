// Command benchjson converts `go test -bench` output into a compact JSON
// summary keyed by benchmark name, capturing ns/op plus every custom metric
// (allocs/kinstr, sim-cycles/s, ...). It reads the bench output on stdin and
// writes JSON to the -o file (default stdout):
//
//	go test -bench Throughput -benchtime 3x -run XXX . | go run ./internal/tools/benchjson -o BENCH.json
//
// Lines that are not benchmark results (logs, table dumps, PASS/ok) are
// ignored, so the full `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed result line.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (name string, r benchResult, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", r, false
	}
	fields := strings.Fields(line)
	// Minimum shape: BenchmarkName <iters> <value> <unit> [...]
	if len(fields) < 4 {
		return "", r, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix go test appends on parallel machines.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", r, false
	}
	r.Iterations = iters
	r.Metrics = map[string]float64{}
	// The remainder alternates <value> <unit>.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return name, r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := map[string]benchResult{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
