package main

import "testing"

func mk(metric string, v float64) benchResult {
	return benchResult{Iterations: 1, Metrics: map[string]float64{metric: v}}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldR := map[string]benchResult{
		"BenchmarkSimulatorThroughput": mk("sim-instrs/s", 400000),
		"BenchmarkFig8VsRunahead":      mk("sim-instrs/s", 300000),
	}
	newR := map[string]benchResult{
		"BenchmarkSimulatorThroughput": mk("sim-instrs/s", 350000), // -12.5%
		"BenchmarkFig8VsRunahead":      mk("sim-instrs/s", 290000), // -3.3%
	}
	results := compare(oldR, newR, "sim-instrs/s", 10)
	if len(results) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(results))
	}
	byName := map[string]compareResult{}
	for _, r := range results {
		byName[r.name] = r
	}
	if !byName["BenchmarkSimulatorThroughput"].regress {
		t.Error("a 12.5%% drop must trip the 10%% gate")
	}
	if byName["BenchmarkFig8VsRunahead"].regress {
		t.Error("a 3.3%% drop must pass the 10%% gate")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldR := map[string]benchResult{"BenchmarkX": mk("sim-instrs/s", 100)}
	newR := map[string]benchResult{"BenchmarkX": mk("sim-instrs/s", 250)}
	results := compare(oldR, newR, "sim-instrs/s", 10)
	if len(results) != 1 || results[0].regress {
		t.Fatalf("a 2.5x improvement must not be flagged: %+v", results)
	}
}

func TestCompareSkipsMismatchedEntries(t *testing.T) {
	oldR := map[string]benchResult{
		"BenchmarkOnlyOld":  mk("sim-instrs/s", 100),
		"BenchmarkNoMetric": mk("allocs/kinstr", 5),
		"BenchmarkShared":   mk("sim-instrs/s", 100),
	}
	newR := map[string]benchResult{
		"BenchmarkOnlyNew":  mk("sim-instrs/s", 100),
		"BenchmarkNoMetric": mk("allocs/kinstr", 500),
		"BenchmarkShared":   mk("sim-instrs/s", 99),
	}
	results := compare(oldR, newR, "sim-instrs/s", 10)
	if len(results) != 1 || results[0].name != "BenchmarkShared" {
		t.Fatalf("only the shared benchmark with the metric is comparable: %+v", results)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	name, r, ok := parseLine("BenchmarkSimulatorThroughput-8   3  2500000 ns/op  470000 sim-instrs/s  16.42 allocs/kinstr")
	if !ok {
		t.Fatal("line did not parse")
	}
	if name != "BenchmarkSimulatorThroughput" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", name)
	}
	if r.NsPerOp != 2500000 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Metrics["sim-instrs/s"] != 470000 || r.Metrics["allocs/kinstr"] != 16.42 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}
