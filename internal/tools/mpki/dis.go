package main

import (
	"fmt"

	"teasim/internal/isa"
	"teasim/internal/workloads"
)

func disasm(name string, lo, hi uint64) {
	w, _ := workloads.ByName(name)
	prog := w.Build(1)
	for pc := lo; pc <= hi; pc += isa.InstBytes {
		in := prog.InstAt(pc)
		if in == nil {
			continue
		}
		fmt.Printf("%#x: %s\n", pc, in)
	}
}
