package main

import (
	"fmt"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func knobProbe(name string) {
	for _, k := range []struct {
		label string
		mod   func(*core.Config, *pipeline.Config)
	}{
		{"base", nil},
		{"lead2", func(t *core.Config, p *pipeline.Config) { t.MaxLeadBlocks = 2 }},
		{"lead8", func(t *core.Config, p *pipeline.Config) { t.MaxLeadBlocks = 8 }},
		{"lead16", func(t *core.Config, p *pipeline.Config) { t.MaxLeadBlocks = 16 }},
		{"lead32", func(t *core.Config, p *pipeline.Config) { t.MaxLeadBlocks = 32 }},
		{"led8ded", func(t *core.Config, p *pipeline.Config) {
			t.MaxLeadBlocks = 8
			p.CompanionDedicated = true
			p.CompanionPorts = 16
		}},
		{"noflush8", func(t *core.Config, p *pipeline.Config) { t.MaxLeadBlocks = 8; t.DisableEarlyFlush = true }},
	} {
		w, _ := workloads.ByName(name)
		prog := w.Build(1)
		pcfg := pipeline.DefaultConfig()
		pcfg.MaxInstructions = 400_000
		pcfg.MaxCycles = 100_000_000
		tcfg := core.DefaultConfig()
		c := pipeline.New(pcfg, prog)
		var t *core.TEA
		if k.mod != nil {
			k.mod(&tcfg, &pcfg)
			c = pipeline.New(pcfg, prog)
			t = core.New(tcfg, c)
		}
		if err := c.Run(); err != nil {
			fmt.Println(k.label, err)
			continue
		}
		if t != nil {
			fmt.Printf("%-6s %s: cyc=%d cov=%.2f acc=%.3f\n",
				k.label, name, c.Stats.Cycles, t.Stats.Coverage(), t.Stats.Accuracy())
		} else {
			fmt.Printf("%-6s %s: cyc=%d (baseline)\n", k.label, name, c.Stats.Cycles)
		}
	}
}
