// Command mpki is the developer probe for the simulator: per-workload
// IPC/MPKI sweeps, TEA-thread internals dumps, configuration knob sweeps,
// pipeline stats comparisons, and disassembly. It is a diagnostics tool,
// not part of the public surface.
//
//	go run ./internal/tools/mpki              # IPC/MPKI for all workloads
//	go run ./internal/tools/mpki tea bfs      # TEA internals on bfs
//	go run ./internal/tools/mpki knobs xz     # config knob sweep
//	go run ./internal/tools/mpki base mcf     # baseline pipeline stats
//	go run ./internal/tools/mpki dis nab      # disassemble a hot region
package main

import (
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func main() {
	if len(os.Args) > 2 && os.Args[1] == "dis" {
		disasm(os.Args[2], 0x10000, 0x10060)
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "tea" {
		teaDebug(os.Args[2], 400_000)
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "knobs" {
		knobProbe(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "hang" {
		hangProbe(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "base" {
		w, _ := workloads.ByName(os.Args[2])
		prog := w.Build(1)
		cfg := pipeline.DefaultConfig()
		cfg.MaxInstructions = 400_000
		cfg.MaxCycles = 100_000_000
		c := pipeline.New(cfg, prog)
		if err := c.Run(); err != nil {
			fmt.Println(err)
		}
		fmt.Printf("%s baseline: cyc=%d\n", os.Args[2], c.Stats.Cycles)
		dumpPipe(c)
		return
	}
	if len(os.Args) > 1 {
		f, _ := os.Create("/tmp/bc.prof")
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
		w, _ := workloads.ByName(os.Args[1])
		prog := w.Build(1)
		cfg := pipeline.DefaultConfig()
		cfg.MaxInstructions = 300_000
		cfg.MaxCycles = 50_000_000
		c := pipeline.New(cfg, prog)
		if err := c.Run(); err != nil {
			fmt.Println(err)
		}
		fmt.Printf("cycles=%d retired=%d\n", c.Stats.Cycles, c.Stats.Retired)
		return
	}
	for _, w := range workloads.All() {
		prog := w.Build(1)
		cfg := pipeline.DefaultConfig()
		cfg.MaxInstructions = 300_000
		cfg.MaxCycles = 50_000_000
		c := pipeline.New(cfg, prog)
		start := time.Now()
		if err := c.Run(); err != nil {
			fmt.Printf("%-10s ERROR %v\n", w.Name, err)
			continue
		}
		s := &c.Stats
		fmt.Printf("%-10s IPC=%.2f MPKI=%5.1f cond=%d condM=%d indM=%d resteer=%d wall=%v\n",
			w.Name, s.IPC(), s.MPKI(), s.CondBranches, s.CondMispredicts, s.IndMispredicts,
			s.ResteerDecode, time.Since(start).Round(time.Millisecond))
	}
}
