package main

import (
	"fmt"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func hangProbe(name string) {
	w, _ := workloads.ByName(name)
	prog := w.Build(1)
	cfg := pipeline.DefaultConfig()
	cfg.MaxInstructions = 400_000
	cfg.MaxCycles = 2_000_000
	c := pipeline.New(cfg, prog)
	tcfg := core.DefaultConfig()
	tcfg.DisableEarlyFlush = true
	t := core.New(tcfg, c)
	err := c.Run()
	fmt.Printf("err=%v retired=%d cyc=%d\n", err, c.Stats.Retired, c.Stats.Cycles)
	fmt.Printf("act=%d termLate=%d termBC=%d late=%d resolved=%d agree=%d\n",
		t.Stats.Activations, t.Stats.TermLate, t.Stats.TermBCMiss, t.Stats.LateEvents, t.Stats.Resolved, t.Stats.Agreements)
	fmt.Printf("pipe flushes=%d uopsF=%d uopsR=%d\n", c.Stats.Flushes, t.Stats.UopsFetched, t.Stats.UopsRenamed)
}
