package main

import (
	"fmt"

	"teasim/internal/core"
	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func teaDebug(name string, n uint64) {
	w, _ := workloads.ByName(name)
	prog := w.Build(1)
	cfg := pipeline.DefaultConfig()
	cfg.MaxInstructions = n
	cfg.MaxCycles = 100_000_000
	c := pipeline.New(cfg, prog)
	t := core.New(core.DefaultConfig(), c)
	t.SetDebugWrong(0)
	t.SetDebugWrong(4)
	pipeline.DebugSeqLo, pipeline.DebugSeqHi = 22120, 22290
	if err := c.Run(); err != nil {
		fmt.Println(err)
		return
	}
	s := t.Stats
	fmt.Printf("%s: cyc=%d act=%d inact=%d armMiss=%d termBC=%d termInc=%d termLate=%d\n",
		name, c.Stats.Cycles, s.Activations, s.InactiveCycles, s.ArmMiss, s.TermBCMiss, s.TermIncorrect, s.TermLate)
	fmt.Printf("   walks=%d marked=%d bcHits=%d bcEmpty=%d bcLook=%d bcUpd=%d uopsF=%d uopsR=%d prstall=%d\n",
		s.WalksDone, s.WalkMarked, t.BC.Hits, t.BC.EmptyHits, t.BC.Lookups, t.BC.Updates, s.UopsFetched, s.UopsRenamed, s.PRStallCycles)
	for _, pc := range []uint64{0x100d0, 0x10028, 0x1003c} {
		m, cnt, h := t.BC.Lookup(pc)
		fmt.Printf("   BC[%#x]: hit=%v count=%d mask=%b\n", pc, h, cnt, m)
	}
	fmt.Printf("   resolved=%d early=%d agree=%d late=%d blocked=%d cov=%.2f acc=%.2f flushMain=%d flushCkpt=%d flushNo=%d poisonViol=%d\n",
		s.Resolved, s.EarlyFlushes, s.Agreements, s.LateEvents, s.BlockedFlushes, s.Coverage(), s.Accuracy(), s.FlushMainSync, s.FlushCkptSync, s.FlushNoSync, s.PoisonViolations)
	dumpPipe(c)
}

func dumpPipe(c *pipeline.Core) {
	ps := c.Stats
	fmt.Printf("   pipe: flushes=%d early=%d resteer=%d fetchStallICM=%d emptyFQ=%d fetched=%d exec=%d compUops=%d retireStallROB=%d\n",
		ps.Flushes, ps.EarlyFlushes, ps.ResteerDecode, ps.FetchStallICM, ps.EmptyFetchQ, ps.FetchedUops, ps.ExecutedUops, ps.CompanionUops, ps.RetireStallROB)
	fmt.Printf("   mem: L1D acc=%d miss=%d  L1I acc=%d miss=%d  LLC acc=%d miss=%d dram=%d\n",
		c.Hier.L1D.Accesses, c.Hier.L1D.Misses, c.Hier.L1I.Accesses, c.Hier.L1I.Misses,
		c.Hier.LLC.Accesses, c.Hier.LLC.Misses, c.Hier.DRAM.Reads)
}
