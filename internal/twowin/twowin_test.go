package twowin

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
)

// buildLoopKernel: the data-dependent branch's operands (the loaded value
// and the loop-invariant threshold) become ready well before the branch
// issues whenever the load hits — exactly the window's opportunity.
func buildLoopKernel(b *asm.Builder, n int, data []uint64, filler int) {
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)
	b.Li(isa.R10, 0)
	b.Li(isa.R11, 50)
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Blt(isa.R5, isa.R11, "skip")
	b.Add(isa.R10, isa.R10, isa.R5)
	for k := 0; k < filler; k++ {
		b.AddI(isa.R12, isa.R10, int64(k))
		b.Xor(isa.R13, isa.R12, isa.R10)
	}
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
}

func randData(n int, seed uint64) []uint64 {
	data := make([]uint64, n)
	rng := seed
	for i := range data {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		data[i] = rng % 100
	}
	return data
}

func run(t *testing.T, attach bool, build func(b *asm.Builder)) (*pipeline.Core, *W) {
	t.Helper()
	bld := asm.NewBuilder()
	build(bld)
	p := bld.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	c := pipeline.New(cfg, p)
	var w *W
	if attach {
		w = New(DefaultConfig(), c)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c, w
}

func TestTwoWinPrecomputesAndFlushesEarly(t *testing.T) {
	n := 20000
	data := randData(n, 42)
	_, w := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	if w.Stats.Tracked == 0 {
		t.Fatal("no branches admitted to the window")
	}
	if w.Stats.Evals == 0 {
		t.Fatal("no early evaluations (operands never seen ready)")
	}
	if w.Stats.EarlyFlushes == 0 {
		t.Fatal("no early flushes on a ~50% mispredicting kernel")
	}
	// Evaluations use actual forwarded register values: always correct.
	if acc := w.Stats.Accuracy(); acc < 0.999 {
		t.Fatalf("precompute accuracy = %.4f, want ~1 (forwarded values are exact)", acc)
	}
	t.Logf("tracked=%d evals=%d agree=%d flushes=%d cov=%.3f saved=%d",
		w.Stats.Tracked, w.Stats.Evals, w.Stats.Agreements,
		w.Stats.EarlyFlushes, w.Stats.Coverage(), w.Stats.CyclesSaved)
}

func TestTwoWinShrinksMispredictPenalty(t *testing.T) {
	n := 20000
	data := randData(n, 7)
	build := func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) }
	base, _ := run(t, false, build)
	wC, w := run(t, true, build)
	speedup := float64(base.Stats.Cycles) / float64(wC.Stats.Cycles)
	t.Logf("baseline=%d twowin=%d speedup=%.3f cov=%.3f covered=%d saved=%d",
		base.Stats.Cycles, wC.Stats.Cycles, speedup,
		w.Stats.Coverage(), w.Stats.CoveredMisp, w.Stats.CyclesSaved)
	if w.Stats.CoveredMisp == 0 {
		t.Fatal("no mispredictions covered by early flushes")
	}
	// Early flushes shrink the penalty but don't remove the misprediction;
	// the win is smaller than a fetch-time override's, but must be real.
	if speedup <= 1.0 {
		t.Fatalf("twowin speedup = %.3f, want > 1.0", speedup)
	}
}

func TestTwoWinWindowBounded(t *testing.T) {
	n := 20000
	data := randData(n, 321)
	_, w := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 4) })
	if len(w.win) > w.Cfg.WindowSize {
		t.Fatalf("window grew to %d entries (cap %d)", len(w.win), w.Cfg.WindowSize)
	}
}

func TestTwoWinQuiescentContract(t *testing.T) {
	// With an empty window the companion must report quiescent (it has no
	// self-scheduled work); with entries pending it must keep ticking.
	w := &W{Cfg: DefaultConfig()}
	if idle, _ := w.Quiescent(0); !idle {
		t.Fatal("empty window not quiescent")
	}
	w.win = append(w.win, winEntry{seq: 1})
	if idle, _ := w.Quiescent(0); idle {
		t.Fatal("non-empty window claimed quiescent")
	}
}
