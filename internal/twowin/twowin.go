// Package twowin implements a lightweight in-order precompute BPU
// (SNIPPETS.md #1/#2): a small window — two entries in the reference design
// — over the oldest unresolved in-flight conditional branches. Every cycle
// it checks whether a windowed branch's renamed source registers are ready
// in the physical register file; if so it evaluates the condition with the
// forwarded values ahead of the branch's own issue and, when the computed
// next-PC disagrees with the prediction, repairs the pipeline through the
// same early-flush path the TEA thread uses. No uops are inserted and
// nothing is fetched: the window piggybacks entirely on main-thread state.
package twowin

import (
	"teasim/internal/companion"
	"teasim/internal/emu"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
	"teasim/tea/spec"
)

// Config sizes the window (see spec.TwoWindow for field semantics).
type Config struct {
	WindowSize  int
	EvalsPerCyc int
}

// DefaultConfig mirrors spec.DefaultTwoWindow.
func DefaultConfig() Config {
	return Config{WindowSize: 2, EvalsPerCyc: 2}
}

// Stats counts window activity and the retired-misprediction
// classification (the shared Fig. 7 buckets, including TEA's Late bucket —
// a precompute that lost the race to main resolution).
type Stats struct {
	Tracked      uint64 // branches admitted to the window
	Evals        uint64 // early condition evaluations
	Agreements   uint64 // evaluations agreeing with the prediction
	EarlyFlushes uint64

	Precomputed uint64 // retired branches with a pre-resolution evaluation
	PreCorrect  uint64
	PreWrong    uint64

	CoveredMisp   uint64
	LateMisp      uint64
	IncorrectMisp uint64
	UncoveredMisp uint64
	CyclesSaved   uint64
}

// Accuracy returns the fraction of early evaluations that were correct.
func (s *Stats) Accuracy() float64 {
	if s.Precomputed == 0 {
		return 1
	}
	return float64(s.PreCorrect) / float64(s.Precomputed)
}

// Coverage returns the fraction of retired mispredictions fixed early.
func (s *Stats) Coverage() float64 {
	total := s.CoveredMisp + s.LateMisp + s.IncorrectMisp + s.UncoveredMisp
	if total == 0 {
		return 0
	}
	return float64(s.CoveredMisp) / float64(total)
}

// winEntry tracks one in-flight conditional branch. seq and pc are copies
// so a recycled uop pointer is detected instead of followed.
type winEntry struct {
	seq uint64
	pc  uint64
	u   *pipeline.Uop
}

// W is the two-window precompute BPU companion.
type W struct {
	Cfg  Config
	core *pipeline.Core

	win []winEntry

	ivLast struct {
		covered, late, incorrect, uncovered uint64
		precomputed, preCorrect             uint64
	}

	Stats Stats
}

// New builds a two-window BPU and attaches it to the core.
func New(cfg Config, c *pipeline.Core) *W {
	w := &W{Cfg: cfg, core: c, win: make([]winEntry, 0, cfg.WindowSize)}
	c.Attach(w)
	return w
}

func init() {
	companion.Register(spec.CompanionTwoWindow,
		func(s *spec.MachineSpec, c *pipeline.Core, _ companion.Options) (companion.Instance, error) {
			return wInstance{New(ConfigFromSpec(s.Companion.TwoWin), c)}, nil
		})
}

// ConfigFromSpec converts the spec's twowin companion section.
func ConfigFromSpec(t *spec.TwoWindow) Config {
	return Config{WindowSize: t.WindowSize, EvalsPerCyc: t.EvalsPerCyc}
}

// wInstance adapts the two-window BPU to the companion registry.
type wInstance struct{ w *W }

func (i wInstance) Metrics() companion.Metrics {
	s := &i.w.Stats
	m := companion.Metrics{
		Accuracy:     s.Accuracy(),
		Coverage:     s.Coverage(),
		Covered:      s.CoveredMisp,
		Late:         s.LateMisp,
		Incorrect:    s.IncorrectMisp,
		Uncovered:    s.UncoveredMisp,
		EarlyFlushes: s.EarlyFlushes,
	}
	if s.CoveredMisp > 0 {
		m.AvgCyclesSaved = float64(s.CyclesSaved) / float64(s.CoveredMisp)
	}
	return m
}

// --- Companion interface ---

// OnBlock is unused.
func (w *W) OnBlock(*pipeline.FetchBlock) {}

// OnMainFetch admits conditional branches into the window while there is
// room — fetch order means the window always holds the oldest unresolved
// tracked branches.
func (w *W) OnMainFetch(u *pipeline.Uop) {
	if len(w.win) >= w.Cfg.WindowSize || u.Rec == nil || !u.In.IsCondBranch() {
		return
	}
	w.win = append(w.win, winEntry{seq: u.Seq, pc: u.PC, u: u})
	w.Stats.Tracked++
}

// Tick scans the window: a tracked branch whose renamed sources are both
// ready is evaluated with the forwarded register values, mirroring the TEA
// thread's resolution protocol — record the precompute on the branch record
// and early-flush on disagreement with the prediction.
func (w *W) Tick() {
	if len(w.win) == 0 {
		return
	}
	evals := w.Cfg.EvalsPerCyc
	kept := w.win[:0]
	for i := range w.win {
		e := w.win[i]
		u := e.u
		if u == nil || u.Seq != e.seq || u.PC != e.pc {
			continue // recycled under us: the branch retired or was squashed
		}
		rec := u.Rec
		if rec == nil || rec.Seq != e.seq || rec.Resolved {
			continue
		}
		if rec.Precomputed || evals == 0 {
			kept = append(kept, e)
			continue
		}
		if !u.InRS && !u.Issued {
			kept = append(kept, e) // not renamed yet: operands unknown
			continue
		}
		pr := w.core.PRF
		if !pr.Ready[u.Prs1] || !pr.Ready[u.Prs2] {
			kept = append(kept, e)
			continue
		}
		evals--
		w.Stats.Evals++
		taken, target := emu.BranchOutcome(u.In, pr.Val[u.Prs1], pr.Val[u.Prs2])
		rec.Precomputed = true
		rec.PreTaken, rec.PreTarget, rec.PreCycle = taken, target, w.core.Cycle
		next := target
		if !taken {
			next = rec.PC + isa.InstBytes
		}
		if next == rec.PredNext {
			w.Stats.Agreements++
			kept = append(kept, e)
			continue
		}
		rec.PreFlushed = true
		w.Stats.EarlyFlushes++
		w.core.EarlyFlush(rec, taken, target)
		// The flush squashes everything younger than this branch; OnFlush
		// already dropped those entries from w.win, but kept may hold stale
		// copies appended before the flush — rebuild defensively.
		kept = append(kept, e)
		tail := w.win[i+1:]
		w.win = append(kept, tail...)
		w.dropYounger(e.seq)
		return
	}
	w.win = kept
}

// dropYounger removes window entries younger than seq.
func (w *W) dropYounger(seq uint64) {
	kept := w.win[:0]
	for _, e := range w.win {
		if e.seq <= seq {
			kept = append(kept, e)
		}
	}
	w.win = kept
}

// OnRetire drops the retired branch from the window and classifies the
// precompute outcome with TEA's retirement-time categories.
func (w *W) OnRetire(u *pipeline.Uop) {
	if len(w.win) > 0 && w.win[0].seq <= u.Seq {
		kept := w.win[:0]
		for _, e := range w.win {
			if e.seq > u.Seq {
				kept = append(kept, e)
			}
		}
		w.win = kept
	}
	if !u.In.IsBranch() || u.Rec == nil {
		return
	}
	rec := u.Rec
	if rec.WasMispred {
		w.classifyMisprediction(rec)
	}
	if rec.Precomputed && rec.PreCycle < rec.ResolveCycle {
		w.Stats.Precomputed++
		if precomputeCorrect(rec) {
			w.Stats.PreCorrect++
		} else {
			w.Stats.PreWrong++
		}
	}
}

func precomputeCorrect(rec *pipeline.BranchRec) bool {
	return rec.PreTaken == rec.ActualTaken &&
		(!rec.ActualTaken || rec.PreTarget == rec.ActualTarget)
}

func (w *W) classifyMisprediction(rec *pipeline.BranchRec) {
	switch {
	case !rec.Precomputed:
		w.Stats.UncoveredMisp++
	case rec.PreCycle >= rec.ResolveCycle:
		w.Stats.LateMisp++
	case !precomputeCorrect(rec):
		w.Stats.IncorrectMisp++
	case rec.PreFlushed:
		// The early flush actually fired: misprediction penalty shrunk.
		w.Stats.CoveredMisp++
		w.Stats.CyclesSaved += rec.ResolveCycle - rec.PreCycle
	default:
		w.Stats.LateMisp++
	}
}

// OnFlush drops squashed entries (everything younger than seq is gone).
func (w *W) OnFlush(seq uint64, branchRenamed bool) {
	w.dropYounger(seq)
}

// OnInterval annotates a telemetry sample with the window's per-interval
// coverage and accuracy.
func (w *W) OnInterval(iv *telemetry.Interval) {
	s := &w.Stats
	last := &w.ivLast
	dCov := s.CoveredMisp - last.covered
	dLate := s.LateMisp - last.late
	dInc := s.IncorrectMisp - last.incorrect
	dUnc := s.UncoveredMisp - last.uncovered
	if total := dCov + dLate + dInc + dUnc; total > 0 {
		iv.Coverage = float64(dCov) / float64(total)
	}
	if dPre := s.Precomputed - last.precomputed; dPre > 0 {
		iv.Accuracy = float64(s.PreCorrect-last.preCorrect) / float64(dPre)
	} else {
		iv.Accuracy = 1
	}
	last.covered, last.late, last.incorrect, last.uncovered =
		s.CoveredMisp, s.LateMisp, s.IncorrectMisp, s.UncoveredMisp
	last.precomputed, last.preCorrect = s.Precomputed, s.PreCorrect
}

// Quiescent implements the idle-skip contract conservatively: with a
// non-empty window a register can become ready mid-idle (a returning memory
// fill), so the window only reports quiescent when empty. Admissions happen
// at fetch, which ends the idle window on its own.
func (w *W) Quiescent(uint64) (bool, uint64) {
	return len(w.win) == 0, 0
}

// OnSkip is a no-op: there is no per-cycle bookkeeping.
func (w *W) OnSkip(uint64) {}

// OverridePrediction never fires: the window repairs branches in flight via
// the early-flush path rather than steering fetch-time predictions.
func (w *W) OverridePrediction(uint64, uint64) (bool, bool) { return false, false }

// The backend hooks are unused: the window never inserts uops.
func (w *W) LoadValue(uint64, int) (uint64, bool)       { return 0, false }
func (w *W) OlderStorePending(uint64) bool              { return false }
func (w *W) StoreExec(uint64, uint64, int)              {}
func (w *W) BranchResolved(*pipeline.Uop, bool, uint64) {}
func (w *W) UopExecuted(*pipeline.Uop)                  {}
func (w *W) UopSquashed(*pipeline.Uop)                  {}
func (w *W) PrecomputationWrong(uint64)                 {}
