package runahead

import "teasim/internal/isa"

// capture extracts the dependence chain between the two most recent dynamic
// instances of the H2P branch at pc from the retired-instruction window —
// Branch Runahead's loop-confined Backward Dataflow Walk. The captured chain
// replaces any previous chain for the branch. Chains that exceed the uop
// budget are discarded (prior work keeps chains lightweight by design).
func (b *BR) capture(pc uint64) {
	last, prev := -1, -1
	for i := len(b.window) - 1; i >= 0; i-- {
		e := &b.window[i]
		if e.pc == pc && e.in.IsBranch() {
			if last == -1 {
				last = i
			} else {
				prev = i
				break
			}
		}
	}
	if last == -1 || prev == -1 {
		return // need two instances in the window (loop-confined)
	}
	if len(b.chains) >= b.Cfg.MaxChains {
		if _, exists := b.chains[pc]; !exists {
			return // chain table full
		}
	}

	// Backward walk from the branch down to (exclusive) the previous
	// instance, tracking register and memory live-ins.
	marked := make([]bool, last+1)
	var regSrc uint32
	memSrc := map[uint64]bool{}
	addReg := func(r isa.Reg) {
		if r != isa.R0 {
			regSrc |= 1 << uint(r)
		}
	}
	delReg := func(r isa.Reg) { regSrc &^= 1 << uint(r) }
	hasReg := func(r isa.Reg) bool { return r != isa.R0 && regSrc&(1<<uint(r)) != 0 }

	for i := last; i > prev; i-- {
		e := &b.window[i]
		in := e.in
		inChain := i == last
		if !inChain {
			if in.HasDest() && in.Rd != isa.R0 && hasReg(in.Rd) {
				inChain = true
			}
			if in.IsStore() && memSrc[e.addr] {
				inChain = true
			}
		}
		if !inChain {
			continue
		}
		marked[i] = true
		if in.HasDest() && in.Rd != isa.R0 {
			delReg(in.Rd)
		}
		if in.IsStore() {
			delete(memSrc, e.addr)
		}
		switch {
		case in.IsLoad():
			addReg(in.Rs1)
			memSrc[e.addr] = true
		case in.IsStore():
			addReg(in.Rs1)
			addReg(in.Rs2)
		default:
			var buf [2]isa.Reg
			for _, r := range in.Srcs(buf[:0]) {
				addReg(r)
			}
		}
	}

	ch := &chain{branchPC: pc}
	var dests uint32
	for i := prev + 1; i <= last; i++ {
		if !marked[i] {
			continue
		}
		e := &b.window[i]
		ch.uops = append(ch.uops, chainUop{pc: e.pc, in: e.in})
		if e.in.HasDest() && e.in.Rd != isa.R0 {
			dests |= 1 << uint(e.in.Rd)
		}
	}
	if len(ch.uops) == 0 || len(ch.uops) > b.Cfg.MaxChainUops {
		delete(b.chains, pc)
		return
	}

	// Independence: every register live-in is either produced by the chain
	// itself (loop-carried) or invariant, and no non-chain store touches a
	// chain load address (the merge-point condition that lets Branch
	// Runahead pipeline instances). Writers are checked over the WHOLE
	// retired window, not just the last iteration, so control-dependent
	// producers on rarely taken paths are still seen.
	ch.independent = true
	chainPCs := make(map[uint64]bool, len(ch.uops))
	for _, cu := range ch.uops {
		chainPCs[cu.pc] = true
	}
	liveIns := regSrc &^ dests
	for i := range b.window {
		e := &b.window[i]
		if chainPCs[e.pc] {
			continue
		}
		in := e.in
		if liveIns != 0 && in.HasDest() && in.Rd != isa.R0 &&
			liveIns&(1<<uint(in.Rd)) != 0 {
			ch.independent = false
			break
		}
		if len(memSrc) > 0 && in.IsStore() && memSrc[e.addr] {
			ch.independent = false
			break
		}
	}
	// The pipelined spawn point: the last chain uop writing a loop-carried
	// live-in; once it executes, the next instance's seed is complete.
	carried := regSrc & dests
	for i, cu := range ch.uops {
		if cu.in.HasDest() && cu.in.Rd != isa.R0 && carried&(1<<uint(cu.in.Rd)) != 0 {
			ch.lastCarryIdx = i
		}
	}

	b.chains[pc] = ch
	b.Stats.ChainsCaptured++
}
