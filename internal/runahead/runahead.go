// Package runahead implements the Branch Runahead comparison baseline
// (Pruett & Patt, MICRO'21), the prior state of the art the paper evaluates
// against in §V-C and Fig. 8/10.
//
// Branch Runahead identifies H2P branches, captures lightweight dependence
// chains confined between two consecutive dynamic instances of the branch
// (loop-bounded, like the paper's "only loops" ablation), executes them on a
// dedicated dependence-chain engine (its own reservation stations and
// execution units, off the core's shared resources), and forwards computed
// directions through per-branch prediction queues that OVERRIDE the branch
// predictor at fetch time — the timeliness-first design the TEA paper argues
// against.
//
// Alignment between queued directions and dynamic branch instances uses
// instance tags: the core counts each conditional branch instance as the
// decoupled BP walks it (rewinding the count on flushes), and every queue
// entry carries the instance number it predicts. Chains whose live-ins are
// produced only by the chain itself ("independent branches") spawn their
// next instance as soon as the loop-carried registers are computed,
// pipelining several iterations ahead — the merge-point mechanism that gives
// Branch Runahead its strength on simple control flows (§V-C). Chains that
// mispredict repeatedly are disabled, preserving accuracy at the cost of
// coverage (§V-E, Fig. 10b).
package runahead

import (
	"teasim/internal/core"
	"teasim/internal/emu"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
)

// Config holds the Branch Runahead parameters (the scaled-up configuration
// of §V-C: a dedicated engine comparable to the on-core TEA partition).
type Config struct {
	MaxChains      int // dependence-chain table entries
	MaxChainUops   int // uops per captured chain
	QueueDepth     int // per-branch prediction queue entries
	MaxInstances   int // chain instances in flight in the engine
	EngineWidth    int // engine uops started per cycle (16 dedicated units)
	RecaptureEvery int // re-capture a branch's chain every N instances
	DisableAfter   int // consecutive wrong predictions before disabling
	HistSize       int // retired-instruction window for chain capture
}

// DefaultConfig returns the scaled-up Branch Runahead engine used in §V-C.
func DefaultConfig() Config {
	return Config{
		MaxChains:      64,
		MaxChainUops:   64,
		QueueDepth:     16,
		MaxInstances:   12,
		EngineWidth:    16,
		RecaptureEvery: 64,
		DisableAfter:   4,
		HistSize:       512,
	}
}

// Stats mirrors the coverage/accuracy accounting of the TEA thread so
// Fig. 8/10 can compare the two schemes directly. "Covered" means the TAGE
// prediction would have been wrong and the override fixed it.
type Stats struct {
	ChainsCaptured uint64
	Launches       uint64
	EngineUops     uint64
	Overrides      uint64

	Precomputed uint64
	PreCorrect  uint64
	PreWrong    uint64

	CoveredMisp   uint64
	IncorrectMisp uint64 // override made a correct prediction wrong
	UncoveredMisp uint64
	CyclesSaved   uint64 // misprediction penalty removed per covered branch

	ChainsDisabled uint64
}

// Accuracy returns the fraction of used overrides that were correct.
func (s *Stats) Accuracy() float64 {
	if s.Precomputed == 0 {
		return 1
	}
	return float64(s.PreCorrect) / float64(s.Precomputed)
}

// Coverage returns the fraction of would-be mispredictions fixed.
func (s *Stats) Coverage() float64 {
	total := s.CoveredMisp + s.IncorrectMisp + s.UncoveredMisp
	if total == 0 {
		return 0
	}
	return float64(s.CoveredMisp) / float64(total)
}

type chainUop struct {
	pc uint64
	in *isa.Inst
}

type chain struct {
	branchPC     uint64
	uops         []chainUop
	independent  bool
	lastCarryIdx int // last uop writing a loop-carried live-in
	disabled     bool
	wrongStreak  int
	sinceCap     int
}

// instance is one chain execution in flight on the engine. tag is the
// dynamic instance number of the branch this execution predicts.
type instance struct {
	ch      *chain
	tag     uint64
	regs    [isa.NumRegs]uint64
	idx     int
	readyAt uint64
	stores  map[uint64]uint64 // word-granular private store buffer
	outcome bool
	done    bool
	spawned bool
}

type qEntry struct {
	tag   uint64
	taken bool
}

type popRec struct {
	seq uint64
	pc  uint64
}

// BR is the Branch Runahead companion.
type BR struct {
	Cfg  Config
	core *pipeline.Core

	h2p    *core.H2PTable
	chains map[uint64]*chain

	// Retired-instruction window for chain capture.
	window []winEntry

	// Dedicated engine state.
	instances []*instance

	// Per-branch prediction queues, instance-tagged.
	queues map[uint64][]qEntry

	// Instance accounting: specIdx counts instances walked by the decoupled
	// BP (rewound on flushes via specLog); retireIdx counts retired ones.
	specIdx   map[uint64]uint64
	retireIdx map[uint64]uint64
	specLog   []popRec

	// Architectural register file tracked at retirement (chain live-ins).
	archRegs [isa.NumRegs]uint64

	retired   uint64
	nextDecay uint64

	// Telemetry interval snapshot (see OnInterval).
	ivLast struct {
		covered, incorrect, uncovered uint64
		precomputed, preCorrect       uint64
	}

	Stats Stats
}

type winEntry struct {
	pc    uint64
	in    *isa.Inst
	addr  uint64
	isH2P bool
}

// New builds a Branch Runahead engine and attaches it to the core.
func New(cfg Config, c *pipeline.Core) *BR {
	teaCfg := core.DefaultConfig()
	b := &BR{
		Cfg:       cfg,
		core:      c,
		h2p:       core.NewH2PTable(&teaCfg),
		chains:    make(map[uint64]*chain),
		queues:    make(map[uint64][]qEntry),
		specIdx:   make(map[uint64]uint64),
		retireIdx: make(map[uint64]uint64),
		nextDecay: teaCfg.H2PDecayPeriod,
	}
	c.Attach(b)
	return b
}

// --- Companion interface ---

// OnBlock is unused.
func (b *BR) OnBlock(*pipeline.FetchBlock) {}

// OnInterval annotates a telemetry sample with the engine's per-interval
// override coverage and accuracy (Branch Runahead has no Block Cache or
// Fill Buffer, so those fields stay zero).
func (b *BR) OnInterval(iv *telemetry.Interval) {
	s := &b.Stats
	last := &b.ivLast
	dCov := s.CoveredMisp - last.covered
	dInc := s.IncorrectMisp - last.incorrect
	dUnc := s.UncoveredMisp - last.uncovered
	if total := dCov + dInc + dUnc; total > 0 {
		iv.Coverage = float64(dCov) / float64(total)
	}
	if dPre := s.Precomputed - last.precomputed; dPre > 0 {
		iv.Accuracy = float64(s.PreCorrect-last.preCorrect) / float64(dPre)
	} else {
		iv.Accuracy = 1
	}
	last.covered, last.incorrect, last.uncovered = s.CoveredMisp, s.IncorrectMisp, s.UncoveredMisp
	last.precomputed, last.preCorrect = s.Precomputed, s.PreCorrect
}

// OnMainFetch is unused.
func (b *BR) OnMainFetch(*pipeline.Uop) {}

// OverridePrediction counts this dynamic instance of the branch and, when a
// queued direction is available for exactly this instance, overrides TAGE.
func (b *BR) OverridePrediction(pc uint64, seq uint64) (bool, bool) {
	if _, tracked := b.specIdx[pc]; !tracked {
		// Only track branches once they are hard to predict; this keeps the
		// maps from growing with every cold branch in the program.
		if !b.h2p.IsH2P(pc) {
			return false, false
		}
	}
	b.specIdx[pc]++
	b.specLog = append(b.specLog, popRec{seq: seq, pc: pc})
	idx := b.specIdx[pc]
	for _, e := range b.queues[pc] {
		if e.tag == idx {
			b.Stats.Overrides++
			return e.taken, true
		}
	}
	return false, false
}

// OnRetire tracks architectural state, trains the H2P table, captures and
// launches chains, and classifies override outcomes.
func (b *BR) OnRetire(u *pipeline.Uop) {
	b.retired++
	if b.retired >= b.nextDecay {
		b.nextDecay += 50_000
		b.h2p.Decay()
	}
	if u.HasDest {
		b.archRegs[u.In.Rd] = b.core.PRF.Val[u.Prd]
	}

	// Prune the speculative-instance log: retired branches can no longer be
	// rewound by a flush.
	if len(b.specLog) > 0 {
		cut := 0
		for cut < len(b.specLog) && b.specLog[cut].seq <= u.Seq {
			cut++
		}
		b.specLog = b.specLog[cut:]
	}

	isBranch := u.In.IsBranch()
	if isBranch && u.Rec != nil {
		if _, tracked := b.specIdx[u.PC]; tracked && u.In.IsCondBranch() {
			if b.specIdx[u.PC] <= b.retireIdx[u.PC] {
				// This instance entered the pipeline before tracking began
				// (or a rewind over-corrected); keep the counters aligned so
				// specIdx - retireIdx equals the in-flight instance count.
				b.specIdx[u.PC]++
			}
			b.retireIdx[u.PC]++
			b.pruneQueue(u.PC)
		}
		b.accountBranch(u.Rec)
		if wouldMispredict(u.Rec) {
			b.h2p.RecordMispredict(u.PC)
		}
	}

	// Maintain the capture window.
	b.window = append(b.window, winEntry{pc: u.PC, in: u.In, addr: u.Addr,
		isH2P: isBranch && b.h2p.IsH2P(u.PC)})
	if len(b.window) > b.Cfg.HistSize {
		b.window = b.window[1:]
	}

	if isBranch && b.h2p.IsH2P(u.PC) {
		ch := b.chains[u.PC]
		if ch == nil || ch.sinceCap >= b.Cfg.RecaptureEvery {
			b.capture(u.PC)
			ch = b.chains[u.PC]
		}
		if ch != nil {
			ch.sinceCap++
			b.launch(ch)
		}
	}
}

// pruneQueue drops entries for instances that have already retired.
func (b *BR) pruneQueue(pc uint64) {
	q := b.queues[pc]
	if len(q) == 0 {
		return
	}
	floor := b.retireIdx[pc]
	kept := q[:0]
	for _, e := range q {
		if e.tag > floor {
			kept = append(kept, e)
		}
	}
	b.queues[pc] = kept
}

// wouldMispredict reports whether the underlying TAGE prediction (before any
// override) disagreed with the actual outcome.
func wouldMispredict(rec *pipeline.BranchRec) bool {
	if !rec.Pred.BTBHit || !rec.In.IsCondBranch() {
		return rec.WasMispred
	}
	return rec.Pred.Cond.Pred != rec.ActualTaken
}

// accountBranch classifies the override outcome against the would-be TAGE
// prediction, mirroring the TEA coverage categories.
func (b *BR) accountBranch(rec *pipeline.BranchRec) {
	if !rec.In.IsCondBranch() {
		if rec.WasMispred {
			b.Stats.UncoveredMisp++
		}
		return
	}
	tageWrong := wouldMispredict(rec)
	if rec.Precomputed {
		b.Stats.Precomputed++
		if rec.PreTaken == rec.ActualTaken {
			b.Stats.PreCorrect++
			if ch := b.chains[rec.PC]; ch != nil {
				ch.wrongStreak = 0
			}
			if tageWrong {
				b.Stats.CoveredMisp++
				// A fetch-time override removes the full penalty (§II-C).
				b.Stats.CyclesSaved += 15
			}
		} else {
			b.Stats.PreWrong++
			if !tageWrong {
				b.Stats.IncorrectMisp++
			} else {
				b.Stats.UncoveredMisp++
			}
			if ch := b.chains[rec.PC]; ch != nil {
				ch.wrongStreak++
				if ch.wrongStreak >= b.Cfg.DisableAfter && !ch.disabled {
					ch.disabled = true
					b.Stats.ChainsDisabled++
					delete(b.queues, rec.PC)
				}
			}
		}
		return
	}
	if tageWrong {
		b.Stats.UncoveredMisp++
	}
}

// OnFlush rewinds the speculative instance counts for squashed branch
// instances. Engine instances and queued directions survive: chain seeds
// come from retired (non-speculative) state, so their results stay valid.
func (b *BR) OnFlush(seq uint64, branchRenamed bool) {
	for len(b.specLog) > 0 {
		last := b.specLog[len(b.specLog)-1]
		if last.seq <= seq {
			break
		}
		b.specIdx[last.pc]--
		b.specLog = b.specLog[:len(b.specLog)-1]
	}
}

// Tick advances the dedicated dependence-chain engine by one cycle.
func (b *BR) Tick() {
	if len(b.instances) == 0 {
		return
	}
	budget := b.Cfg.EngineWidth
	now := b.core.Cycle
	live := b.instances[:0]
	var spawns []*instance
	for _, ins := range b.instances {
		for budget > 0 && !ins.done && ins.readyAt <= now {
			if sp := b.step(ins); sp != nil {
				spawns = append(spawns, sp)
			}
			budget--
		}
		if ins.done {
			b.finish(ins)
			continue
		}
		live = append(live, ins)
	}
	b.instances = append(live, spawns...)
	if len(b.instances) > b.Cfg.MaxInstances {
		b.instances = b.instances[:b.Cfg.MaxInstances]
	}
}

// step executes one chain uop on the engine; it may spawn the next
// pipelined instance of an independent chain once the loop-carried
// registers are available.
func (b *BR) step(ins *instance) (spawn *instance) {
	b.Stats.EngineUops++
	cu := ins.ch.uops[ins.idx]
	in := cu.in
	now := b.core.Cycle
	rs1, rs2 := ins.regs[in.Rs1], ins.regs[in.Rs2]
	lat := uint64(1)
	switch {
	case in.IsLoad():
		addr := emu.EffAddr(in, rs1)
		var v uint64
		if sv, ok := ins.stores[addr]; ok && in.MemBytes() == 8 {
			v = sv
		} else {
			v = b.core.Mem.Read(addr, in.MemBytes())
		}
		if res, ok := b.core.Hier.Load(addr, now); ok {
			lat = res.ReadyAt - now
		} else {
			lat = 8 // MSHRs full: retry-equivalent delay
		}
		if in.Rd != isa.R0 {
			ins.regs[in.Rd] = v
		}
	case in.IsStore():
		addr := emu.EffAddr(in, rs1)
		ins.stores[addr] = rs2
	case in.IsBranch():
		taken, _ := emu.BranchOutcome(in, rs1, rs2)
		if cu.pc == ins.ch.branchPC && ins.idx == len(ins.ch.uops)-1 {
			ins.outcome = taken
			ins.done = true
		}
	default:
		if v, ok := emu.Eval(in, rs1, rs2, cu.pc); ok && in.Rd != isa.R0 {
			ins.regs[in.Rd] = v
		}
		switch in.Class() {
		case isa.ClassMul:
			lat = 3
		case isa.ClassDiv:
			lat = 12
		case isa.ClassFP:
			lat = 3
		}
	}

	// Pipelined launch for independent chains (merge-point parallelism).
	if ins.ch.independent && !ins.spawned && ins.idx >= ins.ch.lastCarryIdx &&
		len(b.instances) < b.Cfg.MaxInstances &&
		ins.tag+1 <= b.retireIdx[ins.ch.branchPC]+uint64(b.Cfg.QueueDepth) {
		ins.spawned = true
		stores := make(map[uint64]uint64, len(ins.stores))
		for k, v := range ins.stores {
			stores[k] = v
		}
		spawn = &instance{ch: ins.ch, tag: ins.tag + 1, regs: ins.regs,
			stores: stores, readyAt: now + 1}
		b.Stats.Launches++
	}

	ins.idx++
	if ins.idx >= len(ins.ch.uops) {
		ins.done = true
	}
	ins.readyAt = now + lat
	return spawn
}

// finish records the computed direction in the branch's tagged queue.
func (b *BR) finish(ins *instance) {
	pc := ins.ch.branchPC
	if ins.ch.disabled {
		return
	}
	if ins.tag <= b.retireIdx[pc] {
		return // the instance already retired: dead on arrival
	}
	q := b.queues[pc]
	for i := range q {
		if q[i].tag == ins.tag {
			q[i].taken = ins.outcome
			return
		}
	}
	if len(q) < b.Cfg.QueueDepth {
		b.queues[pc] = append(q, qEntry{tag: ins.tag, taken: ins.outcome})
	}
}

// launch starts a chain instance for the next unproduced instance number,
// seeded from the retired architectural state.
func (b *BR) launch(ch *chain) {
	if ch.disabled || len(ch.uops) == 0 {
		return
	}
	if len(b.instances) >= b.Cfg.MaxInstances {
		return
	}
	for _, ins := range b.instances {
		if ins.ch == ch {
			return // pipeline already running for this branch
		}
	}
	pc := ch.branchPC
	// The retire-time architectural state computes exactly the next dynamic
	// instance; if its direction is already queued the pipeline is alive.
	nextTag := b.retireIdx[pc] + 1
	for _, e := range b.queues[pc] {
		if e.tag >= nextTag {
			return
		}
	}
	ins := &instance{ch: ch, tag: nextTag, regs: b.archRegs,
		stores: make(map[uint64]uint64), readyAt: b.core.Cycle + 2}
	b.instances = append(b.instances, ins)
	b.Stats.Launches++
}

// Quiescent implements the pipeline's idle-skip contract: the engine's
// Tick can change state only when some chain instance is finished or ready
// to step; otherwise it just rebuilds the instance list in place. New
// instances launch from OnRetire/OverridePrediction, which end the idle
// window on their own.
func (b *BR) Quiescent(now uint64) (bool, uint64) {
	var wake uint64
	for _, ins := range b.instances {
		if ins.done || ins.readyAt <= now {
			return false, 0
		}
		if wake == 0 || ins.readyAt < wake {
			wake = ins.readyAt
		}
	}
	return true, wake
}

// OnSkip is a no-op: the engine keeps no per-cycle counters.
func (b *BR) OnSkip(uint64) {}

// UopExecuted / UopSquashed / LoadValue / StoreExec / BranchResolved are
// unused: Branch Runahead never inserts uops into the shared backend.
func (b *BR) UopExecuted(*pipeline.Uop)                  {}
func (b *BR) PrecomputationWrong(uint64)                 {}
func (b *BR) UopSquashed(*pipeline.Uop)                  {}
func (b *BR) LoadValue(uint64, int) (uint64, bool)       { return 0, false }
func (b *BR) OlderStorePending(uint64) bool              { return false }
func (b *BR) StoreExec(uint64, uint64, int)              {}
func (b *BR) BranchResolved(*pipeline.Uop, bool, uint64) {}
