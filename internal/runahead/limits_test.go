package runahead

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/pipeline"
)

func TestBRStatsEdgeCases(t *testing.T) {
	var s Stats
	if s.Accuracy() != 1 {
		t.Fatalf("empty accuracy = %v, want 1", s.Accuracy())
	}
	if s.Coverage() != 0 {
		t.Fatalf("empty coverage = %v, want 0", s.Coverage())
	}
	s.Precomputed, s.PreCorrect = 4, 3
	if s.Accuracy() != 0.75 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
	s.CoveredMisp, s.UncoveredMisp, s.IncorrectMisp = 1, 2, 1
	if s.Coverage() != 0.25 {
		t.Fatalf("coverage = %v", s.Coverage())
	}
}

// runCfg runs a kernel with an explicit BR config.
func runCfg(t *testing.T, brCfg Config, build func(b *asm.Builder)) (*pipeline.Core, *BR) {
	t.Helper()
	bld := asm.NewBuilder()
	build(bld)
	p := bld.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	c := pipeline.New(cfg, p)
	br := New(brCfg, c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c, br
}

// TestBRChainTableBounded: the dependence-chain table never exceeds
// MaxChains even when more distinct H2P branches exist.
func TestBRChainTableBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxChains = 1
	n := 20000
	data := randData(n, 13)
	_, br := runCfg(t, cfg, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	if len(br.chains) > cfg.MaxChains {
		t.Fatalf("chain table holds %d entries, cap %d", len(br.chains), cfg.MaxChains)
	}
	if br.Stats.ChainsCaptured == 0 {
		t.Fatal("no chain captured even with a 1-entry table")
	}
}

// TestBRQueueDepthBounded: per-branch prediction queues respect QueueDepth.
// With independent-chain spawning the engine races far ahead; the queue cap
// is what stops it from precomputing unboundedly many future instances.
func TestBRQueueDepthBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 4
	n := 20000
	data := randData(n, 29)
	_, br := runCfg(t, cfg, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	for pc, q := range br.queues {
		if len(q) > cfg.QueueDepth {
			t.Fatalf("pc %#x: queue depth %d exceeds cap %d", pc, len(q), cfg.QueueDepth)
		}
	}
	if br.Stats.Overrides == 0 {
		t.Fatal("no overrides with shallow queues")
	}
}

// TestBRRecapture: chains are periodically re-captured (RecaptureEvery), so
// total captures exceed the number of distinct chains over a long run.
func TestBRRecapture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecaptureEvery = 16
	n := 20000
	data := randData(n, 31)
	_, br := runCfg(t, cfg, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	if br.Stats.ChainsCaptured <= uint64(len(br.chains)) {
		t.Fatalf("captured %d chains total for %d table entries: recapture never fired",
			br.Stats.ChainsCaptured, len(br.chains))
	}
}

// TestBRTinyEngineStillCorrect: a starved engine (1 instance, width 1,
// depth-1 queues) must degrade coverage, never correctness — co-sim is on.
func TestBRTinyEngineStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstances = 1
	cfg.EngineWidth = 1
	cfg.QueueDepth = 1
	n := 20000
	data := randData(n, 47)
	cBig, brBig := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	cTiny, brTiny := runCfg(t, cfg, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	if cTiny.Stats.Retired == 0 || cBig.Stats.Retired == 0 {
		t.Fatal("nothing retired")
	}
	if brTiny.Stats.Overrides > brBig.Stats.Overrides {
		t.Fatalf("starved engine overrode more (%d) than the full engine (%d)",
			brTiny.Stats.Overrides, brBig.Stats.Overrides)
	}
	t.Logf("full engine: overrides=%d cov=%.2f; tiny: overrides=%d cov=%.2f",
		brBig.Stats.Overrides, brBig.Stats.Coverage(),
		brTiny.Stats.Overrides, brTiny.Stats.Coverage())
}
