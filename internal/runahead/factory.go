package runahead

import (
	"teasim/internal/companion"
	"teasim/internal/pipeline"
	"teasim/tea/spec"
)

func init() {
	companion.Register(spec.CompanionRunahead,
		func(s *spec.MachineSpec, c *pipeline.Core, _ companion.Options) (companion.Instance, error) {
			return brInstance{New(ConfigFromSpec(s.Companion.Runahead), c)}, nil
		})
}

// ConfigFromSpec converts the spec's Branch Runahead companion section.
func ConfigFromSpec(r *spec.Runahead) Config {
	return Config{
		MaxChains:      r.MaxChains,
		MaxChainUops:   r.MaxChainUops,
		QueueDepth:     r.QueueDepth,
		MaxInstances:   r.MaxInstances,
		EngineWidth:    r.EngineWidth,
		RecaptureEvery: r.RecaptureEvery,
		DisableAfter:   r.DisableAfter,
		HistSize:       r.HistSize,
	}
}

// brInstance adapts Branch Runahead to the companion registry.
type brInstance struct{ b *BR }

func (i brInstance) Metrics() companion.Metrics {
	s := &i.b.Stats
	m := companion.Metrics{
		Accuracy:  s.Accuracy(),
		Coverage:  s.Coverage(),
		Covered:   s.CoveredMisp,
		Incorrect: s.IncorrectMisp,
		Uncovered: s.UncoveredMisp,
		ExtraUops: s.EngineUops,
	}
	if s.CoveredMisp > 0 {
		m.AvgCyclesSaved = float64(s.CyclesSaved) / float64(s.CoveredMisp)
	}
	return m
}
