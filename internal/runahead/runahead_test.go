package runahead

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
)

// buildLoopKernel emits a simple-control-flow loop with a data-dependent
// branch — the pattern Branch Runahead is strongest on (independent branch
// in a simple loop, as in the paper's Fig. 1).
func buildLoopKernel(b *asm.Builder, n int, data []uint64, filler int) {
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)
	b.Li(isa.R10, 0)
	b.Li(isa.R11, 50)
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Blt(isa.R5, isa.R11, "skip")
	b.Add(isa.R10, isa.R10, isa.R5)
	for k := 0; k < filler; k++ {
		b.AddI(isa.R12, isa.R10, int64(k))
		b.Xor(isa.R13, isa.R12, isa.R10)
	}
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
}

func randData(n int, seed uint64) []uint64 {
	data := make([]uint64, n)
	rng := seed
	for i := range data {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		data[i] = rng % 100
	}
	return data
}

func run(t *testing.T, attach bool, build func(b *asm.Builder)) (*pipeline.Core, *BR) {
	t.Helper()
	bld := asm.NewBuilder()
	build(bld)
	p := bld.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	c := pipeline.New(cfg, p)
	var br *BR
	if attach {
		br = New(DefaultConfig(), c)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c, br
}

func TestBRCapturesChains(t *testing.T) {
	n := 20000
	data := randData(n, 42)
	_, br := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	if br.Stats.ChainsCaptured == 0 {
		t.Fatal("no chains captured")
	}
	if br.Stats.Launches == 0 || br.Stats.EngineUops == 0 {
		t.Fatalf("engine idle: launches=%d uops=%d", br.Stats.Launches, br.Stats.EngineUops)
	}
	if br.Stats.Overrides == 0 {
		t.Fatal("no predictions overridden")
	}
	if acc := br.Stats.Accuracy(); acc < 0.90 {
		t.Fatalf("override accuracy = %.3f", acc)
	}
	t.Logf("captured=%d launches=%d overrides=%d acc=%.3f cov=%.3f disabled=%d",
		br.Stats.ChainsCaptured, br.Stats.Launches, br.Stats.Overrides,
		br.Stats.Accuracy(), br.Stats.Coverage(), br.Stats.ChainsDisabled)
}

func TestBRSpeedupOnSimpleLoop(t *testing.T) {
	n := 20000
	data := randData(n, 7)
	build := func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) }
	base, _ := run(t, false, build)
	brC, br := run(t, true, build)
	speedup := float64(base.Stats.Cycles) / float64(brC.Stats.Cycles)
	t.Logf("baseline=%d BR=%d speedup=%.3f cov=%.2f mpkiBase=%.1f mpkiBR=%.1f",
		base.Stats.Cycles, brC.Stats.Cycles, speedup, br.Stats.Coverage(),
		base.Stats.MPKI(), brC.Stats.MPKI())
	if speedup < 1.02 {
		t.Fatalf("BR speedup = %.3f on a simple independent loop, want > 1.02", speedup)
	}
	// Correct overrides remove mispredictions entirely: MPKI must drop.
	if brC.Stats.MPKI() >= base.Stats.MPKI() {
		t.Fatalf("MPKI did not improve: %.2f -> %.2f", base.Stats.MPKI(), brC.Stats.MPKI())
	}
}

func TestBRChainIndependenceDetection(t *testing.T) {
	n := 20000
	data := randData(n, 99)
	_, br := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 8) })
	// The loop's H2P chain is loop-carried via r3 with invariant r1/r11:
	// it must be classified independent.
	found := false
	for _, ch := range br.chains {
		if ch.independent {
			found = true
		}
	}
	if !found {
		t.Fatal("independent chain not detected")
	}
}

// TestBRDegradesOnControlDependentChain: when the branch's dependence chain
// contains control-dependent instructions (the AndI executes only on taken
// iterations), Branch Runahead's straight-line trace is wrong on the other
// path — the paper's core argument for why prior work loses accuracy and
// coverage on complex control flows (§III-B, Fig. 10).
func TestBRDegradesOnControlDependentChain(t *testing.T) {
	n := 20000
	data := randData(n, 5)
	_, br := run(t, true, func(b *asm.Builder) {
		const base = 0x200000
		b.DataU64(base, data)
		b.Label("main")
		b.LiU(isa.R1, base)
		b.Li(isa.R2, int64(n))
		b.Li(isa.R3, 0)
		b.Li(isa.R11, 50)
		b.Li(isa.R15, 1)
		b.Label("loop")
		// The guarded work updates r15, and the branch depends on r15: the
		// chain's live-in is written by control-dependent non-chain code.
		b.ShlI(isa.R4, isa.R3, 3)
		b.Add(isa.R4, isa.R1, isa.R4)
		b.Ld(isa.R5, isa.R4, 0)
		b.Add(isa.R5, isa.R5, isa.R15)
		b.Blt(isa.R5, isa.R11, "skip")
		b.AndI(isa.R15, isa.R5, 7) // non-chain writer of r15 (sometimes)
		b.Label("skip")
		b.AddI(isa.R3, isa.R3, 1)
		b.Blt(isa.R3, isa.R2, "loop")
		b.Halt()
	})
	acc := br.Stats.Accuracy()
	cov := br.Stats.Coverage()
	t.Logf("control-dependent kernel: accuracy=%.3f coverage=%.3f", acc, cov)
	if acc > 0.995 {
		t.Fatalf("accuracy %.3f suspiciously perfect for a control-dependent chain", acc)
	}
	if cov > 0.60 {
		t.Fatalf("coverage %.3f too high: control dependence should hurt BR", cov)
	}
}

func TestBRCorrectnessUnderTorture(t *testing.T) {
	// BR overrides predictions speculatively; co-sim proves the committed
	// state stays exact regardless.
	n := 20000
	data := randData(n, 1234)
	c, _ := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 2) })
	if c.Stats.Retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestBRSpecLogRewindOnFlush(t *testing.T) {
	// Speculative instance counting must rewind exactly across flushes:
	// after a run with heavy misprediction, specIdx-retireIdx per branch
	// stays small (bounded by in-flight instances), never drifting.
	n := 20000
	data := randData(n, 321)
	_, br := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 4) })
	for pc, spec := range br.specIdx {
		ret := br.retireIdx[pc]
		if spec < ret {
			t.Fatalf("pc %#x: specIdx %d < retireIdx %d (rewind overshoot)", pc, spec, ret)
		}
		if spec-ret > 4096 {
			t.Fatalf("pc %#x: specIdx drifted %d ahead of retireIdx", pc, spec-ret)
		}
	}
}

func TestBRQueuePruning(t *testing.T) {
	// Queued directions for retired instances must be pruned.
	n := 20000
	data := randData(n, 55)
	_, br := run(t, true, func(b *asm.Builder) { buildLoopKernel(b, n, data, 4) })
	for pc, q := range br.queues {
		floor := br.retireIdx[pc]
		for _, e := range q {
			if e.tag <= floor {
				t.Fatalf("pc %#x: stale queue entry tag %d <= retireIdx %d", pc, e.tag, floor)
			}
		}
	}
}

func TestBRDisablesAfterForcedWrongness(t *testing.T) {
	// A branch whose chain reads memory that the main loop mutates in place
	// must eventually trip the disable logic or stay low-coverage; either
	// way the engine must not keep overriding with garbage.
	n := 20000
	data := randData(n, 777)
	_, br := run(t, true, func(b *asm.Builder) {
		const base = 0x200000
		b.DataU64(base, data)
		b.Label("main")
		b.LiU(isa.R1, base)
		b.Li(isa.R2, int64(n))
		b.Li(isa.R3, 0)
		b.Li(isa.R11, 50)
		b.Label("loop")
		b.ShlI(isa.R4, isa.R3, 3)
		b.Add(isa.R4, isa.R1, isa.R4)
		b.Ld(isa.R5, isa.R4, 0)
		b.Blt(isa.R5, isa.R11, "skip")
		// Mutate the array the chain loads from (self-modifying data).
		b.AddI(isa.R6, isa.R5, 13)
		b.St(isa.R4, 0, isa.R6)
		b.Label("skip")
		b.AddI(isa.R3, isa.R3, 1)
		b.Blt(isa.R3, isa.R2, "loop")
		b.Halt()
	})
	if br.Stats.Precomputed > 100 && br.Stats.Accuracy() < 0.80 &&
		br.Stats.ChainsDisabled == 0 {
		t.Fatalf("accuracy %.2f with %d overrides and no chain disabled",
			br.Stats.Accuracy(), br.Stats.Precomputed)
	}
}
