package core

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
)

// buildCallKernel reproduces §III-D's scenario: the H2P branch lives inside
// a function body and its input arrives through memory (a stack slot), so
// accurate precomputation requires tracing the store→load pair across the
// call. Without memory dependencies in the walk, the chain misses the
// producer of the stored value.
func buildCallKernel(b *asm.Builder, n int, data []uint64) {
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.SP, 0x800000)
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)  // i
	b.Li(isa.R10, 0) // accepted
	b.Li(isa.R11, 50)
	b.Label("loop")
	idxReg := isa.R4
	b.ShlI(idxReg, isa.R3, 3)
	b.Add(idxReg, isa.R1, idxReg)
	b.Ld(isa.R5, idxReg, 0) // x = data[i]
	// Pass x to the function through the stack (memory dependence).
	b.AddI(isa.SP, isa.SP, -16)
	b.St(isa.SP, 0, isa.R5)
	b.St(isa.SP, 8, isa.LR)
	b.Call("f")
	b.Ld(isa.LR, isa.SP, 8)
	b.AddI(isa.SP, isa.SP, 16)
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()

	b.Label("f")
	b.Ld(isa.R6, isa.SP, 0)        // y = arg (memory)
	b.Blt(isa.R6, isa.R11, "take") // H2P: data-dependent inside the callee
	b.Ret()
	b.Label("take")
	b.AddI(isa.R10, isa.R10, 1)
	b.Ret()
}

func runCallKernel(t *testing.T, mod func(*Config)) (*pipeline.Core, *TEA) {
	t.Helper()
	n := 20000
	data := randData(n, 4242)
	b := asm.NewBuilder()
	buildCallKernel(b, n, data)
	p := b.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 30_000_000
	c := pipeline.New(cfg, p)
	tcfg := DefaultConfig()
	if mod != nil {
		mod(&tcfg)
	}
	tea := New(tcfg, c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c, tea
}

// TestMemoryDependenceFeature: with memory dependencies traced, the chain
// crosses the call (store→load through the stack) and the callee's H2P
// branch is covered accurately; the NoMem ablation must do measurably
// worse on this kernel (§III-D, Fig. 10's "no mem" bar).
func TestMemoryDependenceFeature(t *testing.T) {
	_, full := runCallKernel(t, nil)
	_, nomem := runCallKernel(t, func(c *Config) { c.NoMem = true })

	fullCov := full.Stats.Coverage()
	nomemCov := nomem.Stats.Coverage()
	t.Logf("coverage with mem deps = %.2f (acc %.3f), without = %.2f (acc %.3f)",
		fullCov, full.Stats.Accuracy(), nomemCov, nomem.Stats.Accuracy())
	if fullCov < 0.30 {
		t.Fatalf("call-kernel coverage too low with memory deps: %.2f", fullCov)
	}
	if nomemCov >= fullCov {
		t.Fatalf("NoMem coverage (%.2f) should be below full TEA (%.2f) on the call kernel",
			nomemCov, fullCov)
	}
}

// TestStoreCacheUsedAcrossCall: the TEA thread's own store (the stack push)
// must forward to its own load (the callee's argument read) through the
// store data cache (§IV-E).
func TestStoreCacheUsedAcrossCall(t *testing.T) {
	_, tea := runCallKernel(t, nil)
	if tea.Store.Writes == 0 {
		t.Fatal("TEA stores never reached the store data cache")
	}
	if tea.Store.Hits == 0 {
		t.Fatal("TEA loads never forwarded from the store data cache")
	}
}

// TestPoisoningFiresOnIncompleteChains: with NoMasks the Block Cache keeps
// only the latest control flow's mask, so the sometimes-executed writer of
// r7 is often missing from the fetched chain. RAT poisoning (§IV-G) must
// notice: the unmasked writer poisons r7, and the chain-marked consumer
// reading it flags the violation.
func TestPoisoningFiresOnIncompleteChains(t *testing.T) {
	n := 20000
	data := randData(n, 99)
	b := asm.NewBuilder()
	// The branch input is laundered through r7, which a non-chain
	// instruction overwrites on the taken path — chains captured from the
	// not-taken flow poison on the taken flow.
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)
	b.Li(isa.R11, 50)
	b.Li(isa.R7, 0)
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Add(isa.R6, isa.R5, isa.R7)
	b.Blt(isa.R6, isa.R11, "skip")
	b.AndI(isa.R7, isa.R5, 3) // sometimes-executed writer of r7
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
	p := b.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 30_000_000
	c := pipeline.New(cfg, p)
	tcfg := DefaultConfig()
	tcfg.NoMasks = true
	tea := New(tcfg, c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if tea.Stats.PoisonSets == 0 {
		t.Fatal("poison bits never set")
	}
	t.Logf("poison sets=%d violations=%d accuracy=%.3f",
		tea.Stats.PoisonSets, tea.Stats.PoisonViolations, tea.Stats.Accuracy())
}

// TestMaskResetBoundsStaleChains: with an aggressive mask-reset period the
// thread keeps working (correctness + liveness under periodic resets).
func TestMaskResetAggressive(t *testing.T) {
	_, tea := runCallKernel(t, func(c *Config) { c.MaskResetPeriod = 10_000 })
	if tea.Stats.MaskResets == 0 {
		t.Fatal("mask reset never fired")
	}
	if tea.Stats.CoveredMisp == 0 {
		t.Fatal("no coverage at all under mask resets")
	}
}

// TestLeadCapHonored: the companion cursor never runs more than
// MaxLeadBlocks ahead.
func TestLeadCapHonored(t *testing.T) {
	n := 20000
	data := randData(n, 7)
	b := asm.NewBuilder()
	buildFig1Kernel(b, n, data, 8)
	p := b.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.MaxCycles = 30_000_000
	c := pipeline.New(cfg, p)
	tcfg := DefaultConfig()
	tcfg.MaxLeadBlocks = 3
	New(tcfg, c)
	for !c.Halted() {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if lead := c.TEALeadBlocks(); lead > 3+1 {
			t.Fatalf("lead %d exceeds cap", lead)
		}
		if c.Cycle > 20_000_000 {
			t.Fatal("wedged")
		}
	}
}

// TestDisableEarlyFlushStillPrefetches: with flushes off, the thread still
// executes chains (loads warm the caches) and never issues flushes.
func TestDisableEarlyFlushStillPrefetches(t *testing.T) {
	c, tea := runCallKernel(t, func(cfg *Config) { cfg.DisableEarlyFlush = true })
	if tea.Stats.EarlyFlushes != 0 {
		t.Fatalf("early flushes issued despite DisableEarlyFlush: %d", tea.Stats.EarlyFlushes)
	}
	if tea.Stats.UopsRenamed == 0 {
		t.Fatal("thread executed nothing")
	}
	if c.Stats.EarlyFlushes != 0 {
		t.Fatal("pipeline counted early flushes")
	}
}
