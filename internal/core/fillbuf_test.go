package core

import (
	"testing"

	"teasim/internal/isa"
)

// mkInst builds instruction helpers for walk tests.
func ldInst(rd, rs1 isa.Reg) *isa.Inst   { return &isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1} }
func addInst(rd, a, b isa.Reg) *isa.Inst { return &isa.Inst{Op: isa.OpAdd, Rd: rd, Rs1: a, Rs2: b} }
func stInst(rs1, rs2 isa.Reg) *isa.Inst  { return &isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2} }
func brInst(a, b isa.Reg) *isa.Inst      { return &isa.Inst{Op: isa.OpBlt, Rs1: a, Rs2: b} }

func entry(pc uint64, in *isa.Inst) FillEntry {
	return FillEntry{PC: pc, In: in, IsBranch: in.IsBranch()}
}

// TestWalkMarksChain reproduces the paper's Fig. 1 shape: a load feeding a
// compare-and-branch, with an unrelated instruction in between that must NOT
// be marked.
func TestWalkMarksChain(t *testing.T) {
	cfg := DefaultConfig()
	f := NewFillBuffer(16)
	// Program order (oldest first):
	//   0x100: ld   r1, [r4]      (chain: produces r1)
	//   0x104: add  r9, r8, r8    (NOT in chain)
	//   0x108: blt  r1, r2 -> H2P (root)
	f.Add(entry(0x100, ldInst(isa.R1, isa.R4)))
	f.Add(entry(0x104, addInst(isa.R9, isa.R8, isa.R8)))
	e := entry(0x108, brInst(isa.R1, isa.R2))
	e.IsH2P, e.ChainBit = true, true
	f.Add(e)

	marked := f.Walk(&cfg)
	if marked != 2 {
		t.Fatalf("marked = %d, want 2 (load + branch)", marked)
	}
	if !f.entries[0].marked || f.entries[1].marked || !f.entries[2].marked {
		t.Fatalf("mark pattern wrong: %v %v %v",
			f.entries[0].marked, f.entries[1].marked, f.entries[2].marked)
	}
}

// TestWalkMemoryDependence checks store→load chains across a "call": the
// store that produces a loaded value joins the chain, and disabling NoMem
// removes it (the Fig. 10 "no mem" ablation).
func TestWalkMemoryDependence(t *testing.T) {
	build := func() *FillBuffer {
		f := NewFillBuffer(16)
		// 0x100: add r3, r5, r6     (chain via store data)
		// 0x104: st  [r30], r3      (memory dep)
		// 0x108: ld  r1, [r30]      (chain)
		// 0x10c: blt r1, r2         (H2P root)
		f.Add(entry(0x100, addInst(isa.R3, isa.R5, isa.R6)))
		st := entry(0x104, stInst(isa.SP, isa.R3))
		st.Addr = 0x8000
		f.Add(st)
		ld := entry(0x108, ldInst(isa.R1, isa.SP))
		ld.Addr = 0x8000
		f.Add(ld)
		br := entry(0x10c, brInst(isa.R1, isa.R2))
		br.IsH2P, br.ChainBit = true, true
		f.Add(br)
		return f
	}

	cfg := DefaultConfig()
	f := build()
	if got := f.Walk(&cfg); got != 4 {
		t.Fatalf("with mem deps marked = %d, want 4", got)
	}

	cfg.NoMem = true
	f2 := build()
	got := f2.Walk(&cfg)
	if got != 2 {
		t.Fatalf("NoMem marked = %d, want 2 (load + branch only)", got)
	}
	if f2.entries[0].marked || f2.entries[1].marked {
		t.Fatal("NoMem must not mark the store-side chain")
	}
}

// TestWalkChainBitSeeding checks §III-C: TEA-marked instructions seed walks,
// extending chains beyond what a single H2P branch reaches; the NoMasks
// ablation disables it.
func TestWalkChainBitSeeding(t *testing.T) {
	cfg := DefaultConfig()
	f := NewFillBuffer(16)
	// 0x100: add r7, r6, r6   (chain only via seeding: produces r6's source)
	// 0x104: add r1, r7, r7   (TEA-marked seed)
	f.Add(entry(0x100, addInst(isa.R7, isa.R6, isa.R6)))
	seed := entry(0x104, addInst(isa.R1, isa.R7, isa.R7))
	seed.ChainBit = true
	f.Add(seed)

	if got := f.Walk(&cfg); got != 2 {
		t.Fatalf("seeded walk marked = %d, want 2", got)
	}

	cfg.NoMasks = true
	f2 := NewFillBuffer(16)
	f2.Add(entry(0x100, addInst(isa.R7, isa.R6, isa.R6)))
	f2.Add(seed)
	if got := f2.Walk(&cfg); got != 0 {
		t.Fatalf("NoMasks walk marked = %d, want 0", got)
	}
}

// TestWalkOnlyLoops: the loop-confined walk stops at the previous dynamic
// instance of the H2P branch.
func TestWalkOnlyLoops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OnlyLoops = true
	f := NewFillBuffer(16)
	// Two iterations of: add r1,r4,r4 ; blt r1,r2 (H2P @0x104)
	// plus an older producer of r4 BEFORE the previous instance, which a
	// full walk would mark but the loop-confined walk must not.
	f.Add(entry(0x0f0, addInst(isa.R4, isa.R5, isa.R5))) // outside loop body
	it1 := entry(0x104, brInst(isa.R1, isa.R2))
	it1.IsH2P = true
	f.Add(entry(0x100, addInst(isa.R1, isa.R4, isa.R4)))
	f.Add(it1)
	it2 := entry(0x104, brInst(isa.R1, isa.R2))
	it2.IsH2P = true
	f.Add(entry(0x100, addInst(isa.R1, isa.R4, isa.R4)))
	f.Add(it2)

	f.Walk(&cfg)
	if f.entries[0].marked {
		t.Fatal("only-loops walk escaped the loop boundary")
	}
	if !f.entries[3].marked || !f.entries[4].marked {
		t.Fatal("in-loop chain not marked")
	}
}

// TestSegments checks basic-block segmentation and mask generation.
func TestSegments(t *testing.T) {
	f := NewFillBuffer(16)
	// Block A: 0x100, 0x104, branch 0x108 (marked: 0x100, 0x108)
	// Block B (taken target): 0x200 (marked)
	a0 := entry(0x100, addInst(isa.R1, isa.R2, isa.R3))
	a0.marked = true
	a1 := entry(0x104, addInst(isa.R9, isa.R8, isa.R8))
	a2 := entry(0x108, brInst(isa.R1, isa.R2))
	a2.marked = true
	b0 := entry(0x200, addInst(isa.R4, isa.R1, isa.R1))
	b0.marked = true
	f.Add(a0)
	f.Add(a1)
	f.Add(a2)
	f.Add(b0)

	type seg struct {
		pc    uint64
		count int
		mask  uint32
	}
	var segs []seg
	f.Segments(func(pc uint64, count int, mask uint32) {
		segs = append(segs, seg{pc, count, mask})
	})
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0] != (seg{0x100, 3, 0b101}) {
		t.Fatalf("segment A = %+v", segs[0])
	}
	if segs[1] != (seg{0x200, 1, 0b1}) {
		t.Fatalf("segment B = %+v", segs[1])
	}
}

func TestSourceListMemEviction(t *testing.T) {
	s := sourceList{memCap: 2, useMem: true}
	s.addMem(0x10)
	s.addMem(0x20)
	s.addMem(0x30) // evicts 0x10
	if s.hasMem(0x10) {
		t.Fatal("oldest address not evicted")
	}
	if !s.hasMem(0x20) || !s.hasMem(0x30) {
		t.Fatal("young addresses lost")
	}
	s.delMem(0x20)
	if s.hasMem(0x20) {
		t.Fatal("delMem failed")
	}
}
