package core

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/pipeline"
)

// buildFig1Kernel emits the paper's Fig. 1 control-flow pattern: a loop over
// an array whose elements guard a chunk of work with a data-dependent (H2P)
// branch. bodyFiller controls how much non-chain work the main thread must
// fetch per iteration (the TEA thread skips it).
func buildFig1Kernel(b *asm.Builder, n int, data []uint64, bodyFiller int) {
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)   // i
	b.Li(isa.R10, 0)  // sum
	b.Li(isa.R11, 50) // threshold
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Blt(isa.R5, isa.R11, "skip") // H2P: data-dependent
	// Guarded "work" the TEA thread never fetches.
	b.Add(isa.R10, isa.R10, isa.R5)
	for k := 0; k < bodyFiller; k++ {
		b.AddI(isa.R12, isa.R10, int64(k))
		b.Xor(isa.R13, isa.R12, isa.R10)
	}
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
}

func randData(n int, seed uint64) []uint64 {
	data := make([]uint64, n)
	rng := seed
	for i := range data {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		data[i] = rng % 100
	}
	return data
}

func runKernel(t *testing.T, teaCfg *Config, build func(b *asm.Builder)) (*pipeline.Core, *TEA) {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	p := b.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	c := pipeline.New(cfg, p)
	var tea *TEA
	if teaCfg != nil {
		tea = New(*teaCfg, c)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c, tea
}

func TestTEAIntegrationFig1(t *testing.T) {
	n := 30000
	data := randData(n, 12345)
	teaCfg := DefaultConfig()
	c, tea := runKernel(t, &teaCfg, func(b *asm.Builder) {
		buildFig1Kernel(b, n, data, 8)
	})

	if tea.Stats.Activations == 0 {
		t.Fatal("TEA thread never activated")
	}
	if tea.Stats.WalksDone == 0 {
		t.Fatal("no Backward Dataflow Walks completed")
	}
	if tea.Stats.Precomputed == 0 {
		t.Fatal("no branches precomputed")
	}
	if tea.Stats.EarlyFlushes == 0 {
		t.Fatal("no early flushes issued")
	}
	acc := tea.Stats.Accuracy()
	if acc < 0.95 {
		t.Fatalf("precomputation accuracy = %.3f, want >= 0.95", acc)
	}
	cov := tea.Stats.Coverage()
	if cov < 0.30 {
		t.Fatalf("misprediction coverage = %.3f, want >= 0.30", cov)
	}
	t.Logf("accuracy=%.3f coverage=%.3f covered=%d late=%d incorrect=%d uncovered=%d saved/branch=%.1f",
		acc, cov, tea.Stats.CoveredMisp, tea.Stats.LateMisp,
		tea.Stats.IncorrectMisp, tea.Stats.UncoveredMisp, tea.Stats.AvgCyclesSaved())
	_ = c
}

func TestTEASpeedupOnH2PKernel(t *testing.T) {
	n := 30000
	data := randData(n, 999)
	build := func(b *asm.Builder) { buildFig1Kernel(b, n, data, 8) }

	base, _ := runKernel(t, nil, build)
	teaCfg := DefaultConfig()
	teaC, tea := runKernel(t, &teaCfg, build)

	baseC := base.Stats.Cycles
	withTEA := teaC.Stats.Cycles
	speedup := float64(baseC) / float64(withTEA)
	t.Logf("baseline=%d cycles, TEA=%d cycles, speedup=%.3f, coverage=%.2f, saved/br=%.1f",
		baseC, withTEA, speedup, tea.Stats.Coverage(), tea.Stats.AvgCyclesSaved())
	if speedup < 1.02 {
		t.Fatalf("TEA speedup = %.3f, want > 1.02", speedup)
	}
}

// TestTEATortureCorrectness attaches the TEA thread to random control-flow
// programs under full co-simulation: precomputation must never corrupt the
// committed architectural state no matter what it does.
func TestTEATortureCorrectness(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		teaCfg := DefaultConfig()
		// Stress the machinery: tiny fill buffer and caches, fast walks.
		teaCfg.FillBufSize = 128
		teaCfg.WalkCycles = 50
		teaCfg.MaskResetPeriod = 20_000
		teaCfg.H2PDecayPeriod = 5_000
		c, tea := runKernel(t, &teaCfg, func(b *asm.Builder) {
			buildTortureProgram(b, seed, 16, 30_000)
		})
		if c.Stats.Retired < 30_000 {
			t.Fatalf("seed %d: retired only %d", seed, c.Stats.Retired)
		}
		_ = tea
	}
}

// buildTortureProgram is a trimmed copy of the pipeline torture generator:
// random blocks, data-dependent branches, loads/stores, an LFSR driver.
func buildTortureProgram(b *asm.Builder, seed uint64, nBlocks, steps int) {
	rng := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	blkName := func(i int) string { return "b" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }
	b.Label("main")
	b.Li(isa.R20, int64(steps))
	b.LiU(isa.R21, 0x300000)
	b.Li(isa.R22, int64(seed*0x9E3779B9+1))
	for i := 1; i <= 15; i++ {
		b.Li(isa.Reg(i), int64(seed)*int64(i)+3)
	}
	b.Jmp(blkName(0))
	for blk := 0; blk < nBlocks; blk++ {
		b.Label(blkName(blk))
		b.ShlI(isa.R1, isa.R22, 13)
		b.Xor(isa.R22, isa.R22, isa.R1)
		b.ShrI(isa.R1, isa.R22, 7)
		b.Xor(isa.R22, isa.R22, isa.R1)
		for k, nOps := 0, 2+next(4); k < nOps; k++ {
			rd := isa.Reg(2 + next(13))
			r1 := isa.Reg(2 + next(13))
			r2 := isa.Reg(2 + next(13))
			switch next(6) {
			case 0:
				b.Add(rd, r1, r2)
			case 1:
				b.Sub(rd, r1, r2)
			case 2:
				b.Xor(rd, r1, r2)
			case 3:
				b.AndI(isa.R16, isa.R22, 0xFF8)
				b.Add(isa.R16, isa.R21, isa.R16)
				b.Ld(rd, isa.R16, 0)
			case 4:
				b.AndI(isa.R16, isa.R22, 0xFF8)
				b.Add(isa.R16, isa.R21, isa.R16)
				b.St(isa.R16, 0, r1)
			case 5:
				b.Slt(rd, r1, r2)
			}
		}
		b.AddI(isa.R20, isa.R20, -1)
		b.Beqz(isa.R20, "exit")
		t1, t2 := blkName(next(nBlocks)), blkName(next(nBlocks))
		b.AndI(isa.R17, isa.R22, 3)
		b.Beqz(isa.R17, t1)
		b.Jmp(t2)
	}
	b.Label("exit")
	b.Halt()
}

func TestTEAAblationsRun(t *testing.T) {
	n := 8000
	data := randData(n, 777)
	build := func(b *asm.Builder) { buildFig1Kernel(b, n, data, 8) }
	variants := map[string]func(*Config){
		"onlyloops": func(c *Config) { c.OnlyLoops = true },
		"nomasks":   func(c *Config) { c.NoMasks = true },
		"nomem":     func(c *Config) { c.NoMem = true },
		"noflush":   func(c *Config) { c.DisableEarlyFlush = true },
	}
	for name, mod := range variants {
		cfg := DefaultConfig()
		mod(&cfg)
		c, tea := runKernel(t, &cfg, build)
		if !c.Halted() {
			t.Fatalf("%s: did not halt", name)
		}
		if name == "noflush" && tea.Stats.EarlyFlushes != 0 {
			t.Fatalf("noflush issued %d early flushes", tea.Stats.EarlyFlushes)
		}
	}
}

// TestTEAPoolInvariant: after a full run the TEA register pool must be
// consistent — no leaked or double-freed registers once drained.
func TestTEAPoolInvariant(t *testing.T) {
	n := 10000
	data := randData(n, 31415)
	teaCfg := DefaultConfig()
	_, tea := runKernel(t, &teaCfg, func(b *asm.Builder) {
		buildFig1Kernel(b, n, data, 4)
	})
	seen := make(map[uint16]bool)
	for _, p := range tea.prFree {
		if seen[p] {
			t.Fatalf("register %d on the free list twice", p)
		}
		seen[p] = true
		if !tea.isTEAPR(p) {
			t.Fatalf("non-TEA register %d on TEA free list", p)
		}
	}
	allocated := 0
	for i := range tea.allocated {
		if tea.allocated[i] {
			allocated++
		}
	}
	if allocated+len(tea.prFree) != len(tea.allocated) {
		t.Fatalf("pool accounting broken: %d allocated + %d free != %d",
			allocated, len(tea.prFree), len(tea.allocated))
	}
}

// TestTEADedicatedTortureCorrectness runs the dedicated-engine configuration
// (§V-D) against random programs under co-simulation.
func TestTEADedicatedTortureCorrectness(t *testing.T) {
	b := asm.NewBuilder()
	buildTortureProgram(b, 11, 16, 30_000)
	p := b.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	cfg.CompanionDedicated = true
	cfg.CompanionPorts = 16
	c := pipeline.New(cfg, p)
	New(DefaultConfig(), c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
}

// TestTEABackoffEngages: a workload that is hostile to precomputation
// (self-modifying decision data) must trip either the suppression table,
// the load-ordering escalation, or the windowed backoff — TEA must not
// blindly keep flushing wrongly.
func TestTEAAdaptiveDefensesEngage(t *testing.T) {
	n := 30000
	data := randData(n, 77)
	b := asm.NewBuilder()
	const base = 0x200000
	b.DataU64(base, data)
	b.Label("main")
	b.LiU(isa.R1, base)
	b.Li(isa.R2, int64(n))
	b.Li(isa.R3, 0)
	b.Li(isa.R11, 50)
	b.Label("loop")
	b.ShlI(isa.R4, isa.R3, 3)
	b.Add(isa.R4, isa.R1, isa.R4)
	b.Ld(isa.R5, isa.R4, 0)
	b.Blt(isa.R5, isa.R11, "skip") // H2P over data the loop mutates
	b.AddI(isa.R6, isa.R5, 31)
	b.AndI(isa.R6, isa.R6, 127)
	b.St(isa.R4, 0, isa.R6) // self-modifying decision data
	b.Label("skip")
	b.AddI(isa.R3, isa.R3, 1)
	b.Blt(isa.R3, isa.R2, "loop")
	b.Halt()
	p := b.MustBuild()
	cfg := pipeline.DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 30_000_000
	c := pipeline.New(cfg, p)
	tea := New(DefaultConfig(), c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	s := tea.Stats
	defended := s.BlockedFlushes > 0 || s.LoadWaitEnables > 0 || s.Backoffs > 0
	if s.PreWrong > 200 && !defended {
		t.Fatalf("wrongness %d with no adaptive defense engaged", s.PreWrong)
	}
}
