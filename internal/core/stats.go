package core

// Stats collects TEA-thread counters, including the per-misprediction
// classification behind Fig. 7 and the accuracy/coverage/timeliness
// measures behind Fig. 10.
type Stats struct {
	Activations   uint64
	TermBCMiss    uint64
	TermIncorrect uint64 // RAT-poisoning violations
	TermLate      uint64
	TermOvertaken uint64 // main thread consumed the stream past the cursor

	WalksDone  uint64
	WalkMarked uint64 // chain uops marked across all walks
	MaskResets uint64
	H2PDecays  uint64

	UopsFetched   uint64 // TEA chain uops fetched from the Block Cache
	UopsRenamed   uint64
	PRStallCycles uint64

	// Branch precomputation outcomes (counted at TEA resolution).
	Resolved       uint64 // TEA branch resolutions delivered
	EarlyFlushes   uint64 // resolutions that issued an early flush
	Agreements     uint64 // resolutions agreeing with the current prediction
	LateEvents     uint64 // resolved after the main branch executed
	BlockedFlushes uint64 // suppressed by RAT poisoning

	// Retirement-time classification over all retired branches that had a
	// TEA precomputation.
	Precomputed uint64
	PreCorrect  uint64
	PreWrong    uint64

	// Classification of retired *mispredicted* branches (Fig. 7).
	CoveredMisp   uint64 // precomputed correctly before main resolution
	LateMisp      uint64 // precomputed correctly but not earlier
	IncorrectMisp uint64 // precomputed wrongly
	UncoveredMisp uint64 // no precomputation available
	CyclesSaved   uint64 // sum over covered mispredictions

	PoisonSets       uint64
	PoisonViolations uint64
	FailSafeWrong    uint64 // wrong precomputations caught at main execute
	Backoffs         uint64 // adaptive precomputation pauses
	LoadWaitEnables  uint64 // escalations to conservative load ordering

	ArmMiss        uint64 // arming attempts rejected by a Block Cache miss
	InactiveCycles uint64

	// OnFlush path distribution (diagnostics).
	FlushMainSync uint64 // recovered from the main RAT (branch renamed)
	FlushCkptSync uint64 // recovered from a shadow RAT checkpoint
	FlushNoSync   uint64 // no synchronization point: thread drained
}

// Accuracy returns the precomputation accuracy (paper: 99.3%).
func (s *Stats) Accuracy() float64 {
	if s.Precomputed == 0 {
		return 1
	}
	return float64(s.PreCorrect) / float64(s.Precomputed)
}

// Coverage returns the fraction of retired mispredictions the TEA thread
// resolved early and correctly (paper: ~76%).
func (s *Stats) Coverage() float64 {
	total := s.CoveredMisp + s.LateMisp + s.IncorrectMisp + s.UncoveredMisp
	if total == 0 {
		return 0
	}
	return float64(s.CoveredMisp) / float64(total)
}

// AvgCyclesSaved returns the mean misprediction cycles saved per covered
// branch (Fig. 10c's timeliness measure).
func (s *Stats) AvgCyclesSaved() float64 {
	if s.CoveredMisp == 0 {
		return 0
	}
	return float64(s.CyclesSaved) / float64(s.CoveredMisp)
}
