package core

// StoreCache is the TEA thread's store data cache (§IV-E): TEA stores must
// not modify architectural state, so they write a small buffer holding the
// last N half-lines (32B) touched by TEA stores. TEA loads consult it before
// the D-cache. Byte-granular valid bits make partially written half-lines
// safe: a load that is not fully covered falls through to memory (and may
// therefore observe stale data — one of the accuracy limits the paper's
// fail-safes catch).
type StoreCache struct {
	lines   []scLine
	lruTick uint32

	Writes   uint64
	Hits     uint64
	Partials uint64 // loads that overlapped but were not fully covered
}

const halfLine = 32

type scLine struct {
	valid bool
	addr  uint64 // 32B-aligned
	data  [halfLine]byte
	mask  uint32 // per-byte valid bits
	lru   uint32
}

// NewStoreCache returns a cache of n half-lines.
func NewStoreCache(n int) *StoreCache {
	return &StoreCache{lines: make([]scLine, n)}
}

// Reset discards all buffered store data (thread restart).
func (s *StoreCache) Reset() {
	for i := range s.lines {
		s.lines[i] = scLine{}
	}
}

func (s *StoreCache) line(addr uint64, alloc bool) *scLine {
	base := addr &^ (halfLine - 1)
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].addr == base {
			return &s.lines[i]
		}
	}
	if !alloc {
		return nil
	}
	victim := &s.lines[0]
	for i := range s.lines {
		l := &s.lines[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	*victim = scLine{valid: true, addr: base}
	return victim
}

// Write buffers size bytes of v at addr. Writes crossing a half-line
// boundary are split. The line is resolved once per half-line touched, not
// per byte — byte runs within a half-line hit the same line by definition.
func (s *StoreCache) Write(addr uint64, v uint64, size int) {
	s.Writes++
	s.lruTick++
	base := addr &^ (halfLine - 1)
	l := s.line(addr, true)
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if b := a &^ (halfLine - 1); b != base {
			base = b
			l = s.line(a, true)
		}
		off := a & (halfLine - 1)
		l.data[off] = byte(v >> (8 * i))
		l.mask |= 1 << off
		l.lru = s.lruTick
	}
}

// Read returns size bytes at addr if every byte is covered by buffered
// store data; ok=false sends the load to the cache hierarchy instead.
func (s *StoreCache) Read(addr uint64, size int) (v uint64, ok bool) {
	s.lruTick++
	covered := 0
	// base starts unaligned so the first byte always resolves its line.
	base, l := uint64(1), (*scLine)(nil)
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if b := a &^ (halfLine - 1); b != base {
			base = b
			l = s.line(a, false)
		}
		if l == nil {
			continue
		}
		off := a & (halfLine - 1)
		if l.mask&(1<<off) == 0 {
			continue
		}
		v |= uint64(l.data[off]) << (8 * i)
		l.lru = s.lruTick
		covered++
	}
	if covered == size {
		s.Hits++
		return v, true
	}
	if covered > 0 {
		s.Partials++
	}
	return 0, false
}
