package core

// H2PTable identifies hard-to-predict branches (§IV-B): a set-associative
// table of 3-bit saturating misprediction counters, indexed by branch PC.
// An entry is created (counter=1) on a misprediction and incremented on
// further mispredictions; all counters decay by one every H2PDecayPeriod
// retired instructions so only branches above ~0.02 MPKI stay marked.
// A branch is H2P while its counter exceeds the threshold.
type H2PTable struct {
	sets      int
	ways      int
	max       uint8
	threshold uint8
	entries   []h2pEntry
	lruTick   uint32
	paranoia  bool // Config.Paranoia: counter-saturation tripwire
}

type h2pEntry struct {
	valid bool
	tag   uint64
	ctr   uint8
	lru   uint32
}

// NewH2PTable builds the table from the TEA configuration.
func NewH2PTable(cfg *Config) *H2PTable {
	return &H2PTable{
		sets:      cfg.H2PSets,
		ways:      cfg.H2PWays,
		max:       cfg.H2PMax,
		threshold: cfg.H2PThreshold,
		entries:   make([]h2pEntry, cfg.H2PSets*cfg.H2PWays),
	}
}

func (t *H2PTable) set(pc uint64) []h2pEntry {
	idx := int(pc>>2) & (t.sets - 1)
	return t.entries[idx*t.ways : (idx+1)*t.ways]
}

func (t *H2PTable) find(pc uint64) *h2pEntry {
	ws := t.set(pc)
	for i := range ws {
		if ws[i].valid && ws[i].tag == pc {
			return &ws[i]
		}
	}
	return nil
}

// RecordMispredict notes a misprediction of the branch at pc, creating or
// bumping its counter.
func (t *H2PTable) RecordMispredict(pc uint64) {
	t.lruTick++
	if e := t.find(pc); e != nil {
		if e.ctr < t.max {
			e.ctr++
		}
		if t.paranoia && e.ctr > t.max {
			panic("core paranoia: H2P counter above saturation point")
		}
		e.lru = t.lruTick
		return
	}
	// Allocate: prefer invalid entries, then zero-counter, then LRU.
	ws := t.set(pc)
	victim := &ws[0]
	for i := range ws {
		e := &ws[i]
		if !e.valid {
			victim = e
			break
		}
		if e.ctr == 0 && (victim.ctr != 0 || e.lru < victim.lru) {
			victim = e
		} else if victim.ctr != 0 && e.lru < victim.lru {
			victim = e
		}
	}
	*victim = h2pEntry{valid: true, tag: pc, ctr: 1, lru: t.lruTick}
}

// IsH2P reports whether the branch at pc is currently hard-to-predict.
func (t *H2PTable) IsH2P(pc uint64) bool {
	e := t.find(pc)
	return e != nil && e.ctr > t.threshold
}

// Decay decrements every counter by one (periodic, §IV-B).
func (t *H2PTable) Decay() {
	for i := range t.entries {
		if t.entries[i].ctr > 0 {
			t.entries[i].ctr--
		}
	}
}

// Count returns the number of branches currently above the H2P threshold
// (diagnostics / the h2pexplorer example).
func (t *H2PTable) Count() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].ctr > t.threshold {
			n++
		}
	}
	return n
}
