package core

import (
	"teasim/internal/companion"
	"teasim/internal/pipeline"
	"teasim/tea/spec"
)

func init() {
	companion.Register(spec.CompanionTEA,
		func(s *spec.MachineSpec, c *pipeline.Core, o companion.Options) (companion.Instance, error) {
			cfg := ConfigFromSpec(s.Companion.TEA)
			// Paranoia is behavioral, not a machine property, so it rides on
			// the run options rather than the spec tree.
			cfg.Paranoia = o.Paranoia
			return teaInstance{New(cfg, c)}, nil
		})
}

// ConfigFromSpec converts the spec's TEA companion section (Table II).
func ConfigFromSpec(t *spec.TEA) Config {
	return Config{
		H2PSets:        t.H2PSets,
		H2PWays:        t.H2PWays,
		H2PMax:         t.H2PMax,
		H2PThreshold:   t.H2PThreshold,
		H2PDecayPeriod: t.H2PDecayPeriod,

		FillBufSize:   t.FillBufSize,
		WalkCycles:    t.WalkCycles,
		SourceMemSize: t.SourceMemSize,

		BlockCacheSets:  t.BlockCacheSets,
		BlockCacheWays:  t.BlockCacheWays,
		EmptyTagSets:    t.EmptyTagSets,
		EmptyTagWays:    t.EmptyTagWays,
		MaskResetPeriod: t.MaskResetPeriod,
		SegMaxUops:      t.SegMaxUops,

		FrontLatency:  t.FrontLatency,
		MaxLeadBlocks: t.MaxLeadBlocks,
		RSPartition:   t.RSPartition,
		PRPartition:   t.PRPartition,

		StoreCacheLines: t.StoreCacheLines,
		StoreWaitWindow: t.StoreWaitWindow,
		LateLimit:       t.LateLimit,
		WrongLimit:      t.WrongLimit,

		OnlyLoops:         t.OnlyLoops,
		NoMasks:           t.NoMasks,
		NoMem:             t.NoMem,
		DisableEarlyFlush: t.DisableEarlyFlush,
	}
}

// teaInstance adapts the TEA thread to the companion registry.
type teaInstance struct{ t *TEA }

func (i teaInstance) Metrics() companion.Metrics {
	s := &i.t.Stats
	m := companion.Metrics{
		Accuracy:       s.Accuracy(),
		Coverage:       s.Coverage(),
		Covered:        s.CoveredMisp,
		Late:           s.LateMisp,
		Incorrect:      s.IncorrectMisp,
		Uncovered:      s.UncoveredMisp,
		AvgCyclesSaved: s.AvgCyclesSaved(),
		EarlyFlushes:   s.EarlyFlushes,
		ExtraUops:      s.UopsFetched,
	}
	return m
}
