package core

import (
	"fmt"

	"teasim/internal/isa"
	"teasim/internal/pipeline"
	"teasim/internal/telemetry"
)

// TEA is the precomputation thread, attached to a pipeline.Core as its
// Companion. See the package comment for the architecture overview.
type TEA struct {
	Cfg  Config
	core *pipeline.Core

	H2P   *H2PTable
	Fill  *FillBuffer
	BC    *BlockCache
	Store *StoreCache

	// Backward Dataflow Walk state machine (§IV-C).
	walking    bool
	walkDoneAt uint64

	// Periodic maintenance.
	retired       uint64
	nextDecay     uint64
	nextMaskReset uint64

	// Adaptive backoff: when a decay window delivers more wrong-flush
	// damage than covered mispredictions, precomputation pauses for the
	// next window (implementation policy; the paper's termination rules
	// assume sub-0.1% wrongness, which synthetic chain-dense kernels with
	// memory-carried dependences can exceed).
	winCovered   uint64
	winIncorrect uint64
	winWrong     uint64 // raw wrong precomputations in the window
	winRight     uint64
	backoffUntil uint64
	// loadWait escalates to conservative TEA load ordering (loads wait for
	// older in-flight TEA stores) when a window shows wrong precomputations
	// rivalling covered ones — typically chains whose store→load producer
	// pairs race in the out-of-order backend. If accuracy stays poor even
	// with ordering, the backoff pauses precomputation instead.
	loadWait bool

	// Thread state. The thread arms at every flush: that is the only point
	// where the recovered main RAT, the shadow RAT, and the redirected fetch
	// stream are exactly synchronized ("the recovered state of the RAT is
	// copied over to both the main RAT and the shadow RAT", §IV-F). It then
	// activates on the first Block Cache hit of the new stream.
	active       bool
	armed        bool
	draining     bool
	blockFlushes bool
	lateCount    int
	// skipPRStall is set by Quiescent when the active thread's pipe head is
	// wedged on an empty TEA register pool, so OnSkip knows the skipped
	// ticks would each have counted a PRStallCycles.
	skipPRStall bool

	// Shadow rename (§IV-D) and the reference-counted TEA register pool
	// (§IV-E: valid bit + 5-bit reference counter per PR, no ROB).
	shadowRAT [isa.NumRegs]uint16
	prBase    uint16
	prFree    []uint16
	refcnt    []uint8
	valid     []bool
	pendWrite []bool
	allocated []bool
	// keptScratch is unmapTEARegs's per-flush keep mask, reused across calls.
	keptScratch []bool

	// TEA frontend pipe (fetched chain uops awaiting shadow rename) and
	// in-flight inserted uops (for squash/drain accounting). frontQ pops by
	// advancing frontHead instead of re-slicing, so the backing array keeps
	// its capacity across pop/append churn.
	frontQ      []*pipeline.Uop
	frontHead   int
	inflight    []*pipeline.Uop
	outstanding int
	// pendStores tracks in-flight (renamed, not yet executed) TEA stores so
	// TEA loads can wait for older producers (§III-D chains through memory).
	pendStores []uint64

	// curSeg carries an in-progress Block Cache segment across cycles when
	// the per-cycle uop budget runs out mid-segment (resuming must not look
	// up a mid-segment PC — only segment starts are tagged).
	curSeg struct {
		valid    bool
		seqBase  uint64 // identifies the fetch block
		expectPC uint64 // nonzero: awaiting the sequential successor block
		startOff int
		end      int
		mask     uint32
	}

	// ckpts checkpoints the shadow RAT at the rename of every TEA branch
	// (§IV-F: "checkpointing the contents of the shadow RAT instead of the
	// main RAT when the TEA thread is running far ahead"). TEA branches
	// rename in ascending sequence order, so the slice stays seq-sorted:
	// lookups binary-search, flushes truncate the tail, and the backing
	// array is reused across the whole run (no per-branch map traffic).
	ckpts []ratCkpt

	poison uint32 // poisoned architectural registers (§IV-G)

	// wrongTbl tracks per-branch precomputation accuracy; branches whose
	// wrong-rate exceeds ~1/8 stop issuing early flushes until the counters
	// age out (halved periodically). This keeps persistently mis-computed
	// chains (e.g. memory mutated by in-flight main-thread stores) from
	// paying the double-flush penalty over and over (§IV-G's intent).
	wrongTbl wrongTable

	debugWrong int // test hook: print the first N wrong precomputations

	// Telemetry (see telemetry.go): interval snapshot and the cycles-saved
	// histogram (nil when no collector is attached).
	ivLast    ivSnapshot
	savedHist *telemetry.Histogram

	Stats Stats
}

func debugf(format string, args ...any) { fmt.Printf(format, args...) }

// debugResolve prints the first N TEA branch resolutions (test diagnostics).
var debugResolve int

// debugBCMiss prints the first N Block Cache miss terminations.
var debugBCMiss int

// debugEmptySeg/debugEmptyPC trace empty-mask segment fetches (diagnostics).
var debugEmptySeg int
var debugEmptyPC uint64

// debugFlushLo/Hi bound the OnFlush trace window (diagnostics).
var debugFlushLo, debugFlushHi uint64

// SetDebugFlushWindow arms the OnFlush trace.
func SetDebugFlushWindow(lo, hi uint64) { debugFlushLo, debugFlushHi = lo, hi }

// SetDebugBCMiss arms the Block Cache miss trace (test diagnostics).
func SetDebugBCMiss(n int) { debugBCMiss = n }

// SetDebugWrong arms the wrong-precomputation trace (test diagnostics).
func (t *TEA) SetDebugWrong(n int) { t.debugWrong = n }

// SetDebugEmptySeg traces empty-mask fetches of the block at pc.
func SetDebugEmptySeg(n int, pc uint64) { debugEmptySeg, debugEmptyPC = n, pc }

// debugClassify prints the first N retired-misprediction classifications.
var debugClassify int

// refcntMax is the 5-bit reference-counter saturation point. Saturated
// counters pin their register until the next thread restart (the paper
// notes overflow is rare and tolerable).
const refcntMax = 31

// New builds a TEA thread and attaches it to the core.
func New(cfg Config, c *pipeline.Core) *TEA {
	t := &TEA{
		Cfg:           cfg,
		core:          c,
		H2P:           NewH2PTable(&cfg),
		Fill:          NewFillBuffer(cfg.FillBufSize),
		BC:            NewBlockCache(&cfg),
		Store:         NewStoreCache(cfg.StoreCacheLines),
		prBase:        uint16(c.PRF.ExtraBase()),
		nextDecay:     cfg.H2PDecayPeriod,
		nextMaskReset: cfg.MaskResetPeriod,
	}
	if cfg.Paranoia {
		t.H2P.paranoia = true
		t.Fill.paranoia = true
		t.BC.paranoia = true
	}
	n := cfg.PRPartition
	t.refcnt = make([]uint8, n)
	t.valid = make([]bool, n)
	t.pendWrite = make([]bool, n)
	t.allocated = make([]bool, n)
	t.prFree = make([]uint16, 0, n)
	t.wrongTbl.init(1024)
	t.ckpts = make([]ratCkpt, 0, 64)
	t.resetPRState()
	c.Attach(t)
	t.telemRegister()
	return t
}

func (t *TEA) resetPRState() {
	t.prFree = t.prFree[:0]
	for i := len(t.refcnt) - 1; i >= 0; i-- {
		t.prFree = append(t.prFree, t.prBase+uint16(i))
		t.refcnt[i] = 0
		t.valid[i] = false
		t.pendWrite[i] = false
		t.allocated[i] = false
	}
}

func (t *TEA) isTEAPR(p uint16) bool {
	return p >= t.prBase && int(p-t.prBase) < len(t.refcnt)
}

func (t *TEA) tryFree(p uint16) {
	if !t.isTEAPR(p) {
		return
	}
	i := p - t.prBase
	if t.allocated[i] && !t.valid[i] && t.refcnt[i] == 0 && !t.pendWrite[i] {
		t.allocated[i] = false
		t.prFree = append(t.prFree, p)
	}
}

func (t *TEA) allocPR() (uint16, bool) {
	if len(t.prFree) == 0 {
		return 0, false
	}
	p := t.prFree[len(t.prFree)-1]
	t.prFree = t.prFree[:len(t.prFree)-1]
	i := p - t.prBase
	t.allocated[i] = true
	t.valid[i] = true
	t.pendWrite[i] = true
	t.refcnt[i] = 0
	// The register file slot may hold a stale ready value from a previous
	// allocation; consumers must wait for the new producer's writeback.
	t.core.PRF.Ready[p] = false
	return p, true
}

// --- Companion interface ---

// OnBlock is unused: the TEA frontend reads blocks via the core's shadow
// fetch-queue cursor.
func (t *TEA) OnBlock(*pipeline.FetchBlock) {}

// OnMainFetch is unused: Block Cache bit-masks reach main-thread uops
// through the fetch block's TEAMask fields.
func (t *TEA) OnMainFetch(*pipeline.Uop) {}

// OverridePrediction never fires: the TEA thread corrects the stream with
// early flushes instead of overriding the predictor (§I, §II-C).
func (t *TEA) OverridePrediction(uint64, uint64) (bool, bool) { return false, false }

// OnRetire trains the H2P table, classifies precomputation outcomes,
// performs RAT poisoning, and feeds the Fill Buffer.
func (t *TEA) OnRetire(u *pipeline.Uop) {
	t.retired++
	if t.retired >= t.nextDecay {
		t.nextDecay += t.Cfg.H2PDecayPeriod
		t.H2P.Decay()
		t.Stats.H2PDecays++
		if !t.loadWait && t.winWrong > 16 && t.winWrong*8 > t.winRight {
			// Accuracy is degrading: enforce producer ordering on TEA loads
			// before giving up on precomputation.
			t.loadWait = true
			t.Stats.LoadWaitEnables++
		} else if t.winIncorrect > 8 && t.winIncorrect*2 > t.winCovered {
			t.backoffUntil = t.retired + t.Cfg.H2PDecayPeriod
			t.Stats.Backoffs++
			if t.active {
				t.terminate(false)
			}
		}
		t.winCovered, t.winIncorrect, t.winWrong, t.winRight = 0, 0, 0, 0
	}
	if t.retired >= t.nextMaskReset {
		t.nextMaskReset += t.Cfg.MaskResetPeriod
		t.BC.ResetMasks()
		t.Stats.MaskResets++
	}

	isBranch := u.In.IsBranch()
	if isBranch && u.Rec != nil {
		rec := u.Rec
		if rec.WasMispred {
			t.H2P.RecordMispredict(u.PC)
			t.classifyMisprediction(rec)
		}
		// Accuracy accounting covers precomputations that arrived before the
		// main branch resolved; late results never influenced the pipeline
		// and are tracked in the "late" category instead (§V-B).
		if rec.Precomputed && rec.PreCycle < rec.ResolveCycle {
			t.Stats.Precomputed++
			e := t.wrongTbl.get(u.PC)
			if e.right+e.wrong >= 1024 {
				e.right /= 2
				e.wrong /= 2
			}
			if precomputeCorrect(rec) {
				e.right++
				t.winRight++
				t.Stats.PreCorrect++
			} else {
				e.wrong++
				t.winWrong++
				t.Stats.PreWrong++
				if t.debugWrong > 0 {
					t.debugWrong--
					debugf("WRONG pc=%#x seq=%d preTaken=%v preTgt=%#x actTaken=%v actTgt=%#x preCycle=%d resCycle=%d flushed=%v\n",
						rec.PC, rec.Seq, rec.PreTaken, rec.PreTarget, rec.ActualTaken, rec.ActualTarget, rec.PreCycle, rec.ResolveCycle, rec.PreFlushed)
				}
			}
		}
	}

	// RAT poisoning (§IV-G): only meaningful while the thread is active and
	// the Block Cache covered this instruction's block.
	if t.active && u.MaskSeen {
		t.poisonCheck(u)
	}

	// Fill Buffer sampling (§IV-C): drop retiring instructions mid-walk.
	if !t.walking {
		isH2P := isBranch && t.H2P.IsH2P(u.PC)
		t.Fill.Add(FillEntry{
			PC:       u.PC,
			In:       u.In,
			Addr:     u.Addr,
			IsH2P:    isH2P,
			ChainBit: isH2P || (u.ChainMarked && !t.Cfg.NoMasks),
			IsBranch: isBranch,
			Taken:    u.Taken,
		})
		if t.Fill.Full() {
			t.walking = true
			t.walkDoneAt = t.core.Cycle + t.Cfg.WalkCycles
		}
	}
}

func precomputeCorrect(rec *pipeline.BranchRec) bool {
	return rec.PreTaken == rec.ActualTaken &&
		(!rec.ActualTaken || rec.PreTarget == rec.ActualTarget)
}

func (t *TEA) classifyMisprediction(rec *pipeline.BranchRec) {
	if debugClassify > 0 {
		debugClassify--
		debugf("MISP pc=%#x seq=%d pre=%v preCyc=%d resCyc=%d flushed=%v\n",
			rec.PC, rec.Seq, rec.Precomputed, rec.PreCycle, rec.ResolveCycle, rec.PreFlushed)
	}
	switch {
	case !rec.Precomputed:
		t.Stats.UncoveredMisp++
	case rec.PreCycle >= rec.ResolveCycle:
		t.Stats.LateMisp++
	case !precomputeCorrect(rec):
		t.Stats.IncorrectMisp++
		if rec.PreFlushed {
			t.winIncorrect++
		}
	case rec.PreFlushed:
		// The early flush actually fired: misprediction penalty shrunk.
		t.Stats.CoveredMisp++
		t.winCovered++
		t.Stats.CyclesSaved += rec.ResolveCycle - rec.PreCycle
		if t.savedHist != nil {
			t.savedHist.Observe(float64(rec.ResolveCycle - rec.PreCycle))
		}
	default:
		// Correct and early, but the flush was suppressed or disabled:
		// no benefit was delivered.
		t.Stats.UncoveredMisp++
	}
}

// poisonCheck implements §IV-G: unmasked instructions poison their
// destination AR; masked instructions clear it, and a masked instruction
// reading a poisoned AR reveals an incorrect dependence chain.
func (t *TEA) poisonCheck(u *pipeline.Uop) {
	hasDest := u.In.HasDest() && u.In.Rd != isa.R0
	if !u.ChainMarked {
		if hasDest {
			t.poison |= 1 << uint(u.In.Rd)
			t.Stats.PoisonSets++
		}
		return
	}
	var buf [2]isa.Reg
	for _, r := range u.In.Srcs(buf[:0]) {
		if r != isa.R0 && t.poison&(1<<uint(r)) != 0 {
			t.Stats.PoisonViolations++
			t.Stats.TermIncorrect++
			t.terminate(true)
			return
		}
	}
	if hasDest {
		t.poison &^= 1 << uint(u.In.Rd)
	}
}

// OnFlush restores TEA state after any flush (§IV-F): uops younger than the
// branch are squashed, the recovered RAT is copied into the shadow RAT, and
// the shadow fetch cursor resumes with the corrected stream. Issued TEA uops
// older than the branch stay in flight and may still deliver early flushes
// (nested/out-of-order resolution).
func (t *TEA) OnFlush(seq uint64, branchRenamed bool) {
	// Un-renamed fetched uops: drop them all (their rename state is gone).
	// They never reached the shared backend, so this is their last reference.
	for _, u := range t.frontQ[t.frontHead:] {
		t.core.RecycleCompanionUop(u)
	}
	t.frontQ, t.frontHead = t.frontQ[:0], 0

	// Squash issued TEA uops younger than the branch; their completion
	// drains through UopExecuted, which releases their registers.
	// (Never-issued ones were already handled via UopSquashed.) Released
	// uops leave the in-flight list here — the last reference anywhere.
	live := t.inflight[:0]
	for _, u := range t.inflight {
		if u.CompDone {
			t.core.RecycleCompanionUop(u)
			continue
		}
		if u.Seq > seq {
			u.Squashed = true
		}
		live = append(live, u)
	}
	t.inflight = live

	// Drop checkpoints of squashed TEA branches (the seq-sorted tail).
	t.ckpts = t.ckpts[:t.ckptSearch(seq+1)]

	// Resynchronize the shadow RAT with the post-flush stream. If the main
	// thread had renamed the branch, the recovered main RAT is the exact
	// program state at the branch. If not — the TEA thread was running far
	// ahead and partially flushed the frontend — recover from the shadow
	// RAT checkpoint taken when the TEA branch renamed (§IV-F).
	ckpt, hasCkpt := t.ckptLookup(seq)
	if debugFlushLo <= seq && seq <= debugFlushHi {
		debugf("ONFLUSH seq=%d renamed=%v ckpt=%v cyc=%d frontQ=%d r8map=%d\n",
			seq, branchRenamed, hasCkpt, t.core.Cycle, len(t.frontQ), t.shadowRAT[8])
	}
	switch {
	case branchRenamed:
		t.Stats.FlushMainSync++
		t.shadowRAT = t.core.RATSnapshot()
		t.unmapTEARegs(nil)
		if !t.draining {
			t.armed = true
		}
	case hasCkpt:
		t.Stats.FlushCkptSync++
		t.shadowRAT = ckpt
		t.unmapTEARegs(&ckpt)
		if !t.draining {
			t.armed = true
		}
	default:
		t.Stats.FlushNoSync++
		// No synchronization point (e.g. a decode re-steer of a branch the
		// TEA thread never renamed): drain and wait for the next flush.
		t.shadowRAT = t.core.RATSnapshot()
		t.unmapTEARegs(nil)
		if t.active {
			t.terminate(false)
		}
		t.armed = false
	}
	t.poison = 0
	t.curSeg.valid = false
	t.core.TEAResetCursor()
}

// unmapTEARegs invalidates all TEA-pool registers except those still mapped
// by keep (a restored shadow RAT checkpoint), then frees the releasable ones.
// The kept scratch is reused across flushes (this runs on every flush; a
// fresh slice per call was ~10% of the simulator's steady-state allocations).
func (t *TEA) unmapTEARegs(keep *[isa.NumRegs]uint16) {
	if cap(t.keptScratch) < len(t.valid) {
		t.keptScratch = make([]bool, len(t.valid))
	}
	kept := t.keptScratch[:len(t.valid)]
	clear(kept)
	if keep != nil {
		for _, p := range keep {
			if t.isTEAPR(p) {
				kept[p-t.prBase] = true
			}
		}
	}
	for i := range t.valid {
		if kept[i] {
			t.valid[i] = true
			continue
		}
		if t.valid[i] {
			t.valid[i] = false
			t.tryFree(t.prBase + uint16(i))
		}
	}
}

// PrecomputationWrong reacts to the in-flight branch queue fail-safe
// (§IV-G): the thread is terminated (drained), and branches that keep
// precomputing wrongly are suppressed from issuing early flushes until the
// counter decays.
func (t *TEA) PrecomputationWrong(pc uint64) {
	t.Stats.FailSafeWrong++
	// No explicit termination: when the wrong outcome redirected the stream,
	// the fail-safe flush itself resynchronizes the thread through OnFlush.
	// Retirement-time accuracy tracking suppresses persistent offenders.
}

// suppressed reports whether early flushes for pc are currently disabled
// (wrong-rate above ~1/8 with enough samples).
func (t *TEA) suppressed(pc uint64) bool {
	e := t.wrongTbl.lookup(pc)
	return e != nil && e.wrong >= uint32(t.Cfg.WrongLimit) && e.wrong*8 > e.right
}

// UopSquashed handles companion uops squashed before they issued (no
// completion callback will come).
func (t *TEA) UopSquashed(u *pipeline.Uop) {
	t.outstanding--
	t.releaseUop(u)
	if t.draining && t.outstanding == 0 {
		t.finishDrain()
	}
}

// Tick runs the TEA frontend each cycle: commit finished walks, try to
// (re)activate, fetch chain uops from the Block Cache, and shadow-rename
// them into the shared backend with issue priority.
func (t *TEA) Tick() {
	if t.walking && t.core.Cycle >= t.walkDoneAt {
		t.commitWalk()
	}
	if t.draining && t.outstanding == 0 {
		t.finishDrain()
	}
	if t.core.TEACursorInvalid() {
		// The main thread consumed the stream past our cursor: the shadow
		// RAT no longer corresponds to the next block. Lose the arm (and
		// the thread, if running) until the next flush re-synchronizes.
		t.armed = false
		if t.active {
			t.Stats.TermOvertaken++
			t.terminate(false)
		}
	}
	if !t.active {
		t.Stats.InactiveCycles++
		if t.armed && !t.draining && t.retired >= t.backoffUntil {
			t.tryActivate()
		}
		return
	}
	t.fetchChainUops()
	t.renameAndInsert()
}

func (t *TEA) commitWalk() {
	marked := t.Fill.Walk(&t.Cfg)
	t.Stats.WalksDone++
	t.Stats.WalkMarked += uint64(marked)
	t.Fill.Segments(func(startPC uint64, count int, mask uint32) {
		t.BC.Update(startPC, count, mask)
	})
	t.Fill.Reset()
	t.walking = false
}

// tryActivate starts the thread when the first block of the post-flush
// stream hits in the Block Cache (§IV-D: "initiated on a hit in the Block
// Cache"). The shadow RAT was synchronized when the flush armed the thread;
// a Block Cache miss disarms it until the next flush (starting mid-stream
// without that synchronization would precompute with stale values).
func (t *TEA) tryActivate() {
	if t.BC.Updates == 0 {
		return
	}
	blk := t.core.TEANextBlockPeek()
	if blk == nil {
		return // the redirected stream has not produced a block yet
	}
	if _, _, hit := t.BC.Lookup(blk.StartPC); !hit {
		t.armed = false
		t.Stats.ArmMiss++
		return
	}
	t.active = true
	t.armed = false
	t.Stats.Activations++
	t.Store.Reset()
	t.poison = 0
	t.lateCount = 0
	t.blockFlushes = false
	t.core.SetPartition(true, t.Cfg.RSPartition, t.Cfg.PRPartition)
}

// fetchChainUops reads dependence-chain segments from the Block Cache along
// the shadow fetch-address stream: up to SegMaxUops chain uops per cycle
// across at most two blocks (§IV-C/D).
func (t *TEA) fetchChainUops() {
	budget := t.Cfg.SegMaxUops
	lookups := 0
	blocksDone := 0
	for budget > 0 && blocksDone < 2 && lookups < 4 {
		if t.core.TEALeadBlocks() >= t.Cfg.MaxLeadBlocks {
			return // shadow fetch queue full: far enough ahead
		}
		blk, off := t.core.TEACursor()
		if blk == nil {
			return // caught up with the branch predictor
		}
		if off >= blk.Count {
			t.core.TEAAdvanceBlock()
			t.curSeg.valid = false
			blocksDone++
			continue
		}

		var mask uint32
		var segStart, segEnd int
		if t.curSeg.valid && t.curSeg.expectPC != 0 &&
			t.curSeg.expectPC == blk.StartPC && off == 0 {
			// The awaited sequential successor block arrived: bind the
			// carried segment remainder to it.
			t.curSeg.expectPC = 0
			t.curSeg.seqBase = blk.SeqBase
			blk.TEAMask |= t.curSeg.mask >> uint(-t.curSeg.startOff)
			blk.TEAMaskValid = true
			mask, segStart, segEnd = t.curSeg.mask, t.curSeg.startOff, t.curSeg.end
		} else if t.curSeg.valid && t.curSeg.expectPC == 0 &&
			t.curSeg.seqBase == blk.SeqBase &&
			off >= t.curSeg.startOff+1 && off < t.curSeg.end {
			// Resume the segment interrupted by the uop budget.
			mask, segStart, segEnd = t.curSeg.mask, t.curSeg.startOff, t.curSeg.end
		} else {
			pc := blk.StartPC + uint64(off)*isa.InstBytes
			m, count, hit := t.BC.Lookup(pc)
			lookups++
			if !hit {
				if debugBCMiss > 0 {
					debugBCMiss--
					debugf("BCMISS pc=%#x off=%d blkStart=%#x blkCount=%d cyc=%d segValid=%v segBase=%d blkBase=%d segStart=%d segEnd=%d\n",
						pc, off, blk.StartPC, blk.Count, t.core.Cycle,
						t.curSeg.valid, t.curSeg.seqBase, blk.SeqBase, t.curSeg.startOff, t.curSeg.end)
				}
				t.Stats.TermBCMiss++
				t.terminate(false)
				return
			}
			if debugEmptySeg > 0 && m == 0 && blk.StartPC == debugEmptyPC {
				debugEmptySeg--
				debugf("EMPTYSEG pc=%#x off=%d cyc=%d count=%d\n", pc, off, t.core.Cycle, count)
			}
			mask, segStart = m, off
			segEnd = off + count
			t.curSeg.valid = true
			t.curSeg.expectPC = 0
			t.curSeg.seqBase = blk.SeqBase
			t.curSeg.startOff = segStart
			t.curSeg.end = segEnd
			t.curSeg.mask = mask
			// Publish the mask so main-thread instructions get chain-marked
			// (Fill Buffer seeds, §III-C) and poison-checked (§IV-G).
			blk.TEAMask |= mask << uint(off)
			blk.TEAMaskValid = true
		}

		segLimit := segEnd
		if segLimit > blk.Count {
			segLimit = blk.Count
		}
		i := off
		for ; i < segLimit && budget > 0; i++ {
			if mask&(1<<uint(i-segStart)) != 0 {
				t.fetchUop(blk, i)
				budget--
			}
		}
		t.core.TEASetOffset(i)
		if i < segLimit {
			return // uop budget exhausted mid-segment; resume next cycle
		}
		if segLimit >= blk.Count {
			endPC := blk.StartPC + uint64(blk.Count)*isa.InstBytes
			consumed := blk.Count - segStart
			t.core.TEAAdvanceBlock()
			blocksDone++
			t.curSeg.valid = false
			if segEnd > blk.Count {
				// The Block Cache segment extends past this fetch block
				// (the BP capped the block at 32 instructions mid-segment).
				// Carry the remainder into the sequential successor block,
				// which may not have been produced by the BP yet.
				t.curSeg.valid = true
				t.curSeg.expectPC = endPC
				t.curSeg.startOff = -consumed
				t.curSeg.end = segEnd - blk.Count
				t.curSeg.mask = mask
			}
		} else {
			t.curSeg.valid = false
		}
	}
}

func (t *TEA) fetchUop(blk *pipeline.FetchBlock, idx int) {
	pc := blk.StartPC + uint64(idx)*isa.InstBytes
	in, cls, ok := t.core.InstMeta(pc)
	if !ok {
		return
	}
	u := t.core.NewCompanionUop()
	u.Seq = blk.SeqBase + uint64(idx)
	u.PC = pc
	u.In = in
	u.Cls = cls
	u.TEA = true
	u.FetchCycle = t.core.Cycle
	if in.IsBranch() {
		u.Rec = blk.BranchAt(idx)
	}
	t.frontQ = append(t.frontQ, u)
	t.Stats.UopsFetched++
}

// renameAndInsert moves rename-ready TEA uops through the shadow RAT into
// the shared backend, claiming issue slots with priority (§IV-D/E).
func (t *TEA) renameAndInsert() {
	for t.frontHead < len(t.frontQ) {
		u := t.frontQ[t.frontHead]
		if u.FetchCycle+t.Cfg.FrontLatency > t.core.Cycle {
			break
		}
		if t.core.IssueSlotsLeft() == 0 || t.core.CompanionRSFree() == 0 {
			break
		}
		hasDest := u.In.HasDest() && u.In.Rd != isa.R0
		if hasDest && len(t.prFree) == 0 {
			t.Stats.PRStallCycles++
			break
		}
		t.frontHead++

		if u.In.IsBranch() {
			// Checkpoint the shadow RAT for partial-frontend-flush recovery.
			// Renames proceed in ascending seq order, keeping ckpts sorted.
			t.ckpts = append(t.ckpts, ratCkpt{seq: u.Seq, rat: t.shadowRAT})
		}
		u.Prs1 = t.shadowRAT[u.In.Rs1]
		u.Prs2 = t.shadowRAT[u.In.Rs2]
		t.bumpRef(u.Prs1)
		t.bumpRef(u.Prs2)
		u.HasDest = hasDest
		if hasDest {
			prev := t.shadowRAT[u.In.Rd]
			p, _ := t.allocPR()
			u.Prd = p
			t.shadowRAT[u.In.Rd] = p
			if t.isTEAPR(prev) {
				t.valid[prev-t.prBase] = false
				t.tryFree(prev)
			}
		}
		if !t.core.InsertCompanionUop(u) {
			// Capacity checked above; this is unreachable, but recover by
			// unwinding the rename if it ever trips.
			panic("core: InsertCompanionUop rejected after capacity check")
		}
		if u.In.IsStore() {
			t.pendStores = append(t.pendStores, u.Seq)
		}
		t.outstanding++
		t.inflight = append(t.inflight, u)
		t.Stats.UopsRenamed++
	}
	if t.frontHead == len(t.frontQ) {
		// Drained: rewind so appends reuse the backing array's capacity.
		t.frontQ, t.frontHead = t.frontQ[:0], 0
	}
}

func (t *TEA) bumpRef(p uint16) {
	if t.isTEAPR(p) && t.refcnt[p-t.prBase] < refcntMax {
		t.refcnt[p-t.prBase]++
	}
}

func (t *TEA) dropRef(p uint16) {
	if !t.isTEAPR(p) {
		return
	}
	i := p - t.prBase
	if t.refcnt[i] > 0 && t.refcnt[i] < refcntMax {
		t.refcnt[i]--
		if t.refcnt[i] == 0 {
			t.tryFree(p)
		}
	}
}

// OlderStorePending reports whether a TEA store older than (but close to)
// seq is still in flight. TEA loads wait for such stores: short-range
// store→load pairs are producer chains (arguments through the stack,
// §III-D), while distant pending stores (other loop iterations' updates)
// would only serialize the thread.
func (t *TEA) OlderStorePending(seq uint64) bool {
	if !t.loadWait {
		return false
	}
	win := uint64(t.Cfg.StoreWaitWindow)
	for _, s := range t.pendStores {
		if s < seq && seq-s <= win {
			return true
		}
	}
	return false
}

func (t *TEA) dropPendStore(seq uint64) {
	for i, s := range t.pendStores {
		if s == seq {
			t.pendStores = append(t.pendStores[:i], t.pendStores[i+1:]...)
			return
		}
	}
}

// releaseUop returns a uop's register references to the pool (exactly once).
func (t *TEA) releaseUop(u *pipeline.Uop) {
	if u.CompDone {
		return
	}
	u.CompDone = true
	if u.In.IsStore() {
		t.dropPendStore(u.Seq)
	}
	if u.In.IsBranch() {
		t.ckptDrop(u.Seq)
	}
	t.dropRef(u.Prs1)
	t.dropRef(u.Prs2)
	if u.HasDest && t.isTEAPR(u.Prd) {
		i := u.Prd - t.prBase
		t.pendWrite[i] = false
		t.tryFree(u.Prd)
	}
}

// --- execution hooks ---

// LoadValue consults the TEA store data cache for a TEA load.
func (t *TEA) LoadValue(addr uint64, size int) (uint64, bool) {
	return t.Store.Read(addr, size)
}

// StoreExec buffers a TEA store's data (§IV-E).
func (t *TEA) StoreExec(addr uint64, data uint64, size int) {
	t.Store.Write(addr, data, size)
}

// UopExecuted retires a TEA uop from the backend (normal or squashed),
// driving the reference-counted register freeing and drain accounting.
func (t *TEA) UopExecuted(u *pipeline.Uop) {
	t.outstanding--
	t.releaseUop(u)
	if t.draining && t.outstanding == 0 {
		t.finishDrain()
	}
}

// BranchResolved delivers a TEA branch outcome. Sharing the main-thread
// branch's timestamp, it can correct the in-flight branch queue entry and
// issue an early misprediction flush through the existing flush mechanism
// (§IV-F).
func (t *TEA) BranchResolved(u *pipeline.Uop, taken bool, target uint64) {
	t.Stats.Resolved++
	rec := t.core.Branch(u.Seq)
	if rec == nil || rec.PC != u.PC {
		t.lateEvent() // main branch already left the pipeline
		return
	}
	if rec.Resolved {
		// Record the precomputation for accounting even though it lost the
		// race (the paper's "late" category).
		rec.Precomputed = true
		rec.PreTaken, rec.PreTarget, rec.PreCycle = taken, target, t.core.Cycle
		t.lateEvent()
		return
	}
	rec.Precomputed = true
	rec.PreTaken, rec.PreTarget, rec.PreCycle = taken, target, t.core.Cycle
	if debugResolve > 0 {
		debugResolve--
		debugf("RESOLVE cyc=%d seq=%d pc=%#x taken=%v prs1=%d v1=%d predNext=%#x\n",
			t.core.Cycle, u.Seq, u.PC, taken, u.Prs1, int64(t.core.PRF.Val[u.Prs1]), rec.PredNext)
	}

	next := target
	if !taken {
		next = rec.PC + isa.InstBytes
	}
	if next == rec.PredNext {
		t.Stats.Agreements++
		return
	}
	if t.blockFlushes || t.suppressed(rec.PC) {
		t.Stats.BlockedFlushes++
		return
	}
	if t.Cfg.DisableEarlyFlush {
		return
	}
	rec.PreFlushed = true
	t.Stats.EarlyFlushes++
	t.core.EarlyFlush(rec, taken, target)
}

func (t *TEA) lateEvent() {
	t.Stats.LateEvents++
	t.lateCount++
	if t.lateCount > t.Cfg.LateLimit && t.active {
		t.Stats.TermLate++
		t.terminate(false)
	}
}

// terminate stops fetching and drains the thread (§IV-G). blockFlushes
// suppresses further early flushes from in-flight TEA branches (the RAT-
// poisoning path).
func (t *TEA) terminate(blockFlushes bool) {
	if !t.active && !t.draining {
		return
	}
	t.active = false
	t.blockFlushes = t.blockFlushes || blockFlushes
	for _, u := range t.frontQ[t.frontHead:] {
		t.core.RecycleCompanionUop(u) // never inserted: last reference
	}
	t.frontQ, t.frontHead = t.frontQ[:0], 0
	t.curSeg.valid = false
	// Waiting (un-issued) uops may depend on registers that will never be
	// written; drop them now so the drain is bounded by execution latency.
	t.core.SquashCompanionWaiting()
	if t.outstanding == 0 {
		t.finishDrain()
	} else {
		t.draining = true
	}
}

func (t *TEA) finishDrain() {
	// outstanding == 0 means every in-flight uop has been released
	// (CompDone): the list holds the last references, recycle them.
	for _, u := range t.inflight {
		t.core.RecycleCompanionUop(u)
	}
	t.inflight = t.inflight[:0]
	t.draining = false
	t.blockFlushes = false
	t.lateCount = 0
	t.resetPRState()
	t.Store.Reset()
	t.core.SetPartition(false, 0, 0)
}

// Active reports whether the TEA thread is currently fetching.
func (t *TEA) Active() bool { return t.active }

// Quiescent implements the pipeline's idle-skip contract: it reports
// whether Tick would mutate nothing but the per-cycle counter OnSkip
// replays, and the earliest self-scheduled wake (the walk deadline and the
// frontend-latency deadline; every other transition is driven by
// retire/flush/completion events that end the idle window on their own).
//
// Inactive thread: idle unless a finished walk can commit, a drain can
// finish, the main thread overtook an armed cursor, or an armed thread is
// past its backoff with an activation attempt that could mutate state (a
// Block Cache hit check). The per-cycle bookkeeping is InactiveCycles.
//
// Active thread: idle only when both halves of Tick are provably no-ops.
// The fetch side must be wedged — the shadow cursor at the lead-block
// limit (freed when main-thread fetch consumes a block: a progress cycle)
// or caught up with the branch predictor (a new block is a progress
// cycle). The rename side must see an empty pipe, a head still in the
// FrontLatency window (a wake), a full companion RS partition (freed by
// issue or squash, both wake-covered), or an empty TEA PR free list (freed
// by completion/retire events). The PR-stall case is the one active
// per-cycle counter: Tick would count PRStallCycles each cycle, so
// Quiescent flags it for OnSkip to batch-replay. IssueSlotsLeft is
// deliberately NOT consulted: the core resets the slot budget immediately
// before comp.Tick, so the companion always sees a full budget.
func (t *TEA) Quiescent(now uint64) (bool, uint64) {
	t.skipPRStall = false
	if t.draining && t.outstanding == 0 {
		return false, 0 // finishDrain fires on the next tick
	}
	if (t.armed || t.active) && t.core.TEACursorInvalid() {
		return false, 0 // the next tick clears the arm / terminates
	}
	var wake uint64
	if t.walking {
		if now >= t.walkDoneAt {
			return false, 0 // commitWalk fires on the next tick
		}
		wake = t.walkDoneAt
	}
	if !t.active {
		if t.armed && !t.draining && t.retired >= t.backoffUntil {
			// tryActivate runs each tick. Its two early-outs are pure
			// reads whose answers only flip on wake-covered events (a
			// walk commit publishes BC.Updates; a predict cycle produces
			// the peeked block); past those it can mutate state.
			if t.BC.Updates != 0 && t.core.TEANextBlockPeek() != nil {
				return false, 0
			}
		}
		return true, wake
	}
	// Active thread, fetch side: fetchChainUops must hit an early-out.
	if t.core.TEALeadBlocks() < t.Cfg.MaxLeadBlocks {
		if blk, _ := t.core.TEACursor(); blk != nil {
			return false, 0 // a lookup, fetch, or block advance would run
		}
	}
	// Active thread, rename side: the pipe head must be stably blocked.
	if t.frontHead < len(t.frontQ) {
		u := t.frontQ[t.frontHead]
		if at := u.FetchCycle + t.Cfg.FrontLatency; at > now {
			if wake == 0 || at < wake {
				wake = at
			}
		} else if t.core.CompanionRSFree() == 0 {
			// RS partition full: freed only by issue/squash (wake-covered).
		} else if u.In.HasDest() && u.In.Rd != isa.R0 && len(t.prFree) == 0 {
			t.skipPRStall = true // Tick counts PRStallCycles each cycle
		} else {
			return false, 0 // the head would rename
		}
	}
	return true, wake
}

// OnSkip batch-applies the per-cycle bookkeeping the skipped Ticks would
// have done: InactiveCycles while the thread is parked, PRStallCycles when
// an active thread's pipe head is wedged on the TEA register pool.
func (t *TEA) OnSkip(n uint64) {
	if t.active {
		if t.skipPRStall {
			t.Stats.PRStallCycles += n
		}
		return
	}
	t.Stats.InactiveCycles += n
}
