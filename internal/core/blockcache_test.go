package core

import (
	"testing"
	"testing/quick"
)

func TestBlockCacheMaskOR(t *testing.T) {
	cfg := DefaultConfig()
	bc := NewBlockCache(&cfg)
	bc.Update(0x100, 4, 0b0001)
	bc.Update(0x100, 4, 0b0100)
	mask, count, hit := bc.Lookup(0x100)
	if !hit || mask != 0b0101 || count != 4 {
		t.Fatalf("OR merge: mask=%b count=%d hit=%v", mask, count, hit)
	}
}

func TestBlockCacheNoMasksReplaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoMasks = true
	bc := NewBlockCache(&cfg)
	bc.Update(0x100, 4, 0b0001)
	bc.Update(0x100, 4, 0b0100)
	mask, _, hit := bc.Lookup(0x100)
	if !hit || mask != 0b0100 {
		t.Fatalf("replace mode: mask=%b hit=%v", mask, hit)
	}
}

func TestBlockCacheEmptyTagStore(t *testing.T) {
	cfg := DefaultConfig()
	bc := NewBlockCache(&cfg)
	bc.Update(0x200, 5, 0) // empty block → tag-only store
	mask, count, hit := bc.Lookup(0x200)
	if !hit || mask != 0 || count != 5 {
		t.Fatalf("empty block: mask=%b count=%d hit=%v", mask, count, hit)
	}
	if bc.EmptyHits != 1 {
		t.Fatalf("EmptyHits = %d", bc.EmptyHits)
	}
	// A later non-empty mask for the same PC lands in the data store and
	// takes priority on lookup.
	bc.Update(0x200, 5, 0b10)
	mask, _, _ = bc.Lookup(0x200)
	if mask != 0b10 {
		t.Fatalf("data store should take priority: %b", mask)
	}
}

func TestBlockCacheMiss(t *testing.T) {
	cfg := DefaultConfig()
	bc := NewBlockCache(&cfg)
	if _, _, hit := bc.Lookup(0x300); hit {
		t.Fatal("phantom hit")
	}
}

func TestBlockCacheResetMasks(t *testing.T) {
	cfg := DefaultConfig()
	bc := NewBlockCache(&cfg)
	bc.Update(0x100, 4, 0b1111)
	bc.ResetMasks()
	mask, _, hit := bc.Lookup(0x100)
	if !hit {
		t.Fatal("tags must survive a mask reset")
	}
	if mask != 0 {
		t.Fatalf("mask not cleared: %b", mask)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockCacheSets, cfg.BlockCacheWays = 1, 2
	bc := NewBlockCache(&cfg)
	bc.Update(0x100, 4, 1)
	bc.Update(0x200, 4, 1)
	bc.Lookup(0x200) // make 0x100 the LRU
	bc.Update(0x300, 4, 1)
	if _, _, hit := bc.Lookup(0x100); hit {
		t.Fatal("LRU entry survived eviction")
	}
	if _, _, hit := bc.Lookup(0x200); !hit {
		t.Fatal("MRU entry evicted")
	}
}

// Property: OR-combining is monotone — bits only accumulate until a reset.
func TestBlockCacheMaskMonotoneProperty(t *testing.T) {
	cfg := DefaultConfig()
	bc := NewBlockCache(&cfg)
	var acc uint32
	f := func(m uint32) bool {
		bc.Update(0x400, 8, m)
		acc |= m
		got, _, hit := bc.Lookup(0x400)
		return hit && got == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCacheRoundTrip(t *testing.T) {
	sc := NewStoreCache(16)
	sc.Write(0x1000, 0xDEADBEEF, 4)
	v, ok := sc.Read(0x1000, 4)
	if !ok || v != 0xDEADBEEF {
		t.Fatalf("read = %#x ok=%v", v, ok)
	}
	// Partial coverage falls through.
	if _, ok := sc.Read(0x1000, 8); ok {
		t.Fatal("partially covered read must miss")
	}
	// Byte-level patch.
	sc.Write(0x1002, 0xAA, 1)
	v, ok = sc.Read(0x1000, 4)
	if !ok || v != 0xDEAABEEF {
		t.Fatalf("patched read = %#x ok=%v", v, ok)
	}
}

func TestStoreCacheCrossLine(t *testing.T) {
	sc := NewStoreCache(16)
	addr := uint64(halfLine - 4) // straddles two half-lines
	sc.Write(addr, 0x1122334455667788, 8)
	v, ok := sc.Read(addr, 8)
	if !ok || v != 0x1122334455667788 {
		t.Fatalf("cross-line read = %#x ok=%v", v, ok)
	}
}

func TestStoreCacheEvictionLosesData(t *testing.T) {
	sc := NewStoreCache(2)
	sc.Write(0x0, 1, 8)
	sc.Write(0x100, 2, 8)
	sc.Write(0x200, 3, 8) // evicts line 0x0
	if _, ok := sc.Read(0x0, 8); ok {
		t.Fatal("evicted line still readable")
	}
	if v, ok := sc.Read(0x200, 8); !ok || v != 3 {
		t.Fatal("newest line lost")
	}
}

func TestStoreCacheReset(t *testing.T) {
	sc := NewStoreCache(4)
	sc.Write(0x40, 7, 8)
	sc.Reset()
	if _, ok := sc.Read(0x40, 8); ok {
		t.Fatal("data survived reset")
	}
}
