package core

import "testing"

func TestH2PPromotionAndDecay(t *testing.T) {
	cfg := DefaultConfig()
	h := NewH2PTable(&cfg)
	pc := uint64(0x1000)
	if h.IsH2P(pc) {
		t.Fatal("cold branch marked H2P")
	}
	h.RecordMispredict(pc) // ctr=1: not yet above threshold
	if h.IsH2P(pc) {
		t.Fatal("one misprediction should not mark H2P")
	}
	h.RecordMispredict(pc) // ctr=2 > 1
	if !h.IsH2P(pc) {
		t.Fatal("branch should be H2P after two mispredictions")
	}
	// Decay pulls it back below threshold.
	h.Decay()
	if h.IsH2P(pc) {
		t.Fatal("H2P should clear after decay to ctr=1")
	}
	h.RecordMispredict(pc)
	if !h.IsH2P(pc) {
		t.Fatal("H2P should re-arm on next misprediction")
	}
}

func TestH2PSaturation(t *testing.T) {
	cfg := DefaultConfig()
	h := NewH2PTable(&cfg)
	pc := uint64(0x2000)
	for i := 0; i < 100; i++ {
		h.RecordMispredict(pc)
	}
	// Saturated at 7: needs 7 decays to fully clear.
	for i := 0; i < 6; i++ {
		h.Decay()
	}
	if !h.IsH2P(pc) && cfg.H2PThreshold == 1 {
		// ctr = 1 after 6 decays from 7: not H2P (threshold 1 means >1).
	}
	h.Decay()
	if h.IsH2P(pc) {
		t.Fatal("should not be H2P after full decay")
	}
}

func TestH2PReplacementPrefersZeroCounters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.H2PSets, cfg.H2PWays = 1, 2
	h := NewH2PTable(&cfg)
	h.RecordMispredict(0x100)
	h.RecordMispredict(0x100) // strong entry
	h.RecordMispredict(0x200)
	h.Decay()                 // 0x200 drops to 0
	h.RecordMispredict(0x300) // must evict 0x200, not 0x100
	if h.find(0x100) == nil {
		t.Fatal("strong entry evicted over zero-counter entry")
	}
	if h.find(0x200) != nil {
		t.Fatal("zero-counter entry survived")
	}
	if h.find(0x300) == nil {
		t.Fatal("new entry not inserted")
	}
}

func TestH2PCount(t *testing.T) {
	cfg := DefaultConfig()
	h := NewH2PTable(&cfg)
	for pc := uint64(0); pc < 10; pc++ {
		h.RecordMispredict(0x1000 + pc*4)
		h.RecordMispredict(0x1000 + pc*4)
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("Count = %d", got)
	}
}
