package core

import "teasim/internal/isa"

// FillEntry is one retired instruction sampled into the Fill Buffer (§IV-C):
// the decoded uop, its PC, its memory address (if any), and the chain bit
// that seeds the Backward Dataflow Walk — set for H2P branches and for
// instructions that were also fetched by the TEA thread (§III-C), which is
// what lets chains grow past the Fill Buffer's size across walks.
type FillEntry struct {
	PC       uint64
	In       *isa.Inst
	Addr     uint64 // effective address for loads/stores
	IsH2P    bool
	ChainBit bool
	IsBranch bool
	Taken    bool // retired outcome (for basic-block segmentation)

	marked bool // result of the walk
}

// FillBuffer samples the retired instruction stream (§III-A). While a walk
// is in progress, retiring instructions are discarded, so the buffer sees a
// sampled subset of the stream — as in the paper.
type FillBuffer struct {
	entries  []FillEntry
	cap      int
	paranoia bool // Config.Paranoia: capacity tripwire in Add
}

// NewFillBuffer returns an empty buffer of the configured capacity.
func NewFillBuffer(capacity int) *FillBuffer {
	return &FillBuffer{entries: make([]FillEntry, 0, capacity), cap: capacity}
}

// Full reports whether the buffer is ready for a walk.
func (f *FillBuffer) Full() bool { return len(f.entries) >= f.cap }

// Add appends a retired instruction (caller checks Full and walk state).
func (f *FillBuffer) Add(e FillEntry) {
	if f.paranoia && len(f.entries) >= f.cap {
		panic("core paranoia: Fill Buffer Add beyond capacity (caller missed Full)")
	}
	f.entries = append(f.entries, e)
}

// Reset empties the buffer for the next filling phase.
func (f *FillBuffer) Reset() { f.entries = f.entries[:0] }

// Len returns the current occupancy.
func (f *FillBuffer) Len() int { return len(f.entries) }

// sourceList is the walk's live-in tracker (§III-A): a register bit-vector
// plus a small buffer of memory addresses.
type sourceList struct {
	regs   uint32
	mem    []uint64
	memCap int
	useMem bool
}

func (s *sourceList) hasReg(r isa.Reg) bool { return r != isa.R0 && s.regs&(1<<uint(r)) != 0 }
func (s *sourceList) addReg(r isa.Reg) {
	if r != isa.R0 {
		s.regs |= 1 << uint(r)
	}
}
func (s *sourceList) delReg(r isa.Reg) { s.regs &^= 1 << uint(r) }

func (s *sourceList) hasMem(addr uint64) bool {
	if !s.useMem {
		return false
	}
	for _, a := range s.mem {
		if a == addr {
			return true
		}
	}
	return false
}

func (s *sourceList) addMem(addr uint64) {
	if !s.useMem || s.hasMem(addr) {
		return
	}
	if len(s.mem) >= s.memCap {
		copy(s.mem, s.mem[1:]) // evict the oldest tracked address
		s.mem = s.mem[:len(s.mem)-1]
	}
	s.mem = append(s.mem, addr)
}

func (s *sourceList) delMem(addr uint64) {
	for i, a := range s.mem {
		if a == addr {
			s.mem = append(s.mem[:i], s.mem[i+1:]...)
			return
		}
	}
}

// Walk performs the Backward Dataflow Walk (§III-A) over the buffer,
// youngest to oldest, marking dependence-chain instructions. It returns the
// number of marked entries. Configuration switches implement the Fig. 10
// ablations:
//   - NoMem drops memory-dependence tracking;
//   - NoMasks restricts initiation points to H2P branches (TEA-thread chain
//     bits are ignored), limiting chain growth across walks;
//   - OnlyLoops traces each H2P branch's chain independently and stops it at
//     the previous dynamic instance of the same branch (loop-confined chains,
//     as in Branch Runahead-style schemes).
func (f *FillBuffer) Walk(cfg *Config) int {
	if cfg.OnlyLoops {
		return f.walkOnlyLoops(cfg)
	}
	src := sourceList{memCap: cfg.SourceMemSize, useMem: !cfg.NoMem}
	marked := 0
	for i := len(f.entries) - 1; i >= 0; i-- {
		e := &f.entries[i]
		e.marked = false
		seed := e.IsH2P || (e.ChainBit && !cfg.NoMasks)
		if f.visit(e, &src, seed) {
			e.marked = true
			marked++
		}
	}
	return marked
}

// visit applies one walk step to entry e. seed forces the entry to be a
// chain member (initiation point). It returns whether e is in a chain.
func (f *FillBuffer) visit(e *FillEntry, src *sourceList, seed bool) bool {
	in := e.In
	inChain := seed
	if !inChain {
		// A producer is in a chain when it writes a tracked register or a
		// tracked memory location.
		if in.HasDest() && in.Rd != isa.R0 && src.hasReg(in.Rd) {
			inChain = true
		}
		if in.IsStore() && src.hasMem(e.Addr) {
			inChain = true
		}
	}
	if !inChain {
		return false
	}
	// Remove what this instruction produces; add what it consumes, keeping
	// the Source List the minimal live-in set (§III-A).
	if in.HasDest() && in.Rd != isa.R0 {
		src.delReg(in.Rd)
	}
	if in.IsStore() {
		src.delMem(e.Addr)
	}
	switch {
	case in.IsLoad():
		src.addReg(in.Rs1)
		src.addMem(e.Addr)
	case in.IsStore():
		src.addReg(in.Rs1)
		src.addReg(in.Rs2)
	default:
		var buf [2]isa.Reg
		for _, r := range in.Srcs(buf[:0]) {
			src.addReg(r)
		}
	}
	return true
}

// walkOnlyLoops traces each H2P branch independently, stopping that branch's
// trace at the previous dynamic instance of the same branch PC.
func (f *FillBuffer) walkOnlyLoops(cfg *Config) int {
	for i := range f.entries {
		f.entries[i].marked = false
	}
	marked := 0
	scratch := make([]bool, len(f.entries))
	for i := len(f.entries) - 1; i >= 0; i-- {
		root := &f.entries[i]
		if !root.IsH2P {
			continue
		}
		src := sourceList{memCap: cfg.SourceMemSize, useMem: !cfg.NoMem}
		for k := range scratch {
			scratch[k] = false
		}
		bounded := false
		for j := i; j >= 0; j-- {
			e := &f.entries[j]
			if j < i && e.PC == root.PC {
				bounded = true // reached the previous instance: loop boundary
				break
			}
			if f.visit(e, &src, j == i) {
				scratch[j] = true
			}
		}
		if !bounded {
			continue // no previous instance in the buffer: no loop chain
		}
		for j, m := range scratch {
			if m && !f.entries[j].marked {
				f.entries[j].marked = true
				marked++
			}
		}
	}
	return marked
}

// Segments groups the walked buffer into basic-block segments (§III-A/IV-C):
// runs of sequential instructions broken at branches (inclusive) and at
// control-flow discontinuities, each yielding a start PC, instruction count,
// and the chain bit-mask. fn is called once per segment.
func (f *FillBuffer) Segments(fn func(startPC uint64, count int, mask uint32)) {
	i := 0
	for i < len(f.entries) {
		start := f.entries[i].PC
		var mask uint32
		n := 0
		for i < len(f.entries) && n < 32 {
			e := &f.entries[i]
			if e.PC != start+uint64(n)*isa.InstBytes {
				break // discontinuity (sampling gap or taken-branch target)
			}
			if e.marked {
				mask |= 1 << uint(n)
			}
			n++
			i++
			if e.IsBranch {
				break // basic blocks end at branches
			}
		}
		if n == 0 { // defensive: always make progress
			i++
			continue
		}
		fn(start, n, mask)
	}
}
