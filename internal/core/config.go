// Package core implements the paper's primary contribution: the TEA thread —
// a Timely, Efficient, and Accurate precomputation thread for hard-to-predict
// (H2P) branches.
//
// The TEA thread attaches to the baseline out-of-order core
// (internal/pipeline) as a Companion. It identifies H2P branches with a
// table of misprediction counters (§IV-B), traces their dependence chains
// with a Backward Dataflow Walk over a Fill Buffer of retired instructions
// (§III-A, §IV-C), stores basic-block-sized chain segments with combinable
// bit-masks in a Block Cache (§III-E), fetches those segments with a
// dedicated frontend driven by the same decoupled-branch-predictor stream as
// the main thread (§III-B, §IV-D), executes them on shared backend resources
// with issue priority and a reserved partition (§IV-E), and uses the shared
// branch sequence numbers (synchronized timestamps) to issue early
// misprediction flushes through the core's existing flush mechanism (§IV-F).
// Incorrect precomputations are caught by the in-flight branch queue
// fail-safe and by RAT poisoning (§IV-G).
package core

// Config holds the TEA thread parameters (defaults = Table II) plus the
// ablation switches used by Fig. 10.
type Config struct {
	// H2P table (§IV-B).
	H2PSets        int // 32 sets × 8 ways = 256 entries
	H2PWays        int
	H2PMax         uint8  // 3-bit saturating counter
	H2PThreshold   uint8  // H2P when counter > threshold
	H2PDecayPeriod uint64 // decrement all counters every N retired instrs

	// Fill Buffer and Backward Dataflow Walk (§IV-C).
	FillBufSize   int
	WalkCycles    uint64 // walk duration; retired instrs are dropped meanwhile
	SourceMemSize int    // memory-address entries in the Source List

	// Block Cache (§IV-B/C).
	BlockCacheSets  int // 64 sets × 8 ways = 512 entries
	BlockCacheWays  int
	EmptyTagSets    int // 32 sets × 8 ways = 256 tag-only entries
	EmptyTagWays    int
	MaskResetPeriod uint64 // clear all masks every N retired instrs
	SegMaxUops      int    // chain uops deliverable per cycle

	// Frontend/backend (§IV-D/E).
	FrontLatency uint64 // block-cache read → rename-ready (9-cycle frontend)
	// MaxLeadBlocks bounds the shadow fetch queue: the TEA thread stops
	// fetching when it is this many fetch blocks ahead of the main thread.
	// Bounding the lead bounds the precomputation work lost to each flush.
	MaxLeadBlocks int
	RSPartition   int // reservation stations reserved while active
	PRPartition   int // physical registers reserved while active

	// Store data cache (§IV-E): half-lines of 32 bytes.
	StoreCacheLines int
	// StoreWaitWindow: when conservative load ordering is engaged (see
	// tea.go: it self-enables when precomputation accuracy degrades), a TEA
	// load waits for older in-flight TEA stores within this many sequence
	// numbers.
	StoreWaitWindow int

	// Termination policy (§V-B, §IV-G).
	LateLimit  int // terminate after this many late precomputations
	WrongLimit int // suppress a branch's early flushes after this many
	// fail-safe-detected wrong precomputations (counter decays with the
	// H2P decay period)

	// Ablation switches (Fig. 10).
	OnlyLoops         bool // chains confined between consecutive instances of an H2P branch
	NoMasks           bool // no mask combining; walks seed only at H2P branches
	NoMem             bool // ignore memory dependencies in the walk
	DisableEarlyFlush bool // compute but never flush (prefetch-only, §V-B)

	// Paranoia arms invariant tripwires inside the TEA structures (Block
	// Cache mask/count consistency, Fill Buffer capacity, H2P counter
	// saturation). Checks only read — results are bit-identical — and panic
	// with a "core paranoia:" message on violation. Set by the run config
	// (tea.Config.Paranoia), not by machine presets: checking is a property
	// of the run, not of the simulated machine.
	Paranoia bool
}

// DefaultConfig returns the Table II TEA thread configuration.
func DefaultConfig() Config {
	return Config{
		H2PSets:        32,
		H2PWays:        8,
		H2PMax:         7,
		H2PThreshold:   1,
		H2PDecayPeriod: 50_000,

		FillBufSize:   512,
		WalkCycles:    500,
		SourceMemSize: 16,

		BlockCacheSets:  64,
		BlockCacheWays:  8,
		EmptyTagSets:    32,
		EmptyTagWays:    8,
		MaskResetPeriod: 500_000,
		SegMaxUops:      8,

		FrontLatency:  7, // + 1 predict + 1 block read = 9-cycle TEA frontend
		MaxLeadBlocks: 2,
		RSPartition:   192,
		PRPartition:   192,

		StoreCacheLines: 16,
		StoreWaitWindow: 4096,
		LateLimit:       4,
		WrongLimit:      4,
	}
}
