package core

// Preallocated replacements for the TEA thread's former map-backed hot
// state. Both structures are touched on the per-retired-instruction and
// per-rename paths, where map traffic (hashing, bucket allocation,
// per-entry pointer allocations) dominated the simulator's heap profile
// once experiment cells started running in parallel.

import "teasim/internal/isa"

// ratCkpt is one shadow-RAT checkpoint, tagged by the TEA branch's sequence
// number. The TEA.ckpts slice holds these in ascending seq order.
type ratCkpt struct {
	seq uint64
	rat [isa.NumRegs]uint16
}

// ckptSearch returns the index of the first checkpoint with seq >= want.
func (t *TEA) ckptSearch(want uint64) int {
	lo, hi := 0, len(t.ckpts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.ckpts[mid].seq < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ckptLookup returns the checkpoint taken at seq, if present.
func (t *TEA) ckptLookup(seq uint64) ([isa.NumRegs]uint16, bool) {
	if i := t.ckptSearch(seq); i < len(t.ckpts) && t.ckpts[i].seq == seq {
		return t.ckpts[i].rat, true
	}
	return [isa.NumRegs]uint16{}, false
}

// ckptDrop removes the checkpoint taken at seq (no-op if absent),
// preserving order.
func (t *TEA) ckptDrop(seq uint64) {
	if i := t.ckptSearch(seq); i < len(t.ckpts) && t.ckpts[i].seq == seq {
		t.ckpts = append(t.ckpts[:i], t.ckpts[i+1:]...)
	}
}

// wrongEntry tracks a branch's precomputation accuracy at retirement.
// key is the branch PC + 1 (0 marks an empty slot).
type wrongEntry struct {
	key          uint64
	right, wrong uint32
}

// wrongTable is an open-addressed hash table (power-of-two capacity, linear
// probing) over wrongEntry, preallocated so steady-state retirement never
// allocates. Entries are only ever inserted; the table doubles at 3/4 load
// (static branch PCs bound its population).
type wrongTable struct {
	entries []wrongEntry
	n       int
}

func (w *wrongTable) init(capacity int) {
	w.entries = make([]wrongEntry, capacity)
	w.n = 0
}

// slot returns the probe start index for pc.
func (w *wrongTable) slot(pc uint64) int {
	// Fibonacci hashing spreads the word-aligned PCs across the table.
	return int((pc * 0x9E3779B97F4A7C15) >> 32 & uint64(len(w.entries)-1))
}

// lookup returns the entry for pc, or nil if absent.
func (w *wrongTable) lookup(pc uint64) *wrongEntry {
	key := pc + 1
	mask := len(w.entries) - 1
	for i := w.slot(pc); ; i = (i + 1) & mask {
		e := &w.entries[i]
		if e.key == key {
			return e
		}
		if e.key == 0 {
			return nil
		}
	}
}

// get returns the entry for pc, inserting a zeroed one if absent. The
// returned pointer is invalidated by the next get (growth may rehash);
// callers use it immediately.
func (w *wrongTable) get(pc uint64) *wrongEntry {
	if w.n*4 >= len(w.entries)*3 {
		w.grow()
	}
	key := pc + 1
	mask := len(w.entries) - 1
	for i := w.slot(pc); ; i = (i + 1) & mask {
		e := &w.entries[i]
		if e.key == key {
			return e
		}
		if e.key == 0 {
			e.key = key
			w.n++
			return e
		}
	}
}

func (w *wrongTable) grow() {
	old := w.entries
	w.entries = make([]wrongEntry, 2*len(old))
	mask := len(w.entries) - 1
	for _, e := range old {
		if e.key == 0 {
			continue
		}
		for i := w.slot(e.key - 1); ; i = (i + 1) & mask {
			if w.entries[i].key == 0 {
				w.entries[i] = e
				break
			}
		}
	}
}
