package core

import "teasim/internal/telemetry"

// ivSnapshot remembers cumulative TEA counters at the previous telemetry
// interval boundary so OnInterval reports per-interval rates.
type ivSnapshot struct {
	covered, late, incorrect, uncovered uint64
	precomputed, preCorrect             uint64
	bcLookups, bcHits, bcEmptyHits      uint64
}

// telemRegister exposes TEA structure state on the core collector's
// registry. GaugeFunc callbacks read existing state at sample time, so the
// simulation hot path carries no extra counters.
func (t *TEA) telemRegister() {
	col := t.core.Telemetry()
	if col == nil {
		return
	}
	reg := col.Registry()
	reg.GaugeFunc("tea.fillbuf_occupancy", func() float64 { return float64(t.Fill.Len()) })
	reg.GaugeFunc("tea.activations", func() float64 { return float64(t.Stats.Activations) })
	reg.GaugeFunc("tea.walks_done", func() float64 { return float64(t.Stats.WalksDone) })
	reg.GaugeFunc("tea.uops_fetched", func() float64 { return float64(t.Stats.UopsFetched) })
	reg.GaugeFunc("tea.h2p_decays", func() float64 { return float64(t.Stats.H2PDecays) })
	reg.GaugeFunc("tea.mask_resets", func() float64 { return float64(t.Stats.MaskResets) })
	reg.GaugeFunc("tea.blockcache_lookups", func() float64 { return float64(t.BC.Lookups) })
	reg.GaugeFunc("tea.early_flushes", func() float64 { return float64(t.Stats.EarlyFlushes) })
	// Timeliness detail behind Fig. 10c: the distribution of cycles saved
	// per covered misprediction, not just the mean.
	t.savedHist = reg.Histogram("tea.cycles_saved", 4, 8, 16, 32, 64, 128, 256)
}

// OnInterval annotates one telemetry sample with the TEA thread's
// per-interval precomputation quality: misprediction coverage and
// accuracy over the interval's retired branches, the Block Cache hit rate
// over the interval's lookups, and the instantaneous Fill Buffer
// occupancy.
func (t *TEA) OnInterval(iv *telemetry.Interval) {
	s := &t.Stats
	last := &t.ivLast

	dCov := s.CoveredMisp - last.covered
	dLate := s.LateMisp - last.late
	dInc := s.IncorrectMisp - last.incorrect
	dUnc := s.UncoveredMisp - last.uncovered
	if total := dCov + dLate + dInc + dUnc; total > 0 {
		iv.Coverage = float64(dCov) / float64(total)
	}

	dPre := s.Precomputed - last.precomputed
	if dPre > 0 {
		iv.Accuracy = float64(s.PreCorrect-last.preCorrect) / float64(dPre)
	} else {
		iv.Accuracy = 1
	}

	dLook := t.BC.Lookups - last.bcLookups
	if dLook > 0 {
		hits := (t.BC.Hits - last.bcHits) + (t.BC.EmptyHits - last.bcEmptyHits)
		iv.BlockCacheHitRate = float64(hits) / float64(dLook)
	}
	iv.FillBufOccupancy = t.Fill.Len()

	*last = ivSnapshot{
		covered: s.CoveredMisp, late: s.LateMisp,
		incorrect: s.IncorrectMisp, uncovered: s.UncoveredMisp,
		precomputed: s.Precomputed, preCorrect: s.PreCorrect,
		bcLookups: t.BC.Lookups, bcHits: t.BC.Hits, bcEmptyHits: t.BC.EmptyHits,
	}
}
