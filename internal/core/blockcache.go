package core

// BlockCache stores basic-block-sized dependence-chain segments (§IV-C),
// tagged by the segment's first PC. Each entry carries a 32-bit mask of
// which instructions in the block belong to H2P dependence chains; masks
// from different control flows are combined by OR (§III-E) unless the
// NoMasks ablation replaces them. A separate tag-only store tracks blocks
// with no chain uops (§IV-B): they deliver nothing but keep the TEA thread
// alive, signalling that chains continue past the empty block.
type BlockCache struct {
	sets    int
	ways    int
	entries []bcEntry

	emptySets    int
	emptyWays    int
	emptyEntries []bcTagEntry

	replace  bool // NoMasks: replace masks instead of OR-ing
	paranoia bool // Config.Paranoia: mask/count tripwires in Update

	lruTick uint32

	// Statistics.
	Lookups   uint64
	Hits      uint64
	EmptyHits uint64
	Updates   uint64
}

type bcEntry struct {
	valid bool
	tag   uint64 // segment start PC
	mask  uint32
	count int // instructions covered by the segment
	lru   uint32
}

type bcTagEntry struct {
	valid bool
	tag   uint64
	count int
	lru   uint32
}

// NewBlockCache builds the block cache from the TEA configuration.
// Set counts must be powers of two (indices are computed by masking).
func NewBlockCache(cfg *Config) *BlockCache {
	if cfg.BlockCacheSets&(cfg.BlockCacheSets-1) != 0 || cfg.EmptyTagSets&(cfg.EmptyTagSets-1) != 0 {
		panic("core: block cache set counts must be powers of two")
	}
	return &BlockCache{
		sets:         cfg.BlockCacheSets,
		ways:         cfg.BlockCacheWays,
		entries:      make([]bcEntry, cfg.BlockCacheSets*cfg.BlockCacheWays),
		emptySets:    cfg.EmptyTagSets,
		emptyWays:    cfg.EmptyTagWays,
		emptyEntries: make([]bcTagEntry, cfg.EmptyTagSets*cfg.EmptyTagWays),
		replace:      cfg.NoMasks,
	}
}

func (b *BlockCache) set(pc uint64) []bcEntry {
	idx := int(pc>>2) & (b.sets - 1)
	return b.entries[idx*b.ways : (idx+1)*b.ways]
}

func (b *BlockCache) emptySet(pc uint64) []bcTagEntry {
	idx := int(pc>>2) & (b.emptySets - 1)
	return b.emptyEntries[idx*b.emptyWays : (idx+1)*b.emptyWays]
}

// Update installs or merges a walked segment (called after each walk).
func (b *BlockCache) Update(startPC uint64, count int, mask uint32) {
	b.Updates++
	b.lruTick++
	if mask == 0 {
		// Keep any existing data entry (it may carry chain uops from another
		// control flow); otherwise record a tag-only empty block.
		ws := b.set(startPC)
		for i := range ws {
			if ws[i].valid && ws[i].tag == startPC {
				if b.replace {
					ws[i].mask = 0
				}
				return
			}
		}
		es := b.emptySet(startPC)
		victim := &es[0]
		for i := range es {
			e := &es[i]
			if e.valid && e.tag == startPC {
				e.lru = b.lruTick
				if count > e.count {
					e.count = count
				}
				return
			}
			if !e.valid {
				victim = e
			} else if victim.valid && e.lru < victim.lru {
				victim = e
			}
		}
		*victim = bcTagEntry{valid: true, tag: startPC, count: count, lru: b.lruTick}
		return
	}

	ws := b.set(startPC)
	victim := &ws[0]
	for i := range ws {
		e := &ws[i]
		if e.valid && e.tag == startPC {
			old := e.mask
			if b.replace {
				e.mask = mask
			} else {
				e.mask |= mask // combine chains across control flows (§III-E)
			}
			if count > e.count {
				e.count = count
			}
			if b.paranoia {
				if !b.replace && e.mask&old != old {
					panic("core paranoia: Block Cache merge dropped mask bits (masks must grow monotonically between resets)")
				}
				b.checkEntry(e)
			}
			e.lru = b.lruTick
			return
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	*victim = bcEntry{valid: true, tag: startPC, mask: mask, count: count, lru: b.lruTick}
	if b.paranoia {
		b.checkEntry(victim)
	}
}

// checkEntry validates a data entry's mask/count consistency (paranoia):
// a non-empty mask needs instructions to mark, and mask bits index into the
// segment, so none may sit at or beyond count (segment masks are built with
// bit n set only while n < count, and merging takes the max count).
func (b *BlockCache) checkEntry(e *bcEntry) {
	if e.mask == 0 {
		return
	}
	if e.count <= 0 {
		panic("core paranoia: Block Cache entry has chain mask but zero instruction count")
	}
	if e.count < 32 && e.mask>>uint(e.count) != 0 {
		panic("core paranoia: Block Cache mask marks instructions beyond the segment")
	}
}

// Lookup probes both stores for a segment starting at pc.
// hit=false means neither store knows the block (TEA terminates, §IV-G).
func (b *BlockCache) Lookup(pc uint64) (mask uint32, count int, hit bool) {
	b.Lookups++
	b.lruTick++
	ws := b.set(pc)
	for i := range ws {
		if ws[i].valid && ws[i].tag == pc {
			ws[i].lru = b.lruTick
			b.Hits++
			return ws[i].mask, ws[i].count, true
		}
	}
	es := b.emptySet(pc)
	for i := range es {
		if es[i].valid && es[i].tag == pc {
			es[i].lru = b.lruTick
			b.EmptyHits++
			return 0, es[i].count, true
		}
	}
	return 0, 0, false
}

// ResetMasks clears all masks (§IV-C, phase-change adaptation): stale chains
// stop seeding future walks; the tags survive as empty blocks.
func (b *BlockCache) ResetMasks() {
	for i := range b.entries {
		b.entries[i].mask = 0
	}
}
