package emu

import (
	"math"

	"teasim/internal/isa"
)

// Eval computes the register result of a non-memory, non-store instruction
// given its source values and PC. It is shared by the pipeline execute stage
// and the TEA thread so value semantics cannot diverge from the golden model.
// For loads, use the memory system; Eval reports hasVal=false.
func Eval(in *isa.Inst, rs1, rs2, pc uint64) (val uint64, hasVal bool) {
	switch in.Op {
	case isa.OpAdd:
		return rs1 + rs2, true
	case isa.OpSub:
		return rs1 - rs2, true
	case isa.OpAnd:
		return rs1 & rs2, true
	case isa.OpOr:
		return rs1 | rs2, true
	case isa.OpXor:
		return rs1 ^ rs2, true
	case isa.OpShl:
		return rs1 << (rs2 & 63), true
	case isa.OpShr:
		return rs1 >> (rs2 & 63), true
	case isa.OpSar:
		return uint64(int64(rs1) >> (rs2 & 63)), true
	case isa.OpMul:
		return rs1 * rs2, true
	case isa.OpDiv:
		if rs2 == 0 {
			return 0, true
		}
		return uint64(int64(rs1) / int64(rs2)), true
	case isa.OpRem:
		if rs2 == 0 {
			return rs1, true
		}
		return uint64(int64(rs1) % int64(rs2)), true
	case isa.OpSlt:
		return boolToU64(int64(rs1) < int64(rs2)), true
	case isa.OpSltu:
		return boolToU64(rs1 < rs2), true
	case isa.OpMin:
		if int64(rs1) < int64(rs2) {
			return rs1, true
		}
		return rs2, true
	case isa.OpMax:
		if int64(rs1) > int64(rs2) {
			return rs1, true
		}
		return rs2, true
	case isa.OpAddI:
		return rs1 + uint64(in.Imm), true
	case isa.OpAndI:
		return rs1 & uint64(in.Imm), true
	case isa.OpOrI:
		return rs1 | uint64(in.Imm), true
	case isa.OpXorI:
		return rs1 ^ uint64(in.Imm), true
	case isa.OpShlI:
		return rs1 << (uint64(in.Imm) & 63), true
	case isa.OpShrI:
		return rs1 >> (uint64(in.Imm) & 63), true
	case isa.OpMulI:
		return rs1 * uint64(in.Imm), true
	case isa.OpSltI:
		return boolToU64(int64(rs1) < in.Imm), true
	case isa.OpSltuI:
		return boolToU64(rs1 < uint64(in.Imm)), true
	case isa.OpLi:
		return uint64(in.Imm), true
	case isa.OpFAdd:
		return b64(f64(rs1) + f64(rs2)), true
	case isa.OpFSub:
		return b64(f64(rs1) - f64(rs2)), true
	case isa.OpFMul:
		return b64(f64(rs1) * f64(rs2)), true
	case isa.OpFDiv:
		return b64(f64(rs1) / f64(rs2)), true
	case isa.OpFLt:
		return boolToU64(f64(rs1) < f64(rs2)), true
	case isa.OpFCvt:
		return math.Float64bits(float64(int64(rs1))), true
	case isa.OpFInt:
		return uint64(int64(f64(rs1))), true
	case isa.OpCall, isa.OpCallR:
		return pc + isa.InstBytes, true
	}
	return 0, false
}

// BranchOutcome evaluates a control-flow instruction: whether it is taken
// and where it goes when taken.
func BranchOutcome(in *isa.Inst, rs1, rs2 uint64) (taken bool, target uint64) {
	switch in.Op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		return condTaken(in.Op, rs1, rs2), uint64(in.Imm)
	case isa.OpJmp, isa.OpCall:
		return true, uint64(in.Imm)
	case isa.OpRet, isa.OpCallR:
		return true, rs1
	case isa.OpJr:
		return true, rs1 + uint64(in.Imm)
	}
	panic("emu: BranchOutcome on non-branch")
}

// EffAddr returns the effective address of a load or store.
func EffAddr(in *isa.Inst, rs1 uint64) uint64 { return rs1 + uint64(in.Imm) }
