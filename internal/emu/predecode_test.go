package emu

import (
	"strings"
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

func buildPredecodeProg(t *testing.T) *isa.Program {
	t.Helper()
	b := asm.NewBuilder()
	b.Li(isa.R1, 0)               // 0
	b.Li(isa.R2, 1)               // 1
	b.Li(isa.R3, 4)               // 2
	b.Label("loop")               //
	b.Add(isa.R1, isa.R1, isa.R2) // 3
	b.AddI(isa.R2, isa.R2, 1)     // 4
	b.Bge(isa.R3, isa.R2, "loop") // 5: branch
	b.Jmp("end")                  // 6: branch
	b.Nop()                       // 7 (never reached)
	b.Label("end")
	b.Halt() // 8
	return b.MustBuild()
}

func TestPredecodeTemplatesMatchDecode(t *testing.T) {
	p := buildPredecodeProg(t)
	d := Predecode(p)
	if len(d.Tmpl) != len(p.Code) || len(d.NextBr) != len(p.Code) {
		t.Fatalf("predecode sized %d/%d templates for %d instructions",
			len(d.Tmpl), len(d.NextBr), len(p.Code))
	}
	for i := range p.Code {
		in := &p.Code[i]
		tm := d.Tmpl[i]
		if tm.In != in {
			t.Fatalf("template %d points at the wrong instruction", i)
		}
		if tm.Cls != in.Class() || tm.IsBr != in.IsBranch() ||
			tm.IsCond != in.IsCondBranch() || tm.IsHalt != (in.Op == isa.OpHalt) ||
			int(tm.MemBytes) != in.MemBytes() {
			t.Fatalf("template %d (%v) diverges from live decode", i, in)
		}
		if want := in.HasDest() && in.Rd != isa.R0; tm.DestValid != want {
			t.Fatalf("template %d DestValid=%v, want %v", i, tm.DestValid, want)
		}
	}
}

func TestPredecodeNextBr(t *testing.T) {
	p := buildPredecodeProg(t)
	d := Predecode(p)
	// Ground truth: first branch-or-halt at or after i, by direct scan.
	for i := range p.Code {
		want := len(p.Code)
		for j := i; j < len(p.Code); j++ {
			if p.Code[j].IsBranch() || p.Code[j].Op == isa.OpHalt {
				want = j
				break
			}
		}
		if int(d.NextBr[i]) != want {
			t.Fatalf("NextBr[%d] = %d, want %d", i, d.NextBr[i], want)
		}
	}
}

func TestPredecodeIndex(t *testing.T) {
	p := buildPredecodeProg(t)
	d := Predecode(p)
	for i := range p.Code {
		pc := p.CodeBase + uint64(i)*isa.InstBytes
		idx, ok := d.Index(pc)
		if !ok || idx != i {
			t.Fatalf("Index(%#x) = %d,%v, want %d,true", pc, idx, ok, i)
		}
	}
	for _, pc := range []uint64{
		p.CodeBase - isa.InstBytes, // below the segment
		p.CodeEnd(),                // one past the end
		p.CodeBase + 1,             // misaligned
		0,
	} {
		if _, ok := d.Index(pc); ok {
			t.Fatalf("Index(%#x) accepted an invalid PC", pc)
		}
	}
}

func TestGoldenModelRejectsSelfModifyingStore(t *testing.T) {
	b := asm.NewBuilder()
	b.LiU(isa.R1, asm.DefaultCodeBase)
	b.Li(isa.R2, 1)
	b.St(isa.R1, 0, isa.R2)
	b.Halt()
	m := New(b.MustBuild())
	var err error
	for i := 0; i < 10 && err == nil && !m.Halted; i++ {
		_, err = m.Step()
	}
	if err == nil || !strings.Contains(err.Error(), "self-modifying") {
		t.Fatalf("store into the code segment did not error: %v", err)
	}
}
