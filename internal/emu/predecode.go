package emu

import "teasim/internal/isa"

// Predecode builds the decoded-block cache for a program: the per-instruction
// decode/crack work the frontend used to redo on every fetch (class
// resolution, destination-validity, branch boundaries) is computed once here
// and replayed by PC index thereafter. The cache is valid only while the code
// segment is immutable; the pipeline asserts the absence of self-modifying
// stores at retire (and the golden model asserts it at Step), so no
// invalidation path is needed for the supported workloads.

// UopTmpl is the immutable per-instruction decode template.
type UopTmpl struct {
	In        *isa.Inst
	Cls       isa.Class
	DestValid bool // HasDest() && Rd != R0, as cached by fetch
	IsBr      bool
	IsCond    bool
	IsHalt    bool
	MemBytes  uint8
}

// Decoded is a program plus its predecoded template array and the
// branch-boundary index used by the decoupled predictor to skip straight-line
// runs without touching individual instructions.
type Decoded struct {
	Prog *isa.Program
	Tmpl []UopTmpl
	// NextBr[i] is the index of the first instruction at or after i that is
	// a branch or a halt (the only instructions where the predict stream can
	// deviate from pc += InstBytes); len(Tmpl) if there is none.
	NextBr []int32
}

// Predecode decodes every instruction of p once.
func Predecode(p *isa.Program) *Decoded {
	n := len(p.Code)
	d := &Decoded{
		Prog:   p,
		Tmpl:   make([]UopTmpl, n),
		NextBr: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		in := &p.Code[i]
		d.Tmpl[i] = UopTmpl{
			In:        in,
			Cls:       in.Class(),
			DestValid: in.HasDest() && in.Rd != isa.R0,
			IsBr:      in.IsBranch(),
			IsCond:    in.IsCondBranch(),
			IsHalt:    in.Op == isa.OpHalt,
			MemBytes:  uint8(in.MemBytes()),
		}
	}
	next := int32(n)
	for i := n - 1; i >= 0; i-- {
		if d.Tmpl[i].IsBr || d.Tmpl[i].IsHalt {
			next = int32(i)
		}
		d.NextBr[i] = next
	}
	return d
}

// Index maps a PC to its instruction index, mirroring Program.InstAt's
// bounds and alignment checks (false = off the code segment / misaligned).
func (d *Decoded) Index(pc uint64) (int, bool) {
	if pc < d.Prog.CodeBase || (pc-d.Prog.CodeBase)%isa.InstBytes != 0 {
		return 0, false
	}
	idx := (pc - d.Prog.CodeBase) / isa.InstBytes
	if idx >= uint64(len(d.Tmpl)) {
		return 0, false
	}
	return int(idx), true
}
