package emu

import (
	"math"
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

// TestOpcodeSemantics is a table-driven check of every two-source ALU/FP
// opcode against its reference semantics on hand-picked edge values.
func TestOpcodeSemantics(t *testing.T) {
	f := math.Float64bits
	cases := []struct {
		op   isa.Op
		a, b uint64
		want uint64
	}{
		{isa.OpAdd, ^uint64(0), 1, 0}, // wraparound
		{isa.OpSub, 0, 1, ^uint64(0)},
		{isa.OpAnd, 0xF0F0, 0x0FF0, 0x00F0},
		{isa.OpOr, 0xF000, 0x000F, 0xF00F},
		{isa.OpXor, 0xFFFF, 0x0F0F, 0xF0F0},
		{isa.OpShl, 1, 63, 1 << 63},
		{isa.OpShl, 1, 64, 1}, // shift amount masked to 6 bits
		{isa.OpShr, 1 << 63, 63, 1},
		{isa.OpSar, 1 << 63, 63, ^uint64(0)},               // sign fill
		{isa.OpMul, 1 << 32, 1 << 32, 0},                   // low 64 bits
		{isa.OpDiv, uint64(^uint64(6) + 1), 2, ^uint64(2)}, // -6/2 = -3
		{isa.OpDiv, 7, 0, 0},                               // div-by-zero defined as 0
		{isa.OpRem, uint64(^uint64(6)), 2, ^uint64(0)},     // -7%2 = -1
		{isa.OpRem, 7, 0, 7},
		{isa.OpSlt, ^uint64(0), 0, 1},  // -1 < 0 signed
		{isa.OpSltu, ^uint64(0), 0, 0}, // max-uint not < 0 unsigned
		{isa.OpMin, ^uint64(0), 5, ^uint64(0)},
		{isa.OpMax, ^uint64(0), 5, 5},
		{isa.OpFAdd, f(1.5), f(2.25), f(3.75)},
		{isa.OpFSub, f(1.0), f(0.25), f(0.75)},
		{isa.OpFMul, f(3.0), f(-2.0), f(-6.0)},
		{isa.OpFDiv, f(1.0), f(0.0), f(math.Inf(1))},
		{isa.OpFLt, f(-1.0), f(1.0), 1},
		{isa.OpFLt, f(math.NaN()), f(1.0), 0}, // NaN compares false
	}
	for _, c := range cases {
		in := &isa.Inst{Op: c.op, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2}
		got, ok := Eval(in, c.a, c.b, 0)
		if !ok {
			t.Fatalf("%v: Eval not applicable", c.op)
		}
		if got != c.want {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

// TestImmediateOpcodeSemantics covers the immediate forms and conversions.
func TestImmediateOpcodeSemantics(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a    uint64
		imm  int64
		want uint64
	}{
		{isa.OpAddI, 10, -3, 7},
		{isa.OpAndI, 0xFF, 0x0F, 0x0F},
		{isa.OpOrI, 0xF0, 0x0F, 0xFF},
		{isa.OpXorI, 0xFF, -1, ^uint64(0xFF)},
		{isa.OpShlI, 3, 2, 12},
		{isa.OpShrI, 12, 2, 3},
		{isa.OpMulI, 7, -2, ^uint64(13) + 0}, // -14
		{isa.OpSltI, 5, 6, 1},
		{isa.OpSltuI, 5, 6, 1},
		{isa.OpLi, 0, -42, ^uint64(41)},
		{isa.OpFCvt, ^uint64(0), 0, math.Float64bits(-1.0)},
		{isa.OpFInt, math.Float64bits(-2.9), 0, ^uint64(1)}, // trunc toward zero
	}
	for _, c := range cases {
		in := &isa.Inst{Op: c.op, Rd: isa.R3, Rs1: isa.R1, Imm: c.imm}
		got, ok := Eval(in, c.a, 0, 0)
		if !ok {
			t.Fatalf("%v: Eval not applicable", c.op)
		}
		if got != c.want {
			t.Errorf("%v(%#x, imm %d) = %#x, want %#x", c.op, c.a, c.imm, got, c.want)
		}
	}
}

// TestCallReturnsLinkValue: call-class ops produce PC+4 as their result.
func TestCallReturnsLinkValue(t *testing.T) {
	for _, op := range []isa.Op{isa.OpCall, isa.OpCallR} {
		in := &isa.Inst{Op: op, Rd: isa.LR, Rs1: isa.R5, Imm: 0x4000}
		got, ok := Eval(in, 0x9999, 0, 0x1000)
		if !ok || got != 0x1004 {
			t.Fatalf("%v link = %#x ok=%v", op, got, ok)
		}
	}
}

// TestRunLimit: Run stops at the instruction budget.
func TestRunLimit(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("main")
	b.Label("spin")
	b.AddI(isa.R1, isa.R1, 1)
	b.Jmp("spin")
	m := New(b.MustBuild())
	n, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || m.Halted {
		t.Fatalf("ran %d, halted=%v", n, m.Halted)
	}
}

// TestPCOutOfRange: leaving the code segment is a reported error, not a
// panic.
func TestPCOutOfRange(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.R1, 0x99999999)
	b.Jr(isa.R1, 0)
	m := New(b.MustBuild())
	if _, err := m.Run(10); err == nil {
		t.Fatal("expected error for wild jump")
	}
}

// TestEffAddr covers the effective-address helper.
func TestEffAddr(t *testing.T) {
	in := &isa.Inst{Op: isa.OpLd, Rs1: isa.R1, Imm: -8}
	if got := EffAddr(in, 0x1000); got != 0xFF8 {
		t.Fatalf("EffAddr = %#x", got)
	}
}
