// Package emu implements the functional golden-model emulator for the µISA.
//
// The emulator serves three roles in the reproduction:
//  1. validating that workloads compute correct results (kernels are checked
//     against native Go implementations),
//  2. fast-forwarding through warm-up regions, and
//  3. co-simulation: the timing pipeline retires instructions against the
//     emulator and asserts the architectural effects match.
package emu

import (
	"fmt"
	"math"

	"teasim/internal/isa"
	"teasim/internal/mem"
)

// Step describes the architectural effect of one executed instruction. The
// pipeline compares retired instructions against this record.
type Step struct {
	PC     uint64
	NextPC uint64
	Inst   *isa.Inst

	// WroteReg and RegVal describe the register write, if any.
	WroteReg bool
	Rd       isa.Reg
	RegVal   uint64

	// Mem describes a memory access, if any.
	IsLoad  bool
	IsStore bool
	MemAddr uint64
	MemSize int
	MemVal  uint64 // value loaded or stored

	// Branch outcome for control-flow instructions.
	IsBranch bool
	Taken    bool
	Target   uint64 // NextPC when taken (== NextPC for unconditional)

	Halted bool
}

// Machine is a functional µISA machine.
type Machine struct {
	Prog   *isa.Program
	Mem    *mem.Image
	Regs   [isa.NumRegs]uint64
	PC     uint64
	Halted bool
	// Count is the number of instructions executed so far.
	Count uint64
}

// New creates a machine with the program loaded, memory initialized from the
// program's data segments, and PC at the entry point.
func New(p *isa.Program) *Machine {
	m := &Machine{Prog: p, Mem: mem.NewImage(), PC: p.Entry}
	for _, seg := range p.Data {
		m.Mem.WriteBytes(seg.Addr, seg.Bytes)
	}
	return m
}

// NewWithMem creates a machine over an existing memory image (no data
// segments are re-applied). Used to co-simulate against a shared setup.
func NewWithMem(p *isa.Program, image *mem.Image) *Machine {
	return &Machine{Prog: p, Mem: image, PC: p.Entry}
}

func f64(v uint64) float64 { return math.Float64frombits(v) }
func b64(f float64) uint64 { return math.Float64bits(f) }

// Step executes one instruction and returns its architectural effect.
// Calling Step on a halted machine returns a Halted step without advancing.
func (m *Machine) Step() (Step, error) {
	var s Step
	if m.Halted {
		s.Halted = true
		s.PC = m.PC
		return s, nil
	}
	in := m.Prog.InstAt(m.PC)
	if in == nil {
		return s, fmt.Errorf("emu: PC 0x%x outside code segment", m.PC)
	}
	s.PC = m.PC
	s.Inst = in
	next := m.PC + isa.InstBytes

	rs1 := m.Regs[in.Rs1]
	rs2 := m.Regs[in.Rs2]
	setRd := func(v uint64) {
		s.WroteReg = true
		s.Rd = in.Rd
		s.RegVal = v
		if in.Rd != isa.R0 {
			m.Regs[in.Rd] = v
		} else {
			s.RegVal = 0
		}
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		m.Halted = true
		s.Halted = true
	case isa.OpAdd:
		setRd(rs1 + rs2)
	case isa.OpSub:
		setRd(rs1 - rs2)
	case isa.OpAnd:
		setRd(rs1 & rs2)
	case isa.OpOr:
		setRd(rs1 | rs2)
	case isa.OpXor:
		setRd(rs1 ^ rs2)
	case isa.OpShl:
		setRd(rs1 << (rs2 & 63))
	case isa.OpShr:
		setRd(rs1 >> (rs2 & 63))
	case isa.OpSar:
		setRd(uint64(int64(rs1) >> (rs2 & 63)))
	case isa.OpMul:
		setRd(rs1 * rs2)
	case isa.OpDiv:
		if rs2 == 0 {
			setRd(0)
		} else {
			setRd(uint64(int64(rs1) / int64(rs2)))
		}
	case isa.OpRem:
		if rs2 == 0 {
			setRd(rs1)
		} else {
			setRd(uint64(int64(rs1) % int64(rs2)))
		}
	case isa.OpSlt:
		setRd(boolToU64(int64(rs1) < int64(rs2)))
	case isa.OpSltu:
		setRd(boolToU64(rs1 < rs2))
	case isa.OpMin:
		if int64(rs1) < int64(rs2) {
			setRd(rs1)
		} else {
			setRd(rs2)
		}
	case isa.OpMax:
		if int64(rs1) > int64(rs2) {
			setRd(rs1)
		} else {
			setRd(rs2)
		}

	case isa.OpAddI:
		setRd(rs1 + uint64(in.Imm))
	case isa.OpAndI:
		setRd(rs1 & uint64(in.Imm))
	case isa.OpOrI:
		setRd(rs1 | uint64(in.Imm))
	case isa.OpXorI:
		setRd(rs1 ^ uint64(in.Imm))
	case isa.OpShlI:
		setRd(rs1 << (uint64(in.Imm) & 63))
	case isa.OpShrI:
		setRd(rs1 >> (uint64(in.Imm) & 63))
	case isa.OpMulI:
		setRd(rs1 * uint64(in.Imm))
	case isa.OpSltI:
		setRd(boolToU64(int64(rs1) < in.Imm))
	case isa.OpSltuI:
		setRd(boolToU64(rs1 < uint64(in.Imm)))
	case isa.OpLi:
		setRd(uint64(in.Imm))

	case isa.OpFAdd:
		setRd(b64(f64(rs1) + f64(rs2)))
	case isa.OpFSub:
		setRd(b64(f64(rs1) - f64(rs2)))
	case isa.OpFMul:
		setRd(b64(f64(rs1) * f64(rs2)))
	case isa.OpFDiv:
		setRd(b64(f64(rs1) / f64(rs2)))
	case isa.OpFLt:
		setRd(boolToU64(f64(rs1) < f64(rs2)))
	case isa.OpFCvt:
		setRd(b64(float64(int64(rs1))))
	case isa.OpFInt:
		setRd(uint64(int64(f64(rs1))))

	case isa.OpLd, isa.OpLd4, isa.OpLd1:
		addr := rs1 + uint64(in.Imm)
		sz := in.MemBytes()
		v := m.Mem.Read(addr, sz)
		s.IsLoad, s.MemAddr, s.MemSize, s.MemVal = true, addr, sz, v
		setRd(v)
	case isa.OpSt, isa.OpSt4, isa.OpSt1:
		addr := rs1 + uint64(in.Imm)
		sz := in.MemBytes()
		// Self-modifying code is unsupported: the pipeline's decoded-block
		// cache is built once per program (see emu.Predecode), so a store
		// into the code segment is a hard error here too, keeping the golden
		// model's contract aligned with the pipeline's.
		if addr < m.Prog.CodeEnd() && addr+uint64(sz) > m.Prog.CodeBase {
			return s, fmt.Errorf("emu: self-modifying store at PC 0x%x into code segment [0x%x,0x%x)",
				m.PC, m.Prog.CodeBase, m.Prog.CodeEnd())
		}
		m.Mem.Write(addr, rs2, sz)
		s.IsStore, s.MemAddr, s.MemSize, s.MemVal = true, addr, sz, rs2

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		s.IsBranch = true
		s.Taken = condTaken(in.Op, rs1, rs2)
		s.Target = uint64(in.Imm)
		if s.Taken {
			next = s.Target
		}
	case isa.OpJmp:
		s.IsBranch, s.Taken, s.Target = true, true, uint64(in.Imm)
		next = s.Target
	case isa.OpCall:
		s.IsBranch, s.Taken, s.Target = true, true, uint64(in.Imm)
		setRd(m.PC + isa.InstBytes)
		next = s.Target
	case isa.OpRet:
		s.IsBranch, s.Taken, s.Target = true, true, rs1
		next = rs1
	case isa.OpJr:
		s.IsBranch, s.Taken, s.Target = true, true, rs1+uint64(in.Imm)
		next = s.Target
	case isa.OpCallR:
		s.IsBranch, s.Taken, s.Target = true, true, rs1
		setRd(m.PC + isa.InstBytes)
		next = s.Target

	default:
		return s, fmt.Errorf("emu: unimplemented opcode %v at 0x%x", in.Op, m.PC)
	}

	if !m.Halted {
		m.PC = next
	}
	s.NextPC = next
	m.Count++
	return s, nil
}

// condTaken evaluates a conditional-branch condition.
func condTaken(op isa.Op, rs1, rs2 uint64) bool {
	switch op {
	case isa.OpBeq:
		return rs1 == rs2
	case isa.OpBne:
		return rs1 != rs2
	case isa.OpBlt:
		return int64(rs1) < int64(rs2)
	case isa.OpBge:
		return int64(rs1) >= int64(rs2)
	case isa.OpBltu:
		return rs1 < rs2
	case isa.OpBgeu:
		return rs1 >= rs2
	}
	panic("emu: condTaken on non-branch")
}

// CondTaken exposes branch-condition evaluation for the pipeline's execute
// stage so both models share one definition.
func CondTaken(op isa.Op, rs1, rs2 uint64) bool { return condTaken(op, rs1, rs2) }

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Run executes up to limit instructions (0 = unlimited) or until halt.
// It returns the number of instructions executed.
func (m *Machine) Run(limit uint64) (uint64, error) {
	var n uint64
	for !m.Halted && (limit == 0 || n < limit) {
		if _, err := m.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
