package emu

import (
	"math"
	"testing"
	"testing/quick"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

func run(t *testing.T, build func(b *asm.Builder)) *Machine {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m
}

func TestArithmeticLoop(t *testing.T) {
	// sum of 1..100 = 5050
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R1, 0) // sum
		b.Li(isa.R2, 1) // i
		b.Li(isa.R3, 100)
		b.Label("loop")
		b.Add(isa.R1, isa.R1, isa.R2)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bge(isa.R3, isa.R2, "loop")
		b.Halt()
	})
	if m.Regs[isa.R1] != 5050 {
		t.Fatalf("sum = %d", m.Regs[isa.R1])
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.DataU64(0x20000, []uint64{10, 20, 30, 40})
		b.LiU(isa.R1, 0x20000)
		b.Ld(isa.R2, isa.R1, 8)  // 20
		b.Ld(isa.R3, isa.R1, 24) // 40
		b.Add(isa.R4, isa.R2, isa.R3)
		b.St(isa.R1, 32, isa.R4) // mem[0x20020] = 60
		b.Ld(isa.R5, isa.R1, 32)
		b.Halt()
	})
	if m.Regs[isa.R5] != 60 {
		t.Fatalf("r5 = %d", m.Regs[isa.R5])
	}
	if got := m.Mem.ReadU64(0x20020); got != 60 {
		t.Fatalf("mem = %d", got)
	}
}

func TestSubWordAccess(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.LiU(isa.R1, 0x20000)
		b.Li(isa.R2, 0x11223344AABBCCDD)
		b.St(isa.R1, 0, isa.R2)
		b.Ld4(isa.R3, isa.R1, 0) // 0xAABBCCDD zero-extended
		b.Ld1(isa.R4, isa.R1, 1) // 0xCC
		b.Li(isa.R5, 0xEE)
		b.St1(isa.R1, 7, isa.R5)
		b.Ld(isa.R6, isa.R1, 0)
		b.Halt()
	})
	if m.Regs[isa.R3] != 0xAABBCCDD {
		t.Fatalf("ld4 = %#x", m.Regs[isa.R3])
	}
	if m.Regs[isa.R4] != 0xCC {
		t.Fatalf("ld1 = %#x", m.Regs[isa.R4])
	}
	if m.Regs[isa.R6] != 0xEE223344AABBCCDD {
		t.Fatalf("patched = %#x", m.Regs[isa.R6])
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Label("main")
		b.Li(isa.R1, 5)
		b.Call("double")
		b.Call("double")
		b.Halt()
		b.Label("double")
		b.Add(isa.R1, isa.R1, isa.R1)
		b.Ret()
	})
	if m.Regs[isa.R1] != 20 {
		t.Fatalf("r1 = %d", m.Regs[isa.R1])
	}
}

func TestIndirectJump(t *testing.T) {
	// computed dispatch: jump to 'two' via register
	m := run(t, func(b *asm.Builder) {
		b.LiLabel(isa.R1, "two")
		b.Jr(isa.R1, 0)
		b.Li(isa.R2, 1)
		b.Halt()
		b.Label("two")
		b.Li(isa.R2, 2)
		b.Halt()
	})
	if m.Regs[isa.R2] != 2 {
		t.Fatalf("r2 = %d", m.Regs[isa.R2])
	}
}

func TestR0IsZero(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R0, 99) // write to R0 must be discarded
		b.AddI(isa.R1, isa.R0, 3)
		b.Halt()
	})
	if m.Regs[isa.R0] != 0 {
		t.Fatalf("r0 = %d", m.Regs[isa.R0])
	}
	if m.Regs[isa.R1] != 3 {
		t.Fatalf("r1 = %d", m.Regs[isa.R1])
	}
}

func TestDivRemByZero(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R1, 42)
		b.Li(isa.R2, 0)
		b.Div(isa.R3, isa.R1, isa.R2)
		b.Rem(isa.R4, isa.R1, isa.R2)
		b.Halt()
	})
	if m.Regs[isa.R3] != 0 {
		t.Fatalf("div/0 = %d", m.Regs[isa.R3])
	}
	if m.Regs[isa.R4] != 42 {
		t.Fatalf("rem/0 = %d", m.Regs[isa.R4])
	}
}

func TestFloatOps(t *testing.T) {
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R1, 3)
		b.FCvt(isa.R2, isa.R1) // 3.0
		b.Li(isa.R3, 4)
		b.FCvt(isa.R4, isa.R3)         // 4.0
		b.FMul(isa.R5, isa.R2, isa.R4) // 12.0
		b.FAdd(isa.R5, isa.R5, isa.R2) // 15.0
		b.FDiv(isa.R5, isa.R5, isa.R4) // 3.75
		b.FLt(isa.R6, isa.R2, isa.R4)  // 1
		b.FInt(isa.R7, isa.R5)         // 3
		b.Halt()
	})
	if got := math.Float64frombits(m.Regs[isa.R5]); got != 3.75 {
		t.Fatalf("fp = %v", got)
	}
	if m.Regs[isa.R6] != 1 || m.Regs[isa.R7] != 3 {
		t.Fatalf("flt=%d fint=%d", m.Regs[isa.R6], m.Regs[isa.R7])
	}
}

func TestBranchVariants(t *testing.T) {
	// Each branch kind tested taken and not-taken via a bitmask result.
	m := run(t, func(b *asm.Builder) {
		b.Li(isa.R10, 0) // result mask
		b.Li(isa.R1, 5)
		b.Li(isa.R2, ^int64(0)) // -1

		b.Beq(isa.R1, isa.R1, "t1")
		b.Jmp("f1")
		b.Label("t1")
		b.OrI(isa.R10, isa.R10, 1)
		b.Label("f1")

		b.Bne(isa.R1, isa.R1, "t2")
		b.Jmp("f2")
		b.Label("t2")
		b.OrI(isa.R10, isa.R10, 2) // must not execute
		b.Label("f2")

		b.Blt(isa.R2, isa.R1, "t3") // -1 < 5 signed
		b.Jmp("f3")
		b.Label("t3")
		b.OrI(isa.R10, isa.R10, 4)
		b.Label("f3")

		b.Bltu(isa.R2, isa.R1, "t4") // max-uint < 5 unsigned: false
		b.Jmp("f4")
		b.Label("t4")
		b.OrI(isa.R10, isa.R10, 8)
		b.Label("f4")

		b.Bge(isa.R1, isa.R2, "t5") // 5 >= -1 signed
		b.Jmp("f5")
		b.Label("t5")
		b.OrI(isa.R10, isa.R10, 16)
		b.Label("f5")

		b.Bgeu(isa.R2, isa.R1, "t6") // max-uint >= 5 unsigned
		b.Jmp("f6")
		b.Label("t6")
		b.OrI(isa.R10, isa.R10, 32)
		b.Label("f6")
		b.Halt()
	})
	if m.Regs[isa.R10] != 1|4|16|32 {
		t.Fatalf("branch mask = %#b", m.Regs[isa.R10])
	}
}

func TestStepRecords(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.R1, 7)
	b.LiU(isa.R2, 0x20000)
	b.St(isa.R2, 0, isa.R1)
	b.Ld(isa.R3, isa.R2, 0)
	b.Beq(isa.R3, isa.R1, "done")
	b.Nop()
	b.Label("done")
	b.Halt()
	m := New(b.MustBuild())

	s, _ := m.Step()
	if !s.WroteReg || s.Rd != isa.R1 || s.RegVal != 7 {
		t.Fatalf("li step: %+v", s)
	}
	m.Step()
	s, _ = m.Step()
	if !s.IsStore || s.MemAddr != 0x20000 || s.MemVal != 7 || s.MemSize != 8 {
		t.Fatalf("store step: %+v", s)
	}
	s, _ = m.Step()
	if !s.IsLoad || s.RegVal != 7 {
		t.Fatalf("load step: %+v", s)
	}
	s, _ = m.Step()
	if !s.IsBranch || !s.Taken {
		t.Fatalf("branch step: %+v", s)
	}
	if s.NextPC != s.Target {
		t.Fatalf("taken branch nextPC %#x != target %#x", s.NextPC, s.Target)
	}
	s, _ = m.Step()
	if !s.Halted || !m.Halted {
		t.Fatalf("halt step: %+v", s)
	}
	// Stepping a halted machine is a no-op.
	s, _ = m.Step()
	if !s.Halted {
		t.Fatalf("post-halt step: %+v", s)
	}
}

// Property: Eval agrees with Machine.Step for ALU/FP register results on
// random operand values across all two-source register ops.
func TestEvalMatchesStepProperty(t *testing.T) {
	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem, isa.OpSlt,
		isa.OpSltu, isa.OpMin, isa.OpMax, isa.OpFAdd, isa.OpFSub, isa.OpFMul,
		isa.OpFLt,
	}
	f := func(a, b uint64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		bld := asm.NewBuilder()
		bld.Li(isa.R1, int64(a))
		bld.Li(isa.R2, int64(b))
		bld.Emit(isa.Inst{Op: op, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2})
		bld.Halt()
		m := New(bld.MustBuild())
		m.Step()
		m.Step()
		s, err := m.Step()
		if err != nil {
			return false
		}
		in := &isa.Inst{Op: op, Rd: isa.R3, Rs1: isa.R1, Rs2: isa.R2}
		v, ok := Eval(in, a, b, 0)
		if !ok {
			return false
		}
		// NaN-producing FP ops still must agree bit-for-bit.
		return v == s.RegVal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: BranchOutcome agrees with Step for conditional branches.
func TestBranchOutcomeMatchesStepProperty(t *testing.T) {
	ops := []isa.Op{isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu}
	f := func(a, b uint64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		bld := asm.NewBuilder()
		bld.Li(isa.R1, int64(a))
		bld.Li(isa.R2, int64(b))
		bld.BranchOp(op, isa.R1, isa.R2, "target")
		bld.Halt()
		bld.Label("target")
		bld.Halt()
		m := New(bld.MustBuild())
		m.Step()
		m.Step()
		s, err := m.Step()
		if err != nil {
			return false
		}
		in := m.Prog.Code[2]
		taken, target := BranchOutcome(&in, a, b)
		return taken == s.Taken && target == s.Target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
