package pipeline_test

import (
	"testing"

	"teasim/internal/pipeline"
	"teasim/internal/workloads"
)

func runMCF(t *testing.T, mut func(*pipeline.Config), quantum uint64) *pipeline.Core {
	t.Helper()
	w, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload missing")
	}
	cfg := pipeline.DefaultConfig()
	cfg.MaxInstructions = 30_000
	cfg.MaxCycles = 10_000_000
	if mut != nil {
		mut(&cfg)
	}
	c := pipeline.New(cfg, w.Build(0))
	var err error
	if quantum != 0 {
		err = c.RunChecked(quantum, func() error { return nil })
	} else {
		err = c.Run()
	}
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

// TestIdleSkipFastForwards proves the fast-forward actually engages on a
// memory-bound workload and changes nothing observable: identical Stats and
// final cycle with a substantial fraction of cycles never individually
// ticked.
func TestIdleSkipFastForwards(t *testing.T) {
	on := runMCF(t, nil, 0)
	off := runMCF(t, func(cfg *pipeline.Config) { cfg.NoIdleSkip = true }, 0)

	if on.IdleSkips == 0 || on.IdleCyclesSkipped == 0 {
		t.Fatalf("idle skipping never engaged: skips=%d skipped=%d", on.IdleSkips, on.IdleCyclesSkipped)
	}
	if off.IdleSkips != 0 || off.IdleCyclesSkipped != 0 {
		t.Fatalf("NoIdleSkip run still skipped: skips=%d skipped=%d", off.IdleSkips, off.IdleCyclesSkipped)
	}
	if on.Stats != off.Stats {
		t.Errorf("stats diverge with idle skipping:\n on: %+v\noff: %+v", on.Stats, off.Stats)
	}
	if on.Cycle != off.Cycle {
		t.Errorf("final cycle diverges: on=%d off=%d", on.Cycle, off.Cycle)
	}
	t.Logf("skipped %d of %d cycles in %d jumps", on.IdleCyclesSkipped, on.Cycle, on.IdleSkips)
}

// TestIdleSkipQuantumClamp verifies that fast-forward jumps clamp to the
// RunChecked cancellation boundary: with a quantum far smaller than typical
// idle windows, the run must still observe every boundary and produce the
// same results as an unchecked run.
func TestIdleSkipQuantumClamp(t *testing.T) {
	plain := runMCF(t, nil, 0)
	clamped := runMCF(t, nil, 64)

	if plain.Stats != clamped.Stats {
		t.Errorf("stats diverge under quantum clamping:\n none: %+v\nq=64: %+v", plain.Stats, clamped.Stats)
	}
	if plain.Cycle != clamped.Cycle {
		t.Errorf("final cycle diverges under quantum clamping: none=%d q=64=%d", plain.Cycle, clamped.Cycle)
	}
	if clamped.IdleCyclesSkipped == 0 {
		t.Error("clamped run never skipped; quantum clamp test is vacuous")
	}
}
