// Package pipeline implements the baseline out-of-order core from Table I of
// the paper: an 8-wide machine with a decoupled branch predictor feeding a
// 128-entry fetch queue, a 12-cycle frontend, rename over 400 physical
// registers, a 352-entry reservation station, 12 execution ports, a
// 512-entry ROB, and a 256/192-entry load/store queue, over the cache
// hierarchy and DRAM model in internal/mem.
//
// The simulator is execution-driven and value-accurate: physical registers
// hold real 64-bit values, wrong-path instructions execute with real
// (possibly stale) inputs, and branch resolution compares genuinely computed
// outcomes against the decoupled predictor's stream. Retired instructions
// are optionally checked against the functional emulator (co-simulation).
//
// A Companion (the TEA thread, or the Branch Runahead baseline) can be
// attached to observe the fetch-block stream and retirement, occupy reserved
// backend resources, and inject early misprediction flushes keyed by branch
// sequence numbers — the paper's synchronized timestamps.
package pipeline

import (
	"teasim/internal/bpred"
	"teasim/internal/mem"
	"teasim/internal/telemetry"
)

// Config holds all core parameters (defaults = Table I).
type Config struct {
	FrontWidth     int // fetch/decode/rename/issue width
	RetireWidth    int
	FetchQueueSize int // fetch addresses buffered by the decoupled BP
	// FetchToRenameLat is the number of cycles between reading instruction
	// bytes and being available to rename; together with the 1-cycle predict
	// and 1-cycle rename/dispatch it forms the 12-cycle frontend.
	FetchToRenameLat uint64
	MaxBlockInstrs   int // BP throughput cap: 32 instructions (128B) per cycle
	FetchLinesPerCyc int // sequential I-cache lines readable per cycle
	// FrontQCap bounds fetched-but-not-renamed uops (decode/uop-queue
	// backpressure); fetch stalls when the frontend pipe is full.
	FrontQCap int

	ROBSize  int
	RSSize   int
	NumPRegs int
	LQSize   int
	SQSize   int

	ALUPorts  int
	LDPorts   int
	LDSTPorts int
	FPPorts   int

	// Latencies (cycles).
	ALULat, MulLat, DivLat, FPLat, FDivLat uint64

	// MispredictExtraLat models the redirect/recovery overhead beyond
	// pipeline refill (checkpoint copy, predictor repair).
	MispredictExtraLat uint64

	// BP sets the branch-predictor stack geometry (zero fields = Table I).
	BP bpred.Config
	// Mem sets the cache-hierarchy geometry (zero value = Table I).
	Mem mem.HierarchyConfig

	// CompanionPRegs is the physical-register pool reserved for a companion
	// thread above NumPRegs (0 = the Table II partition of 192). The pool
	// exists whether or not a companion attaches, matching the paper's
	// static partitioning.
	CompanionPRegs int

	// CompanionDedicated gives the companion its own execution engine
	// (paper §V-D / Fig. 9): CompanionPorts dedicated execution slots per
	// cycle and no carve-out of the main thread's RS/PR partitions. Cache
	// ports and MSHRs remain shared, as in the paper.
	CompanionDedicated bool
	CompanionPorts     int
	// CompanionNoPriority demotes companion uops below the main thread at
	// select (ablation of §IV-E's prioritization claim).
	CompanionNoPriority bool

	// CoSim enables golden-model checking at retirement (tests).
	CoSim bool

	// NoIdleSkip disables the idle-cycle fast-forward scheduler (skip.go),
	// ticking every cycle individually. Skipping is cycle-exact — results
	// and stat counters are bit-identical either way (enforced by the
	// equivalence test) — so this exists for debugging and for the
	// equivalence test itself.
	NoIdleSkip bool

	// NoBlockCache disables the decoded-block uop cache: the decoupled BP
	// walks instructions one at a time and fetch re-decodes each uop from
	// the instruction word, instead of replaying predecoded templates.
	// Results are bit-identical either way (enforced by the fast-path
	// equivalence test); the reference path exists for debugging and for
	// that test.
	NoBlockCache bool

	// NoBitsetSched disables the bitmap scheduler fast path (RS slot
	// bitmaps, packed waiter refs, completion-ring occupancy words),
	// falling back to the pointer/heap reference implementation in sched.go.
	// Results are bit-identical either way (enforced by the fast-path
	// equivalence test).
	NoBitsetSched bool

	// NoSplitReady disables the split main/companion ready lists of the
	// bitset scheduler (implied by NoBitsetSched): companion refs fall back
	// to the shared ready list and execute filters them per pass. Results
	// are bit-identical either way (enforced by the fast-path equivalence
	// test).
	NoSplitReady bool

	// NoHistRewind disables the branch predictor's rewind-mode history
	// recovery, restoring the per-branch full folded-history checkpoints.
	// Results are bit-identical either way (enforced by the fast-path
	// equivalence test and TestHistoryRewindEquivalence).
	NoHistRewind bool

	// Telemetry, when non-nil, receives structured trace events (retire,
	// flush, early-flush — the successor of the old printf trace) and
	// per-interval time-series samples through its Sink. See
	// internal/telemetry for sinks and the Collector's trace window and
	// sampling period. Telemetry is purely observational: attaching it
	// never changes simulated behavior.
	Telemetry *telemetry.Collector

	// MaxInstructions stops the run after retiring this many (0 = until halt).
	MaxInstructions uint64
	// MaxCycles aborts a wedged simulation (0 = no limit).
	MaxCycles uint64

	// Paranoia enables the per-cycle invariant checker (paranoia.go): ROB
	// ordering, physical-register conservation, scheduler/scoreboard
	// consistency, completion accounting. The checker only reads — results
	// are bit-identical — but costs an order of magnitude in speed, and the
	// first violated invariant panics with a structural dump. For CI and
	// debugging.
	Paranoia bool

	// Heartbeat, when non-nil, receives a progress beat at the run loop's
	// cancellation-check boundaries (RunChecked) so an external watchdog can
	// distinguish a slow simulation from a wedged one. Forces the checked
	// run path even when no check function is supplied.
	Heartbeat *telemetry.Heartbeat
}

// DefaultConfig returns the Table I baseline core.
func DefaultConfig() Config {
	return Config{
		FrontWidth:       8,
		RetireWidth:      16,
		FetchQueueSize:   128,
		FetchToRenameLat: 10,
		MaxBlockInstrs:   32,
		FetchLinesPerCyc: 2,
		FrontQCap:        96,

		ROBSize:  512,
		RSSize:   352,
		NumPRegs: 400,
		LQSize:   256,
		SQSize:   192,

		ALUPorts:  6,
		LDPorts:   2,
		LDSTPorts: 2,
		FPPorts:   2,

		ALULat: 1, MulLat: 3, DivLat: 12, FPLat: 3, FDivLat: 12,

		MispredictExtraLat: 3,

		BP:             bpred.DefaultConfig(),
		Mem:            mem.DefaultHierarchyConfig(),
		CompanionPRegs: 192,
	}
}
