package pipeline

import (
	"teasim/internal/emu"
	"teasim/internal/isa"
)

// Idle-cycle fast-forward (event-driven skipping).
//
// Memory-bound phases leave the core ticking dead cycles: the ROB head
// waits on a DRAM load, the frontend pipe is full, nothing completes.
// Simulating those cycles one at a time is pure overhead — nothing in the
// machine can change until a scheduled event arrives. idleWake proves a
// cycle dead and names the earliest cycle at which anything can change;
// skipTo jumps there, applying exactly the per-cycle bookkeeping the
// skipped ticks would have done. The invariant (enforced by the skip
// on/off equivalence test, documented in DESIGN.md §9): every stat counter
// and simulation outcome is bit-identical to a tick-by-tick run.
//
// The proof obligation for idleWake: if it returns (wake, true), then for
// every cycle t in [Cycle, wake) a Tick at t mutates nothing except Cycle,
// Stats.Cycles, and the per-cycle stall counters that skipTo replays.
// Each stage's guard depends on Cycle only through the enumerated wake
// sources, and every resource that could unblock a stage (ROB/RS/PRF/LSQ
// space, fetch-queue room) is freed only by retire/complete/flush events —
// all of which require a wake source to fire first.

// idleWake reports whether the machine is provably idle at the current
// cycle and, if so, the earliest future cycle at which any stage (or the
// companion, or the memory system) can wake. A false result means the next
// Tick may make progress and must run normally.
func (c *Core) idleWake() (wake uint64, idle bool) {
	// Retire: an executed ROB head retires (or at least probes the D-cache
	// on a store-commit MSHR retry — an access-count mutation either way).
	if c.rob.len() > 0 && c.rob.front().Executed {
		return 0, false
	}
	// Fetch: an unstalled frontend with pipe room and a queued block pops,
	// holds for the companion (teaPopWait++), or accesses the I-cache.
	stalled := c.Cycle < c.fetchStallTil
	if !stalled && c.Cfg.FrontQCap-c.frontQ.len() > 0 && c.fetchQ.len() > 0 {
		return 0, false
	}
	// Predict: an unstalled stream with fetch-queue room emits a block (or
	// discovers the end of the code segment, which also mutates state).
	if !c.streamStalled && c.Cycle >= c.streamResumeAt && c.fetchQ.len() < c.Cfg.FetchQueueSize {
		return 0, false
	}

	// closer keeps the earliest strictly-future wake candidate (0 = none).
	closer := func(at uint64) {
		if at > c.Cycle && (wake == 0 || at < wake) {
			wake = at
		}
	}
	if stalled {
		closer(c.fetchStallTil)
	}
	if !c.streamStalled && c.Cycle < c.streamResumeAt {
		closer(c.streamResumeAt)
	}
	// Rename: the in-order pipe head either renames now (progress), waits
	// out the frontend latency (a wake), or is blocked on a backend
	// resource only a retire/complete/flush event can free (idle).
	if c.frontQ.len() > 0 {
		u := c.frontQ.front()
		if at := u.FetchCycle + c.Cfg.FetchToRenameLat; at > c.Cycle {
			closer(at)
		} else if !c.renameBlocked(u) {
			return 0, false
		}
	}
	// Decode re-steers fire at their delivery cycle (a due one mutates the
	// pending list even when the branch was already squashed).
	for _, pr := range c.pendingRedirects {
		if pr.atCycle <= c.Cycle {
			return 0, false
		}
		closer(pr.atCycle)
	}
	// Execute: a ready RS entry issues — unless it is a load provably
	// blocked on an older store or on full MSHRs, whose unblocking event (a
	// completion, a retire, a fill arrival) is already a wake source. Every
	// ready entry is in readyQ (wakeup is event-driven, see sched.go), so
	// unready entries need no inspection: they wake only via a writeback,
	// which the completion heap below already covers. Companion entries
	// additionally age out on the companionRSTimeout sweep; FetchCycle is
	// nondecreasing along teaAge, so the oldest live entry bounds them all.
	if c.bitset {
		for _, ref := range c.readyList {
			s := &c.slots[ref&slotMask]
			if s.stamp != ref>>slotBits {
				continue
			}
			// Only companion entries re-check readiness (main readiness is
			// monotonic; see sched_bitset.go). An unready entry wakes only
			// via a writeback, which the completion bitmap covers.
			if s.tea && (!c.PRF.Ready[s.prs1] || !c.PRF.Ready[s.prs2]) {
				continue
			}
			if !c.loadBlocked(s.u) {
				return 0, false
			}
		}
		// Split-ready fast path: companion refs live on their own list.
		// A live companion entry with both sources ready would issue (or
		// probe the cache) next tick — loadBlocked never blocks companion
		// uops — so it vetoes idleness outright; unready ones wake via a
		// writeback, covered by the completion bitmap below.
		for _, ref := range c.teaReadyList {
			s := &c.slots[ref&slotMask]
			if s.stamp != ref>>slotBits {
				continue
			}
			if c.PRF.Ready[s.prs1] && c.PRF.Ready[s.prs2] {
				return 0, false
			}
		}
		// MSHR-parked loads are invisible to the walk above; their retry is
		// due exactly when the earliest parked memo expires. A due (or past)
		// pool wake vetoes idleness — select re-admits the pool on the next
		// tick — and a future one bounds the skip. (sqParked needs no
		// analogue: a parked SQ verdict can only flip via a completion,
		// retire, or flush event, all wake sources already.)
		if len(c.memParked) > 0 {
			if c.memParkedWake <= c.Cycle {
				return 0, false
			}
			closer(c.memParkedWake)
		}
	} else {
		for _, r := range c.readyQ {
			// Re-check readiness (a source PR can be re-allocated under a
			// waiting companion consumer); an unready entry wakes only via a
			// writeback, which the completion heap covers.
			if r.live() && c.PRF.Ready[r.u.Prs1] && c.PRF.Ready[r.u.Prs2] && !c.loadBlocked(r.u) {
				return 0, false
			}
		}
	}
	var horizon uint64
	if c.bitset {
		horizon = c.companionTimeoutHorizonBitset()
	} else {
		horizon = c.companionTimeoutHorizon()
	}
	if at := horizon; at != 0 {
		if at <= c.Cycle {
			return 0, false
		}
		closer(at)
	}
	// Companion: it declares its own quiescence and self-scheduled wake
	// (TEA Fill Buffer walk completion; Branch Runahead instance latency).
	compIdle, compWake := c.comp.Quiescent(c.Cycle)
	if !compIdle {
		return 0, false
	}
	closer(compWake)
	// Writeback: the earliest scheduled completion — read off the ring's
	// occupancy bitmap (bitset path) or the heap mirror (reference path).
	// A completion due at the current cycle drains on the next tick (not
	// idle); one in the past would mean the mirror drifted — treat it as a
	// veto rather than risk skipping over it.
	if c.bitset {
		at, ok := c.complNextWake()
		if !ok {
			return 0, false
		}
		if at != 0 {
			closer(at)
		}
	} else if n := len(c.complHeap); n > 0 {
		if top := c.complHeap[0]; top <= c.Cycle {
			return 0, false
		} else {
			closer(top)
		}
	}
	// Memory system: a fill completing at cycle f can unblock an MSHR-full
	// load retry as early as cycle f-1 (issueLoad probes with now=Cycle+1),
	// so wake one cycle before the earliest outstanding fill. This also
	// defensively covers any other stage that polls the hierarchy.
	if at := c.Hier.NextEvent(c.Cycle); at != 0 {
		closer(at - 1)
	}

	if wake == 0 {
		return 0, false
	}
	return wake, true
}

// loadBlocked reports whether a ready RS entry would fail to issue — and
// mutate nothing but diagnostic cache hit/miss counters — if execute ran
// now. Only main-thread loads can be provably blocked: on an older store
// without an address (its completion is in the ring), on a partial store
// overlap (cleared by that store's commit, behind retire-side wakes), or
// on full MSHRs (cleared by a fill completion, a Hierarchy.NextEvent
// wake). It replicates issueLoad's disambiguation scan read-only; the
// answer cannot change before one of those wake events fires. Everything
// else — any non-load, any companion load — issues or probes the D-cache,
// so it reports not blocked and the cycle is not idle.
func (c *Core) loadBlocked(u *Uop) bool {
	if u.Cls != isa.ClassLoad || u.TEA {
		return false
	}
	if u.sqBlocked && u.sqEpoch == c.storeEpoch {
		return true // memoized SQ-blocked verdict, inputs unchanged
	}
	if u.memWake > c.Cycle {
		return true // memoized MSHR-full verdict, no fill has completed yet
	}
	addr := emu.EffAddr(u.In, c.PRF.Val[u.Prs1])
	size := u.In.MemBytes()
	for i := c.sq.len() - 1; i >= 0; i-- {
		s := c.sq.at(i)
		if s.Squashed || s.Seq >= u.Seq {
			continue
		}
		if !s.Executed {
			return true // older store address unknown
		}
		ssz := s.In.MemBytes()
		if s.Addr+uint64(ssz) <= addr || addr+uint64(size) <= s.Addr {
			continue // disjoint
		}
		if s.Addr <= addr && addr+uint64(size) <= s.Addr+uint64(ssz) {
			return false // would forward from the containing store
		}
		return true // partial overlap: waits for the store to commit
	}
	return !c.Hier.LoadWouldAccept(addr, c.Cycle+1)
}

// renameBlocked replicates rename()'s resource gates for a latency-ready
// head uop. All of them are freed only by retire/complete/flush events, so
// a blocked head is idle-compatible.
func (c *Core) renameBlocked(u *Uop) bool {
	if c.rob.len() >= c.Cfg.ROBSize || c.rsMainCount >= c.mainRSCap {
		return true
	}
	if u.destValid && !c.PRF.CanAlloc() {
		return true
	}
	if u.isLoad() && c.lqCount >= c.Cfg.LQSize {
		return true
	}
	if u.isStore() && c.sqCount >= c.Cfg.SQSize {
		return true
	}
	return false
}

// skipTo fast-forwards the idle machine from the current cycle to target,
// batch-applying the per-cycle stall accounting that each of the skipped
// Ticks would have performed (idleWake guarantees they would do nothing
// else). The conditions mirror retire() and fetch() exactly: a non-empty
// ROB whose head is unexecuted counts a retire stall; a stalled frontend
// counts an I-miss stall regardless of queue state; otherwise an empty
// fetch queue with pipe room counts an empty-fetch-queue cycle.
func (c *Core) skipTo(target uint64) {
	n := target - c.Cycle
	if c.rob.len() > 0 {
		c.Stats.RetireStallROB += n
	}
	if c.Cycle < c.fetchStallTil {
		c.Stats.FetchStallICM += n
	} else if c.Cfg.FrontQCap-c.frontQ.len() > 0 && c.fetchQ.len() == 0 {
		c.Stats.EmptyFetchQ += n
	}
	c.comp.OnSkip(n)
	c.IdleSkips++
	c.IdleCyclesSkipped += n
	c.Cycle = target
	c.Stats.Cycles = target
}
