package pipeline

import "teasim/internal/isa"

// flushAfter squashes every in-flight instruction younger than seq, restores
// the RAT by walking the ROB tail backwards, repairs the branch predictor
// from the flushed branch's snapshot, truncates the fetch queue, and
// redirects the BP stream to redirectPC.
//
// The same mechanism serves execute-time mispredictions, decode re-steers,
// and TEA early flushes: because seq totally orders all in-flight work
// (including instructions still in the frontend), a flush for a branch that
// has not reached rename yet naturally becomes a *partial frontend flush* —
// instructions older than the branch are untouched (paper §IV-F).
func (c *Core) flushAfter(seq uint64, redirectPC uint64, rec *BranchRec, actualTaken bool, actualTarget uint64) {
	if DebugTEA > 0 && seq >= DebugSeqLo && seq <= DebugSeqHi {
		println("FLUSH cyc", int(c.Cycle), "seq", int(seq), "redirect", int64(redirectPC), "taken", actualTaken)
	}
	// Predictor recovery: rewind speculative history/RAS to just before the
	// branch and re-apply its actual outcome.
	if rec != nil {
		c.BP.Recover(&rec.Pred, rec.In, actualTaken, actualTarget)
		rec.PredTaken = actualTaken
		rec.PredTarget = actualTarget
		if actualTaken {
			rec.PredNext = actualTarget
		} else {
			rec.PredNext = rec.PC + isa.InstBytes
		}
	}

	// ROB walk-back: undo rename newest-first, freeing physical registers.
	i := c.rob.len() - 1
	for i >= 0 && c.rob.at(i).Seq > seq {
		u := c.rob.at(i)
		u.Squashed = true
		if u.HasDest {
			c.rat[u.In.Rd] = u.PrevPrd
			c.PRF.Free(u.Prd)
		}
		if u.isLoad() {
			c.lqCount--
		}
		if u.isStore() {
			c.sqCount--
		}
		if u.Executed {
			// Already drained from the completion ring: no later stage will
			// see this uop again, so recycle it here (un-executed uops come
			// back through the ring or the RS sweep below instead).
			c.pool.putUop(u)
		}
		i--
	}
	c.rob.truncFrom(i + 1)

	// Store queue: squashed stores are the (age-ordered) tail.
	j := c.sq.len()
	for j > 0 && c.sq.at(j-1).Seq > seq {
		j--
	}
	c.sq.truncFrom(j)
	c.storeEpoch++ // SQ population (or surviving loads' elders) changed

	// Reservation stations: squash waiting entries younger than the branch.
	// Companion uops share timestamps with their main-thread counterparts,
	// so the same age comparison covers both threads (paper §IV-F). Issued
	// companion uops in flight are squashed by the companion in OnFlush;
	// issued main-thread uops were marked during the ROB walk-back.
	rs := c.rs[:0]
	stamps := c.rsStamps[:0]
	for i, u := range c.rs {
		if u.rsStamp != c.rsStamps[i] || !u.InRS {
			continue
		}
		if u.Seq > seq {
			u.Squashed = true
			u.InRS = false
			if c.bitset {
				c.freeSlot(u)
			}
			if u.TEA {
				c.rsTEACount--
				c.comp.UopSquashed(u)
			} else {
				c.rsMainCount--
				c.pool.putUop(u) // renamed but never issued
			}
			continue
		}
		rs = append(rs, u)
		stamps = append(stamps, c.rsStamps[i])
	}
	c.rs, c.rsStamps = rs, stamps

	// Frontend pipe: fetched-but-not-renamed uops younger than seq are the
	// tail of the (age-ordered) pipe.
	j = c.frontQ.len()
	for j > 0 && c.frontQ.at(j-1).Seq > seq {
		j--
		u := c.frontQ.at(j)
		u.Squashed = true
		c.pool.putUop(u) // never renamed
	}
	c.frontQ.truncFrom(j)

	// Fetch queue: truncate the block containing seq, drop younger blocks.
	cut := c.fetchQ.len()
	for bi := 0; bi < c.fetchQ.len(); bi++ {
		blk := c.fetchQ.at(bi)
		if blk.SeqBase > seq {
			cut = bi
			break
		}
		if seq < blk.SeqBase+uint64(blk.Count) {
			blk.truncate(seq)
			cut = bi + 1
			break
		}
	}
	for bi := cut; bi < c.fetchQ.len(); bi++ {
		c.pool.putBlock(c.fetchQ.at(bi))
	}
	c.fetchQ.truncFrom(cut)
	if c.teaBlk > c.fetchQ.len() {
		c.teaBlk = c.fetchQ.len()
		c.teaOff = 0
	}
	if c.fetchQ.len() == 0 {
		c.mainOff = 0
	} else if c.mainOff > c.fetchQ.front().Count {
		c.mainOff = c.fetchQ.front().Count
	}

	// In-flight branch queue: records younger than seq form the tail of the
	// age-ordered list.
	j = c.recList.len()
	for j > 0 && c.recList.at(j-1).Seq > seq {
		j--
		c.pool.putRec(c.recList.at(j))
	}
	c.recList.truncFrom(j)

	// Restart the BP stream at the corrected PC after the recovery latency.
	c.streamPC = redirectPC
	c.streamStalled = false
	c.streamResumeAt = c.Cycle + c.Cfg.MispredictExtraLat
	c.fetchStallTil = 0

	if c.telem != nil && c.telem.TraceOn(c.Cycle) {
		c.telemFlush(seq, redirectPC, c.earlyFlush)
	}

	// After the walk-back, the flushed branch (if it had renamed) is the
	// youngest surviving ROB entry.
	branchRenamed := c.rob.len() > 0 && c.rob.at(c.rob.len()-1).Seq == seq
	c.comp.OnFlush(seq, branchRenamed)
}
