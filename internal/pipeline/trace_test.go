package pipeline

import (
	"strings"
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

func TestTraceEmitsEvents(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.R1, 0)
	b.Li(isa.R11, 0xABCDE)
	b.Li(isa.R2, 2000)
	b.Label("loop")
	b.ShlI(isa.R3, isa.R11, 13)
	b.Xor(isa.R11, isa.R11, isa.R3)
	b.ShrI(isa.R3, isa.R11, 7)
	b.Xor(isa.R11, isa.R11, isa.R3)
	b.AndI(isa.R4, isa.R11, 1)
	b.Beqz(isa.R4, "skip")
	b.AddI(isa.R5, isa.R5, 1)
	b.Label("skip")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop")
	b.Halt()

	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 2_000_000
	cfg.TraceW = &sb
	cfg.TraceStart, cfg.TraceEnd = 0, 4000
	c := New(cfg, b.MustBuild())
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "retire") {
		t.Fatal("no retire events traced")
	}
	if !strings.Contains(out, "flush") {
		t.Fatal("no flush events traced (random branch must mispredict)")
	}
	if !strings.Contains(out, "MISPRED") {
		t.Fatal("no mispredicted branch annotated")
	}
}

func TestTraceWindowBounds(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 100)
	b.Label("loop")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop")
	b.Halt()
	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000
	cfg.TraceW = &sb
	cfg.TraceStart, cfg.TraceEnd = 1<<40, 1<<41 // window never reached
	c := New(cfg, b.MustBuild())
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("trace emitted outside window: %q", sb.String()[:50])
	}
}
