package pipeline

import (
	"strings"
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
	"teasim/internal/telemetry"
)

// branchTorture builds a short program with a data-dependent branch that
// the predictor cannot learn (xorshift parity).
func branchTorture(iters int64) *isa.Program {
	b := asm.NewBuilder()
	b.Li(isa.R1, 0)
	b.Li(isa.R11, 0xABCDE)
	b.Li(isa.R2, iters)
	b.Label("loop")
	b.ShlI(isa.R3, isa.R11, 13)
	b.Xor(isa.R11, isa.R11, isa.R3)
	b.ShrI(isa.R3, isa.R11, 7)
	b.Xor(isa.R11, isa.R11, isa.R3)
	b.AndI(isa.R4, isa.R11, 1)
	b.Beqz(isa.R4, "skip")
	b.AddI(isa.R5, isa.R5, 1)
	b.Label("skip")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestTraceEmitsEvents(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 2_000_000
	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{
		Sink:     telemetry.NewText(&sb),
		TraceEnd: 4000,
	})
	c := New(cfg, branchTorture(2000))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Telemetry.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "retire") {
		t.Fatal("no retire events traced")
	}
	if !strings.Contains(out, "flush") {
		t.Fatal("no flush events traced (random branch must mispredict)")
	}
	if !strings.Contains(out, "MISPRED") {
		t.Fatal("no mispredicted branch annotated")
	}
}

func TestTraceWindowBounds(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 100)
	b.Label("loop")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop")
	b.Halt()
	ring := telemetry.NewRing(64)
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000
	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{
		Sink:       ring,
		TraceStart: 1 << 40, TraceEnd: 1 << 41, // window never reached
		NoIntervals: true,
	})
	c := New(cfg, b.MustBuild())
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if evs := ring.Events(); len(evs) != 0 {
		t.Fatalf("trace emitted outside window: %+v", evs[0])
	}
	if ivs := ring.Intervals(); len(ivs) != 0 {
		t.Fatalf("NoIntervals still sampled %d intervals", len(ivs))
	}
}

// TestTraceStructuredEvents checks the machine-readable side of the schema:
// retire events carry branch/memory annotations and flush events carry the
// redirect target and occupancies.
func TestTraceStructuredEvents(t *testing.T) {
	ring := telemetry.NewRing(1 << 16)
	cfg := DefaultConfig()
	cfg.MaxCycles = 2_000_000
	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{Sink: ring})
	c := New(cfg, branchTorture(2000))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var branches, mispredicts, flushes int
	var lastCycle uint64
	for _, e := range ring.Events() {
		if e.Cycle < lastCycle {
			t.Fatalf("events out of cycle order: %d after %d", e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case telemetry.EvRetire:
			if e.Disasm == "" {
				t.Fatal("retire event missing disassembly")
			}
			if e.Branch {
				branches++
				if e.Mispredict {
					mispredicts++
				}
			}
		case telemetry.EvFlush, telemetry.EvEarlyFlush:
			flushes++
			if e.Redirect == 0 {
				t.Fatalf("flush event missing redirect: %+v", e)
			}
		}
	}
	if branches == 0 || mispredicts == 0 || flushes == 0 {
		t.Fatalf("branches=%d mispredicts=%d flushes=%d, want all nonzero",
			branches, mispredicts, flushes)
	}
}

// TestIntervalSampling drives a run with interval sampling and checks the
// samples are periodic, internally consistent, and that their deltas sum
// back to the cumulative totals.
func TestIntervalSampling(t *testing.T) {
	ring := telemetry.NewRing(0)
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000_000
	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{
		Sink:           ring,
		IntervalPeriod: 1000,
	})
	c := New(cfg, branchTorture(5000))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ivs := ring.Intervals()
	if len(ivs) < 10 {
		t.Fatalf("got %d intervals, want >= 10 (retired %d)", len(ivs), c.Stats.Retired)
	}
	var instrs, cycles, flushes uint64
	for i, iv := range ivs {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
		if iv.Instructions == 0 || iv.Cycles == 0 {
			t.Fatalf("interval %d empty: %+v", i, iv)
		}
		if want := float64(iv.Instructions) / float64(iv.Cycles); iv.IPC != want {
			t.Fatalf("interval %d IPC %v, want %v", i, iv.IPC, want)
		}
		if len(iv.Metrics) == 0 {
			t.Fatalf("interval %d carries no registry metrics", i)
		}
		instrs += iv.Instructions
		cycles += iv.Cycles
		flushes += iv.Flushes
	}
	last := ivs[len(ivs)-1]
	if instrs != last.Retired {
		t.Fatalf("interval instruction deltas sum to %d, last sample cumulative %d", instrs, last.Retired)
	}
	if cycles != last.Cycle {
		t.Fatalf("interval cycle deltas sum to %d, last sample at cycle %d", cycles, last.Cycle)
	}
	if flushes == 0 {
		t.Fatal("no flushes sampled across intervals (torture branch must mispredict)")
	}
	if c.Stats.Flushes < flushes {
		t.Fatalf("interval flush sum %d exceeds cumulative %d", flushes, c.Stats.Flushes)
	}
}

// TestTelemetryObservationOnly asserts attaching telemetry does not change
// simulated behavior: cycle-exact identical results with and without it.
func TestTelemetryObservationOnly(t *testing.T) {
	run := func(col *telemetry.Collector) Stats {
		cfg := DefaultConfig()
		cfg.MaxCycles = 10_000_000
		cfg.Telemetry = col
		c := New(cfg, branchTorture(3000))
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Stats
	}
	plain := run(nil)
	traced := run(telemetry.NewCollector(telemetry.Config{
		Sink:           telemetry.NewRing(1024),
		IntervalPeriod: 500,
	}))
	if plain != traced {
		t.Fatalf("telemetry changed simulation:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}
