package pipeline

import (
	"teasim/internal/bpred"
	"teasim/internal/isa"
	"teasim/internal/mem"
)

// predict runs the decoupled branch predictor for one cycle: it walks the
// static code from the stream PC, consults the predictor stack at each
// branch, and emits one fetch block (up to one predicted-taken branch or 32
// instructions) into the fetch queue.
func (c *Core) predict() {
	if c.streamStalled || c.Cycle < c.streamResumeAt || c.fetchQ.len() >= c.Cfg.FetchQueueSize {
		return
	}
	if c.dec != nil {
		c.predictDecoded()
		return
	}
	pc := c.streamPC
	blk := c.pool.getBlock()
	blk.StartPC, blk.SeqBase, blk.Cycle = pc, c.seq, c.Cycle
	for blk.Count < c.Cfg.MaxBlockInstrs {
		in := c.Prog.InstAt(pc)
		if in == nil {
			// Off the code segment (wrong path): the stream waits for a
			// redirect. Emit whatever was collected.
			c.streamStalled = true
			break
		}
		seq := c.seq
		c.seq++
		blk.Count++
		if in.Op == isa.OpHalt {
			// The stream ends; the halt itself is fetched and retired.
			c.streamStalled = true
			pc += isa.InstBytes
			break
		}
		if !in.IsBranch() {
			pc += isa.InstBytes
			continue
		}
		rec := c.predictBranch(pc, seq, in, in.IsCondBranch())
		blk.Branches = append(blk.Branches, blockBranch{idx: blk.Count - 1, rec: rec})
		if rec.PredTaken {
			pc = rec.PredTarget
			break // one taken branch per cycle
		}
		pc += isa.InstBytes
	}
	if blk.Count == 0 {
		c.pool.putBlock(blk)
		return
	}
	blk.NextPC = pc
	c.streamPC = pc
	c.fetchQ.push(blk)
	c.comp.OnBlock(blk)
}

// predictDecoded is predict()'s fast path over the decoded-block cache: the
// NextBr index jumps straight-line runs in O(1) instead of touching every
// instruction, and branch/halt handling replays the cached templates. The
// emitted blocks, records, and stream state are bit-identical to the
// per-instruction walk.
func (c *Core) predictDecoded() {
	dec := c.dec
	pc := c.streamPC
	blk := c.pool.getBlock()
	blk.StartPC, blk.SeqBase, blk.Cycle = pc, c.seq, c.Cycle
	if idx, ok := dec.Index(pc); ok {
		blk.decIdx = int32(idx)
	} else {
		blk.decIdx = -1 // off-segment: the loop below emits nothing
	}
	for blk.Count < c.Cfg.MaxBlockInstrs {
		idx, ok := dec.Index(pc)
		if !ok {
			// Off the code segment (wrong path): the stream waits for a
			// redirect. Emit whatever was collected.
			c.streamStalled = true
			break
		}
		// Consume the straight-line run up to the next branch/halt at once.
		if run := int(dec.NextBr[idx]) - idx; run > 0 {
			if left := c.Cfg.MaxBlockInstrs - blk.Count; run >= left {
				// The block caps inside the run; no stall, stream continues.
				blk.Count += left
				c.seq += uint64(left)
				pc += uint64(left) * isa.InstBytes
				break
			}
			blk.Count += run
			c.seq += uint64(run)
			pc += uint64(run) * isa.InstBytes
			idx += run
		}
		t := &dec.Tmpl[idx]
		seq := c.seq
		c.seq++
		blk.Count++
		if t.IsHalt {
			// The stream ends; the halt itself is fetched and retired.
			c.streamStalled = true
			pc += isa.InstBytes
			break
		}
		rec := c.predictBranch(pc, seq, t.In, t.IsCond)
		blk.Branches = append(blk.Branches, blockBranch{idx: blk.Count - 1, rec: rec})
		if rec.PredTaken {
			pc = rec.PredTarget
			break // one taken branch per cycle
		}
		pc += isa.InstBytes
	}
	if blk.Count == 0 {
		c.pool.putBlock(blk)
		return
	}
	blk.NextPC = pc
	c.streamPC = pc
	c.fetchQ.push(blk)
	c.comp.OnBlock(blk)
}

// predictBranch consults the predictor stack (and any companion override) for
// the branch at pc and pushes its in-flight record. Shared by both predict
// paths so the prediction/override logic cannot diverge between them.
func (c *Core) predictBranch(pc, seq uint64, in *isa.Inst, isCond bool) *BranchRec {
	rec := c.pool.getRec()
	rec.Seq, rec.PC, rec.In = seq, pc, in
	c.BP.PredictInto(pc, &rec.Pred)
	pred := &rec.Pred
	if isCond {
		if ovTaken, ok := c.comp.OverridePrediction(pc, seq); ok {
			switch {
			case pred.BTBHit && pred.Kind == bpred.KindCond:
				c.BP.ForceConditional(pred, ovTaken)
				rec.Precomputed = true
				rec.PreTaken = ovTaken
				rec.PreTarget = pred.Target
				rec.PreCycle = c.Cycle
			case !pred.BTBHit && !ovTaken:
				// The implicit fall-through already agrees.
				rec.Precomputed = true
				rec.PreTaken = false
				rec.PreCycle = c.Cycle
			default:
				// A taken override without a BTB target cannot redirect.
			}
		}
	}
	rec.PredTaken = pred.BTBHit && pred.Taken
	if rec.PredTaken {
		rec.PredTarget = pred.Target
		rec.PredNext = pred.Target
	} else {
		rec.PredNext = pc + isa.InstBytes
	}
	rec.OrigNext = rec.PredNext
	c.recList.push(rec)
	return rec
}

// fetch consumes fetch-queue blocks through the I-cache: up to FrontWidth
// instructions from up to FetchLinesPerCyc distinct cache lines per cycle.
func (c *Core) fetch() {
	if c.Cycle < c.fetchStallTil {
		c.Stats.FetchStallICM++
		return
	}
	width := c.Cfg.FrontWidth
	if room := c.Cfg.FrontQCap - c.frontQ.len(); room < width {
		if room <= 0 {
			return // decode/uop queue full: backpressure
		}
		width = room
	}
	var lines [4]uint64
	nLines := 0
	for width > 0 {
		if c.fetchQ.len() == 0 {
			c.Stats.EmptyFetchQ++
			return
		}
		blk := c.fetchQ.front()
		if c.mainOff >= blk.Count {
			if c.teaActive && c.teaBlk == 0 && c.teaOff < blk.Count && c.teaPopWait < 8 {
				// Give an active companion a few cycles to finish the head
				// block before recycling it; otherwise its register
				// synchronization would be lost mid-stream.
				c.teaPopWait++
				return
			}
			c.popBlock()
			continue
		}
		pc := blk.instPC(c.mainOff)
		line := mem.LineOf(pc)
		known := false
		for _, l := range lines[:nLines] {
			if l == line {
				known = true
				break
			}
		}
		if !known {
			if nLines >= c.Cfg.FetchLinesPerCyc {
				return // line bandwidth exhausted this cycle
			}
			res, ok := c.Hier.Fetch(pc, c.Cycle)
			if !ok {
				return // I-cache MSHRs full; retry next cycle
			}
			hitReady := c.Cycle + 4 // L1I hit latency is folded into the frontend depth
			if res.ReadyAt > hitReady {
				c.fetchStallTil = res.ReadyAt - 4
				return
			}
			lines[nLines] = line
			nLines++
		}

		u := c.pool.getUop()
		u.Seq = blk.SeqBase + uint64(c.mainOff)
		u.PC = pc
		if c.dec != nil {
			// Decode via the predecoded template: class and dest-validity
			// were cracked once at Predecode time.
			t := &c.dec.Tmpl[int(blk.decIdx)+c.mainOff]
			u.In, u.Cls, u.destValid = t.In, t.Cls, t.DestValid
		} else {
			in := c.Prog.InstAt(pc)
			u.In = in
			u.Cls = in.Class()
			u.destValid = in.HasDest() && in.Rd != isa.R0
		}
		u.FetchCycle = c.Cycle
		if u.isBranch() {
			for _, bb := range blk.Branches {
				if bb.idx == c.mainOff {
					u.Rec = bb.rec
					break
				}
			}
			// BTB-miss direct unconditional branches are re-steered at
			// decode: the target is in the instruction bytes.
			if u.Rec != nil && !u.Rec.Pred.BTBHit &&
				(u.In.Op == isa.OpJmp || u.In.Op == isa.OpCall) {
				c.pendingRedirects = append(c.pendingRedirects, pendingRedirect{
					atCycle: c.Cycle + 2,
					seq:     u.Rec.Seq,
					pc:      u.PC,
					target:  uint64(u.In.Imm),
				})
			}
		}
		if blk.TEAMaskValid {
			u.MaskSeen = true
			u.ChainMarked = blk.TEAMask&(1<<uint(c.mainOff)) != 0
		}
		c.frontQ.push(u)
		c.comp.OnMainFetch(u)
		c.Stats.FetchedUops++
		c.mainOff++
		width--
	}
}

// popBlock removes the fully fetched head block, shifting the TEA cursor.
// If the companion cursor was inside (or at) the popped block, the main
// thread has overtaken it: the companion's register synchronization point no
// longer matches the stream, and it must re-sync at the next flush.
func (c *Core) popBlock() {
	c.pool.putBlock(c.fetchQ.popFront())
	c.mainOff = 0
	c.teaPopWait = 0
	if c.teaBlk > 0 {
		c.teaBlk--
	} else {
		c.teaOff = 0
		c.teaCursorInvalid = true
	}
}

// TEACursorInvalid reports (and clears) whether the main thread consumed
// blocks past the companion cursor since the last reset.
func (c *Core) TEACursorInvalid() bool {
	v := c.teaCursorInvalid
	return v
}

// processRedirects applies decode-time re-steers for direct branches the
// BTB missed. The redirect is skipped if a flush already removed the branch
// or an earlier redirect/flush already fixed the stream.
func (c *Core) processRedirects() {
	kept := c.pendingRedirects[:0]
	for _, pr := range c.pendingRedirects {
		if pr.atCycle > c.Cycle {
			kept = append(kept, pr)
			continue
		}
		rec := c.Branch(pr.seq)
		if rec == nil || rec.PC != pr.pc || rec.PredTaken {
			continue // squashed, or already corrected
		}
		c.Stats.ResteerDecode++
		c.flushAfter(rec.Seq, pr.target, rec, true, pr.target)
	}
	c.pendingRedirects = kept
}

// TEANextBlockPeek returns the block at the companion cursor without
// consistency checks (helper after advancing).
func (c *Core) TEANextBlockPeek() *FetchBlock {
	if c.teaBlk >= c.fetchQ.len() {
		return nil
	}
	return c.fetchQ.at(c.teaBlk)
}

// TEACursor returns the companion's current block and offset.
func (c *Core) TEACursor() (blk *FetchBlock, off int) {
	if c.teaBlk >= c.fetchQ.len() {
		return nil, 0
	}
	return c.fetchQ.at(c.teaBlk), c.teaOff
}

// TEASetOffset moves the companion's intra-block offset.
func (c *Core) TEASetOffset(off int) { c.teaOff = off }

func (c *Core) teaAdvanceBlock() {
	c.teaBlk++
	c.teaOff = 0
}

// TEAAdvanceBlock moves the companion cursor to the next block.
func (c *Core) TEAAdvanceBlock() { c.teaAdvanceBlock() }

// TEALeadBlocks reports how many blocks the companion cursor is ahead of
// the main thread's fetch position (the shadow-fetch-queue occupancy).
func (c *Core) TEALeadBlocks() int { return c.teaBlk }

// TEAResetCursor moves the companion cursor to the end of the fetch queue
// (used when the companion restarts: it picks up the newest stream).
func (c *Core) TEAResetCursor() {
	c.teaBlk = c.fetchQ.len()
	c.teaOff = 0
	c.teaCursorInvalid = false
}
