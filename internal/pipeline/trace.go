package pipeline

import (
	"fmt"
	"io"
)

// Tracing: when Config.TraceW is set, the core emits a compact text trace
// of retirement, flush, and companion events between TraceStart and
// TraceEnd (cycles). Intended for debugging and for the examples — the
// volume is one line per event, so keep windows small.
//
//	cfg.TraceW = os.Stdout
//	cfg.TraceStart, cfg.TraceEnd = 1000, 1200

// traceOn reports whether the current cycle is inside the trace window.
func (c *Core) traceOn() bool {
	return c.Cfg.TraceW != nil && c.Cycle >= c.Cfg.TraceStart &&
		(c.Cfg.TraceEnd == 0 || c.Cycle <= c.Cfg.TraceEnd)
}

func (c *Core) tracef(format string, args ...any) {
	fmt.Fprintf(c.Cfg.TraceW, "[%8d] ", c.Cycle)
	fmt.Fprintf(c.Cfg.TraceW, format, args...)
	io.WriteString(c.Cfg.TraceW, "\n")
}

// traceRetire logs one retired instruction.
func (c *Core) traceRetire(u *Uop) {
	if !c.traceOn() {
		return
	}
	switch {
	case u.isBranch():
		out := "NT"
		if u.Taken {
			out = fmt.Sprintf("T->%#x", u.Target)
		}
		mark := ""
		if u.Rec != nil && u.Rec.WasMispred {
			mark = " MISPRED"
			if u.Rec.Precomputed && u.Rec.PreFlushed {
				mark = " MISPRED(early-flushed)"
			}
		}
		c.tracef("retire seq=%d pc=%#x %s %s%s", u.Seq, u.PC, u.In, out, mark)
	case u.isLoad() || u.isStore():
		c.tracef("retire seq=%d pc=%#x %s addr=%#x", u.Seq, u.PC, u.In, u.Addr)
	default:
		c.tracef("retire seq=%d pc=%#x %s", u.Seq, u.PC, u.In)
	}
}

// traceFlush logs a pipeline flush.
func (c *Core) traceFlush(seq uint64, redirect uint64, early bool) {
	if !c.traceOn() {
		return
	}
	kind := "flush"
	if early {
		kind = "early-flush"
	}
	c.tracef("%s at seq=%d redirect=%#x (rob=%d rs=%d fq=%d)",
		kind, seq, redirect, c.rob.len(), len(c.rs), c.fetchQ.len())
}
