package pipeline

// queue is a FIFO over a reusable backing slice: popping advances a head
// index and the buffer is compacted in place once half-consumed, so steady-
// state operation performs no allocation (unlike the `q = q[1:]` pattern,
// which abandons a backing array every cycle around).
type queue[T any] struct {
	buf  []T
	head int
}

func (q *queue[T]) len() int { return len(q.buf) - q.head }

func (q *queue[T]) at(i int) T { return q.buf[q.head+i] }

func (q *queue[T]) front() T { return q.buf[q.head] }

func (q *queue[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *queue[T]) popFront() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release the reference for reuse safety
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clearTail(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// truncFrom drops elements at logical index >= i (tail truncation).
func (q *queue[T]) truncFrom(i int) {
	clearTail(q.buf[q.head+i:])
	q.buf = q.buf[:q.head+i]
}

// clear empties the queue, retaining capacity.
func (q *queue[T]) clear() {
	clearTail(q.buf[q.head:])
	q.buf = q.buf[:0]
	q.head = 0
}

func clearTail[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}
