package pipeline

import "math/bits"

// Bitset scheduler: the fast-path implementation of the event-driven
// wakeup/select machinery in sched.go (active unless Cfg.NoBitsetSched; the
// two are bit-identical, enforced by the fast-path equivalence suite).
//
// RS residencies live in fixed slots of a flat array. A free-slot bitmap
// allocated with bits.TrailingZeros64 replaces pointer-chasing list
// membership; every reference to a residency is a packed 64-bit word
// (rsStamp<<16 | slot), so
//
//   - liveness is one load: slots[slot].stamp == ref>>16 — a freed or
//     recycled slot has a different (or zero) stamp, exactly the stale-ref
//     guard the rsRef path gets from (u.rsStamp, u.InRS);
//   - age order is numeric order: stamps are monotone, so sorting packed
//     refs ascending IS the RS-insertion-order sort selectReady must
//     preserve. Waiter-list and bitmap iteration order are free to differ
//     from the reference path because the final candidate order comes from
//     this sort alone.
//
// Selection skips the per-cycle PRF.Ready revalidation for main-thread
// entries: main readiness is monotonic. A main uop's source register cannot
// be freed while the consumer sits in the RS — the next writer of that
// architectural register is younger (flushes squash consumers together with
// producers, and the previous mapping is freed only when the younger writer
// retires, which in-order retirement forbids before the older consumer
// leaves). Only companion (TEA) entries can observe a ready register go
// unready again — their producer can be squashed and the register recycled
// under them — so only they revalidate, exactly like the reference path's
// migration back to a waiter list. Paranoia mode re-asserts the monotonicity
// claim every cycle (checkScheduler).

// schedSlot is one RS residency in the bitset scheduler.
type schedSlot struct {
	u          *Uop
	stamp      uint64 // == u.rsStamp while the slot is live; 0 when free
	prs1, prs2 uint16
	tea        bool
	load       bool // main-thread load (parkable on an SQ-blocked verdict)
}

// packed waiter/ready reference layout.
const (
	slotBits = 16
	slotMask = 1<<slotBits - 1
	// maxSlots bounds the slot space so a packed ref's stamp and slot never
	// collide. Stamps get the remaining 48 bits: one insertion per simulated
	// cycle for ~89 years of 100GHz simulation — not a practical limit.
	maxSlots = 1 << slotBits
)

// initSched sizes the slot array and per-register waiter lists. Slots cover
// the worst-case combined RS occupancy (main partition + a dedicated
// companion engine's reservation), rounded up to whole bitmap words; the
// array grows on demand if a configuration exceeds the estimate.
func (c *Core) initSched(nPR int) {
	n := (c.Cfg.RSSize + 256 + 63) &^ 63
	c.slots = make([]schedSlot, n)
	c.slotFree = make([]uint64, n/64)
	for i := range c.slotFree {
		c.slotFree[i] = ^uint64(0)
	}
	// Waiter lists get a small capacity each, carved from one backing array;
	// the per-list slices keep whatever capacity they grow to for the life
	// of the core.
	const wcap = 4
	c.pwaiters = make([][]uint64, nPR)
	backing := make([]uint64, nPR*wcap)
	for i := range c.pwaiters {
		c.pwaiters[i] = backing[i*wcap : i*wcap : (i+1)*wcap]
	}
	c.readyList = make([]uint64, 0, 256)
	c.teaAgeP = make([]uint64, 0, 256)
	c.candScratch = make([]*Uop, 0, 64)
	c.complScratch = make([]*Uop, 0, 64)
	if c.split {
		c.teaReadyList = make([]uint64, 0, 64)
		c.teaCandScratch = make([]*Uop, 0, 32)
	}
}

// allocSlot takes the lowest free slot (pure simulator bookkeeping: slot
// numbers never influence scheduling decisions, so lowest-first is safe —
// unlike the PRF free list, whose LIFO order is architecturally observable;
// see DESIGN.md §12).
func (c *Core) allocSlot() int {
	for w, word := range c.slotFree {
		if word != 0 {
			b := bits.TrailingZeros64(word)
			c.slotFree[w] = word &^ (1 << uint(b))
			return w<<6 | b
		}
	}
	base := len(c.slots)
	if base+64 > maxSlots {
		panic("pipeline: bitset scheduler slot space exhausted")
	}
	c.slots = append(c.slots, make([]schedSlot, 64)...)
	c.slotFree = append(c.slotFree, ^uint64(0)&^1)
	return base
}

// freeSlot releases a residency's slot. Zeroing the stamp kills every packed
// reference still pointing at it.
func (c *Core) freeSlot(u *Uop) {
	s := int(u.rsSlot)
	c.slots[s] = schedSlot{}
	c.slotFree[s>>6] |= 1 << uint(s&63)
}

// insertRSBitset is insertRS's registration half for the bitset scheduler
// (stamping and the rs/rsStamps bookkeeping happen in the shared prefix).
func (c *Core) insertRSBitset(u *Uop) {
	slot := c.allocSlot()
	u.rsSlot = int32(slot)
	c.slots[slot] = schedSlot{u: u, stamp: u.rsStamp, prs1: u.Prs1, prs2: u.Prs2,
		tea: u.TEA, load: !u.TEA && u.isLoad()}
	ref := u.rsStamp<<slotBits | uint64(slot)
	if u.TEA {
		c.teaAgeP = append(c.teaAgeP, ref)
	}
	if !c.PRF.Ready[u.Prs1] {
		c.pwaiters[u.Prs1] = append(c.pwaiters[u.Prs1], ref)
	} else if !c.PRF.Ready[u.Prs2] {
		c.pwaiters[u.Prs2] = append(c.pwaiters[u.Prs2], ref)
	} else if u.TEA && c.split {
		c.teaReadyList = append(c.teaReadyList, ref)
	} else {
		c.readyList = append(c.readyList, ref)
	}
}

// wakeWaitersBitset re-homes or readies every entry waiting on p. With the
// split-ready fast path, companion entries ready up onto their own list;
// which list a ref lands on never affects results because each list is
// stamp-sorted before use and execute issues the two groups in the same
// relative order the filtered shared-list passes did.
func (c *Core) wakeWaitersBitset(p uint16) {
	ws := c.pwaiters[p]
	if len(ws) == 0 {
		return
	}
	c.pwaiters[p] = ws[:0]
	for _, ref := range ws {
		s := &c.slots[ref&slotMask]
		if s.stamp != ref>>slotBits {
			continue // freed (or recycled) residency
		}
		if !c.PRF.Ready[s.prs1] {
			c.pwaiters[s.prs1] = append(c.pwaiters[s.prs1], ref)
		} else if !c.PRF.Ready[s.prs2] {
			c.pwaiters[s.prs2] = append(c.pwaiters[s.prs2], ref)
		} else if s.tea && c.split {
			c.teaReadyList = append(c.teaReadyList, ref)
		} else {
			c.readyList = append(c.readyList, ref)
		}
	}
}

// selectCandsBitset compacts the ready list in place and returns this
// cycle's candidates in RS-insertion order. Only companion entries
// revalidate readiness (see the monotonicity argument above). The list
// stays sorted across cycles: survivors of the previously sorted prefix are
// already ordered, so only refs appended since the last select (wakeups,
// fresh inserts) take insertion-sort steps.
//
// Main loads with a memoized SQ-blocked verdict are parked on a side list
// instead of re-selected: issueLoad would fast-out on them without touching
// any state, so their absence from the candidate list is unobservable. The
// whole parked list returns to readyList the moment the store epoch moves
// (the memo key), and the stamp sort restores their age position. Within a
// tick, the only epoch bumps after select (a rename-stage store push, a
// decode-resteer flush) cannot unblock a surviving parked load: new stores
// are younger than it, and a flush old enough to remove its blocking store
// squashes the load itself.
func (c *Core) selectCandsBitset() []*Uop {
	if len(c.sqParked) > 0 && c.parkedEpoch != c.storeEpoch {
		c.readyList = append(c.readyList, c.sqParked...)
		c.sqParked = c.sqParked[:0]
	}
	if len(c.memParked) > 0 && c.Cycle >= c.memParkedWake {
		// The earliest parked wake is due: re-admit the whole list. Entries
		// with later wakes re-park below without probing anything.
		c.readyList = append(c.readyList, c.memParked...)
		c.memParked = c.memParked[:0]
		c.memParkedWake = 0
	}
	q := c.readyList[:0]
	cands := c.candScratch[:0]
	sorted := 0
	for i, ref := range c.readyList {
		s := &c.slots[ref&slotMask]
		if s.stamp != ref>>slotBits {
			continue
		}
		if s.load {
			u := s.u
			if u.sqBlocked && u.sqEpoch == c.storeEpoch {
				c.sqParked = append(c.sqParked, ref)
				c.parkedEpoch = c.storeEpoch
				continue
			}
			if u.memWake > c.Cycle {
				// Guaranteed-rejected MSHR retry (see issueLoad): tryIssue
				// would consume no port and mutate nothing, so dropping the
				// entry from the candidate list is unobservable.
				c.memParked = append(c.memParked, ref)
				if c.memParkedWake == 0 || u.memWake < c.memParkedWake {
					c.memParkedWake = u.memWake
				}
				continue
			}
		}
		if s.tea {
			if !c.PRF.Ready[s.prs1] {
				c.pwaiters[s.prs1] = append(c.pwaiters[s.prs1], ref)
				continue
			}
			if !c.PRF.Ready[s.prs2] {
				c.pwaiters[s.prs2] = append(c.pwaiters[s.prs2], ref)
				continue
			}
		}
		q = append(q, ref)
		cands = append(cands, s.u)
		if i < c.readySorted {
			sorted = len(q)
		}
	}
	// Tandem insertion sort: cands mirrors q's final order without a second
	// pass over the slot array.
	start := sorted
	if start == 0 {
		start = 1
	}
	for i := start; i < len(q); i++ {
		for j := i; j > 0 && q[j] < q[j-1]; j-- {
			q[j], q[j-1] = q[j-1], q[j]
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	c.readyList = q
	c.readySorted = len(q)
	c.candScratch = cands
	return cands
}

// selectTEACandsBitset is selectCandsBitset for the companion's own ready
// list (split-ready fast path): the same compact + tandem-stamp-sort
// contract, minus the load parking (s.load is main-only) and with every
// entry revalidating readiness — a companion source register can be
// recycled under it (see the monotonicity argument atop this file).
func (c *Core) selectTEACandsBitset() []*Uop {
	q := c.teaReadyList[:0]
	cands := c.teaCandScratch[:0]
	sorted := 0
	for i, ref := range c.teaReadyList {
		s := &c.slots[ref&slotMask]
		if s.stamp != ref>>slotBits {
			continue
		}
		if !c.PRF.Ready[s.prs1] {
			c.pwaiters[s.prs1] = append(c.pwaiters[s.prs1], ref)
			continue
		}
		if !c.PRF.Ready[s.prs2] {
			c.pwaiters[s.prs2] = append(c.pwaiters[s.prs2], ref)
			continue
		}
		q = append(q, ref)
		cands = append(cands, s.u)
		if i < c.teaReadySorted {
			sorted = len(q)
		}
	}
	start := sorted
	if start == 0 {
		start = 1
	}
	for i := start; i < len(q); i++ {
		for j := i; j > 0 && q[j] < q[j-1]; j-- {
			q[j], q[j-1] = q[j-1], q[j]
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	c.teaReadyList = q
	c.teaReadySorted = len(q)
	c.teaCandScratch = cands
	return cands
}

// sweepCompanionTimeoutsBitset mirrors sweepCompanionTimeouts on the packed
// age list.
func (c *Core) sweepCompanionTimeoutsBitset() {
	for c.teaAgePHead < len(c.teaAgeP) {
		ref := c.teaAgeP[c.teaAgePHead]
		s := &c.slots[ref&slotMask]
		if s.stamp == ref>>slotBits {
			u := s.u
			if c.Cycle-u.FetchCycle <= companionRSTimeout {
				break
			}
			u.Squashed = true
			u.InRS = false
			c.freeSlot(u)
			c.rsTEACount--
			c.comp.UopSquashed(u)
		}
		c.teaAgePHead++
	}
	if c.teaAgePHead == len(c.teaAgeP) {
		c.teaAgeP, c.teaAgePHead = c.teaAgeP[:0], 0
	}
}

// companionTimeoutHorizonBitset mirrors companionTimeoutHorizon.
func (c *Core) companionTimeoutHorizonBitset() uint64 {
	for i := c.teaAgePHead; i < len(c.teaAgeP); i++ {
		ref := c.teaAgeP[i]
		s := &c.slots[ref&slotMask]
		if s.stamp == ref>>slotBits {
			return s.u.FetchCycle + companionRSTimeout + 1
		}
	}
	return 0
}

// complNextWake returns the earliest outstanding completion cycle strictly
// after the current one, scanning the occupancy bitmap circularly from the
// current ring slot (bitset path's replacement for the heap top). The bool
// is false when a completion is due at the current cycle (drains on the
// next tick — the machine is not idle).
func (c *Core) complNextWake() (uint64, bool) {
	cur := int(c.Cycle % completionRing)
	if c.complMask[cur>>6]>>(uint(cur)&63)&1 != 0 {
		return 0, false
	}
	// First word: bits strictly above cur.
	w := cur >> 6
	if word := c.complMask[w] &^ (1<<(uint(cur)&63+1) - 1); word != 0 {
		d := w<<6 + bits.TrailingZeros64(word) - cur
		return c.Cycle + uint64(d), true
	}
	const words = completionRing / 64
	for i := 1; i <= words; i++ {
		wi := (w + i) % words
		if word := c.complMask[wi]; word != 0 {
			slot := wi<<6 + bits.TrailingZeros64(word)
			d := slot - cur
			if d <= 0 {
				d += completionRing
			}
			return c.Cycle + uint64(d), true
		}
	}
	return 0, true // nothing outstanding
}
