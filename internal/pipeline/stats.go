package pipeline

// Stats collects the core's performance counters. All counts are for the
// committed (retired) instruction stream unless noted.
type Stats struct {
	Cycles  uint64
	Retired uint64

	// Branch outcomes at retirement (relative to the ORIGINAL prediction, so
	// early TEA flushes still count the underlying misprediction — they just
	// shrink its penalty).
	CondBranches    uint64
	CondMispredicts uint64
	IndBranches     uint64 // indirect jumps + calls + returns
	IndMispredicts  uint64
	Flushes         uint64 // execute-time misprediction flushes issued
	EarlyFlushes    uint64 // flushes issued by the companion (TEA)
	ResteerDecode   uint64 // BTB-miss direct-branch decode re-steers
	OrderFlushes    uint64

	// Fetch-side.
	FetchedUops   uint64 // main-thread instructions fetched (incl. wrong path)
	FetchStallICM uint64 // cycles fetch stalled on I-cache misses
	EmptyFetchQ   uint64 // cycles fetch had no block available

	// Backend.
	ExecutedUops   uint64 // main-thread uops executed (incl. wrong path)
	CompanionUops  uint64 // companion (TEA) uops executed
	LoadsExecuted  uint64
	StoreForwards  uint64
	RetireStallROB uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MPKI returns total (direction + target) mispredictions per kilo-instruction.
func (s *Stats) MPKI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.CondMispredicts+s.IndMispredicts) * 1000 / float64(s.Retired)
}
