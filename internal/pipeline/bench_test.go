package pipeline

import (
	"testing"

	"teasim/internal/asm"
)

// BenchmarkCorePerCycle measures the simulator's per-cycle cost on a
// branchy workload (simulation throughput, not simulated performance).
func BenchmarkCorePerCycle(b *testing.B) {
	bb := asm.NewBuilder()
	buildTorture(bb, 42, 24, 1_000_000_000) // effectively unbounded
	p := bb.MustBuild()
	cfg := DefaultConfig()
	c := New(cfg, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if c.Stats.Retired > 0 {
		b.ReportMetric(float64(c.Stats.Retired)/float64(c.Stats.Cycles), "IPC")
	}
}
