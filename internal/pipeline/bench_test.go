package pipeline

import (
	"runtime"
	"testing"

	"teasim/internal/asm"
	"teasim/internal/telemetry"
)

// BenchmarkCorePerCycle measures the simulator's per-cycle cost on a
// branchy workload (simulation throughput, not simulated performance).
// allocs/kinstr is the allocation-regression tripwire for the pipeline hot
// path: steady-state ticking should run entirely out of the object pools.
// The null-sink telemetry collector is attached so the tripwire also covers
// the interval-sampling path when nobody is listening.
func BenchmarkCorePerCycle(b *testing.B) {
	bb := asm.NewBuilder()
	buildTorture(bb, 42, 24, 1_000_000_000) // effectively unbounded
	p := bb.MustBuild()
	cfg := DefaultConfig()
	cfg.Telemetry = telemetry.NewCollector(telemetry.Config{Sink: telemetry.NullSink{}})
	c := New(cfg, p)
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if c.Stats.Retired > 0 {
		b.ReportMetric(float64(c.Stats.Retired)/float64(c.Stats.Cycles), "IPC")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/(float64(c.Stats.Retired)/1000), "allocs/kinstr")
	}
}
