package pipeline

import (
	"fmt"

	"teasim/internal/bpred"
	"teasim/internal/emu"
	"teasim/internal/isa"
	"teasim/internal/mem"
	"teasim/internal/telemetry"
)

// Core is the out-of-order core simulator.
type Core struct {
	Cfg  Config
	Prog *isa.Program
	Mem  *mem.Image // committed architectural memory
	Hier *mem.Hierarchy
	BP   *bpred.Predictor

	Cycle uint64
	seq   uint64 // next sequence number to assign

	// Decoupled BP stream state.
	streamPC         uint64
	streamStalled    bool
	fetchQ           queue[*FetchBlock]
	mainOff          int // instruction offset into fetchQ[0] for main fetch
	teaBlk           int // companion cursor: block index into fetchQ
	teaOff           int
	teaCursorInvalid bool
	teaActive        bool
	teaPopWait       int
	fetchStallTil    uint64
	streamResumeAt   uint64

	// In-flight branch queue: every branch the BP has emitted, in age
	// (= ascending sequence) order. Retirement pops the head, flushes
	// truncate the tail, and point lookups binary-search by Seq — no
	// per-branch map traffic on the simulation hot path.
	recList queue[*BranchRec]

	// Frontend pipe: fetched uops waiting to become rename-ready.
	frontQ queue[*Uop]

	// Rename state.
	rat [isa.NumRegs]uint16
	PRF *PRF
	rob queue[*Uop]

	// Backend.
	rs          []*Uop
	cands       []*Uop // scratch for the scheduler
	rsMainCount int
	rsTEACount  int
	mainRSCap   int
	lqCount     int
	sqCount     int
	sq          queue[*Uop] // stores in program order, executed ⇒ address known
	completions [completionRing][]*Uop

	pendingRedirects []pendingRedirect

	// Issue-slot sharing between companion and main rename (per cycle).
	issueSlotsUsed int

	comp         Companion
	compAttached bool
	teaRSCap     int
	teaPRBase    int
	teaPRCount   int

	// Co-simulation.
	gold *emu.Machine

	pool pools

	// Telemetry (nil = disabled; see Config.Telemetry).
	telem      *telemetry.Collector
	ivLast     ivSnapshot
	earlyFlush bool // inside EarlyFlush: flushAfter emits EvEarlyFlush

	halted bool

	Stats Stats
}

type pendingRedirect struct {
	atCycle uint64
	seq     uint64
	pc      uint64
	target  uint64
}

// New builds a core for prog with the given configuration. A fresh memory
// image is initialized from the program's data segments.
func New(cfg Config, prog *isa.Program) *Core {
	teaRegs := 192
	c := &Core{
		Cfg:        cfg,
		Prog:       prog,
		Mem:        mem.NewImage(),
		Hier:       mem.NewHierarchy(mem.DefaultHierarchyConfig()),
		BP:         bpred.New(),
		streamPC:   prog.Entry,
		PRF:        NewPRF(cfg.NumPRegs, teaRegs),
		mainRSCap:  cfg.RSSize,
		teaPRBase:  cfg.NumPRegs,
		teaPRCount: teaRegs,
		comp:       nopCompanion{},
	}
	for _, seg := range prog.Data {
		c.Mem.WriteBytes(seg.Addr, seg.Bytes)
	}
	for i := 0; i < isa.NumRegs; i++ {
		c.rat[i] = uint16(i)
	}
	if cfg.CoSim {
		c.gold = emu.NewWithMem(prog, c.Mem.Clone())
	}
	if cfg.Telemetry != nil {
		c.telem = cfg.Telemetry
		c.telemRegister()
	}
	return c
}

// Attach connects a precomputation companion (TEA thread or runahead).
func (c *Core) Attach(comp Companion) {
	c.comp = comp
	c.compAttached = true
}

// SetPartition reserves (or releases) backend resources for the companion:
// rsReserve RS entries are carved out of the main thread's share while the
// companion is active (paper §IV-E: 192 RS + 192 PRs).
func (c *Core) SetPartition(active bool, rsReserve, prReserve int) {
	c.teaActive = active
	if c.Cfg.CompanionDedicated {
		// Dedicated engine (§V-D): companion resources are additional; the
		// main thread keeps its full share.
		c.mainRSCap = c.Cfg.RSSize
		c.PRF.SetMainCap(c.Cfg.NumPRegs)
		if active {
			c.teaRSCap = rsReserve
		} else {
			c.teaRSCap = 0
		}
		return
	}
	if active {
		c.mainRSCap = c.Cfg.RSSize - rsReserve
		c.PRF.SetMainCap(c.Cfg.NumPRegs - prReserve)
		c.teaRSCap = rsReserve
	} else {
		c.mainRSCap = c.Cfg.RSSize
		c.PRF.SetMainCap(c.Cfg.NumPRegs)
		c.teaRSCap = 0
	}
}

// Halted reports whether the program's halt instruction has retired.
func (c *Core) Halted() bool { return c.halted }

// Telemetry returns the attached collector (nil when telemetry is off) so
// companions can register their own metrics on its registry.
func (c *Core) Telemetry() *telemetry.Collector { return c.telem }

// Seq returns the next unassigned sequence number (diagnostics).
func (c *Core) Seq() uint64 { return c.seq }

// Branch returns the in-flight branch record for seq, if present. The
// record list is seq-ordered, so the lookup is a binary search.
func (c *Core) Branch(seq uint64) *BranchRec {
	lo, hi := 0, c.recList.len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.recList.at(mid).Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.recList.len() {
		if r := c.recList.at(lo); r.Seq == seq {
			return r
		}
	}
	return nil
}

// RATSnapshot copies the current speculative RAT (for the TEA shadow RAT).
func (c *Core) RATSnapshot() [isa.NumRegs]uint16 { return c.rat }

// EarlyFlush issues a companion-triggered early misprediction flush for the
// in-flight branch rec (§IV-F): because the companion's branch carries the
// same timestamp as its main-thread counterpart, the ordinary flush
// mechanism corrects the stream wherever the branch currently is — backend,
// frontend (partial flush), or still in the fetch queue.
func (c *Core) EarlyFlush(rec *BranchRec, taken bool, target uint64) {
	next := target
	if !taken {
		next = rec.PC + isa.InstBytes
	}
	c.Stats.EarlyFlushes++
	c.earlyFlush = true
	c.flushAfter(rec.Seq, next, rec, taken, target)
	c.earlyFlush = false
}

// Run executes until halt, the instruction budget, or the cycle limit.
func (c *Core) Run() error { return c.RunChecked(0, nil) }

// RunChecked is Run with a cooperative cancellation point: every quantum
// cycles it calls check, and a non-nil return aborts the run with that
// error. quantum 0 (or a nil check) disables checking. The quantum bounds
// cancellation latency without putting a call in the per-cycle loop.
func (c *Core) RunChecked(quantum uint64, check func() error) error {
	if quantum == 0 || check == nil {
		quantum, check = 0, nil
	}
	nextCheck := c.Cycle + quantum
	for !c.halted {
		if err := c.Tick(); err != nil {
			return err
		}
		if c.Cfg.MaxInstructions > 0 && c.Stats.Retired >= c.Cfg.MaxInstructions {
			break
		}
		if c.Cfg.MaxCycles > 0 && c.Cycle >= c.Cfg.MaxCycles {
			return fmt.Errorf("pipeline: cycle limit %d reached at %d retired (possible wedge)",
				c.Cfg.MaxCycles, c.Stats.Retired)
		}
		if quantum != 0 && c.Cycle >= nextCheck {
			if err := check(); err != nil {
				return err
			}
			nextCheck = c.Cycle + quantum
		}
	}
	return nil
}

// Tick advances the core one cycle. Stages run oldest-first so values flow
// one stage per cycle without intra-cycle re-entrancy.
func (c *Core) Tick() error {
	if err := c.retire(); err != nil {
		return err
	}
	c.complete()
	c.execute()
	c.issueSlotsUsed = 0
	c.comp.Tick() // companion fetch/rename: priority access to issue slots
	c.rename()
	c.processRedirects()
	c.fetch()
	c.predict()
	c.Cycle++
	c.Stats.Cycles = c.Cycle
	return nil
}
