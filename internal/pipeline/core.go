package pipeline

import (
	"fmt"

	"teasim/internal/bpred"
	"teasim/internal/emu"
	"teasim/internal/isa"
	"teasim/internal/mem"
	"teasim/internal/telemetry"
)

// Core is the out-of-order core simulator.
type Core struct {
	Cfg  Config
	Prog *isa.Program
	Mem  *mem.Image // committed architectural memory
	Hier *mem.Hierarchy
	BP   *bpred.Predictor

	Cycle uint64
	seq   uint64 // next sequence number to assign

	// Decoupled BP stream state.
	streamPC         uint64
	streamStalled    bool
	fetchQ           queue[*FetchBlock]
	mainOff          int // instruction offset into fetchQ[0] for main fetch
	teaBlk           int // companion cursor: block index into fetchQ
	teaOff           int
	teaCursorInvalid bool
	teaActive        bool
	teaPopWait       int
	fetchStallTil    uint64
	streamResumeAt   uint64

	// In-flight branch queue: every branch the BP has emitted, in age
	// (= ascending sequence) order. Retirement pops the head, flushes
	// truncate the tail, and point lookups binary-search by Seq — no
	// per-branch map traffic on the simulation hot path.
	recList queue[*BranchRec]

	// Frontend pipe: fetched uops waiting to become rename-ready.
	frontQ queue[*Uop]

	// Rename state.
	rat [isa.NumRegs]uint16
	PRF *PRF
	rob queue[*Uop]

	// Backend. rs keeps insertion order for flush walks; it is compacted
	// lazily (see sched.go), so dead entries are tolerated everywhere via
	// the rsStamps guard. Wakeup/select state: waiters holds per-physical-
	// register lists of entries blocked on that register, readyQ the entries
	// whose operands are all ready, teaAge the companion entries in
	// insertion order for the RS-timeout sweep.
	rs          []*Uop
	rsStamps    []uint64 // rsStamps[i] == rs[i].rsStamp while entry i is current
	rsStampCtr  uint64
	readyQ      []rsRef
	waiters     [][]rsRef
	teaAge      []rsRef
	teaAgeHead  int
	rsMainCount int
	rsTEACount  int
	mainRSCap   int

	// Bitset scheduler state (sched_bitset.go; active unless
	// Cfg.NoBitsetSched). Entries live in fixed slots allocated from a
	// free bitmap; waiter lists and the ready list hold packed
	// (stamp<<16|slot) references, so age order is numeric order.
	bitset      bool
	slots       []schedSlot
	slotFree    []uint64
	readyList   []uint64
	readySorted int // prefix of readyList already in stamp order
	pwaiters    [][]uint64
	teaAgeP     []uint64
	teaAgePHead int
	candScratch []*Uop // per-cycle select candidates, reused
	// Split-ready fast path (bitset only; active unless Cfg.NoSplitReady):
	// companion residencies keep their own ready list, so main select never
	// filters TEA refs (or revalidates anything — main readiness is
	// monotonic) and TEA select never walks main refs. execute() consumes
	// the two pre-separated stamp-sorted groups in one pass each.
	split          bool
	teaReadyList   []uint64
	teaReadySorted int // prefix of teaReadyList already in stamp order
	teaCandScratch []*Uop
	// sqParked holds refs of ready main loads whose SQ-disambiguation scan
	// verdict is memoized as "blocked" (see storeEpoch): select skips them
	// entirely and re-admits the whole list when the epoch moves.
	sqParked    []uint64
	parkedEpoch uint64
	// memParked holds refs of ready main loads with a live MSHR-full memo
	// (u.memWake, see issueLoad): select skips them until the earliest memo
	// expires, then re-admits the whole list (late entries re-park).
	memParked     []uint64
	memParkedWake uint64

	lqCount int
	sqCount int
	sq      queue[*Uop] // stores in program order, executed ⇒ address known
	// storeEpoch versions the store-queue disambiguation inputs: it bumps
	// whenever the SQ population changes (rename push, retire pop, flush
	// truncate) or a store's address becomes known (writeback). A load's
	// "blocked" scan verdict is valid while the epoch is unchanged, so
	// blocked loads retry in O(1) instead of rescanning the SQ every cycle.
	storeEpoch uint64
	// complHead holds, per completion-ring slot, an intrusive list (via
	// Uop.complNext) of the uops scheduled to write back at that cycle.
	complHead    [completionRing]*Uop
	complScratch []*Uop // drain buffer, reused each cycle
	// completionsPending counts uops currently scheduled in the completions
	// ring (flushes never remove entries — squashed uops drain through
	// complete()).
	completionsPending int
	// complHeap is a binary min-heap of the scheduled completion cycles of
	// everything in the ring (duplicates allowed). complete() pops entries as
	// their cycle drains, so the top is always the earliest outstanding
	// writeback — the idle-cycle scanner's wake source, replacing a walk over
	// the 16384 ring slots with an O(1) peek. Reference path only: the bitset
	// scheduler replaces it with complMask, a 1-bit-per-slot occupancy bitmap
	// scanned circularly with bits.TrailingZeros64.
	complHeap []uint64
	complMask [completionRing / 64]uint64

	pendingRedirects []pendingRedirect

	// Issue-slot sharing between companion and main rename (per cycle).
	issueSlotsUsed int

	comp         Companion
	compAttached bool
	teaRSCap     int
	teaPRBase    int
	teaPRCount   int

	// Co-simulation.
	gold *emu.Machine

	// dec is the program's predecoded template table (the decoded-block
	// cache; nil when Cfg.NoBlockCache). codeBase/codeEnd bound the code
	// segment for the self-modifying-store assertion.
	dec      *emu.Decoded
	codeBase uint64
	codeEnd  uint64

	pool pools

	// Telemetry (nil = disabled; see Config.Telemetry).
	telem      *telemetry.Collector
	ivLast     ivSnapshot
	earlyFlush bool // inside EarlyFlush: flushAfter emits EvEarlyFlush

	halted bool

	// Paranoia-mode scratch (paranoia.go), reused across checks so the
	// checker allocates nothing in steady state. Nil unless Cfg.Paranoia.
	paranoiaCnt map[*Uop]int
	paranoiaReg []uint8

	Stats Stats

	// Idle-cycle fast-forward metrics (see skip.go). Deliberately NOT part
	// of Stats: Stats must stay bit-identical with skipping on and off.
	IdleSkips         uint64 // fast-forward jumps taken
	IdleCyclesSkipped uint64 // dead cycles never individually ticked
}

type pendingRedirect struct {
	atCycle uint64
	seq     uint64
	pc      uint64
	target  uint64
}

// New builds a core for prog with the given configuration. A fresh memory
// image is initialized from the program's data segments.
func New(cfg Config, prog *isa.Program) *Core {
	if cfg.Mem == (mem.HierarchyConfig{}) {
		cfg.Mem = mem.DefaultHierarchyConfig()
	}
	teaRegs := cfg.CompanionPRegs
	if teaRegs == 0 {
		teaRegs = 192
	}
	bpCfg := cfg.BP
	bpCfg.NoHistRewind = bpCfg.NoHistRewind || cfg.NoHistRewind
	c := &Core{
		Cfg:        cfg,
		Prog:       prog,
		Mem:        mem.NewImage(),
		Hier:       mem.NewHierarchy(cfg.Mem),
		BP:         bpred.NewWithConfig(bpCfg),
		streamPC:   prog.Entry,
		PRF:        NewPRF(cfg.NumPRegs, teaRegs),
		mainRSCap:  cfg.RSSize,
		teaPRBase:  cfg.NumPRegs,
		teaPRCount: teaRegs,
		comp:       nopCompanion{},
		bitset:     !cfg.NoBitsetSched,
		split:      !cfg.NoBitsetSched && !cfg.NoSplitReady,
		storeEpoch: 1,
		codeBase:   prog.CodeBase,
		codeEnd:    prog.CodeEnd(),
	}
	c.waiters = make([][]rsRef, cfg.NumPRegs+teaRegs)
	if c.bitset {
		c.initSched(cfg.NumPRegs + teaRegs)
	}
	if !cfg.NoBlockCache {
		c.dec = emu.Predecode(prog)
	}
	for _, seg := range prog.Data {
		c.Mem.WriteBytes(seg.Addr, seg.Bytes)
	}
	for i := 0; i < isa.NumRegs; i++ {
		c.rat[i] = uint16(i)
	}
	if cfg.CoSim {
		c.gold = emu.NewWithMem(prog, c.Mem.Clone())
	}
	if cfg.Telemetry != nil {
		c.telem = cfg.Telemetry
		c.telemRegister()
	}
	return c
}

// Attach connects a precomputation companion (TEA thread or runahead).
func (c *Core) Attach(comp Companion) {
	c.comp = comp
	c.compAttached = true
}

// SetPartition reserves (or releases) backend resources for the companion:
// rsReserve RS entries are carved out of the main thread's share while the
// companion is active (paper §IV-E: 192 RS + 192 PRs).
func (c *Core) SetPartition(active bool, rsReserve, prReserve int) {
	c.teaActive = active
	if c.Cfg.CompanionDedicated {
		// Dedicated engine (§V-D): companion resources are additional; the
		// main thread keeps its full share.
		c.mainRSCap = c.Cfg.RSSize
		c.PRF.SetMainCap(c.Cfg.NumPRegs)
		if active {
			c.teaRSCap = rsReserve
		} else {
			c.teaRSCap = 0
		}
		return
	}
	if active {
		c.mainRSCap = c.Cfg.RSSize - rsReserve
		c.PRF.SetMainCap(c.Cfg.NumPRegs - prReserve)
		c.teaRSCap = rsReserve
	} else {
		c.mainRSCap = c.Cfg.RSSize
		c.PRF.SetMainCap(c.Cfg.NumPRegs)
		c.teaRSCap = 0
	}
}

// Halted reports whether the program's halt instruction has retired.
func (c *Core) Halted() bool { return c.halted }

// Telemetry returns the attached collector (nil when telemetry is off) so
// companions can register their own metrics on its registry.
func (c *Core) Telemetry() *telemetry.Collector { return c.telem }

// Seq returns the next unassigned sequence number (diagnostics).
func (c *Core) Seq() uint64 { return c.seq }

// Branch returns the in-flight branch record for seq, if present. The
// record list is seq-ordered, so the lookup is a binary search.
func (c *Core) Branch(seq uint64) *BranchRec {
	lo, hi := 0, c.recList.len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.recList.at(mid).Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.recList.len() {
		if r := c.recList.at(lo); r.Seq == seq {
			return r
		}
	}
	return nil
}

// RATSnapshot copies the current speculative RAT (for the TEA shadow RAT).
func (c *Core) RATSnapshot() [isa.NumRegs]uint16 { return c.rat }

// EarlyFlush issues a companion-triggered early misprediction flush for the
// in-flight branch rec (§IV-F): because the companion's branch carries the
// same timestamp as its main-thread counterpart, the ordinary flush
// mechanism corrects the stream wherever the branch currently is — backend,
// frontend (partial flush), or still in the fetch queue.
func (c *Core) EarlyFlush(rec *BranchRec, taken bool, target uint64) {
	next := target
	if !taken {
		next = rec.PC + isa.InstBytes
	}
	c.Stats.EarlyFlushes++
	c.earlyFlush = true
	c.flushAfter(rec.Seq, next, rec, taken, target)
	c.earlyFlush = false
}

// Run executes until halt, the instruction budget, or the cycle limit.
func (c *Core) Run() error { return c.RunChecked(0, nil) }

// RunChecked is Run with a cooperative cancellation point: every quantum
// cycles it calls check, and a non-nil return aborts the run with that
// error. quantum 0 (or a nil check) disables checking. The quantum bounds
// cancellation latency without putting a call in the per-cycle loop.
//
// Unless Cfg.NoIdleSkip is set, the loop fast-forwards over provably dead
// cycles (see skip.go): after a tick that leaves the machine idle, it jumps
// straight to the earliest wake event instead of re-ticking. Jumps are
// clamped to the next check boundary — a single skip can never overshoot
// the quantum, so cancellation latency stays bounded — and to MaxCycles, so
// the wedge detector fires at exactly the cycle a tick-by-tick run would.
func (c *Core) RunChecked(quantum uint64, check func() error) error {
	if quantum == 0 || check == nil {
		quantum, check = 0, nil
	}
	hb := c.Cfg.Heartbeat
	if hb != nil && quantum == 0 {
		// A heartbeat needs periodic boundaries even without a cancellation
		// check: reuse the standard engine quantum with a no-op check so the
		// loop below stays a single shape.
		quantum = 50_000
		check = func() error { return nil }
	}
	skip := !c.Cfg.NoIdleSkip
	nextCheck := c.Cycle + quantum
	// Probe backoff: idleWake is pure overhead on busy cycles, and busy
	// phases are long, so a failed probe skips the next few cycles' probes
	// (exponential, capped low enough that an idle window is entered at
	// most a few cycles late). Deterministic, and skipping fewer cycles
	// never changes results — only how fast they are reached.
	const probeBackoffCap = 8
	probeAt, backoff := c.Cycle, uint64(1)
	for !c.halted {
		if err := c.Tick(); err != nil {
			return err
		}
		if c.Cfg.MaxInstructions > 0 && c.Stats.Retired >= c.Cfg.MaxInstructions {
			break
		}
		if c.Cfg.MaxCycles > 0 && c.Cycle >= c.Cfg.MaxCycles {
			return fmt.Errorf("pipeline: cycle limit %d reached at %d retired (possible wedge)",
				c.Cfg.MaxCycles, c.Stats.Retired)
		}
		if quantum != 0 && c.Cycle >= nextCheck {
			if err := check(); err != nil {
				return err
			}
			if hb != nil {
				hb.Beat(c.Cycle)
			}
			nextCheck = c.Cycle + quantum
		}
		if !skip || c.Cycle < probeAt {
			continue
		}
		wake, idle := c.idleWake()
		if !idle {
			probeAt = c.Cycle + backoff
			if backoff < probeBackoffCap {
				backoff *= 2
			}
			continue
		}
		backoff = 1
		if c.Cfg.MaxCycles > 0 && wake > c.Cfg.MaxCycles {
			wake = c.Cfg.MaxCycles
		}
		if quantum != 0 && wake > nextCheck {
			wake = nextCheck
		}
		if wake <= c.Cycle {
			continue
		}
		c.skipTo(wake)
		// Re-run the post-tick limit/cancellation logic so a clamped jump
		// observes exactly the cycle numbers a tick-by-tick run would.
		if c.Cfg.MaxCycles > 0 && c.Cycle >= c.Cfg.MaxCycles {
			return fmt.Errorf("pipeline: cycle limit %d reached at %d retired (possible wedge)",
				c.Cfg.MaxCycles, c.Stats.Retired)
		}
		if quantum != 0 && c.Cycle >= nextCheck {
			if err := check(); err != nil {
				return err
			}
			if hb != nil {
				hb.Beat(c.Cycle)
			}
			nextCheck = c.Cycle + quantum
		}
	}
	return nil
}

// Tick advances the core one cycle. Stages run oldest-first so values flow
// one stage per cycle without intra-cycle re-entrancy.
func (c *Core) Tick() error {
	if err := c.retire(); err != nil {
		return err
	}
	c.complete()
	c.execute()
	c.issueSlotsUsed = 0
	c.comp.Tick() // companion fetch/rename: priority access to issue slots
	c.rename()
	c.processRedirects()
	c.fetch()
	c.predict()
	c.Cycle++
	c.Stats.Cycles = c.Cycle
	if c.Cfg.Paranoia {
		c.checkInvariants()
	}
	return nil
}
