package pipeline

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

// runTortureWith runs the random torture program under co-simulation with a
// modified configuration: correctness must hold no matter how small the
// structures are (stalls are allowed; wrong values are not).
func runTortureWith(t *testing.T, mutate func(*Config)) *Core {
	t.Helper()
	b := asm.NewBuilder()
	buildTorture(b, 7, 16, 2500)
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 20_000_000
	mutate(&cfg)
	c := New(cfg, p)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	return c
}

func TestTinyROB(t *testing.T) {
	c := runTortureWith(t, func(cfg *Config) { cfg.ROBSize = 8 })
	if c.Stats.Retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestTinyRS(t *testing.T) {
	runTortureWith(t, func(cfg *Config) { cfg.RSSize = 4; cfg.FrontWidth = 4 })
}

func TestTinyPRF(t *testing.T) {
	// Just enough registers beyond the architectural mapping to make
	// progress; rename must stall, never corrupt.
	runTortureWith(t, func(cfg *Config) { cfg.NumPRegs = 40 })
}

func TestTinyLSQ(t *testing.T) {
	runTortureWith(t, func(cfg *Config) { cfg.LQSize = 2; cfg.SQSize = 2 })
}

func TestTinyFetchQueue(t *testing.T) {
	runTortureWith(t, func(cfg *Config) { cfg.FetchQueueSize = 2 })
}

func TestTinyFrontQCap(t *testing.T) {
	runTortureWith(t, func(cfg *Config) { cfg.FrontQCap = 8 })
}

func TestNarrowMachine(t *testing.T) {
	c := runTortureWith(t, func(cfg *Config) {
		cfg.FrontWidth = 1
		cfg.RetireWidth = 1
		cfg.ALUPorts = 1
		cfg.LDPorts = 0
		cfg.LDSTPorts = 1
		cfg.FPPorts = 1
	})
	if c.Stats.IPC() > 1.0 {
		t.Fatalf("1-wide machine with IPC %.2f?", c.Stats.IPC())
	}
}

func TestSingleCycleLatencies(t *testing.T) {
	runTortureWith(t, func(cfg *Config) {
		cfg.MulLat, cfg.DivLat, cfg.FPLat, cfg.FDivLat = 1, 1, 1, 1
	})
}

func TestWiderMachineIsNotSlower(t *testing.T) {
	base := runTortureWith(t, func(cfg *Config) {})
	wide := runTortureWith(t, func(cfg *Config) {
		cfg.FrontWidth = 16
		cfg.ALUPorts = 12
		cfg.LDPorts = 4
		cfg.LDSTPorts = 4
		cfg.FrontQCap = 192
	})
	// Same program, strictly more resources: cycle count must not regress
	// by more than scheduling noise.
	if float64(wide.Stats.Cycles) > 1.05*float64(base.Stats.Cycles) {
		t.Fatalf("wider core slower: %d vs %d cycles", wide.Stats.Cycles, base.Stats.Cycles)
	}
}

// TestHaltOnWrongPath: the BP can speculate past a halt; the halt must only
// take effect at retirement, and wrong-path fetch past the code segment
// must not crash the stream.
func TestHaltOnWrongPath(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(isa.R1, 0)
	b.Li(isa.R2, 4000)
	b.Li(isa.R11, 0x9E37)
	b.Label("loop")
	// Data-dependent branch that skips over a halt.
	b.ShlI(isa.R3, isa.R11, 13)
	b.Xor(isa.R11, isa.R11, isa.R3)
	b.ShrI(isa.R3, isa.R11, 7)
	b.Xor(isa.R11, isa.R11, isa.R3)
	b.AndI(isa.R4, isa.R11, 7)
	b.Bnez(isa.R4, "skip") // taken 7/8 of the time
	b.Nop()
	b.Label("skip")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop")
	b.Halt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 5_000_000
	c := New(cfg, p)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
}

// TestFlushRestoresRATExactly: after heavy misprediction activity, the
// final architectural register values must match the golden model (implied
// by co-sim at every retirement, asserted explicitly here via MemEquals on
// the data region).
func TestFlushRestoresRATExactly(t *testing.T) {
	c := runTortureWith(t, func(cfg *Config) {})
	if !c.MemEquals(0x200000, 4096) {
		t.Fatal("memory diverged")
	}
	if c.Stats.Flushes == 0 {
		t.Fatal("torture produced no flushes; test is vacuous")
	}
}

// TestDeterminism: two runs of the same program produce identical cycle
// counts and statistics.
func TestDeterminism(t *testing.T) {
	a := runTortureWith(t, func(cfg *Config) {})
	b := runTortureWith(t, func(cfg *Config) {})
	if a.Stats != b.Stats {
		t.Fatalf("non-deterministic stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// A fully random branch must cost noticeably more than a predictable
	// one over the same instruction count.
	build := func(random bool) uint64 {
		b := asm.NewBuilder()
		b.Li(isa.R1, 0)
		b.Li(isa.R2, 30000)
		b.Li(isa.R11, 12345)
		b.Label("loop")
		b.ShlI(isa.R3, isa.R11, 13)
		b.Xor(isa.R11, isa.R11, isa.R3)
		b.ShrI(isa.R3, isa.R11, 7)
		b.Xor(isa.R11, isa.R11, isa.R3)
		if random {
			b.AndI(isa.R4, isa.R11, 1)
		} else {
			b.Li(isa.R4, 1)
		}
		b.Beqz(isa.R4, "skip")
		b.AddI(isa.R5, isa.R5, 1)
		b.Label("skip")
		b.AddI(isa.R1, isa.R1, 1)
		b.Blt(isa.R1, isa.R2, "loop")
		b.Halt()
		cfg := DefaultConfig()
		cfg.MaxCycles = 10_000_000
		c := New(cfg, b.MustBuild())
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Stats.Cycles
	}
	predictable := build(false)
	random := build(true)
	if float64(random) < 1.5*float64(predictable) {
		t.Fatalf("random-branch run (%d cyc) not clearly slower than predictable (%d cyc)",
			random, predictable)
	}
}
