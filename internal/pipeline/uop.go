package pipeline

import (
	"teasim/internal/bpred"
	"teasim/internal/isa"
)

// Uop is one dynamic micro-op flowing through the pipeline. Sequence numbers
// are assigned by the decoupled branch predictor as it emits fetch blocks,
// so a uop's Seq totally orders it against every other in-flight uop — the
// paper's "synchronized timestamps".
type Uop struct {
	Seq uint64
	PC  uint64
	In  *isa.Inst
	Cls isa.Class // cached In.Class()

	// Renamed operands (physical register indices).
	Prd, Prs1, Prs2 uint16
	PrevPrd         uint16
	HasDest         bool

	// Pipeline state.
	rsStamp    uint64 // RS residency stamp; see sched.go
	rsSlot     int32  // scheduler slot while InRS (bitset scheduler only)
	InRS       bool
	Issued     bool
	Executed   bool
	DoneAt     uint64 // writeback cycle once issued
	Squashed   bool
	FetchCycle uint64

	// complNext links uops filed in the same completion-ring slot (an
	// intrusive list: scheduling a writeback allocates nothing).
	complNext *Uop

	// destValid caches "writes an architectural register other than R0",
	// set at fetch from the instruction (or its predecoded template).
	destValid bool

	// Memory state.
	Addr     uint64
	AddrDone bool
	LQIdx    int
	SQIdx    int

	// Store-queue disambiguation memo (main-thread loads): while the SQ
	// epoch is unchanged, a load that scanned to a "blocked" verdict would
	// scan to the same verdict again, so the retry skips the walk. The
	// epoch covers every scan input (see Core.storeEpoch).
	sqEpoch   uint64
	sqBlocked bool

	// MSHR-full memo (main-thread loads): a cache probe rejected for full
	// MSHRs is rejected again on every retry before memWake — the earliest
	// cycle an outstanding fill can free an MSHR. No other event can flip
	// the verdict: the load's line can only be installed by an access that
	// the same full MSHRs also reject, and new fills only extend occupancy.
	memWake uint64

	// Branch state.
	Rec    *BranchRec // in-flight branch queue entry (branches only)
	Taken  bool       // actual outcome, valid once Executed
	Target uint64

	// Execution results, computed at issue, applied at writeback.
	Val       uint64
	StoreData uint64

	// TEA is set for companion-owned uops sharing the backend. CompDone is
	// companion bookkeeping: set once the companion has released the uop's
	// resources (issued-and-completed, or squashed).
	TEA      bool
	CompDone bool

	// TEA interaction: set when the TEA thread's Block Cache bit-mask marked
	// this main-thread instruction as part of an H2P dependence chain (used
	// to seed future Backward Dataflow Walks and for RAT poisoning).
	ChainMarked bool
	MaskSeen    bool // a Block Cache entry covered this instruction's block

	pooled bool
}

// isBranch reports whether the uop redirects control flow (cached class).
func (u *Uop) isBranch() bool { return u.Cls == isa.ClassBranch || u.Cls == isa.ClassJump }

func (u *Uop) isLoad() bool  { return u.Cls == isa.ClassLoad }
func (u *Uop) isStore() bool { return u.Cls == isa.ClassStore }

// BranchRec is an entry of the in-flight branch queue: one record per branch
// instruction emitted by the decoupled BP, holding the prediction, the
// recovery snapshot, and any precomputation result delivered by a Companion.
type BranchRec struct {
	Seq uint64
	PC  uint64
	In  *isa.Inst

	Pred       bpred.Pred // predictor contexts + recovery snapshot
	PredTaken  bool
	PredTarget uint64
	PredNext   uint64 // current stream continuation (corrected by TEA/resteers)
	OrigNext   uint64 // the ORIGINAL BP continuation (for MPKI accounting)

	// Precomputation (TEA/runahead) results.
	Precomputed bool
	PreTaken    bool
	PreTarget   uint64
	PreCycle    uint64 // cycle the precomputation resolved
	PreFlushed  bool   // precomputation issued an early flush
	PreBlocked  bool   // poisoning blocked this record from flushing

	// Resolution bookkeeping.
	Resolved     bool
	ActualTaken  bool
	ActualTarget uint64
	ResolveCycle uint64
	WasMispred   bool // actual differs from the ORIGINAL BP prediction

	pooled bool
}

// actualNext returns the post-branch PC for the actual outcome.
func (r *BranchRec) actualNext() uint64 {
	if r.ActualTaken {
		return r.ActualTarget
	}
	return r.PC + isa.InstBytes
}

// FetchBlock is one unit of the decoupled BP's output stream: a run of
// sequential instructions ending at the first predicted-taken branch (or the
// 32-instruction cap). The same blocks feed the main thread's fetch stage
// and, when a TEA companion is attached, its shadow fetch queue.
type FetchBlock struct {
	StartPC uint64
	SeqBase uint64
	Count   int
	// Branches holds the in-flight branch records for every branch
	// instruction in the block, in program order (index within block).
	Branches []blockBranch
	// NextPC is where the stream continues after this block.
	NextPC uint64
	Cycle  uint64 // cycle the BP emitted this block

	// decIdx is the predecoded-template index of StartPC (valid whenever
	// the decoded-block cache is enabled; blocks are sequential runs, so
	// instruction i's template is decIdx+i).
	decIdx int32

	// TEAMask marks instructions in this block that belong to H2P dependence
	// chains, set when the TEA thread reads the Block Cache entry for this
	// block (the paper's bit-mask queue feeding the main thread, §IV-D).
	TEAMask      uint32
	TEAMaskValid bool

	pooled bool
}

type blockBranch struct {
	idx int // instruction index within the block
	rec *BranchRec
}

// instPC returns the PC of instruction i within the block.
func (b *FetchBlock) instPC(i int) uint64 {
	return b.StartPC + uint64(i)*isa.InstBytes
}

// BranchAt returns the in-flight branch record for the branch at
// instruction index idx, or nil.
func (b *FetchBlock) BranchAt(idx int) *BranchRec {
	for _, bb := range b.Branches {
		if bb.idx == idx {
			return bb.rec
		}
	}
	return nil
}

// truncate drops instructions younger than seq (keeps seq itself).
func (b *FetchBlock) truncate(seq uint64) {
	if seq < b.SeqBase {
		b.Count = 0
		b.Branches = b.Branches[:0]
		return
	}
	keep := int(seq-b.SeqBase) + 1
	if keep < b.Count {
		b.Count = keep
		for len(b.Branches) > 0 && b.Branches[len(b.Branches)-1].idx >= keep {
			b.Branches = b.Branches[:len(b.Branches)-1]
		}
	}
}
