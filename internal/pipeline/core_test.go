package pipeline

import (
	"testing"

	"teasim/internal/asm"
	"teasim/internal/isa"
)

// runProg builds and runs a program under co-simulation until halt.
func runProg(t *testing.T, build func(b *asm.Builder)) *Core {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.CoSim = true
	cfg.MaxCycles = 5_000_000
	c := New(cfg, p)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("core did not halt")
	}
	return c
}

// finalReg returns the committed architectural value of r via the golden
// model (which the pipeline has verified against at every retirement).
func finalReg(c *Core, r isa.Reg) uint64 {
	return c.gold.Regs[r]
}

func TestStraightLine(t *testing.T) {
	c := runProg(t, func(b *asm.Builder) {
		b.Li(isa.R1, 10)
		b.Li(isa.R2, 32)
		b.Add(isa.R3, isa.R1, isa.R2)
		b.MulI(isa.R4, isa.R3, 3)
		b.Halt()
	})
	if got := finalReg(c, isa.R4); got != 126 {
		t.Fatalf("r4 = %d", got)
	}
	if c.Stats.Retired != 5 {
		t.Fatalf("retired = %d", c.Stats.Retired)
	}
}

func TestCountedLoopIPC(t *testing.T) {
	c := runProg(t, func(b *asm.Builder) {
		b.Li(isa.R1, 0)
		b.Li(isa.R2, 1)
		b.Li(isa.R3, 20000)
		b.Label("loop")
		b.Add(isa.R1, isa.R1, isa.R2)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bge(isa.R3, isa.R2, "loop")
		b.Halt()
	})
	if got := finalReg(c, isa.R1); got != 20000*20001/2 {
		t.Fatalf("sum = %d", got)
	}
	// A predictable loop should sustain decent IPC (dependent chain limits
	// it to ~1 add/cycle but the 3 uops/iter should overlap).
	if ipc := c.Stats.IPC(); ipc < 1.0 {
		t.Fatalf("IPC = %.2f, want >= 1.0", ipc)
	}
	// The loop predictor/TAGE should make this nearly misprediction-free.
	if c.Stats.CondMispredicts > 20 {
		t.Fatalf("mispredicts = %d", c.Stats.CondMispredicts)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	c := runProg(t, func(b *asm.Builder) {
		b.LiU(isa.R1, 0x40000)
		b.Li(isa.R2, 12345)
		b.St(isa.R1, 0, isa.R2)
		b.Ld(isa.R3, isa.R1, 0) // should forward from SQ
		b.AddI(isa.R4, isa.R3, 1)
		b.Halt()
	})
	if got := finalReg(c, isa.R4); got != 12346 {
		t.Fatalf("r4 = %d", got)
	}
	if c.Stats.StoreForwards == 0 {
		t.Fatal("no store-to-load forwarding observed")
	}
}

func TestSubwordForwardWaitsForCommit(t *testing.T) {
	// A 4-byte load partially overlapping an 8-byte store must still get
	// the right value (it waits for the store to commit).
	c := runProg(t, func(b *asm.Builder) {
		b.LiU(isa.R1, 0x40000)
		b.Li(isa.R2, 0x1122334455667788)
		b.St(isa.R1, 0, isa.R2)
		b.Ld4(isa.R3, isa.R1, 4) // upper half: 0x11223344
		b.Halt()
	})
	if got := finalReg(c, isa.R3); got != 0x11223344 {
		t.Fatalf("r3 = %#x", got)
	}
}

func TestCallRetSequence(t *testing.T) {
	c := runProg(t, func(b *asm.Builder) {
		b.Label("main")
		b.Li(isa.R1, 1)
		b.Li(isa.R5, 0)
		b.Li(isa.R6, 200)
		b.Label("loop")
		b.Call("fn")
		b.AddI(isa.R5, isa.R5, 1)
		b.Bge(isa.R6, isa.R5, "loop")
		b.Halt()
		b.Label("fn")
		b.Add(isa.R1, isa.R1, isa.R5)
		b.Ret()
	})
	want := uint64(1)
	for i := uint64(0); i <= 200; i++ {
		want += i
	}
	if got := finalReg(c, isa.R1); got != want {
		t.Fatalf("r1 = %d want %d", got, want)
	}
}

func TestDataDependentBranches(t *testing.T) {
	// Branches on pseudo-random data: mispredictions must occur, recover,
	// and the result must still be exact.
	c := runProg(t, func(b *asm.Builder) {
		b.Li(isa.R10, 0)                     // acc
		b.Li(isa.R11, 0x9E3779B97F4A7C15>>1) // lfsr state
		b.Li(isa.R12, 0)                     // i
		b.Li(isa.R13, 5000)                  // n
		b.Label("loop")
		// xorshift
		b.ShlI(isa.R1, isa.R11, 13)
		b.Xor(isa.R11, isa.R11, isa.R1)
		b.ShrI(isa.R1, isa.R11, 7)
		b.Xor(isa.R11, isa.R11, isa.R1)
		b.ShlI(isa.R1, isa.R11, 17)
		b.Xor(isa.R11, isa.R11, isa.R1)
		b.AndI(isa.R2, isa.R11, 1)
		b.Beqz(isa.R2, "skip")
		b.AddI(isa.R10, isa.R10, 3)
		b.Jmp("next")
		b.Label("skip")
		b.AddI(isa.R10, isa.R10, 1)
		b.Label("next")
		b.AddI(isa.R12, isa.R12, 1)
		b.Blt(isa.R12, isa.R13, "loop")
		b.Halt()
	})
	if c.Stats.CondMispredicts < 500 {
		t.Fatalf("expected many mispredictions on random branches, got %d", c.Stats.CondMispredicts)
	}
	if c.Stats.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
}

func TestIndirectDispatch(t *testing.T) {
	// A switch-like dispatch through jr, alternating targets.
	c := runProg(t, func(b *asm.Builder) {
		b.Li(isa.R10, 0)
		b.Li(isa.R12, 0)
		b.Li(isa.R13, 300)
		b.Label("loop")
		b.AndI(isa.R1, isa.R12, 1)
		b.MulI(isa.R1, isa.R1, 8) // two instructions per case
		b.LiLabel(isa.R2, "case0")
		b.Add(isa.R2, isa.R2, isa.R1)
		b.Jr(isa.R2, 0)
		b.Label("case0")
		b.AddI(isa.R10, isa.R10, 1)
		b.Jmp("next")
		b.Label("case1")
		b.AddI(isa.R10, isa.R10, 100)
		b.Jmp("next")
		b.Label("next")
		b.AddI(isa.R12, isa.R12, 1)
		b.Blt(isa.R12, isa.R13, "loop")
		b.Halt()
	})
	if got := finalReg(c, isa.R10); got != 150+150*100 {
		t.Fatalf("r10 = %d", got)
	}
}

func TestMemoryStreamWithLatency(t *testing.T) {
	// Sum a 64KB array: exercises D-cache misses, MSHRs, DRAM.
	n := 8192
	vals := make([]uint64, n)
	var want uint64
	for i := range vals {
		vals[i] = uint64(i*7 + 3)
		want += vals[i]
	}
	c := runProg(t, func(b *asm.Builder) {
		b.DataU64(0x100000, vals)
		b.LiU(isa.R1, 0x100000)
		b.Li(isa.R2, 0) // i
		b.Li(isa.R3, int64(n))
		b.Li(isa.R10, 0)
		b.Label("loop")
		b.ShlI(isa.R4, isa.R2, 3)
		b.Add(isa.R4, isa.R1, isa.R4)
		b.Ld(isa.R5, isa.R4, 0)
		b.Add(isa.R10, isa.R10, isa.R5)
		b.AddI(isa.R2, isa.R2, 1)
		b.Blt(isa.R2, isa.R3, "loop")
		b.Halt()
	})
	if got := finalReg(c, isa.R10); got != want {
		t.Fatalf("sum = %d want %d", got, want)
	}
	if c.Hier.L1D.Misses == 0 || c.Hier.DRAM.Reads == 0 {
		t.Fatal("expected D-cache misses and DRAM traffic")
	}
}

// TestRandomTorture generates a random control-flow-heavy program with
// loads, stores, calls, and data-dependent branches, and runs it to halt
// under full co-simulation. Any architectural divergence fails the run.
func TestRandomTorture(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		c := runProg(t, func(b *asm.Builder) {
			buildTorture(b, seed, 24, 4000)
		})
		// Sanity: the committed memory region matches the golden model.
		if !c.MemEquals(0x200000, 4096) {
			t.Fatalf("seed %d: memory diverged from golden model", seed)
		}
		if c.Stats.Retired < 4000 {
			t.Fatalf("seed %d: too few instructions retired: %d", seed, c.Stats.Retired)
		}
	}
}

// buildTorture emits nBlocks random basic blocks that bounce control flow
// among themselves for `steps` block executions, then halt. R20 is the
// countdown, R21 the data base, R22 an LFSR driving all "random" decisions.
func buildTorture(b *asm.Builder, seed uint64, nBlocks, steps int) {
	rng := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	blkName := func(i int) string { return "blk" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }

	b.Label("main")
	b.Li(isa.R20, int64(steps))
	b.LiU(isa.R21, 0x200000)
	b.Li(isa.R22, int64(seed*0x9E3779B9+1))
	for i := 1; i <= 15; i++ {
		b.Li(isa.Reg(i), int64(seed)*int64(i)+7)
	}
	b.Jmp(blkName(0))

	for blk := 0; blk < nBlocks; blk++ {
		b.Label(blkName(blk))
		// advance LFSR
		b.ShlI(isa.R1, isa.R22, 13)
		b.Xor(isa.R22, isa.R22, isa.R1)
		b.ShrI(isa.R1, isa.R22, 7)
		b.Xor(isa.R22, isa.R22, isa.R1)
		// random body ops
		for k, nOps := 0, 2+next(5); k < nOps; k++ {
			rd := isa.Reg(2 + next(13))
			r1 := isa.Reg(2 + next(13))
			r2 := isa.Reg(2 + next(13))
			switch next(8) {
			case 0:
				b.Add(rd, r1, r2)
			case 1:
				b.Sub(rd, r1, r2)
			case 2:
				b.Mul(rd, r1, r2)
			case 3:
				b.Xor(rd, r1, r2)
			case 4: // load from the data region, address from LFSR
				b.AndI(isa.R16, isa.R22, 0xFF8)
				b.Add(isa.R16, isa.R21, isa.R16)
				b.Ld(rd, isa.R16, 0)
			case 5: // store to the data region
				b.AndI(isa.R16, isa.R22, 0xFF8)
				b.Add(isa.R16, isa.R21, isa.R16)
				b.St(isa.R16, 0, r1)
			case 6: // subword traffic (forwarding edge cases)
				b.AndI(isa.R16, isa.R22, 0xFF8)
				b.Add(isa.R16, isa.R21, isa.R16)
				b.St4(isa.R16, 0, r1)
				b.Ld1(rd, isa.R16, 0)
			case 7:
				b.Slt(rd, r1, r2)
			}
		}
		// countdown and exit
		b.AddI(isa.R20, isa.R20, -1)
		b.Beqz(isa.R20, "exit")
		// data-dependent two-way branch to random blocks
		t1, t2 := blkName(next(nBlocks)), blkName(next(nBlocks))
		b.AndI(isa.R17, isa.R22, 3)
		b.Beqz(isa.R17, t1)
		b.Jmp(t2)
	}
	b.Label("exit")
	b.Halt()
}
